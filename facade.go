package flint

import (
	"flint/internal/aggregator"
	"flint/internal/availability"
	"flint/internal/data"
	"flint/internal/forecast"
	"flint/internal/partition"
	"flint/internal/workflow"
)

// Availability tooling (§3.2).
type (
	// Session is one processed foreground session.
	Session = availability.Session
	// SessionLogConfig drives the synthetic session-log generator.
	SessionLogConfig = availability.LogConfig
	// Trace is a per-client availability trace.
	Trace = availability.Trace
	// Table1 holds the per-criterion availability fractions.
	Table1 = availability.Table1
	// AvailabilitySeries is Fig 2's availability-over-time line.
	AvailabilitySeries = availability.Series
)

// DefaultSessionLog returns the two-week log configuration used by §4.1.
func DefaultSessionLog(clients int, seed int64) SessionLogConfig {
	return availability.DefaultLogConfig(clients, seed)
}

// GenerateSessionLog produces the synthetic session log.
func GenerateSessionLog(cfg SessionLogConfig) ([]Session, error) {
	return availability.GenerateLog(cfg)
}

// ApplyCriteria filters a session log by participation criteria.
func ApplyCriteria(sessions []Session, c Criteria) []Session {
	return availability.Apply(sessions, c)
}

// ComputeTable1 measures the Table 1 eligibility fractions.
func ComputeTable1(sessions []Session) (Table1, error) {
	return availability.ComputeTable1(sessions)
}

// BuildTrace converts admitted sessions into an availability trace.
func BuildTrace(sessions []Session) *Trace { return availability.BuildTrace(sessions) }

// ComputeAvailabilitySeries buckets a trace into Fig 2's series.
func ComputeAvailabilitySeries(t *Trace, bucketSec float64) (AvailabilitySeries, error) {
	return availability.ComputeSeries(t, bucketSec)
}

// Resource forecasting (§3.5).
type (
	// DeviceBudget is the edge resource bill of one training job.
	DeviceBudget = forecast.DeviceBudget
	// TEEThroughput is the secure aggregator's ingest load.
	TEEThroughput = aggregator.TEEThroughput
	// InfraPlan sizes the cloud aggregation service.
	InfraPlan = forecast.InfraPlan
)

// ForecastDeviceBudget derives the device budget from a simulation report.
func ForecastDeviceBudget(rep *SimReport) (DeviceBudget, error) {
	return forecast.BudgetFromReport(rep)
}

// ForecastTEELoad projects the TEE aggregator's bandwidth needs.
func ForecastTEELoad(rep *SimReport, updateBytes int) (TEEThroughput, error) {
	return forecast.TEELoad(rep, updateBytes)
}

// PlanInfrastructure sizes the worker pool against load swings.
func PlanInfrastructure(rep *SimReport, series AvailabilitySeries, updatesPerWorkerSec float64) (InfraPlan, error) {
	return forecast.PlanInfra(rep, series, updatesPerWorkerSec)
}

// Decision workflow (Fig 9).
type (
	// WorkflowStep is one gated stage of the decision workflow.
	WorkflowStep = workflow.Step
	// DecisionWorkflow is an ordered pipeline of steps.
	DecisionWorkflow = workflow.Workflow
	// WorkflowContext carries artifacts between steps.
	WorkflowContext = workflow.Context
	// WorkflowOutcome is the full decision record.
	WorkflowOutcome = workflow.Outcome
)

// NewWorkflowContext creates an empty artifact context.
func NewWorkflowContext() *WorkflowContext { return workflow.NewContext() }

// Proxy dataset tooling (§3.3).

// ClientShard is one client's local dataset with its grouping key.
type ClientShard = data.ClientShard

// ComputeProxyStats derives Table 2 metadata from client shards.
func ComputeProxyStats(name string, shards []ClientShard, lookbackDays int) ProxyStats {
	return partition.ComputeStats(name, shards, lookbackDays)
}

// Privacy and security (§3.6).
type (
	// DPConfig parameterizes FL with differential privacy.
	DPConfig = aggregator.DPConfig
	// Adversary compromises a fraction of clients.
	Adversary = aggregator.Adversary
	// SecAgg simulates TEE-backed secure aggregation.
	SecAgg = aggregator.SecAgg
)
