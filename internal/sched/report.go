package sched

import "strconv"

// bandwidthEdgesMbps are the measured-downlink histogram bucket edges
// (log-2 spaced, in Mbit/s): bucket i counts devices in
// [edge[i-1], edge[i]), with an open bucket past the last edge.
var bandwidthEdgesMbps = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32}

// BucketLabels names the histogram buckets, aligned with the Counts slice
// of a CohortStats histogram.
func BucketLabels() []string {
	labels := make([]string, 0, len(bandwidthEdgesMbps)+1)
	prev := 0.0
	for _, e := range bandwidthEdgesMbps {
		labels = append(labels, formatRange(prev, e))
		prev = e
	}
	return append(labels, formatRange(prev, 0))
}

func formatRange(lo, hi float64) string {
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	switch {
	case hi == 0:
		return f(lo) + "+Mbps"
	case lo == 0:
		return "<" + f(hi) + "Mbps"
	default:
		return f(lo) + "-" + f(hi) + "Mbps"
	}
}

// CohortStats is one cohort's slice of the fleet view: how many devices
// the cohort map places there and the distribution of their measured
// downlink bandwidth.
type CohortStats struct {
	// Devices counts cohort members (measured devices placed by
	// bandwidth plus unmeasured ones placed by radio label).
	Devices int `json:"devices"`
	// BandwidthHist counts *measured* members per bandwidth bucket; see
	// BucketLabels for the bucket boundaries. Unmeasured devices have no
	// bandwidth to bucket and appear only in Devices.
	BandwidthHist []int `json:"bandwidth_hist"`
}

func newCohortStats() *CohortStats {
	return &CohortStats{BandwidthHist: make([]int, len(bandwidthEdgesMbps)+1)}
}

// observe buckets one measured device's downlink throughput.
func (c *CohortStats) observe(downBps float64) {
	c.Devices++
	mbps := downBps * 8 / 1e6
	for i, e := range bandwidthEdgesMbps {
		if mbps < e {
			c.BandwidthHist[i]++
			return
		}
	}
	c.BandwidthHist[len(bandwidthEdgesMbps)]++
}

// Report is the scheduler's observability snapshot — the /v1/status
// "scheduler" section.
type Report struct {
	// Enabled mirrors the configuration; a disabled scheduler publishes
	// an empty report so dashboards can tell "off" from "no data yet".
	Enabled bool `json:"enabled"`
	// Devices is the census size of the last rebuild; Measured counts
	// devices with enough downlink samples for bandwidth cohorting;
	// Remapped counts measured devices whose bandwidth cohort differs
	// from their radio label (the fast-cellular / slow-WiFi corrections).
	Devices  int `json:"devices"`
	Measured int `json:"measured"`
	Remapped int `json:"remapped"`
	// BucketLabelsNote: cohort histograms index into BucketLabels().
	Cohorts map[string]*CohortStats `json:"cohorts,omitempty"`
	// Estimated task-duration quantiles over the measured eligible fleet
	// (the straggler tail the over-commit model provisions for).
	EstTaskP50Sec float64 `json:"est_task_p50_sec,omitempty"`
	EstTaskP90Sec float64 `json:"est_task_p90_sec,omitempty"`
	EstTaskP99Sec float64 `json:"est_task_p99_sec,omitempty"`
	// OnTimeFraction is the measured share of eligible devices whose
	// estimate fits the deadline window; OverCommitScale is the
	// resulting multiplier applied to the configured base (0 until a
	// rebuild has measured data).
	OnTimeFraction  float64 `json:"on_time_fraction,omitempty"`
	OverCommitScale float64 `json:"over_commit_scale,omitempty"`
	// Footprint is the serving tier's per-device memory accounting —
	// how footprint regressions become visible without a profiler. The
	// scheduler half is filled at rebuild; the registry half is stamped
	// in by the coordinator when it assembles /v1/status.
	Footprint Footprint `json:"footprint"`
}

// Footprint is the memory cost of tracking one device across the serving
// tier: the registry's resident per-device state and the scheduler's
// rebuild working set (census buffer plus cohort map). The byte figures
// are layout-derived estimates (struct sizes plus amortized map-bucket
// overhead), not heap-profiler truth — stable enough to gate on, cheap
// enough to compute on every status request.
type Footprint struct {
	// Devices is the device count the byte figures are amortized over
	// (the registry's known-device census).
	Devices int `json:"devices"`
	// RegistryBytes estimates the registry's resident device state.
	RegistryBytes       int64   `json:"registry_bytes"`
	RegistryBytesPerDev float64 `json:"registry_bytes_per_device"`
	// SchedulerBytes estimates the rebuild working set retained between
	// fleet censuses (the reused sample buffer and the cohort map).
	SchedulerBytes       int64   `json:"scheduler_bytes"`
	SchedulerBytesPerDev float64 `json:"scheduler_bytes_per_device"`
}
