package sched

import (
	"math"
	"time"
)

// Telemetry is one device's measured serving history: EWMA link
// throughput in each direction plus the reported local-task duration.
// It is a plain value — the registry embeds one per device and guards it
// with the device's shard lock, so the observe methods need no
// synchronization of their own.
type Telemetry struct {
	// UpBps is the EWMA uplink throughput (bytes/second) from
	// server-observed /v1/update body-transfer timings.
	UpBps float64
	// DownBps is the EWMA downlink throughput (bytes/second) from the
	// task-download timings devices report with their updates.
	DownBps float64
	// TaskSec is the EWMA reported local-training duration in seconds.
	TaskSec float64
	// Sample counts gate how much trust each EWMA has earned.
	UpSamples, DownSamples, TaskSamples int
	// LastSample is when the most recent observation (any direction)
	// landed — the decay clock. Zero means never observed.
	LastSample time.Time
}

// minTransfer floors an observed transfer duration: loopback and
// in-process tests can observe ~0ns for a real payload, and a zero
// duration would turn one observation into an infinite-bandwidth EWMA
// that poisons the estimate forever.
const minTransfer = 100 * time.Microsecond

// maxObservedBps caps a single observation's implied throughput (10
// Gbit/s — beyond any edge device's real link). Downlink observations
// are device-reported and therefore forgeable; without the cap one
// absurd bytes/duration pair would pin the EWMA so high the device
// passes every deadline gate and lands in the default cohort no matter
// what its link actually does.
const maxObservedBps = 1.25e9

// ObserveUplink folds one observed /v1/update transfer (bytes moved over
// d) into the uplink EWMA.
func (t *Telemetry) ObserveUplink(bytes int, d time.Duration, alpha float64) {
	if bytes <= 0 {
		return
	}
	if d < minTransfer {
		d = minTransfer
	}
	t.UpBps = ewma(t.UpBps, clampBps(float64(bytes)/d.Seconds()), alpha, t.UpSamples)
	t.UpSamples++
}

// ObserveDownlink folds one reported task-download transfer into the
// downlink EWMA.
func (t *Telemetry) ObserveDownlink(bytes int, d time.Duration, alpha float64) {
	if bytes <= 0 {
		return
	}
	if d < minTransfer {
		d = minTransfer
	}
	t.DownBps = ewma(t.DownBps, clampBps(float64(bytes)/d.Seconds()), alpha, t.DownSamples)
	t.DownSamples++
}

func clampBps(x float64) float64 {
	if x > maxObservedBps {
		return maxObservedBps
	}
	return x
}

// ObserveTask folds one reported local-training duration into the
// task-duration EWMA.
func (t *Telemetry) ObserveTask(d time.Duration, alpha float64) {
	if d <= 0 {
		return
	}
	t.TaskSec = ewma(t.TaskSec, d.Seconds(), alpha, t.TaskSamples)
	t.TaskSamples++
}

// ewma folds sample x into the running mean: the first observation seeds
// the series, later ones blend with weight alpha.
func ewma(prev, x, alpha float64, samples int) float64 {
	if samples == 0 {
		return x
	}
	return alpha*x + (1-alpha)*prev
}

// Distrust zeroes the telemetry's earned sample counts while keeping the
// EWMA values — the same degradation Decayed applies to a long-idle
// device, but immediate. The commit pipeline applies it to devices whose
// updates the norm screen rejected: a device submitting outlier updates
// forfeits the trust its measurements earned (it drops out of the
// measured cohort map and the optimistic deadline gate), yet its next
// honest transfers still blend against the old means rather than a cold
// seed.
func (t *Telemetry) Distrust() {
	t.UpSamples, t.DownSamples, t.TaskSamples = 0, 0, 0
}

// maxDecaySteps caps the decay shift; 32 halvings zero any realistic
// sample count, and an unbounded shift of a huge idle/ttl ratio would be
// undefined behavior territory for the compiler's shift lowering.
const maxDecaySteps = 32

// TelemetryState is the storage-compact form of Telemetry the registry
// embeds per device: the same EWMAs and trust counters packed into 32
// bytes (float32 means, uint16 sample counts, a unix-nano decay clock)
// against Telemetry's 72 — less than half the per-device telemetry cost
// at a million-device census. float32 keeps ~7 significant digits,
// well inside the EWMA's own measurement noise; sample counts saturate
// at 65535, which the trust gates cannot distinguish from infinity.
// Telemetry stays the census/decision value type; the registry expands
// state to it at snapshot time.
type TelemetryState struct {
	lastSampleNS            int64
	upBps, downBps, taskSec float32
	upN, downN, taskN       uint16
}

// Touch stamps the decay clock (a fresh observation of any kind).
func (t *TelemetryState) Touch(now time.Time) { t.lastSampleNS = now.UnixNano() }

// ObserveUplink folds one observed /v1/update transfer into the uplink
// EWMA — Telemetry.ObserveUplink's semantics on the compact layout.
func (t *TelemetryState) ObserveUplink(bytes int, d time.Duration, alpha float64) {
	if bytes <= 0 {
		return
	}
	if d < minTransfer {
		d = minTransfer
	}
	t.upBps = float32(ewma(float64(t.upBps), clampBps(float64(bytes)/d.Seconds()), alpha, int(t.upN)))
	t.upN = satInc(t.upN)
}

// ObserveDownlink folds one reported task-download transfer into the
// downlink EWMA.
func (t *TelemetryState) ObserveDownlink(bytes int, d time.Duration, alpha float64) {
	if bytes <= 0 {
		return
	}
	if d < minTransfer {
		d = minTransfer
	}
	t.downBps = float32(ewma(float64(t.downBps), clampBps(float64(bytes)/d.Seconds()), alpha, int(t.downN)))
	t.downN = satInc(t.downN)
}

// ObserveTask folds one reported local-training duration into the
// task-duration EWMA.
func (t *TelemetryState) ObserveTask(d time.Duration, alpha float64) {
	if d <= 0 {
		return
	}
	t.taskSec = float32(ewma(float64(t.taskSec), d.Seconds(), alpha, int(t.taskN)))
	t.taskN = satInc(t.taskN)
}

// Distrust zeroes the earned sample counts, keeping the EWMA values —
// see Telemetry.Distrust.
func (t *TelemetryState) Distrust() { t.upN, t.downN, t.taskN = 0, 0, 0 }

// Telemetry expands the compact state to the census/decision value form.
func (t TelemetryState) Telemetry() Telemetry {
	out := Telemetry{
		UpBps:       float64(t.upBps),
		DownBps:     float64(t.downBps),
		TaskSec:     float64(t.taskSec),
		UpSamples:   int(t.upN),
		DownSamples: int(t.downN),
		TaskSamples: int(t.taskN),
	}
	if t.lastSampleNS != 0 {
		out.LastSample = time.Unix(0, t.lastSampleNS)
	}
	return out
}

func satInc(n uint16) uint16 {
	if n == math.MaxUint16 {
		return n
	}
	return n + 1
}

// Decayed ages the telemetry toward "unmeasured": every full ttl elapsed
// since the last observation halves each EWMA's earned sample count (the
// trust gates key on counts, not values). A device idle for a week stops
// clearing MinSamples, so its stale bandwidth verdict no longer pins its
// cohort or its deadline-gate estimate — it degrades to the unmeasured
// fallback (radio label, optimistic admission) exactly like a device
// never observed, and re-earns trust from fresh transfers when it
// returns. The EWMA values themselves are kept: the first post-idle
// observation still blends against the old mean instead of a cold seed.
// ttl <= 0 disables decay; the zero Telemetry passes through unchanged.
func (t Telemetry) Decayed(now time.Time, ttl time.Duration) Telemetry {
	if ttl <= 0 || t.LastSample.IsZero() {
		return t
	}
	idle := now.Sub(t.LastSample)
	if idle < ttl {
		return t
	}
	steps := idle / ttl
	if steps > maxDecaySteps {
		steps = maxDecaySteps
	}
	t.UpSamples >>= uint(steps)
	t.DownSamples >>= uint(steps)
	t.TaskSamples >>= uint(steps)
	return t
}
