package sched

import "time"

// Telemetry is one device's measured serving history: EWMA link
// throughput in each direction plus the reported local-task duration.
// It is a plain value — the registry embeds one per device and guards it
// with the device's shard lock, so the observe methods need no
// synchronization of their own.
type Telemetry struct {
	// UpBps is the EWMA uplink throughput (bytes/second) from
	// server-observed /v1/update body-transfer timings.
	UpBps float64
	// DownBps is the EWMA downlink throughput (bytes/second) from the
	// task-download timings devices report with their updates.
	DownBps float64
	// TaskSec is the EWMA reported local-training duration in seconds.
	TaskSec float64
	// Sample counts gate how much trust each EWMA has earned.
	UpSamples, DownSamples, TaskSamples int
	// LastSample is when the most recent observation (any direction)
	// landed — the decay clock. Zero means never observed.
	LastSample time.Time
}

// minTransfer floors an observed transfer duration: loopback and
// in-process tests can observe ~0ns for a real payload, and a zero
// duration would turn one observation into an infinite-bandwidth EWMA
// that poisons the estimate forever.
const minTransfer = 100 * time.Microsecond

// maxObservedBps caps a single observation's implied throughput (10
// Gbit/s — beyond any edge device's real link). Downlink observations
// are device-reported and therefore forgeable; without the cap one
// absurd bytes/duration pair would pin the EWMA so high the device
// passes every deadline gate and lands in the default cohort no matter
// what its link actually does.
const maxObservedBps = 1.25e9

// ObserveUplink folds one observed /v1/update transfer (bytes moved over
// d) into the uplink EWMA.
func (t *Telemetry) ObserveUplink(bytes int, d time.Duration, alpha float64) {
	if bytes <= 0 {
		return
	}
	if d < minTransfer {
		d = minTransfer
	}
	t.UpBps = ewma(t.UpBps, clampBps(float64(bytes)/d.Seconds()), alpha, t.UpSamples)
	t.UpSamples++
}

// ObserveDownlink folds one reported task-download transfer into the
// downlink EWMA.
func (t *Telemetry) ObserveDownlink(bytes int, d time.Duration, alpha float64) {
	if bytes <= 0 {
		return
	}
	if d < minTransfer {
		d = minTransfer
	}
	t.DownBps = ewma(t.DownBps, clampBps(float64(bytes)/d.Seconds()), alpha, t.DownSamples)
	t.DownSamples++
}

func clampBps(x float64) float64 {
	if x > maxObservedBps {
		return maxObservedBps
	}
	return x
}

// ObserveTask folds one reported local-training duration into the
// task-duration EWMA.
func (t *Telemetry) ObserveTask(d time.Duration, alpha float64) {
	if d <= 0 {
		return
	}
	t.TaskSec = ewma(t.TaskSec, d.Seconds(), alpha, t.TaskSamples)
	t.TaskSamples++
}

// ewma folds sample x into the running mean: the first observation seeds
// the series, later ones blend with weight alpha.
func ewma(prev, x, alpha float64, samples int) float64 {
	if samples == 0 {
		return x
	}
	return alpha*x + (1-alpha)*prev
}

// Distrust zeroes the telemetry's earned sample counts while keeping the
// EWMA values — the same degradation Decayed applies to a long-idle
// device, but immediate. The commit pipeline applies it to devices whose
// updates the norm screen rejected: a device submitting outlier updates
// forfeits the trust its measurements earned (it drops out of the
// measured cohort map and the optimistic deadline gate), yet its next
// honest transfers still blend against the old means rather than a cold
// seed.
func (t *Telemetry) Distrust() {
	t.UpSamples, t.DownSamples, t.TaskSamples = 0, 0, 0
}

// maxDecaySteps caps the decay shift; 32 halvings zero any realistic
// sample count, and an unbounded shift of a huge idle/ttl ratio would be
// undefined behavior territory for the compiler's shift lowering.
const maxDecaySteps = 32

// Decayed ages the telemetry toward "unmeasured": every full ttl elapsed
// since the last observation halves each EWMA's earned sample count (the
// trust gates key on counts, not values). A device idle for a week stops
// clearing MinSamples, so its stale bandwidth verdict no longer pins its
// cohort or its deadline-gate estimate — it degrades to the unmeasured
// fallback (radio label, optimistic admission) exactly like a device
// never observed, and re-earns trust from fresh transfers when it
// returns. The EWMA values themselves are kept: the first post-idle
// observation still blends against the old mean instead of a cold seed.
// ttl <= 0 disables decay; the zero Telemetry passes through unchanged.
func (t Telemetry) Decayed(now time.Time, ttl time.Duration) Telemetry {
	if ttl <= 0 || t.LastSample.IsZero() {
		return t
	}
	idle := now.Sub(t.LastSample)
	if idle < ttl {
		return t
	}
	steps := idle / ttl
	if steps > maxDecaySteps {
		steps = maxDecaySteps
	}
	t.UpSamples >>= uint(steps)
	t.DownSamples >>= uint(steps)
	t.TaskSamples >>= uint(steps)
	return t
}
