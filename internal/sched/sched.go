// Package sched is the coordinator's scheduling plane: the layer between
// the device registry and the round state machine that turns *measured*
// per-device capability into assignment decisions.
//
// The paper's central operational claim (§3.2, §4.1, Table 1) is that
// cross-device FL lives or dies on device availability and eligibility:
// which devices are reachable, how fast their links actually are, and
// whether a task handed out now can finish before the round deadline.
// Self-reported labels are a poor proxy — a "WiFi" session on a congested
// access point moves bytes slower than a good LTE link — so this package
// keys every decision on telemetry the serving path observes directly:
//
//   - per-device EWMA uplink throughput from the server-observed
//     /v1/update body-transfer timings;
//   - per-device EWMA downlink throughput from the task-download timings
//     devices report back with their updates;
//   - per-device EWMA task duration from reported local-training time.
//
// From a periodic fleet census over that telemetry the Scheduler derives
// three decisions the coordinator consumes on its serving paths:
//
//  1. *Deadline gating* — a device whose estimated task time (the paper's
//     taskDuration(k) = t·E·|Dk| + 2M/N with N measured instead of
//     sampled) cannot fit in the round's remaining window is not
//     assigned, instead of being handed a task it will straggle on.
//  2. *Measured-bandwidth cohorts* — a CohortMap that replaces the static
//     WiFi→default / cellular→lowbw transport rule: devices whose
//     measured downlink sits below the low-bandwidth threshold get the
//     lowbw wire policy regardless of their radio label, and fast
//     "cellular" devices are promoted to the default policy.
//  3. *Deadline-driven over-commit* — sync rounds are provisioned with an
//     assignment multiplier computed from the fleet's measured straggler
//     tail (the fraction of eligible devices whose estimate fits the
//     deadline), so rounds close on time without a hand-tuned constant.
//
// The Scheduler is lock-free on the serving path: decisions read one
// atomically swapped fleet-view snapshot, rebuilt off the hot path by the
// coordinator's watchdog.
package sched

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
	"unsafe"

	"flint/internal/codec"
	"flint/internal/transport"
)

// Config parameterizes the scheduling plane.
type Config struct {
	// Disable turns the scheduler off: cohorts fall back to the radio
	// label, the deadline gate admits everyone, and OverCommit returns
	// the configured base. The zero value is enabled — measured
	// scheduling is the default serving behavior.
	Disable bool
	// Alpha is the EWMA smoothing factor for telemetry observations in
	// (0, 1]; higher weighs recent transfers more. Default 0.3.
	Alpha float64
	// LowBWBps is the measured-downlink threshold (bytes/second) below
	// which a device is mapped to the low-bandwidth cohort. Default
	// 187500 B/s (1.5 Mbit/s).
	LowBWBps float64
	// MinSamples is how many downlink observations a device needs before
	// its measurement overrides its radio label in the cohort map.
	// Default 2 — one sample can be an artifact of a cold connection.
	MinSamples int
	// MaxOverCommit caps the deadline-driven assignment multiplier so a
	// mostly-offline fleet cannot demand unbounded duplicate work.
	// Default 3.
	MaxOverCommit float64
	// DeadlineSlack is the fraction of the remaining round window a task
	// estimate must fit inside to pass the gate (headroom for the model
	// being an estimate). Default 0.8.
	DeadlineSlack float64
	// MinCensus is how many measured eligible devices a rebuild needs
	// before the over-commit scale moves off the configured base — the
	// fleet-level analogue of MinSamples, so one cold-start straggler
	// cannot triple every round's assignment budget. Default 8;
	// negative means no floor.
	MinCensus int
	// TelemetryTTL ages idle devices' telemetry toward "unmeasured":
	// every full TTL without a fresh observation halves each EWMA's
	// earned sample count (Telemetry.Decayed), so a device idle past a
	// few TTLs falls below MinSamples and degrades to the unmeasured
	// fallback instead of being pinned to a stale bandwidth verdict —
	// the cohort map's analogue of the deadline gate's ProbeEvery
	// re-measurement. Default 10m; negative disables decay.
	TelemetryTTL time.Duration
	// ProbeEvery is the consecutive deadline-gate denial streak after
	// which a device's requests are admitted as re-measurement probes
	// (until fresh telemetry resets the streak). Telemetry is only
	// refreshed on the update path, which a gated device never reaches
	// — without probes a device once measured slow would stay excluded
	// forever even after its link improved. The threshold stays armed
	// once crossed, so a probe that loses the assignment race (full
	// round budget) retries on the next request instead of waiting out
	// another full streak. Default 8; negative disables probing.
	ProbeEvery int
	// RebuildEvery is how often the coordinator refreshes the fleet view
	// (cohort map, over-commit, histograms). Default 2s.
	RebuildEvery time.Duration
	// TimeCompression is the virtual-time load plane's clock contract:
	// how many *virtual* seconds elapse per wall second (internal/vload's
	// compression factor). Devices driven by a compressed virtual clock
	// report transfer and training durations in virtual time, so their
	// telemetry EWMAs equal the true simulated link rates — but the round
	// deadline the gate and the over-commit model reason about is wall
	// clock. Dividing every duration estimate by the compression factor
	// maps it into the wall domain: with the server's RoundDeadline set
	// to (virtual deadline)/S, the gate decision E/S <= (D/S)·slack is
	// exactly the wall-clock fleet's E <= D·slack, so cohort remapping
	// and deadline gating match the uncompressed fleet decision-for-
	// decision. Default 1 (production: wall time IS virtual time).
	TimeCompression float64
}

// WithDefaults fills zero fields and validates the result.
func (c Config) WithDefaults() (Config, error) {
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return c, fmt.Errorf("sched: alpha %v outside (0, 1]", c.Alpha)
	}
	if c.LowBWBps == 0 {
		c.LowBWBps = 187_500 // 1.5 Mbit/s
	}
	if c.LowBWBps < 0 {
		return c, fmt.Errorf("sched: negative lowbw threshold %v", c.LowBWBps)
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 2
	}
	if c.MaxOverCommit == 0 {
		c.MaxOverCommit = 3
	}
	if c.MaxOverCommit < 1 {
		return c, fmt.Errorf("sched: max over-commit %v below 1", c.MaxOverCommit)
	}
	if c.DeadlineSlack == 0 {
		c.DeadlineSlack = 0.8
	}
	if c.DeadlineSlack <= 0 || c.DeadlineSlack > 1 {
		return c, fmt.Errorf("sched: deadline slack %v outside (0, 1]", c.DeadlineSlack)
	}
	if c.MinCensus == 0 {
		c.MinCensus = 8
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 8
	}
	if c.TelemetryTTL == 0 {
		c.TelemetryTTL = 10 * time.Minute
	}
	if c.RebuildEvery <= 0 {
		c.RebuildEvery = 2 * time.Second
	}
	if c.TimeCompression == 0 {
		c.TimeCompression = 1
	}
	if c.TimeCompression < 1 {
		return c, fmt.Errorf("sched: time compression %v below 1", c.TimeCompression)
	}
	return c, nil
}

// DeviceSample is one device's telemetry as seen by a fleet census: the
// registry hands the scheduler a slice of these at every rebuild.
type DeviceSample struct {
	ID int64
	// WiFi is the radio label from the device's last check-in — the
	// fallback cohort signal for unmeasured devices.
	WiFi bool
	// Eligible is whether the device passed the participation criteria
	// at its last check-in; only eligible devices shape over-commit (an
	// ineligible device was never going to be assigned).
	Eligible bool
	Tel      Telemetry
}

// fleetView is one immutable rebuild result; decisions read it through a
// single atomic pointer load.
type fleetView struct {
	overCommit float64
	// cohorts maps measured devices to their bandwidth-derived cohort;
	// devices absent from the map fall back to the radio label.
	cohorts map[int64]string
	report  Report
}

// Scheduler derives assignment decisions from fleet telemetry. Decision
// methods (Cohort, Admit, OverCommit) are lock-free snapshot reads, safe
// for concurrent use with Rebuild.
type Scheduler struct {
	cfg  Config
	view atomic.Pointer[fleetView]
}

// New validates cfg and returns a scheduler holding an empty fleet view
// (every decision degrades to the unmeasured fallback until the first
// Rebuild).
func New(cfg Config) (*Scheduler, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return nil, err
	}
	s := &Scheduler{cfg: cfg}
	s.view.Store(&fleetView{
		overCommit: 0,
		cohorts:    map[int64]string{},
		report:     Report{Enabled: !cfg.Disable},
	})
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Enabled reports whether measured scheduling is active.
func (s *Scheduler) Enabled() bool { return !s.cfg.Disable }

// Cohort returns the device's transport cohort: the measured-bandwidth
// mapping when the device has enough downlink samples, else "" — the
// caller falls back to the radio label (exactly the pre-scheduler rule),
// so an unmeasured or disabled fleet behaves as before.
func (s *Scheduler) Cohort(id int64) string {
	if s.cfg.Disable {
		return ""
	}
	return s.view.Load().cohorts[id]
}

// TaskEstimate is the per-assignment cost model input: the byte volumes
// the candidate task would move in each direction.
type TaskEstimate struct {
	DownBytes int
	UpBytes   int
}

// EstimateSeconds evaluates the paper's task-duration model for one
// device with measured throughput: download + local training + upload.
// ok is false until both link EWMAs have earned MinSamples observations
// — the same trust gate the cohort map applies, so a single
// cold-connection artifact can neither deny a device at the deadline
// gate nor skew the over-commit scale and status quantiles. Callers
// treat !ok as "unmeasured" and admit optimistically.
//
// The returned estimate is in *wall* seconds: telemetry durations arrive
// in the device clock's domain (virtual time under a compressed load
// plane), and the TimeCompression divide maps the telemetry-domain
// estimate onto the wall-clock deadline window the gate compares against.
func (s *Scheduler) EstimateSeconds(tel Telemetry, est TaskEstimate) (float64, bool) {
	if tel.DownSamples < s.cfg.MinSamples || tel.UpSamples < s.cfg.MinSamples {
		return 0, false
	}
	sec := float64(est.DownBytes)/tel.DownBps + float64(est.UpBytes)/tel.UpBps
	if tel.TaskSamples >= s.cfg.MinSamples {
		// The training term earns trust the same way the link EWMAs do:
		// one absurd (screened-but-extreme) reported duration must not
		// gate a device for the many probe cycles an EWMA takes to
		// forget it.
		sec += tel.TaskSec
	}
	return sec / s.cfg.TimeCompression, true
}

// Admit is the deadline gate: it reports whether the device's estimated
// task duration fits inside the remaining round window (scaled by the
// configured slack). Devices without telemetry are admitted — the gate
// only rejects devices *measured* to be too slow.
func (s *Scheduler) Admit(tel Telemetry, remaining time.Duration, est TaskEstimate) bool {
	if s.cfg.Disable || remaining <= 0 {
		// A non-positive window is the round's problem (its own deadline
		// check denies), not the device's.
		return true
	}
	sec, ok := s.EstimateSeconds(tel, est)
	if !ok {
		return true
	}
	return sec <= remaining.Seconds()*s.cfg.DeadlineSlack
}

// ProbeDue reports whether a device's nth consecutive deadline-gate
// denial should be admitted anyway as a re-measurement probe: the
// streak has reached the ProbeEvery threshold and no fresh telemetry
// has reset it yet.
func (s *Scheduler) ProbeDue(n int) bool {
	return s.cfg.ProbeEvery > 0 && n >= s.cfg.ProbeEvery
}

// OverCommit returns the sync-round assignment multiplier: the configured
// base scaled up by the measured on-time fraction of the eligible fleet
// (a fleet where only half the devices can finish on time needs twice the
// assignments to collect the same target), clamped to MaxOverCommit.
// Before the first rebuild — or with no measured devices — it returns the
// base unchanged.
func (s *Scheduler) OverCommit(base float64) float64 {
	if s.cfg.Disable {
		return base
	}
	v := s.view.Load()
	if v.overCommit == 0 {
		return base
	}
	oc := base * v.overCommit
	if oc > s.cfg.MaxOverCommit {
		oc = s.cfg.MaxOverCommit
	}
	if oc < base {
		oc = base
	}
	return oc
}

// Report returns the current fleet view's observability snapshot (the
// /v1/status scheduler section).
func (s *Scheduler) Report() Report { return s.view.Load().report }

// Rebuild recomputes the fleet view from a registry census: the
// bandwidth-derived cohort map, the deadline-driven over-commit scale,
// and the per-cohort histograms. deadline is the full round window the
// over-commit model provisions for; ests gives the typical task's byte
// volume per cohort name (a lowbw device moves its cohort's sparse
// encodings, not the default cohort's dense ones — costing everyone
// with one estimate would count every slow-cohort device as a straggler
// it isn't); a missing cohort falls back to the default cohort's entry.
// O(fleet) — call it from a maintenance loop, never a serving path.
func (s *Scheduler) Rebuild(devs []DeviceSample, deadline time.Duration, ests map[string]TaskEstimate) {
	if s.cfg.Disable {
		return
	}
	next := &fleetView{
		cohorts: make(map[int64]string, len(devs)),
		report: Report{
			Enabled: true,
			Cohorts: map[string]*CohortStats{
				transport.CohortDefault: newCohortStats(),
				transport.CohortLowBW:   newCohortStats(),
			},
		},
	}
	var estimates []float64
	onTime, measuredEligible := 0, 0
	window := deadline.Seconds() * s.cfg.DeadlineSlack
	for _, d := range devs {
		labelCohort := transport.LabelCohort(d.WiFi)
		cohort := labelCohort
		if d.Tel.DownSamples >= s.cfg.MinSamples {
			// Measured: bandwidth decides, the radio label does not.
			cohort = transport.CohortDefault
			if d.Tel.DownBps < s.cfg.LowBWBps {
				cohort = transport.CohortLowBW
			}
			next.cohorts[d.ID] = cohort
			next.report.Measured++
			if cohort != labelCohort {
				next.report.Remapped++
			}
			next.report.Cohorts[cohort].observe(d.Tel.DownBps)
		} else {
			next.report.Cohorts[cohort].Devices++
		}
		if d.Eligible {
			est, ok := ests[cohort]
			if !ok {
				est = ests[transport.CohortDefault]
			}
			if sec, ok := s.EstimateSeconds(d.Tel, est); ok {
				measuredEligible++
				estimates = append(estimates, sec)
				if sec <= window {
					onTime++
				}
			}
		}
	}
	next.report.Devices = len(devs)
	next.report.Footprint.SchedulerBytes = schedulerFootprint(devs, len(next.cohorts))
	if len(devs) > 0 {
		next.report.Footprint.SchedulerBytesPerDev =
			float64(next.report.Footprint.SchedulerBytes) / float64(len(devs))
	}
	if len(estimates) > 0 {
		sort.Float64s(estimates)
		next.report.EstTaskP50Sec = quantile(estimates, 0.50)
		next.report.EstTaskP90Sec = quantile(estimates, 0.90)
		next.report.EstTaskP99Sec = quantile(estimates, 0.99)
	}
	if measuredEligible > 0 {
		next.report.OnTimeFraction = float64(onTime) / float64(measuredEligible)
		// The scale only moves once the census clears the fleet-level
		// floor — a cold-start fleet whose first measured device happens
		// to straggle must not triple every round's budget off n=1.
		if measuredEligible >= s.cfg.MinCensus {
			frac := next.report.OnTimeFraction
			// The scale is the inverse on-time fraction: collecting K
			// updates from a fleet where only frac finish on time takes
			// K/frac assignments in expectation. Floor the fraction so a
			// transient all-slow census cannot explode the scale past
			// the cap's reach.
			if frac < 1/s.cfg.MaxOverCommit {
				frac = 1 / s.cfg.MaxOverCommit
			}
			next.overCommit = 1 / frac
		}
	}
	next.report.OverCommitScale = next.overCommit
	s.view.Store(next)
}

// mapEntryOverheadBytes approximates Go's per-entry map bookkeeping
// (tophash byte, load-factor headroom, overflow-bucket amortization) for
// footprint accounting. An estimate, deliberately round.
const mapEntryOverheadBytes = 16

// schedulerFootprint estimates the rebuild working set: the census
// buffer's full capacity (the coordinator reuses it across rebuilds, so
// capacity — not length — is what stays resident) plus the cohort map.
func schedulerFootprint(devs []DeviceSample, cohortEntries int) int64 {
	const sampleBytes = int64(unsafe.Sizeof(DeviceSample{}))
	// A cohort entry is an int64 key plus a string header; the string
	// bytes themselves are the two shared cohort-name constants.
	const cohortEntryBytes = 8 + 16 + mapEntryOverheadBytes
	return int64(cap(devs))*sampleBytes + int64(cohortEntries)*cohortEntryBytes
}

// quantile reads the q-quantile from an ascending slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WireSizeEstimate approximates the encoded byte volume of a dim-element
// vector under a scheme — the scheduling cost model's input. It mirrors
// the codec's framing (16-byte header) and per-scheme payload layout
// closely enough for throughput math; it is not an exact wire size.
func WireSizeEstimate(s codec.Scheme, dim int) int {
	const header = 16
	switch s.Kind {
	case codec.KindRawF64:
		return header + 8*dim
	case codec.KindF32:
		return header + 4*dim
	case codec.KindQ8:
		// ~1 byte/elem plus per-chunk scale overhead.
		return header + dim + dim/64 + 16
	case codec.KindTopK:
		k := s.TopK
		if k <= 0 {
			k = dim / 32
			if k < 1 {
				k = 1
			}
		}
		if k > dim {
			k = dim
		}
		// [u32 count][k×u32 index][k×f32 value] — 4+8k payload bytes,
		// matching encodeTopK exactly.
		return header + 4 + 8*k
	default:
		return header + 8*dim
	}
}
