package sched

import (
	"testing"
	"time"

	"flint/internal/codec"
	"flint/internal/tensor"
	"flint/internal/transport"
)

func mustNew(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	cfg, err := Config{}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Alpha != 0.3 || cfg.LowBWBps != 187_500 || cfg.MinSamples != 2 ||
		cfg.MaxOverCommit != 3 || cfg.DeadlineSlack != 0.8 ||
		cfg.RebuildEvery != 2*time.Second || cfg.ProbeEvery != 8 || cfg.MinCensus != 8 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	for _, bad := range []Config{
		{Alpha: 1.5},
		{Alpha: -0.1},
		{LowBWBps: -1},
		{MaxOverCommit: 0.5},
		{DeadlineSlack: 1.2},
	} {
		if _, err := bad.WithDefaults(); err == nil {
			t.Errorf("config %+v validated", bad)
		}
	}
}

func TestTelemetryEWMA(t *testing.T) {
	var tel Telemetry
	tel.ObserveUplink(1000, time.Second, 0.5)
	if tel.UpBps != 1000 || tel.UpSamples != 1 {
		t.Fatalf("seed observation: %+v", tel)
	}
	tel.ObserveUplink(3000, time.Second, 0.5)
	if tel.UpBps != 2000 {
		t.Fatalf("EWMA blend: got %v, want 2000", tel.UpBps)
	}
	// A zero-duration loopback observation must not produce +Inf.
	tel.ObserveDownlink(500, 0, 0.5)
	if tel.DownBps <= 0 || tel.DownBps > 500/minTransfer.Seconds()+1 {
		t.Fatalf("floored transfer produced %v B/s", tel.DownBps)
	}
	// Zero-byte and zero-duration task observations are dropped.
	tel.ObserveUplink(0, time.Second, 0.5)
	if tel.UpSamples != 2 {
		t.Fatalf("zero-byte observation counted: %+v", tel)
	}
	tel.ObserveTask(2*time.Second, 0.5)
	tel.ObserveTask(0, 0.5)
	if tel.TaskSamples != 1 || tel.TaskSec != 2 {
		t.Fatalf("task EWMA: %+v", tel)
	}
}

func TestAdmitDeadlineGate(t *testing.T) {
	s := mustNew(t, Config{DeadlineSlack: 0.8})
	est := TaskEstimate{DownBytes: 1_000_000, UpBytes: 1_000_000}
	fast := Telemetry{DownBps: 1e6, UpBps: 1e6, DownSamples: 3, UpSamples: 3}
	slow := Telemetry{DownBps: 1e4, UpBps: 1e4, DownSamples: 3, UpSamples: 3}

	// fast: 2s estimate fits a 10s window (8s after slack).
	if !s.Admit(fast, 10*time.Second, est) {
		t.Error("fast device rejected")
	}
	// slow: 200s estimate does not.
	if s.Admit(slow, 10*time.Second, est) {
		t.Error("slow device admitted")
	}
	// Unmeasured devices are admitted optimistically.
	if !s.Admit(Telemetry{}, time.Second, est) {
		t.Error("unmeasured device rejected")
	}
	// Reported training time counts against the window.
	trained := fast
	trained.TaskSec, trained.TaskSamples = 30, 2
	if s.Admit(trained, 10*time.Second, est) {
		t.Error("long-training device admitted")
	}
	// Disabled scheduler admits everyone.
	off := mustNew(t, Config{Disable: true})
	if !off.Admit(slow, 10*time.Second, est) {
		t.Error("disabled scheduler rejected a device")
	}
	// Below MinSamples the EWMAs are untrusted in every decision: the
	// gate admits exactly like the unmeasured case.
	under := slow
	under.DownSamples, under.UpSamples = 1, 1
	if !s.Admit(under, 10*time.Second, est) {
		t.Error("under-sampled device rejected")
	}
}

func TestProbeDue(t *testing.T) {
	s := mustNew(t, Config{ProbeEvery: 3})
	// Threshold semantics: once the streak crosses ProbeEvery it stays
	// armed (a probe that loses the assignment race must retry on the
	// next request, not wait out another full streak).
	for n, want := range map[int]bool{1: false, 2: false, 3: true, 4: true, 6: true} {
		if got := s.ProbeDue(n); got != want {
			t.Errorf("ProbeDue(%d) = %v, want %v", n, got, want)
		}
	}
	if off := mustNew(t, Config{ProbeEvery: -1}); off.ProbeDue(8) {
		t.Error("disabled probing still fires")
	}
}

func TestRebuildCohortMapOverridesRadioLabel(t *testing.T) {
	s := mustNew(t, Config{LowBWBps: 100_000, MinSamples: 2})
	devs := []DeviceSample{
		// Slow "WiFi" device: measured below threshold → lowbw.
		{ID: 1, WiFi: true, Eligible: true, Tel: Telemetry{DownBps: 20_000, UpBps: 20_000, DownSamples: 3, UpSamples: 3}},
		// Fast "cellular" device: measured above threshold → default.
		{ID: 2, WiFi: false, Eligible: true, Tel: Telemetry{DownBps: 2e6, UpBps: 1e6, DownSamples: 3, UpSamples: 3}},
		// Unmeasured cellular device: radio label wins.
		{ID: 3, WiFi: false, Eligible: true},
		// One sample is below MinSamples: radio label wins.
		{ID: 4, WiFi: true, Eligible: true, Tel: Telemetry{DownBps: 10, UpBps: 10, DownSamples: 1, UpSamples: 1}},
	}
	s.Rebuild(devs, 10*time.Second,
		map[string]TaskEstimate{transport.CohortDefault: {DownBytes: 1000, UpBytes: 1000}})

	if got := s.Cohort(1); got != transport.CohortLowBW {
		t.Errorf("slow WiFi device: cohort %q, want lowbw", got)
	}
	if got := s.Cohort(2); got != transport.CohortDefault {
		t.Errorf("fast cellular device: cohort %q, want default", got)
	}
	if got := s.Cohort(3); got != "" {
		t.Errorf("unmeasured device mapped to %q, want radio-label fallback", got)
	}
	if got := s.Cohort(4); got != "" {
		t.Errorf("under-sampled device mapped to %q, want radio-label fallback", got)
	}
	rep := s.Report()
	if rep.Devices != 4 || rep.Measured != 2 || rep.Remapped != 2 {
		t.Errorf("report census: %+v", rep)
	}
	if rep.Cohorts[transport.CohortDefault].Devices != 2 || rep.Cohorts[transport.CohortLowBW].Devices != 2 {
		t.Errorf("cohort sizes: default=%+v lowbw=%+v",
			rep.Cohorts[transport.CohortDefault], rep.Cohorts[transport.CohortLowBW])
	}
	// The fast device (16 Mbps) lands in the 8-16 or 16-32 bucket — check
	// total measured histogram mass instead of pinning the bucket.
	sum := 0
	for _, n := range rep.Cohorts[transport.CohortDefault].BandwidthHist {
		sum += n
	}
	if sum != 1 {
		t.Errorf("default cohort histogram mass %d, want 1", sum)
	}
	if len(BucketLabels()) != len(rep.Cohorts[transport.CohortDefault].BandwidthHist) {
		t.Errorf("bucket labels (%d) misaligned with histogram (%d)",
			len(BucketLabels()), len(rep.Cohorts[transport.CohortDefault].BandwidthHist))
	}
}

func TestOverCommitFromStragglerTail(t *testing.T) {
	s := mustNew(t, Config{MaxOverCommit: 3, DeadlineSlack: 1, MinCensus: 2})
	// Before any rebuild: base passes through.
	if got := s.OverCommit(1.3); got != 1.3 {
		t.Fatalf("pre-rebuild over-commit %v", got)
	}
	est := map[string]TaskEstimate{
		transport.CohortDefault: {DownBytes: 100_000, UpBytes: 100_000},
	}
	mk := func(id int64, bps float64) DeviceSample {
		return DeviceSample{ID: id, WiFi: true, Eligible: true,
			Tel: Telemetry{DownBps: bps, UpBps: bps, DownSamples: 3, UpSamples: 3}}
	}
	// 2 of 4 eligible devices finish a 200k-byte task inside 10s: the
	// fast pair needs ~2s, the slow pair ~2000s.
	devs := []DeviceSample{mk(1, 1e5), mk(2, 1e5), mk(3, 100), mk(4, 100)}
	s.Rebuild(devs, 10*time.Second, est)
	if got := s.OverCommit(1.0); got != 2.0 {
		t.Errorf("half-on-time fleet: over-commit %v, want 2.0", got)
	}
	rep := s.Report()
	if rep.OnTimeFraction != 0.5 || rep.OverCommitScale != 2.0 {
		t.Errorf("report: on-time %v scale %v", rep.OnTimeFraction, rep.OverCommitScale)
	}
	if rep.EstTaskP50Sec <= 0 || rep.EstTaskP99Sec < rep.EstTaskP50Sec {
		t.Errorf("straggler quantiles: p50=%v p99=%v", rep.EstTaskP50Sec, rep.EstTaskP99Sec)
	}
	// The cap bounds a mostly-slow fleet.
	devs = []DeviceSample{mk(1, 1e5), mk(2, 100), mk(3, 100), mk(4, 100)}
	s.Rebuild(devs, 10*time.Second, est)
	if got := s.OverCommit(1.0); got != 3.0 {
		t.Errorf("capped over-commit %v, want 3.0", got)
	}
	// The scale never pulls below the configured base.
	devs = []DeviceSample{mk(1, 1e5), mk(2, 1e5)}
	s.Rebuild(devs, 10*time.Second, est)
	if got := s.OverCommit(1.3); got != 1.3 {
		t.Errorf("all-on-time fleet: over-commit %v, want base 1.3", got)
	}
	// Below the census floor the scale stays at the base: one cold-start
	// straggler must not triple the fleet's budget.
	s.Rebuild([]DeviceSample{mk(3, 100)}, 10*time.Second, est)
	if got := s.OverCommit(1.0); got != 1.0 {
		t.Errorf("n=1 census moved over-commit to %v", got)
	}
	if rep := s.Report(); rep.OnTimeFraction != 0 {
		t.Errorf("n=1 census on-time fraction %v, want 0 reported", rep.OnTimeFraction)
	}
}

// TestRebuildUsesCohortEstimates: a slow device is costed with its own
// cohort's (sparse, small) wire schemes, not the default cohort's dense
// ones — otherwise every lowbw device would be miscounted as a straggler
// and over-commit would inflate for rounds that actually close on time.
func TestRebuildUsesCohortEstimates(t *testing.T) {
	s := mustNew(t, Config{LowBWBps: 1e6, MinSamples: 1, DeadlineSlack: 1})
	devs := []DeviceSample{{ID: 1, WiFi: true, Eligible: true,
		Tel: Telemetry{DownBps: 1e4, UpBps: 1e4, DownSamples: 2, UpSamples: 2}}}
	ests := map[string]TaskEstimate{
		// Default task: 5 MB → 500 s at 10 KB/s, hopeless. LowBW task:
		// 25 KB each way → 5 s, comfortably inside the 10 s window.
		transport.CohortDefault: {DownBytes: 5_000_000, UpBytes: 5_000_000},
		transport.CohortLowBW:   {DownBytes: 25_000, UpBytes: 25_000},
	}
	s.Rebuild(devs, 10*time.Second, ests)
	rep := s.Report()
	if s.Cohort(1) != transport.CohortLowBW {
		t.Fatalf("device not in lowbw cohort: %q", s.Cohort(1))
	}
	if rep.OnTimeFraction != 1 {
		t.Fatalf("on-time fraction %v, want 1 (device costed with the wrong cohort's schemes?)", rep.OnTimeFraction)
	}
	if got := s.OverCommit(1.0); got != 1.0 {
		t.Fatalf("over-commit %v, want 1.0", got)
	}
}

func TestWireSizeEstimate(t *testing.T) {
	const dim = 10_000
	f32 := WireSizeEstimate(codec.F32, dim)
	q8 := WireSizeEstimate(codec.Q8, dim)
	topk := WireSizeEstimate(codec.TopK(0), dim)
	raw := WireSizeEstimate(codec.RawF64, dim)
	if !(topk < q8 && q8 < f32 && f32 < raw) {
		t.Fatalf("size ordering violated: topk=%d q8=%d f32=%d raw=%d", topk, q8, f32, raw)
	}
	// Estimates should be within ~20% of the real encoded size (they
	// drive throughput math, not framing); topk's layout is fixed by k,
	// so its estimate must be exact.
	for _, s := range []codec.Scheme{codec.F32, codec.Q8, codec.RawF64, codec.TopK(0), codec.TopK(100)} {
		v := make(tensor.Vector, dim)
		for i := range v {
			v[i] = float64(i%13) * 0.1
		}
		blob, err := codec.Encode(v, s)
		if err != nil {
			t.Fatal(err)
		}
		est := WireSizeEstimate(s, dim)
		if s.Kind == codec.KindTopK {
			if est != len(blob) {
				t.Errorf("%s: estimate %d != actual %d", s, est, len(blob))
			}
			continue
		}
		ratio := float64(est) / float64(len(blob))
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("%s: estimate %d vs actual %d (ratio %.2f)", s, est, len(blob), ratio)
		}
	}
}

func TestTelemetryDecay(t *testing.T) {
	now := time.Unix(1000, 0)
	ttl := 10 * time.Minute
	tel := Telemetry{
		UpBps: 5e5, DownBps: 2e5, TaskSec: 3,
		UpSamples: 8, DownSamples: 4, TaskSamples: 2,
		LastSample: now,
	}
	// Fresh telemetry (idle < ttl) passes through untouched.
	if got := tel.Decayed(now.Add(ttl-time.Second), ttl); got != tel {
		t.Fatalf("fresh telemetry decayed: %+v", got)
	}
	// ttl <= 0 disables decay entirely.
	if got := tel.Decayed(now.Add(100*ttl), 0); got != tel {
		t.Fatalf("ttl=0 decayed: %+v", got)
	}
	// Never-observed telemetry has no decay clock.
	if got := (Telemetry{UpSamples: 3}).Decayed(now, ttl); got.UpSamples != 3 {
		t.Fatalf("zero LastSample decayed: %+v", got)
	}
	// One elapsed ttl halves every sample count; values are kept so a
	// returning device blends against its old mean, not a cold seed.
	got := tel.Decayed(now.Add(ttl), ttl)
	if got.UpSamples != 4 || got.DownSamples != 2 || got.TaskSamples != 1 {
		t.Fatalf("one-ttl decay counts: %+v", got)
	}
	if got.UpBps != tel.UpBps || got.DownBps != tel.DownBps || got.TaskSec != tel.TaskSec {
		t.Fatalf("decay touched EWMA values: %+v", got)
	}
	// Three ttls: three halvings (8 -> 1, 4 -> 0, 2 -> 0).
	got = tel.Decayed(now.Add(3*ttl), ttl)
	if got.UpSamples != 1 || got.DownSamples != 0 || got.TaskSamples != 0 {
		t.Fatalf("three-ttl decay counts: %+v", got)
	}
	// A device idle for eons zeroes out without shift-width UB.
	got = tel.Decayed(now.Add(1e6*ttl), ttl)
	if got.UpSamples != 0 || got.DownSamples != 0 || got.TaskSamples != 0 {
		t.Fatalf("long-idle decay counts: %+v", got)
	}
	// Decay rehabilitates through the trust gate: a decayed device no
	// longer clears MinSamples, so the scheduler treats it as unmeasured.
	if min := 2; tel.UpSamples >= min && tel.Decayed(now.Add(3*ttl), ttl).UpSamples >= min {
		t.Fatal("decay never dropped the device below MinSamples")
	}
}

func TestTelemetryTTLDefault(t *testing.T) {
	cfg, err := Config{}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TelemetryTTL != 10*time.Minute {
		t.Fatalf("TelemetryTTL default = %s, want 10m", cfg.TelemetryTTL)
	}
}
