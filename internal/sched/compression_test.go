package sched

import (
	"math/rand"
	"testing"
	"time"
)

// TestTimeCompressionEquivalence is the virtual-time clock contract's
// proof obligation: a fleet whose devices report timings in a compressed
// virtual clock (telemetry EWMAs numerically equal to the wall fleet's,
// arriving S times faster) against a server whose RoundDeadline is D/S
// must produce exactly the wall-clock fleet's decisions — the same
// cohort remapping, the same deadline-gate verdicts, the same
// over-commit scale. Any divergence means compressed load tests measure
// a different scheduler than production runs.
func TestTimeCompressionEquivalence(t *testing.T) {
	const S = 60.0
	const wallDeadline = 30 * time.Second
	rng := rand.New(rand.NewSource(42))

	// A mixed fleet: measured fast devices, measured slow devices,
	// unmeasured devices, some ineligible — every branch the cohort map
	// and the over-commit model take.
	now := time.Unix(1_700_000_000, 0)
	devs := make([]DeviceSample, 400)
	for i := range devs {
		var tel Telemetry
		switch i % 4 {
		case 0: // fast, well measured
			tel = Telemetry{
				UpBps: 2e5 + rng.Float64()*1e6, DownBps: 5e5 + rng.Float64()*2e6,
				TaskSec:   1 + rng.Float64()*5,
				UpSamples: 4, DownSamples: 4, TaskSamples: 4, LastSample: now,
			}
		case 1: // slow link: below the lowbw threshold, long tasks
			tel = Telemetry{
				UpBps: 2e3 + rng.Float64()*2e4, DownBps: 1e3 + rng.Float64()*1.8e5,
				TaskSec:   10 + rng.Float64()*60,
				UpSamples: 3, DownSamples: 3, TaskSamples: 3, LastSample: now,
			}
		case 2: // one sample: below MinSamples, must stay on radio label
			tel = Telemetry{DownBps: 1e4, DownSamples: 1, LastSample: now}
		default: // never observed
		}
		devs[i] = DeviceSample{ID: int64(i + 1), WiFi: i%3 != 0, Eligible: i%5 != 0, Tel: tel}
	}
	ests := map[string]TaskEstimate{
		"default": {DownBytes: 760_000, UpBytes: 190_000},
		"lowbw":   {DownBytes: 48_000, UpBytes: 190_000},
	}

	wall := mustNew(t, Config{MinSamples: 2})
	wall.Rebuild(devs, wallDeadline, ests)
	comp := mustNew(t, Config{MinSamples: 2, TimeCompression: S})
	comp.Rebuild(devs, time.Duration(float64(wallDeadline)/S), ests)

	wr, cr := wall.Report(), comp.Report()
	if wr.OverCommitScale != cr.OverCommitScale {
		t.Errorf("over-commit diverged: wall x%v, compressed x%v", wr.OverCommitScale, cr.OverCommitScale)
	}
	if wr.Measured != cr.Measured || wr.Remapped != cr.Remapped {
		t.Errorf("census diverged: wall measured/remapped %d/%d, compressed %d/%d",
			wr.Measured, wr.Remapped, cr.Measured, cr.Remapped)
	}
	if wr.OnTimeFraction != cr.OnTimeFraction {
		t.Errorf("on-time fraction diverged: %v vs %v", wr.OnTimeFraction, cr.OnTimeFraction)
	}
	for _, d := range devs {
		if wc, cc := wall.Cohort(d.ID), comp.Cohort(d.ID); wc != cc {
			t.Fatalf("device %d: cohort %q under wall clock, %q compressed", d.ID, wc, cc)
		}
		est := ests[wall.Cohort(d.ID)]
		// The gate sees the full round window in each clock's own wall
		// domain: D for the wall fleet, D/S for the compressed one.
		wAdmit := wall.Admit(d.Tel, wallDeadline, est)
		cAdmit := comp.Admit(d.Tel, time.Duration(float64(wallDeadline)/S), est)
		if wAdmit != cAdmit {
			t.Fatalf("device %d: deadline gate %v under wall clock, %v compressed (tel %+v)",
				d.ID, wAdmit, cAdmit, d.Tel)
		}
	}

	// The estimate itself must land in the scheduler's wall domain:
	// virtual-domain telemetry divided by S.
	tel := Telemetry{UpBps: 1e5, DownBps: 1e6, TaskSec: 12,
		UpSamples: 3, DownSamples: 3, TaskSamples: 3, LastSample: now}
	wEst, ok1 := wall.EstimateSeconds(tel, ests["default"])
	cEst, ok2 := comp.EstimateSeconds(tel, ests["default"])
	if !ok1 || !ok2 {
		t.Fatal("estimate not trusted despite samples")
	}
	if got, want := cEst, wEst/S; !approxEq(got, want) {
		t.Fatalf("compressed estimate %v, want wall estimate %v / %v = %v", got, wEst, S, want)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12*(1+b)
}

// TestTimeCompressionValidation pins the config contract: compression
// below 1 is rejected (virtual time cannot run slower than wall), and
// the zero value defaults to production's 1:1 clock.
func TestTimeCompressionValidation(t *testing.T) {
	if _, err := (Config{TimeCompression: 0.5}).WithDefaults(); err == nil {
		t.Fatal("compression 0.5 accepted")
	}
	cfg, err := Config{}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TimeCompression != 1 {
		t.Fatalf("default compression %v, want 1", cfg.TimeCompression)
	}
	for _, s := range []float64{1, 60, 720} {
		if _, err := (Config{TimeCompression: s}).WithDefaults(); err != nil {
			t.Fatalf("compression %v rejected: %v", s, err)
		}
	}
}
