package coord

import (
	"fmt"
	"sync"
	"time"

	"flint/internal/aggregator"
)

// Phase is a round's position in its lifecycle state machine.
type Phase string

// The round lifecycle. A round opens against a base model version, hands
// its task to devices while assigning, collects their updates, aggregates
// once it has enough, and commits a new version — or is abandoned if the
// deadline passes below quorum.
const (
	PhaseOpen        Phase = "open"
	PhaseAssigning   Phase = "assigning"
	PhaseCollecting  Phase = "collecting"
	PhaseAggregating Phase = "aggregating"
	PhaseCommitted   Phase = "committed"
	PhaseAbandoned   Phase = "abandoned"
)

// validNext encodes the legal lifecycle transitions.
var validNext = map[Phase][]Phase{
	PhaseOpen:        {PhaseAssigning, PhaseAbandoned},
	PhaseAssigning:   {PhaseCollecting, PhaseAbandoned},
	PhaseCollecting:  {PhaseAggregating, PhaseAbandoned},
	PhaseAggregating: {PhaseCommitted, PhaseAbandoned}, // abandoned on aggregate/publish failure
	PhaseCommitted:   nil,
	PhaseAbandoned:   nil,
}

// Terminal reports whether the phase ends the round.
func (p Phase) Terminal() bool { return p == PhaseCommitted || p == PhaseAbandoned }

// Round is one unit of the training lifecycle: a sync FedAvg round or one
// async FedBuff buffer generation. It synchronizes its own mutable state
// (phase, assignments, update buffer) under a private mutex whose critical
// sections are all O(1): the task-serving path and the ingest worker touch
// it concurrently, and the commit pipeline's only holds are the phase
// flips at the edges of aggregation — never the O(K·dim) work between
// them, so serving never stalls behind a commit.
type Round struct {
	// ID is a monotonically increasing round number (1-based).
	ID uint64
	// BaseVersion is the published model version the round trains from.
	BaseVersion int
	// Target is K: updates needed to aggregate immediately.
	Target int
	// Quorum is the minimum accepted at the deadline.
	Quorum int
	// MaxAssign caps how many devices may hold this round's task.
	MaxAssign int
	// Deadline bounds the round's wall-clock lifetime.
	Deadline time.Time
	// Opened is when the round opened.
	Opened time.Time

	mu    sync.Mutex
	phase Phase
	// assignedIDs records which devices hold this round's task, so
	// terminal cleanup releases exactly those instead of scanning the
	// whole registry.
	assignedIDs []int64
	updates     []aggregator.Update
	// screenedNorm counts updates the commit pipeline's norm screen
	// rejected before the reduce; epsilonSpent is the cumulative privacy
	// budget after this round's DP noise (0 when DP is off). Both are
	// stamped by the commit pipeline and surface in the round summary.
	screenedNorm int
	epsilonSpent float64
}

// newRound opens a round in PhaseOpen.
func newRound(id uint64, baseVersion int, target, quorum, maxAssign int, opened time.Time, deadline time.Time) *Round {
	return &Round{
		ID:          id,
		BaseVersion: baseVersion,
		Target:      target,
		Quorum:      quorum,
		MaxAssign:   maxAssign,
		Opened:      opened,
		Deadline:    deadline,
		phase:       PhaseOpen,
		updates:     make([]aggregator.Update, 0, target),
	}
}

// Phase returns the current lifecycle phase.
func (r *Round) Phase() Phase {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phase
}

// Assigned returns how many devices hold this round's task.
func (r *Round) Assigned() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.assignedIDs)
}

// Collected returns how many updates the round holds.
func (r *Round) Collected() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.updates)
}

// advance moves the round to phase to, validating the transition.
func (r *Round) advance(to Phase) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.advanceLocked(to)
}

func (r *Round) advanceLocked(to Phase) error {
	for _, ok := range validNext[r.phase] {
		if ok == to {
			r.phase = to
			return nil
		}
	}
	return fmt.Errorf("coord: round %d: illegal transition %s → %s", r.ID, r.phase, to)
}

// assignable reports whether the round can hand out another task at now —
// the task path's cheap pre-check; tryAssign re-validates atomically.
func (r *Round) assignable(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.assignableLocked(now)
}

func (r *Round) assignableLocked(now time.Time) bool {
	switch r.phase {
	case PhaseOpen, PhaseAssigning, PhaseCollecting:
	default:
		return false
	}
	return len(r.assignedIDs) < r.MaxAssign && now.Before(r.Deadline)
}

// tryAssign atomically checks the budget, phase, and deadline and records
// one handed-out task, advancing open → assigning on the first. It
// returns false when the round cannot hand out a task (full, terminal, or
// past deadline) — concurrent requesters race fairly on the budget here,
// with no coordinator-wide lock.
func (r *Round) tryAssign(deviceID int64, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.assignableLocked(now) {
		return false
	}
	if r.phase == PhaseOpen {
		if err := r.advanceLocked(PhaseAssigning); err != nil {
			return false
		}
	}
	r.assignedIDs = append(r.assignedIDs, deviceID)
	return true
}

// acceptingLocked reports whether the round can ingest an update. PhaseOpen
// qualifies because async buffers accept carry-over updates from devices
// assigned in a previous generation before anyone joins the new one.
func (r *Round) acceptingLocked() bool {
	return r.phase == PhaseOpen || r.phase == PhaseAssigning || r.phase == PhaseCollecting
}

// recordUpdate buffers one device update, walking the lifecycle forward to
// collecting. The caller has already validated round ID and staleness.
func (r *Round) recordUpdate(u aggregator.Update) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.acceptingLocked() {
		return fmt.Errorf("coord: round %d not accepting updates in phase %s", r.ID, r.phase)
	}
	for r.phase != PhaseCollecting {
		next := PhaseAssigning
		if r.phase == PhaseAssigning {
			next = PhaseCollecting
		}
		if err := r.advanceLocked(next); err != nil {
			return err
		}
	}
	r.updates = append(r.updates, u)
	return nil
}

// ready reports whether the round should aggregate now: it reached its
// target, or its deadline passed with quorum met.
func (r *Round) ready(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.acceptingLocked() {
		return false
	}
	if len(r.updates) >= r.Target {
		return true
	}
	return !now.Before(r.Deadline) && len(r.updates) >= r.Quorum
}

// expired reports whether the deadline passed below quorum, dooming the
// round.
func (r *Round) expired(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.phase.Terminal() && !now.Before(r.Deadline) && len(r.updates) < r.Quorum
}

// beginAggregate flips the round into PhaseAggregating and hands the
// caller its update buffer. After the flip no new update can land (and no
// new assignment succeeds), so the returned slice is stable without
// holding any lock through the aggregation itself. ok is false when the
// transition is illegal — e.g. a second committer raced here first.
func (r *Round) beginAggregate() (updates []aggregator.Update, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.advanceLocked(PhaseAggregating); err != nil {
		return nil, false
	}
	return r.updates, true
}

// noteScreened records how many updates the norm screen rejected.
func (r *Round) noteScreened(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.screenedNorm = n
}

// noteEpsilon records the cumulative privacy budget after this round's
// DP noise.
func (r *Round) noteEpsilon(eps float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epsilonSpent = eps
}

// conclude moves the round to its terminal phase (committed/abandoned).
func (r *Round) conclude(to Phase) error { return r.advance(to) }

// expireIfStarved atomically re-checks the starvation predicate (deadline
// passed, below quorum) and concludes the round abandoned when it still
// holds. The recheck and the terminal flip share one critical section, so
// an update that reached quorum between an unlocked expiry check and this
// call can never be silently dropped by the abandonment — the caller sees
// false and commits instead.
func (r *Round) expireIfStarved(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.phase.Terminal() || now.Before(r.Deadline) || len(r.updates) >= r.Quorum {
		return false
	}
	return r.advanceLocked(PhaseAbandoned) == nil
}

// releasePayloads returns every buffered update's pooled wire payload to
// the codec pool and drops the references. Called exactly once, after the
// round goes terminal: aggregation (if any) has finished, so nothing can
// still be reading the wire bytes. Idempotent via Payload.Release.
func (r *Round) releasePayloads() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.updates {
		if p := r.updates[i].Payload; p != nil {
			p.Release()
			r.updates[i].Payload = nil
		}
	}
}

// takeAssigned returns a copy of the device IDs holding this round's
// task, for terminal cleanup (copied so the registry release loop runs
// without the round lock).
func (r *Round) takeAssigned() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int64, len(r.assignedIDs))
	copy(out, r.assignedIDs)
	return out
}

// status snapshots the externally visible round state in one critical
// section (for /v1/status, which must not observe torn counts).
func (r *Round) status() RoundStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RoundStatus{
		ID:        r.ID,
		Phase:     r.phase,
		Base:      r.BaseVersion,
		Assigned:  len(r.assignedIDs),
		Collected: len(r.updates),
		Target:    r.Target,
		Quorum:    r.Quorum,
		Deadline:  r.Deadline,
	}
}

// RoundSummary is the retained record of a finished round.
type RoundSummary struct {
	ID          uint64        `json:"id"`
	Phase       Phase         `json:"phase"`
	BaseVersion int           `json:"base_version"`
	NewVersion  int           `json:"new_version,omitempty"`
	Assigned    int           `json:"assigned"`
	Updates     int           `json:"updates"`
	Duration    time.Duration `json:"duration_ns"`
	// ScreenedNorm counts updates the norm screen rejected before the
	// reduce (still included in Updates — they were collected).
	ScreenedNorm int `json:"screened_norm,omitempty"`
	// EpsilonSpent is the cumulative (ε, δ) privacy budget after this
	// round's DP noise; 0 when DP is off.
	EpsilonSpent float64 `json:"epsilon_spent,omitempty"`
}

func (r *Round) summary(newVersion int, now time.Time) RoundSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RoundSummary{
		ID:           r.ID,
		Phase:        r.phase,
		BaseVersion:  r.BaseVersion,
		NewVersion:   newVersion,
		Assigned:     len(r.assignedIDs),
		Updates:      len(r.updates),
		Duration:     now.Sub(r.Opened),
		ScreenedNorm: r.screenedNorm,
		EpsilonSpent: r.epsilonSpent,
	}
}
