package coord

import (
	"testing"
	"time"

	"flint/internal/aggregator"
	"flint/internal/tensor"
)

func testRound(target, quorum, maxAssign int) *Round {
	opened := time.Unix(1000, 0)
	return newRound(1, 1, target, quorum, maxAssign, opened, opened.Add(time.Minute))
}

func upd(id int64) aggregator.Update {
	return aggregator.Update{ClientID: id, Delta: tensor.Vector{0}, Weight: 1}
}

func TestRoundLifecycleHappyPath(t *testing.T) {
	r := testRound(2, 1, 4)
	if r.Phase() != PhaseOpen {
		t.Fatalf("new round phase = %s, want open", r.Phase())
	}
	now := r.Opened
	if !r.assignable(now) {
		t.Fatal("fresh round should be assignable")
	}
	if !r.tryAssign(1, now) {
		t.Fatal("assignable round refused an assignment")
	}
	if r.Phase() != PhaseAssigning {
		t.Fatalf("after first assignment phase = %s, want assigning", r.Phase())
	}
	if err := r.recordUpdate(upd(1)); err != nil {
		t.Fatal(err)
	}
	if r.Phase() != PhaseCollecting {
		t.Fatalf("after first update phase = %s, want collecting", r.Phase())
	}
	if r.ready(now) {
		t.Fatal("round below target and deadline should not be ready")
	}
	if err := r.recordUpdate(upd(2)); err != nil {
		t.Fatal(err)
	}
	if !r.ready(now) {
		t.Fatal("round at target should be ready")
	}
	if err := r.advance(PhaseAggregating); err != nil {
		t.Fatal(err)
	}
	if err := r.advance(PhaseCommitted); err != nil {
		t.Fatal(err)
	}
	if !r.Phase().Terminal() {
		t.Fatal("committed should be terminal")
	}
}

func TestRoundIllegalTransitions(t *testing.T) {
	r := testRound(2, 1, 4)
	// Straight to committed from open is illegal.
	if err := r.advance(PhaseCommitted); err == nil {
		t.Fatal("open → committed should be rejected")
	}
	if err := r.advance(PhaseAggregating); err == nil {
		t.Fatal("open → aggregating should be rejected")
	}
	// Terminal rounds reject everything.
	if err := r.advance(PhaseAbandoned); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Phase{PhaseOpen, PhaseAssigning, PhaseCollecting, PhaseAggregating, PhaseCommitted} {
		if err := r.advance(p); err == nil {
			t.Fatalf("abandoned → %s should be rejected", p)
		}
	}
	if err := r.recordUpdate(upd(1)); err == nil {
		t.Fatal("abandoned round accepted an update")
	}
}

func TestRoundOpenAcceptsCarryOverUpdate(t *testing.T) {
	// Async buffers ingest updates from devices assigned in a previous
	// generation before anyone joins the new round.
	r := testRound(4, 1, 8)
	if err := r.recordUpdate(upd(9)); err != nil {
		t.Fatal(err)
	}
	if r.Phase() != PhaseCollecting {
		t.Fatalf("phase = %s, want collecting", r.Phase())
	}
}

func TestRoundQuorumAndDeadline(t *testing.T) {
	r := testRound(4, 2, 8)
	now := r.Opened
	after := r.Deadline.Add(time.Second)

	if err := r.recordUpdate(upd(1)); err != nil {
		t.Fatal(err)
	}
	// One update: below quorum — not ready, expired once past deadline.
	if r.ready(after) {
		t.Fatal("below-quorum round should not be ready at deadline")
	}
	if !r.expired(after) {
		t.Fatal("below-quorum round should be expired past its deadline")
	}
	if r.expired(now) {
		t.Fatal("round should not be expired before its deadline")
	}

	if err := r.recordUpdate(upd(2)); err != nil {
		t.Fatal(err)
	}
	// Quorum met: ready at deadline, no longer expired.
	if r.ready(now) {
		t.Fatal("quorum-but-below-target round is not ready before deadline")
	}
	if !r.ready(after) {
		t.Fatal("quorum round should be ready past its deadline")
	}
	if r.expired(after) {
		t.Fatal("quorum round should not expire")
	}
}

func TestRoundAssignmentBudget(t *testing.T) {
	r := testRound(2, 1, 2)
	now := r.Opened
	for i := 0; i < 2; i++ {
		if !r.assignable(now) {
			t.Fatalf("round should be assignable at %d/%d", r.Assigned(), r.MaxAssign)
		}
		if !r.tryAssign(int64(i+1), now) {
			t.Fatalf("assignment %d refused within budget", i+1)
		}
	}
	if r.assignable(now) {
		t.Fatal("round past MaxAssign should not be assignable")
	}
	if r.tryAssign(3, now) {
		t.Fatal("round past MaxAssign accepted an assignment")
	}
	if r.tryAssign(3, r.Deadline) {
		t.Fatal("round at deadline accepted an assignment")
	}
}

func TestRoundExpireIfStarvedRecheck(t *testing.T) {
	r := testRound(4, 2, 8)
	after := r.Deadline.Add(time.Second)

	// Before the deadline nothing expires, regardless of updates.
	if r.expireIfStarved(r.Opened) {
		t.Fatal("round expired before its deadline")
	}
	// At quorum the abandonment must refuse — the caller commits instead
	// (this is the recheck that protects an update accepted between the
	// watchdog's unlocked expiry check and the terminal flip).
	if err := r.recordUpdate(upd(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.recordUpdate(upd(2)); err != nil {
		t.Fatal(err)
	}
	if r.expireIfStarved(after) {
		t.Fatal("quorum-complete round was abandoned")
	}
	if r.Phase() != PhaseCollecting {
		t.Fatalf("refused expiry mutated phase to %s", r.Phase())
	}

	// Below quorum past the deadline it concludes atomically.
	starved := testRound(4, 2, 8)
	if err := starved.recordUpdate(upd(1)); err != nil {
		t.Fatal(err)
	}
	if !starved.expireIfStarved(after) {
		t.Fatal("starved round did not expire")
	}
	if starved.Phase() != PhaseAbandoned {
		t.Fatalf("expired round phase = %s", starved.Phase())
	}
	// Terminal rounds report false, not a second abandonment.
	if starved.expireIfStarved(after) {
		t.Fatal("terminal round expired twice")
	}
}
