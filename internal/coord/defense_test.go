package coord

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flint/internal/model"
	"flint/internal/tensor"
)

// stubExchange satisfies PartialExchange for configuration tests; the
// configs pairing it with robust reducers or DP must be rejected before
// it is ever called.
type stubExchange struct{}

func (stubExchange) SubmitPartial(PartialCommit) (GlobalInstall, error) {
	return GlobalInstall{}, nil
}

func TestConfigRobustAndDPValidation(t *testing.T) {
	mk := func(mut func(*Config)) Config {
		cfg := syncTestConfig()
		mut(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"robust async", mk(func(c *Config) {
			c.Mode, c.MaxInflight = ModeAsync, 8
			c.Aggregation.Strategy = "trimmed-mean"
		}), "requires sync mode"},
		{"median async", mk(func(c *Config) {
			c.Mode, c.MaxInflight = ModeAsync, 8
			c.Aggregation.Strategy = "coordinate-median"
		}), "requires sync mode"},
		{"unknown strategy", mk(func(c *Config) {
			c.Aggregation.Strategy = "krum"
		}), "unknown aggregation strategy"},
		{"fedbuff sync", mk(func(c *Config) {
			c.Aggregation.Strategy = "fedbuff"
		}), "requires async mode"},
		{"robust sharded", mk(func(c *Config) {
			c.Aggregation.Strategy = "trimmed-mean"
			c.Exchange = stubExchange{}
		}), "unavailable in hierarchical"},
		{"dp sharded", mk(func(c *Config) {
			c.DP.Epsilon = 8
			c.Exchange = stubExchange{}
		}), "unavailable in hierarchical"},
		{"trim frac range", mk(func(c *Config) {
			c.Aggregation.Strategy = "trimmed-mean"
			c.Aggregation.TrimFrac = 0.5
		}), "outside [0, 0.5)"},
		{"trim frac without trimmed-mean", mk(func(c *Config) {
			c.Aggregation.TrimFrac = 0.1
		}), "not trimmed-mean"},
		{"negative screen norm", mk(func(c *Config) {
			c.Aggregation.ScreenMaxNorm = -1
		}), "negative screen max norm"},
		{"median factor below 1", mk(func(c *Config) {
			c.Aggregation.ScreenMedianFactor = 0.5
		}), "below 1"},
		{"negative epsilon", mk(func(c *Config) {
			c.DP.Epsilon = -1
		}), "negative dp epsilon"},
		{"negative clip", mk(func(c *Config) {
			c.DP.ClipNorm = -2
		}), "negative dp clip norm"},
		{"dp delta range", mk(func(c *Config) {
			c.DP.Epsilon, c.DP.Delta = 8, 1.5
		}), "outside (0, 1)"},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: New() err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// A bare robust strategy gets the defense defaults: trim fraction,
	// median-factor screen, and — with DP on — δ, clip, and seed.
	cfg := syncTestConfig()
	cfg.Aggregation.Strategy = "trimmed-mean"
	cfg.DP.Epsilon = 8
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := c.Config()
	if got.Aggregation.TrimFrac != 0.1 || got.Aggregation.ScreenMedianFactor != 4 {
		t.Fatalf("robust defaults: %+v", got.Aggregation)
	}
	if got.DP.Delta != 1e-5 || got.DP.ClipNorm != 1 || got.DP.Seed != cfg.Seed {
		t.Fatalf("dp defaults: %+v", got.DP)
	}
	if st := c.Status(); st.Aggregation != "parallel(trimmed-mean)" {
		t.Fatalf("status aggregation = %q", st.Aggregation)
	}
}

func TestDefenseCountersPreRegistered(t *testing.T) {
	c, err := New(syncTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st := c.Status()
	for _, name := range []string{"updates_screened_norm", "dp_rounds", "round_aggregate_robust_error"} {
		if v, ok := st.Counters[name]; !ok || v != 0 {
			t.Fatalf("counter %q = %d, %v (want pre-registered at 0)", name, v, ok)
		}
	}
}

// TestDPCommitDeterministic: two coordinators with the same DP seed,
// driven through the same round, publish bit-identical noised params —
// the reproducibility contract of the seeded per-version noise stream —
// and both report the privacy spend; a DP-free control publishes
// something else entirely (the noise really landed).
func TestDPCommitDeterministic(t *testing.T) {
	dpCfg := syncTestConfig()
	dpCfg.Aggregation.Strategy = "trimmed-mean"
	dpCfg.DP = DPConfig{Epsilon: 8, ClipNorm: 0.05, Seed: 77}

	commitOnce := func(cfg Config) tensor.Vector {
		t.Helper()
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for id := int64(1); id <= 3; id++ {
			task := join(t, c, id)
			delta := tensor.NewVector(task.Dim)
			delta.Fill(0.001 * float64(id))
			if err := c.SubmitUpdate(Submission{
				DeviceID: id, RoundID: task.RoundID, BaseVersion: task.BaseVersion,
				Weight: 10, Delta: delta,
			}); err != nil {
				t.Fatalf("device %d: %v", id, err)
			}
		}
		eventually(t, 5*time.Second, func() bool { return c.Version() == 2 },
			"round never committed")
		if cfg.DP.Enabled() {
			st := c.Status()
			if st.Privacy == nil || st.Privacy.DPRounds != 1 || st.Privacy.EpsilonSpent <= 0 {
				t.Fatalf("privacy report after DP commit: %+v", st.Privacy)
			}
			if st.Counters["dp_rounds"] != 1 {
				t.Fatalf("dp_rounds = %d", st.Counters["dp_rounds"])
			}
			if len(st.Recent) == 0 || st.Recent[len(st.Recent)-1].EpsilonSpent <= 0 {
				t.Fatalf("round summary missing epsilon: %+v", st.Recent)
			}
		}
		return join(t, c, 9).Params
	}

	a := commitOnce(dpCfg)
	b := commitOnce(dpCfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed DP commits diverge at [%d]: %v vs %v", i, a[i], b[i])
		}
		if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
			t.Fatalf("DP commit published non-finite param %v", a[i])
		}
	}
	control := commitOnce(syncTestConfig())
	diff := 0.0
	for i := range a {
		diff += math.Abs(a[i] - control[i])
	}
	if diff == 0 {
		t.Fatal("DP commit identical to raw commit: clip+noise never ran")
	}
}

// TestScreenRejectsBoostedUpdate: a sign-flip-boosted update is dropped
// by the pre-reduce norm screen — counted, noted on the round summary,
// and its device's telemetry distrusted — while the round still commits
// from the surviving honest updates.
func TestScreenRejectsBoostedUpdate(t *testing.T) {
	cfg := syncTestConfig()
	cfg.Aggregation.Strategy = "trimmed-mean"
	cfg.Aggregation.ScreenMedianFactor = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before := join(t, c, 9).Params.Clone() // v1 params, the diff baseline
	fill := []float64{0.001, 0.001, -0.5}  // device 3 boosted 500× the median norm
	for id := int64(1); id <= 3; id++ {
		task := join(t, c, id)
		delta := tensor.NewVector(task.Dim)
		delta.Fill(fill[id-1])
		if err := c.SubmitUpdate(Submission{
			DeviceID: id, RoundID: task.RoundID, BaseVersion: task.BaseVersion,
			Weight: 10, Delta: delta,
		}); err != nil {
			t.Fatalf("device %d: %v", id, err)
		}
	}
	eventually(t, 5*time.Second, func() bool { return c.Version() == 2 },
		"screened round never committed")
	st := c.Status()
	if st.Counters["updates_screened_norm"] != 1 {
		t.Fatalf("updates_screened_norm = %d, want 1", st.Counters["updates_screened_norm"])
	}
	if len(st.Recent) == 0 || st.Recent[len(st.Recent)-1].ScreenedNorm != 1 {
		t.Fatalf("round summary missing screen count: %+v", st.Recent)
	}
	// The published model reflects only the honest updates: every param
	// moved by exactly their trimmed mean (0.001), nowhere near the
	// poisoned magnitude.
	task := join(t, c, 10)
	for i, x := range task.Params {
		if d := x - before[i]; math.Abs(d-0.001) > 1e-9 {
			t.Fatalf("param[%d] moved by %v, want 0.001: poisoned update leaked into the aggregate", i, d)
		}
	}
}

// TestScreenAllRejectedAbortsRound: when the screen empties a round the
// commit aborts with robust-error accounting, nothing publishes, and the
// successor round keeps serving.
func TestScreenAllRejectedAbortsRound(t *testing.T) {
	cfg := syncTestConfig()
	cfg.Aggregation.ScreenMaxNorm = 1e-12
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for id := int64(1); id <= 3; id++ {
		submitFor(t, c, id, join(t, c, id))
	}
	eventually(t, 5*time.Second, func() bool {
		return c.Counters().Counter("round_aggregate_robust_error").Value() == 1
	}, "all-screened round was not aborted")
	if c.Version() != 1 {
		t.Fatalf("version = %d, want 1 (all-screened round must not publish)", c.Version())
	}
	if got := c.Counters().Counter("updates_screened_norm").Value(); got != 3 {
		t.Fatalf("updates_screened_norm = %d, want 3", got)
	}
	// The coordinator recovered: a fresh round is serving tasks.
	join(t, c, 4)
}

// TestRegistryNoteScreened: a screened device's telemetry loses its
// sample confidence (so the scheduler re-measures it from scratch) while
// the EWMA estimates survive as priors.
func TestRegistryNoteScreened(t *testing.T) {
	r := NewRegistry(4, time.Minute)
	now := time.Unix(1000, 0)
	r.CheckIn(testInfo(1), now)
	r.Observe(1, TelemetryObservation{UpBytes: 5000, UpDur: time.Second,
		Train: 2 * time.Second}, 0.5, now)
	if _, tel, _ := r.Snapshot(1); tel.UpSamples == 0 || tel.TaskSamples == 0 {
		t.Fatalf("observation not recorded: %+v", tel)
	}
	r.NoteScreened(1)
	_, tel, ok := r.Snapshot(1)
	if !ok {
		t.Fatal("device vanished")
	}
	if tel.UpSamples != 0 || tel.DownSamples != 0 || tel.TaskSamples != 0 {
		t.Fatalf("screened device keeps sample confidence: %+v", tel)
	}
	if tel.UpBps == 0 || tel.TaskSec == 0 {
		t.Fatalf("distrust erased the EWMA priors: %+v", tel)
	}
	r.NoteScreened(99) // unknown devices are ignored
}

// TestFleetPoisonReplay is the live poison-replay drill in miniature —
// and, under -race, the concurrency hammer for the defended commit path:
// a fleet with a 25% sign-flip adversary drives wire-form poisoned and
// clean payloads through screen → trimmed-mean → clip → noise
// concurrently for 3+ rounds.
func TestFleetPoisonReplay(t *testing.T) {
	cfg := Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 12,
		Quorum:        4,
		OverCommit:    2,
		RoundDeadline: 5 * time.Second,
		QueueDepth:    128,
		Aggregation:   AggregationConfig{Strategy: "trimmed-mean"},
		DP:            DPConfig{Epsilon: 8},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()

	rep, err := RunFleet(FleetConfig{
		BaseURL:        srv.URL,
		Devices:        60,
		Rounds:         3,
		Seed:           7,
		ThinkTime:      10 * time.Millisecond,
		ComputeScale:   0.1,
		DeltaBias:      0.05,
		PoisonFraction: 0.25,
		Timeout:        90 * time.Second,
	})
	if err != nil {
		t.Fatalf("fleet: %v (report: %+v)", err, rep)
	}
	if rep.RoundsCommitted < 3 {
		t.Fatalf("committed %d rounds, want >= 3", rep.RoundsCommitted)
	}
	if rep.PoisonedDevices == 0 || rep.PoisonedDevices >= 60 {
		t.Fatalf("adversary compromised %d of 60 devices", rep.PoisonedDevices)
	}
	st := rep.FinalStatus
	if st == nil {
		t.Fatal("fleet report missing final status")
	}
	if st.Counters["updates_screened_norm"] == 0 {
		t.Fatal("no poisoned update was ever norm-screened")
	}
	if st.Privacy == nil || st.Privacy.EpsilonSpent <= 0 || st.Counters["dp_rounds"] == 0 {
		t.Fatalf("privacy accounting missing: %+v", st.Privacy)
	}
	if math.IsNaN(st.ModelNorm) || math.IsInf(st.ModelNorm, 0) {
		t.Fatalf("model norm %v after poisoned rounds", st.ModelNorm)
	}
}
