package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flint/internal/aggregator"
	"flint/internal/availability"
	"flint/internal/codec"
	"flint/internal/device"
	"flint/internal/metrics"
	"flint/internal/network"
	"flint/internal/tensor"
	"flint/internal/transport"
)

// FleetConfig drives a synthetic device fleet against a running coordination
// server: thousands of goroutine "devices" drawn from the Fig 1 population
// model (device.BenchPool profiles plus the Zipf long tail) check in, pull
// tasks, simulate profile-scaled local training, and submit updates until
// the server commits the requested number of rounds.
type FleetConfig struct {
	// BaseURL is the server root, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Job routes the fleet at one tenant of a multi-job server: requests
	// go to /v1/jobs/<Job>/... instead of the bare /v1 default-job alias.
	Job string
	// Token is the job's bearer token, sent as Authorization: Bearer on
	// every request when non-empty.
	Token string
	// Gateway marks BaseURL as a shard-tier gateway (cmd/flint-gateway)
	// rather than a single coordinator: the fleet waits for the tier's
	// membership to report healthy before launching devices and watches
	// the gateway's rollup for round progress (the rollup's top-level
	// version is the tier's global version for the routed job). Device
	// traffic itself is unchanged — the gateway routes every request to
	// the device's owning shard transparently, so the churn/bandwidth
	// flags exercise the tier exactly as they do a flat server.
	Gateway bool
	// IDOffset shifts the fleet's device IDs (1..Devices become
	// IDOffset+1..IDOffset+Devices) so concurrent fleets driving
	// different jobs of one server use disjoint identities.
	IDOffset int64
	// Devices is the simulated fleet size.
	Devices int
	// Rounds is how many committed rounds to drive before stopping.
	Rounds int
	// Seed seeds population sampling and per-device behavior.
	Seed int64
	// ThinkTime is the mean idle pause between a device's protocol
	// steps (jittered per device).
	ThinkTime time.Duration
	// ComputeScale scales the profile-derived local-training sleep
	// (0 disables simulated compute entirely).
	ComputeScale float64
	// DeltaScale is the magnitude of the synthetic update deltas.
	DeltaScale float64
	// DeltaBias adds a constant per-coordinate drift to every honest
	// device's synthetic delta, so the published model's norm moves in a
	// deterministic direction round over round. Pure zero-mean deltas
	// would make an undefended poisoned run statistically similar to a
	// defended one; with a bias, boosted sign-flip attackers drag the
	// model the other way and the drift gap is visible in /v1/status's
	// model_norm (what the poison-replay drills assert on). 0 disables.
	DeltaBias float64
	// PoisonFraction puts that share of the fleet under adversary
	// control, chosen deterministically per (Seed, device ID) via the
	// simulator's Adversary model — the §4.1 hub-and-spoke attack
	// replayed against the live server. 0 disables.
	PoisonFraction float64
	// PoisonMode names the attack compromised devices mount: "sign-flip"
	// (default; the honest delta negated and boosted by PoisonScale) or
	// "random-noise" (Gaussian noise of std PoisonScale·DeltaScale).
	PoisonMode string
	// PoisonScale is the attack boost factor (default 10 — large enough
	// that a median-factor norm screen sees the outliers).
	PoisonScale float64
	// Timeout bounds the whole run.
	Timeout time.Duration
	// JSONFraction is the share of devices kept on the legacy JSON
	// protocol (0 = the whole fleet negotiates the binary tensor
	// protocol, 1 = all JSON). Mixed fleets exercise old and new
	// clients in the same rounds.
	JSONFraction float64
	// LegacyFraction is the share of devices kept on the pre-negotiation
	// binary protocol: they speak tensor blobs but advertise no
	// capability list and never track a base version, so they always
	// receive the full broadcast. Mixing them in proves delta-capable,
	// legacy-binary, and JSON clients coexist in the same rounds.
	LegacyFraction float64
	// Bandwidth, when non-nil, gives every device a persistent sampled
	// link (downlink from the model, uplink at a fraction of it) that the
	// fleet actually honors: uploads stream through a rate-limited
	// reader (so the server's observed /v1/update transfer timing is the
	// real simulated rate), task downloads cost a proportional sleep,
	// and devices report their download and training timings back via
	// the X-Flint-Down-*/X-Flint-Train-Ms headers — the scheduler's
	// telemetry diet. Sampling is independent of the WiFi label, so the
	// fleet contains fast "cellular" and slow "WiFi" devices for the
	// measured cohort map to correct.
	Bandwidth *network.BandwidthModel
	// Churn drives device availability from a generated diurnal session
	// trace (availability.GenerateLog) instead of an always-on loop:
	// devices only check in while inside one of their trace windows, and
	// their session attributes (WiFi, battery, expected remaining
	// seconds) come from the window — the paper's §3.2 availability
	// pattern hitting the live scheduler.
	Churn bool
	// TraceScale compresses trace time onto the wall clock when Churn is
	// set: trace-seconds per wall-second (default 60 — a 10-minute
	// session plays out in 10 wall seconds).
	TraceScale float64
	// Client overrides the HTTP client (tests inject the httptest
	// client; the default is tuned for a many-device single-host fleet).
	Client *http.Client
}

func (c FleetConfig) withDefaults() (FleetConfig, error) {
	if c.BaseURL == "" {
		return c, fmt.Errorf("coord: fleet needs a base URL")
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	if c.Devices <= 0 {
		c.Devices = 1000
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = 20 * time.Millisecond
	}
	if c.ComputeScale < 0 {
		return c, fmt.Errorf("coord: negative compute scale %v", c.ComputeScale)
	}
	if c.DeltaScale <= 0 {
		c.DeltaScale = 0.01
	}
	if c.PoisonFraction < 0 || c.PoisonFraction > 1 {
		return c, fmt.Errorf("coord: poison fraction %v outside [0, 1]", c.PoisonFraction)
	}
	switch c.PoisonMode {
	case "":
		c.PoisonMode = "sign-flip"
	case "sign-flip", "random-noise":
	default:
		return c, fmt.Errorf("coord: unknown poison mode %q (want sign-flip or random-noise)", c.PoisonMode)
	}
	if c.PoisonScale <= 0 {
		c.PoisonScale = 10
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.JSONFraction < 0 || c.JSONFraction > 1 {
		return c, fmt.Errorf("coord: JSON fraction %v outside [0, 1]", c.JSONFraction)
	}
	if c.LegacyFraction < 0 || c.LegacyFraction > 1 {
		return c, fmt.Errorf("coord: legacy fraction %v outside [0, 1]", c.LegacyFraction)
	}
	if c.JSONFraction+c.LegacyFraction > 1 {
		return c, fmt.Errorf("coord: JSON fraction %v + legacy fraction %v exceed 1", c.JSONFraction, c.LegacyFraction)
	}
	if c.Bandwidth != nil {
		if err := c.Bandwidth.Validate(); err != nil {
			return c, fmt.Errorf("coord: %w", err)
		}
	}
	if c.TraceScale <= 0 {
		c.TraceScale = 60
	}
	if c.Client == nil {
		tr := &http.Transport{
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 4096,
		}
		c.Client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	return c, nil
}

// attack builds the adversary's Attack from the poison knobs (the same
// simulator implementations the offline §4 ablations use, replayed over
// the live protocol).
func (c FleetConfig) attack() aggregator.Attack {
	if c.PoisonMode == "random-noise" {
		return aggregator.RandomNoise{Std: c.PoisonScale * c.DeltaScale}
	}
	return aggregator.SignFlip{Scale: c.PoisonScale}
}

// api builds a /v1 endpoint URL, routed through the job's path prefix
// when the fleet targets a named tenant.
func (c FleetConfig) api(path string) string {
	if c.Job == "" {
		return c.BaseURL + "/v1" + path
	}
	return c.BaseURL + "/v1/jobs/" + c.Job + path
}

// authorize attaches the job's bearer token to a request.
func (c FleetConfig) authorize(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
}

// LatencySummary is one operation's client-observed latency distribution in
// milliseconds.
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

func summarizeLatency(ms []float64) LatencySummary {
	if len(ms) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(ms)
	return LatencySummary{
		Count: len(ms),
		P50:   metrics.Quantile(ms, 0.50),
		P90:   metrics.Quantile(ms, 0.90),
		P99:   metrics.Quantile(ms, 0.99),
		Max:   ms[len(ms)-1],
	}
}

// FleetReport is the load generator's result.
type FleetReport struct {
	Devices int `json:"devices"`
	// BinaryDevices negotiate schemes and track their base version for
	// delta broadcast; LegacyDevices speak the pre-negotiation binary
	// protocol (full broadcast only); JSONDevices stay on legacy JSON.
	BinaryDevices int `json:"binary_devices"`
	LegacyDevices int `json:"legacy_devices"`
	JSONDevices   int `json:"json_devices"`
	// PoisonedDevices is how many fleet devices the configured adversary
	// compromised (0 when PoisonFraction is 0).
	PoisonedDevices int           `json:"poisoned_devices,omitempty"`
	RoundsCommitted int           `json:"rounds_committed"`
	StartVersion    int           `json:"start_version"`
	EndVersion      int           `json:"end_version"`
	Wall            time.Duration `json:"wall_ns"`
	CheckIns        int64         `json:"checkins"`
	TasksReceived   int64         `json:"tasks_received"`
	// DeltaTasks counts tasks that arrived as delta frames against the
	// device's last-seen version rather than full broadcasts.
	DeltaTasks      int64   `json:"delta_tasks"`
	UpdatesAccepted int64   `json:"updates_accepted"`
	UpdatesRejected int64   `json:"updates_rejected"`
	NetErrors       int64   `json:"net_errors"`
	RequestsPerSec  float64 `json:"requests_per_sec"`
	// BytesSent/BytesRecv are client-observed wire totals (request and
	// response bodies across the whole fleet), the load generator's view
	// of the codec's payload win.
	BytesSent      int64          `json:"bytes_sent"`
	BytesRecv      int64          `json:"bytes_received"`
	CheckInLatency LatencySummary `json:"checkin_latency"`
	TaskLatency    LatencySummary `json:"task_latency"`
	UpdateLatency  LatencySummary `json:"update_latency"`
	// FinalStatus is the server's status snapshot at fleet shutdown.
	FinalStatus *StatusReport `json:"final_status,omitempty"`
	// TierShards is the shard count of the gateway tier the fleet drove
	// (0 when the fleet targeted a flat server).
	TierShards int `json:"tier_shards,omitempty"`
}

// String renders the operator-facing summary cmd/flint-fleet prints.
func (r *FleetReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d devices (%d delta-capable, %d legacy binary, %d json) drove v%d → v%d (%d rounds) in %.2fs\n",
		r.Devices, r.BinaryDevices, r.LegacyDevices, r.JSONDevices, r.StartVersion, r.EndVersion, r.RoundsCommitted, r.Wall.Seconds())
	if r.TierShards > 0 {
		fmt.Fprintf(&b, "  tier: routed through a %d-shard gateway\n", r.TierShards)
	}
	if r.PoisonedDevices > 0 {
		fmt.Fprintf(&b, "  adversary: %d devices compromised\n", r.PoisonedDevices)
	}
	if r.FinalStatus != nil {
		fmt.Fprintf(&b, "  model: L2 norm %.4f after v%d", r.FinalStatus.ModelNorm, r.EndVersion)
		if p := r.FinalStatus.Privacy; p != nil {
			fmt.Fprintf(&b, "  (ε spent %.3f over %d DP rounds, δ=%.0e)", p.EpsilonSpent, p.DPRounds, p.Delta)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  requests: %d check-ins, %d tasks (%d delta), %d updates accepted, %d rejected, %d net errors (%.0f req/s)\n",
		r.CheckIns, r.TasksReceived, r.DeltaTasks, r.UpdatesAccepted, r.UpdatesRejected, r.NetErrors, r.RequestsPerSec)
	perDev := func(total int64) string {
		if r.Devices == 0 {
			return "0 B"
		}
		return fmtBytes(total / int64(r.Devices))
	}
	fmt.Fprintf(&b, "  wire: sent %s, received %s (per device: %s out, %s in)\n",
		fmtBytes(r.BytesSent), fmtBytes(r.BytesRecv), perDev(r.BytesSent), perDev(r.BytesRecv))
	row := func(name string, l LatencySummary) {
		fmt.Fprintf(&b, "  %-8s n=%-7d p50 %7.2fms  p90 %7.2fms  p99 %7.2fms  max %7.2fms\n",
			name, l.Count, l.P50, l.P90, l.P99, l.Max)
	}
	row("checkin", r.CheckInLatency)
	row("task", r.TaskLatency)
	row("update", r.UpdateLatency)
	return b.String()
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// fleetTotals aggregates counters across device goroutines.
type fleetTotals struct {
	checkins, tasks, deltas, accepted, rejected, netErrs atomic.Int64
}

// bodyBufPool recycles response-body buffers across the fleet's protocol
// loops: at 1200-device scale every poll used to allocate a fresh
// model-dim-sized slice via io.ReadAll. Buffers grow to the broadcast
// blob size once and are reused; nothing decoded from them escapes the
// read (codec and JSON decoding both copy into fresh values).
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBody drains r into a pooled buffer. Callers must finish with the
// returned bytes before calling release, which returns the buffer to the
// pool.
func readBody(r io.Reader) (body []byte, release func(), err error) {
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	release = func() { bodyBufPool.Put(buf) }
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, release, err
	}
	return buf.Bytes(), release, nil
}

// latRecorder collects per-device latencies locally (no cross-goroutine
// contention) and merges them at shutdown.
type latRecorder struct {
	checkin, task, update []float64
}

type fleetDevice struct {
	id       int64
	model    string
	platform string
	profile  device.Profile
	modernOS bool
	weight   float64
	// binary devices speak the tensor protocol: Accept negotiation on
	// /v1/task, client-side delta quantization on /v1/update.
	binary bool
	// legacy marks a pre-negotiation binary device: no capability
	// advertisement, no base tracking, full broadcast every task.
	legacy bool
	// poisoned devices mount the configured attack on every submission.
	poisoned bool
	rng      *rand.Rand
	lat      latRecorder
	// params/version mirror the device's last applied model state: the
	// base the server can serve deltas against. Only current (non-legacy)
	// binary devices maintain them.
	params  tensor.Vector
	version int
	// deltaTasks counts tasks received as delta frames.
	deltaTasks int64
	// Client-observed wire traffic (request/response bodies), merged
	// into the fleet totals at shutdown.
	bytesSent, bytesRecv int64
	// downBps/upBps are the device's persistent simulated link rates
	// (bytes/second; 0 = link simulation off). lastDown*/lastTrain hold
	// the most recent task's observed timings, reported to the server
	// with the next update as scheduler telemetry.
	downBps, upBps float64
	lastDownBytes  int
	lastDownDur    time.Duration
	lastTrainDur   time.Duration
	// sessions is the device's diurnal availability trace (churn mode):
	// windows in trace seconds within one day, replayed cyclically at
	// TraceScale. session is the window the device currently sits in and
	// sessionLeft its remaining trace-seconds at selection time.
	sessions    []availability.Session
	session     *availability.Session
	sessionLeft float64
}

// RunFleet executes the load generator and blocks until the server commits
// cfg.Rounds rounds (or the timeout fires, which is an error).
func RunFleet(cfg FleetConfig) (*FleetReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	pop := device.DefaultPopulation()
	pop.Seed = cfg.Seed
	sampled, err := pop.Sample(cfg.Devices)
	if err != nil {
		return nil, err
	}
	// The first jsonCount devices stay on the legacy JSON protocol, the
	// next legacyCount on pre-negotiation binary; the rest negotiate
	// schemes and track deltas. Deterministic, so tests can assert the
	// mix.
	jsonCount := int(math.Round(cfg.JSONFraction * float64(cfg.Devices)))
	legacyCount := int(math.Round(cfg.LegacyFraction * float64(cfg.Devices)))
	if jsonCount+legacyCount > cfg.Devices {
		legacyCount = cfg.Devices - jsonCount
	}
	var traces map[int64][]availability.Session
	if cfg.Churn {
		if traces, err = generateFleetTraces(cfg, pop); err != nil {
			return nil, err
		}
	}
	// Compromise the configured fraction with the simulator's per-ID
	// deterministic adversary, so a given (seed, fleet) always replays
	// the same attacker set.
	adversary := aggregator.Adversary{
		Attack:   cfg.attack(),
		Fraction: cfg.PoisonFraction,
		Seed:     cfg.Seed,
	}
	poisonedCount := 0
	devs := make([]*fleetDevice, cfg.Devices)
	for i, s := range sampled {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		devs[i] = &fleetDevice{
			id:       cfg.IDOffset + int64(i+1),
			model:    s.Model,
			platform: string(s.Platform),
			profile:  s.Profile,
			modernOS: rng.Float64() < s.Profile.ModernOSProb,
			weight:   20 + float64(rng.Intn(180)),
			binary:   i >= jsonCount,
			legacy:   i >= jsonCount && i < jsonCount+legacyCount,
			poisoned: adversary.Compromised(cfg.IDOffset + int64(i+1)),
			rng:      rng,
			sessions: traces[int64(i)],
		}
		if devs[i].poisoned {
			poisonedCount++
		}
		if cfg.Bandwidth != nil {
			// The link is sampled independently of any session's WiFi
			// label: real fleets have congested WiFi and excellent LTE,
			// which is exactly what measured cohorting must correct for.
			devs[i].downBps = cfg.Bandwidth.SampleBps(rng)
			devs[i].upBps = devs[i].downBps * 0.4
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	start := time.Now()
	tierShards := 0
	if cfg.Gateway {
		tier, err := waitTierHealthy(ctx, cfg)
		if err != nil {
			return nil, err
		}
		tierShards = tier.Tier.Shards
	}
	startStatus, err := fetchStatus(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("coord: fleet cannot reach server: %w", err)
	}
	targetVersion := startStatus.Version + cfg.Rounds

	var totals fleetTotals
	var endStatus StatusReport
	reached := false
	// Watcher: stop the fleet once the server has committed enough
	// rounds.
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				st, err := fetchStatus(ctx, cfg)
				if err != nil {
					continue
				}
				if st.Version >= targetVersion {
					endStatus, reached = *st, true
					cancel()
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for _, d := range devs {
		wg.Add(1)
		go func(d *fleetDevice) {
			defer wg.Done()
			d.run(ctx, cfg, &totals)
		}(d)
	}
	wg.Wait()
	<-watchDone
	wall := time.Since(start)

	if !reached {
		if st, err := fetchStatus(context.Background(), cfg); err == nil {
			endStatus = *st
			reached = st.Version >= targetVersion
		} else {
			// Server unreachable at shutdown (e.g. it crashed): fall
			// back to the last thing we know rather than a zero
			// status that would report a negative round count.
			endStatus = *startStatus
		}
	}
	var checkin, task, update []float64
	var bytesSent, bytesRecv int64
	for _, d := range devs {
		checkin = append(checkin, d.lat.checkin...)
		task = append(task, d.lat.task...)
		update = append(update, d.lat.update...)
		bytesSent += d.bytesSent
		bytesRecv += d.bytesRecv
		totals.deltas.Add(d.deltaTasks)
	}
	requests := totals.checkins.Load() + totals.tasks.Load() +
		totals.accepted.Load() + totals.rejected.Load()
	rep := &FleetReport{
		Devices:         cfg.Devices,
		BinaryDevices:   cfg.Devices - jsonCount - legacyCount,
		LegacyDevices:   legacyCount,
		JSONDevices:     jsonCount,
		PoisonedDevices: poisonedCount,
		RoundsCommitted: endStatus.Version - startStatus.Version,
		StartVersion:    startStatus.Version,
		EndVersion:      endStatus.Version,
		Wall:            wall,
		CheckIns:        totals.checkins.Load(),
		TasksReceived:   totals.tasks.Load(),
		DeltaTasks:      totals.deltas.Load(),
		UpdatesAccepted: totals.accepted.Load(),
		UpdatesRejected: totals.rejected.Load(),
		NetErrors:       totals.netErrs.Load(),
		RequestsPerSec:  float64(requests) / wall.Seconds(),
		BytesSent:       bytesSent,
		BytesRecv:       bytesRecv,
		CheckInLatency:  summarizeLatency(checkin),
		TaskLatency:     summarizeLatency(task),
		UpdateLatency:   summarizeLatency(update),
		FinalStatus:     &endStatus,
		TierShards:      tierShards,
	}
	if !reached {
		return rep, fmt.Errorf("coord: fleet timed out at version %d (wanted %d)", endStatus.Version, targetVersion)
	}
	return rep, nil
}

// traceDayOffset anchors the cyclic trace replay at 19:00 — near the
// diurnal peak, so a churned fleet starts a run with devices available
// and the availability level drifts as the replay walks the curve.
const traceDayOffset = 19 * 3600.0

// generateFleetTraces builds the churn-mode availability traces: one day
// of diurnal sessions per client from the paper's synthetic session-log
// generator, grouped per client (each client's slice stays
// start-ordered, inherited from the generator's global sort). The
// session density is tuned so roughly a third of the fleet is available
// at the peak — enough concurrency to drive rounds, enough churn that
// eligibility flaps constantly.
func generateFleetTraces(cfg FleetConfig, pop device.PopulationModel) (map[int64][]availability.Session, error) {
	sessions, err := availability.GenerateLog(availability.LogConfig{
		Clients:          cfg.Devices,
		Days:             1,
		SessionsPerDay:   24,
		MedianSessionSec: 480,
		DurationSigma:    0.8,
		WiFiProb:         0.72,
		BatteryHighProb:  0.56,
		Population:       pop,
		Seed:             cfg.Seed + 101,
	})
	if err != nil {
		return nil, err
	}
	by := make(map[int64][]availability.Session)
	for _, s := range sessions {
		by[s.ClientID] = append(by[s.ClientID], s)
	}
	return by, nil
}

// sessionAt finds the availability window covering the device's current
// trace position (the wall clock scaled and wrapped onto the one-day
// trace), returning it with the window's remaining trace-seconds — the
// honest "expected remaining session" a check-in should report. When
// the device is between windows it returns nil plus the wall-clock wait
// until its next window opens.
func (d *fleetDevice) sessionAt(elapsed time.Duration, scale float64) (sess *availability.Session, left float64, wait time.Duration) {
	const day = 86400.0
	pos := math.Mod(traceDayOffset+elapsed.Seconds()*scale, day)
	nextStart := math.Inf(1)
	for i := range d.sessions {
		s := &d.sessions[i]
		if s.Start <= pos && pos < s.End {
			return s, s.End - pos, 0
		}
		if s.Start > pos && s.Start < nextStart {
			nextStart = s.Start
		}
	}
	if math.IsInf(nextStart, 1) {
		// Past the day's last window: wait for the replay to wrap to the
		// first one.
		nextStart = d.sessions[0].Start + day
	}
	return nil, 0, time.Duration((nextStart - pos) / scale * float64(time.Second))
}

// run is one device's protocol loop: check in with fresh session state,
// poll for a task, "train" for a profile-scaled interval, submit the delta.
// In churn mode the loop only runs while the device's availability trace
// has a window open; between windows it sleeps offline.
func (d *fleetDevice) run(ctx context.Context, cfg FleetConfig, totals *fleetTotals) {
	if cfg.Churn && len(d.sessions) == 0 {
		// A client with no sessions in the trace is offline for the whole
		// replay.
		return
	}
	start := time.Now()
	// Stagger start-up so the fleet doesn't arrive as one spike.
	if !sleepCtx(ctx, time.Duration(d.rng.Int63n(int64(cfg.ThinkTime)+1))) {
		return
	}
	for {
		if cfg.Churn {
			sess, left, wait := d.sessionAt(time.Since(start), cfg.TraceScale)
			if sess == nil {
				if !sleepCtx(ctx, wait) {
					return
				}
				continue
			}
			d.session, d.sessionLeft = sess, left
		}
		ok, err := d.checkIn(ctx, cfg)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			totals.netErrs.Add(1)
			if !sleepCtx(ctx, cfg.ThinkTime) {
				return
			}
			continue
		}
		totals.checkins.Add(1)
		if ok {
			task, err := d.fetchTask(ctx, cfg)
			if err != nil && ctx.Err() == nil {
				totals.netErrs.Add(1)
			}
			if task != nil {
				totals.tasks.Add(1)
				train := d.trainTime(task.LocalSteps, cfg.ComputeScale)
				if !sleepCtx(ctx, train) {
					return
				}
				d.lastTrainDur = train
				accepted, err := d.submit(ctx, cfg, task)
				switch {
				case err != nil:
					if ctx.Err() != nil {
						return
					}
					totals.netErrs.Add(1)
				case accepted:
					totals.accepted.Add(1)
				default:
					totals.rejected.Add(1)
				}
			}
		}
		jitter := time.Duration(d.rng.Int63n(int64(cfg.ThinkTime) + 1))
		if !sleepCtx(ctx, cfg.ThinkTime/2+jitter) {
			return
		}
	}
}

// trainTime converts the device profile into a simulated local-training
// duration: slower chips straggle, reproducing the Table 5 spread.
func (d *fleetDevice) trainTime(steps int, scale float64) time.Duration {
	if scale == 0 {
		return 0
	}
	perStepMS := 0.05 / d.profile.MatmulGFLOPS
	return time.Duration(float64(time.Millisecond) * perStepMS * float64(steps) * scale)
}

func (d *fleetDevice) checkIn(ctx context.Context, cfg FleetConfig) (bool, error) {
	// Session attributes are re-drawn per check-in: device state changes
	// between sessions (§3.2), so eligibility flaps realistically. In
	// churn mode they come from the availability trace's current window
	// instead — the generated diurnal pattern, not a coin flip.
	req := CheckInRequest{
		DeviceID:    d.id,
		Model:       d.model,
		Platform:    d.platform,
		WiFi:        d.rng.Float64() < 0.72,
		BatteryHigh: d.rng.Float64() < 0.56,
		ModernOS:    d.modernOS,
		SessionSec:  30 + d.rng.ExpFloat64()*180,
		Weight:      d.weight,
	}
	if d.session != nil {
		req.WiFi = d.session.WiFi
		req.BatteryHigh = d.session.BatteryHigh
		req.ModernOS = d.session.ModernOS
		// Remaining window time, not the window's full span — a device
		// about to leave must not pass a MinSessionSec criterion on the
		// strength of time it has already spent — and converted to wall
		// seconds: the server's deadlines and TTLs run on the wall
		// clock, so a trace-domain number would overstate availability
		// by the replay's compression factor.
		req.SessionSec = d.sessionLeft / cfg.TraceScale
	}
	if d.binary && !d.legacy {
		// Current clients advertise every kind this build decodes;
		// legacy binary and JSON devices predate negotiation.
		req.AcceptSchemes = transport.FormatAccept(transport.AllKinds())
	}
	var res CheckInResponse
	t0 := time.Now()
	code, err := doJSON(ctx, cfg, http.MethodPost, cfg.api("/checkin"), req, &res, d)
	if err != nil {
		return false, err
	}
	d.lat.checkin = append(d.lat.checkin, msSince(t0))
	return code == http.StatusOK && res.Eligible, nil
}

func (d *fleetDevice) fetchTask(ctx context.Context, cfg FleetConfig) (*TaskResponse, error) {
	if d.binary {
		return d.fetchTaskBinary(ctx, cfg)
	}
	var task TaskResponse
	t0 := time.Now()
	code, err := doJSON(ctx, cfg, http.MethodGet,
		fmt.Sprintf("%s?device=%d", cfg.api("/task"), d.id), nil, &task, d)
	if err != nil {
		return nil, err
	}
	d.lat.task = append(d.lat.task, msSince(t0))
	if code != http.StatusOK {
		return nil, nil
	}
	return &task, nil
}

// fetchTaskBinary negotiates the tensor protocol via Accept and parses
// the X-Flint-* metadata headers plus the codec blob body. Current
// devices also advertise their scheme capabilities and the version they
// already hold, so the server can ship a delta frame instead of the full
// vector; legacy devices skip both and always receive full broadcasts. A
// JSON reply (an old server) is decoded as the legacy response, so new
// devices interoperate both ways.
func (d *fleetDevice) fetchTaskBinary(ctx context.Context, cfg FleetConfig) (*TaskResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s?device=%d", cfg.api("/task"), d.id), nil)
	if err != nil {
		return nil, err
	}
	cfg.authorize(req)
	req.Header.Set("Accept", ContentTypeTensor)
	if !d.legacy {
		req.Header.Set(hdrAcceptSchemes, transport.FormatAccept(transport.AllKinds()))
		if d.version > 0 && d.params != nil {
			req.Header.Set(hdrBaseVersion, strconv.Itoa(d.version))
		}
	}
	t0 := time.Now()
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	body, release, err := readBody(resp.Body)
	defer release()
	resp.Body.Close()
	d.bytesRecv += int64(len(body))
	if err != nil {
		return nil, err
	}
	d.lat.task = append(d.lat.task, msSince(t0))
	if resp.StatusCode != http.StatusOK {
		return nil, nil
	}
	if d.downBps > 0 && len(body) > 0 {
		// Honor the simulated link: downloading the blob costs real wall
		// time, and the observed transfer is reported to the server with
		// the next update (the scheduler's downlink telemetry).
		dur := time.Duration(float64(len(body)) / d.downBps * float64(time.Second))
		if !sleepCtx(ctx, dur) {
			return nil, ctx.Err()
		}
		d.lastDownBytes, d.lastDownDur = len(body), dur
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), ContentTypeTensor) {
		var task TaskResponse
		if err := json.Unmarshal(body, &task); err != nil {
			return nil, err
		}
		return &task, nil
	}
	task := &TaskResponse{UpdateScheme: resp.Header.Get(hdrUpdateScheme)}
	if task.RoundID, err = strconv.ParseUint(resp.Header.Get(hdrRound), 10, 64); err != nil {
		return nil, fmt.Errorf("coord: bad %s header: %w", hdrRound, err)
	}
	if task.BaseVersion, err = strconv.Atoi(resp.Header.Get(hdrBaseVersion)); err != nil {
		return nil, fmt.Errorf("coord: bad %s header: %w", hdrBaseVersion, err)
	}
	if task.Dim, err = strconv.Atoi(resp.Header.Get(hdrDim)); err != nil {
		return nil, fmt.Errorf("coord: bad %s header: %w", hdrDim, err)
	}
	if task.LocalSteps, err = strconv.Atoi(resp.Header.Get(hdrLocalSteps)); err != nil {
		return nil, fmt.Errorf("coord: bad %s header: %w", hdrLocalSteps, err)
	}
	if task.DeadlineMS, err = strconv.ParseInt(resp.Header.Get(hdrDeadlineMS), 10, 64); err != nil {
		return nil, fmt.Errorf("coord: bad %s header: %w", hdrDeadlineMS, err)
	}
	task.ModelKind = resp.Header.Get(hdrModelKind)
	if len(body) > 0 {
		if h := resp.Header.Get(hdrDelta); h != "" {
			// Delta frame: fold it into the params we already hold.
			deltaBase, err := strconv.Atoi(h)
			if err != nil {
				return nil, fmt.Errorf("coord: bad %s header: %w", hdrDelta, err)
			}
			if d.params == nil || deltaBase != d.version {
				return nil, fmt.Errorf("coord: delta against v%d but device holds v%d", deltaBase, d.version)
			}
			params, _, err := codec.ApplyDelta(d.params, body)
			if err != nil {
				return nil, fmt.Errorf("coord: bad task delta: %w", err)
			}
			d.params, d.version = params, task.BaseVersion
			d.deltaTasks++
			task.Params = params
			return task, nil
		}
		params, _, err := codec.Decode(body)
		if err != nil {
			return nil, fmt.Errorf("coord: bad task tensor: %w", err)
		}
		if !d.legacy {
			d.params, d.version = params, task.BaseVersion
		}
		task.Params = params
	}
	return task, nil
}

func (d *fleetDevice) submit(ctx context.Context, cfg FleetConfig, task *TaskResponse) (bool, error) {
	delta := make(tensor.Vector, task.Dim)
	for i := range delta {
		delta[i] = d.rng.NormFloat64()*cfg.DeltaScale + cfg.DeltaBias
	}
	if d.poisoned {
		// Compromised devices submit the attack's version of their honest
		// delta — through the same wire path, so the server can't tell
		// attacker traffic apart except by the update's contents.
		delta = cfg.attack().Poison(aggregator.Update{ClientID: d.id, Delta: delta}, d.rng).Delta
	}
	// Binary uploads only when the server advertised a scheme with the
	// task: a pre-codec server never does, so new devices degrade to
	// JSON against it instead of shipping blobs it would reject.
	if d.binary && task.UpdateScheme != "" {
		return d.submitBinary(ctx, cfg, task, delta)
	}
	req := UpdateRequest{
		DeviceID:    d.id,
		RoundID:     task.RoundID,
		BaseVersion: task.BaseVersion,
		Weight:      d.weight,
		Delta:       delta,
	}
	var res UpdateResponse
	t0 := time.Now()
	code, err := doJSON(ctx, cfg, http.MethodPost, cfg.api("/update"), req, &res, d)
	if err != nil {
		return false, err
	}
	d.lat.update = append(d.lat.update, msSince(t0))
	return code == http.StatusAccepted && res.Accepted, nil
}

// submitBinary quantizes the delta client-side with the scheme the server
// requested in the task and ships the codec blob.
func (d *fleetDevice) submitBinary(ctx context.Context, cfg FleetConfig, task *TaskResponse, delta tensor.Vector) (bool, error) {
	scheme, err := codec.ParseScheme(task.UpdateScheme)
	if err != nil {
		scheme = codec.F32 // unknown future scheme: a safe lossy default
	}
	blob, err := codec.Encode(delta, scheme)
	if err != nil {
		return false, err
	}
	var upBody io.Reader = bytes.NewReader(blob)
	if d.upBps > 0 {
		// Rate-limit the upload stream itself so the server's observed
		// /v1/update transfer timing — its uplink telemetry — reflects
		// the simulated link, not loopback.
		upBody = &throttledReader{r: upBody, bps: d.upBps, ctx: ctx}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.api("/update"), upBody)
	if err != nil {
		return false, err
	}
	cfg.authorize(req)
	req.Header.Set("Content-Type", ContentTypeTensor)
	req.Header.Set(hdrDevice, strconv.FormatInt(d.id, 10))
	req.Header.Set(hdrRound, strconv.FormatUint(task.RoundID, 10))
	req.Header.Set(hdrBaseVersion, strconv.Itoa(task.BaseVersion))
	req.Header.Set(hdrWeight, strconv.FormatFloat(d.weight, 'g', -1, 64))
	if d.lastDownBytes > 0 {
		req.Header.Set(hdrDownBytes, strconv.Itoa(d.lastDownBytes))
		req.Header.Set(hdrDownMS, strconv.FormatFloat(float64(d.lastDownDur)/float64(time.Millisecond), 'g', -1, 64))
	}
	if d.lastTrainDur > 0 {
		req.Header.Set(hdrTrainMS, strconv.FormatFloat(float64(d.lastTrainDur)/float64(time.Millisecond), 'g', -1, 64))
	}
	t0 := time.Now()
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	d.bytesSent += int64(len(blob))
	body, release, err := readBody(resp.Body)
	defer release()
	resp.Body.Close()
	d.bytesRecv += int64(len(body))
	if err != nil {
		return false, err
	}
	d.lat.update = append(d.lat.update, msSince(t0))
	if resp.StatusCode != http.StatusAccepted {
		return false, nil
	}
	var res UpdateResponse
	if err := json.Unmarshal(body, &res); err != nil {
		return false, err
	}
	return res.Accepted, nil
}

func fetchStatus(ctx context.Context, cfg FleetConfig) (*StatusReport, error) {
	if cfg.Gateway {
		tier, err := fetchTier(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &StatusReport{Version: tier.Version}, nil
	}
	var st StatusReport
	code, err := doJSON(ctx, cfg, http.MethodGet, cfg.api("/status"), nil, &st, nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("coord: status returned HTTP %d", code)
	}
	return &st, nil
}

// tierProbe is the slice of the gateway rollup the fleet needs: the
// tier's global version for progress watching plus enough membership to
// gate the start on health. Decoded locally because coord cannot import
// internal/shard (the shard tier builds on this package).
type tierProbe struct {
	Version int `json:"version"`
	Tier    struct {
		Shards  int  `json:"shards"`
		Healthy bool `json:"healthy"`
	} `json:"tier"`
}

// fetchTier reads the gateway's /v1/status rollup. The rollup is always
// served with HTTP 200 — tier health is a field, not a status code — so
// a transport or non-200 result means the gateway itself is unreachable.
func fetchTier(ctx context.Context, cfg FleetConfig) (*tierProbe, error) {
	var tp tierProbe
	code, err := doJSON(ctx, cfg, http.MethodGet, cfg.BaseURL+"/v1/status", nil, &tp, nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("coord: gateway rollup returned HTTP %d", code)
	}
	return &tp, nil
}

// waitTierHealthy blocks until the gateway reports every shard inside
// its heartbeat grace window. Launching devices into a halted tier would
// only measure the halt gate's 503s, so the fleet gates its start here.
func waitTierHealthy(ctx context.Context, cfg FleetConfig) (*tierProbe, error) {
	for {
		tier, err := fetchTier(ctx, cfg)
		if err == nil && tier.Tier.Healthy {
			return tier, nil
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("tier still unhealthy (%d shards)", tier.Tier.Shards)
			}
			return nil, fmt.Errorf("coord: fleet gave up waiting for tier health: %w (%v)", ctx.Err(), err)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// doJSON issues one JSON request and decodes the body when the status code
// carries one. It returns the status code so callers can branch on protocol
// outcomes (204 no task, 409 late, 503 shed) without treating them as
// transport errors. A non-nil dev gets the request/response body sizes
// added to its wire-traffic counters.
func doJSON(ctx context.Context, cfg FleetConfig, method, url string, in, out any, dev *fleetDevice) (int, error) {
	var body io.Reader
	var sent int64
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		sent = int64(len(raw))
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return 0, err
	}
	cfg.authorize(req)
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if dev != nil {
		dev.bytesSent += sent
	}
	raw, release, err := readBody(resp.Body)
	defer release()
	if dev != nil {
		dev.bytesRecv += int64(len(raw))
	}
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// throttledReader meters a payload stream at bps bytes/second in small
// chunks, so a reader on the far side of an HTTP connection observes a
// transfer at the simulated link rate.
type throttledReader struct {
	r   io.Reader
	bps float64
	ctx context.Context
}

// throttleChunk is the metering granularity: small enough that a slow
// link's rate shows up within one typical update blob, large enough that
// the sleeps don't swamp the scheduler.
const throttleChunk = 8 << 10

func (t *throttledReader) Read(p []byte) (int, error) {
	if len(p) > throttleChunk {
		p = p[:throttleChunk]
	}
	n, err := t.r.Read(p)
	if n > 0 && t.bps > 0 {
		if !sleepCtx(t.ctx, time.Duration(float64(n)/t.bps*float64(time.Second))) {
			return n, t.ctx.Err()
		}
	}
	return n, err
}

func msSince(t0 time.Time) float64 { return float64(time.Since(t0)) / float64(time.Millisecond) }

// sleepCtx sleeps for d unless the context ends first; it reports whether
// the fleet should keep running.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
