package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"flint/internal/availability"
	"flint/internal/codec"
	"flint/internal/model"
	"flint/internal/tensor"
	"flint/internal/transport"
)

// TestFleetEndToEnd drives a fleet of goroutine devices through a live
// httptest server until at least 3 rounds commit, in both serving modes.
// Run with -race: this is the subsystem's concurrency gauntlet.
func TestFleetEndToEnd(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{
			name: "SyncFedAvg",
			cfg: Config{
				Mode:          ModeSync,
				ModelKind:     model.KindA,
				Seed:          1,
				TargetUpdates: 12,
				Quorum:        4,
				OverCommit:    2,
				RoundDeadline: 5 * time.Second,
				QueueDepth:    128,
				KeepVersions:  -1,
				Criteria:      availability.Criteria{RequireWiFi: true},
			},
		},
		{
			name: "AsyncFedBuff",
			cfg: Config{
				Mode:           ModeAsync,
				ModelKind:      model.KindA,
				Seed:           1,
				TargetUpdates:  12,
				Quorum:         4,
				MaxInflight:    256,
				RoundDeadline:  5 * time.Second,
				MaxStaleness:   4,
				StalenessAlpha: 0.5,
				QueueDepth:     128,
				KeepVersions:   -1,
				Criteria:       availability.Criteria{RequireWiFi: true},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			srv := httptest.NewServer(NewServer(c))
			defer srv.Close()

			rep, err := RunFleet(FleetConfig{
				BaseURL:      srv.URL,
				Devices:      150,
				Rounds:       3,
				Seed:         7,
				ThinkTime:    15 * time.Millisecond,
				ComputeScale: 0.2,
				Timeout:      90 * time.Second,
			})
			if err != nil {
				t.Fatalf("fleet: %v (report: %+v)", err, rep)
			}
			if rep.RoundsCommitted < 3 {
				t.Fatalf("committed %d rounds, want >= 3", rep.RoundsCommitted)
			}
			if rep.UpdatesAccepted < int64(3*tc.cfg.Quorum) {
				t.Fatalf("only %d updates accepted", rep.UpdatesAccepted)
			}
			if rep.CheckInLatency.Count == 0 || rep.UpdateLatency.Count == 0 {
				t.Fatalf("latency histograms empty: %+v", rep)
			}
			// The published model moved: aggregation really ran.
			final, v, err := c.Store().Latest(c.Config().ModelName)
			if err != nil {
				t.Fatal(err)
			}
			if v < 4 {
				t.Fatalf("store latest version = %d, want >= 4", v)
			}
			init, err := c.Store().Get(c.Config().ModelName, 1)
			if err != nil {
				t.Fatal(err)
			}
			diff := final.Params().Clone()
			diff.Sub(init.Params())
			if diff.Norm2() == 0 {
				t.Fatal("model parameters unchanged after 3 committed rounds")
			}
		})
	}
}

// TestFleetMixedProtocols runs binary-tensor and legacy-JSON clients
// against the same server in the same rounds: the content-negotiation
// contract is that neither cohort can tell the other exists.
func TestFleetMixedProtocols(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 10,
		Quorum:        4,
		OverCommit:    2,
		RoundDeadline: 5 * time.Second,
		QueueDepth:    128,
		KeepVersions:  -1,
		Transport:     transport.Config{Default: transport.Policy{Update: codec.Q8}},
		Criteria:      availability.Criteria{RequireWiFi: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()

	rep, err := RunFleet(FleetConfig{
		BaseURL:      srv.URL,
		Devices:      80,
		Rounds:       2,
		Seed:         11,
		ThinkTime:    15 * time.Millisecond,
		ComputeScale: 0.2,
		JSONFraction: 0.5,
		Timeout:      90 * time.Second,
	})
	if err != nil {
		t.Fatalf("fleet: %v (report: %+v)", err, rep)
	}
	if rep.BinaryDevices != 40 || rep.JSONDevices != 40 {
		t.Fatalf("cohorts: %d binary, %d json", rep.BinaryDevices, rep.JSONDevices)
	}
	if rep.BytesSent == 0 || rep.BytesRecv == 0 {
		t.Fatalf("wire stats empty: %+v", rep)
	}
	// Both protocols actually carried traffic on both directions.
	for _, counter := range []string{"task_sent_binary", "task_sent_json", "update_recv_binary", "update_recv_json"} {
		if c.Counters().Counter(counter).Value() == 0 {
			t.Errorf("counter %s = 0: that protocol path never ran", counter)
		}
	}
	// Quantized binary updates aggregated alongside JSON ones.
	final, _, err := c.Store().Latest(c.Config().ModelName)
	if err != nil {
		t.Fatal(err)
	}
	init, err := c.Store().Get(c.Config().ModelName, 1)
	if err != nil {
		t.Fatal(err)
	}
	diff := final.Params().Clone()
	diff.Sub(init.Params())
	if diff.Norm2() == 0 {
		t.Fatal("model parameters unchanged after mixed-protocol rounds")
	}
}

// TestPublishedBlobCache checks the per-commit broadcast cache: the blob a
// task carries decodes to the published parameters, is shared byte-for-byte
// between requests at the same version, and is re-encoded after a commit.
func TestPublishedBlobCache(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 1,
		Quorum:        1,
		OverCommit:    4,
		RoundDeadline: time.Minute,
		// lossless so decode == published exactly
		Transport: transport.Config{Default: transport.Policy{Task: codec.RawF64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info := func(id int64) DeviceInfo {
		return DeviceInfo{ID: id, Model: "Pixel-6", WiFi: true, BatteryHigh: true, SessionSec: 120, Weight: 1}
	}
	c.CheckIn(info(1))
	c.CheckIn(info(2))
	t1, err := c.RequestTask(1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.RequestTask(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.EncodedParams) == 0 || &t1.EncodedParams[0] != &t2.EncodedParams[0] {
		t.Fatal("same-version tasks do not share the cached blob")
	}
	decoded, scheme, err := codec.Decode(t1.EncodedParams)
	if err != nil {
		t.Fatal(err)
	}
	if scheme != codec.RawF64 || len(decoded) != t1.Dim {
		t.Fatalf("blob scheme %v dim %d", scheme, len(decoded))
	}
	diff := decoded.Clone()
	diff.Sub(t1.Params)
	if diff.Norm2() != 0 {
		t.Fatal("cached blob does not match published params")
	}

	// Commit a round and confirm the cache was re-encoded.
	delta := tensor.NewVector(t1.Dim)
	delta.Fill(0.5)
	if err := c.SubmitUpdate(Submission{DeviceID: 1, RoundID: t1.RoundID, BaseVersion: t1.BaseVersion, Weight: 1, Delta: delta}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Version() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("round never committed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t3, err := c.RequestTask(2)
	if err != nil {
		t.Fatal(err)
	}
	if t3.BaseVersion != 2 {
		t.Fatalf("base version %d, want 2", t3.BaseVersion)
	}
	decoded2, _, err := codec.Decode(t3.EncodedParams)
	if err != nil {
		t.Fatal(err)
	}
	moved := decoded2.Clone()
	moved.Sub(decoded)
	if moved.Norm2() == 0 {
		t.Fatal("blob unchanged after commit")
	}
}

// TestServerProtocolEdges exercises the wire-level error contract directly.
func TestServerProtocolEdges(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 4,
		Quorum:        2,
		RoundDeadline: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	client := srv.Client()

	// Task for a device that never checked in → 404.
	resp, err := client.Get(srv.URL + "/v1/task?device=42")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("task for unknown device: HTTP %d, want 404", resp.StatusCode)
	}

	// Malformed check-in → 400.
	resp, err = client.Post(srv.URL+"/v1/checkin", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed check-in: HTTP %d, want 400", resp.StatusCode)
	}

	// Valid check-in → eligible with version/round info.
	body, _ := json.Marshal(CheckInRequest{DeviceID: 42, Model: "Pixel-6", WiFi: true, BatteryHigh: true, SessionSec: 120})
	resp, err = client.Post(srv.URL+"/v1/checkin", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var ci CheckInResponse
	if err := json.NewDecoder(resp.Body).Decode(&ci); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ci.Eligible || ci.Version != 1 || ci.RoundID != 1 {
		t.Fatalf("check-in response = %+v", ci)
	}

	// Update with wrong dimensionality → 400.
	body, _ = json.Marshal(UpdateRequest{DeviceID: 42, RoundID: 1, BaseVersion: 1, Weight: 1, Delta: []float64{1, 2, 3}})
	resp, err = client.Post(srv.URL+"/v1/update", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-dim update: HTTP %d, want 400", resp.StatusCode)
	}

	// Wrong HTTP method → 405.
	resp, err = client.Get(srv.URL + "/v1/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/update: HTTP %d, want 405", resp.StatusCode)
	}

	// Status reflects the census.
	resp, err = client.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusReport
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Devices.Known != 1 || st.Round.ID != 1 || st.Mode != ModeSync {
		t.Fatalf("status = %+v", st)
	}
}

// TestBinaryProtocolEdges exercises the tensor-body wire contract: header
// metadata, blob validation, and the dimension precheck.
func TestBinaryProtocolEdges(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 4,
		Quorum:        2,
		RoundDeadline: time.Minute,
		Transport: transport.Config{
			Default: transport.Policy{Task: codec.F32, Update: codec.Q8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	client := srv.Client()

	body, _ := json.Marshal(CheckInRequest{DeviceID: 7, Model: "Pixel-6", WiFi: true, BatteryHigh: true, SessionSec: 120, Weight: 2})
	resp, err := client.Post(srv.URL+"/v1/checkin", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Accept negotiation: binary task with metadata headers and a codec
	// blob body that decodes to the model dimension.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/task?device=7", nil)
	req.Header.Set("Accept", ContentTypeTensor)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary task: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeTensor {
		t.Fatalf("content type %q", ct)
	}
	if got := resp.Header.Get(hdrUpdateScheme); got != "q8" {
		t.Fatalf("update scheme header %q", got)
	}
	params, scheme, err := codec.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	dim, _ := strconv.Atoi(resp.Header.Get(hdrDim))
	if scheme != codec.F32 || len(params) != dim || dim == 0 {
		t.Fatalf("blob: scheme %v, %d params, dim header %d", scheme, len(params), dim)
	}

	post := func(body []byte, round, base string) int {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/update", bytes.NewReader(body))
		req.Header.Set("Content-Type", ContentTypeTensor)
		req.Header.Set(hdrDevice, "7")
		req.Header.Set(hdrRound, round)
		req.Header.Set(hdrBaseVersion, base)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	// Garbage tensor body → 400.
	if code := post([]byte("not a tensor"), "1", "1"); code != http.StatusBadRequest {
		t.Fatalf("garbage blob: HTTP %d, want 400", code)
	}
	// Wrong-dimension blob → 400 (rejected from the header precheck).
	small, err := codec.Encode(tensor.NewVector(3), codec.F32)
	if err != nil {
		t.Fatal(err)
	}
	if code := post(small, "1", "1"); code != http.StatusBadRequest {
		t.Fatalf("wrong-dim blob: HTTP %d, want 400", code)
	}
	// Bad metadata header → 400.
	if code := post(blob, "not-a-number", "1"); code != http.StatusBadRequest {
		t.Fatalf("bad round header: HTTP %d, want 400", code)
	}
	// A well-formed quantized delta → 202.
	delta := tensor.NewVector(dim)
	delta.Fill(0.001)
	enc, err := codec.Encode(delta, codec.Q8)
	if err != nil {
		t.Fatal(err)
	}
	if code := post(enc, "1", "1"); code != http.StatusAccepted {
		t.Fatalf("valid binary update: HTTP %d, want 202", code)
	}
}

// TestTransportNegotiationEdges exercises the satellite contracts of the
// negotiated transport layer: a device advertising only unknown schemes
// falls back to f32 (with counter bumps), capability lists constrain the
// cohort policy, and cellular devices land in the low-bandwidth cohort.
func TestTransportNegotiationEdges(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 4,
		Quorum:        2,
		OverCommit:    8,
		RoundDeadline: time.Minute,
		// Non-f32 defaults so a forced f32 fallback is observable.
		Transport: transport.Config{
			Default: transport.Policy{Task: codec.Q8, Update: codec.Q8, Delta: codec.Q8},
		},
		Criteria: availability.Criteria{}, // admit cellular sessions too
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	client := srv.Client()

	checkin := func(body CheckInRequest) CheckInResponse {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := client.Post(srv.URL+"/v1/checkin", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res CheckInResponse
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	// A device advertising schemes this server has never heard of is
	// served the universal baseline, and both counters tick.
	res := checkin(CheckInRequest{DeviceID: 1, Model: "Pixel-6", Platform: "Android",
		WiFi: true, BatteryHigh: true, SessionSec: 300, AcceptSchemes: "zstd-tensor,brotli9"})
	if res.Cohort != transport.CohortDefault || res.TaskScheme != "f32" || res.UpdateScheme != "f32" {
		t.Fatalf("unknown-scheme check-in negotiated %+v", res)
	}
	if c.Counters().Counter("transport_fallback_f32").Value() == 0 {
		t.Fatal("transport_fallback_f32 counter never bumped")
	}
	if c.Counters().Counter("checkin_unknown_scheme").Value() < 2 {
		t.Fatal("checkin_unknown_scheme counter missed the unknown entries")
	}
	// And the served blob really is f32, not the cohort's q8.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/task?device=1", nil)
	req.Header.Set("Accept", ContentTypeTensor)
	req.Header.Set(hdrAcceptSchemes, "zstd-tensor,brotli9")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback task: HTTP %d", resp.StatusCode)
	}
	if _, s, err := codec.Decode(blob); err != nil || s != codec.F32 {
		t.Fatalf("fallback blob scheme %v (err %v), want f32", s, err)
	}

	// A cellular device with full capabilities lands in the lowbw
	// cohort and keeps its policy (defaults: topk broadcast).
	res = checkin(CheckInRequest{DeviceID: 2, Model: "Moto-G7", Platform: "Android",
		WiFi: false, BatteryHigh: true, SessionSec: 300, AcceptSchemes: "f32,q8,topk,raw64"})
	if res.Cohort != transport.CohortLowBW {
		t.Fatalf("cellular device cohort %q", res.Cohort)
	}
	// A legacy check-in (no advertisement) still gets cohort metadata
	// and the unfiltered policy.
	res = checkin(CheckInRequest{DeviceID: 3, Model: "Pixel-6", Platform: "Android",
		WiFi: true, BatteryHigh: true, SessionSec: 300})
	if res.Cohort != transport.CohortDefault || res.TaskScheme != "q8" {
		t.Fatalf("legacy check-in negotiated %+v", res)
	}
	if c.Counters().Counter("task_cohort_default").Value() == 0 {
		t.Fatal("task_cohort_default counter never bumped")
	}
}

// TestDeltaBroadcast drives the version ring end to end over HTTP: a
// device holding a ring-resident version receives a delta frame that
// reproduces the published vector, repeated bases hit the delta cache,
// an aged-out base falls back to the full broadcast, and an up-to-date
// device gets a near-empty frame.
func TestDeltaBroadcast(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 1,
		Quorum:        1,
		OverCommit:    8,
		RoundDeadline: time.Minute,
		KeepVersions:  -1,
		// Lossless schemes so delta reconstruction is checkable tightly.
		Transport: transport.Config{
			Default:      transport.Policy{Task: codec.RawF64, Update: codec.Q8, Delta: codec.RawF64},
			DeltaHistory: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	client := srv.Client()

	for id := int64(1); id <= 3; id++ {
		body, _ := json.Marshal(CheckInRequest{DeviceID: id, Model: "Pixel-6", WiFi: true,
			BatteryHigh: true, SessionSec: 600, Weight: 1, AcceptSchemes: "f32,q8,topk,raw64"})
		resp, err := client.Post(srv.URL+"/v1/checkin", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// fetch pulls a binary task for dev, optionally advertising a held
	// base version, and returns the response headers plus body.
	fetch := func(dev, base int) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/task?device=%d", srv.URL, dev), nil)
		req.Header.Set("Accept", ContentTypeTensor)
		if base > 0 {
			req.Header.Set(hdrBaseVersion, strconv.Itoa(base))
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("task for device %d: HTTP %d", dev, resp.StatusCode)
		}
		return resp, body
	}
	// submit posts a JSON update for the task the device holds, then
	// waits for the commit it triggers.
	submit := func(dev int, resp *http.Response) {
		t.Helper()
		round, _ := strconv.ParseUint(resp.Header.Get(hdrRound), 10, 64)
		base, _ := strconv.Atoi(resp.Header.Get(hdrBaseVersion))
		delta := make([]float64, c.global.NumParams())
		for i := range delta {
			delta[i] = 0.001 * float64(dev)
		}
		body, _ := json.Marshal(UpdateRequest{DeviceID: int64(dev), RoundID: round,
			BaseVersion: base, Weight: 1, Delta: delta})
		r, err := client.Post(srv.URL+"/v1/update", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("update from device %d: HTTP %d", dev, r.StatusCode)
		}
		deadline := time.Now().Add(10 * time.Second)
		for c.Version() <= base {
			if time.Now().After(deadline) {
				t.Fatalf("round after v%d never committed", base)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	published := func(v int) tensor.Vector {
		t.Helper()
		m, err := c.Store().Get(c.Config().ModelName, v)
		if err != nil {
			t.Fatal(err)
		}
		return m.Params()
	}

	// Round 1: device 1 takes the full broadcast at v1 and commits v2.
	resp, body := fetch(1, 0)
	if h := resp.Header.Get(hdrDelta); h != "" {
		t.Fatalf("fresh device got a delta frame (base %s)", h)
	}
	v1, _, err := codec.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	submit(1, resp)

	// Device 2 holds v1: it gets a delta frame against it that rebuilds
	// the published v2 exactly (raw64 end to end).
	resp, body = fetch(2, 1)
	if got := resp.Header.Get(hdrDelta); got != "1" {
		t.Fatalf("%s = %q, want 1", hdrDelta, got)
	}
	if !codec.IsDelta(body) {
		t.Fatal("delta response body not delta-framed")
	}
	if full, err := codec.Encode(published(2), codec.RawF64); err == nil && len(body) >= len(full)*2 {
		t.Fatalf("delta frame (%d bytes) not smaller than 2x full (%d bytes)", len(body), len(full))
	}
	rebuilt, _, err := codec.ApplyDelta(v1, body)
	if err != nil {
		t.Fatal(err)
	}
	diff := rebuilt.Clone()
	diff.Sub(published(2))
	if diff.Norm2() > 1e-9 {
		t.Fatalf("delta reconstruction off by %g", diff.Norm2())
	}

	// Device 3 asks from the same base: the frame comes from the cache.
	fetch(3, 1)
	if c.Counters().Counter("delta_cache_hits").Value() == 0 {
		t.Fatal("second same-base delta missed the cache")
	}

	// Commit twice more (v3, v4): with DeltaHistory 2 the ring now
	// holds {v3, v4} and base v1 has aged out.
	submit(2, resp)
	resp3, _ := fetch(3, 0)
	submit(3, resp3)
	if v := c.Version(); v != 4 {
		t.Fatalf("version %d, want 4", v)
	}
	aged := c.Counters().Counter("delta_base_aged").Value()
	resp, _ = fetch(1, 1)
	if h := resp.Header.Get(hdrDelta); h != "" {
		t.Fatalf("aged-out base still served a delta (base %s)", h)
	}
	if c.Counters().Counter("delta_base_aged").Value() <= aged {
		t.Fatal("delta_base_aged counter never bumped")
	}

	// An up-to-date device gets a near-empty "no change" frame.
	resp, body = fetch(2, 4)
	if got := resp.Header.Get(hdrDelta); got != "4" {
		t.Fatalf("current-version delta header %q", got)
	}
	if len(body) > 256 {
		t.Fatalf("no-change delta frame is %d bytes", len(body))
	}
	same, _, err := codec.ApplyDelta(published(4), body)
	if err != nil {
		t.Fatal(err)
	}
	d2 := same.Clone()
	d2.Sub(published(4))
	if d2.Norm2() != 0 {
		t.Fatal("no-change delta moved the params")
	}

	// A device that cannot decode topk must not get the topk no-change
	// shortcut: its frame stays within the schemes it advertised.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/task?device=3", nil)
	req.Header.Set("Accept", ContentTypeTensor)
	req.Header.Set(hdrBaseVersion, "4")
	req.Header.Set(hdrAcceptSchemes, "f32,q8")
	r2, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(r2.Body)
	r2.Body.Close()
	if err != nil || r2.StatusCode != http.StatusOK {
		t.Fatalf("constrained no-change fetch: HTTP %d, err %v", r2.StatusCode, err)
	}
	if got := r2.Header.Get(hdrDelta); got != "4" {
		t.Fatalf("constrained no-change delta header %q", got)
	}
	if _, s, err := codec.Decode(body); err != nil || s.Kind == codec.KindTopK || s.Kind == codec.KindRawF64 {
		t.Fatalf("constrained no-change frame scheme %v (err %v): outside the advertised list", s, err)
	}
}

// TestUpdateOversizeRejected pins the 413 contract on both update paths:
// oversize bodies are refused loudly and counted, never silently
// truncated into a confusing codec error.
func TestUpdateOversizeRejected(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 4,
		Quorum:        2,
		RoundDeadline: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	client := srv.Client()

	oversize := make([]byte, maxUpdateBody+16)
	copy(oversize, "FCT") // plausible start; the size check must fire first

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/update", bytes.NewReader(oversize))
	req.Header.Set("Content-Type", ContentTypeTensor)
	req.Header.Set(hdrDevice, "1")
	req.Header.Set(hdrRound, "1")
	req.Header.Set(hdrBaseVersion, "1")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize binary update: HTTP %d, want 413", resp.StatusCode)
	}
	if c.Counters().Counter("update_rejected_oversize").Value() != 1 {
		t.Fatal("oversize binary update not counted")
	}

	// JSON path: an over-budget body dies in MaxBytesReader mid-decode.
	jsonBody := append([]byte(`{"delta":[`), bytes.Repeat([]byte("1,"), (maxUpdateBody/2)+16)...)
	jsonBody = append(jsonBody, []byte("1]}")...)
	resp, err = client.Post(srv.URL+"/v1/update", "application/json", bytes.NewReader(jsonBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize JSON update: HTTP %d, want 413", resp.StatusCode)
	}
	if c.Counters().Counter("update_rejected_oversize").Value() != 2 {
		t.Fatal("oversize JSON update not counted")
	}
}

// TestFleetTransportMix is the acceptance gauntlet scaled for CI: delta-
// capable, legacy full-broadcast, and JSON devices share the same rounds
// in both serving modes, deltas actually flow, and the downlink wire
// stats surface in /v1/status.
func TestFleetTransportMix(t *testing.T) {
	for _, mode := range []Mode{ModeSync, ModeAsync} {
		t.Run(string(mode), func(t *testing.T) {
			cfg := Config{
				Mode:          mode,
				ModelKind:     model.KindA,
				Seed:          1,
				TargetUpdates: 12,
				Quorum:        4,
				OverCommit:    2,
				MaxInflight:   256,
				RoundDeadline: 5 * time.Second,
				MaxStaleness:  4,
				QueueDepth:    128,
				KeepVersions:  -1,
				Criteria:      availability.Criteria{}, // admit cellular: both cohorts serve
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			srv := httptest.NewServer(NewServer(c))
			defer srv.Close()

			// Rounds must exceed Devices/TargetUpdates (= 5): the fast
			// commit pipeline can otherwise finish every round from
			// devices' *first* task fetches alone, and delta frames only
			// flow on a device's second fetch (when it holds a base).
			rep, err := RunFleet(FleetConfig{
				BaseURL:        srv.URL,
				Devices:        60,
				Rounds:         8,
				Seed:           23,
				ThinkTime:      15 * time.Millisecond,
				ComputeScale:   0.2,
				JSONFraction:   0.3,
				LegacyFraction: 0.3,
				Timeout:        90 * time.Second,
			})
			if err != nil {
				t.Fatalf("fleet: %v (report: %+v)", err, rep)
			}
			if rep.RoundsCommitted < 3 {
				t.Fatalf("committed %d rounds, want >= 3", rep.RoundsCommitted)
			}
			if rep.JSONDevices != 18 || rep.LegacyDevices != 18 || rep.BinaryDevices != 24 {
				t.Fatalf("cohorts: %d json, %d legacy, %d binary",
					rep.JSONDevices, rep.LegacyDevices, rep.BinaryDevices)
			}
			if rep.DeltaTasks == 0 {
				t.Fatal("no delta frames flowed in a delta-capable fleet")
			}
			counters := c.Counters()
			for _, name := range []string{
				"task_sent_binary", "task_sent_json", "task_sent_delta",
				"update_recv_binary", "update_recv_json",
				"broadcast_bytes_full", "broadcast_bytes_delta",
			} {
				if counters.Counter(name).Value() == 0 {
					t.Errorf("counter %s = 0: that path never ran", name)
				}
			}
			if hits, misses := counters.Counter("delta_cache_hits").Value(),
				counters.Counter("delta_cache_misses").Value(); hits+misses == 0 {
				t.Error("delta cache never exercised")
			}
			// The downlink stats ride /v1/status like the uplink ones.
			st := rep.FinalStatus
			if st == nil {
				t.Fatal("no final status")
			}
			for _, name := range []string{"broadcast_bytes_full", "broadcast_bytes_delta", "delta_cache_hits"} {
				if _, ok := st.Counters[name]; !ok {
					t.Errorf("status counters missing %s", name)
				}
			}
			// Aggregation still converged across all three client kinds.
			final, _, err := c.Store().Latest(c.Config().ModelName)
			if err != nil {
				t.Fatal(err)
			}
			init, err := c.Store().Get(c.Config().ModelName, 1)
			if err != nil {
				t.Fatal(err)
			}
			moved := final.Params().Clone()
			moved.Sub(init.Params())
			if moved.Norm2() == 0 {
				t.Fatal("model parameters unchanged after mixed-transport rounds")
			}
		})
	}
}

// TestPerCohortDeltaWindow pins that delta admissibility is the
// requesting cohort's depth window, not the ring's: the ring is sized to
// the deepest cohort, so a default-cohort device whose base is still
// physically retained but past its own (shallower) window takes the full
// broadcast — counted as an aged base — while a low-bandwidth device
// with the very same base still rides a delta frame.
func TestPerCohortDeltaWindow(t *testing.T) {
	c, err := New(Config{
		Mode:           ModeAsync,
		ModelKind:      model.KindA,
		Seed:           1,
		TargetUpdates:  1,
		Quorum:         1,
		MaxInflight:    1 << 30,
		RoundDeadline:  time.Minute,
		StalenessAlpha: 0.5,
		QueueDepth:     64,
		KeepVersions:   -1,
		Transport: transport.Config{
			Default:      transport.Policy{Task: codec.RawF64, Update: codec.RawF64, Delta: codec.RawF64, DeltaDepth: 2},
			LowBW:        transport.Policy{Task: codec.RawF64, Update: codec.RawF64, Delta: codec.RawF64, DeltaDepth: 4},
			DeltaHistory: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	info := func(id int64, wifi bool) DeviceInfo {
		return DeviceInfo{ID: id, Model: "Pixel-6", Platform: "Android",
			WiFi: wifi, BatteryHigh: true, ModernOS: true, SessionSec: 3600, Weight: 1}
	}
	// Device 1 commits three rounds: v1 -> v4, all retained (ring 4).
	c.CheckIn(info(1, true))
	for c.Version() < 4 {
		task, err := c.RequestTask(1)
		if err != nil {
			time.Sleep(time.Millisecond)
			continue
		}
		delta := tensor.NewVector(task.Dim)
		delta.Fill(0.001)
		if err := c.SubmitUpdate(Submission{DeviceID: 1, RoundID: task.RoundID,
			BaseVersion: task.BaseVersion, Weight: 1, Delta: delta}); err != nil {
			t.Fatal(err)
		}
		base := task.BaseVersion
		eventually(t, 10*time.Second, func() bool { return c.Version() > base },
			"commit never landed")
	}

	// Default cohort (WiFi), base v1: 3 versions behind, inside the ring
	// (depth 4) but past the cohort window (2) -> full broadcast.
	c.CheckIn(info(2, true))
	aged := c.Counters().Counter("delta_base_aged").Value()
	task, err := c.RequestTaskWith(2, TaskQuery{Binary: true, BaseVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	if task.Cohort != transport.CohortDefault {
		t.Fatalf("device 2 cohort %q", task.Cohort)
	}
	if task.DeltaBase != 0 {
		t.Fatalf("shallow cohort got a delta against base %d, want full broadcast", task.DeltaBase)
	}
	if got := c.Counters().Counter("delta_base_aged").Value(); got != aged+1 {
		t.Fatalf("delta_base_aged = %d, want %d (past-window base not counted)", got, aged+1)
	}

	// Same base from the low-bandwidth cohort (cellular): within its
	// deeper window -> delta frame against v1.
	c.CheckIn(info(3, false))
	task, err = c.RequestTaskWith(3, TaskQuery{Binary: true, BaseVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	if task.Cohort != transport.CohortLowBW {
		t.Fatalf("device 3 cohort %q", task.Cohort)
	}
	if task.DeltaBase != 1 {
		t.Fatalf("deep cohort DeltaBase = %d, want 1", task.DeltaBase)
	}
	m, err := c.Store().Get(c.Config().ModelName, 1)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, _, err := codec.ApplyDelta(m.Params(), task.EncodedParams)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := c.Store().Get(c.Config().ModelName, task.BaseVersion)
	if err != nil {
		t.Fatal(err)
	}
	diff := rebuilt.Clone()
	diff.Sub(cur.Params())
	if diff.Norm2() > 1e-9 {
		t.Fatalf("lowbw delta reconstruction off by %g", diff.Norm2())
	}

	// A default-cohort base inside the shallow window still deltas.
	c.CheckIn(info(4, true))
	task, err = c.RequestTaskWith(4, TaskQuery{Binary: true, BaseVersion: c.Version() - 1})
	if err != nil {
		t.Fatal(err)
	}
	if task.DeltaBase == 0 {
		t.Fatal("in-window default-cohort base did not delta")
	}
}
