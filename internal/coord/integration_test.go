package coord

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flint/internal/availability"
	"flint/internal/model"
)

// TestFleetEndToEnd drives a fleet of goroutine devices through a live
// httptest server until at least 3 rounds commit, in both serving modes.
// Run with -race: this is the subsystem's concurrency gauntlet.
func TestFleetEndToEnd(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{
			name: "SyncFedAvg",
			cfg: Config{
				Mode:          ModeSync,
				ModelKind:     model.KindA,
				Seed:          1,
				TargetUpdates: 12,
				Quorum:        4,
				OverCommit:    2,
				RoundDeadline: 5 * time.Second,
				QueueDepth:    128,
				KeepVersions:  -1,
				Criteria:      availability.Criteria{RequireWiFi: true},
			},
		},
		{
			name: "AsyncFedBuff",
			cfg: Config{
				Mode:           ModeAsync,
				ModelKind:      model.KindA,
				Seed:           1,
				TargetUpdates:  12,
				Quorum:         4,
				MaxInflight:    256,
				RoundDeadline:  5 * time.Second,
				MaxStaleness:   4,
				StalenessAlpha: 0.5,
				QueueDepth:     128,
				KeepVersions:   -1,
				Criteria:       availability.Criteria{RequireWiFi: true},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			srv := httptest.NewServer(NewServer(c))
			defer srv.Close()

			rep, err := RunFleet(FleetConfig{
				BaseURL:      srv.URL,
				Devices:      150,
				Rounds:       3,
				Seed:         7,
				ThinkTime:    15 * time.Millisecond,
				ComputeScale: 0.2,
				Timeout:      90 * time.Second,
			})
			if err != nil {
				t.Fatalf("fleet: %v (report: %+v)", err, rep)
			}
			if rep.RoundsCommitted < 3 {
				t.Fatalf("committed %d rounds, want >= 3", rep.RoundsCommitted)
			}
			if rep.UpdatesAccepted < int64(3*tc.cfg.Quorum) {
				t.Fatalf("only %d updates accepted", rep.UpdatesAccepted)
			}
			if rep.CheckInLatency.Count == 0 || rep.UpdateLatency.Count == 0 {
				t.Fatalf("latency histograms empty: %+v", rep)
			}
			// The published model moved: aggregation really ran.
			final, v, err := c.Store().Latest(c.Config().ModelName)
			if err != nil {
				t.Fatal(err)
			}
			if v < 4 {
				t.Fatalf("store latest version = %d, want >= 4", v)
			}
			init, err := c.Store().Get(c.Config().ModelName, 1)
			if err != nil {
				t.Fatal(err)
			}
			diff := final.Params().Clone()
			diff.Sub(init.Params())
			if diff.Norm2() == 0 {
				t.Fatal("model parameters unchanged after 3 committed rounds")
			}
		})
	}
}

// TestServerProtocolEdges exercises the wire-level error contract directly.
func TestServerProtocolEdges(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 4,
		Quorum:        2,
		RoundDeadline: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	client := srv.Client()

	// Task for a device that never checked in → 404.
	resp, err := client.Get(srv.URL + "/v1/task?device=42")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("task for unknown device: HTTP %d, want 404", resp.StatusCode)
	}

	// Malformed check-in → 400.
	resp, err = client.Post(srv.URL+"/v1/checkin", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed check-in: HTTP %d, want 400", resp.StatusCode)
	}

	// Valid check-in → eligible with version/round info.
	body, _ := json.Marshal(CheckInRequest{DeviceID: 42, Model: "Pixel-6", WiFi: true, BatteryHigh: true, SessionSec: 120})
	resp, err = client.Post(srv.URL+"/v1/checkin", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var ci CheckInResponse
	if err := json.NewDecoder(resp.Body).Decode(&ci); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ci.Eligible || ci.Version != 1 || ci.RoundID != 1 {
		t.Fatalf("check-in response = %+v", ci)
	}

	// Update with wrong dimensionality → 400.
	body, _ = json.Marshal(UpdateRequest{DeviceID: 42, RoundID: 1, BaseVersion: 1, Weight: 1, Delta: []float64{1, 2, 3}})
	resp, err = client.Post(srv.URL+"/v1/update", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-dim update: HTTP %d, want 400", resp.StatusCode)
	}

	// Wrong HTTP method → 405.
	resp, err = client.Get(srv.URL + "/v1/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/update: HTTP %d, want 405", resp.StatusCode)
	}

	// Status reflects the census.
	resp, err = client.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusReport
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Devices.Known != 1 || st.Round.ID != 1 || st.Mode != ModeSync {
		t.Fatalf("status = %+v", st)
	}
}
