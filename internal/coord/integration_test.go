package coord

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"flint/internal/availability"
	"flint/internal/codec"
	"flint/internal/model"
	"flint/internal/tensor"
)

// TestFleetEndToEnd drives a fleet of goroutine devices through a live
// httptest server until at least 3 rounds commit, in both serving modes.
// Run with -race: this is the subsystem's concurrency gauntlet.
func TestFleetEndToEnd(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{
			name: "SyncFedAvg",
			cfg: Config{
				Mode:          ModeSync,
				ModelKind:     model.KindA,
				Seed:          1,
				TargetUpdates: 12,
				Quorum:        4,
				OverCommit:    2,
				RoundDeadline: 5 * time.Second,
				QueueDepth:    128,
				KeepVersions:  -1,
				Criteria:      availability.Criteria{RequireWiFi: true},
			},
		},
		{
			name: "AsyncFedBuff",
			cfg: Config{
				Mode:           ModeAsync,
				ModelKind:      model.KindA,
				Seed:           1,
				TargetUpdates:  12,
				Quorum:         4,
				MaxInflight:    256,
				RoundDeadline:  5 * time.Second,
				MaxStaleness:   4,
				StalenessAlpha: 0.5,
				QueueDepth:     128,
				KeepVersions:   -1,
				Criteria:       availability.Criteria{RequireWiFi: true},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			srv := httptest.NewServer(NewServer(c))
			defer srv.Close()

			rep, err := RunFleet(FleetConfig{
				BaseURL:      srv.URL,
				Devices:      150,
				Rounds:       3,
				Seed:         7,
				ThinkTime:    15 * time.Millisecond,
				ComputeScale: 0.2,
				Timeout:      90 * time.Second,
			})
			if err != nil {
				t.Fatalf("fleet: %v (report: %+v)", err, rep)
			}
			if rep.RoundsCommitted < 3 {
				t.Fatalf("committed %d rounds, want >= 3", rep.RoundsCommitted)
			}
			if rep.UpdatesAccepted < int64(3*tc.cfg.Quorum) {
				t.Fatalf("only %d updates accepted", rep.UpdatesAccepted)
			}
			if rep.CheckInLatency.Count == 0 || rep.UpdateLatency.Count == 0 {
				t.Fatalf("latency histograms empty: %+v", rep)
			}
			// The published model moved: aggregation really ran.
			final, v, err := c.Store().Latest(c.Config().ModelName)
			if err != nil {
				t.Fatal(err)
			}
			if v < 4 {
				t.Fatalf("store latest version = %d, want >= 4", v)
			}
			init, err := c.Store().Get(c.Config().ModelName, 1)
			if err != nil {
				t.Fatal(err)
			}
			diff := final.Params().Clone()
			diff.Sub(init.Params())
			if diff.Norm2() == 0 {
				t.Fatal("model parameters unchanged after 3 committed rounds")
			}
		})
	}
}

// TestFleetMixedProtocols runs binary-tensor and legacy-JSON clients
// against the same server in the same rounds: the content-negotiation
// contract is that neither cohort can tell the other exists.
func TestFleetMixedProtocols(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 10,
		Quorum:        4,
		OverCommit:    2,
		RoundDeadline: 5 * time.Second,
		QueueDepth:    128,
		KeepVersions:  -1,
		UpdateScheme:  codec.Q8,
		Criteria:      availability.Criteria{RequireWiFi: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()

	rep, err := RunFleet(FleetConfig{
		BaseURL:      srv.URL,
		Devices:      80,
		Rounds:       2,
		Seed:         11,
		ThinkTime:    15 * time.Millisecond,
		ComputeScale: 0.2,
		JSONFraction: 0.5,
		Timeout:      90 * time.Second,
	})
	if err != nil {
		t.Fatalf("fleet: %v (report: %+v)", err, rep)
	}
	if rep.BinaryDevices != 40 || rep.JSONDevices != 40 {
		t.Fatalf("cohorts: %d binary, %d json", rep.BinaryDevices, rep.JSONDevices)
	}
	if rep.BytesSent == 0 || rep.BytesRecv == 0 {
		t.Fatalf("wire stats empty: %+v", rep)
	}
	// Both protocols actually carried traffic on both directions.
	for _, counter := range []string{"task_sent_binary", "task_sent_json", "update_recv_binary", "update_recv_json"} {
		if c.Counters().Counter(counter).Value() == 0 {
			t.Errorf("counter %s = 0: that protocol path never ran", counter)
		}
	}
	// Quantized binary updates aggregated alongside JSON ones.
	final, _, err := c.Store().Latest(c.Config().ModelName)
	if err != nil {
		t.Fatal(err)
	}
	init, err := c.Store().Get(c.Config().ModelName, 1)
	if err != nil {
		t.Fatal(err)
	}
	diff := final.Params().Clone()
	diff.Sub(init.Params())
	if diff.Norm2() == 0 {
		t.Fatal("model parameters unchanged after mixed-protocol rounds")
	}
}

// TestPublishedBlobCache checks the per-commit broadcast cache: the blob a
// task carries decodes to the published parameters, is shared byte-for-byte
// between requests at the same version, and is re-encoded after a commit.
func TestPublishedBlobCache(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 1,
		Quorum:        1,
		OverCommit:    4,
		RoundDeadline: time.Minute,
		TaskScheme:    codec.RawF64, // lossless so decode == published exactly
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info := func(id int64) DeviceInfo {
		return DeviceInfo{ID: id, Model: "Pixel-6", WiFi: true, BatteryHigh: true, SessionSec: 120, Weight: 1}
	}
	c.CheckIn(info(1))
	c.CheckIn(info(2))
	t1, err := c.RequestTask(1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.RequestTask(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.EncodedParams) == 0 || &t1.EncodedParams[0] != &t2.EncodedParams[0] {
		t.Fatal("same-version tasks do not share the cached blob")
	}
	decoded, scheme, err := codec.Decode(t1.EncodedParams)
	if err != nil {
		t.Fatal(err)
	}
	if scheme != codec.RawF64 || len(decoded) != t1.Dim {
		t.Fatalf("blob scheme %v dim %d", scheme, len(decoded))
	}
	diff := decoded.Clone()
	diff.Sub(t1.Params)
	if diff.Norm2() != 0 {
		t.Fatal("cached blob does not match published params")
	}

	// Commit a round and confirm the cache was re-encoded.
	delta := tensor.NewVector(t1.Dim)
	delta.Fill(0.5)
	if err := c.SubmitUpdate(Submission{DeviceID: 1, RoundID: t1.RoundID, BaseVersion: t1.BaseVersion, Weight: 1, Delta: delta}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Version() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("round never committed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t3, err := c.RequestTask(2)
	if err != nil {
		t.Fatal(err)
	}
	if t3.BaseVersion != 2 {
		t.Fatalf("base version %d, want 2", t3.BaseVersion)
	}
	decoded2, _, err := codec.Decode(t3.EncodedParams)
	if err != nil {
		t.Fatal(err)
	}
	moved := decoded2.Clone()
	moved.Sub(decoded)
	if moved.Norm2() == 0 {
		t.Fatal("blob unchanged after commit")
	}
}

// TestServerProtocolEdges exercises the wire-level error contract directly.
func TestServerProtocolEdges(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 4,
		Quorum:        2,
		RoundDeadline: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	client := srv.Client()

	// Task for a device that never checked in → 404.
	resp, err := client.Get(srv.URL + "/v1/task?device=42")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("task for unknown device: HTTP %d, want 404", resp.StatusCode)
	}

	// Malformed check-in → 400.
	resp, err = client.Post(srv.URL+"/v1/checkin", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed check-in: HTTP %d, want 400", resp.StatusCode)
	}

	// Valid check-in → eligible with version/round info.
	body, _ := json.Marshal(CheckInRequest{DeviceID: 42, Model: "Pixel-6", WiFi: true, BatteryHigh: true, SessionSec: 120})
	resp, err = client.Post(srv.URL+"/v1/checkin", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var ci CheckInResponse
	if err := json.NewDecoder(resp.Body).Decode(&ci); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ci.Eligible || ci.Version != 1 || ci.RoundID != 1 {
		t.Fatalf("check-in response = %+v", ci)
	}

	// Update with wrong dimensionality → 400.
	body, _ = json.Marshal(UpdateRequest{DeviceID: 42, RoundID: 1, BaseVersion: 1, Weight: 1, Delta: []float64{1, 2, 3}})
	resp, err = client.Post(srv.URL+"/v1/update", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-dim update: HTTP %d, want 400", resp.StatusCode)
	}

	// Wrong HTTP method → 405.
	resp, err = client.Get(srv.URL + "/v1/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/update: HTTP %d, want 405", resp.StatusCode)
	}

	// Status reflects the census.
	resp, err = client.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusReport
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Devices.Known != 1 || st.Round.ID != 1 || st.Mode != ModeSync {
		t.Fatalf("status = %+v", st)
	}
}

// TestBinaryProtocolEdges exercises the tensor-body wire contract: header
// metadata, blob validation, and the dimension precheck.
func TestBinaryProtocolEdges(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 4,
		Quorum:        2,
		RoundDeadline: time.Minute,
		TaskScheme:    codec.F32,
		UpdateScheme:  codec.Q8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()
	client := srv.Client()

	body, _ := json.Marshal(CheckInRequest{DeviceID: 7, Model: "Pixel-6", WiFi: true, BatteryHigh: true, SessionSec: 120, Weight: 2})
	resp, err := client.Post(srv.URL+"/v1/checkin", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Accept negotiation: binary task with metadata headers and a codec
	// blob body that decodes to the model dimension.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/task?device=7", nil)
	req.Header.Set("Accept", ContentTypeTensor)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary task: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeTensor {
		t.Fatalf("content type %q", ct)
	}
	if got := resp.Header.Get(hdrUpdateScheme); got != "q8" {
		t.Fatalf("update scheme header %q", got)
	}
	params, scheme, err := codec.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	dim, _ := strconv.Atoi(resp.Header.Get(hdrDim))
	if scheme != codec.F32 || len(params) != dim || dim == 0 {
		t.Fatalf("blob: scheme %v, %d params, dim header %d", scheme, len(params), dim)
	}

	post := func(body []byte, round, base string) int {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/update", bytes.NewReader(body))
		req.Header.Set("Content-Type", ContentTypeTensor)
		req.Header.Set(hdrDevice, "7")
		req.Header.Set(hdrRound, round)
		req.Header.Set(hdrBaseVersion, base)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	// Garbage tensor body → 400.
	if code := post([]byte("not a tensor"), "1", "1"); code != http.StatusBadRequest {
		t.Fatalf("garbage blob: HTTP %d, want 400", code)
	}
	// Wrong-dimension blob → 400 (rejected from the header precheck).
	small, err := codec.Encode(tensor.NewVector(3), codec.F32)
	if err != nil {
		t.Fatal(err)
	}
	if code := post(small, "1", "1"); code != http.StatusBadRequest {
		t.Fatalf("wrong-dim blob: HTTP %d, want 400", code)
	}
	// Bad metadata header → 400.
	if code := post(blob, "not-a-number", "1"); code != http.StatusBadRequest {
		t.Fatalf("bad round header: HTTP %d, want 400", code)
	}
	// A well-formed quantized delta → 202.
	delta := tensor.NewVector(dim)
	delta.Fill(0.001)
	enc, err := codec.Encode(delta, codec.Q8)
	if err != nil {
		t.Fatal(err)
	}
	if code := post(enc, "1", "1"); code != http.StatusAccepted {
		t.Fatalf("valid binary update: HTTP %d, want 202", code)
	}
}
