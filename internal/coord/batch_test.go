package coord

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"flint/internal/codec"
	"flint/internal/model"
)

// TestRegistryCheckInBatch exercises both batch paths (the tiny-batch
// fallthrough and the shard-grouped walk): mixed new/existing devices,
// quota enforcement, and rejected IDs in input order.
func TestRegistryCheckInBatch(t *testing.T) {
	r := NewRegistry(8, time.Minute)
	now := time.Unix(1000, 0)

	// Tiny batch (< the grouping threshold): all new.
	small := []DeviceInfo{testInfo(1), testInfo(2), testInfo(3)}
	if n, rej := r.CheckInBatch(small, now, 0); n != 3 || len(rej) != 0 {
		t.Fatalf("small batch: new=%d rejected=%v, want 3 new", n, rej)
	}

	// Large batch across shards: half already known.
	big := make([]DeviceInfo, 0, 64)
	for id := int64(1); id <= 64; id++ {
		big = append(big, testInfo(id))
	}
	if n, rej := r.CheckInBatch(big, now.Add(time.Second), 0); n != 61 || len(rej) != 0 {
		t.Fatalf("large batch: new=%d rejected=%v, want 61 new", n, rej)
	}
	if got := r.Known(); got != 64 {
		t.Fatalf("Known() = %d, want 64", got)
	}
	// Per-device state must match per-device check-in semantics.
	info, ok := r.Get(17)
	if !ok || info.Model != "Pixel-6" || !info.WiFi {
		t.Fatalf("Get(17) after batch = %+v, %v", info, ok)
	}

	// Quota: room for exactly 2 more; the rest reject in input order.
	over := []DeviceInfo{testInfo(100), testInfo(101), testInfo(102), testInfo(103),
		testInfo(104), testInfo(105), testInfo(106), testInfo(107), testInfo(108)}
	n, rej := r.CheckInBatch(over, now.Add(2*time.Second), 66)
	if n != 2 || len(rej) != 7 {
		t.Fatalf("quota batch: new=%d rejected=%v, want 2 new / 7 rejected", n, rej)
	}
	for i := 1; i < len(rej); i++ {
		if rej[i-1] >= rej[i] {
			t.Fatalf("rejected IDs not in input order: %v", rej)
		}
	}
	// Known devices re-check-in fine even at quota.
	if n, rej := r.CheckInBatch([]DeviceInfo{testInfo(1)}, now.Add(3*time.Second), 66); n != 0 || len(rej) != 0 {
		t.Fatalf("re-check-in at quota: new=%d rejected=%v", n, rej)
	}
}

// TestRegistryAcceptRoundTrip pins the accept-set bitmask against the
// three states the negotiator distinguishes: never advertised (nil),
// advertised empty (non-nil empty — an explicit "nothing"), and a real
// capability list.
func TestRegistryAcceptRoundTrip(t *testing.T) {
	r := NewRegistry(4, time.Minute)
	now := time.Unix(1000, 0)

	null := testInfo(1) // Accept nil: legacy device, never advertised
	r.CheckIn(null, now)
	advertised := testInfo(2)
	advertised.Accept = []codec.Kind{codec.KindF32, codec.KindQ8}
	r.CheckIn(advertised, now)
	empty := testInfo(3)
	empty.Accept = []codec.Kind{}
	r.CheckIn(empty, now)

	if got, _ := r.Get(1); got.Accept != nil {
		t.Fatalf("nil accept came back %v", got.Accept)
	}
	if got, _ := r.Get(2); len(got.Accept) != 2 || got.Accept[0] != codec.KindF32 || got.Accept[1] != codec.KindQ8 {
		t.Fatalf("accept list came back %v", got.Accept)
	}
	if got, _ := r.Get(3); got.Accept == nil || len(got.Accept) != 0 {
		t.Fatalf("empty accept came back %v (nil=%v)", got.Accept, got.Accept == nil)
	}
}

// TestRegistryFootprint sanity-checks the O(1) bytes-per-device
// accounting: linear in Known() and within the order of magnitude the
// compact layout promises (well under a kilobyte per device).
func TestRegistryFootprint(t *testing.T) {
	r := NewRegistry(8, time.Minute)
	now := time.Unix(1000, 0)
	if r.FootprintBytes() != 0 {
		t.Fatalf("empty registry footprint %d", r.FootprintBytes())
	}
	for id := int64(1); id <= 1000; id++ {
		r.CheckIn(testInfo(id), now)
	}
	fp := r.FootprintBytes()
	per := fp / 1000
	if per < 64 || per > 512 {
		t.Fatalf("footprint %d B/device outside the compact layout's plausible range", per)
	}
	if fp != 1000*deviceFootprintBytes {
		t.Fatalf("footprint %d not linear in devices (per-dev constant %d)", fp, deviceFootprintBytes)
	}
}

// TestServerCheckInBatch drives POST /v1/checkin/batch end to end:
// counts, quota rejections surfaced by ID, eligibility over the accepted
// subset, and the status report's footprint section populated.
func TestServerCheckInBatch(t *testing.T) {
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 4,
		MaxDevices:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()

	var req BatchCheckInRequest
	for id := int64(1); id <= 12; id++ {
		in := CheckInRequest{DeviceID: id, Model: "Pixel-6", Platform: "Android",
			WiFi: true, BatteryHigh: true, ModernOS: true, SessionSec: 300, Weight: 40}
		req.Devices = append(req.Devices, in)
	}
	raw, _ := json.Marshal(req)
	resp, err := srv.Client().Post(srv.URL+"/v1/checkin/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch check-in: HTTP %d", resp.StatusCode)
	}
	var out BatchCheckInResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 10 || out.New != 10 || len(out.RejectedIDs) != 2 {
		t.Fatalf("batch response %+v, want 10 accepted / 10 new / 2 rejected", out)
	}
	// Which devices lose the quota race depends on shard walk order; the
	// guarantee is the partition, not the victims.
	for _, id := range out.RejectedIDs {
		if id < 1 || id > 12 {
			t.Fatalf("rejected ID %d not from the request", id)
		}
	}
	if out.Eligible != 10 {
		t.Fatalf("eligible %d, want 10 (criteria are open)", out.Eligible)
	}

	// Empty batches are a client bug, not a no-op.
	resp2, err := srv.Client().Post(srv.URL+"/v1/checkin/batch", "application/json",
		bytes.NewReader([]byte(`{"devices":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: HTTP %d, want 400", resp2.StatusCode)
	}

	st := c.Status()
	// checkin_total counts attempts (like the per-device path, which
	// increments before the quota verdict); rejects land in their own
	// counter.
	if st.Counters["checkin_batch"] != 1 || st.Counters["checkin_total"] != 12 ||
		st.Counters["checkin_rejected_quota"] != 2 {
		t.Fatalf("counters: batch=%d total=%d rejected=%d", st.Counters["checkin_batch"],
			st.Counters["checkin_total"], st.Counters["checkin_rejected_quota"])
	}
	fp := st.Scheduler.Footprint
	if fp.Devices != 10 || fp.RegistryBytes <= 0 || fp.RegistryBytesPerDev <= 0 {
		t.Fatalf("status footprint not populated: %+v", fp)
	}
}
