package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"flint/internal/tensor"
)

// Wire types of the /v1 JSON API. Field names are the protocol; keep them
// stable.

// CheckInRequest is the POST /v1/checkin body.
type CheckInRequest struct {
	DeviceID    int64   `json:"device_id"`
	Model       string  `json:"model"`
	Platform    string  `json:"platform"`
	WiFi        bool    `json:"wifi"`
	BatteryHigh bool    `json:"battery_high"`
	ModernOS    bool    `json:"modern_os"`
	SessionSec  float64 `json:"session_sec"`
	Weight      float64 `json:"weight"`
}

// CheckInResponse is the POST /v1/checkin reply.
type CheckInResponse struct {
	New      bool   `json:"new"`
	Eligible bool   `json:"eligible"`
	Version  int    `json:"model_version"`
	RoundID  uint64 `json:"round_id"`
}

// TaskResponse is the GET /v1/task reply (200 only; 204 means no task).
type TaskResponse struct {
	RoundID     uint64    `json:"round_id"`
	BaseVersion int       `json:"base_version"`
	ModelKind   string    `json:"model_kind"`
	Dim         int       `json:"dim"`
	Params      []float64 `json:"params,omitempty"`
	LocalSteps  int       `json:"local_steps"`
	DeadlineMS  int64     `json:"deadline_unix_ms"`
}

// UpdateRequest is the POST /v1/update body.
type UpdateRequest struct {
	DeviceID    int64     `json:"device_id"`
	RoundID     uint64    `json:"round_id"`
	BaseVersion int       `json:"base_version"`
	Weight      float64   `json:"weight"`
	Delta       []float64 `json:"delta"`
}

// UpdateResponse is the POST /v1/update reply.
type UpdateResponse struct {
	Accepted bool `json:"accepted"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Server adapts a Coordinator to the stdlib HTTP stack.
type Server struct {
	c   *Coordinator
	mux *http.ServeMux
}

// NewServer wraps the coordinator in its /v1 JSON API.
func NewServer(c *Coordinator) *Server {
	s := &Server{c: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/checkin", s.handleCheckIn)
	s.mux.HandleFunc("POST /v1/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("GET /v1/task", s.handleTask)
	s.mux.HandleFunc("POST /v1/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (s *Server) handleCheckIn(w http.ResponseWriter, r *http.Request) {
	var req CheckInRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad check-in body: %w", err))
		return
	}
	res := s.c.CheckIn(DeviceInfo{
		ID:          req.DeviceID,
		Model:       req.Model,
		Platform:    req.Platform,
		WiFi:        req.WiFi,
		BatteryHigh: req.BatteryHigh,
		ModernOS:    req.ModernOS,
		SessionSec:  req.SessionSec,
		Weight:      req.Weight,
	})
	writeJSON(w, http.StatusOK, CheckInResponse{
		New:      res.New,
		Eligible: res.Eligible,
		Version:  res.Version,
		RoundID:  res.RoundID,
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id, err := deviceID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.c.Heartbeat(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	id, err := deviceID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	t, err := s.c.RequestTask(id)
	switch {
	case errors.Is(err, ErrNoTask):
		w.WriteHeader(http.StatusNoContent)
		return
	case errors.Is(err, ErrUnknownDevice):
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, TaskResponse{
		RoundID:     t.RoundID,
		BaseVersion: t.BaseVersion,
		ModelKind:   string(t.ModelKind),
		Dim:         t.Dim,
		Params:      t.Params,
		LocalSteps:  t.LocalSteps,
		DeadlineMS:  t.Deadline.UnixMilli(),
	})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad update body: %w", err))
		return
	}
	err := s.c.SubmitUpdate(Submission{
		DeviceID:    req.DeviceID,
		RoundID:     req.RoundID,
		BaseVersion: req.BaseVersion,
		Weight:      req.Weight,
		Delta:       tensor.Vector(req.Delta),
	})
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, UpdateResponse{Accepted: true})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.c.Status())
}

func deviceID(r *http.Request) (int64, error) {
	raw := r.URL.Query().Get("device")
	if raw == "" {
		return 0, fmt.Errorf("missing device parameter")
	}
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad device id %q: %w", raw, err)
	}
	return id, nil
}

// ListenAndServe runs the API on addr until the server errors; it mirrors
// http.ListenAndServe with sane timeouts for a long-polling device fleet.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
