package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"flint/internal/codec"
	"flint/internal/tensor"
)

// ContentTypeTensor marks binary tensor bodies (the internal/codec wire
// format). Devices opt in by sending it in Accept on GET /v1/task and as
// Content-Type on POST /v1/update; everything else falls back to the
// legacy JSON protocol, so old clients keep working unchanged.
const ContentTypeTensor = "application/x-flint-tensor"

// Binary-protocol metadata travels in headers so the body can be the
// cached codec blob verbatim. Header names are the protocol; keep them
// stable.
const (
	hdrDevice       = "X-Flint-Device"
	hdrRound        = "X-Flint-Round"
	hdrBaseVersion  = "X-Flint-Base-Version"
	hdrModelKind    = "X-Flint-Model-Kind"
	hdrDim          = "X-Flint-Dim"
	hdrLocalSteps   = "X-Flint-Local-Steps"
	hdrDeadlineMS   = "X-Flint-Deadline-Ms"
	hdrUpdateScheme = "X-Flint-Update-Scheme"
	hdrWeight       = "X-Flint-Weight"
)

// maxUpdateBody bounds a binary /v1/update body read: the largest zoo
// model is ~922k params, far under this, and it keeps a hostile
// Content-Length from ballooning the handler.
const maxUpdateBody = 64 << 20

// Wire types of the /v1 JSON API. Field names are the protocol; keep them
// stable.

// CheckInRequest is the POST /v1/checkin body.
type CheckInRequest struct {
	DeviceID    int64   `json:"device_id"`
	Model       string  `json:"model"`
	Platform    string  `json:"platform"`
	WiFi        bool    `json:"wifi"`
	BatteryHigh bool    `json:"battery_high"`
	ModernOS    bool    `json:"modern_os"`
	SessionSec  float64 `json:"session_sec"`
	Weight      float64 `json:"weight"`
}

// CheckInResponse is the POST /v1/checkin reply.
type CheckInResponse struct {
	New      bool   `json:"new"`
	Eligible bool   `json:"eligible"`
	Version  int    `json:"model_version"`
	RoundID  uint64 `json:"round_id"`
}

// TaskResponse is the GET /v1/task reply (200 only; 204 means no task).
type TaskResponse struct {
	RoundID      uint64    `json:"round_id"`
	BaseVersion  int       `json:"base_version"`
	ModelKind    string    `json:"model_kind"`
	Dim          int       `json:"dim"`
	Params       []float64 `json:"params,omitempty"`
	LocalSteps   int       `json:"local_steps"`
	DeadlineMS   int64     `json:"deadline_unix_ms"`
	UpdateScheme string    `json:"update_scheme,omitempty"`
}

// taskWire mirrors TaskResponse for encoding, with the params array as a
// pre-marshaled json.RawMessage: the server renders the float vector to
// JSON once per published version, not once per request.
type taskWire struct {
	RoundID      uint64          `json:"round_id"`
	BaseVersion  int             `json:"base_version"`
	ModelKind    string          `json:"model_kind"`
	Dim          int             `json:"dim"`
	Params       json.RawMessage `json:"params,omitempty"`
	LocalSteps   int             `json:"local_steps"`
	DeadlineMS   int64           `json:"deadline_unix_ms"`
	UpdateScheme string          `json:"update_scheme,omitempty"`
}

// UpdateRequest is the POST /v1/update body.
type UpdateRequest struct {
	DeviceID    int64     `json:"device_id"`
	RoundID     uint64    `json:"round_id"`
	BaseVersion int       `json:"base_version"`
	Weight      float64   `json:"weight"`
	Delta       []float64 `json:"delta"`
}

// UpdateResponse is the POST /v1/update reply.
type UpdateResponse struct {
	Accepted bool `json:"accepted"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Server adapts a Coordinator to the stdlib HTTP stack.
type Server struct {
	c   *Coordinator
	mux *http.ServeMux
	// jsonParams caches the marshaled params array for the legacy JSON
	// task path, keyed by published version.
	jsonParams atomic.Pointer[jsonParamsCache]
}

type jsonParamsCache struct {
	version int
	raw     json.RawMessage
}

// NewServer wraps the coordinator in its /v1 JSON API.
func NewServer(c *Coordinator) *Server {
	s := &Server{c: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/checkin", s.handleCheckIn)
	s.mux.HandleFunc("POST /v1/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("GET /v1/task", s.handleTask)
	s.mux.HandleFunc("POST /v1/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (s *Server) handleCheckIn(w http.ResponseWriter, r *http.Request) {
	var req CheckInRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad check-in body: %w", err))
		return
	}
	res := s.c.CheckIn(DeviceInfo{
		ID:          req.DeviceID,
		Model:       req.Model,
		Platform:    req.Platform,
		WiFi:        req.WiFi,
		BatteryHigh: req.BatteryHigh,
		ModernOS:    req.ModernOS,
		SessionSec:  req.SessionSec,
		Weight:      req.Weight,
	})
	writeJSON(w, http.StatusOK, CheckInResponse{
		New:      res.New,
		Eligible: res.Eligible,
		Version:  res.Version,
		RoundID:  res.RoundID,
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id, err := deviceID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.c.Heartbeat(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	id, err := deviceID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	t, err := s.c.RequestTask(id)
	switch {
	case errors.Is(err, ErrNoTask):
		w.WriteHeader(http.StatusNoContent)
		return
	case errors.Is(err, ErrUnknownDevice):
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if strings.Contains(r.Header.Get("Accept"), ContentTypeTensor) {
		// Binary path: metadata in headers, body is the cached codec
		// blob verbatim — zero per-request encoding.
		h := w.Header()
		h.Set("Content-Type", ContentTypeTensor)
		h.Set(hdrRound, strconv.FormatUint(t.RoundID, 10))
		h.Set(hdrBaseVersion, strconv.Itoa(t.BaseVersion))
		h.Set(hdrModelKind, string(t.ModelKind))
		h.Set(hdrDim, strconv.Itoa(t.Dim))
		h.Set(hdrLocalSteps, strconv.Itoa(t.LocalSteps))
		h.Set(hdrDeadlineMS, strconv.FormatInt(t.Deadline.UnixMilli(), 10))
		h.Set(hdrUpdateScheme, t.UpdateScheme.String())
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(t.EncodedParams)
		s.c.counters.Counter("task_sent_binary").Inc()
		return
	}
	s.c.counters.Counter("task_sent_json").Inc()
	writeJSON(w, http.StatusOK, taskWire{
		RoundID:      t.RoundID,
		BaseVersion:  t.BaseVersion,
		ModelKind:    string(t.ModelKind),
		Dim:          t.Dim,
		Params:       s.paramsJSON(t),
		LocalSteps:   t.LocalSteps,
		DeadlineMS:   t.Deadline.UnixMilli(),
		UpdateScheme: t.UpdateScheme.String(),
	})
}

// paramsJSON returns the task's parameter vector as a marshaled JSON
// array, re-rendering only when the published version changes. Concurrent
// rebuilds are benign: both produce identical bytes.
func (s *Server) paramsJSON(t Task) json.RawMessage {
	if t.Params == nil {
		return nil
	}
	if c := s.jsonParams.Load(); c != nil && c.version == t.BaseVersion {
		return c.raw
	}
	raw, err := json.Marshal([]float64(t.Params))
	if err != nil {
		return nil // unreachable for a float slice; keep the handler alive
	}
	s.jsonParams.Store(&jsonParamsCache{version: t.BaseVersion, raw: raw})
	return raw
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var sub Submission
	if strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeTensor) {
		parsed, err := s.binarySubmission(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		sub = parsed
		s.c.counters.Counter("update_recv_binary").Inc()
	} else {
		var req UpdateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad update body: %w", err))
			return
		}
		sub = Submission{
			DeviceID:    req.DeviceID,
			RoundID:     req.RoundID,
			BaseVersion: req.BaseVersion,
			Weight:      req.Weight,
			Delta:       tensor.Vector(req.Delta),
		}
		s.c.counters.Counter("update_recv_json").Inc()
	}
	err := s.c.SubmitUpdate(sub)
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, UpdateResponse{Accepted: true})
}

// binarySubmission parses a binary /v1/update: metadata from X-Flint-*
// headers, the delta from a codec blob body (any scheme — the header's
// declared dimension is checked before the decode allocation).
func (s *Server) binarySubmission(r *http.Request) (Submission, error) {
	id, err := strconv.ParseInt(r.Header.Get(hdrDevice), 10, 64)
	if err != nil {
		return Submission{}, fmt.Errorf("bad %s header: %w", hdrDevice, err)
	}
	round, err := strconv.ParseUint(r.Header.Get(hdrRound), 10, 64)
	if err != nil {
		return Submission{}, fmt.Errorf("bad %s header: %w", hdrRound, err)
	}
	base, err := strconv.Atoi(r.Header.Get(hdrBaseVersion))
	if err != nil {
		return Submission{}, fmt.Errorf("bad %s header: %w", hdrBaseVersion, err)
	}
	weight := 0.0
	if h := r.Header.Get(hdrWeight); h != "" {
		if weight, err = strconv.ParseFloat(h, 64); err != nil {
			return Submission{}, fmt.Errorf("bad %s header: %w", hdrWeight, err)
		}
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUpdateBody))
	if err != nil {
		return Submission{}, fmt.Errorf("read update body: %w", err)
	}
	dim, _, err := codec.Header(body)
	if err != nil {
		return Submission{}, fmt.Errorf("bad tensor body: %w", err)
	}
	if want := s.c.global.NumParams(); dim != want {
		return Submission{}, fmt.Errorf("update declares %d params, want %d", dim, want)
	}
	delta, _, err := codec.Decode(body)
	if err != nil {
		return Submission{}, fmt.Errorf("bad tensor body: %w", err)
	}
	return Submission{
		DeviceID:    id,
		RoundID:     round,
		BaseVersion: base,
		Weight:      weight,
		Delta:       delta,
	}, nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.c.Status())
}

func deviceID(r *http.Request) (int64, error) {
	raw := r.URL.Query().Get("device")
	if raw == "" {
		return 0, fmt.Errorf("missing device parameter")
	}
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad device id %q: %w", raw, err)
	}
	return id, nil
}

// ListenAndServe runs the API on addr until the server errors; it mirrors
// http.ListenAndServe with sane timeouts for a long-polling device fleet.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
