package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"flint/internal/codec"
	"flint/internal/tensor"
	"flint/internal/transport"
)

// ContentTypeTensor marks binary tensor bodies (the internal/codec wire
// format). Devices opt in by sending it in Accept on GET /v1/task and as
// Content-Type on POST /v1/update; everything else falls back to the
// legacy JSON protocol, so old clients keep working unchanged.
const ContentTypeTensor = "application/x-flint-tensor"

// Binary-protocol metadata travels in headers so the body can be the
// cached codec blob verbatim. Header names are the protocol; keep them
// stable.
//
// X-Flint-Base-Version is directional: on a task *request* it carries the
// published version the device already holds (its delta base); on the
// task *response* it names the version the task trains from. When the
// response body is a delta frame, X-Flint-Delta carries the base version
// the frame applies against (always the version the device sent —
// otherwise the server fell back to the full blob and the header is
// absent). X-Flint-Accept-Schemes echoes the device's check-in
// capability list so negotiation also works per-request.
const (
	hdrDevice        = "X-Flint-Device"
	hdrRound         = "X-Flint-Round"
	hdrBaseVersion   = "X-Flint-Base-Version"
	hdrModelKind     = "X-Flint-Model-Kind"
	hdrDim           = "X-Flint-Dim"
	hdrLocalSteps    = "X-Flint-Local-Steps"
	hdrDeadlineMS    = "X-Flint-Deadline-Ms"
	hdrUpdateScheme  = "X-Flint-Update-Scheme"
	hdrWeight        = "X-Flint-Weight"
	hdrDelta         = "X-Flint-Delta"
	hdrAcceptSchemes = "X-Flint-Accept-Schemes"
	hdrCohort        = "X-Flint-Cohort"
	// Telemetry report headers on POST /v1/update: the device's observed
	// task-download transfer (bytes and milliseconds) and its local
	// training duration. They feed the scheduling plane's per-device
	// EWMAs; the uplink half is measured server-side from the body
	// transfer itself. All optional — devices predating the scheduler
	// simply stay unmeasured.
	hdrDownBytes = "X-Flint-Down-Bytes"
	hdrDownMS    = "X-Flint-Down-Ms"
	hdrTrainMS   = "X-Flint-Train-Ms"
	// The uplink pair is honored only under virtual-time load
	// (Sched.TimeCompression > 1): on a real deployment the server's own
	// body-transfer measurement is the trustworthy uplink probe, but a
	// compressed-time device's wire transfer happens at loopback speed in
	// wall time while its simulated link lives in the virtual clock — the
	// device must report the uplink half too or its UpBps EWMA would be
	// off by the compression factor.
	hdrUpBytes = "X-Flint-Up-Bytes"
	hdrUpMS    = "X-Flint-Up-Ms"
)

// maxUpdateBody bounds a /v1/update body read: the largest zoo model is
// ~922k params, far under this, and it keeps a hostile Content-Length
// from ballooning the handler. Oversize bodies are rejected with 413 —
// not silently truncated, which would surface as a confusing codec
// payload-length error — and counted in update_rejected_oversize.
const maxUpdateBody = 64 << 20

// errBodyTooLarge marks an update body that exceeded maxUpdateBody; the
// handler maps it to HTTP 413.
var errBodyTooLarge = fmt.Errorf("update body exceeds %d-byte limit", maxUpdateBody)

// Wire types of the /v1 JSON API. Field names are the protocol; keep them
// stable.

// CheckInRequest is the POST /v1/checkin body.
type CheckInRequest struct {
	DeviceID    int64   `json:"device_id"`
	Model       string  `json:"model"`
	Platform    string  `json:"platform"`
	WiFi        bool    `json:"wifi"`
	BatteryHigh bool    `json:"battery_high"`
	ModernOS    bool    `json:"modern_os"`
	SessionSec  float64 `json:"session_sec"`
	Weight      float64 `json:"weight"`
	// AcceptSchemes is the device's advertised codec capability list
	// ("f32,q8,topk"), the Accept half of transport negotiation. Empty
	// means a legacy client that decodes everything this server ships.
	AcceptSchemes string `json:"accept_schemes,omitempty"`
}

// BatchCheckInRequest is the POST /v1/checkin/batch body: many check-ins
// in one request, the registration-storm fast path (one HTTP round trip
// and one registry lock acquisition per shard for the whole batch).
type BatchCheckInRequest struct {
	Devices []CheckInRequest `json:"devices"`
}

// BatchCheckInResponse is the POST /v1/checkin/batch reply: aggregate
// counts, not per-device echoes — devices learn their cohort and schemes
// on their first task request.
type BatchCheckInResponse struct {
	Accepted int `json:"accepted"`
	New      int `json:"new"`
	Eligible int `json:"eligible"`
	// RejectedIDs lists devices turned away by the device quota (they
	// were not registered and should retry after a sweep frees slots).
	RejectedIDs []int64 `json:"rejected_ids,omitempty"`
	Version     int     `json:"model_version"`
	RoundID     uint64  `json:"round_id"`
}

// maxCheckInBatch bounds one batch check-in's device count; larger fleets
// split across requests. The matching body budget assumes a generous
// per-entry JSON size.
const (
	maxCheckInBatch     = 8192
	maxCheckInBatchBody = 8 << 20
)

// CheckInResponse is the POST /v1/checkin reply.
type CheckInResponse struct {
	New      bool   `json:"new"`
	Eligible bool   `json:"eligible"`
	Version  int    `json:"model_version"`
	RoundID  uint64 `json:"round_id"`
	// Cohort plus the negotiated schemes tell the device how its bytes
	// will move (advisory — the task response repeats what matters).
	Cohort       string `json:"cohort,omitempty"`
	TaskScheme   string `json:"task_scheme,omitempty"`
	UpdateScheme string `json:"update_scheme,omitempty"`
}

// TaskResponse is the GET /v1/task reply (200 only; 204 means no task).
type TaskResponse struct {
	RoundID      uint64    `json:"round_id"`
	BaseVersion  int       `json:"base_version"`
	ModelKind    string    `json:"model_kind"`
	Dim          int       `json:"dim"`
	Params       []float64 `json:"params,omitempty"`
	LocalSteps   int       `json:"local_steps"`
	DeadlineMS   int64     `json:"deadline_unix_ms"`
	UpdateScheme string    `json:"update_scheme,omitempty"`
}

// taskWire mirrors TaskResponse for encoding, with the params array as a
// pre-marshaled json.RawMessage: the server renders the float vector to
// JSON once per published version, not once per request.
type taskWire struct {
	RoundID      uint64          `json:"round_id"`
	BaseVersion  int             `json:"base_version"`
	ModelKind    string          `json:"model_kind"`
	Dim          int             `json:"dim"`
	Params       json.RawMessage `json:"params,omitempty"`
	LocalSteps   int             `json:"local_steps"`
	DeadlineMS   int64           `json:"deadline_unix_ms"`
	UpdateScheme string          `json:"update_scheme,omitempty"`
}

// UpdateRequest is the POST /v1/update body.
type UpdateRequest struct {
	DeviceID    int64     `json:"device_id"`
	RoundID     uint64    `json:"round_id"`
	BaseVersion int       `json:"base_version"`
	Weight      float64   `json:"weight"`
	Delta       []float64 `json:"delta"`
}

// UpdateResponse is the POST /v1/update reply.
type UpdateResponse struct {
	Accepted bool `json:"accepted"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Server adapts a Coordinator to the stdlib HTTP stack.
type Server struct {
	c   *Coordinator
	mux *http.ServeMux
	// jsonParams caches the marshaled params array for the legacy JSON
	// task path, keyed by published version.
	jsonParams atomic.Pointer[jsonParamsCache]
}

type jsonParamsCache struct {
	version int
	raw     json.RawMessage
}

// NewServer wraps the coordinator in its /v1 JSON API.
func NewServer(c *Coordinator) *Server {
	s := &Server{c: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/checkin", s.handleCheckIn)
	s.mux.HandleFunc("POST /v1/checkin/batch", s.handleCheckInBatch)
	s.mux.HandleFunc("POST /v1/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("GET /v1/task", s.handleTask)
	s.mux.HandleFunc("POST /v1/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (s *Server) handleCheckIn(w http.ResponseWriter, r *http.Request) {
	var req CheckInRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad check-in body: %w", err))
		return
	}
	res := s.c.CheckIn(s.deviceInfo(req))
	if res.OverQuota {
		// The job's device quota is full: the device was not registered.
		// 429 + Retry-After is the contract — sweeps free slots as stale
		// devices age out, so later attempts can succeed.
		w.Header().Set("Retry-After", "60")
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("device quota full"))
		return
	}
	writeJSON(w, http.StatusOK, CheckInResponse{
		New:          res.New,
		Eligible:     res.Eligible,
		Version:      res.Version,
		RoundID:      res.RoundID,
		Cohort:       res.Cohort,
		TaskScheme:   res.Policy.Task.String(),
		UpdateScheme: res.Policy.Update.String(),
	})
}

// deviceInfo converts a check-in wire record to the registry form,
// counting unknown advertised schemes (future clients may advertise
// schemes this server has never heard of; they degrade through
// negotiation, but the operator should be able to see it happening).
func (s *Server) deviceInfo(req CheckInRequest) DeviceInfo {
	info := DeviceInfo{
		ID:          req.DeviceID,
		Model:       req.Model,
		Platform:    req.Platform,
		WiFi:        req.WiFi,
		BatteryHigh: req.BatteryHigh,
		ModernOS:    req.ModernOS,
		SessionSec:  req.SessionSec,
		Weight:      req.Weight,
	}
	if req.AcceptSchemes != "" {
		kinds, unknown := transport.ParseAccept(req.AcceptSchemes)
		if unknown > 0 {
			s.c.counters.Counter("checkin_unknown_scheme").Add(int64(unknown))
		}
		info.Accept = kinds
	}
	return info
}

func (s *Server) handleCheckInBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchCheckInRequest
	body := http.MaxBytesReader(w, r.Body, maxCheckInBatchBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch body exceeds %d-byte limit", maxCheckInBatchBody))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch check-in body: %w", err))
		return
	}
	if len(req.Devices) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty device batch"))
		return
	}
	if len(req.Devices) > maxCheckInBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d devices exceeds %d-device limit", len(req.Devices), maxCheckInBatch))
		return
	}
	infos := make([]DeviceInfo, len(req.Devices))
	for i := range req.Devices {
		infos[i] = s.deviceInfo(req.Devices[i])
	}
	res := s.c.CheckInBatch(infos)
	writeJSON(w, http.StatusOK, BatchCheckInResponse{
		Accepted:    res.Accepted,
		New:         res.New,
		Eligible:    res.Eligible,
		RejectedIDs: res.RejectedIDs,
		Version:     res.Version,
		RoundID:     res.RoundID,
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id, err := deviceID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.c.Heartbeat(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	id, err := deviceID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q := TaskQuery{Binary: strings.Contains(r.Header.Get("Accept"), ContentTypeTensor)}
	if q.Binary {
		// The device names the version it already holds; a parse
		// failure just means no delta, never a failed task.
		if h := r.Header.Get(hdrBaseVersion); h != "" {
			if base, err := strconv.Atoi(h); err == nil && base > 0 {
				q.BaseVersion = base
			}
		}
		if h := r.Header.Get(hdrAcceptSchemes); h != "" {
			kinds, unknown := transport.ParseAccept(h)
			if unknown > 0 {
				s.c.counters.Counter("task_unknown_scheme").Add(int64(unknown))
			}
			q.Accept = kinds
		}
	}
	t, err := s.c.RequestTaskWith(id, q)
	switch {
	case errors.Is(err, ErrNoTask):
		w.WriteHeader(http.StatusNoContent)
		return
	case errors.Is(err, ErrUnknownDevice):
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if q.Binary {
		// Binary path: metadata in headers, body is the cached codec
		// blob verbatim — zero per-request encoding.
		h := w.Header()
		h.Set("Content-Type", ContentTypeTensor)
		h.Set(hdrRound, strconv.FormatUint(t.RoundID, 10))
		h.Set(hdrBaseVersion, strconv.Itoa(t.BaseVersion))
		h.Set(hdrModelKind, string(t.ModelKind))
		h.Set(hdrDim, strconv.Itoa(t.Dim))
		h.Set(hdrLocalSteps, strconv.Itoa(t.LocalSteps))
		h.Set(hdrDeadlineMS, strconv.FormatInt(t.Deadline.UnixMilli(), 10))
		h.Set(hdrUpdateScheme, t.UpdateScheme.String())
		h.Set(hdrCohort, t.Cohort)
		if t.DeltaBase > 0 {
			h.Set(hdrDelta, strconv.Itoa(t.DeltaBase))
			s.c.counters.Counter("task_sent_delta").Inc()
			s.c.counters.Counter("broadcast_bytes_delta").Add(int64(len(t.EncodedParams)))
		} else {
			s.c.counters.Counter("broadcast_bytes_full").Add(int64(len(t.EncodedParams)))
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(t.EncodedParams)
		s.c.counters.Counter("task_sent_binary").Inc()
		return
	}
	s.c.counters.Counter("task_sent_json").Inc()
	params := s.paramsJSON(t)
	s.c.counters.Counter("broadcast_bytes_full").Add(int64(len(params)))
	writeJSON(w, http.StatusOK, taskWire{
		RoundID:      t.RoundID,
		BaseVersion:  t.BaseVersion,
		ModelKind:    string(t.ModelKind),
		Dim:          t.Dim,
		Params:       params,
		LocalSteps:   t.LocalSteps,
		DeadlineMS:   t.Deadline.UnixMilli(),
		UpdateScheme: t.UpdateScheme.String(),
	})
}

// paramsJSON returns the task's parameter vector as a marshaled JSON
// array, re-rendering only when the published version changes. Concurrent
// rebuilds are benign: both produce identical bytes.
func (s *Server) paramsJSON(t Task) json.RawMessage {
	if t.Params == nil {
		return nil
	}
	if c := s.jsonParams.Load(); c != nil && c.version == t.BaseVersion {
		return c.raw
	}
	raw, err := json.Marshal([]float64(t.Params))
	if err != nil {
		return nil // unreachable for a float slice; keep the handler alive
	}
	s.jsonParams.Store(&jsonParamsCache{version: t.BaseVersion, raw: raw})
	return raw
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	// The body transfer is the scheduling plane's uplink probe: count the
	// bytes actually read and time the read (decode compute rides along,
	// but real transfers are network-dominated and the EWMA absorbs the
	// skew).
	counter := &countingReadCloser{rc: r.Body}
	r.Body = counter
	t0 := time.Now()
	var sub Submission
	if strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeTensor) {
		parsed, err := s.binarySubmission(w, r)
		if errors.Is(err, errBodyTooLarge) {
			s.c.counters.Counter("update_rejected_oversize").Inc()
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		sub = parsed
		s.c.counters.Counter("update_recv_binary").Inc()
	} else {
		// The JSON decoder reads through the same budget: a
		// MaxBytesReader failure mid-decode is an oversize body, not a
		// syntax error.
		var req UpdateRequest
		r.Body = http.MaxBytesReader(w, r.Body, maxUpdateBody)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.c.counters.Counter("update_rejected_oversize").Inc()
				writeError(w, http.StatusRequestEntityTooLarge, errBodyTooLarge)
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad update body: %w", err))
			return
		}
		sub = Submission{
			DeviceID:    req.DeviceID,
			RoundID:     req.RoundID,
			BaseVersion: req.BaseVersion,
			Weight:      req.Weight,
			Delta:       tensor.Vector(req.Delta),
		}
		s.c.counters.Counter("update_recv_json").Inc()
	}
	// A well-formed body is a telemetry observation whether or not the
	// round accepts the update — the transfer happened either way.
	s.observeUpdate(r, sub.DeviceID, int(counter.n), time.Since(t0))
	err := s.c.SubmitUpdate(sub)
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, UpdateResponse{Accepted: true})
}

// binarySubmission parses a binary /v1/update: metadata from X-Flint-*
// headers, the delta read from the body as a stream — the 16-byte codec
// header is read and validated (scheme, declared dimension against the
// model) before the payload is pulled into a pooled buffer of exactly
// the payload size, so the server never holds more than one in-flight
// body copy per device and an oversize or wrong-shaped body dies before
// it is buffered. The payload is NOT decoded here: it rides the ingest
// queue in wire form and the pooled buffer returns to the codec pool
// when its round goes terminal.
func (s *Server) binarySubmission(w http.ResponseWriter, r *http.Request) (Submission, error) {
	id, err := strconv.ParseInt(r.Header.Get(hdrDevice), 10, 64)
	if err != nil {
		return Submission{}, fmt.Errorf("bad %s header: %w", hdrDevice, err)
	}
	round, err := strconv.ParseUint(r.Header.Get(hdrRound), 10, 64)
	if err != nil {
		return Submission{}, fmt.Errorf("bad %s header: %w", hdrRound, err)
	}
	base, err := strconv.Atoi(r.Header.Get(hdrBaseVersion))
	if err != nil {
		return Submission{}, fmt.Errorf("bad %s header: %w", hdrBaseVersion, err)
	}
	weight := 0.0
	if h := r.Header.Get(hdrWeight); h != "" {
		if weight, err = strconv.ParseFloat(h, 64); err != nil {
			return Submission{}, fmt.Errorf("bad %s header: %w", hdrWeight, err)
		}
	}
	// A declared oversize body is refused before a single byte is read;
	// an undeclared (chunked) one dies at the MaxBytesReader budget
	// mid-stream. Either way nothing near maxUpdateBody is ever buffered.
	// The budget carries one slack byte so the trailing-byte probe below
	// can tell an exactly-at-limit clean frame (EOF) from a body that
	// extends past the limit (MaxBytesError) — a validated frame's size
	// is bounded by the model dim, far under the limit, so the slack is
	// never spendable on payload.
	if r.ContentLength > maxUpdateBody {
		return Submission{}, errBodyTooLarge
	}
	body := http.MaxBytesReader(w, r.Body, maxUpdateBody+1)
	// The update stays in wire form: header-validated, CRC-checked, and
	// handed to the commit pipeline as a pooled payload view the fused
	// kernels aggregate from directly — the zero-copy half of the ingest
	// path (no per-update make([]float64, dim) here at all).
	payload, err := codec.DecodePayloadFrom(body, s.c.dim)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return Submission{}, errBodyTooLarge
		}
		return Submission{}, fmt.Errorf("bad tensor body: %w", err)
	}
	// Exactly one frame per update: trailing bytes mean a confused (or
	// hostile) client, not extra tolerance.
	var trail [1]byte
	n, rerr := body.Read(trail[:])
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(rerr, &tooBig):
		payload.Release()
		return Submission{}, errBodyTooLarge
	case n != 0:
		payload.Release()
		return Submission{}, fmt.Errorf("bad tensor body: trailing bytes after frame")
	}
	return Submission{
		DeviceID:    id,
		RoundID:     round,
		BaseVersion: base,
		Weight:      weight,
		Payload:     payload,
	}, nil
}

// countingReadCloser counts the bytes read through a request body — the
// uplink half of the scheduling plane's telemetry.
type countingReadCloser struct {
	rc io.ReadCloser
	n  int64
}

func (c *countingReadCloser) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReadCloser) Close() error { return c.rc.Close() }

// maxReportedMS bounds the device-reported timing headers (one hour):
// these values are client-controlled, and an absurd duration would park
// a device's task-time EWMA so high no probe could ever rehabilitate it
// within a test's or operator's patience.
const maxReportedMS = 3_600_000

// observeUpdate folds one update's serving telemetry into the device's
// EWMAs: the server-measured uplink transfer plus the optional
// device-reported download and training timings. Reported values are
// client-controlled, so they pass the same kind of plausibility screen
// every other ingress gets: byte counts beyond the body budget and
// durations beyond an hour are dropped (the telemetry layer additionally
// caps the implied throughput of each observation).
func (s *Server) observeUpdate(r *http.Request, id int64, upBytes int, upDur time.Duration) {
	o := TelemetryObservation{UpBytes: upBytes, UpDur: upDur}
	// Under virtual-time load the wall-clock body transfer is loopback
	// noise; the device's own virtual-clock uplink report is the real
	// signal. Honored only when the scheduler runs compressed time — on a
	// production clock (compression 1) a client-controlled uplink claim
	// could whitewash a slow link, so the server's measurement stands.
	if s.c.Scheduler().Config().TimeCompression > 1 {
		if b, err := strconv.Atoi(r.Header.Get(hdrUpBytes)); err == nil && b > 0 && b <= maxUpdateBody {
			if ms, err := strconv.ParseFloat(r.Header.Get(hdrUpMS), 64); err == nil && ms > 0 && ms <= maxReportedMS {
				o.UpBytes = b
				o.UpDur = time.Duration(ms * float64(time.Millisecond))
			}
		}
	}
	if b, err := strconv.Atoi(r.Header.Get(hdrDownBytes)); err == nil && b > 0 && b <= maxUpdateBody {
		if ms, err := strconv.ParseFloat(r.Header.Get(hdrDownMS), 64); err == nil && ms > 0 && ms <= maxReportedMS {
			o.DownBytes = b
			o.DownDur = time.Duration(ms * float64(time.Millisecond))
		}
	}
	if ms, err := strconv.ParseFloat(r.Header.Get(hdrTrainMS), 64); err == nil && ms > 0 && ms <= maxReportedMS {
		o.Train = time.Duration(ms * float64(time.Millisecond))
	}
	s.c.ObserveTelemetry(id, o)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.c.Status())
}

func deviceID(r *http.Request) (int64, error) {
	raw := r.URL.Query().Get("device")
	if raw == "" {
		return 0, fmt.Errorf("missing device parameter")
	}
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad device id %q: %w", raw, err)
	}
	return id, nil
}

// ListenAndServe runs the API on addr until the server errors; it mirrors
// http.ListenAndServe with sane timeouts for a long-polling device fleet.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
