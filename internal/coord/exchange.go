package coord

import (
	"errors"
	"fmt"
	"time"

	"flint/internal/aggregator"
	"flint/internal/codec"
)

// ErrTierHalted is what a PartialExchange returns while the shard
// tier's membership is unhealthy: the paper's §3.4 halt-until-healthy
// rule applied horizontally. The shard keeps its reduced partial and
// retries until the tier recovers.
var ErrTierHalted = errors.New("coord: shard tier halted (membership unhealthy)")

// PartialCommit is one shard's reduced round contribution on the tier
// exchange: the weighted mean of its cohort's deltas, already screened
// and reduced by the shard's fused payload kernels, carried as a
// wire-form codec blob (raw64, so the leader's fold starts from the
// exact partial — no quantization between tiers). Weight is the
// cohort's total aggregation weight, so the leader's cross-shard fold
// weights each partial by the examples behind it.
type PartialCommit struct {
	// ShardID is the submitting replica's ring index.
	ShardID int
	// Job names the tenant the partial belongs to ("" = default job).
	Job string
	// Round is the shard-local round that produced the partial.
	Round uint64
	// BaseVersion is the global version the cohort trained from; the
	// leader derives cross-shard staleness from it.
	BaseVersion int
	// Updates is how many device updates the partial reduces.
	Updates int
	// Weight is the cohort's summed aggregation weight.
	Weight float64
	// Blob is the partial in codec wire form.
	Blob []byte
}

// GlobalInstall is the leader's response to a partial: the tier's
// current global version, with the full parameter vector as a codec
// blob when the submitting shard is behind (Blob is empty when the
// shard's base already is the current version).
type GlobalInstall struct {
	Version int
	Blob    []byte
}

// PartialExchange ships shard partials to the tier's round leader and
// returns the resulting global state. Implementations must be safe for
// concurrent use; they return ErrTierHalted while shard membership is
// unhealthy.
type PartialExchange interface {
	SubmitPartial(pc PartialCommit) (GlobalInstall, error)
}

// exchangeCounters are pre-registered alongside the serving counters so
// a shard's status page is fully shaped before its first partial.
var exchangeCounters = []string{
	"partials_reduced", "partial_exchange_retries",
	"partial_exchange_halted", "global_installs", "global_install_noop",
	"global_install_error",
}

// partialLocked is the hierarchical half of the commit pipeline: instead
// of folding the round's updates into this replica's params, it reduces
// them — through the same parallel fused payload kernels, into a zeroed
// scratch vector — to the cohort's weighted mean, encodes that partial
// as a raw64 codec blob, and hands it to the exchange goroutine. The
// round parks in PhaseAggregating until the leader's response installs
// the next global version (or confirms the current one). Callers hold
// mu; r must be the serving round and must have passed beginAggregate.
func (c *Coordinator) partialLocked(r *Round, bs *broadcastState, updates []aggregator.Update, now time.Time) {
	partial := c.scratch.get()
	partial.Fill(0)
	if err := c.strategy.Aggregate(partial, updates); err != nil {
		c.scratch.put(partial)
		counter := "round_aggregate_error"
		if errors.Is(err, aggregator.ErrNonFinite) {
			counter = "round_aggregate_nonfinite"
		}
		// The reduction target was scratch, so unlike a local commit
		// there is nothing to roll back — drop the round and keep
		// serving.
		c.abortCommitLocked(r, bs, nil, counter, now)
		return
	}
	var weight float64
	for _, u := range updates {
		if u.Weight > 0 {
			weight += u.Weight
		} else {
			weight++
		}
	}
	blob, err := codec.Encode(partial, codec.RawF64)
	c.scratch.put(partial)
	if err != nil {
		c.abortCommitLocked(r, bs, nil, "round_publish_error", now)
		return
	}
	// The partial owns everything the leader needs; the buffered wire
	// payloads are dead weight during the (possibly long, possibly
	// halted) exchange, so they go back to the codec pool now rather
	// than at round termination. Release is idempotent, so the usual
	// release point in finishLocked stays correct.
	r.releasePayloads()
	c.counters.Counter("partials_reduced").Inc()
	c.counters.Counter("updates_aggregated").Add(int64(len(updates)))
	pc := PartialCommit{
		ShardID:     c.cfg.ShardID,
		Job:         c.cfg.ExchangeJob,
		Round:       r.ID,
		BaseVersion: bs.version,
		Updates:     len(updates),
		Weight:      weight,
		Blob:        blob,
	}
	c.exchWG.Add(1)
	go c.exchangeLoop(r, pc)
}

// exchangeLoop ships one parked round's partial to the leader, retrying
// through tier halts with bounded backoff — the shard-side half of
// halt-until-healthy: assignment on this shard stays frozen (the parked
// round serves no tasks) until the tier accepts the partial, then the
// install reopens serving on the new global version.
func (c *Coordinator) exchangeLoop(r *Round, pc PartialCommit) {
	defer c.exchWG.Done()
	backoff := 25 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for {
		inst, err := c.cfg.Exchange.SubmitPartial(pc)
		if err == nil {
			c.installGlobal(r, inst)
			return
		}
		c.counters.Counter("partial_exchange_retries").Inc()
		if errors.Is(err, ErrTierHalted) {
			c.counters.Counter("partial_exchange_halted").Inc()
		}
		select {
		case <-c.done:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// installGlobal completes a parked round with the leader's response:
// when the tier advanced, the returned global params replace this
// replica's (bit-identical to the leader — the install blob is raw64),
// a fresh broadcast plane is built, and the store/version/persist
// machinery runs exactly as a local commit's publish stages; when the
// tier did not advance (the leader is still buffering partials), the
// round concludes on the unchanged plane. Either way the successor
// round opens and assignment resumes.
func (c *Coordinator) installGlobal(r *Round, inst GlobalInstall) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return
	}
	now := c.cfg.Clock()
	sv := c.serving.Load()
	if sv.round != r {
		c.counters.Counter("round_fsm_error").Inc()
		return
	}
	bs := sv.bcast
	if inst.Version <= bs.version || len(inst.Blob) == 0 {
		// No global advance yet: the partial is in the leader's buffer.
		c.counters.Counter("global_install_noop").Inc()
		if err := r.conclude(PhaseCommitted); err != nil {
			c.counters.Counter("round_fsm_error").Inc()
		}
		c.counters.Counter("rounds_committed").Inc()
		c.finishLocked(r, 0, bs, now)
		return
	}
	params, _, err := codec.Decode(inst.Blob)
	if err == nil && len(params) != c.dim {
		err = fmt.Errorf("coord: install v%d carries %d params, want %d", inst.Version, len(params), c.dim)
	}
	if err == nil {
		err = c.global.SetParams(params)
	}
	if err != nil {
		// A malformed install is a publish failure: stay on the old
		// plane (params untouched) and drop the round; the next partial
		// fetches a fresh install.
		c.counters.Counter("global_install_error").Inc()
		c.abortCommitLocked(r, bs, nil, "round_publish_error", now)
		return
	}
	if !c.publishLocked(r, bs, inst.Version, now) {
		// publishLocked rolled the params back to the old plane's
		// published snapshot and dropped the round.
		return
	}
	c.counters.Counter("global_installs").Inc()
}
