// Package coord is the live serving half of the platform: a concurrent,
// wall-clock federated coordination server that production devices check in
// to, receive training tasks from, and submit model updates to.
//
// It complements internal/fedsim — the virtual-clock what-if simulator of
// paper §3.4 — by reusing the same engine pieces (aggregator strategies,
// availability criteria, device profiles, the versioned model store) behind
// an online API:
//
//   - a sharded device registry with striped locks (O(1) check-in and
//     heartbeat, eligibility filtering via availability.Criteria);
//   - a round-lifecycle state machine (open → assigning → collecting →
//     aggregating → committed) driving both synchronous FedAvg and
//     asynchronous FedBuff rounds;
//   - an update-ingest pipeline with a bounded queue, per-round quorum and
//     wall-clock deadline handling, and staleness bounds in async mode;
//   - model-version publishing through internal/modelstore and serving
//     counters through internal/metrics.
//
// cmd/flint-server runs the coordinator behind a stdlib net/http JSON API
// (/v1/checkin, /v1/task, /v1/update, /v1/status); cmd/flint-fleet drives it
// with thousands of goroutine devices drawn from device.BenchPool profiles.
package coord

import (
	"fmt"
	"time"

	"flint/internal/availability"
	"flint/internal/model"
	"flint/internal/sched"
	"flint/internal/transport"
)

// Mode selects the training protocol the coordinator runs.
type Mode string

// The two serving modes, mirroring fedsim's Sync/Async split (§3.4).
const (
	ModeSync  Mode = "sync"  // synchronous FedAvg rounds
	ModeAsync Mode = "async" // asynchronous FedBuff buffer generations
)

// ParseMode converts a CLI string into a Mode.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeSync, ModeAsync:
		return Mode(s), nil
	}
	return "", fmt.Errorf("coord: unknown mode %q (want sync or async)", s)
}

// Config parameterizes a Coordinator.
type Config struct {
	// Mode is the training protocol (sync FedAvg or async FedBuff).
	Mode Mode
	// ModelKind selects the Table 5 architecture to train.
	ModelKind model.Kind
	// ModelName is the modelstore name versions are published under.
	ModelName string
	// Seed seeds model initialization.
	Seed int64

	// TargetUpdates is K: the update count that triggers aggregation
	// (sync round size / async buffer size).
	TargetUpdates int
	// Quorum is the minimum update count accepted at a round deadline;
	// below it the round is abandoned. Defaults to TargetUpdates/2.
	Quorum int
	// OverCommit is the sync-mode assignment multiplier baseline: up to
	// TargetUpdates*OverCommit devices are handed the round's task so
	// stragglers and dropouts don't stall the round (§3.4). When the
	// scheduling plane has measured the fleet, each round's effective
	// multiplier is this base scaled by the measured straggler tail
	// (capped by Sched.MaxOverCommit).
	OverCommit float64
	// MaxInflight caps outstanding async assignments (0 = 4×Target).
	MaxInflight int
	// RoundDeadline bounds a round's wall-clock collecting time.
	RoundDeadline time.Duration
	// MaxStaleness rejects async updates whose base version lags the
	// published version by more than this many commits (0 = unbounded).
	MaxStaleness int

	// QueueDepth bounds the update-ingest queue; a full queue sheds load
	// with ErrBusy rather than blocking device connections.
	QueueDepth int
	// RegistryShards is the striped-lock shard count of the device
	// registry.
	RegistryShards int
	// DeviceTTL is how long after its last check-in/heartbeat a device
	// still counts as connected.
	DeviceTTL time.Duration
	// MaxDevices caps how many distinct devices this coordinator admits
	// (0 = unlimited). Over-quota check-ins are rejected with
	// ErrOverQuota semantics (HTTP 429) until sweeps free slots — the
	// per-job quota of the multi-tenant plane, so one hungry job can't
	// absorb the whole fleet.
	MaxDevices int
	// Criteria gates task assignment (§3.2 participation filtering).
	Criteria availability.Criteria

	// ServerLR and StalenessAlpha parameterize async FedBuff.
	ServerLR       float64
	StalenessAlpha float64

	// Transport defines the per-cohort wire-scheme policies and the
	// delta-broadcast window (internal/transport). Scheme selection is
	// no longer a global knob: each device is classified into a cohort
	// at check-in and negotiation constrains the cohort policy to the
	// schemes the device advertised it can decode. The zero value gets
	// transport defaults (default cohort f32/q8/q8, low-bandwidth
	// cohort topk/q8/topk, 8 versions of delta history).
	Transport transport.Config

	// Sched parameterizes the scheduling plane (internal/sched): the
	// per-device telemetry EWMAs, the measured-bandwidth cohort map that
	// overrides the WiFi/cellular transport classification, the sync
	// deadline gate, and the straggler-tail over-commit model. The zero
	// value is enabled with defaults; set Sched.Disable to recover the
	// label-only behavior.
	Sched sched.Config

	// Exchange, when non-nil, puts the coordinator in hierarchical
	// (shard) mode: a ready round is reduced to a weighted partial —
	// through the same fused payload kernels a local commit uses — and
	// shipped through the exchange as a wire-form codec blob instead of
	// being folded into this replica's own params. The global model
	// advances only when an exchange response carries a newer version
	// (internal/shard's Leader is the other side). Requires ModeSync:
	// the tier's cross-shard fold is where async staleness handling
	// lives.
	Exchange PartialExchange
	// ExchangeJob names this coordinator's job on the tier exchange, so
	// one leader can reduce several tenants' partials. The tenant
	// registry sets it to the job name; empty means the default job.
	ExchangeJob string
	// ShardID identifies this replica on the tier exchange (its index
	// in the gateway's consistent-hash ring).
	ShardID int

	// PersistBarrier makes every Nth committed version an fsync-ed
	// write-behind flush, bounding how many snapshots a host crash can
	// lose to the page cache (0 = default 8; negative disables the
	// barrier entirely).
	PersistBarrier int

	// LocalSteps is the per-task local training step count hint sent to
	// devices.
	LocalSteps int
	// OmitParams stops tasks embedding the global parameter vector
	// (clients of large models should fetch out of band).
	OmitParams bool
	// StoreDir, when non-empty, persists published versions to disk.
	StoreDir string
	// KeepVersions bounds how many published model versions the store
	// retains (commits prune the oldest). Negative keeps everything;
	// 0 means the default. Long-running servers need a bound — every
	// version is a full serialized model.
	KeepVersions int
	// HistoryLimit bounds the in-memory committed/abandoned round log.
	HistoryLimit int

	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// DefaultConfig returns a small sync-mode serving configuration.
func DefaultConfig() Config {
	return Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		ModelName:     "served",
		Seed:          1,
		TargetUpdates: 16,
		OverCommit:    1.3,
		RoundDeadline: 30 * time.Second,
	}
}

func (c Config) withDefaults() (Config, error) {
	if c.Mode == "" {
		c.Mode = ModeSync
	}
	if c.Mode != ModeSync && c.Mode != ModeAsync {
		return c, fmt.Errorf("coord: unknown mode %q", c.Mode)
	}
	if c.ModelKind == "" {
		c.ModelKind = model.KindA
	}
	if c.ModelName == "" {
		c.ModelName = "served"
	}
	if c.TargetUpdates <= 0 {
		c.TargetUpdates = 16
	}
	if c.Quorum <= 0 {
		c.Quorum = (c.TargetUpdates + 1) / 2
	}
	if c.Quorum > c.TargetUpdates {
		return c, fmt.Errorf("coord: quorum %d exceeds target %d", c.Quorum, c.TargetUpdates)
	}
	if c.OverCommit < 1 {
		c.OverCommit = 1.3
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4 * c.TargetUpdates
	}
	if c.RoundDeadline <= 0 {
		c.RoundDeadline = 30 * time.Second
	}
	if c.MaxStaleness < 0 {
		return c, fmt.Errorf("coord: negative max staleness %d", c.MaxStaleness)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.TargetUpdates
	}
	if c.RegistryShards <= 0 {
		c.RegistryShards = 64
	}
	if c.DeviceTTL <= 0 {
		c.DeviceTTL = 2 * time.Minute
	}
	if c.ServerLR <= 0 {
		c.ServerLR = 1
	}
	if c.StalenessAlpha < 0 {
		return c, fmt.Errorf("coord: negative staleness alpha %v", c.StalenessAlpha)
	}
	if c.Exchange != nil {
		if c.Mode != ModeSync {
			return c, fmt.Errorf("coord: hierarchical (shard) mode requires sync rounds, got %s", c.Mode)
		}
		if c.ShardID < 0 {
			return c, fmt.Errorf("coord: negative shard id %d", c.ShardID)
		}
	}
	if c.LocalSteps <= 0 {
		c.LocalSteps = 20
	}
	var err error
	if c.Transport, err = c.Transport.WithDefaults(); err != nil {
		return c, fmt.Errorf("coord: %w", err)
	}
	if c.Sched, err = c.Sched.WithDefaults(); err != nil {
		return c, fmt.Errorf("coord: %w", err)
	}
	if c.PersistBarrier == 0 {
		c.PersistBarrier = 8
	}
	if c.KeepVersions == 0 {
		c.KeepVersions = 8
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 256
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c, nil
}
