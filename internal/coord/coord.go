// Package coord is the live serving half of the platform: a concurrent,
// wall-clock federated coordination server that production devices check in
// to, receive training tasks from, and submit model updates to.
//
// It complements internal/fedsim — the virtual-clock what-if simulator of
// paper §3.4 — by reusing the same engine pieces (aggregator strategies,
// availability criteria, device profiles, the versioned model store) behind
// an online API:
//
//   - a sharded device registry with striped locks (O(1) check-in and
//     heartbeat, eligibility filtering via availability.Criteria);
//   - a round-lifecycle state machine (open → assigning → collecting →
//     aggregating → committed) driving both synchronous FedAvg and
//     asynchronous FedBuff rounds;
//   - an update-ingest pipeline with a bounded queue, per-round quorum and
//     wall-clock deadline handling, and staleness bounds in async mode;
//   - model-version publishing through internal/modelstore and serving
//     counters through internal/metrics.
//
// cmd/flint-server runs the coordinator behind a stdlib net/http JSON API
// (/v1/checkin, /v1/task, /v1/update, /v1/status); cmd/flint-fleet drives it
// with thousands of goroutine devices drawn from device.BenchPool profiles.
package coord

import (
	"fmt"
	"time"

	"flint/internal/availability"
	"flint/internal/model"
	"flint/internal/sched"
	"flint/internal/transport"
)

// Mode selects the training protocol the coordinator runs.
type Mode string

// The two serving modes, mirroring fedsim's Sync/Async split (§3.4).
const (
	ModeSync  Mode = "sync"  // synchronous FedAvg rounds
	ModeAsync Mode = "async" // asynchronous FedBuff buffer generations
)

// ParseMode converts a CLI string into a Mode.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeSync, ModeAsync:
		return Mode(s), nil
	}
	return "", fmt.Errorf("coord: unknown mode %q (want sync or async)", s)
}

// AggregationConfig selects the commit pipeline's reducer and the
// pre-reduce robust screen. The zero value keeps the mode's default
// strategy (FedAvg for sync, FedBuff for async) with no screening.
type AggregationConfig struct {
	// Strategy names the reducer: "" keeps the mode default, "fedavg"
	// and "fedbuff" pin it explicitly (and must match the mode), and
	// "trimmed-mean" / "coordinate-median" install the Byzantine-robust
	// column reducers. The robust reducers need the round's full update
	// population in one place, so they require sync mode and are
	// rejected in hierarchical (shard) mode, where each replica reduces
	// only its own cohort.
	Strategy string
	// TrimFrac is trimmed-mean's per-side trim fraction in [0, 0.5)
	// (default 0.1 when Strategy is "trimmed-mean").
	TrimFrac float64
	// ScreenMaxNorm rejects updates whose L2 norm exceeds this absolute
	// cap before they enter the reduce (0 disables).
	ScreenMaxNorm float64
	// ScreenMedianFactor rejects updates whose norm exceeds this multiple
	// of the round's median update norm (0 disables; a robust Strategy
	// defaults it to 4 when neither screen knob is set — boosted attacks
	// announce themselves by norm before they reach the reducer). Unlike
	// the robust reducers, the screen is a per-update predicate and so
	// stays legal in shard mode, applied per shard cohort.
	ScreenMedianFactor float64
}

// robust reports whether the named strategy needs the full update
// population (and therefore sync mode on an unsharded coordinator).
func (a AggregationConfig) robust() bool {
	return a.Strategy == "trimmed-mean" || a.Strategy == "coordinate-median"
}

// DPConfig enables the commit pipeline's post-reduce central-DP stage
// (§3.6 on the live path): the round's aggregate delta is clipped to
// ClipNorm and seeded Gaussian noise is added before publishing, with a
// per-round (ε, δ) accountant surfaced in /v1/status. The zero value
// disables the stage.
type DPConfig struct {
	// Epsilon is the per-round ε target; > 0 enables noise with
	// multiplier σ = sqrt(2·ln(1/δ))/ε (the accountant's approximation,
	// matching aggregator.DPConfig.EpsilonApprox).
	Epsilon float64
	// Delta is the DP δ (default 1e-5 when Epsilon > 0).
	Delta float64
	// ClipNorm caps the L2 norm of the aggregate delta (default 1 when
	// Epsilon > 0; setting it alone enables clipping without noise).
	ClipNorm float64
	// Seed seeds the Gaussian noise; the per-round stream is derived
	// from it and the committed version, so a replayed round reproduces
	// its noise exactly (0 = Config.Seed).
	Seed int64
}

// Enabled reports whether the DP stage runs at commit.
func (d DPConfig) Enabled() bool { return d.ClipNorm > 0 || d.Epsilon > 0 }

// Config parameterizes a Coordinator.
type Config struct {
	// Mode is the training protocol (sync FedAvg or async FedBuff).
	Mode Mode
	// ModelKind selects the Table 5 architecture to train.
	ModelKind model.Kind
	// ModelName is the modelstore name versions are published under.
	ModelName string
	// Seed seeds model initialization.
	Seed int64

	// TargetUpdates is K: the update count that triggers aggregation
	// (sync round size / async buffer size).
	TargetUpdates int
	// Quorum is the minimum update count accepted at a round deadline;
	// below it the round is abandoned. Defaults to TargetUpdates/2.
	Quorum int
	// OverCommit is the sync-mode assignment multiplier baseline: up to
	// TargetUpdates*OverCommit devices are handed the round's task so
	// stragglers and dropouts don't stall the round (§3.4). When the
	// scheduling plane has measured the fleet, each round's effective
	// multiplier is this base scaled by the measured straggler tail
	// (capped by Sched.MaxOverCommit).
	OverCommit float64
	// MaxInflight caps outstanding async assignments (0 = 4×Target).
	MaxInflight int
	// RoundDeadline bounds a round's wall-clock collecting time.
	RoundDeadline time.Duration
	// MaxStaleness rejects async updates whose base version lags the
	// published version by more than this many commits (0 = unbounded).
	MaxStaleness int

	// QueueDepth bounds the update-ingest queue; a full queue sheds load
	// with ErrBusy rather than blocking device connections.
	QueueDepth int
	// RegistryShards is the striped-lock shard count of the device
	// registry.
	RegistryShards int
	// DeviceTTL is how long after its last check-in/heartbeat a device
	// still counts as connected.
	DeviceTTL time.Duration
	// MaxDevices caps how many distinct devices this coordinator admits
	// (0 = unlimited). Over-quota check-ins are rejected with
	// ErrOverQuota semantics (HTTP 429) until sweeps free slots — the
	// per-job quota of the multi-tenant plane, so one hungry job can't
	// absorb the whole fleet.
	MaxDevices int
	// Criteria gates task assignment (§3.2 participation filtering).
	Criteria availability.Criteria

	// ServerLR and StalenessAlpha parameterize async FedBuff.
	ServerLR       float64
	StalenessAlpha float64

	// Transport defines the per-cohort wire-scheme policies and the
	// delta-broadcast window (internal/transport). Scheme selection is
	// no longer a global knob: each device is classified into a cohort
	// at check-in and negotiation constrains the cohort policy to the
	// schemes the device advertised it can decode. The zero value gets
	// transport defaults (default cohort f32/q8/q8, low-bandwidth
	// cohort topk/q8/topk, 8 versions of delta history).
	Transport transport.Config

	// Sched parameterizes the scheduling plane (internal/sched): the
	// per-device telemetry EWMAs, the measured-bandwidth cohort map that
	// overrides the WiFi/cellular transport classification, the sync
	// deadline gate, and the straggler-tail over-commit model. The zero
	// value is enabled with defaults; set Sched.Disable to recover the
	// label-only behavior.
	Sched sched.Config

	// Aggregation selects the commit reducer and pre-reduce norm screen.
	// The zero value keeps the mode's default strategy with no screen.
	Aggregation AggregationConfig

	// DP enables central differential privacy on the commit path: clip
	// the aggregate delta, add seeded Gaussian noise, account ε per
	// round. The zero value disables it.
	DP DPConfig

	// Exchange, when non-nil, puts the coordinator in hierarchical
	// (shard) mode: a ready round is reduced to a weighted partial —
	// through the same fused payload kernels a local commit uses — and
	// shipped through the exchange as a wire-form codec blob instead of
	// being folded into this replica's own params. The global model
	// advances only when an exchange response carries a newer version
	// (internal/shard's Leader is the other side). Requires ModeSync:
	// the tier's cross-shard fold is where async staleness handling
	// lives.
	Exchange PartialExchange
	// ExchangeJob names this coordinator's job on the tier exchange, so
	// one leader can reduce several tenants' partials. The tenant
	// registry sets it to the job name; empty means the default job.
	ExchangeJob string
	// ShardID identifies this replica on the tier exchange (its index
	// in the gateway's consistent-hash ring).
	ShardID int

	// PersistBarrier makes every Nth committed version an fsync-ed
	// write-behind flush, bounding how many snapshots a host crash can
	// lose to the page cache (0 = default 8; negative disables the
	// barrier entirely).
	PersistBarrier int

	// LocalSteps is the per-task local training step count hint sent to
	// devices.
	LocalSteps int
	// OmitParams stops tasks embedding the global parameter vector
	// (clients of large models should fetch out of band).
	OmitParams bool
	// StoreDir, when non-empty, persists published versions to disk.
	StoreDir string
	// KeepVersions bounds how many published model versions the store
	// retains (commits prune the oldest). Negative keeps everything;
	// 0 means the default. Long-running servers need a bound — every
	// version is a full serialized model.
	KeepVersions int
	// HistoryLimit bounds the in-memory committed/abandoned round log.
	HistoryLimit int

	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// DefaultConfig returns a small sync-mode serving configuration.
func DefaultConfig() Config {
	return Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		ModelName:     "served",
		Seed:          1,
		TargetUpdates: 16,
		OverCommit:    1.3,
		RoundDeadline: 30 * time.Second,
	}
}

func (c Config) withDefaults() (Config, error) {
	if c.Mode == "" {
		c.Mode = ModeSync
	}
	if c.Mode != ModeSync && c.Mode != ModeAsync {
		return c, fmt.Errorf("coord: unknown mode %q", c.Mode)
	}
	if c.ModelKind == "" {
		c.ModelKind = model.KindA
	}
	if c.ModelName == "" {
		c.ModelName = "served"
	}
	if c.TargetUpdates <= 0 {
		c.TargetUpdates = 16
	}
	if c.Quorum <= 0 {
		c.Quorum = (c.TargetUpdates + 1) / 2
	}
	if c.Quorum > c.TargetUpdates {
		return c, fmt.Errorf("coord: quorum %d exceeds target %d", c.Quorum, c.TargetUpdates)
	}
	if c.OverCommit < 1 {
		c.OverCommit = 1.3
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4 * c.TargetUpdates
	}
	if c.RoundDeadline <= 0 {
		c.RoundDeadline = 30 * time.Second
	}
	if c.MaxStaleness < 0 {
		return c, fmt.Errorf("coord: negative max staleness %d", c.MaxStaleness)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.TargetUpdates
	}
	if c.RegistryShards <= 0 {
		c.RegistryShards = 64
	}
	if c.DeviceTTL <= 0 {
		c.DeviceTTL = 2 * time.Minute
	}
	if c.ServerLR <= 0 {
		c.ServerLR = 1
	}
	if c.StalenessAlpha < 0 {
		return c, fmt.Errorf("coord: negative staleness alpha %v", c.StalenessAlpha)
	}
	if c.Exchange != nil {
		if c.Mode != ModeSync {
			return c, fmt.Errorf("coord: hierarchical (shard) mode requires sync rounds, got %s", c.Mode)
		}
		if c.ShardID < 0 {
			return c, fmt.Errorf("coord: negative shard id %d", c.ShardID)
		}
	}
	switch c.Aggregation.Strategy {
	case "", "trimmed-mean", "coordinate-median":
	case "fedavg":
		if c.Mode != ModeSync {
			return c, fmt.Errorf("coord: aggregation %q requires sync mode, got %s", c.Aggregation.Strategy, c.Mode)
		}
	case "fedbuff":
		if c.Mode != ModeAsync {
			return c, fmt.Errorf("coord: aggregation %q requires async mode, got %s", c.Aggregation.Strategy, c.Mode)
		}
	default:
		return c, fmt.Errorf("coord: unknown aggregation strategy %q (want fedavg, fedbuff, trimmed-mean, or coordinate-median)", c.Aggregation.Strategy)
	}
	if c.Aggregation.robust() {
		if c.Mode != ModeSync {
			// The robust column reducers select per coordinate over the whole
			// round population; FedBuff's incremental buffer folds have no
			// population to select from.
			return c, fmt.Errorf("coord: robust aggregation %q requires sync mode, got %s", c.Aggregation.Strategy, c.Mode)
		}
		if c.Exchange != nil {
			return c, fmt.Errorf("coord: robust aggregation %q is unavailable in hierarchical (shard) mode: each shard reduces only its own cohort, so a per-shard median/trim would not be robust over the round population — use the per-shard norm screen (ScreenMaxNorm / ScreenMedianFactor) instead", c.Aggregation.Strategy)
		}
		if c.Aggregation.ScreenMaxNorm == 0 && c.Aggregation.ScreenMedianFactor == 0 {
			c.Aggregation.ScreenMedianFactor = 4
		}
	}
	if c.Aggregation.Strategy == "trimmed-mean" {
		if c.Aggregation.TrimFrac == 0 {
			c.Aggregation.TrimFrac = 0.1
		}
		if c.Aggregation.TrimFrac < 0 || c.Aggregation.TrimFrac >= 0.5 {
			return c, fmt.Errorf("coord: trim fraction %v outside [0, 0.5)", c.Aggregation.TrimFrac)
		}
	} else if c.Aggregation.TrimFrac != 0 {
		return c, fmt.Errorf("coord: trim fraction set but aggregation strategy is %q, not trimmed-mean", c.Aggregation.Strategy)
	}
	if c.Aggregation.ScreenMaxNorm < 0 {
		return c, fmt.Errorf("coord: negative screen max norm %v", c.Aggregation.ScreenMaxNorm)
	}
	if f := c.Aggregation.ScreenMedianFactor; f != 0 && f < 1 {
		return c, fmt.Errorf("coord: screen median factor %v below 1", f)
	}
	if c.DP.Epsilon < 0 {
		return c, fmt.Errorf("coord: negative dp epsilon %v", c.DP.Epsilon)
	}
	if c.DP.ClipNorm < 0 {
		return c, fmt.Errorf("coord: negative dp clip norm %v", c.DP.ClipNorm)
	}
	if c.DP.Enabled() {
		if c.Exchange != nil {
			// The DP stage noises the full-population aggregate once per
			// round; per-shard noise would compound σ by sqrt(shards) and the
			// accountant would undercount. The tier leader is where a sharded
			// DP stage belongs; until it exists, reject rather than mislead.
			return c, fmt.Errorf("coord: central DP is unavailable in hierarchical (shard) mode: noise must be added once over the full round population, not per shard")
		}
		if c.DP.Delta == 0 {
			c.DP.Delta = 1e-5
		}
		if c.DP.Delta <= 0 || c.DP.Delta >= 1 {
			return c, fmt.Errorf("coord: dp delta %v outside (0, 1)", c.DP.Delta)
		}
		if c.DP.ClipNorm == 0 {
			c.DP.ClipNorm = 1
		}
		if c.DP.Seed == 0 {
			c.DP.Seed = c.Seed
		}
	}
	if c.LocalSteps <= 0 {
		c.LocalSteps = 20
	}
	var err error
	if c.Transport, err = c.Transport.WithDefaults(); err != nil {
		return c, fmt.Errorf("coord: %w", err)
	}
	if c.Sched, err = c.Sched.WithDefaults(); err != nil {
		return c, fmt.Errorf("coord: %w", err)
	}
	if c.PersistBarrier == 0 {
		c.PersistBarrier = 8
	}
	if c.KeepVersions == 0 {
		c.KeepVersions = 8
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 256
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c, nil
}
