package coord

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"flint/internal/aggregator"
	"flint/internal/codec"
	"flint/internal/metrics"
	"flint/internal/model"
	"flint/internal/modelstore"
	"flint/internal/tensor"
	"flint/internal/transport"
)

// Sentinel errors surfaced to transports.
var (
	// ErrBusy means the ingest queue is full; the client should back off
	// and resubmit.
	ErrBusy = errors.New("coord: ingest queue full")
	// ErrNoTask means no task is available for the device right now.
	ErrNoTask = errors.New("coord: no task available")
	// ErrUnknownDevice means the device never checked in (or was swept).
	ErrUnknownDevice = errors.New("coord: unknown device")
	// ErrClosed means the coordinator is shutting down.
	ErrClosed = errors.New("coord: coordinator closed")
)

// Task is one unit of device work: train LocalSteps from BaseVersion and
// send back the delta.
type Task struct {
	RoundID     uint64
	BaseVersion int
	ModelKind   model.Kind
	// Dim is the flat parameter count; Params is the global vector at
	// BaseVersion (nil when the server is configured not to embed it).
	// The slice is shared and must be treated as read-only.
	Dim    int
	Params tensor.Vector
	// EncodedParams is the codec blob binary devices receive: the full
	// parameter vector under TaskScheme, or — when DeltaBase is set — a
	// delta frame against that published version. Blobs are cached per
	// (version, scheme) and shared read-only across requests (nil when
	// the server is configured not to embed params or the client didn't
	// negotiate the binary protocol).
	EncodedParams []byte
	// TaskScheme is the encoding EncodedParams was produced under (the
	// negotiated cohort's broadcast or delta scheme).
	TaskScheme codec.Scheme
	// DeltaBase, when > 0, marks EncodedParams as a delta frame to be
	// applied against the device's copy of that published version.
	DeltaBase int
	// Cohort names the transport cohort the device negotiated into.
	Cohort string
	// UpdateScheme is the delta encoding the server asks binary devices
	// to use when submitting this task's result.
	UpdateScheme codec.Scheme
	LocalSteps   int
	Deadline     time.Time
}

// TaskQuery is the transport context a device sends with a task request:
// its last-seen model version (the delta-broadcast base), an optional
// per-request capability list overriding its check-in advertisement, and
// whether it negotiated the binary protocol at all (JSON clients skip
// blob encoding entirely).
type TaskQuery struct {
	// BaseVersion is the published version the device already holds
	// (0 = none): when it is still in the coordinator's version ring,
	// the task ships a delta frame instead of the full vector.
	BaseVersion int
	// Accept overrides the device's check-in capability list for this
	// request when non-nil (the X-Flint-Accept-Schemes header echo).
	Accept []codec.Kind
	// Binary marks a tensor-protocol client; only those receive
	// EncodedParams.
	Binary bool
}

// Submission is one device's completed task result.
type Submission struct {
	DeviceID    int64
	RoundID     uint64
	BaseVersion int
	Weight      float64
	Delta       tensor.Vector
}

// CheckInResult is the coordinator's reply to a device check-in.
type CheckInResult struct {
	New      bool
	Eligible bool
	Version  int
	RoundID  uint64
	// Cohort and Policy report the transport assignment negotiated from
	// the device's advertised platform/connectivity and capability
	// list, so clients learn their schemes up front.
	Cohort string
	Policy transport.Policy
}

// RoundStatus is the externally visible state of the current round.
type RoundStatus struct {
	ID        uint64    `json:"id"`
	Phase     Phase     `json:"phase"`
	Base      int       `json:"base_version"`
	Assigned  int       `json:"assigned"`
	Collected int       `json:"collected"`
	Target    int       `json:"target"`
	Quorum    int       `json:"quorum"`
	Deadline  time.Time `json:"deadline"`
}

// StatusReport is the /v1/status payload.
type StatusReport struct {
	Mode      Mode             `json:"mode"`
	ModelKind model.Kind       `json:"model_kind"`
	ModelName string           `json:"model_name"`
	Version   int              `json:"version"`
	Round     RoundStatus      `json:"round"`
	Devices   Stats            `json:"devices"`
	Counters  map[string]int64 `json:"counters"`
	Recent    []RoundSummary   `json:"recent_rounds,omitempty"`
}

// Coordinator is the live federated training server: it tracks the device
// fleet in a sharded registry, runs the round lifecycle, folds updates via
// an aggregator.Strategy, and publishes model versions to the store.
//
// Check-in, heartbeat, and task requests are served synchronously; update
// submissions flow through a bounded queue drained by a single ingest
// worker, which serializes round mutation and aggregation.
type Coordinator struct {
	cfg        Config
	reg        *Registry
	store      *modelstore.Store
	strategy   aggregator.Strategy
	counters   *metrics.CounterSet
	negotiator *transport.Negotiator

	// version and roundID mirror the mu-guarded state for lock-free
	// reads on the check-in path.
	version atomic.Int64
	roundID atomic.Uint64

	mu sync.Mutex // guards round, global, published, blobs, ring, deltas, history
	// global is the trainable model whose flat params aggregation
	// mutates.
	global model.Model
	// published is an immutable snapshot of the params at `version`;
	// task responses share it read-only, so serving never copies.
	published tensor.Vector
	// blobs caches `published` encoded per broadcast scheme for the
	// current version: the default cohort's scheme is paid once per
	// commit, other cohorts' lazily on first request, and never once
	// per /v1/task.
	blobs map[codec.Scheme][]byte
	// ring retains the last Transport.DeltaHistory published versions
	// (ascending, newest last) as delta-broadcast bases. Entries share
	// the published snapshots; all read-only.
	ring []ringEntry
	// deltas caches encoded delta frames from a ring base to the
	// current version, keyed per (base, scheme) the way blobs caches
	// the full broadcast. Reset on every commit.
	deltas  map[deltaKey][]byte
	round   *Round
	history []RoundSummary

	ingest chan Submission
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// ringEntry is one retained published version.
type ringEntry struct {
	version int
	params  tensor.Vector
}

// deltaKey addresses one cached delta frame: the base it applies against
// and the scheme it is encoded with (the current version is implicit —
// the cache is cleared on commit).
type deltaKey struct {
	base   int
	scheme codec.Scheme
}

// New builds and starts a coordinator: it initializes the model, publishes
// version 1, opens round 1, and starts the ingest worker and the deadline
// watchdog. Call Close to stop.
func New(cfg Config) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m, err := model.New(cfg.ModelKind, cfg.Seed)
	if err != nil {
		return nil, err
	}
	store, err := modelstore.New(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	negotiator, err := transport.NewNegotiator(cfg.Transport)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:        cfg,
		reg:        NewRegistry(cfg.RegistryShards, cfg.DeviceTTL),
		store:      store,
		counters:   metrics.NewCounterSet(),
		negotiator: negotiator,
		global:     m,
		ingest:     make(chan Submission, cfg.QueueDepth),
		done:       make(chan struct{}),
	}
	switch cfg.Mode {
	case ModeSync:
		c.strategy = aggregator.FedAvg{}
	case ModeAsync:
		c.strategy = aggregator.FedBuff{ServerLR: cfg.ServerLR, Alpha: cfg.StalenessAlpha}
	}
	v, err := store.Put(cfg.ModelName, m)
	if err != nil {
		return nil, err
	}
	c.version.Store(int64(v))
	c.published = m.Params().Clone()
	c.blobs = make(map[codec.Scheme][]byte)
	c.deltas = make(map[deltaKey][]byte)
	if !cfg.OmitParams {
		// With OmitParams no blob is ever served, so skip the encode —
		// it costs O(dim) work and allocation per publish. Otherwise
		// pay the default cohort's broadcast eagerly (the common-path
		// scheme); other cohorts' blobs fill in lazily per commit.
		blob, err := codec.Encode(c.published, cfg.Transport.Default.Task)
		if err != nil {
			return nil, err
		}
		c.blobs[cfg.Transport.Default.Task] = blob
		if cfg.Transport.DeltaHistory > 0 {
			c.ring = append(c.ring, ringEntry{version: v, params: c.published})
		}
	}
	// Pre-register the downlink wire-stat counters so /v1/status always
	// carries them (a dashboard shouldn't have to guess whether a zero
	// is "no deltas yet" or "too old a server").
	for _, name := range []string{
		"broadcast_bytes_full", "broadcast_bytes_delta",
		"delta_cache_hits", "delta_cache_misses", "delta_base_aged",
		"task_sent_delta", "transport_fallback_f32", "update_rejected_oversize",
		"checkin_unknown_scheme", "task_unknown_scheme",
		"task_cohort_" + transport.CohortDefault, "task_cohort_" + transport.CohortLowBW,
	} {
		c.counters.Counter(name)
	}
	c.round = c.newRoundLocked(1, v, cfg.Clock())
	c.roundID.Store(1)
	c.wg.Add(2)
	go c.ingestLoop()
	go c.watchdog()
	return c, nil
}

// newRoundLocked opens the next round against base version v.
func (c *Coordinator) newRoundLocked(id uint64, v int, now time.Time) *Round {
	maxAssign := int(float64(c.cfg.TargetUpdates) * c.cfg.OverCommit)
	if c.cfg.Mode == ModeAsync {
		maxAssign = c.cfg.MaxInflight
	}
	return newRound(id, v, c.cfg.TargetUpdates, c.cfg.Quorum, maxAssign, now, now.Add(c.cfg.RoundDeadline))
}

// Close stops the ingest worker and watchdog, dropping any queued updates.
func (c *Coordinator) Close() {
	if c.closed.CompareAndSwap(false, true) {
		close(c.done)
		c.wg.Wait()
	}
}

// Config returns the effective (defaulted) configuration.
func (c *Coordinator) Config() Config { return c.cfg }

// Counters exposes the serving counters.
func (c *Coordinator) Counters() *metrics.CounterSet { return c.counters }

// Store exposes the versioned model store.
func (c *Coordinator) Store() *modelstore.Store { return c.store }

// Version returns the latest published model version.
func (c *Coordinator) Version() int { return int(c.version.Load()) }

// CheckIn registers or refreshes a device, negotiates its transport
// cohort, and reports its eligibility under the serving criteria. O(1):
// one shard lock, no coordinator lock.
func (c *Coordinator) CheckIn(info DeviceInfo) CheckInResult {
	now := c.cfg.Clock()
	isNew := c.reg.CheckIn(info, now)
	c.counters.Counter("checkin_total").Inc()
	eligible := c.cfg.Criteria.Admit(info.session())
	if eligible {
		c.counters.Counter("checkin_eligible").Inc()
	}
	dec := c.negotiate(info, nil)
	if dec.Fallback {
		// The device advertised a capability list with nothing this
		// server can honor; it is served the f32 universal baseline.
		c.counters.Counter("transport_fallback_f32").Inc()
	}
	return CheckInResult{
		New:      isNew,
		Eligible: eligible,
		Version:  int(c.version.Load()),
		RoundID:  c.roundID.Load(),
		Cohort:   dec.Cohort,
		Policy:   dec.Policy,
	}
}

// negotiate maps a device's reported state (plus an optional per-request
// capability override) to its transport decision. Pure and lock-free.
func (c *Coordinator) negotiate(info DeviceInfo, acceptOverride []codec.Kind) transport.Decision {
	d := transport.Device{Platform: info.Platform, WiFi: info.WiFi, Accept: info.Accept}
	if acceptOverride != nil {
		d.Accept = acceptOverride
	}
	return c.negotiator.Negotiate(d)
}

// Heartbeat refreshes liveness for a checked-in device.
func (c *Coordinator) Heartbeat(id int64) error {
	c.counters.Counter("heartbeat_total").Inc()
	if !c.reg.Heartbeat(id, c.cfg.Clock()) {
		return ErrUnknownDevice
	}
	return nil
}

// RequestTask hands the device the current round's task with full
// broadcast semantics — the pre-negotiation entry point, kept for
// embedders and tests. Equivalent to RequestTaskWith(id, TaskQuery{
// Binary: true}).
func (c *Coordinator) RequestTask(deviceID int64) (Task, error) {
	return c.RequestTaskWith(deviceID, TaskQuery{Binary: true})
}

// RequestTaskWith hands the device the current round's task if the round
// has assignment budget and the device is live, idle, and admitted by
// the criteria, negotiating the wire schemes from the device's cohort
// and capability list. When the query carries a base version still in
// the version ring, the task ships a codec delta frame instead of the
// full vector. Returns ErrNoTask when the device should poll again
// later.
func (c *Coordinator) RequestTaskWith(deviceID int64, q TaskQuery) (Task, error) {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	info, ok := c.reg.Get(deviceID)
	if !ok {
		// Identity errors stay stable regardless of round budget.
		return Task{}, ErrUnknownDevice
	}
	r := c.round
	if !r.assignable(now) {
		c.counters.Counter("task_denied_round").Inc()
		return Task{}, ErrNoTask
	}
	if !c.reg.Assign(deviceID, r.ID, c.cfg.Criteria, now) {
		c.counters.Counter("task_denied_device").Inc()
		return Task{}, ErrNoTask
	}
	if err := r.recordAssignment(deviceID); err != nil {
		c.reg.Release(deviceID)
		return Task{}, err
	}
	c.counters.Counter("task_assigned").Inc()
	dec := c.negotiate(info, q.Accept)
	c.counters.Counter("task_cohort_" + dec.Cohort).Inc()
	if dec.Fallback {
		// Counted here as well as at check-in: a per-request capability
		// echo can force the fallback on a device whose check-in looked
		// fine, and operators need to see that degradation.
		c.counters.Counter("transport_fallback_f32").Inc()
	}
	t := Task{
		RoundID:      r.ID,
		BaseVersion:  r.BaseVersion,
		ModelKind:    c.cfg.ModelKind,
		Dim:          len(c.published),
		TaskScheme:   dec.Policy.Task,
		Cohort:       dec.Cohort,
		UpdateScheme: dec.Policy.Update,
		LocalSteps:   c.cfg.LocalSteps,
		Deadline:     r.Deadline,
	}
	if c.cfg.OmitParams {
		return t, nil
	}
	t.Params = c.published
	if !q.Binary {
		// JSON clients take Params through the per-version JSON cache;
		// don't pay a blob encode they will never read.
		return t, nil
	}
	version := int(c.version.Load())
	if q.BaseVersion > 0 && q.BaseVersion <= version && c.cfg.Transport.DeltaHistory > 0 {
		// An up-to-date device gets a one-entry sparse "no change" frame
		// (~30 bytes) — but only when it can decode topk; a constrained
		// client keeps its negotiated delta scheme, never one outside
		// its advertised list.
		noChange := dec.Policy.Delta
		if acceptsKind(q.Accept, info.Accept, codec.KindTopK) {
			noChange = codec.TopK(1)
		}
		if blob, ok := c.deltaBlobLocked(q.BaseVersion, dec.Policy.Delta, noChange); ok {
			t.EncodedParams = blob
			t.TaskScheme = dec.Policy.Delta
			t.DeltaBase = q.BaseVersion
			return t, nil
		}
		// The base aged out of the ring (or negotiation disabled
		// deltas): fall back to the full broadcast.
		c.counters.Counter("delta_base_aged").Inc()
	}
	blob, err := c.fullBlobLocked(dec.Policy.Task)
	if err != nil {
		// Encoding the broadcast failed (cannot happen for validated
		// schemes and in-range models, but the task would be useless):
		// idle the device again; the round's overcommit budget absorbs
		// the orphaned assignment like any dropped task.
		c.reg.Release(deviceID)
		return Task{}, err
	}
	t.EncodedParams = blob
	return t, nil
}

// fullBlobLocked returns the current published vector encoded under s,
// paying the encode once per (version, scheme). Callers hold c.mu.
func (c *Coordinator) fullBlobLocked(s codec.Scheme) ([]byte, error) {
	if blob, ok := c.blobs[s]; ok {
		return blob, nil
	}
	blob, err := codec.Encode(c.published, s)
	if err != nil {
		return nil, err
	}
	c.blobs[s] = blob
	return blob, nil
}

// acceptsKind reports whether the effective capability list — the
// per-request override when present, else the check-in advertisement
// (nil = legacy client, decodes everything) — includes k.
func acceptsKind(override, advertised []codec.Kind, k codec.Kind) bool {
	list := override
	if list == nil {
		list = advertised
	}
	if list == nil {
		return true
	}
	for _, a := range list {
		if a == k {
			return true
		}
	}
	return false
}

// deltaBlobLocked returns the delta frame base→current under s, encoding
// and caching it per (base, scheme) on first use. A base equal to the
// current version is encoded under noChange instead (the caller picks the
// cheapest scheme the device can decode for an all-zero diff). ok is
// false when the base is no longer in the version ring. Callers hold
// c.mu.
func (c *Coordinator) deltaBlobLocked(base int, s, noChange codec.Scheme) ([]byte, bool) {
	if base == int(c.version.Load()) {
		s = noChange
	}
	key := deltaKey{base: base, scheme: s}
	if blob, ok := c.deltas[key]; ok {
		c.counters.Counter("delta_cache_hits").Inc()
		return blob, true
	}
	var baseParams tensor.Vector
	found := false
	for _, e := range c.ring {
		if e.version == base {
			baseParams, found = e.params, true
			break
		}
	}
	if !found || len(baseParams) != len(c.published) {
		return nil, false
	}
	diff := c.published.Clone()
	diff.Sub(baseParams)
	blob, err := codec.EncodeDelta(diff, s)
	if err != nil {
		return nil, false
	}
	c.counters.Counter("delta_cache_misses").Inc()
	c.deltas[key] = blob
	return blob, true
}

// SubmitUpdate validates a device update and enqueues it for the ingest
// worker. A full queue returns ErrBusy (the load-shedding contract: devices
// retry with backoff rather than stalling the server).
func (c *Coordinator) SubmitUpdate(sub Submission) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if want := c.global.NumParams(); len(sub.Delta) != want {
		c.counters.Counter("update_rejected_dim").Inc()
		return fmt.Errorf("coord: update from device %d has %d params, want %d", sub.DeviceID, len(sub.Delta), want)
	}
	// One NaN/Inf element would propagate through aggregation and
	// permanently poison the published model; the binary wire format can
	// carry such bit patterns (JSON can't), so every ingress is screened
	// here, the single choke point for all transports.
	if !finite(sub.Weight) || !allFinite(sub.Delta) {
		c.counters.Counter("update_rejected_nonfinite").Inc()
		return fmt.Errorf("coord: update from device %d contains non-finite values", sub.DeviceID)
	}
	select {
	case c.ingest <- sub:
		c.counters.Counter("update_enqueued").Inc()
		return nil
	default:
		c.counters.Counter("update_rejected_busy").Inc()
		return ErrBusy
	}
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func allFinite(v tensor.Vector) bool {
	for _, x := range v {
		if !finite(x) {
			return false
		}
	}
	return true
}

// ingestLoop is the single consumer of the update queue: it owns round
// mutation, aggregation, and publishing, so those never race.
func (c *Coordinator) ingestLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case sub := <-c.ingest:
			c.apply(sub)
		}
	}
}

// watchdog enforces round deadlines even when no updates arrive, and
// periodically garbage-collects departed devices so a long-running server's
// registry doesn't grow without bound.
func (c *Coordinator) watchdog() {
	defer c.wg.Done()
	period := c.cfg.RoundDeadline / 10
	if period > 250*time.Millisecond {
		period = 250 * time.Millisecond
	}
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	lastSweep := c.cfg.Clock()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
			c.checkDeadline()
			if now := c.cfg.Clock(); now.Sub(lastSweep) >= c.cfg.DeviceTTL {
				lastSweep = now
				if n := c.reg.Sweep(2*c.cfg.DeviceTTL, now); n > 0 {
					c.counters.Counter("devices_swept").Add(int64(n))
				}
			}
		}
	}
}

// apply folds one submission into the current round and triggers
// aggregation when the round becomes ready.
func (c *Coordinator) apply(sub Submission) {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	// Each handed-out task is good for exactly one submission: consuming
	// the assignment here rejects duplicates (client retries after a
	// timed-out response) and unsolicited updates, either of which would
	// otherwise let one device over-weight the aggregate.
	assignedTo, held := c.reg.ConsumeAssignment(sub.DeviceID)
	if !held {
		c.counters.Counter("update_rejected_unassigned").Inc()
		return
	}
	r := c.round
	version := int(c.version.Load())
	staleness := version - sub.BaseVersion
	if staleness < 0 {
		c.counters.Counter("update_rejected_future").Inc()
		return
	}
	if c.cfg.Mode == ModeSync {
		// Sync rounds only accept their own cohort's updates.
		if assignedTo != r.ID || sub.RoundID != r.ID || sub.BaseVersion != r.BaseVersion {
			c.counters.Counter("update_rejected_late").Inc()
			return
		}
	} else if c.cfg.MaxStaleness > 0 && staleness > c.cfg.MaxStaleness {
		c.counters.Counter("update_rejected_stale").Inc()
		return
	}
	weight := sub.Weight
	if weight <= 0 {
		// Fall back to the example count the device reported at
		// check-in (the aggregator treats a still-missing weight as 1).
		if info, ok := c.reg.Get(sub.DeviceID); ok {
			weight = info.Weight
		}
	}
	u := aggregator.Update{
		ClientID:  sub.DeviceID,
		Delta:     sub.Delta,
		Weight:    weight,
		Staleness: staleness,
	}
	if err := r.recordUpdate(u); err != nil {
		c.counters.Counter("update_rejected_late").Inc()
		return
	}
	c.counters.Counter("update_accepted").Inc()
	if r.ready(now) {
		c.commitLocked(now)
	}
}

// checkDeadline aggregates a quorum-complete round or abandons a starved
// one once its deadline passes.
func (c *Coordinator) checkDeadline() {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.round.ready(now):
		c.commitLocked(now)
	case c.round.expired(now):
		c.abandonLocked(now)
	}
}

// commitLocked aggregates the round's updates into the global model,
// publishes the new version, and opens the next round.
func (c *Coordinator) commitLocked(now time.Time) {
	r := c.round
	if err := r.advance(PhaseAggregating); err != nil {
		c.counters.Counter("round_fsm_error").Inc()
		return
	}
	params := c.global.Params()
	if err := c.strategy.Aggregate(params, r.updates); err != nil {
		// Aggregation failure (dimension drift) dooms the cohort, not
		// the server: drop the round and keep serving.
		c.counters.Counter("round_aggregate_error").Inc()
		_ = r.advance(PhaseAbandoned)
		c.finishLocked(r, 0, now)
		return
	}
	// The ingress screen in SubmitUpdate only sees individual updates;
	// finite deltas can still sum past MaxFloat64 during aggregation, and
	// a single Inf here would be republished forever. Aggregate mutates
	// params in place, so roll back to the last published snapshot
	// (captured pre-aggregation) before dropping the round.
	if !allFinite(params) {
		copy(params, c.published)
		c.counters.Counter("round_aggregate_nonfinite").Inc()
		_ = r.advance(PhaseAbandoned)
		c.finishLocked(r, 0, now)
		return
	}
	// Re-encode the default cohort's broadcast blob once here so the
	// common /v1/task path never pays for encoding (other cohorts'
	// schemes and delta frames fill their caches lazily). Failing to
	// encode is a publish failure: devices could no longer fetch the
	// version we'd be announcing. OmitParams servers never serve the
	// blob, so they skip the encode entirely.
	var blob []byte
	if !c.cfg.OmitParams {
		var err error
		if blob, err = codec.Encode(c.global.Params(), c.cfg.Transport.Default.Task); err != nil {
			c.counters.Counter("round_publish_error").Inc()
			_ = r.advance(PhaseAbandoned)
			c.finishLocked(r, 0, now)
			return
		}
	}
	v, err := c.store.Put(c.cfg.ModelName, c.global)
	if err != nil {
		c.counters.Counter("round_publish_error").Inc()
		_ = r.advance(PhaseAbandoned)
		c.finishLocked(r, 0, now)
		return
	}
	if err := r.advance(PhaseCommitted); err != nil {
		c.counters.Counter("round_fsm_error").Inc()
	}
	if c.cfg.KeepVersions > 0 {
		// Versions are sequential, so pruning v-Keep on every commit
		// retains exactly the newest KeepVersions snapshots.
		if old := v - c.cfg.KeepVersions; old >= 1 {
			if c.store.Delete(c.cfg.ModelName, old) == nil {
				c.counters.Counter("versions_pruned").Inc()
			}
		}
	}
	c.published = c.global.Params().Clone()
	c.blobs = make(map[codec.Scheme][]byte)
	c.deltas = make(map[deltaKey][]byte)
	if !c.cfg.OmitParams {
		c.blobs[c.cfg.Transport.Default.Task] = blob
		if k := c.cfg.Transport.DeltaHistory; k > 0 {
			// The ring shares the published snapshot (read-only); trim
			// to the newest K entries so delta bases age out instead of
			// accumulating a full model per commit forever.
			c.ring = append(c.ring, ringEntry{version: v, params: c.published})
			if len(c.ring) > k {
				c.ring = append(c.ring[:0], c.ring[len(c.ring)-k:]...)
			}
		}
	}
	c.version.Store(int64(v))
	c.counters.Counter("rounds_committed").Inc()
	c.counters.Counter("updates_aggregated").Add(int64(len(r.updates)))
	c.finishLocked(r, v, now)
}

// abandonLocked drops a starved round and opens a fresh one on the same
// base version.
func (c *Coordinator) abandonLocked(now time.Time) {
	r := c.round
	if err := r.advance(PhaseAbandoned); err != nil {
		c.counters.Counter("round_fsm_error").Inc()
		return
	}
	c.counters.Counter("rounds_abandoned").Inc()
	c.finishLocked(r, 0, now)
}

// finishLocked records the terminal round and opens its successor.
func (c *Coordinator) finishLocked(r *Round, newVersion int, now time.Time) {
	if c.cfg.Mode == ModeSync {
		// A terminal sync round voids its outstanding tasks — idle
		// exactly the devices it assigned (not an O(fleet) scan). In
		// async mode assignments survive the commit: carry-over
		// updates are still welcome, and the assignment is consumed
		// on submission (or overwritten when the device asks for new
		// work).
		for _, id := range r.assignedIDs {
			c.reg.ReleaseIf(id, r.ID)
		}
	}
	c.history = append(c.history, r.summary(newVersion, now))
	if len(c.history) > c.cfg.HistoryLimit {
		c.history = c.history[len(c.history)-c.cfg.HistoryLimit:]
	}
	c.round = c.newRoundLocked(r.ID+1, int(c.version.Load()), now)
	c.roundID.Store(r.ID + 1)
}

// Status reports the coordinator's full serving state (O(fleet): it scans
// the registry, so it belongs on dashboards, not hot paths).
func (c *Coordinator) Status() StatusReport {
	now := c.cfg.Clock()
	census := c.reg.Census(c.cfg.Criteria, now)
	c.mu.Lock()
	r := c.round
	rs := RoundStatus{
		ID:        r.ID,
		Phase:     r.Phase(),
		Base:      r.BaseVersion,
		Assigned:  r.Assigned(),
		Collected: r.Collected(),
		Target:    r.Target,
		Quorum:    r.Quorum,
		Deadline:  r.Deadline,
	}
	recent := make([]RoundSummary, 0, 8)
	if n := len(c.history); n > 0 {
		lo := n - 8
		if lo < 0 {
			lo = 0
		}
		recent = append(recent, c.history[lo:]...)
	}
	c.mu.Unlock()
	return StatusReport{
		Mode:      c.cfg.Mode,
		ModelKind: c.cfg.ModelKind,
		ModelName: c.cfg.ModelName,
		Version:   int(c.version.Load()),
		Round:     rs,
		Devices:   census,
		Counters:  c.counters.Snapshot(),
		Recent:    recent,
	}
}
