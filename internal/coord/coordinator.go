package coord

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"flint/internal/aggregator"
	"flint/internal/codec"
	"flint/internal/metrics"
	"flint/internal/model"
	"flint/internal/modelstore"
	"flint/internal/tensor"
)

// Sentinel errors surfaced to transports.
var (
	// ErrBusy means the ingest queue is full; the client should back off
	// and resubmit.
	ErrBusy = errors.New("coord: ingest queue full")
	// ErrNoTask means no task is available for the device right now.
	ErrNoTask = errors.New("coord: no task available")
	// ErrUnknownDevice means the device never checked in (or was swept).
	ErrUnknownDevice = errors.New("coord: unknown device")
	// ErrClosed means the coordinator is shutting down.
	ErrClosed = errors.New("coord: coordinator closed")
)

// Task is one unit of device work: train LocalSteps from BaseVersion and
// send back the delta.
type Task struct {
	RoundID     uint64
	BaseVersion int
	ModelKind   model.Kind
	// Dim is the flat parameter count; Params is the global vector at
	// BaseVersion (nil when the server is configured not to embed it).
	// The slice is shared and must be treated as read-only.
	Dim    int
	Params tensor.Vector
	// EncodedParams is the codec blob of Params under the server's task
	// scheme, encoded once per commit and shared read-only across every
	// request (nil when the server is configured not to embed params).
	EncodedParams []byte
	// UpdateScheme is the delta encoding the server asks binary devices
	// to use when submitting this task's result.
	UpdateScheme codec.Scheme
	LocalSteps   int
	Deadline     time.Time
}

// Submission is one device's completed task result.
type Submission struct {
	DeviceID    int64
	RoundID     uint64
	BaseVersion int
	Weight      float64
	Delta       tensor.Vector
}

// CheckInResult is the coordinator's reply to a device check-in.
type CheckInResult struct {
	New      bool
	Eligible bool
	Version  int
	RoundID  uint64
}

// RoundStatus is the externally visible state of the current round.
type RoundStatus struct {
	ID        uint64    `json:"id"`
	Phase     Phase     `json:"phase"`
	Base      int       `json:"base_version"`
	Assigned  int       `json:"assigned"`
	Collected int       `json:"collected"`
	Target    int       `json:"target"`
	Quorum    int       `json:"quorum"`
	Deadline  time.Time `json:"deadline"`
}

// StatusReport is the /v1/status payload.
type StatusReport struct {
	Mode      Mode             `json:"mode"`
	ModelKind model.Kind       `json:"model_kind"`
	ModelName string           `json:"model_name"`
	Version   int              `json:"version"`
	Round     RoundStatus      `json:"round"`
	Devices   Stats            `json:"devices"`
	Counters  map[string]int64 `json:"counters"`
	Recent    []RoundSummary   `json:"recent_rounds,omitempty"`
}

// Coordinator is the live federated training server: it tracks the device
// fleet in a sharded registry, runs the round lifecycle, folds updates via
// an aggregator.Strategy, and publishes model versions to the store.
//
// Check-in, heartbeat, and task requests are served synchronously; update
// submissions flow through a bounded queue drained by a single ingest
// worker, which serializes round mutation and aggregation.
type Coordinator struct {
	cfg      Config
	reg      *Registry
	store    *modelstore.Store
	strategy aggregator.Strategy
	counters *metrics.CounterSet

	// version and roundID mirror the mu-guarded state for lock-free
	// reads on the check-in path.
	version atomic.Int64
	roundID atomic.Uint64

	mu sync.Mutex // guards round, global, published, history
	// global is the trainable model whose flat params aggregation
	// mutates.
	global model.Model
	// published is an immutable snapshot of the params at `version`;
	// task responses share it read-only, so serving never copies.
	published tensor.Vector
	// publishedBlob is `published` pre-encoded under cfg.TaskScheme:
	// the binary broadcast is paid once per commit, not once per
	// /v1/task request.
	publishedBlob []byte
	round         *Round
	history       []RoundSummary

	ingest chan Submission
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New builds and starts a coordinator: it initializes the model, publishes
// version 1, opens round 1, and starts the ingest worker and the deadline
// watchdog. Call Close to stop.
func New(cfg Config) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m, err := model.New(cfg.ModelKind, cfg.Seed)
	if err != nil {
		return nil, err
	}
	store, err := modelstore.New(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:      cfg,
		reg:      NewRegistry(cfg.RegistryShards, cfg.DeviceTTL),
		store:    store,
		counters: metrics.NewCounterSet(),
		global:   m,
		ingest:   make(chan Submission, cfg.QueueDepth),
		done:     make(chan struct{}),
	}
	switch cfg.Mode {
	case ModeSync:
		c.strategy = aggregator.FedAvg{}
	case ModeAsync:
		c.strategy = aggregator.FedBuff{ServerLR: cfg.ServerLR, Alpha: cfg.StalenessAlpha}
	}
	v, err := store.Put(cfg.ModelName, m)
	if err != nil {
		return nil, err
	}
	c.version.Store(int64(v))
	c.published = m.Params().Clone()
	if !cfg.OmitParams {
		// With OmitParams the blob is never served, so skip the encode —
		// it costs O(dim) work and allocation per publish.
		if c.publishedBlob, err = codec.Encode(c.published, cfg.TaskScheme); err != nil {
			return nil, err
		}
	}
	c.round = c.newRoundLocked(1, v, cfg.Clock())
	c.roundID.Store(1)
	c.wg.Add(2)
	go c.ingestLoop()
	go c.watchdog()
	return c, nil
}

// newRoundLocked opens the next round against base version v.
func (c *Coordinator) newRoundLocked(id uint64, v int, now time.Time) *Round {
	maxAssign := int(float64(c.cfg.TargetUpdates) * c.cfg.OverCommit)
	if c.cfg.Mode == ModeAsync {
		maxAssign = c.cfg.MaxInflight
	}
	return newRound(id, v, c.cfg.TargetUpdates, c.cfg.Quorum, maxAssign, now, now.Add(c.cfg.RoundDeadline))
}

// Close stops the ingest worker and watchdog, dropping any queued updates.
func (c *Coordinator) Close() {
	if c.closed.CompareAndSwap(false, true) {
		close(c.done)
		c.wg.Wait()
	}
}

// Config returns the effective (defaulted) configuration.
func (c *Coordinator) Config() Config { return c.cfg }

// Counters exposes the serving counters.
func (c *Coordinator) Counters() *metrics.CounterSet { return c.counters }

// Store exposes the versioned model store.
func (c *Coordinator) Store() *modelstore.Store { return c.store }

// Version returns the latest published model version.
func (c *Coordinator) Version() int { return int(c.version.Load()) }

// CheckIn registers or refreshes a device and reports its eligibility under
// the serving criteria. O(1): one shard lock, no coordinator lock.
func (c *Coordinator) CheckIn(info DeviceInfo) CheckInResult {
	now := c.cfg.Clock()
	isNew := c.reg.CheckIn(info, now)
	c.counters.Counter("checkin_total").Inc()
	eligible := c.cfg.Criteria.Admit(info.session())
	if eligible {
		c.counters.Counter("checkin_eligible").Inc()
	}
	return CheckInResult{
		New:      isNew,
		Eligible: eligible,
		Version:  int(c.version.Load()),
		RoundID:  c.roundID.Load(),
	}
}

// Heartbeat refreshes liveness for a checked-in device.
func (c *Coordinator) Heartbeat(id int64) error {
	c.counters.Counter("heartbeat_total").Inc()
	if !c.reg.Heartbeat(id, c.cfg.Clock()) {
		return ErrUnknownDevice
	}
	return nil
}

// RequestTask hands the device the current round's task if the round has
// assignment budget and the device is live, idle, and admitted by the
// criteria. Returns ErrNoTask when the device should poll again later.
func (c *Coordinator) RequestTask(deviceID int64) (Task, error) {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.reg.Get(deviceID); !ok {
		// Identity errors stay stable regardless of round budget.
		return Task{}, ErrUnknownDevice
	}
	r := c.round
	if !r.assignable(now) {
		c.counters.Counter("task_denied_round").Inc()
		return Task{}, ErrNoTask
	}
	if !c.reg.Assign(deviceID, r.ID, c.cfg.Criteria, now) {
		c.counters.Counter("task_denied_device").Inc()
		return Task{}, ErrNoTask
	}
	if err := r.recordAssignment(deviceID); err != nil {
		c.reg.Release(deviceID)
		return Task{}, err
	}
	c.counters.Counter("task_assigned").Inc()
	t := Task{
		RoundID:      r.ID,
		BaseVersion:  r.BaseVersion,
		ModelKind:    c.cfg.ModelKind,
		Dim:          len(c.published),
		UpdateScheme: c.cfg.UpdateScheme,
		LocalSteps:   c.cfg.LocalSteps,
		Deadline:     r.Deadline,
	}
	if !c.cfg.OmitParams {
		t.Params = c.published
		t.EncodedParams = c.publishedBlob
	}
	return t, nil
}

// SubmitUpdate validates a device update and enqueues it for the ingest
// worker. A full queue returns ErrBusy (the load-shedding contract: devices
// retry with backoff rather than stalling the server).
func (c *Coordinator) SubmitUpdate(sub Submission) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if want := c.global.NumParams(); len(sub.Delta) != want {
		c.counters.Counter("update_rejected_dim").Inc()
		return fmt.Errorf("coord: update from device %d has %d params, want %d", sub.DeviceID, len(sub.Delta), want)
	}
	// One NaN/Inf element would propagate through aggregation and
	// permanently poison the published model; the binary wire format can
	// carry such bit patterns (JSON can't), so every ingress is screened
	// here, the single choke point for all transports.
	if !finite(sub.Weight) || !allFinite(sub.Delta) {
		c.counters.Counter("update_rejected_nonfinite").Inc()
		return fmt.Errorf("coord: update from device %d contains non-finite values", sub.DeviceID)
	}
	select {
	case c.ingest <- sub:
		c.counters.Counter("update_enqueued").Inc()
		return nil
	default:
		c.counters.Counter("update_rejected_busy").Inc()
		return ErrBusy
	}
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func allFinite(v tensor.Vector) bool {
	for _, x := range v {
		if !finite(x) {
			return false
		}
	}
	return true
}

// ingestLoop is the single consumer of the update queue: it owns round
// mutation, aggregation, and publishing, so those never race.
func (c *Coordinator) ingestLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case sub := <-c.ingest:
			c.apply(sub)
		}
	}
}

// watchdog enforces round deadlines even when no updates arrive, and
// periodically garbage-collects departed devices so a long-running server's
// registry doesn't grow without bound.
func (c *Coordinator) watchdog() {
	defer c.wg.Done()
	period := c.cfg.RoundDeadline / 10
	if period > 250*time.Millisecond {
		period = 250 * time.Millisecond
	}
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	lastSweep := c.cfg.Clock()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
			c.checkDeadline()
			if now := c.cfg.Clock(); now.Sub(lastSweep) >= c.cfg.DeviceTTL {
				lastSweep = now
				if n := c.reg.Sweep(2*c.cfg.DeviceTTL, now); n > 0 {
					c.counters.Counter("devices_swept").Add(int64(n))
				}
			}
		}
	}
}

// apply folds one submission into the current round and triggers
// aggregation when the round becomes ready.
func (c *Coordinator) apply(sub Submission) {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	// Each handed-out task is good for exactly one submission: consuming
	// the assignment here rejects duplicates (client retries after a
	// timed-out response) and unsolicited updates, either of which would
	// otherwise let one device over-weight the aggregate.
	assignedTo, held := c.reg.ConsumeAssignment(sub.DeviceID)
	if !held {
		c.counters.Counter("update_rejected_unassigned").Inc()
		return
	}
	r := c.round
	version := int(c.version.Load())
	staleness := version - sub.BaseVersion
	if staleness < 0 {
		c.counters.Counter("update_rejected_future").Inc()
		return
	}
	if c.cfg.Mode == ModeSync {
		// Sync rounds only accept their own cohort's updates.
		if assignedTo != r.ID || sub.RoundID != r.ID || sub.BaseVersion != r.BaseVersion {
			c.counters.Counter("update_rejected_late").Inc()
			return
		}
	} else if c.cfg.MaxStaleness > 0 && staleness > c.cfg.MaxStaleness {
		c.counters.Counter("update_rejected_stale").Inc()
		return
	}
	weight := sub.Weight
	if weight <= 0 {
		// Fall back to the example count the device reported at
		// check-in (the aggregator treats a still-missing weight as 1).
		if info, ok := c.reg.Get(sub.DeviceID); ok {
			weight = info.Weight
		}
	}
	u := aggregator.Update{
		ClientID:  sub.DeviceID,
		Delta:     sub.Delta,
		Weight:    weight,
		Staleness: staleness,
	}
	if err := r.recordUpdate(u); err != nil {
		c.counters.Counter("update_rejected_late").Inc()
		return
	}
	c.counters.Counter("update_accepted").Inc()
	if r.ready(now) {
		c.commitLocked(now)
	}
}

// checkDeadline aggregates a quorum-complete round or abandons a starved
// one once its deadline passes.
func (c *Coordinator) checkDeadline() {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.round.ready(now):
		c.commitLocked(now)
	case c.round.expired(now):
		c.abandonLocked(now)
	}
}

// commitLocked aggregates the round's updates into the global model,
// publishes the new version, and opens the next round.
func (c *Coordinator) commitLocked(now time.Time) {
	r := c.round
	if err := r.advance(PhaseAggregating); err != nil {
		c.counters.Counter("round_fsm_error").Inc()
		return
	}
	params := c.global.Params()
	if err := c.strategy.Aggregate(params, r.updates); err != nil {
		// Aggregation failure (dimension drift) dooms the cohort, not
		// the server: drop the round and keep serving.
		c.counters.Counter("round_aggregate_error").Inc()
		_ = r.advance(PhaseAbandoned)
		c.finishLocked(r, 0, now)
		return
	}
	// The ingress screen in SubmitUpdate only sees individual updates;
	// finite deltas can still sum past MaxFloat64 during aggregation, and
	// a single Inf here would be republished forever. Aggregate mutates
	// params in place, so roll back to the last published snapshot
	// (captured pre-aggregation) before dropping the round.
	if !allFinite(params) {
		copy(params, c.published)
		c.counters.Counter("round_aggregate_nonfinite").Inc()
		_ = r.advance(PhaseAbandoned)
		c.finishLocked(r, 0, now)
		return
	}
	// Re-encode the broadcast blob once here so no /v1/task request ever
	// pays for encoding. Failing to encode is a publish failure: devices
	// could no longer fetch the version we'd be announcing. OmitParams
	// servers never serve the blob, so they skip the encode entirely.
	var blob []byte
	if !c.cfg.OmitParams {
		var err error
		if blob, err = codec.Encode(c.global.Params(), c.cfg.TaskScheme); err != nil {
			c.counters.Counter("round_publish_error").Inc()
			_ = r.advance(PhaseAbandoned)
			c.finishLocked(r, 0, now)
			return
		}
	}
	v, err := c.store.Put(c.cfg.ModelName, c.global)
	if err != nil {
		c.counters.Counter("round_publish_error").Inc()
		_ = r.advance(PhaseAbandoned)
		c.finishLocked(r, 0, now)
		return
	}
	if err := r.advance(PhaseCommitted); err != nil {
		c.counters.Counter("round_fsm_error").Inc()
	}
	if c.cfg.KeepVersions > 0 {
		// Versions are sequential, so pruning v-Keep on every commit
		// retains exactly the newest KeepVersions snapshots.
		if old := v - c.cfg.KeepVersions; old >= 1 {
			if c.store.Delete(c.cfg.ModelName, old) == nil {
				c.counters.Counter("versions_pruned").Inc()
			}
		}
	}
	c.published = c.global.Params().Clone()
	c.publishedBlob = blob
	c.version.Store(int64(v))
	c.counters.Counter("rounds_committed").Inc()
	c.counters.Counter("updates_aggregated").Add(int64(len(r.updates)))
	c.finishLocked(r, v, now)
}

// abandonLocked drops a starved round and opens a fresh one on the same
// base version.
func (c *Coordinator) abandonLocked(now time.Time) {
	r := c.round
	if err := r.advance(PhaseAbandoned); err != nil {
		c.counters.Counter("round_fsm_error").Inc()
		return
	}
	c.counters.Counter("rounds_abandoned").Inc()
	c.finishLocked(r, 0, now)
}

// finishLocked records the terminal round and opens its successor.
func (c *Coordinator) finishLocked(r *Round, newVersion int, now time.Time) {
	if c.cfg.Mode == ModeSync {
		// A terminal sync round voids its outstanding tasks — idle
		// exactly the devices it assigned (not an O(fleet) scan). In
		// async mode assignments survive the commit: carry-over
		// updates are still welcome, and the assignment is consumed
		// on submission (or overwritten when the device asks for new
		// work).
		for _, id := range r.assignedIDs {
			c.reg.ReleaseIf(id, r.ID)
		}
	}
	c.history = append(c.history, r.summary(newVersion, now))
	if len(c.history) > c.cfg.HistoryLimit {
		c.history = c.history[len(c.history)-c.cfg.HistoryLimit:]
	}
	c.round = c.newRoundLocked(r.ID+1, int(c.version.Load()), now)
	c.roundID.Store(r.ID + 1)
}

// Status reports the coordinator's full serving state (O(fleet): it scans
// the registry, so it belongs on dashboards, not hot paths).
func (c *Coordinator) Status() StatusReport {
	now := c.cfg.Clock()
	census := c.reg.Census(c.cfg.Criteria, now)
	c.mu.Lock()
	r := c.round
	rs := RoundStatus{
		ID:        r.ID,
		Phase:     r.Phase(),
		Base:      r.BaseVersion,
		Assigned:  r.Assigned(),
		Collected: r.Collected(),
		Target:    r.Target,
		Quorum:    r.Quorum,
		Deadline:  r.Deadline,
	}
	recent := make([]RoundSummary, 0, 8)
	if n := len(c.history); n > 0 {
		lo := n - 8
		if lo < 0 {
			lo = 0
		}
		recent = append(recent, c.history[lo:]...)
	}
	c.mu.Unlock()
	return StatusReport{
		Mode:      c.cfg.Mode,
		ModelKind: c.cfg.ModelKind,
		ModelName: c.cfg.ModelName,
		Version:   int(c.version.Load()),
		Round:     rs,
		Devices:   census,
		Counters:  c.counters.Snapshot(),
		Recent:    recent,
	}
}
