package coord

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flint/internal/aggregator"
	"flint/internal/codec"
	"flint/internal/metrics"
	"flint/internal/model"
	"flint/internal/modelstore"
	"flint/internal/sched"
	"flint/internal/tensor"
	"flint/internal/transport"
)

// Sentinel errors surfaced to transports.
var (
	// ErrBusy means the ingest queue is full; the client should back off
	// and resubmit.
	ErrBusy = errors.New("coord: ingest queue full")
	// ErrNoTask means no task is available for the device right now.
	ErrNoTask = errors.New("coord: no task available")
	// ErrUnknownDevice means the device never checked in (or was swept).
	ErrUnknownDevice = errors.New("coord: unknown device")
	// ErrClosed means the coordinator is shutting down.
	ErrClosed = errors.New("coord: coordinator closed")
)

// Task is one unit of device work: train LocalSteps from BaseVersion and
// send back the delta.
type Task struct {
	RoundID     uint64
	BaseVersion int
	ModelKind   model.Kind
	// Dim is the flat parameter count; Params is the global vector at
	// BaseVersion (nil when the server is configured not to embed it).
	// The slice is shared and must be treated as read-only.
	Dim    int
	Params tensor.Vector
	// EncodedParams is the codec blob binary devices receive: the full
	// parameter vector under TaskScheme, or — when DeltaBase is set — a
	// delta frame against that published version. Blobs are cached per
	// (version, scheme) and shared read-only across requests (nil when
	// the server is configured not to embed params or the client didn't
	// negotiate the binary protocol).
	EncodedParams []byte
	// TaskScheme is the encoding EncodedParams was produced under (the
	// negotiated cohort's broadcast or delta scheme).
	TaskScheme codec.Scheme
	// DeltaBase, when > 0, marks EncodedParams as a delta frame to be
	// applied against the device's copy of that published version.
	DeltaBase int
	// Cohort names the transport cohort the device negotiated into.
	Cohort string
	// UpdateScheme is the delta encoding the server asks binary devices
	// to use when submitting this task's result.
	UpdateScheme codec.Scheme
	LocalSteps   int
	Deadline     time.Time
}

// TaskQuery is the transport context a device sends with a task request:
// its last-seen model version (the delta-broadcast base), an optional
// per-request capability list overriding its check-in advertisement, and
// whether it negotiated the binary protocol at all (JSON clients skip
// blob encoding entirely).
type TaskQuery struct {
	// BaseVersion is the published version the device already holds
	// (0 = none): when it is still in the coordinator's version ring,
	// the task ships a delta frame instead of the full vector.
	BaseVersion int
	// Accept overrides the device's check-in capability list for this
	// request when non-nil (the X-Flint-Accept-Schemes header echo).
	Accept []codec.Kind
	// Binary marks a tensor-protocol client; only those receive
	// EncodedParams.
	Binary bool
}

// Submission is one device's completed task result. The coordinator
// takes ownership of Delta: the slice is retained in the round buffer
// until aggregation (which, in async mode, can be a later round than the
// one that accepted it), so the caller must not mutate it after
// SubmitUpdate returns.
type Submission struct {
	DeviceID    int64
	RoundID     uint64
	BaseVersion int
	Weight      float64
	Delta       tensor.Vector
	// Payload optionally carries the update still in wire form (a
	// validated codec.Payload) instead of a decoded Delta: the commit
	// pipeline's fused kernels aggregate straight out of the pooled
	// wire bytes, and the buffer goes back to the codec pool when the
	// accepting round goes terminal. SubmitUpdate takes ownership on
	// EVERY outcome, success or error — the caller must not touch the
	// Payload after the call. Set exactly one of Delta and Payload.
	Payload *codec.Payload
}

// release returns the submission's pooled payload (if any) to the codec
// pool — the rejection-path exit; accepted payloads are released by the
// round that buffered them.
func (s *Submission) release() {
	if s.Payload != nil {
		s.Payload.Release()
		s.Payload = nil
	}
}

// CheckInResult is the coordinator's reply to a device check-in.
type CheckInResult struct {
	New      bool
	Eligible bool
	// OverQuota marks a rejected check-in: the device is new and the
	// job's MaxDevices quota is full. The device was not registered;
	// transports answer 429 and the device should retry later (sweeps
	// free slots as stale devices age out).
	OverQuota bool
	Version   int
	RoundID   uint64
	// Cohort and Policy report the transport assignment negotiated from
	// the device's advertised platform/connectivity and capability
	// list, so clients learn their schemes up front.
	Cohort string
	Policy transport.Policy
}

// RoundStatus is the externally visible state of the current round.
type RoundStatus struct {
	ID        uint64    `json:"id"`
	Phase     Phase     `json:"phase"`
	Base      int       `json:"base_version"`
	Assigned  int       `json:"assigned"`
	Collected int       `json:"collected"`
	Target    int       `json:"target"`
	Quorum    int       `json:"quorum"`
	Deadline  time.Time `json:"deadline"`
}

// StatusReport is the /v1/status payload.
type StatusReport struct {
	Mode      Mode        `json:"mode"`
	ModelKind model.Kind  `json:"model_kind"`
	ModelName string      `json:"model_name"`
	Version   int         `json:"version"`
	Round     RoundStatus `json:"round"`
	Devices   Stats       `json:"devices"`
	// Scheduler is the scheduling plane's fleet view: measured-device
	// census, per-cohort bandwidth histograms, straggler quantiles, and
	// the live over-commit scale.
	Scheduler sched.Report     `json:"scheduler"`
	Counters  map[string]int64 `json:"counters"`
	Recent    []RoundSummary   `json:"recent_rounds,omitempty"`
	// Aggregation names the effective commit reducer (e.g.
	// "parallel(trimmed-mean)").
	Aggregation string `json:"aggregation"`
	// ModelNorm is the L2 norm of the published parameter vector — the
	// fleet-visible drift metric the poison-replay drills assert on.
	ModelNorm float64 `json:"model_norm"`
	// Privacy is the DP stage's accountant view; nil when DP is off.
	Privacy *PrivacyReport `json:"privacy,omitempty"`
}

// serving pairs the current round with the broadcast plane it trains
// from. The task path loads the pair with one atomic read, so a task can
// never mix one round's metadata with another version's payload — the
// snapshot-consistency invariant the pointer swap exists for.
type serving struct {
	round *Round
	bcast *broadcastState
}

// persistReq is one write-behind job: flush version to the backing
// directory and, when prune > 0, drop that old version afterwards.
// barrier marks the every-Nth-commit fsync: the flush is not considered
// done until the bytes are on stable storage, bounding how many
// snapshots a host crash (not just a process crash) can lose.
type persistReq struct {
	version int
	prune   int
	barrier bool
}

// persistQueueDepth bounds the write-behind backlog. A full queue makes
// the commit pipeline wait for the disk — bounded memory beats unbounded
// deferral — but the serving paths never notice either way.
const persistQueueDepth = 16

// Coordinator is the live federated training server: it tracks the device
// fleet in a sharded registry, runs the round lifecycle, folds updates via
// an aggregator.Strategy, and publishes model versions to the store.
//
// State is split across two planes. The *broadcast plane* is an immutable
// broadcastState (published params, blob/delta caches, version ring)
// paired with the current round behind one atomic pointer: check-in,
// task, and status requests only ever load that pointer plus per-object
// O(1) locks (registry shards, the round's own mutex), so the serving
// paths share no mutex with the commit pipeline and never block on
// aggregation, encoding, or disk. The *round plane* — the global model,
// round lifecycle transitions, and the commit pipeline — stays under mu,
// which only the ingest worker and the deadline watchdog take.
//
// A commit is a staged pipeline under mu: (1) sharded parallel
// aggregation into the global model, (2) building the successor
// broadcastState off to the side — pre-encoding the default cohort's
// blob and the delta frames for the base versions live devices actually
// hold (tracked per device in the registry), (3) inserting the snapshot
// into the store in memory, swapping the serving pointer, and handing the
// disk write to a write-behind worker (publish_pending counts the
// backlog).
type Coordinator struct {
	cfg      Config
	reg      *Registry
	store    *modelstore.Store
	strategy aggregator.Strategy
	// screen is the commit pipeline's pre-reduce norm-outlier rejection
	// layer (zero value = disabled); dp is the post-reduce clip-and-noise
	// stage (nil = disabled).
	screen     aggregator.NormScreen
	dp         *dpState
	counters   *metrics.CounterSet
	negotiator *transport.Negotiator
	// sched is the scheduling plane: measured-bandwidth cohort map,
	// deadline gate, and straggler-tail over-commit, rebuilt from the
	// registry's telemetry census by the watchdog.
	sched *sched.Scheduler
	// rebuildMu serializes fleet-census rebuilds and guards schedCensus,
	// the sample buffer reused across them (tens of megabytes at a
	// million-device census — reallocating it every rebuild period would
	// dominate the rebuild's allocation bill). The watchdog runs rebuilds
	// asynchronously and TryLocks: a census still walking when the next
	// cadence tick fires means the fleet outgrew the cadence, and the
	// right move is skipping the tick — never queueing a second walk, and
	// never stalling deadline enforcement behind an O(fleet) scan.
	rebuildMu   sync.Mutex
	rebuildWG   sync.WaitGroup
	schedCensus []sched.DeviceSample
	// scratch recycles full-dim work vectors across the commit pipeline
	// and the lazy delta-encode path, so steady-state delta encoding
	// double-buffers instead of allocating a fresh vector per frame.
	scratch *vecPool
	// dim is the immutable flat parameter count, readable without
	// touching the (commit-mutated) global model.
	dim int

	// version and roundID mirror committed state for lock-free reads on
	// the check-in path.
	version atomic.Int64
	roundID atomic.Uint64

	// serving is the atomically swapped (round, broadcast plane) pair —
	// everything the task path reads.
	serving atomic.Pointer[serving]
	// deadlineNS mirrors the current round's deadline so the watchdog's
	// idle tick is a single atomic load, no locks.
	deadlineNS atomic.Int64

	// mu is the round-plane lock: it serializes the commit/abandon
	// pipeline (round lifecycle edges, aggregation into global, snapshot
	// builds, store inserts, serving swaps). Only the ingest worker and
	// the watchdog take it — never a request handler.
	mu sync.Mutex
	// global is the trainable model whose flat params aggregation
	// mutates. Guarded by mu.
	global model.Model

	// historyMu guards the finished-round log (commit appends O(1),
	// /v1/status reads).
	historyMu sync.Mutex
	history   []RoundSummary

	ingest  chan Submission
	persist chan persistReq
	done    chan struct{}
	// loopWG tracks the ingest worker and watchdog; persistWG tracks the
	// write-behind worker, which drains after the loops stop so Close
	// never loses a queued disk write. exchWG tracks hierarchical-mode
	// exchange goroutines (at most one in flight: a parked round blocks
	// its successor until its install lands).
	loopWG    sync.WaitGroup
	exchWG    sync.WaitGroup
	persistWG sync.WaitGroup
	closed    atomic.Bool
}

// New builds and starts a coordinator: it initializes the model, publishes
// version 1, opens round 1, and starts the ingest worker, the deadline
// watchdog, and the write-behind persister. Call Close to stop.
func New(cfg Config) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m, err := model.New(cfg.ModelKind, cfg.Seed)
	if err != nil {
		return nil, err
	}
	store, err := modelstore.New(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	negotiator, err := transport.NewNegotiator(cfg.Transport)
	if err != nil {
		return nil, err
	}
	scheduler, err := sched.New(cfg.Sched)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:        cfg,
		reg:        NewRegistry(cfg.RegistryShards, cfg.DeviceTTL),
		store:      store,
		counters:   metrics.NewCounterSet(),
		negotiator: negotiator,
		sched:      scheduler,
		scratch:    newVecPool(m.NumParams()),
		dim:        m.NumParams(),
		global:     m,
		ingest:     make(chan Submission, cfg.QueueDepth),
		persist:    make(chan persistReq, persistQueueDepth),
		done:       make(chan struct{}),
	}
	// Every installed strategy is coordinate-separable, so the commit
	// pipeline's aggregation shards across cores and stays bit-identical
	// to the sequential fold — the robust column reducers included (their
	// per-coordinate selection is deterministic). Screen folds the
	// post-aggregate non-finite sweep into the same pass, per worker
	// range, while the accumulator is still cache-hot.
	switch cfg.Aggregation.Strategy {
	case "trimmed-mean":
		c.strategy = aggregator.Parallel{Inner: aggregator.TrimmedMean{TrimFrac: cfg.Aggregation.TrimFrac}, Screen: true}
	case "coordinate-median":
		c.strategy = aggregator.Parallel{Inner: aggregator.CoordinateMedian{}, Screen: true}
	default:
		switch cfg.Mode {
		case ModeSync:
			c.strategy = aggregator.Parallel{Inner: aggregator.FedAvg{}, Screen: true}
		case ModeAsync:
			c.strategy = aggregator.Parallel{Inner: aggregator.FedBuff{ServerLR: cfg.ServerLR, Alpha: cfg.StalenessAlpha}, Screen: true}
		}
	}
	c.screen = aggregator.NormScreen{
		MaxNorm:      cfg.Aggregation.ScreenMaxNorm,
		MedianFactor: cfg.Aggregation.ScreenMedianFactor,
	}
	if cfg.DP.Enabled() {
		c.dp = newDPState(cfg.DP)
	}
	v, err := store.Put(cfg.ModelName, m)
	if err != nil {
		return nil, err
	}
	c.version.Store(int64(v))
	bs := newBroadcastState(v, m.Params().Clone(), nil, c.scratch)
	if !cfg.OmitParams {
		// With OmitParams no blob is ever served, so skip the encode —
		// it costs O(dim) work and allocation per publish. Otherwise
		// pay the default cohort's broadcast eagerly (the common-path
		// scheme); other cohorts' blobs fill in lazily.
		blob, err := codec.Encode(bs.published, cfg.Transport.Default.Task)
		if err != nil {
			return nil, err
		}
		bs.setBlob(cfg.Transport.Default.Task, blob)
		if cfg.Transport.RingDepth() > 0 {
			bs.ring = []ringEntry{{version: v, params: bs.published}}
		}
	}
	// Pre-register every serving counter so a status page always carries
	// the full zeroed key set before first traffic (a dashboard shouldn't
	// have to guess whether a missing key is "no deltas yet" or "too old
	// a server") — and, in the multi-tenant plane, so a freshly
	// registered job's /v1/jobs/<job>/status looks identical in shape to
	// a busy one's.
	for _, name := range []string{
		"checkin_total", "checkin_eligible", "checkin_rejected_quota",
		"checkin_unknown_scheme", "checkin_batch", "heartbeat_total",
		"task_assigned", "task_denied_round", "task_denied_device",
		"task_denied_deadline", "task_probe_admitted",
		"task_sent_binary", "task_sent_json", "task_sent_delta",
		"task_unknown_scheme", "auth_rejected_token",
		"broadcast_bytes_full", "broadcast_bytes_delta",
		"delta_cache_hits", "delta_cache_misses", "delta_base_aged",
		"delta_pre_encoded",
		"update_enqueued", "update_accepted", "update_recv_binary",
		"update_recv_json", "update_rejected_dim",
		"update_rejected_nonfinite", "update_rejected_busy",
		"update_rejected_unassigned", "update_rejected_future",
		"update_rejected_stale", "update_rejected_late",
		"update_rejected_oversize", "update_lazy_payload",
		"updates_aggregated", "updates_screened_norm", "dp_rounds",
		"rounds_committed", "rounds_abandoned", "round_fsm_error",
		"round_aggregate_error", "round_aggregate_nonfinite",
		"round_aggregate_robust_error", "round_publish_error",
		"publish_pending", "persist_error", "persist_retry",
		"persist_barrier", "versions_pruned", "devices_swept",
		"transport_fallback_f32", "sched_rebuilds", "sched_rebuild_skipped",
		"task_cohort_" + transport.CohortDefault, "task_cohort_" + transport.CohortLowBW,
	} {
		c.counters.Counter(name)
	}
	for _, name := range exchangeCounters {
		c.counters.Counter(name)
	}
	r := c.newRound(1, bs, cfg.Clock())
	c.serving.Store(&serving{round: r, bcast: bs})
	c.roundID.Store(1)
	c.deadlineNS.Store(r.Deadline.UnixNano())
	c.loopWG.Add(2)
	go c.ingestLoop()
	go c.watchdog()
	c.persistWG.Add(1)
	go c.persistLoop()
	return c, nil
}

// newRound opens the next round against broadcast plane bs. Sync rounds
// are provisioned with the scheduler's deadline-driven over-commit: the
// configured base scaled by the fleet's measured on-time fraction, so a
// straggler-heavy census buys more duplicate assignments and the round
// still closes by its deadline.
func (c *Coordinator) newRound(id uint64, bs *broadcastState, now time.Time) *Round {
	maxAssign := int(float64(c.cfg.TargetUpdates) * c.sched.OverCommit(c.cfg.OverCommit))
	if c.cfg.Mode == ModeAsync {
		maxAssign = c.cfg.MaxInflight
	}
	return newRound(id, bs.version, c.cfg.TargetUpdates, c.cfg.Quorum, maxAssign, now, now.Add(c.cfg.RoundDeadline))
}

// Close stops the ingest worker and watchdog (dropping any queued
// updates), then flushes the write-behind queue so every committed
// version reaches disk before Close returns.
func (c *Coordinator) Close() {
	if c.closed.CompareAndSwap(false, true) {
		close(c.done)
		c.loopWG.Wait()
		// The watchdog spawns async census rebuilds; wait out any
		// in-flight walk so Close never leaves a goroutine scanning a
		// registry its owner considers stopped.
		c.rebuildWG.Wait()
		// The loops spawn exchange goroutines, so they stop first; an
		// in-flight install may still be publishing under mu.
		c.exchWG.Wait()
		// No commit can run past this point, so the persist channel has
		// no senders left; closing it drains the worker cleanly.
		close(c.persist)
		c.persistWG.Wait()
	}
}

// Config returns the effective (defaulted) configuration.
func (c *Coordinator) Config() Config { return c.cfg }

// Counters exposes the serving counters.
func (c *Coordinator) Counters() *metrics.CounterSet { return c.counters }

// Store exposes the versioned model store.
func (c *Coordinator) Store() *modelstore.Store { return c.store }

// Version returns the latest published model version.
func (c *Coordinator) Version() int { return int(c.version.Load()) }

// CheckIn registers or refreshes a device, negotiates its transport
// cohort, and reports its eligibility under the serving criteria. O(1):
// one shard lock, no coordinator lock.
func (c *Coordinator) CheckIn(info DeviceInfo) CheckInResult {
	now := c.cfg.Clock()
	isNew, admitted := c.reg.TryCheckIn(info, now, c.cfg.MaxDevices)
	c.counters.Counter("checkin_total").Inc()
	if !admitted {
		c.counters.Counter("checkin_rejected_quota").Inc()
		return CheckInResult{New: true, OverQuota: true}
	}
	eligible := c.cfg.Criteria.Admit(info.session())
	if eligible {
		c.counters.Counter("checkin_eligible").Inc()
	}
	dec := c.negotiate(info, nil)
	if dec.Fallback {
		// The device advertised a capability list with nothing this
		// server can honor; it is served the f32 universal baseline.
		c.counters.Counter("transport_fallback_f32").Inc()
	}
	return CheckInResult{
		New:      isNew,
		Eligible: eligible,
		Version:  int(c.version.Load()),
		RoundID:  c.roundID.Load(),
		Cohort:   dec.Cohort,
		Policy:   dec.Policy,
	}
}

// BatchCheckInResult is the coordinator's reply to a batched check-in:
// aggregate counts instead of per-device echoes (devices learn their
// cohort and schemes on their first task request), so the response stays
// O(rejections) however large the batch is.
type BatchCheckInResult struct {
	// Accepted counts devices registered or refreshed; New counts the
	// subset inserted for the first time; Eligible counts accepted
	// devices admitted by the serving criteria.
	Accepted int
	New      int
	Eligible int
	// RejectedIDs lists new devices turned away by the MaxDevices quota
	// (in input order); they were not registered.
	RejectedIDs []int64
	Version     int
	RoundID     uint64
}

// CheckInBatch registers or refreshes a batch of devices in one call —
// the registration-storm fast path: the registry groups the batch by
// shard so lock traffic is per-stripe-per-batch, not per-device, and the
// serving counters are bumped once per batch. Quota semantics match
// CheckIn per device.
func (c *Coordinator) CheckInBatch(infos []DeviceInfo) BatchCheckInResult {
	now := c.cfg.Clock()
	newCount, rejected := c.reg.CheckInBatch(infos, now, c.cfg.MaxDevices)
	res := BatchCheckInResult{
		Accepted:    len(infos) - len(rejected),
		New:         newCount,
		RejectedIDs: rejected,
		Version:     int(c.version.Load()),
		RoundID:     c.roundID.Load(),
	}
	var rejectedSet map[int64]struct{}
	if len(rejected) > 0 {
		rejectedSet = make(map[int64]struct{}, len(rejected))
		for _, id := range rejected {
			rejectedSet[id] = struct{}{}
		}
	}
	for i := range infos {
		if _, out := rejectedSet[infos[i].ID]; out {
			continue
		}
		if c.cfg.Criteria.Admit(infos[i].session()) {
			res.Eligible++
		}
	}
	c.counters.Counter("checkin_batch").Inc()
	c.counters.Counter("checkin_total").Add(int64(len(infos)))
	c.counters.Counter("checkin_eligible").Add(int64(res.Eligible))
	if len(rejected) > 0 {
		c.counters.Counter("checkin_rejected_quota").Add(int64(len(rejected)))
	}
	return res
}

// negotiate maps a device's reported state (plus an optional per-request
// capability override) to its transport decision. The scheduler's
// measured-bandwidth cohort map pins the cohort when the device has
// earned a measurement; otherwise the radio label classifies, exactly
// the pre-scheduler rule. Lock-free: one atomic fleet-view load.
func (c *Coordinator) negotiate(info DeviceInfo, acceptOverride []codec.Kind) transport.Decision {
	d := transport.Device{
		Platform: info.Platform,
		WiFi:     info.WiFi,
		Accept:   info.Accept,
		Cohort:   c.sched.Cohort(info.ID),
	}
	if acceptOverride != nil {
		d.Accept = acceptOverride
	}
	return c.negotiator.Negotiate(d)
}

// taskEstimate sizes the candidate task's wire cost for the deadline
// gate: the downlink blob under the cohort's broadcast scheme (the delta
// scheme when the device's base is still in the ring — what it would
// actually be served) plus the uplink update under the cohort's update
// scheme.
func (c *Coordinator) taskEstimate(dec transport.Decision, q TaskQuery) sched.TaskEstimate {
	if c.cfg.OmitParams {
		// No blob is ever served: the task's downlink cost is a handful
		// of headers, so only the uplink counts against the window.
		return sched.TaskEstimate{UpBytes: sched.WireSizeEstimate(dec.Policy.Update, c.dim)}
	}
	down := dec.Policy.Task
	// The base version is client-controlled: only a base the serving
	// path could actually answer with a delta (1..current, within the
	// cohort's depth window) earns the cheap delta costing — a bogus
	// future base would otherwise let a gated straggler buy admission
	// with a ~100x underestimated download and then be served the full
	// blob anyway.
	if depth := c.cfg.Transport.DepthFor(dec.Cohort); depth > 0 {
		if cur := c.version.Load(); q.BaseVersion > 0 && int64(q.BaseVersion) <= cur &&
			cur-int64(q.BaseVersion) < int64(depth) {
			down = dec.Policy.Delta
		}
	}
	return sched.TaskEstimate{
		DownBytes: sched.WireSizeEstimate(down, c.dim),
		UpBytes:   sched.WireSizeEstimate(dec.Policy.Update, c.dim),
	}
}

// ObserveTelemetry folds one update-path serving observation (measured
// uplink transfer, reported download timing and training duration) into
// the device's telemetry EWMAs. O(1), one registry shard lock.
func (c *Coordinator) ObserveTelemetry(id int64, o TelemetryObservation) {
	c.reg.Observe(id, o, c.cfg.Sched.Alpha, c.cfg.Clock())
}

// Scheduler exposes the scheduling plane (diagnostics, tests, benches).
func (c *Coordinator) Scheduler() *sched.Scheduler { return c.sched }

// rebuildSched refreshes the scheduler's fleet view from a registry
// telemetry census: the measured-bandwidth cohort map, the over-commit
// scale, and the /v1/status histograms. O(fleet) — called from the
// watchdog every Sched.RebuildEvery, never from a serving path.
func (c *Coordinator) rebuildSched(now time.Time) {
	c.rebuildMu.Lock()
	defer c.rebuildMu.Unlock()
	c.rebuildSchedLocked(now)
}

// rebuildSchedLocked is the census walk body; callers hold rebuildMu
// (which owns the reused schedCensus buffer).
func (c *Coordinator) rebuildSchedLocked(now time.Time) {
	if !c.sched.Enabled() {
		return
	}
	// Per-cohort wire costs: a lowbw device's typical task moves its
	// cohort's sparse encodings, so its straggler estimate must too —
	// matching what the per-request gate (taskEstimate) would charge it.
	ests := make(map[string]sched.TaskEstimate, 2)
	for _, cohort := range []string{transport.CohortDefault, transport.CohortLowBW} {
		p := c.cfg.Transport.PolicyFor(cohort)
		e := sched.TaskEstimate{UpBytes: sched.WireSizeEstimate(p.Update, c.dim)}
		if !c.cfg.OmitParams {
			e.DownBytes = sched.WireSizeEstimate(p.Task, c.dim)
		}
		ests[cohort] = e
	}
	c.schedCensus = c.reg.AppendSchedSamples(c.schedCensus[:0], c.cfg.Criteria, now, c.cfg.Sched.TelemetryTTL)
	c.sched.Rebuild(c.schedCensus, c.cfg.RoundDeadline, ests)
	c.counters.Counter("sched_rebuilds").Inc()
}

// spawnRebuildSched runs one census rebuild off the watchdog goroutine.
// Single-flight: if the previous walk is still running, this tick is
// skipped (sched_rebuild_skipped) — the watchdog's deadline enforcement
// must never wait on an O(fleet) scan, and queueing walks behind an
// overrun cadence would only dig the hole deeper.
func (c *Coordinator) spawnRebuildSched(now time.Time) {
	if !c.sched.Enabled() {
		return
	}
	if !c.rebuildMu.TryLock() {
		c.counters.Counter("sched_rebuild_skipped").Inc()
		return
	}
	c.rebuildWG.Add(1)
	go func() {
		defer c.rebuildWG.Done()
		defer c.rebuildMu.Unlock()
		c.rebuildSchedLocked(now)
	}()
}

// Heartbeat refreshes liveness for a checked-in device.
func (c *Coordinator) Heartbeat(id int64) error {
	c.counters.Counter("heartbeat_total").Inc()
	if !c.reg.Heartbeat(id, c.cfg.Clock()) {
		return ErrUnknownDevice
	}
	return nil
}

// RequestTask hands the device the current round's task with full
// broadcast semantics — the pre-negotiation entry point, kept for
// embedders and tests. Equivalent to RequestTaskWith(id, TaskQuery{
// Binary: true}).
func (c *Coordinator) RequestTask(deviceID int64) (Task, error) {
	return c.RequestTaskWith(deviceID, TaskQuery{Binary: true})
}

// RequestTaskWith hands the device the current round's task if the round
// has assignment budget and the device is live, idle, and admitted by
// the criteria, negotiating the wire schemes from the device's cohort
// and capability list. When the query carries a base version still in
// the version ring, the task ships a codec delta frame instead of the
// full vector. Returns ErrNoTask when the device should poll again
// later.
//
// The path is commit-free: it loads the serving pair once and touches
// only registry shard locks and the round's O(1) mutex, so a request
// issued mid-commit is answered immediately from the outgoing plane
// instead of stalling behind aggregation or a disk write.
func (c *Coordinator) RequestTaskWith(deviceID int64, q TaskQuery) (Task, error) {
	now := c.cfg.Clock()
	sv := c.serving.Load()
	r, bs := sv.round, sv.bcast
	info, tel, ok := c.reg.Snapshot(deviceID)
	if !ok {
		// Identity errors stay stable regardless of round budget.
		return Task{}, ErrUnknownDevice
	}
	// Age the telemetry before the gate reads it: a device idle past the
	// TTL loses its earned sample counts, so a stale "too slow" (or "fast
	// enough") verdict degrades to the unmeasured optimistic default
	// instead of pinning the device on week-old EWMAs.
	tel = tel.Decayed(now, c.cfg.Sched.TelemetryTTL)
	if !r.assignable(now) {
		c.counters.Counter("task_denied_round").Inc()
		return Task{}, ErrNoTask
	}
	// Negotiation is pure, so it runs before the assignment is taken: the
	// deadline gate needs the cohort's wire schemes to cost the task.
	dec := c.negotiate(info, q.Accept)
	if c.cfg.Mode == ModeSync && !c.sched.Admit(tel, r.Deadline.Sub(now), c.taskEstimate(dec, q)) {
		// The device is measured too slow to finish inside this round's
		// remaining window: assigning it anyway would burn over-commit
		// budget on a straggler. Async rounds skip the gate — FedBuff
		// welcomes slow devices' carry-over updates by design. Once the
		// consecutive-denial streak crosses ProbeEvery the device is
		// admitted anyway as a re-measurement probe (and keeps being
		// admitted until fresh telemetry resets the streak — a probe
		// that loses the assignment race below must retry, not wait out
		// another full streak): telemetry refreshes only on the update
		// path a gated device can't reach, so without probes a device
		// whose link improved would stay excluded on stale EWMAs forever.
		if !c.sched.ProbeDue(c.reg.NoteGateDenied(deviceID)) {
			c.counters.Counter("task_denied_deadline").Inc()
			return Task{}, ErrNoTask
		}
		c.counters.Counter("task_probe_admitted").Inc()
	}
	if !c.reg.Assign(deviceID, r.ID, c.cfg.Criteria, now) {
		c.counters.Counter("task_denied_device").Inc()
		return Task{}, ErrNoTask
	}
	if !r.tryAssign(deviceID, now) {
		// The budget filled (or the round went terminal) between the
		// pre-check and here: idle the device again and have it re-poll.
		c.reg.Release(deviceID)
		c.counters.Counter("task_denied_round").Inc()
		return Task{}, ErrNoTask
	}
	c.counters.Counter("task_assigned").Inc()
	c.counters.Counter("task_cohort_" + dec.Cohort).Inc()
	if dec.Fallback {
		// Counted here as well as at check-in: a per-request capability
		// echo can force the fallback on a device whose check-in looked
		// fine, and operators need to see that degradation.
		c.counters.Counter("transport_fallback_f32").Inc()
	}
	t := Task{
		RoundID:      r.ID,
		BaseVersion:  bs.version, // == r.BaseVersion: the pair swaps together
		ModelKind:    c.cfg.ModelKind,
		Dim:          len(bs.published),
		TaskScheme:   dec.Policy.Task,
		Cohort:       dec.Cohort,
		UpdateScheme: dec.Policy.Update,
		LocalSteps:   c.cfg.LocalSteps,
		Deadline:     r.Deadline,
	}
	if c.cfg.OmitParams {
		return t, nil
	}
	t.Params = bs.published
	if !q.Binary {
		// JSON clients take Params through the per-version JSON cache;
		// don't pay a blob encode they will never read.
		return t, nil
	}
	// Delta admissibility is the requesting cohort's depth window, not
	// the ring's: the ring is sized to the deepest cohort, so a shallow
	// cohort's device whose base is still physically in the ring but past
	// its own window takes the full broadcast like any aged base.
	depth := c.cfg.Transport.DepthFor(t.Cohort)
	if q.BaseVersion > 0 && q.BaseVersion <= bs.version && depth > 0 &&
		bs.version-q.BaseVersion < depth {
		// An up-to-date device gets a one-entry sparse "no change" frame
		// (~30 bytes) — but only when it can decode topk; a constrained
		// client keeps its negotiated delta scheme, never one outside
		// its advertised list.
		noChange := dec.Policy.Delta
		if acceptsKind(q.Accept, info.Accept, codec.KindTopK) {
			noChange = codec.TopK(1)
		}
		if blob, cached, ok := bs.deltaBlob(q.BaseVersion, dec.Policy.Delta, noChange); ok {
			if cached {
				c.counters.Counter("delta_cache_hits").Inc()
			} else {
				c.counters.Counter("delta_cache_misses").Inc()
			}
			t.EncodedParams = blob
			t.TaskScheme = dec.Policy.Delta
			t.DeltaBase = q.BaseVersion
			c.reg.NoteDelivered(deviceID, bs.version)
			return t, nil
		}
		// The base aged out of the ring (or negotiation disabled
		// deltas): fall back to the full broadcast.
		c.counters.Counter("delta_base_aged").Inc()
	} else if q.BaseVersion > 0 && q.BaseVersion <= bs.version {
		// A real base past the cohort's window (or deltas disabled):
		// the same aged-base signal, rejected before the ring lookup.
		c.counters.Counter("delta_base_aged").Inc()
	}
	blob, err := bs.fullBlob(dec.Policy.Task)
	if err != nil {
		// Encoding the broadcast failed (cannot happen for validated
		// schemes and in-range models, but the task would be useless):
		// idle the device again; the round's overcommit budget absorbs
		// the orphaned assignment like any dropped task.
		c.reg.Release(deviceID)
		return Task{}, err
	}
	t.EncodedParams = blob
	c.reg.NoteDelivered(deviceID, bs.version)
	return t, nil
}

// acceptsKind reports whether the effective capability list — the
// per-request override when present, else the check-in advertisement
// (nil = legacy client, decodes everything) — includes k.
func acceptsKind(override, advertised []codec.Kind, k codec.Kind) bool {
	list := override
	if list == nil {
		list = advertised
	}
	if list == nil {
		return true
	}
	for _, a := range list {
		if a == k {
			return true
		}
	}
	return false
}

// SubmitUpdate validates a device update and enqueues it for the ingest
// worker. A full queue returns ErrBusy (the load-shedding contract: devices
// retry with backoff rather than stalling the server). For payload-backed
// submissions the coordinator owns the pooled buffer from here on,
// whatever the outcome.
func (c *Coordinator) SubmitUpdate(sub Submission) error {
	if c.closed.Load() {
		sub.release()
		return ErrClosed
	}
	if dim := submissionDim(sub); dim != c.dim {
		sub.release()
		c.counters.Counter("update_rejected_dim").Inc()
		return fmt.Errorf("coord: update from device %d has %d params, want %d", sub.DeviceID, dim, c.dim)
	}
	// One NaN/Inf element would propagate through aggregation and
	// permanently poison the published model; the binary wire format can
	// carry such bit patterns (JSON can't), so every ingress is screened
	// here, the single choke point for all transports. Wire-form
	// submissions are screened on the payload bytes themselves (for q8
	// that is one float32 scale per 256 elements — no decode, no
	// allocation); overflow *during* aggregation is caught by the screen
	// fused into the commit pass.
	if !finite(sub.Weight) || !submissionFinite(sub) {
		sub.release()
		c.counters.Counter("update_rejected_nonfinite").Inc()
		return fmt.Errorf("coord: update from device %d contains non-finite values", sub.DeviceID)
	}
	select {
	case c.ingest <- sub:
		c.counters.Counter("update_enqueued").Inc()
		if sub.Payload != nil {
			c.counters.Counter("update_lazy_payload").Inc()
		}
		return nil
	default:
		sub.release()
		c.counters.Counter("update_rejected_busy").Inc()
		return ErrBusy
	}
}

// submissionDim is the update's element count, whichever form it carries.
func submissionDim(sub Submission) int {
	if sub.Delta != nil {
		return len(sub.Delta)
	}
	if sub.Payload != nil {
		return sub.Payload.Dim()
	}
	return 0
}

// submissionFinite screens the update for NaN/±Inf without materializing
// wire-form payloads.
func submissionFinite(sub Submission) bool {
	if sub.Delta != nil {
		return allFinite(sub.Delta)
	}
	return sub.Payload.AllFinite()
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func allFinite(v tensor.Vector) bool {
	for _, x := range v {
		if !finite(x) {
			return false
		}
	}
	return true
}

// ingestLoop is the single consumer of the update queue: it owns round
// mutation, aggregation, and publishing, so those never race.
func (c *Coordinator) ingestLoop() {
	defer c.loopWG.Done()
	for {
		select {
		case <-c.done:
			return
		case sub := <-c.ingest:
			c.apply(sub)
		}
	}
}

// watchdog enforces round deadlines even when no updates arrive, and
// periodically garbage-collects departed devices so a long-running server's
// registry doesn't grow without bound.
func (c *Coordinator) watchdog() {
	defer c.loopWG.Done()
	period := c.cfg.RoundDeadline / 10
	if period > 250*time.Millisecond {
		period = 250 * time.Millisecond
	}
	// The scheduler rebuild rides this ticker, so a rebuild cadence
	// faster than the deadline-driven tick must pull the tick down with
	// it — otherwise a sub-tick Sched.RebuildEvery would be silently
	// quantized to the tick period.
	if r := c.cfg.Sched.RebuildEvery; c.sched.Enabled() && r < period {
		period = r
	}
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	lastSweep := c.cfg.Clock()
	lastRebuild := lastSweep
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
			c.checkDeadline()
			now := c.cfg.Clock()
			if now.Sub(lastRebuild) >= c.cfg.Sched.RebuildEvery {
				lastRebuild = now
				c.spawnRebuildSched(now)
			}
			if now.Sub(lastSweep) >= c.cfg.DeviceTTL {
				lastSweep = now
				if n := c.reg.Sweep(2*c.cfg.DeviceTTL, now); n > 0 {
					c.counters.Counter("devices_swept").Add(int64(n))
				}
			}
		}
	}
}

// persistBackoff schedules the write-behind worker's retries: a failed
// flush (full disk, transient I/O error) is retried with exponential
// backoff instead of dropped — losing a snapshot's disk copy silently
// would defeat the write-behind journal's whole point. The schedule is
// short and bounded so a genuinely dead disk cannot wedge Close.
var persistBackoff = []time.Duration{5 * time.Millisecond, 25 * time.Millisecond, 125 * time.Millisecond}

// persistLoop is the write-behind worker: it flushes committed versions
// to the store's backing directory and prunes aged ones, off the commit
// pipeline's critical path. Barrier requests fsync the snapshot;
// failures retry with backoff (persist_retry) before surfacing as
// persist_error. It drains its queue on shutdown.
func (c *Coordinator) persistLoop() {
	defer c.persistWG.Done()
	for req := range c.persist {
		var err error
		for attempt := 0; ; attempt++ {
			if err = c.store.Persist(c.cfg.ModelName, req.version, req.barrier); err == nil {
				break
			}
			if attempt >= len(persistBackoff) {
				c.counters.Counter("persist_error").Inc()
				break
			}
			c.counters.Counter("persist_retry").Inc()
			time.Sleep(persistBackoff[attempt])
		}
		if err == nil && req.barrier {
			c.counters.Counter("persist_barrier").Inc()
		}
		if req.prune >= 1 {
			// Versions are sequential, so pruning v-Keep on every commit
			// retains exactly the newest KeepVersions snapshots.
			if c.store.Delete(c.cfg.ModelName, req.prune) == nil {
				c.counters.Counter("versions_pruned").Inc()
			}
		}
		c.counters.Counter("publish_pending").Add(-1)
	}
}

// apply folds one submission into the current round and triggers the
// commit pipeline when the round becomes ready.
func (c *Coordinator) apply(sub Submission) {
	now := c.cfg.Clock()
	// Each handed-out task is good for exactly one submission: consuming
	// the assignment here rejects duplicates (client retries after a
	// timed-out response) and unsolicited updates, either of which would
	// otherwise let one device over-weight the aggregate.
	assignedTo, held := c.reg.ConsumeAssignment(sub.DeviceID)
	if !held {
		sub.release()
		c.counters.Counter("update_rejected_unassigned").Inc()
		return
	}
	weight := sub.Weight
	if weight <= 0 {
		// Fall back to the example count the device reported at
		// check-in (the aggregator treats a still-missing weight as 1).
		if info, ok := c.reg.Get(sub.DeviceID); ok {
			weight = info.Weight
		}
	}
	// Fold into the current round, retrying once if a watchdog-triggered
	// commit swaps the round between the load and the record (in async
	// mode the update is a legitimate carry-over for the successor).
	// Staleness is recomputed per attempt: landing after a concurrent
	// commit means one more generation has passed, and both the
	// MaxStaleness bound and FedBuff's discount must see it.
	for attempt := 0; ; attempt++ {
		r := c.serving.Load().round
		version := int(c.version.Load())
		staleness := version - sub.BaseVersion
		if staleness < 0 {
			sub.release()
			c.counters.Counter("update_rejected_future").Inc()
			return
		}
		if c.cfg.Mode == ModeAsync && c.cfg.MaxStaleness > 0 && staleness > c.cfg.MaxStaleness {
			sub.release()
			c.counters.Counter("update_rejected_stale").Inc()
			return
		}
		u := aggregator.Update{
			ClientID:  sub.DeviceID,
			Delta:     sub.Delta,
			Payload:   sub.Payload,
			Weight:    weight,
			Staleness: staleness,
		}
		if c.cfg.Mode == ModeSync {
			// Sync rounds only accept their own cohort's updates.
			if assignedTo != r.ID || sub.RoundID != r.ID || sub.BaseVersion != r.BaseVersion {
				sub.release()
				c.counters.Counter("update_rejected_late").Inc()
				return
			}
		}
		if err := r.recordUpdate(u); err != nil {
			if attempt == 0 {
				// The round is mid-pipeline (aggregating) or already
				// terminal. Only the commit pipeline holds mu, so a
				// lock/unlock pair waits out any in-flight commit; after
				// it the serving pointer names the successor round and
				// the carry-over can land there — the behavior the old
				// blocking ingest path had.
				c.mu.Lock()
				c.mu.Unlock()
				continue
			}
			sub.release()
			c.counters.Counter("update_rejected_late").Inc()
			return
		}
		c.counters.Counter("update_accepted").Inc()
		if r.ready(now) {
			c.mu.Lock()
			c.commitLocked(r, now)
			c.mu.Unlock()
		}
		return
	}
}

// checkDeadline aggregates a quorum-complete round or abandons a starved
// one once its deadline passes. The fast path is a single atomic load: an
// idle server's watchdog tick takes no locks at all.
func (c *Coordinator) checkDeadline() {
	now := c.cfg.Clock()
	if now.UnixNano() < c.deadlineNS.Load() {
		// Mid-collection and far from the deadline; target-count commits
		// are the ingest worker's job, so there is nothing to do here.
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.serving.Load().round
	switch {
	case r.ready(now):
		c.commitLocked(r, now)
	case r.expired(now):
		c.abandonLocked(r, now)
	}
}

// commitLocked runs the staged commit pipeline for round r. Callers hold
// mu; r must have been loaded from the serving pointer.
//
// Stage 1 aggregates the round's updates into the global model with the
// sharded parallel reducer. Stage 2 builds the successor broadcast plane
// off to the side: clones the published snapshot, pre-encodes the default
// cohort's blob and the hot delta frames for the bases live devices hold,
// and extends the version ring. Stage 3 inserts the serialized snapshot
// into the store (in memory), swaps the serving pointer, and queues the
// disk write to the write-behind worker — so the only I/O a commit waits
// for is its own arithmetic.
func (c *Coordinator) commitLocked(r *Round, now time.Time) {
	sv := c.serving.Load()
	if sv.round != r {
		// A concurrent trigger (ingest vs watchdog) already committed or
		// abandoned this round.
		return
	}
	bs := sv.bcast
	updates, ok := r.beginAggregate()
	if !ok {
		c.counters.Counter("round_fsm_error").Inc()
		return
	}
	// Stage 0: the pre-reduce norm screen. Outlier updates (boosted
	// poison, norm overflow, NaN norms) never reach the reducer — or, in
	// hierarchical mode, the shard partial; the screen is a per-update
	// predicate, so per-cohort application stays sound where the robust
	// reducers would not. Rejected updates stay in the round buffer (it
	// still owns their payload releases at termination) but forfeit their
	// devices' telemetry trust. A round the screen empties aborts before
	// any mutation — rollback is the no-op case of the ErrNonFinite path.
	if c.screen.Enabled() {
		kept, rejected := c.screen.Apply(updates)
		if len(rejected) > 0 {
			c.counters.Counter("updates_screened_norm").Add(int64(len(rejected)))
			r.noteScreened(len(rejected))
			for _, u := range rejected {
				c.reg.NoteScreened(u.ClientID)
			}
			if len(kept) == 0 {
				c.abortCommitLocked(r, bs, nil, "round_aggregate_robust_error", now)
				return
			}
			updates = kept
		}
	}
	if c.cfg.Exchange != nil {
		// Hierarchical mode: reduce the round to a weighted partial and
		// ship it to the tier leader instead of committing locally.
		c.partialLocked(r, bs, updates, now)
		return
	}
	// Stage 1: parallel tree-reduction aggregation, with the non-finite
	// screen fused into each worker's range (the ingress screen in
	// SubmitUpdate only sees individual updates; finite deltas can still
	// sum past MaxFloat64 during aggregation, and a single Inf here
	// would be republished forever).
	params := c.global.Params()
	if err := c.strategy.Aggregate(params, updates); err != nil {
		if errors.Is(err, aggregator.ErrNonFinite) {
			// The aggregate was applied in place before the screen hit;
			// roll back to the last published snapshot (captured
			// pre-aggregation) before dropping the round.
			c.abortCommitLocked(r, bs, params, "round_aggregate_nonfinite", now)
			return
		}
		// Aggregation failure (dimension drift) dooms the cohort, not
		// the server: drop the round and keep serving. The strategy
		// validates before mutating, so there is nothing to roll back.
		c.abortCommitLocked(r, bs, nil, "round_aggregate_error", now)
		return
	}
	// Stage 1b: central DP — clip the aggregate round delta and add
	// seeded Gaussian noise (screen → reduce → clip → noise). Clip keeps
	// the delta finite even past float overflow (an infinite norm scales
	// it to zero) and the noise is finite by construction, so nothing
	// here can reintroduce what the fused non-finite screen just ruled
	// out.
	if c.dp != nil {
		eps, noised := c.dp.apply(params, bs.published, bs.version+1, len(updates))
		if noised {
			c.counters.Counter("dp_rounds").Inc()
			r.noteEpsilon(eps)
		}
	}
	if c.publishLocked(r, bs, bs.version+1, now) {
		c.counters.Counter("updates_aggregated").Add(int64(len(updates)))
	}
}

// publishLocked runs the commit pipeline's publish stages for freshly
// updated global params becoming version v (stage 2: successor
// broadcast plane; stage 3: store insert, serving swap, write-behind
// persist). Both the local aggregation path and the hierarchical
// install path end here. A failure is a publish failure: devices could
// not fetch the version we would be announcing, so the params roll back
// to the current plane's published snapshot and the round drops.
// Callers hold mu.
func (c *Coordinator) publishLocked(r *Round, bs *broadcastState, v int, now time.Time) bool {
	next, err := c.buildBroadcast(bs, v, now)
	if err != nil {
		c.abortCommitLocked(r, bs, c.global.Params(), "round_publish_error", now)
		return false
	}
	// The serialized snapshot lands in the store's memory before the
	// serving swap (tasks must never reference a version the store
	// cannot answer for); the disk write rides the write-behind queue.
	var buf bytes.Buffer
	if err := model.Save(c.global, &buf); err != nil {
		c.abortCommitLocked(r, bs, c.global.Params(), "round_publish_error", now)
		return false
	}
	if err := c.store.PutAt(c.cfg.ModelName, v, buf.Bytes()); err != nil {
		c.abortCommitLocked(r, bs, c.global.Params(), "round_publish_error", now)
		return false
	}
	if err := r.conclude(PhaseCommitted); err != nil {
		c.counters.Counter("round_fsm_error").Inc()
	}
	c.version.Store(int64(v))
	c.counters.Counter("rounds_committed").Inc()
	c.finishLocked(r, v, next, now)
	prune := 0
	if c.cfg.KeepVersions > 0 {
		if old := v - c.cfg.KeepVersions; old >= 1 {
			prune = old
		}
	}
	c.counters.Counter("publish_pending").Inc()
	barrier := c.cfg.PersistBarrier > 0 && v%c.cfg.PersistBarrier == 0
	c.persist <- persistReq{version: v, prune: prune, barrier: barrier}
	return true
}

// abortCommitLocked is the commit pipeline's failure exit: it rolls the
// in-place aggregation back to the published snapshot (when params is
// non-nil — pass nil for failures that precede any mutation), counts the
// failure, drops the round, and opens its successor on the unchanged
// broadcast plane. Callers hold mu.
func (c *Coordinator) abortCommitLocked(r *Round, bs *broadcastState, params tensor.Vector, counter string, now time.Time) {
	if params != nil {
		copy(params, bs.published)
	}
	c.counters.Counter(counter).Inc()
	_ = r.conclude(PhaseAbandoned)
	c.finishLocked(r, 0, bs, now)
}

// buildBroadcast assembles the broadcast plane for version v from the
// freshly aggregated global params: the published clone, the extended
// version ring, the default cohort's pre-encoded blob, and — using the
// registry's per-device delivered-version tracking — pre-encoded delta
// frames for the bases live devices actually hold, so the task storm
// after the swap starts on warm caches.
func (c *Coordinator) buildBroadcast(prev *broadcastState, v int, now time.Time) (*broadcastState, error) {
	// The published clone itself cannot come from the scratch pool: the
	// plane and the version ring retain it for DeltaHistory commits and
	// in-flight readers share it read-only, so recycling it would tear a
	// concurrent task response.
	published := c.global.Params().Clone()
	bs := newBroadcastState(v, published, nil, c.scratch)
	if c.cfg.OmitParams {
		return bs, nil
	}
	blob, err := codec.Encode(published, c.cfg.Transport.Default.Task)
	if err != nil {
		return nil, err
	}
	bs.setBlob(c.cfg.Transport.Default.Task, blob)
	if k := c.cfg.Transport.RingDepth(); k > 0 {
		// The ring shares the published snapshots (read-only), sized to
		// the deepest cohort's window; keep the newest K entries so delta
		// bases age out instead of accumulating a full model per commit
		// forever.
		ring := make([]ringEntry, 0, k)
		if len(prev.ring) > 0 {
			start := 0
			if extra := len(prev.ring) + 1 - k; extra > 0 {
				start = extra
			}
			ring = append(ring, prev.ring[start:]...)
		}
		bs.ring = append(ring, ringEntry{version: v, params: published})
		c.preencodeDeltas(bs, now)
	}
	return bs, nil
}

// preencodeDeltas warms the new plane's delta cache with the frames the
// fleet will request first: for every ring base some live device holds
// (per the registry's delivered-version census), encode the base→v diff
// under each cohort's delta scheme. Bases are spread across at most
// GOMAXPROCS workers, each reusing one scratch vector for all its
// bases, so commit-time memory is O(cores·dim) however deep the ring is
// — an unbounded goroutine-per-base fan-out would hold ring-depth
// full-dim vectors at once and defeat the scratch pool.
func (c *Coordinator) preencodeDeltas(bs *broadcastState, now time.Time) {
	held := c.reg.BaseVersions(now)
	schemes := c.cfg.Transport.DeltaSchemes()
	bases := make([]ringEntry, 0, len(bs.ring))
	for _, e := range bs.ring {
		if e.version != bs.version && held[e.version] > 0 {
			bases = append(bases, e)
		}
	}
	if len(bases) == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(bases) {
		workers = len(bases)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			diff := c.scratch.get()
			defer c.scratch.put(diff)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bases) {
					return
				}
				e := bases[i]
				copy(diff, bs.published)
				diff.Sub(e.params)
				for _, s := range schemes {
					blob, err := codec.EncodeDelta(diff, s)
					if err != nil {
						continue // that base falls back to lazy/full serving
					}
					bs.setDelta(e.version, s, blob)
					c.counters.Counter("delta_pre_encoded").Inc()
				}
			}
		}()
	}
	wg.Wait()
}

// abandonLocked drops a starved round and opens a fresh one on the same
// broadcast plane. Callers hold mu. The starvation predicate is
// re-validated atomically with the terminal flip: the ingest worker does
// not hold mu while accepting updates, so one may have reached quorum
// since the caller's expiry check — that round commits instead of
// dropping the accepted update.
func (c *Coordinator) abandonLocked(r *Round, now time.Time) {
	sv := c.serving.Load()
	if sv.round != r {
		return
	}
	if !r.expireIfStarved(now) {
		if r.ready(now) {
			c.commitLocked(r, now)
		}
		return
	}
	c.counters.Counter("rounds_abandoned").Inc()
	c.finishLocked(r, 0, sv.bcast, now)
}

// finishLocked records the terminal round and swaps in its successor on
// broadcast plane bs (the fresh plane after a commit, the unchanged one
// after an abandonment). Callers hold mu.
func (c *Coordinator) finishLocked(r *Round, newVersion int, bs *broadcastState, now time.Time) {
	// The round is terminal: its buffered updates have been aggregated
	// (or dropped), so the pooled wire payloads they carried go back to
	// the codec pool here — the single release point for accepted
	// updates, matching the single ingest worker that buffered them.
	r.releasePayloads()
	if c.cfg.Mode == ModeSync {
		// A terminal sync round voids its outstanding tasks — idle
		// exactly the devices it assigned (not an O(fleet) scan). In
		// async mode assignments survive the commit: carry-over
		// updates are still welcome, and the assignment is consumed
		// on submission (or overwritten when the device asks for new
		// work).
		for _, id := range r.takeAssigned() {
			c.reg.ReleaseIf(id, r.ID)
		}
	}
	summary := r.summary(newVersion, now)
	c.historyMu.Lock()
	c.history = append(c.history, summary)
	if len(c.history) > c.cfg.HistoryLimit {
		c.history = c.history[len(c.history)-c.cfg.HistoryLimit:]
	}
	c.historyMu.Unlock()
	next := c.newRound(r.ID+1, bs, now)
	c.serving.Store(&serving{round: next, bcast: bs})
	c.roundID.Store(next.ID)
	c.deadlineNS.Store(next.Deadline.UnixNano())
}

// Status reports the coordinator's full serving state (O(fleet): it scans
// the registry, so it belongs on dashboards, not hot paths). Like the
// task path it shares no mutex with the commit pipeline.
func (c *Coordinator) Status() StatusReport {
	now := c.cfg.Clock()
	census := c.reg.Census(c.cfg.Criteria, now)
	sv := c.serving.Load()
	rs := sv.round.status()
	recent := make([]RoundSummary, 0, 8)
	c.historyMu.Lock()
	if n := len(c.history); n > 0 {
		lo := n - 8
		if lo < 0 {
			lo = 0
		}
		recent = append(recent, c.history[lo:]...)
	}
	c.historyMu.Unlock()
	sr := c.sched.Report()
	// Stamp the registry half of the footprint section into the report
	// copy: the scheduler half was filled at the last rebuild; the
	// registry's is an O(1) layout estimate computed fresh here.
	sr.Footprint.Devices = census.Known
	sr.Footprint.RegistryBytes = c.reg.FootprintBytes()
	if census.Known > 0 {
		sr.Footprint.RegistryBytesPerDev =
			float64(sr.Footprint.RegistryBytes) / float64(census.Known)
	}
	st := StatusReport{
		Mode:        c.cfg.Mode,
		ModelKind:   c.cfg.ModelKind,
		ModelName:   c.cfg.ModelName,
		Version:     int(c.version.Load()),
		Round:       rs,
		Devices:     census,
		Scheduler:   sr,
		Counters:    c.counters.Snapshot(),
		Recent:      recent,
		Aggregation: c.strategy.Name(),
		// The published snapshot is immutable once swapped in, so the
		// norm scan is safe without mu (O(dim), but Status is a
		// dashboard path).
		ModelNorm: sv.bcast.published.Norm2(),
	}
	if c.dp != nil {
		st.Privacy = c.dp.report()
	}
	return st
}
