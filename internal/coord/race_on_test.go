//go:build race

package coord

// raceEnabled reports whether the race detector is instrumenting this
// build; sync.Pool-identity and allocation-accounting assertions skip
// themselves under it (the race runtime randomizes pool reuse).
const raceEnabled = true
