package coord

import (
	"math"
	"math/rand"
	"sync/atomic"

	"flint/internal/aggregator"
	"flint/internal/tensor"
)

// dpState is the commit pipeline's central-DP stage (§3.6 on the live
// path). It runs after the reduce, on the aggregate round delta — unlike
// the offline aggregator.DP wrapper, which clips each client update
// before a simulated reduce; on the live path the updates are pooled wire
// payloads, and clipping the single aggregate keeps the stage O(dim) with
// zero allocation. Order within a commit: screen → reduce → clip → noise.
type dpState struct {
	cfg DPConfig
	// sigma is the Gaussian noise multiplier σ = sqrt(2·ln(1/δ))/ε — the
	// inversion of the accountant's per-round bound, so one noised round
	// spends exactly the configured ε. Zero when Epsilon is 0 (clip-only).
	sigma float64
	// rounds counts noised commits — the accountant's composition input.
	// Atomic because /v1/status reads it off the commit path.
	rounds atomic.Int64
}

func newDPState(cfg DPConfig) *dpState {
	d := &dpState{cfg: cfg}
	if cfg.Epsilon > 0 {
		d.sigma = math.Sqrt(2*math.Log(1/cfg.Delta)) / cfg.Epsilon
	}
	return d
}

// apply clips the aggregate round delta (params − published) to ClipNorm
// and perturbs params with seeded Gaussian noise of standard deviation
// σ·ClipNorm/n, n being the kept update count. The noise stream is seeded
// from (Seed, version), not a shared mutable rng, so a commit's noise
// depends only on its configuration and committed version: two
// coordinators replaying the same rounds publish bit-identical models.
// Returns the cumulative ε after this round and whether noise was added
// (false in clip-only mode, which spends no budget).
func (d *dpState) apply(params, published tensor.Vector, version int, n int) (eps float64, noised bool) {
	var s float64
	for i := range params {
		diff := params[i] - published[i]
		s += diff * diff
	}
	if norm := math.Sqrt(s); norm > d.cfg.ClipNorm {
		// Scale the delta, not the params: the published base is not ours
		// to shrink. An overflowed (+Inf) norm yields factor 0 — the delta
		// vanishes and the round publishes the old params plus noise.
		factor := d.cfg.ClipNorm / norm
		for i := range params {
			params[i] = published[i] + (params[i]-published[i])*factor
		}
	}
	if d.sigma == 0 {
		return 0, false
	}
	std := d.sigma * d.cfg.ClipNorm / float64(n)
	rng := rand.New(rand.NewSource(d.cfg.Seed + int64(version)*1_000_003))
	for i := range params {
		params[i] += rng.NormFloat64() * std
	}
	return d.epsilonSpent(d.rounds.Add(1)), true
}

// epsilonSpent is the accountant: cumulative ε over `rounds` noised
// commits at δ, via the same strong-composition-style approximation the
// offline privacy-budget gate uses (aggregator.DPConfig.EpsilonApprox).
func (d *dpState) epsilonSpent(rounds int64) float64 {
	if rounds <= 0 || d.sigma == 0 {
		return 0
	}
	eps, err := aggregator.DPConfig{
		ClipNorm:        d.cfg.ClipNorm,
		NoiseMultiplier: d.sigma,
	}.EpsilonApprox(int(rounds), d.cfg.Delta)
	if err != nil {
		return math.Inf(1) // unreachable: rounds > 0 and Delta was validated
	}
	return eps
}

// PrivacyReport is /v1/status's view of the DP stage: the effective
// mechanism parameters and the accountant's running total.
type PrivacyReport struct {
	// ClipNorm is the aggregate-delta L2 cap.
	ClipNorm float64 `json:"clip_norm"`
	// NoiseMultiplier is σ; 0 means clip-only (no noise, no budget).
	NoiseMultiplier float64 `json:"noise_multiplier"`
	// Delta is the DP δ.
	Delta float64 `json:"delta"`
	// EpsilonPerRound is the configured per-round ε target.
	EpsilonPerRound float64 `json:"epsilon_per_round"`
	// DPRounds counts noised commits so far.
	DPRounds int64 `json:"dp_rounds"`
	// EpsilonSpent is the cumulative ε over DPRounds at Delta.
	EpsilonSpent float64 `json:"epsilon_spent"`
}

func (d *dpState) report() *PrivacyReport {
	rounds := d.rounds.Load()
	return &PrivacyReport{
		ClipNorm:        d.cfg.ClipNorm,
		NoiseMultiplier: d.sigma,
		Delta:           d.cfg.Delta,
		EpsilonPerRound: d.cfg.Epsilon,
		DPRounds:        rounds,
		EpsilonSpent:    d.epsilonSpent(rounds),
	}
}
