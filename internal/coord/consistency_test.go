package coord

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flint/internal/codec"
	"flint/internal/model"
	"flint/internal/tensor"
	"flint/internal/transport"
)

// groundTruth caches each published version's parameter vector, read from
// the store (which the commit pipeline fills before the serving swap).
type groundTruth struct {
	mu sync.Mutex
	c  *Coordinator
	v  map[int]tensor.Vector
}

// params returns the store's record of a published version. Errors are
// returned, not Fatal-ed: callers run on hammer goroutines, and FailNow
// must only be called from the test goroutine — failures travel the
// errs channel like every other hammer error.
func (g *groundTruth) params(version int) (tensor.Vector, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p, ok := g.v[version]; ok {
		return p, nil
	}
	m, err := g.c.Store().Get(g.c.Config().ModelName, version)
	if err != nil {
		return nil, errf("store has no v%d although a task referenced it: %v", version, err)
	}
	p := m.Params()
	g.v[version] = p
	return p, nil
}

// TestTaskSnapshotConsistencyUnderCommits is the broadcast plane's
// concurrency gauntlet (run with -race): many goroutines hammer the task
// path — full broadcasts and delta requests against every version they
// have seen — while committer goroutines keep the commit pipeline
// permanently busy. The invariant under test: a task's version metadata
// and its payload always come from the same published snapshot, i.e. the
// blob (or the delta applied to its base) reproduces the store's record
// of exactly the version the task names, bit for bit (raw64 end to end).
// Before the plane split this property required the coordinator mutex;
// now the hammers never touch any lock the commit pipeline holds.
func TestTaskSnapshotConsistencyUnderCommits(t *testing.T) {
	c, err := New(Config{
		Mode:           ModeAsync,
		ModelKind:      model.KindA,
		Seed:           1,
		TargetUpdates:  4,
		Quorum:         2,
		MaxInflight:    1 << 30,
		RoundDeadline:  time.Minute,
		StalenessAlpha: 0.5,
		QueueDepth:     256,
		KeepVersions:   -1, // every version stays checkable
		Transport: transport.Config{
			// Lossless both ways so reconstruction must be exact.
			Default:      transport.Policy{Task: codec.RawF64, Update: codec.RawF64, Delta: codec.RawF64},
			DeltaHistory: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		hammers      = 8
		committers   = 3
		targetCommit = 12
	)
	truth := &groundTruth{c: c, v: map[int]tensor.Vector{}}
	stop := make(chan struct{})
	var nextID atomic.Int64
	nextID.Store(1000)

	info := func(id int64) DeviceInfo {
		return DeviceInfo{ID: id, Model: "Pixel-6", Platform: "Android",
			WiFi: true, BatteryHigh: true, ModernOS: true, SessionSec: 3600, Weight: 10}
	}

	var wg sync.WaitGroup
	errs := make(chan error, hammers+committers)
	// Committers drive the pipeline: request, submit, repeat. Every
	// TargetUpdates accepted updates forces a full commit (aggregate,
	// snapshot build, store insert, swap). Even-indexed committers submit
	// in wire form through the pooled-payload path — encode, stream back
	// through DecodePayloadFrom, hand the pooled buffer to SubmitUpdate —
	// so commits continuously recycle pool buffers while the hammers read
	// published snapshots (the aliasing gauntlet for the zero-copy path).
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(id int64, wire bool) {
			defer wg.Done()
			c.CheckIn(info(id))
			for {
				select {
				case <-stop:
					return
				default:
				}
				task, err := c.RequestTask(id)
				if err != nil {
					continue // commit in flight or assignment pending
				}
				// A fresh delta per submission: SubmitUpdate retains the
				// slice until the round aggregates, and in async mode an
				// earlier round's entry can still be buffered (carry-over)
				// when this device is handed its next task — mutating a
				// shared buffer here would race with that aggregation.
				delta := tensor.NewVector(c.dim)
				for j := range delta {
					delta[j] = 1e-4 * float64(id%7+1) * float64(j%13+1)
				}
				sub := Submission{
					DeviceID:    id,
					RoundID:     task.RoundID,
					BaseVersion: task.BaseVersion,
					Weight:      10,
					Delta:       delta,
				}
				if wire {
					blob, err := codec.Encode(delta, codec.RawF64)
					if err != nil {
						errs <- errf("committer %d: encode: %v", id, err)
						return
					}
					p, err := codec.DecodePayloadFrom(bytes.NewReader(blob), c.dim)
					if err != nil {
						errs <- errf("committer %d: payload decode: %v", id, err)
						return
					}
					sub.Delta, sub.Payload = nil, p
				}
				_ = c.SubmitUpdate(sub) // takes payload ownership on every outcome
			}
		}(int64(i+1), i%2 == 0)
	}
	// Hammers: each request uses a fresh device (always assignable) and
	// randomly advertises a previously published base version, so full
	// blobs, cached deltas, pre-encoded deltas, and no-change frames all
	// flow while versions advance underneath.
	for i := 0; i < hammers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := nextID.Add(1)
				c.CheckIn(info(id))
				q := TaskQuery{Binary: true}
				if v := c.Version(); v > 1 && rng.Intn(2) == 0 {
					q.BaseVersion = 1 + rng.Intn(v)
				}
				task, err := c.RequestTaskWith(id, q)
				if err != nil {
					continue
				}
				want, err := truth.params(task.BaseVersion)
				if err != nil {
					errs <- err
					return
				}
				// The shared Params slice must be the published snapshot
				// of exactly the version the task names.
				if len(task.Params) != len(want) {
					errs <- errf("task v%d: params dim %d, want %d", task.BaseVersion, len(task.Params), len(want))
					return
				}
				for j := range want {
					if task.Params[j] != want[j] {
						errs <- errf("task v%d: params[%d] = %g, want %g (torn snapshot)", task.BaseVersion, j, task.Params[j], want[j])
						return
					}
				}
				// And the encoded payload must rebuild the same version.
				var got tensor.Vector
				if task.DeltaBase > 0 {
					if task.DeltaBase != q.BaseVersion {
						errs <- errf("task v%d: delta base %d, requested %d", task.BaseVersion, task.DeltaBase, q.BaseVersion)
						return
					}
					var base tensor.Vector
					if base, err = truth.params(task.DeltaBase); err != nil {
						errs <- err
						return
					}
					got, _, err = codec.ApplyDelta(base, task.EncodedParams)
				} else {
					got, _, err = codec.Decode(task.EncodedParams)
				}
				if err != nil {
					errs <- errf("task v%d: payload decode: %v", task.BaseVersion, err)
					return
				}
				// Full blobs are raw64 → exact. Delta reconstruction is
				// base + (published - base): lossless frames, but FP
				// re-association costs an ulp — a version mismatch would
				// be off by the ~1e-4 per-commit step, 8 orders louder
				// than the 1e-12 tolerance.
				for j := range want {
					if d := got[j] - want[j]; d > 1e-12 || d < -1e-12 {
						errs <- errf("task v%d (delta base %d): payload[%d] = %g, want %g (version/blob mismatch)",
							task.BaseVersion, task.DeltaBase, j, got[j], want[j])
						return
					}
				}
			}
		}(int64(i + 1))
	}

	// Generous budget: a single-core -race runner needs wall-clock for 12
	// full pipelines while 8 hammers compete for the same core.
	deadline := time.Now().Add(45 * time.Second)
	for c.Version() < 1+targetCommit && time.Now().Before(deadline) {
		select {
		case err := <-errs:
			close(stop)
			wg.Wait()
			t.Fatal(err)
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if v := c.Version(); v < 1+targetCommit {
		t.Fatalf("only %d commits happened under load, want >= %d", v-1, targetCommit)
	}
	// The hammer mix must actually have exercised the delta plane.
	if c.Counters().Counter("task_sent_delta").Value()+c.Counters().Counter("delta_cache_hits").Value()+
		c.Counters().Counter("delta_cache_misses").Value() == 0 {
		t.Fatal("no delta frames flowed during the consistency hammer")
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// TestPayloadAliasingUnderConcurrentCommits pins the pooled-payload
// lifetime contract with exact arithmetic (run with -race): four devices
// concurrently submit raw64 wire payloads whose nonzero coordinates are
// disjoint (device d owns j where j%devices == d), so FedAvg's result is
// independent of aggregation order and each committed version must equal
// a sequential reference bit for bit. If a pooled buffer were recycled
// while a round still reads it — the aliasing bug this guards against —
// a later round's bytes would bleed into an earlier aggregate and the
// exact comparison (or Release poisoning, or the race detector) fires.
// Rounds repeat so buffers released by round r are re-acquired by round
// r+1 while the store still serves r's snapshot.
func TestPayloadAliasingUnderConcurrentCommits(t *testing.T) {
	const (
		devices = 4
		rounds  = 6
	)
	c, err := New(Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          2,
		TargetUpdates: devices,
		Quorum:        devices,
		OverCommit:    1, // MaxAssign == devices: each device aggregates exactly once per round
		RoundDeadline: time.Minute,
		QueueDepth:    64,
		KeepVersions:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	name := c.Config().ModelName
	base, err := c.Store().Get(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := base.Params().Clone()
	for id := int64(1); id <= devices; id++ {
		c.CheckIn(testInfo(id))
	}

	for round := 0; round < rounds; round++ {
		deltas := make([]tensor.Vector, devices)
		for d := range deltas {
			delta := tensor.NewVector(c.dim)
			for j := d; j < c.dim; j += devices {
				delta[j] = 1e-3 * float64(round*devices+d+1)
			}
			deltas[d] = delta
		}
		errs := make(chan error, devices)
		var wg sync.WaitGroup
		for d := 0; d < devices; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				id := int64(d + 1)
				var task Task
				deadline := time.Now().Add(10 * time.Second)
				for {
					var err error
					if task, err = c.RequestTask(id); err == nil {
						break
					}
					if time.Now().After(deadline) {
						errs <- errf("device %d: no task before deadline: %v", id, err)
						return
					}
					time.Sleep(time.Millisecond)
				}
				blob, err := codec.Encode(deltas[d], codec.RawF64)
				if err != nil {
					errs <- errf("device %d: encode: %v", id, err)
					return
				}
				p, err := codec.DecodePayloadFrom(bytes.NewReader(blob), c.dim)
				if err != nil {
					errs <- errf("device %d: payload decode: %v", id, err)
					return
				}
				if err := c.SubmitUpdate(Submission{
					DeviceID:    id,
					RoundID:     task.RoundID,
					BaseVersion: task.BaseVersion,
					Weight:      1,
					Payload:     p,
				}); err != nil {
					errs <- errf("device %d: submit: %v", id, err)
				}
			}(d)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		want := round + 2 // versions are 1-based; round r publishes r+2
		eventually(t, 15*time.Second, func() bool { return c.Version() >= want },
			"round never committed")
		// Equal unit weights: alpha is exactly 1/devices = 0.25, and the
		// disjoint supports make the fold order irrelevant even in FP.
		for d := 0; d < devices; d++ {
			ref.AddScaled(1.0/devices, deltas[d])
		}
		m, err := c.Store().Get(name, want)
		if err != nil {
			t.Fatalf("store v%d: %v", want, err)
		}
		got := m.Params()
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("round %d: v%d params[%d] = %g, want %g (payload aliasing?)",
					round, want, j, got[j], ref[j])
			}
		}
	}
}

// TestWriteBehindPersistence pins the stage-3 contract: commits return
// before their disk write, versions are readable from the store
// immediately, publish_pending drains, and Close flushes every committed
// snapshot to the backing directory.
func TestWriteBehindPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := syncTestConfig()
	cfg.StoreDir = dir
	cfg.KeepVersions = -1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	name := c.Config().ModelName

	const rounds = 3
	for round := 0; round < rounds; round++ {
		base := c.Version()
		for id := int64(1); id <= 3; id++ {
			submitFor(t, c, id, join(t, c, id))
		}
		eventually(t, 5*time.Second, func() bool { return c.Version() == base+1 },
			"round never committed")
		// The new version is readable before any disk flush is forced.
		if _, err := c.Store().Get(name, base+1); err != nil {
			t.Fatalf("v%d not in store right after commit: %v", base+1, err)
		}
	}
	c.Close()
	if got := c.Counters().Counter("publish_pending").Value(); got != 0 {
		t.Fatalf("publish_pending = %d after Close, want 0", got)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, name+"-v*.fct"))
	if len(matches) != rounds+1 { // initial publish + one per committed round
		t.Fatalf("persisted %d snapshots, want %d: %v", len(matches), rounds+1, matches)
	}
}
