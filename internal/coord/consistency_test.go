package coord

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flint/internal/codec"
	"flint/internal/model"
	"flint/internal/tensor"
	"flint/internal/transport"
)

// groundTruth caches each published version's parameter vector, read from
// the store (which the commit pipeline fills before the serving swap).
type groundTruth struct {
	mu sync.Mutex
	c  *Coordinator
	v  map[int]tensor.Vector
}

// params returns the store's record of a published version. Errors are
// returned, not Fatal-ed: callers run on hammer goroutines, and FailNow
// must only be called from the test goroutine — failures travel the
// errs channel like every other hammer error.
func (g *groundTruth) params(version int) (tensor.Vector, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p, ok := g.v[version]; ok {
		return p, nil
	}
	m, err := g.c.Store().Get(g.c.Config().ModelName, version)
	if err != nil {
		return nil, errf("store has no v%d although a task referenced it: %v", version, err)
	}
	p := m.Params()
	g.v[version] = p
	return p, nil
}

// TestTaskSnapshotConsistencyUnderCommits is the broadcast plane's
// concurrency gauntlet (run with -race): many goroutines hammer the task
// path — full broadcasts and delta requests against every version they
// have seen — while committer goroutines keep the commit pipeline
// permanently busy. The invariant under test: a task's version metadata
// and its payload always come from the same published snapshot, i.e. the
// blob (or the delta applied to its base) reproduces the store's record
// of exactly the version the task names, bit for bit (raw64 end to end).
// Before the plane split this property required the coordinator mutex;
// now the hammers never touch any lock the commit pipeline holds.
func TestTaskSnapshotConsistencyUnderCommits(t *testing.T) {
	c, err := New(Config{
		Mode:           ModeAsync,
		ModelKind:      model.KindA,
		Seed:           1,
		TargetUpdates:  4,
		Quorum:         2,
		MaxInflight:    1 << 30,
		RoundDeadline:  time.Minute,
		StalenessAlpha: 0.5,
		QueueDepth:     256,
		KeepVersions:   -1, // every version stays checkable
		Transport: transport.Config{
			// Lossless both ways so reconstruction must be exact.
			Default:      transport.Policy{Task: codec.RawF64, Update: codec.RawF64, Delta: codec.RawF64},
			DeltaHistory: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		hammers      = 8
		committers   = 3
		targetCommit = 12
	)
	truth := &groundTruth{c: c, v: map[int]tensor.Vector{}}
	stop := make(chan struct{})
	var nextID atomic.Int64
	nextID.Store(1000)

	info := func(id int64) DeviceInfo {
		return DeviceInfo{ID: id, Model: "Pixel-6", Platform: "Android",
			WiFi: true, BatteryHigh: true, ModernOS: true, SessionSec: 3600, Weight: 10}
	}

	var wg sync.WaitGroup
	// Committers drive the pipeline: request, submit, repeat. Every
	// TargetUpdates accepted updates forces a full commit (aggregate,
	// snapshot build, store insert, swap).
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			c.CheckIn(info(id))
			for {
				select {
				case <-stop:
					return
				default:
				}
				task, err := c.RequestTask(id)
				if err != nil {
					continue // commit in flight or assignment pending
				}
				// A fresh delta per submission: SubmitUpdate retains the
				// slice until the round aggregates, and in async mode an
				// earlier round's entry can still be buffered (carry-over)
				// when this device is handed its next task — mutating a
				// shared buffer here would race with that aggregation.
				delta := tensor.NewVector(c.dim)
				for j := range delta {
					delta[j] = 1e-4 * float64(id%7+1) * float64(j%13+1)
				}
				_ = c.SubmitUpdate(Submission{
					DeviceID:    id,
					RoundID:     task.RoundID,
					BaseVersion: task.BaseVersion,
					Weight:      10,
					Delta:       delta,
				})
			}
		}(int64(i + 1))
	}
	// Hammers: each request uses a fresh device (always assignable) and
	// randomly advertises a previously published base version, so full
	// blobs, cached deltas, pre-encoded deltas, and no-change frames all
	// flow while versions advance underneath.
	errs := make(chan error, hammers)
	for i := 0; i < hammers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := nextID.Add(1)
				c.CheckIn(info(id))
				q := TaskQuery{Binary: true}
				if v := c.Version(); v > 1 && rng.Intn(2) == 0 {
					q.BaseVersion = 1 + rng.Intn(v)
				}
				task, err := c.RequestTaskWith(id, q)
				if err != nil {
					continue
				}
				want, err := truth.params(task.BaseVersion)
				if err != nil {
					errs <- err
					return
				}
				// The shared Params slice must be the published snapshot
				// of exactly the version the task names.
				if len(task.Params) != len(want) {
					errs <- errf("task v%d: params dim %d, want %d", task.BaseVersion, len(task.Params), len(want))
					return
				}
				for j := range want {
					if task.Params[j] != want[j] {
						errs <- errf("task v%d: params[%d] = %g, want %g (torn snapshot)", task.BaseVersion, j, task.Params[j], want[j])
						return
					}
				}
				// And the encoded payload must rebuild the same version.
				var got tensor.Vector
				if task.DeltaBase > 0 {
					if task.DeltaBase != q.BaseVersion {
						errs <- errf("task v%d: delta base %d, requested %d", task.BaseVersion, task.DeltaBase, q.BaseVersion)
						return
					}
					var base tensor.Vector
					if base, err = truth.params(task.DeltaBase); err != nil {
						errs <- err
						return
					}
					got, _, err = codec.ApplyDelta(base, task.EncodedParams)
				} else {
					got, _, err = codec.Decode(task.EncodedParams)
				}
				if err != nil {
					errs <- errf("task v%d: payload decode: %v", task.BaseVersion, err)
					return
				}
				// Full blobs are raw64 → exact. Delta reconstruction is
				// base + (published - base): lossless frames, but FP
				// re-association costs an ulp — a version mismatch would
				// be off by the ~1e-4 per-commit step, 8 orders louder
				// than the 1e-12 tolerance.
				for j := range want {
					if d := got[j] - want[j]; d > 1e-12 || d < -1e-12 {
						errs <- errf("task v%d (delta base %d): payload[%d] = %g, want %g (version/blob mismatch)",
							task.BaseVersion, task.DeltaBase, j, got[j], want[j])
						return
					}
				}
			}
		}(int64(i + 1))
	}

	// Generous budget: a single-core -race runner needs wall-clock for 12
	// full pipelines while 8 hammers compete for the same core.
	deadline := time.Now().Add(45 * time.Second)
	for c.Version() < 1+targetCommit && time.Now().Before(deadline) {
		select {
		case err := <-errs:
			close(stop)
			wg.Wait()
			t.Fatal(err)
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if v := c.Version(); v < 1+targetCommit {
		t.Fatalf("only %d commits happened under load, want >= %d", v-1, targetCommit)
	}
	// The hammer mix must actually have exercised the delta plane.
	if c.Counters().Counter("task_sent_delta").Value()+c.Counters().Counter("delta_cache_hits").Value()+
		c.Counters().Counter("delta_cache_misses").Value() == 0 {
		t.Fatal("no delta frames flowed during the consistency hammer")
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// TestWriteBehindPersistence pins the stage-3 contract: commits return
// before their disk write, versions are readable from the store
// immediately, publish_pending drains, and Close flushes every committed
// snapshot to the backing directory.
func TestWriteBehindPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := syncTestConfig()
	cfg.StoreDir = dir
	cfg.KeepVersions = -1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	name := c.Config().ModelName

	const rounds = 3
	for round := 0; round < rounds; round++ {
		base := c.Version()
		for id := int64(1); id <= 3; id++ {
			submitFor(t, c, id, join(t, c, id))
		}
		eventually(t, 5*time.Second, func() bool { return c.Version() == base+1 },
			"round never committed")
		// The new version is readable before any disk flush is forced.
		if _, err := c.Store().Get(name, base+1); err != nil {
			t.Fatalf("v%d not in store right after commit: %v", base+1, err)
		}
	}
	c.Close()
	if got := c.Counters().Counter("publish_pending").Value(); got != 0 {
		t.Fatalf("publish_pending = %d after Close, want 0", got)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, name+"-v*.fct"))
	if len(matches) != rounds+1 { // initial publish + one per committed round
		t.Fatalf("persisted %d snapshots, want %d: %v", len(matches), rounds+1, matches)
	}
}
