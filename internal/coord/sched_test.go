package coord

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flint/internal/availability"
	"flint/internal/codec"
	"flint/internal/model"
	"flint/internal/network"
	"flint/internal/sched"
	"flint/internal/tensor"
	"flint/internal/transport"
)

// slowTel/fastTel build telemetry observations that pin a device's
// measured downlink well below / above the default lowbw threshold
// (187.5 KB/s), with enough samples to beat any MinSamples gate.
func observeBps(c *Coordinator, id int64, bps float64) {
	for i := 0; i < 3; i++ {
		c.ObserveTelemetry(id, TelemetryObservation{
			UpBytes: int(bps), UpDur: time.Second,
			DownBytes: int(bps), DownDur: time.Second,
			Train: 50 * time.Millisecond,
		})
	}
}

// TestSchedulerCohortRemap pins the tentpole behavior: measured
// bandwidth overrides the radio label in transport classification — a
// slow "WiFi" device lands on the lowbw policy, a fast "cellular" device
// on the default policy — and /v1/status reports the remap census with
// per-cohort bandwidth histograms.
func TestSchedulerCohortRemap(t *testing.T) {
	cfg := syncTestConfig()
	cfg.TargetUpdates, cfg.Quorum = 8, 8
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	slowWiFi := testInfo(1) // WiFi label → default cohort by radio
	fastCell := testInfo(2)
	fastCell.WiFi = false // cellular label → lowbw cohort by radio
	fastCell.BatteryHigh = true

	// Before any measurement the radio label classifies.
	if res := c.CheckIn(slowWiFi); res.Cohort != transport.CohortDefault {
		t.Fatalf("unmeasured WiFi device cohort %q", res.Cohort)
	}
	if res := c.CheckIn(fastCell); res.Cohort != transport.CohortLowBW {
		t.Fatalf("unmeasured cellular device cohort %q", res.Cohort)
	}

	observeBps(c, 1, 20_000) // 0.16 Mbps: slow
	observeBps(c, 2, 2e6)    // 16 Mbps: fast
	c.rebuildSched(time.Now())

	if res := c.CheckIn(slowWiFi); res.Cohort != transport.CohortLowBW {
		t.Errorf("slow WiFi device cohort %q, want lowbw", res.Cohort)
	}
	if res := c.CheckIn(fastCell); res.Cohort != transport.CohortDefault {
		t.Errorf("fast cellular device cohort %q, want default", res.Cohort)
	}

	// The remap flows through to the task's negotiated wire schemes.
	task, err := c.RequestTask(1)
	if err != nil {
		t.Fatal(err)
	}
	if task.Cohort != transport.CohortLowBW {
		t.Errorf("slow WiFi task cohort %q", task.Cohort)
	}
	if want := c.Config().Transport.LowBW.Task; task.TaskScheme != want {
		t.Errorf("slow WiFi task scheme %v, want lowbw policy %v", task.TaskScheme, want)
	}

	st := c.Status()
	sr := st.Scheduler
	if !sr.Enabled || sr.Measured != 2 || sr.Remapped != 2 {
		t.Errorf("scheduler report: %+v", sr)
	}
	hist := 0
	for _, cs := range sr.Cohorts {
		for _, n := range cs.BandwidthHist {
			hist += n
		}
	}
	if hist != 2 {
		t.Errorf("histogram mass %d, want 2", hist)
	}
}

// TestSchedulerDeadlineGate: a device measured too slow to finish inside
// the round window is denied at assignment time in sync mode (counted in
// task_denied_deadline) but still served in async mode, where carry-over
// updates are welcome.
func TestSchedulerDeadlineGate(t *testing.T) {
	cfg := syncTestConfig()
	cfg.RoundDeadline = 2 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.CheckIn(testInfo(1))
	c.CheckIn(testInfo(2))
	c.CheckIn(testInfo(3))
	observeBps(c, 1, 50) // ~2 minutes to move one f32 task: hopeless
	observeBps(c, 2, 5e6)

	if _, err := c.RequestTask(1); !errors.Is(err, ErrNoTask) {
		t.Fatalf("slow device: err = %v, want ErrNoTask", err)
	}
	if got := c.Counters().Counter("task_denied_deadline").Value(); got != 1 {
		t.Fatalf("task_denied_deadline = %d, want 1", got)
	}
	if _, err := c.RequestTask(2); err != nil {
		t.Fatalf("fast device denied: %v", err)
	}
	if _, err := c.RequestTask(3); err != nil {
		t.Fatalf("unmeasured device denied: %v", err)
	}

	// Probe admission: the slow device's consecutive denials eventually
	// earn a re-measurement probe (ProbeEvery defaults to 8; one denial
	// already happened above), and a fresh observation resets the
	// streak so the cadence restarts.
	for i := 0; i < 6; i++ {
		if _, err := c.RequestTask(1); !errors.Is(err, ErrNoTask) {
			t.Fatalf("denial %d: err = %v, want ErrNoTask", i+2, err)
		}
	}
	if _, err := c.RequestTask(1); err != nil {
		t.Fatalf("8th consecutive denial not probe-admitted: %v", err)
	}
	if got := c.Counters().Counter("task_probe_admitted").Value(); got != 1 {
		t.Fatalf("task_probe_admitted = %d, want 1", got)
	}
	// The probe's update arrives with fast telemetry: streak resets and
	// the next rebuild admits the device normally.
	c.reg.Release(1)
	observeBps(c, 1, 5e6)
	c.rebuildSched(c.cfg.Clock())
	if _, err := c.RequestTask(1); err != nil {
		t.Fatalf("re-measured device still gated: %v", err)
	}

	// Async mode: the same hopeless telemetry is not a denial.
	acfg := Config{
		Mode: ModeAsync, ModelKind: model.KindA, Seed: 1,
		TargetUpdates: 64, RoundDeadline: 2 * time.Second,
		StalenessAlpha: 0.5, QueueDepth: 64,
	}
	ac, err := New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	ac.CheckIn(testInfo(1))
	observeBps(ac, 1, 50)
	if _, err := ac.RequestTask(1); err != nil {
		t.Fatalf("async slow device denied: %v", err)
	}
}

// TestSchedulerOverCommitProvisioning: after a rebuild over a
// half-straggler fleet, freshly opened sync rounds carry a proportionally
// larger assignment budget, clamped by MaxOverCommit.
func TestSchedulerOverCommitProvisioning(t *testing.T) {
	cfg := syncTestConfig()
	cfg.TargetUpdates, cfg.Quorum = 4, 4
	cfg.OverCommit = 1.0
	cfg.RoundDeadline = 2 * time.Second
	cfg.Sched.MinCensus = 4 // the test fleet is the census
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for id := int64(1); id <= 4; id++ {
		c.CheckIn(testInfo(id))
	}
	observeBps(c, 1, 5e6)
	observeBps(c, 2, 5e6)
	observeBps(c, 3, 50)
	observeBps(c, 4, 50)
	c.rebuildSched(time.Now())

	if got := c.sched.OverCommit(cfg.OverCommit); got != 2.0 {
		t.Fatalf("over-commit scale = %v, want 2.0", got)
	}
	bs := c.serving.Load().bcast
	r := c.newRound(7, bs, time.Now())
	if r.MaxAssign != 8 {
		t.Fatalf("provisioned MaxAssign = %d, want 8 (target 4 x 2.0)", r.MaxAssign)
	}
}

// TestAcceptChangesBetweenCheckins (transport negotiation edge case): a
// device that re-checks-in with a different capability list is served
// under the new list immediately — stale capabilities must not outlive
// the check-in that replaced them.
func TestAcceptChangesBetweenCheckins(t *testing.T) {
	cfg := syncTestConfig()
	cfg.TargetUpdates, cfg.Quorum = 8, 8
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	info := testInfo(1)
	info.Accept = []codec.Kind{codec.KindQ8, codec.KindF32}
	res := c.CheckIn(info)
	if res.Policy.Update != codec.Q8 {
		t.Fatalf("first check-in update scheme %v, want q8", res.Policy.Update)
	}
	task, err := c.RequestTaskWith(1, TaskQuery{Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	if task.UpdateScheme != codec.Q8 {
		t.Fatalf("task update scheme %v, want q8", task.UpdateScheme)
	}
	// Consume the assignment so the next request isn't a duplicate.
	submitFor(t, c, 1, task)
	eventually(t, 5*time.Second, func() bool {
		return c.Counters().Counter("update_accepted").Value() >= 1
	}, "first update never ingested")

	// The device "updates its app" and now only decodes f32.
	info.Accept = []codec.Kind{codec.KindF32}
	if res := c.CheckIn(info); res.Policy.Update != codec.F32 || res.Policy.Task != codec.F32 {
		t.Fatalf("second check-in policy %+v, want all-f32", res.Policy)
	}
	task2, err := c.RequestTaskWith(1, TaskQuery{Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	if task2.UpdateScheme != codec.F32 || task2.TaskScheme != codec.F32 {
		t.Fatalf("task after capability change: task=%v update=%v, want f32/f32",
			task2.TaskScheme, task2.UpdateScheme)
	}

	// An empty advertised list (garbage accept_schemes parsed to nothing)
	// forces the universal fallback and is counted.
	info.Accept = []codec.Kind{}
	before := c.Counters().Counter("transport_fallback_f32").Value()
	if res := c.CheckIn(info); res.Policy.Task != codec.F32 {
		t.Fatalf("empty-list policy %+v, want f32 fallback", res.Policy)
	}
	if got := c.Counters().Counter("transport_fallback_f32").Value(); got != before+1 {
		t.Fatalf("transport_fallback_f32 = %d, want %d", got, before+1)
	}
}

// TestDeltaCacheBoundedByRing (transport negotiation edge case): however
// devices mix base versions and capability lists, one broadcast plane's
// delta cache never holds more than ring-depth x scheme-count entries —
// the negotiated schemes all come from the cohort policies (plus the
// no-change topk:1 frame), so a hostile client cannot inflate the cache.
func TestDeltaCacheBoundedByRing(t *testing.T) {
	const dim = 64
	pool := newVecPool(dim)
	published := make(tensor.Vector, dim)
	for i := range published {
		published[i] = float64(i)
	}
	const ringDepth = 5
	ring := make([]ringEntry, 0, ringDepth)
	for v := 1; v <= ringDepth; v++ {
		p := published.Clone()
		p.Scale(float64(v))
		ring = append(ring, ringEntry{version: v, params: p})
	}
	bs := newBroadcastState(ringDepth, ring[ringDepth-1].params, ring, pool)

	schemes := []codec.Scheme{codec.Q8, {Kind: codec.KindTopK}, codec.F32}
	noChange := codec.TopK(1)
	for iter := 0; iter < 50; iter++ {
		for base := 1; base <= ringDepth+2; base++ { // +2: aged-out bases must not cache
			for _, s := range schemes {
				bs.deltaBlob(base, s, noChange)
			}
		}
	}
	entries := 0
	bs.deltas.Range(func(_, _ any) bool { entries++; return true })
	// Bases 1..ringDepth-1 x 3 schemes, plus the current-version
	// no-change frame (one scheme: every request maps to noChange).
	max := (ringDepth-1)*len(schemes) + 1
	if entries > max {
		t.Fatalf("delta cache holds %d entries, want <= %d", entries, max)
	}
	if entries == 0 {
		t.Fatal("delta cache empty: the hammer never encoded anything")
	}
}

// TestDeltaScratchReuse (snapshot GC pressure): the pool hands the same
// backing buffer out again after release, so steady-state delta encoding
// double-buffers instead of allocating per frame.
func TestDeltaScratchReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode runtime randomizes sync.Pool reuse")
	}
	p := newVecPool(8)
	v1 := p.get()
	if len(v1) != 8 {
		t.Fatalf("scratch len %d", len(v1))
	}
	p.put(v1)
	v2 := p.get()
	if &v1[0] != &v2[0] {
		t.Fatal("pool did not reuse the released buffer")
	}
	// Wrong-dim buffers are dropped, not poisoned into the pool.
	p.put(make(tensor.Vector, 3))
	v3 := p.get()
	if len(v3) != 8 {
		t.Fatalf("pool handed out a %d-dim buffer", len(v3))
	}
}

// TestFleetSchedulerChurn is the scheduling plane's end-to-end gauntlet:
// a fleet with trace-driven availability churn and simulated mixed
// bandwidth drives sync rounds over the live HTTP API. Every committed
// round must close within its deadline, the scheduler must measure and
// remap devices off their radio labels, and /v1/status must carry the
// per-cohort bandwidth histograms. (Eligibility at assignment time is
// structural: Registry.Assign re-validates the criteria atomically with
// the assignment, so 100% of assigned devices are eligible by
// construction — the test asserts assignments happened at all.)
func TestFleetSchedulerChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live fleet run")
	}
	cfg := Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 12,
		Quorum:        4,
		OverCommit:    1.3,
		RoundDeadline: 6 * time.Second,
		QueueDepth:    256,
		KeepVersions:  -1,
		Criteria:      availability.Criteria{RequireWiFi: true},
		Sched:         sched.Config{RebuildEvery: 150 * time.Millisecond, MinSamples: 1},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()

	bw := network.BandwidthModel{MedianMbps: 4, Sigma: 0.9, SlowFrac: 0.2, FloorMbps: 0.05}
	rep, err := RunFleet(FleetConfig{
		BaseURL:      srv.URL,
		Devices:      400,
		Rounds:       3,
		Seed:         7,
		ThinkTime:    15 * time.Millisecond,
		ComputeScale: 0.2,
		Churn:        true,
		TraceScale:   60,
		Bandwidth:    &bw,
		Timeout:      90 * time.Second,
		Client:       srv.Client(),
	})
	if err != nil {
		t.Fatalf("fleet: %v (report: %+v)", err, rep)
	}
	if rep.RoundsCommitted < 3 {
		t.Fatalf("committed %d rounds, want >= 3", rep.RoundsCommitted)
	}
	st := rep.FinalStatus
	committed := 0
	for _, r := range st.Recent {
		if r.Phase != PhaseCommitted {
			continue
		}
		committed++
		if r.Duration > cfg.RoundDeadline {
			t.Errorf("round %d closed in %s, past its %s deadline", r.ID, r.Duration, cfg.RoundDeadline)
		}
	}
	if committed < 3 {
		t.Fatalf("only %d committed rounds in history", committed)
	}
	if st.Counters["task_assigned"] < int64(3*cfg.TargetUpdates) {
		t.Errorf("task_assigned = %d, want >= %d", st.Counters["task_assigned"], 3*cfg.TargetUpdates)
	}
	sr := st.Scheduler
	if !sr.Enabled || sr.Measured == 0 {
		t.Fatalf("scheduler measured nothing: %+v", sr)
	}
	if sr.Remapped == 0 {
		t.Errorf("no device was remapped off its radio label (measured %d)", sr.Measured)
	}
	hist := 0
	for _, cs := range sr.Cohorts {
		for _, n := range cs.BandwidthHist {
			hist += n
		}
	}
	if hist == 0 {
		t.Error("per-cohort bandwidth histograms are empty")
	}
	t.Logf("churn fleet: %d rounds, %d/%d measured, %d remapped, over-commit x%.2f, deadline denials %d",
		rep.RoundsCommitted, sr.Measured, sr.Devices, sr.Remapped,
		sr.OverCommitScale, st.Counters["task_denied_deadline"])
}

// TestCommitDuringEligibilityChurn is the -race hammer: commits run
// while devices flap their eligibility attributes, telemetry, and
// capability lists under concurrent check-ins — the scheduler's rebuild,
// the negotiator, and the commit pipeline must share the fleet without a
// torn read. Run with -race (CI does).
func TestCommitDuringEligibilityChurn(t *testing.T) {
	cfg := Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 4,
		Quorum:        2,
		OverCommit:    2,
		RoundDeadline: 500 * time.Millisecond,
		QueueDepth:    256,
		Sched:         sched.Config{RebuildEvery: 10 * time.Millisecond, MinSamples: 1},
		Criteria:      availability.Criteria{RequireWiFi: true},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const devices = 48
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churners: re-check-in with flapping WiFi/battery and shifting
	// capability lists, feeding randomized telemetry.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := int64(rng.Intn(devices) + 1)
				info := testInfo(id)
				info.WiFi = rng.Intn(2) == 0
				info.BatteryHigh = rng.Intn(2) == 0
				if rng.Intn(2) == 0 {
					info.Accept = []codec.Kind{codec.KindF32, codec.KindQ8}
				}
				c.CheckIn(info)
				c.ObserveTelemetry(id, TelemetryObservation{
					UpBytes: 1000 + rng.Intn(1_000_000), UpDur: 10 * time.Millisecond,
					DownBytes: 1000 + rng.Intn(1_000_000), DownDur: 10 * time.Millisecond,
					Train: time.Duration(rng.Intn(50)) * time.Millisecond,
				})
			}
		}(g)
	}
	// Workers: pull tasks and submit updates so rounds keep committing.
	var accepted atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			delta := tensor.NewVector(c.dim)
			delta.Fill(0.0001)
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := int64(rng.Intn(devices) + 1)
				task, err := c.RequestTask(id)
				if err != nil {
					continue
				}
				if c.SubmitUpdate(Submission{
					DeviceID: id, RoundID: task.RoundID,
					BaseVersion: task.BaseVersion, Weight: 1, Delta: delta,
				}) == nil {
					accepted.Add(1)
				}
			}
		}(g)
	}
	// Reader: status snapshots interleave with everything above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Status()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()

	if c.Version() < 2 {
		t.Fatalf("no commit happened under churn (version %d, %d accepted)", c.Version(), accepted.Load())
	}
	if rep := c.Status().Scheduler; rep.Devices == 0 || rep.Measured == 0 {
		t.Fatalf("scheduler never measured the churning fleet: %+v", rep)
	}
}
