package coord

import (
	"sync"
	"sync/atomic"
	"time"

	"flint/internal/availability"
	"flint/internal/codec"
	"flint/internal/sched"
)

// DeviceInfo is the device-reported state carried by a check-in or
// heartbeat: identity, hardware model, and the session attributes the
// participation criteria filter on (§3.2).
type DeviceInfo struct {
	ID          int64
	Model       string
	Platform    string
	WiFi        bool
	BatteryHigh bool
	ModernOS    bool
	// SessionSec is the device's expected remaining foreground-session
	// length, matched against Criteria.MinSessionSec.
	SessionSec float64
	// Weight is the device's local example count, used as the fallback
	// aggregation weight when a submission omits its own.
	Weight float64
	// Accept lists the codec scheme kinds the device advertised it can
	// decode at check-in (nil = legacy client, assumed to decode all);
	// transport negotiation constrains cohort policies to it.
	Accept []codec.Kind
}

// session converts the reported state into the availability.Session shape
// Criteria.Admit understands.
func (d DeviceInfo) session() availability.Session {
	return availability.Session{
		ClientID:    d.ID,
		Device:      d.Model,
		WiFi:        d.WiFi,
		BatteryHigh: d.BatteryHigh,
		ModernOS:    d.ModernOS,
		Start:       0,
		End:         d.SessionSec,
	}
}

type deviceState struct {
	info     DeviceInfo
	lastSeen time.Time
	// assignedRound is the round the device currently holds a task for
	// (0 = idle).
	assignedRound uint64
	// baseVersion is the published model version last delivered to the
	// device (0 = never served params). The commit pipeline reads the
	// distribution of these to pre-encode the delta frames the next task
	// storm will actually ask for.
	baseVersion int
	// tel is the device's measured serving telemetry (EWMA link
	// throughput, reported task durations) — the scheduling plane's
	// ground truth, folded in on the update path and read at assignment
	// time and by the scheduler's periodic fleet census.
	tel sched.Telemetry
	// gateDenials counts consecutive deadline-gate rejections; every
	// Nth is admitted as a re-measurement probe, and any fresh
	// telemetry observation resets the streak.
	gateDenials int
}

// regShard is one lock stripe of the registry. Padding is omitted: shards
// hold maps, so false sharing on the header is negligible next to map work.
type regShard struct {
	mu   sync.Mutex
	devs map[int64]*deviceState
}

// Registry is a sharded in-memory device registry: check-in, heartbeat, and
// assignment bookkeeping are O(1) map operations under a per-shard mutex, so
// concurrent device traffic spreads across stripes instead of serializing on
// one lock.
type Registry struct {
	shards []regShard
	ttl    time.Duration
	// known counts devices currently in the registry (inserted and not
	// yet swept) — the O(1) input to quota admission, maintained
	// atomically because inserts race across shards.
	known atomic.Int64
}

// NewRegistry creates a registry with the given stripe count and liveness
// TTL.
func NewRegistry(shards int, ttl time.Duration) *Registry {
	if shards <= 0 {
		shards = 64
	}
	r := &Registry{shards: make([]regShard, shards), ttl: ttl}
	for i := range r.shards {
		r.shards[i].devs = make(map[int64]*deviceState)
	}
	return r
}

// shard hashes a device ID onto a stripe (Fibonacci multiplicative hash so
// sequential IDs still spread).
func (r *Registry) shard(id int64) *regShard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &r.shards[h%uint64(len(r.shards))]
}

// CheckIn upserts a device's state and stamps it live. It returns true if
// the device was new.
func (r *Registry) CheckIn(info DeviceInfo, now time.Time) bool {
	isNew, _ := r.TryCheckIn(info, now, 0)
	return isNew
}

// TryCheckIn is CheckIn with quota admission: when quota > 0, a device
// not already in the registry is admitted only while the known-device
// count stays within quota, and ok reports the verdict (re-check-ins of
// known devices always succeed — the quota bounds distinct devices, not
// requests). The count is reserved with an atomic add before the insert
// and rolled back on rejection, so concurrent check-ins across shards
// can't overshoot the cap; quota <= 0 disables the check.
func (r *Registry) TryCheckIn(info DeviceInfo, now time.Time, quota int) (isNew, ok bool) {
	s := r.shard(info.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, exists := s.devs[info.ID]; exists {
		d.info = info
		d.lastSeen = now
		return false, true
	}
	if n := r.known.Add(1); quota > 0 && n > int64(quota) {
		r.known.Add(-1)
		return true, false
	}
	s.devs[info.ID] = &deviceState{info: info, lastSeen: now}
	return true, true
}

// Known returns the current known-device count (inserted and not yet
// swept) — the same O(1) figure quota admission checks against.
func (r *Registry) Known() int {
	return int(r.known.Load())
}

// Heartbeat refreshes a device's liveness without changing its reported
// state. It returns false for unknown devices (they must check in first).
func (r *Registry) Heartbeat(id int64, now time.Time) bool {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok {
		return false
	}
	d.lastSeen = now
	return true
}

// Get returns a device's last reported state.
func (r *Registry) Get(id int64) (DeviceInfo, bool) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok {
		return DeviceInfo{}, false
	}
	return d.info, true
}

// Snapshot returns a device's reported state together with its measured
// telemetry in one shard critical section (the task-assignment path reads
// both).
func (r *Registry) Snapshot(id int64) (DeviceInfo, sched.Telemetry, bool) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok {
		return DeviceInfo{}, sched.Telemetry{}, false
	}
	return d.info, d.tel, true
}

// TelemetryObservation is one update-path serving observation: the
// server-measured uplink transfer plus whatever the device reported about
// its side of the task (download timing, training duration). Zero fields
// are skipped.
type TelemetryObservation struct {
	UpBytes int
	UpDur   time.Duration
	// DownBytes/DownDur are the device-reported task-download transfer.
	DownBytes int
	DownDur   time.Duration
	// Train is the device-reported local-training duration.
	Train time.Duration
}

// Observe folds one serving observation into the device's telemetry
// EWMAs and stamps the decay clock. O(1), one shard lock; unknown
// devices are ignored.
func (r *Registry) Observe(id int64, o TelemetryObservation, alpha float64, now time.Time) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok {
		return
	}
	d.tel.LastSample = now
	if o.UpBytes > 0 {
		d.tel.ObserveUplink(o.UpBytes, o.UpDur, alpha)
	}
	if o.DownBytes > 0 {
		d.tel.ObserveDownlink(o.DownBytes, o.DownDur, alpha)
	}
	if o.Train > 0 {
		d.tel.ObserveTask(o.Train, alpha)
	}
	// Fresh measurements restart the deadline-gate denial streak: the
	// next gate decision runs on this observation, not the stale one
	// that was being probed.
	d.gateDenials = 0
}

// NoteGateDenied records one deadline-gate rejection and returns the
// device's consecutive-denial streak (the probe-admission cadence input).
// O(1), one shard lock; unknown devices report 0.
func (r *Registry) NoteGateDenied(id int64) int {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok {
		return 0
	}
	d.gateDenials++
	return d.gateDenials
}

// SchedSamples snapshots every live device's telemetry for the
// scheduler's fleet-view rebuild, stamping each with its radio label and
// current criteria eligibility. Each sample is aged through
// Telemetry.Decayed with ttl, so a device idle past the TTL re-enters
// the cohort map as unmeasured instead of pinned to a stale verdict.
// O(fleet): it scans every shard, so it belongs in the maintenance loop
// (once per rebuild period), never on a serving path.
func (r *Registry) SchedSamples(c availability.Criteria, now time.Time, ttl time.Duration) []sched.DeviceSample {
	var out []sched.DeviceSample
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for id, d := range s.devs {
			if !r.live(d, now) {
				continue
			}
			out = append(out, sched.DeviceSample{
				ID:       id,
				WiFi:     d.info.WiFi,
				Eligible: c.Admit(d.info.session()),
				Tel:      d.tel.Decayed(now, ttl),
			})
		}
		s.mu.Unlock()
	}
	return out
}

// Eligible reports whether the device is known, live at now, idle, and
// admitted by the criteria: the read-only view of the predicate Assign
// applies atomically on the task-assignment path (tests and diagnostics
// use this; serving uses Assign).
func (r *Registry) Eligible(id int64, c availability.Criteria, now time.Time) bool {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok || d.assignedRound != 0 || !r.live(d, now) {
		return false
	}
	return c.Admit(d.info.session())
}

// Assign marks a live, admitted device as holding a task for round. It
// returns false if the device is unknown, stale, filtered, or already
// assigned — except that an assignment left over from an older round is
// overwritten: the device asking for new work means it abandoned the old
// task, and abandoned assignments must not pin devices forever.
func (r *Registry) Assign(id int64, round uint64, c availability.Criteria, now time.Time) bool {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok || d.assignedRound >= round || !r.live(d, now) || !c.Admit(d.info.session()) {
		return false
	}
	d.assignedRound = round
	d.lastSeen = now
	return true
}

// ConsumeAssignment atomically clears and returns the device's current
// assignment. ok is false when the device is unknown or holds no task —
// which is how duplicate and unsolicited submissions are rejected: each
// handed-out task is good for exactly one submission.
func (r *Registry) ConsumeAssignment(id int64) (round uint64, ok bool) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok || d.assignedRound == 0 {
		return 0, false
	}
	round = d.assignedRound
	d.assignedRound = 0
	return round, true
}

// Release returns a device to the idle pool (after its update is ingested,
// its round ends, or its task is abandoned).
func (r *Registry) Release(id int64) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.devs[id]; ok {
		d.assignedRound = 0
	}
}

// ReleaseIf idles the device only if it still holds a task for round,
// leaving newer assignments untouched.
func (r *Registry) ReleaseIf(id int64, round uint64) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.devs[id]; ok && d.assignedRound == round {
		d.assignedRound = 0
	}
}

// NoteScreened records that the norm screen rejected the device's update
// at commit: its telemetry trust is revoked (sample counts zeroed, EWMAs
// kept — see sched.Telemetry.Distrust), so the scheduling plane treats it
// as unmeasured until fresh honest transfers re-earn trust. O(1), one
// shard lock; unknown devices are ignored.
func (r *Registry) NoteScreened(id int64) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.devs[id]; ok {
		d.tel.Distrust()
	}
}

// NoteDelivered records the published version the device now holds (it
// was just served that version's full blob, or a delta rebuilding it).
// O(1), one shard lock; unknown devices are ignored.
func (r *Registry) NoteDelivered(id int64, version int) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.devs[id]; ok {
		d.baseVersion = version
	}
}

// BaseVersions counts live devices per last-delivered model version —
// the commit pipeline's view of which delta bases the fleet actually
// holds. O(fleet): it scans every shard, so it belongs in the commit
// pipeline (once per publish), never on a serving path.
func (r *Registry) BaseVersions(now time.Time) map[int]int {
	out := make(map[int]int)
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, d := range s.devs {
			if d.baseVersion > 0 && r.live(d, now) {
				out[d.baseVersion]++
			}
		}
		s.mu.Unlock()
	}
	return out
}

func (r *Registry) live(d *deviceState, now time.Time) bool {
	return r.ttl <= 0 || now.Sub(d.lastSeen) <= r.ttl
}

// Stats is a point-in-time census of the registry.
type Stats struct {
	Known    int // devices ever checked in and not swept
	Live     int // within the liveness TTL
	Eligible int // live, idle, and admitted by the criteria
	Assigned int // currently holding a task
}

// Census scans the registry (O(n), for /v1/status — the serving paths never
// call it).
func (r *Registry) Census(c availability.Criteria, now time.Time) Stats {
	var st Stats
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		st.Known += len(s.devs)
		for _, d := range s.devs {
			if !r.live(d, now) {
				continue
			}
			st.Live++
			if d.assignedRound != 0 {
				st.Assigned++
			} else if c.Admit(d.info.session()) {
				st.Eligible++
			}
		}
		s.mu.Unlock()
	}
	return st
}

// Sweep drops devices unseen past keep and returns how many were removed;
// production registries garbage-collect departed devices periodically. A
// held assignment does not protect a dead device — its task is void (a
// post-sweep submission is rejected as unassigned), and sparing it would
// let async-mode dropouts pin registry entries forever.
func (r *Registry) Sweep(keep time.Duration, now time.Time) int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for id, d := range s.devs {
			if now.Sub(d.lastSeen) > keep {
				delete(s.devs, id)
				n++
			}
		}
		s.mu.Unlock()
	}
	if n > 0 {
		r.known.Add(int64(-n))
	}
	return n
}
