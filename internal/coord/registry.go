package coord

import (
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"flint/internal/availability"
	"flint/internal/codec"
	"flint/internal/sched"
)

// DeviceInfo is the device-reported state carried by a check-in or
// heartbeat: identity, hardware model, and the session attributes the
// participation criteria filter on (§3.2).
type DeviceInfo struct {
	ID          int64
	Model       string
	Platform    string
	WiFi        bool
	BatteryHigh bool
	ModernOS    bool
	// SessionSec is the device's expected remaining foreground-session
	// length, matched against Criteria.MinSessionSec.
	SessionSec float64
	// Weight is the device's local example count, used as the fallback
	// aggregation weight when a submission omits its own.
	Weight float64
	// Accept lists the codec scheme kinds the device advertised it can
	// decode at check-in (nil = legacy client, assumed to decode all);
	// transport negotiation constrains cohort policies to it.
	Accept []codec.Kind
}

// session converts the reported state into the availability.Session shape
// Criteria.Admit understands.
func (d DeviceInfo) session() availability.Session {
	return availability.Session{
		ClientID:    d.ID,
		Device:      d.Model,
		WiFi:        d.WiFi,
		BatteryHigh: d.BatteryHigh,
		ModernOS:    d.ModernOS,
		Start:       0,
		End:         d.SessionSec,
	}
}

// deviceState flags (packed session attributes).
const (
	devWiFi = 1 << iota
	devBatteryHigh
	devModernOS
	// devAcceptKnown distinguishes "advertised a capability list" (even
	// an empty one — the unusable-list fallback signal) from a legacy
	// client that advertised nothing.
	devAcceptKnown
)

// deviceState is the registry's resident per-device record, laid out for
// a million-device census: session attributes packed into one flag byte,
// the capability list packed into a scheme-kind bitmask, timestamps as
// unix nanos instead of 24-byte time.Time values, and telemetry in its
// 32-byte compact form — ~104 bytes against the ~200-plus of the naive
// struct-of-API-types layout, stored by value in the shard map so there
// is no per-device heap object at all. Model/platform strings are
// interned registry-wide, so their bytes are shared across the fleet.
type deviceState struct {
	model, platform string // interned — header only, bytes shared
	lastSeenNS      int64
	// assignedRound is the round the device currently holds a task for
	// (0 = idle).
	assignedRound uint64
	sessionSec    float32
	weight        float32
	// baseVersion is the published model version last delivered to the
	// device (0 = never served params). The commit pipeline reads the
	// distribution of these to pre-encode the delta frames the next task
	// storm will actually ask for.
	baseVersion int32
	// gateDenials counts consecutive deadline-gate rejections; every
	// Nth is admitted as a re-measurement probe, and any fresh
	// telemetry observation resets the streak.
	gateDenials int32
	flags       uint8
	accept      uint8 // codec.Kind bitmask, valid when devAcceptKnown
	// tel is the device's measured serving telemetry (EWMA link
	// throughput, reported task durations) — the scheduling plane's
	// ground truth, folded in on the update path and read at assignment
	// time and by the scheduler's periodic fleet census.
	tel sched.TelemetryState
}

// setInfo overwrites the reported state (a check-in), leaving the
// serving bookkeeping (assignment, base version, telemetry) untouched.
func (d *deviceState) setInfo(info DeviceInfo, intern func(string) string) {
	d.model = intern(info.Model)
	d.platform = intern(info.Platform)
	d.sessionSec = float32(info.SessionSec)
	d.weight = float32(info.Weight)
	d.flags &^= devWiFi | devBatteryHigh | devModernOS | devAcceptKnown
	if info.WiFi {
		d.flags |= devWiFi
	}
	if info.BatteryHigh {
		d.flags |= devBatteryHigh
	}
	if info.ModernOS {
		d.flags |= devModernOS
	}
	if info.Accept != nil {
		d.flags |= devAcceptKnown
		d.accept = packAccept(info.Accept)
	} else {
		d.accept = 0
	}
}

// info reconstructs the public DeviceInfo view.
func (d *deviceState) info(id int64) DeviceInfo {
	out := DeviceInfo{
		ID:          id,
		Model:       d.model,
		Platform:    d.platform,
		WiFi:        d.flags&devWiFi != 0,
		BatteryHigh: d.flags&devBatteryHigh != 0,
		ModernOS:    d.flags&devModernOS != 0,
		SessionSec:  float64(d.sessionSec),
		Weight:      float64(d.weight),
	}
	if d.flags&devAcceptKnown != 0 {
		out.Accept = unpackAccept(d.accept)
	}
	return out
}

// session builds the Criteria.Admit input without materializing the
// Accept slice (the census hot loop calls this per device).
func (d *deviceState) session(id int64) availability.Session {
	return availability.Session{
		ClientID:    id,
		Device:      d.model,
		WiFi:        d.flags&devWiFi != 0,
		BatteryHigh: d.flags&devBatteryHigh != 0,
		ModernOS:    d.flags&devModernOS != 0,
		Start:       0,
		End:         float64(d.sessionSec),
	}
}

// packAccept folds a capability list into a scheme-kind bitmask.
// Negotiation is membership-based (transport.Negotiate builds a set), so
// the list's order is not state worth 24 bytes of slice header plus a
// heap array per device.
func packAccept(kinds []codec.Kind) uint8 {
	var mask uint8
	for _, k := range kinds {
		if k >= 1 && k <= 7 {
			mask |= 1 << uint(k)
		}
	}
	return mask
}

// unpackAccept expands the bitmask in kind-enum order. Always non-nil:
// an empty advertised list round-trips as empty, not legacy.
func unpackAccept(mask uint8) []codec.Kind {
	out := make([]codec.Kind, 0, 4)
	for k := codec.Kind(1); k <= 7; k++ {
		if mask&(1<<uint(k)) != 0 {
			out = append(out, k)
		}
	}
	return out
}

// regShard is one lock stripe of the registry. Padding is omitted: shards
// hold maps, so false sharing on the header is negligible next to map work.
type regShard struct {
	mu   sync.Mutex
	devs map[int64]deviceState
}

// Registry is a sharded in-memory device registry: check-in, heartbeat, and
// assignment bookkeeping are O(1) map operations under a per-shard mutex, so
// concurrent device traffic spreads across stripes instead of serializing on
// one lock. Device records are stored by value in the shard maps — no
// per-device heap allocation — with the compact deviceState layout.
type Registry struct {
	shards []regShard
	ttl    time.Duration
	// known counts devices currently in the registry (inserted and not
	// yet swept) — the O(1) input to quota admission, maintained
	// atomically because inserts race across shards.
	known atomic.Int64
	// interned deduplicates model/platform strings fleet-wide: a
	// million devices report a few hundred distinct hardware models, so
	// per-device string bytes are pure waste. sync.Map because the path
	// is read-mostly after warmup (one store per distinct string ever).
	interned sync.Map // string -> string
}

// NewRegistry creates a registry with the given stripe count and liveness
// TTL.
func NewRegistry(shards int, ttl time.Duration) *Registry {
	if shards <= 0 {
		shards = 64
	}
	r := &Registry{shards: make([]regShard, shards), ttl: ttl}
	for i := range r.shards {
		r.shards[i].devs = make(map[int64]deviceState)
	}
	return r
}

// intern returns the registry's canonical copy of s.
func (r *Registry) intern(s string) string {
	if s == "" {
		return ""
	}
	if v, ok := r.interned.Load(s); ok {
		return v.(string)
	}
	v, _ := r.interned.LoadOrStore(s, s)
	return v.(string)
}

// shardIndex hashes a device ID onto a stripe index (Fibonacci
// multiplicative hash so sequential IDs still spread).
func (r *Registry) shardIndex(id int64) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(len(r.shards)))
}

func (r *Registry) shard(id int64) *regShard {
	return &r.shards[r.shardIndex(id)]
}

// CheckIn upserts a device's state and stamps it live. It returns true if
// the device was new.
func (r *Registry) CheckIn(info DeviceInfo, now time.Time) bool {
	isNew, _ := r.TryCheckIn(info, now, 0)
	return isNew
}

// TryCheckIn is CheckIn with quota admission: when quota > 0, a device
// not already in the registry is admitted only while the known-device
// count stays within quota, and ok reports the verdict (re-check-ins of
// known devices always succeed — the quota bounds distinct devices, not
// requests). The count is reserved with an atomic add before the insert
// and rolled back on rejection, so concurrent check-ins across shards
// can't overshoot the cap; quota <= 0 disables the check.
func (r *Registry) TryCheckIn(info DeviceInfo, now time.Time, quota int) (isNew, ok bool) {
	s := r.shard(info.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	return r.checkInLocked(s, info, now, quota)
}

// checkInLocked is the upsert body shared by the single and batched
// check-in paths; the caller holds s.mu.
func (r *Registry) checkInLocked(s *regShard, info DeviceInfo, now time.Time, quota int) (isNew, ok bool) {
	if d, exists := s.devs[info.ID]; exists {
		d.setInfo(info, r.intern)
		d.lastSeenNS = now.UnixNano()
		s.devs[info.ID] = d
		return false, true
	}
	if n := r.known.Add(1); quota > 0 && n > int64(quota) {
		r.known.Add(-1)
		return true, false
	}
	var d deviceState
	d.setInfo(info, r.intern)
	d.lastSeenNS = now.UnixNano()
	s.devs[info.ID] = d
	return true, true
}

// CheckInBatch upserts a batch of devices, grouped by registry stripe so
// each shard's lock is taken once per batch instead of once per device —
// the registration-storm fast path a virtual-time load plane hits with
// thousands of check-ins per wire request. Quota semantics match
// TryCheckIn per device; rejected (new-over-quota) device IDs are
// returned in input order. newCount counts devices inserted.
func (r *Registry) CheckInBatch(infos []DeviceInfo, now time.Time, quota int) (newCount int, rejected []int64) {
	if len(infos) == 0 {
		return 0, nil
	}
	// Group input indices by stripe. For a batch much smaller than the
	// stripe count the grouping overhead is wasted; fall through to the
	// simple path there.
	if len(infos) < 8 {
		for _, info := range infos {
			isNew, ok := r.TryCheckIn(info, now, quota)
			if !ok {
				rejected = append(rejected, info.ID)
			} else if isNew {
				newCount++
			}
		}
		return newCount, rejected
	}
	groups := make([][]int32, len(r.shards))
	for i := range infos {
		si := r.shardIndex(infos[i].ID)
		groups[si] = append(groups[si], int32(i))
	}
	rejectedIdx := []int32{}
	for si, g := range groups {
		if len(g) == 0 {
			continue
		}
		s := &r.shards[si]
		s.mu.Lock()
		for _, i := range g {
			isNew, ok := r.checkInLocked(s, infos[i], now, quota)
			if !ok {
				rejectedIdx = append(rejectedIdx, i)
			} else if isNew {
				newCount++
			}
		}
		s.mu.Unlock()
	}
	if len(rejectedIdx) > 0 {
		// Report rejections in input order, not stripe order.
		sortInt32(rejectedIdx)
		rejected = make([]int64, len(rejectedIdx))
		for i, idx := range rejectedIdx {
			rejected[i] = infos[idx].ID
		}
	}
	return newCount, rejected
}

// sortInt32 is an insertion sort: rejection lists are empty or tiny, so
// pulling in sort.Slice's reflection machinery is not worth it.
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Known returns the current known-device count (inserted and not yet
// swept) — the same O(1) figure quota admission checks against.
func (r *Registry) Known() int {
	return int(r.known.Load())
}

// deviceFootprintBytes estimates the registry's resident cost of one
// device: the map entry (key + value) plus amortized bucket overhead.
// Interned string bytes are shared fleet-wide and excluded. A layout
// estimate, not heap truth — its job is making deviceState growth show
// up in /v1/status, not matching pprof byte-for-byte.
const deviceFootprintBytes = int64(8+unsafe.Sizeof(deviceState{})) + 16

// FootprintBytes estimates the registry's resident device-state bytes —
// the registry half of the /v1/status footprint section. O(1).
func (r *Registry) FootprintBytes() int64 {
	return r.known.Load() * deviceFootprintBytes
}

// Heartbeat refreshes a device's liveness without changing its reported
// state. It returns false for unknown devices (they must check in first).
func (r *Registry) Heartbeat(id int64, now time.Time) bool {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok {
		return false
	}
	d.lastSeenNS = now.UnixNano()
	s.devs[id] = d
	return true
}

// Get returns a device's last reported state.
func (r *Registry) Get(id int64) (DeviceInfo, bool) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok {
		return DeviceInfo{}, false
	}
	return d.info(id), true
}

// Snapshot returns a device's reported state together with its measured
// telemetry in one shard critical section (the task-assignment path reads
// both).
func (r *Registry) Snapshot(id int64) (DeviceInfo, sched.Telemetry, bool) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok {
		return DeviceInfo{}, sched.Telemetry{}, false
	}
	return d.info(id), d.tel.Telemetry(), true
}

// TelemetryObservation is one update-path serving observation: the
// server-measured uplink transfer plus whatever the device reported about
// its side of the task (download timing, training duration). Zero fields
// are skipped.
type TelemetryObservation struct {
	UpBytes int
	UpDur   time.Duration
	// DownBytes/DownDur are the device-reported task-download transfer.
	DownBytes int
	DownDur   time.Duration
	// Train is the device-reported local-training duration.
	Train time.Duration
}

// Observe folds one serving observation into the device's telemetry
// EWMAs and stamps the decay clock. O(1), one shard lock; unknown
// devices are ignored.
func (r *Registry) Observe(id int64, o TelemetryObservation, alpha float64, now time.Time) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok {
		return
	}
	d.tel.Touch(now)
	if o.UpBytes > 0 {
		d.tel.ObserveUplink(o.UpBytes, o.UpDur, alpha)
	}
	if o.DownBytes > 0 {
		d.tel.ObserveDownlink(o.DownBytes, o.DownDur, alpha)
	}
	if o.Train > 0 {
		d.tel.ObserveTask(o.Train, alpha)
	}
	// Fresh measurements restart the deadline-gate denial streak: the
	// next gate decision runs on this observation, not the stale one
	// that was being probed.
	d.gateDenials = 0
	s.devs[id] = d
}

// NoteGateDenied records one deadline-gate rejection and returns the
// device's consecutive-denial streak (the probe-admission cadence input).
// O(1), one shard lock; unknown devices report 0.
func (r *Registry) NoteGateDenied(id int64) int {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok {
		return 0
	}
	if d.gateDenials < 1<<30 {
		d.gateDenials++
		s.devs[id] = d
	}
	return int(d.gateDenials)
}

// AppendSchedSamples snapshots every live device's telemetry for the
// scheduler's fleet-view rebuild into out (reusing its capacity — at a
// million-device census the sample buffer is tens of megabytes, and
// reallocating it every rebuild period would be most of the rebuild's
// allocation bill). Each sample is stamped with its radio label and
// current criteria eligibility, and aged through Telemetry.Decayed with
// ttl, so a device idle past the TTL re-enters the cohort map as
// unmeasured instead of pinned to a stale verdict.
//
// The walk is sharded, not a full-stop snapshot: each stripe's lock is
// held only while that stripe is copied, so check-in/task/update traffic
// on the other stripes never stalls behind the census — and the caller
// runs the walk off the watchdog tick, so deadline enforcement never
// waits on it either.
func (r *Registry) AppendSchedSamples(out []sched.DeviceSample, c availability.Criteria, now time.Time, ttl time.Duration) []sched.DeviceSample {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for id, d := range s.devs {
			if !r.live(&d, now) {
				continue
			}
			out = append(out, sched.DeviceSample{
				ID:       id,
				WiFi:     d.flags&devWiFi != 0,
				Eligible: c.Admit(d.session(id)),
				Tel:      d.tel.Telemetry().Decayed(now, ttl),
			})
		}
		s.mu.Unlock()
	}
	return out
}

// SchedSamples is AppendSchedSamples into a fresh buffer (tests and
// one-shot callers; the coordinator's rebuild loop reuses its own).
func (r *Registry) SchedSamples(c availability.Criteria, now time.Time, ttl time.Duration) []sched.DeviceSample {
	return r.AppendSchedSamples(nil, c, now, ttl)
}

// Eligible reports whether the device is known, live at now, idle, and
// admitted by the criteria: the read-only view of the predicate Assign
// applies atomically on the task-assignment path (tests and diagnostics
// use this; serving uses Assign).
func (r *Registry) Eligible(id int64, c availability.Criteria, now time.Time) bool {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok || d.assignedRound != 0 || !r.live(&d, now) {
		return false
	}
	return c.Admit(d.session(id))
}

// Assign marks a live, admitted device as holding a task for round. It
// returns false if the device is unknown, stale, filtered, or already
// assigned — except that an assignment left over from an older round is
// overwritten: the device asking for new work means it abandoned the old
// task, and abandoned assignments must not pin devices forever.
func (r *Registry) Assign(id int64, round uint64, c availability.Criteria, now time.Time) bool {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok || d.assignedRound >= round || !r.live(&d, now) || !c.Admit(d.session(id)) {
		return false
	}
	d.assignedRound = round
	d.lastSeenNS = now.UnixNano()
	s.devs[id] = d
	return true
}

// ConsumeAssignment atomically clears and returns the device's current
// assignment. ok is false when the device is unknown or holds no task —
// which is how duplicate and unsolicited submissions are rejected: each
// handed-out task is good for exactly one submission.
func (r *Registry) ConsumeAssignment(id int64) (round uint64, ok bool) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[id]
	if !ok || d.assignedRound == 0 {
		return 0, false
	}
	round = d.assignedRound
	d.assignedRound = 0
	s.devs[id] = d
	return round, true
}

// Release returns a device to the idle pool (after its update is ingested,
// its round ends, or its task is abandoned).
func (r *Registry) Release(id int64) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.devs[id]; ok && d.assignedRound != 0 {
		d.assignedRound = 0
		s.devs[id] = d
	}
}

// ReleaseIf idles the device only if it still holds a task for round,
// leaving newer assignments untouched.
func (r *Registry) ReleaseIf(id int64, round uint64) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.devs[id]; ok && d.assignedRound == round {
		d.assignedRound = 0
		s.devs[id] = d
	}
}

// NoteScreened records that the norm screen rejected the device's update
// at commit: its telemetry trust is revoked (sample counts zeroed, EWMAs
// kept — see sched.Telemetry.Distrust), so the scheduling plane treats it
// as unmeasured until fresh honest transfers re-earn trust. O(1), one
// shard lock; unknown devices are ignored.
func (r *Registry) NoteScreened(id int64) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.devs[id]; ok {
		d.tel.Distrust()
		s.devs[id] = d
	}
}

// NoteDelivered records the published version the device now holds (it
// was just served that version's full blob, or a delta rebuilding it).
// O(1), one shard lock; unknown devices are ignored.
func (r *Registry) NoteDelivered(id int64, version int) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.devs[id]; ok {
		d.baseVersion = int32(version)
		s.devs[id] = d
	}
}

// BaseVersions counts live devices per last-delivered model version —
// the commit pipeline's view of which delta bases the fleet actually
// holds. O(fleet): it scans every shard, so it belongs in the commit
// pipeline (once per publish), never on a serving path.
func (r *Registry) BaseVersions(now time.Time) map[int]int {
	out := make(map[int]int)
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, d := range s.devs {
			if d.baseVersion > 0 && r.live(&d, now) {
				out[int(d.baseVersion)]++
			}
		}
		s.mu.Unlock()
	}
	return out
}

func (r *Registry) live(d *deviceState, now time.Time) bool {
	return r.ttl <= 0 || now.UnixNano()-d.lastSeenNS <= int64(r.ttl)
}

// Stats is a point-in-time census of the registry.
type Stats struct {
	Known    int // devices ever checked in and not swept
	Live     int // within the liveness TTL
	Eligible int // live, idle, and admitted by the criteria
	Assigned int // currently holding a task
}

// Census scans the registry (O(n), for /v1/status — the serving paths never
// call it).
func (r *Registry) Census(c availability.Criteria, now time.Time) Stats {
	var st Stats
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		st.Known += len(s.devs)
		for id, d := range s.devs {
			if !r.live(&d, now) {
				continue
			}
			st.Live++
			if d.assignedRound != 0 {
				st.Assigned++
			} else if c.Admit(d.session(id)) {
				st.Eligible++
			}
		}
		s.mu.Unlock()
	}
	return st
}

// Sweep drops devices unseen past keep and returns how many were removed;
// production registries garbage-collect departed devices periodically. A
// held assignment does not protect a dead device — its task is void (a
// post-sweep submission is rejected as unassigned), and sparing it would
// let async-mode dropouts pin registry entries forever.
func (r *Registry) Sweep(keep time.Duration, now time.Time) int {
	n := 0
	nowNS := now.UnixNano()
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for id, d := range s.devs {
			if nowNS-d.lastSeenNS > int64(keep) {
				delete(s.devs, id)
				n++
			}
		}
		s.mu.Unlock()
	}
	if n > 0 {
		r.known.Add(int64(-n))
	}
	return n
}
