package coord

import (
	"sync"

	"flint/internal/codec"
	"flint/internal/tensor"
)

// broadcastState is the coordinator's immutable broadcast plane: one
// published model version and everything the task-serving path needs to
// ship it — the parameter snapshot, the per-scheme encoded blob cache,
// the delta-base version ring, and the per-(base, scheme) delta-frame
// cache. The commit pipeline builds the next broadcastState off to the
// side (pre-encoding the hot blobs and deltas), then publishes it with a
// single atomic pointer swap; readers load the pointer once and see a
// perfectly consistent version↔payload pairing, with no lock shared with
// the commit path.
//
// The scalar fields and ring are frozen at publish. The two caches keep
// filling lazily after publish (a rare cohort's scheme, an odd delta
// base) through sync.Map, whose loads are lock-free for keys that exist —
// the common case, since the default cohort's blob and the fleet's hot
// delta bases are pre-encoded before the swap. Concurrent lazy fills may
// duplicate an encode; both produce identical bytes and one wins.
type broadcastState struct {
	// version is the published model version this plane serves.
	version int
	// published is the immutable parameter snapshot at version; tasks
	// share it read-only, so serving never copies.
	published tensor.Vector
	// ring retains the last Transport.DeltaHistory published versions
	// (ascending, newest last — including this one) as delta-broadcast
	// bases. Entries share published snapshots; all read-only.
	ring []ringEntry

	// blobs caches `published` encoded per broadcast scheme
	// (codec.Scheme → []byte).
	blobs sync.Map
	// deltas caches encoded delta frames from a ring base to `version`
	// (deltaKey → []byte).
	deltas sync.Map
	// scratch recycles the transient diff vectors delta encoding needs
	// (shared with the owning coordinator; nil falls back to allocating,
	// for planes built bare in tests).
	scratch *vecPool
}

// ringEntry is one retained published version.
type ringEntry struct {
	version int
	params  tensor.Vector
}

// vecPool recycles full-dim work vectors for the transient delta-encode
// diffs (commit-time pre-encoding and the lazy serving-path fill). The
// commit pipeline is serialized under the coordinator mutex and lazy
// fills are rare, so in steady state the pool double-buffers: the same
// one or two vectors cycle forever instead of a fresh dim-sized
// allocation per encoded frame. Retained snapshots (the published clone,
// ring entries) must NOT come from here — pool vectors are overwritten on
// reuse, and a retained one would tear under a concurrent reader.
type vecPool struct {
	dim  int
	pool sync.Pool
}

func newVecPool(dim int) *vecPool {
	p := &vecPool{dim: dim}
	p.pool.New = func() any { return make(tensor.Vector, dim) }
	return p
}

// get returns a dim-sized vector with undefined contents.
func (p *vecPool) get() tensor.Vector { return p.pool.Get().(tensor.Vector) }

// put returns a vector to the pool; the caller must not touch it after.
func (p *vecPool) put(v tensor.Vector) {
	if len(v) == p.dim {
		p.pool.Put(v)
	}
}

// deltaKey addresses one cached delta frame: the base it applies against
// and the scheme it is encoded with (the target version is implicit — the
// cache lives inside one broadcastState).
type deltaKey struct {
	base   int
	scheme codec.Scheme
}

// newBroadcastState freezes a published snapshot into a broadcast plane.
func newBroadcastState(version int, published tensor.Vector, ring []ringEntry, scratch *vecPool) *broadcastState {
	return &broadcastState{version: version, published: published, ring: ring, scratch: scratch}
}

// setBlob pre-populates the full-broadcast cache (commit pipeline, before
// the plane is published).
func (bs *broadcastState) setBlob(s codec.Scheme, blob []byte) { bs.blobs.Store(s, blob) }

// setDelta pre-populates the delta cache (commit pipeline, before the
// plane is published).
func (bs *broadcastState) setDelta(base int, s codec.Scheme, blob []byte) {
	bs.deltas.Store(deltaKey{base: base, scheme: s}, blob)
}

// fullBlob returns the published vector encoded under s, paying the
// encode at most once per (version, scheme) — and never for the default
// cohort, whose blob the commit pipeline pre-encoded.
func (bs *broadcastState) fullBlob(s codec.Scheme) ([]byte, error) {
	if blob, ok := bs.blobs.Load(s); ok {
		return blob.([]byte), nil
	}
	blob, err := codec.Encode(bs.published, s)
	if err != nil {
		return nil, err
	}
	actual, _ := bs.blobs.LoadOrStore(s, blob)
	return actual.([]byte), nil
}

// baseParams looks the base version up in the ring.
func (bs *broadcastState) baseParams(base int) (tensor.Vector, bool) {
	for _, e := range bs.ring {
		if e.version == base {
			return e.params, true
		}
	}
	return nil, false
}

// deltaBlob returns the delta frame base→version under s, encoding and
// caching it per (base, scheme) on first use. A base equal to the current
// version is encoded under noChange instead (the caller picks the
// cheapest scheme the device can decode for an all-zero diff). cached
// reports whether the frame came from the cache; ok is false when the
// base is no longer in the version ring (or the encode failed).
func (bs *broadcastState) deltaBlob(base int, s, noChange codec.Scheme) (blob []byte, cached, ok bool) {
	if base == bs.version {
		s = noChange
	}
	key := deltaKey{base: base, scheme: s}
	if blob, ok := bs.deltas.Load(key); ok {
		return blob.([]byte), true, true
	}
	baseParams, found := bs.baseParams(base)
	if !found || len(baseParams) != len(bs.published) {
		return nil, false, false
	}
	var diff tensor.Vector
	if bs.scratch != nil && bs.scratch.dim == len(bs.published) {
		diff = bs.scratch.get()
		defer bs.scratch.put(diff)
		copy(diff, bs.published)
	} else {
		diff = bs.published.Clone()
	}
	diff.Sub(baseParams)
	encoded, err := codec.EncodeDelta(diff, s)
	if err != nil {
		return nil, false, false
	}
	// Losing the LoadOrStore race still cost this request the full
	// encode, so it counts as a miss either way; only the Load fast path
	// above reports cached.
	actual, _ := bs.deltas.LoadOrStore(key, encoded)
	return actual.([]byte), false, true
}
