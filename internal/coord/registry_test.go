package coord

import (
	"sync"
	"testing"
	"time"

	"flint/internal/availability"
)

func testInfo(id int64) DeviceInfo {
	return DeviceInfo{
		ID: id, Model: "Pixel-6", Platform: "Android",
		WiFi: true, BatteryHigh: true, ModernOS: true,
		SessionSec: 300, Weight: 40,
	}
}

func TestRegistryCheckInHeartbeat(t *testing.T) {
	r := NewRegistry(8, time.Minute)
	now := time.Unix(1000, 0)
	if !r.CheckIn(testInfo(1), now) {
		t.Fatal("first check-in should report new")
	}
	if r.CheckIn(testInfo(1), now.Add(time.Second)) {
		t.Fatal("second check-in should not report new")
	}
	if !r.Heartbeat(1, now.Add(2*time.Second)) {
		t.Fatal("heartbeat for known device failed")
	}
	if r.Heartbeat(99, now) {
		t.Fatal("heartbeat for unknown device succeeded")
	}
	info, ok := r.Get(1)
	if !ok || info.Model != "Pixel-6" {
		t.Fatalf("Get(1) = %+v, %v", info, ok)
	}
}

func TestRegistryEligibilityCriteria(t *testing.T) {
	r := NewRegistry(8, time.Minute)
	now := time.Unix(1000, 0)
	crit := availability.Criteria{RequireWiFi: true, RequireBatteryHigh: true, MinSessionSec: 60}

	ok := testInfo(1)
	r.CheckIn(ok, now)
	noWifi := testInfo(2)
	noWifi.WiFi = false
	r.CheckIn(noWifi, now)
	shortSession := testInfo(3)
	shortSession.SessionSec = 10
	r.CheckIn(shortSession, now)

	if !r.Eligible(1, crit, now) {
		t.Error("device 1 should be eligible")
	}
	if r.Eligible(2, crit, now) {
		t.Error("device 2 (no wifi) should be filtered")
	}
	if r.Eligible(3, crit, now) {
		t.Error("device 3 (short session) should be filtered")
	}
	if r.Eligible(99, crit, now) {
		t.Error("unknown device should not be eligible")
	}
	// Liveness: past the TTL the device no longer counts.
	if r.Eligible(1, crit, now.Add(2*time.Minute)) {
		t.Error("stale device should not be eligible")
	}
}

func TestRegistryAssignRelease(t *testing.T) {
	r := NewRegistry(4, time.Minute)
	now := time.Unix(1000, 0)
	crit := availability.Criteria{}
	r.CheckIn(testInfo(1), now)

	if !r.Assign(1, 7, crit, now) {
		t.Fatal("assign to idle device failed")
	}
	if r.Assign(1, 7, crit, now) {
		t.Fatal("double-assign to same round succeeded")
	}
	if r.Eligible(1, crit, now) {
		t.Fatal("assigned device should not be eligible")
	}
	r.Release(1)
	if !r.Assign(1, 8, crit, now) {
		t.Fatal("assign after release failed")
	}
	r.ReleaseIf(1, 8)
	if !r.Eligible(1, crit, now) {
		t.Fatal("device should be idle after round release")
	}
}

func TestRegistryConsumeAndOverwrite(t *testing.T) {
	r := NewRegistry(4, time.Minute)
	now := time.Unix(1000, 0)
	crit := availability.Criteria{}
	r.CheckIn(testInfo(1), now)

	// Each assignment is consumable exactly once.
	if !r.Assign(1, 3, crit, now) {
		t.Fatal("assign failed")
	}
	if round, ok := r.ConsumeAssignment(1); !ok || round != 3 {
		t.Fatalf("consume = (%d, %v), want (3, true)", round, ok)
	}
	if _, ok := r.ConsumeAssignment(1); ok {
		t.Fatal("second consume succeeded — duplicates would double count")
	}
	if _, ok := r.ConsumeAssignment(99); ok {
		t.Fatal("consume for unknown device succeeded")
	}

	// A stale assignment is overwritten by a newer round's, not a
	// permanent block.
	r.Assign(1, 4, crit, now)
	if r.Assign(1, 4, crit, now) {
		t.Fatal("same-round re-assign succeeded")
	}
	if !r.Assign(1, 5, crit, now) {
		t.Fatal("newer-round assign over a stale one failed")
	}
	// ReleaseIf only clears a matching round.
	r.ReleaseIf(1, 4)
	if round, ok := r.ConsumeAssignment(1); !ok || round != 5 {
		t.Fatalf("ReleaseIf(4) touched round-5 assignment: (%d, %v)", round, ok)
	}
}

func TestRegistryCensusAndSweep(t *testing.T) {
	r := NewRegistry(8, time.Minute)
	now := time.Unix(1000, 0)
	crit := availability.Criteria{RequireWiFi: true}
	for id := int64(1); id <= 10; id++ {
		info := testInfo(id)
		info.WiFi = id%2 == 0 // 5 eligible
		r.CheckIn(info, now)
	}
	r.Assign(2, 1, crit, now)

	st := r.Census(crit, now)
	if st.Known != 10 || st.Live != 10 {
		t.Fatalf("census known/live = %d/%d, want 10/10", st.Known, st.Live)
	}
	if st.Assigned != 1 || st.Eligible != 4 {
		t.Fatalf("census assigned/eligible = %d/%d, want 1/4", st.Assigned, st.Eligible)
	}

	// Sweep drops every device unseen past keep — a held assignment does
	// not protect a dead device — but a heartbeat does.
	r.Heartbeat(2, now.Add(time.Minute))
	n := r.Sweep(30*time.Second, now.Add(time.Minute))
	if n != 9 {
		t.Fatalf("sweep removed %d, want 9", n)
	}
	if _, ok := r.Get(2); !ok {
		t.Fatal("recently seen assigned device was swept")
	}
	if r.Sweep(30*time.Second, now.Add(3*time.Minute)) != 1 {
		t.Fatal("dead assigned device was not swept")
	}
}

// TestRegistryConcurrent hammers every registry operation from many
// goroutines; the race detector validates the striped locking.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(16, time.Minute)
	crit := availability.Criteria{RequireWiFi: true}
	base := time.Unix(1000, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := int64(i % 50)
				r.CheckIn(testInfo(id), base)
				r.Heartbeat(id, base)
				if r.Assign(id, uint64(g+1), crit, base) {
					r.Release(id)
				}
				if i%100 == 0 {
					r.Census(crit, base)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := r.Census(crit, base); st.Known != 50 {
		t.Fatalf("census known = %d, want 50", st.Known)
	}
}

// TestRegistryBaseVersionTracking pins the server-side delivered-version
// bookkeeping the commit pipeline's delta pre-encoder plans from.
func TestRegistryBaseVersionTracking(t *testing.T) {
	r := NewRegistry(4, time.Minute)
	now := time.Unix(1000, 0)
	for id := int64(1); id <= 5; id++ {
		r.CheckIn(testInfo(id), now)
	}
	// Nothing delivered yet → empty census.
	if got := r.BaseVersions(now); len(got) != 0 {
		t.Fatalf("pre-delivery base versions = %v, want empty", got)
	}
	r.NoteDelivered(1, 3)
	r.NoteDelivered(2, 3)
	r.NoteDelivered(3, 2)
	r.NoteDelivered(99, 7) // unknown device: ignored, not created
	got := r.BaseVersions(now)
	if got[3] != 2 || got[2] != 1 || len(got) != 2 {
		t.Fatalf("base versions = %v, want map[2:1 3:2]", got)
	}
	// Re-delivery moves a device to its new version.
	r.NoteDelivered(3, 3)
	if got := r.BaseVersions(now); got[3] != 3 || got[2] != 0 {
		t.Fatalf("after re-delivery base versions = %v", got)
	}
	// Dead devices drop out of the census: their base won't be
	// pre-encoded for.
	later := now.Add(2 * time.Minute)
	r.Heartbeat(1, later)
	if got := r.BaseVersions(later); got[3] != 1 {
		t.Fatalf("stale devices still counted: %v", got)
	}
	if _, ok := r.Get(99); ok {
		t.Fatal("NoteDelivered created a device")
	}
}
