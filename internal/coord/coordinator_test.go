package coord

import (
	"errors"
	"math"
	"testing"
	"time"

	"flint/internal/availability"
	"flint/internal/model"
	"flint/internal/tensor"
)

// eventually polls cond until it holds or the deadline passes; the ingest
// pipeline is asynchronous, so state changes are observed, not forced.
func eventually(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

func syncTestConfig() Config {
	return Config{
		Mode:          ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 3,
		Quorum:        2,
		OverCommit:    2,
		RoundDeadline: time.Minute,
		QueueDepth:    64,
	}
}

// join registers the device and pulls the current round's task.
func join(t *testing.T, c *Coordinator, id int64) Task {
	t.Helper()
	c.CheckIn(testInfo(id))
	task, err := c.RequestTask(id)
	if err != nil {
		t.Fatalf("device %d: RequestTask: %v", id, err)
	}
	return task
}

func submitFor(t *testing.T, c *Coordinator, id int64, task Task) {
	t.Helper()
	delta := tensor.NewVector(task.Dim)
	delta.Fill(0.001)
	err := c.SubmitUpdate(Submission{
		DeviceID:    id,
		RoundID:     task.RoundID,
		BaseVersion: task.BaseVersion,
		Weight:      10,
		Delta:       delta,
	})
	if err != nil {
		t.Fatalf("device %d: SubmitUpdate: %v", id, err)
	}
}

func TestCoordinatorSyncRoundCommits(t *testing.T) {
	c, err := New(syncTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != 1 {
		t.Fatalf("initial version = %d, want 1", c.Version())
	}

	for id := int64(1); id <= 3; id++ {
		task := join(t, c, id)
		if task.BaseVersion != 1 || task.RoundID != 1 {
			t.Fatalf("task = round %d base %d, want round 1 base 1", task.RoundID, task.BaseVersion)
		}
		if len(task.Params) != task.Dim || task.Dim == 0 {
			t.Fatalf("task params len %d, dim %d", len(task.Params), task.Dim)
		}
		submitFor(t, c, id, task)
	}
	eventually(t, 5*time.Second, func() bool { return c.Version() == 2 },
		"round never committed version 2")

	st := c.Status()
	if st.Round.ID != 2 {
		t.Fatalf("after commit round ID = %d, want 2", st.Round.ID)
	}
	if got := st.Counters["rounds_committed"]; got != 1 {
		t.Fatalf("rounds_committed = %d, want 1", got)
	}
	if len(st.Recent) != 1 || st.Recent[0].Phase != PhaseCommitted || st.Recent[0].NewVersion != 2 {
		t.Fatalf("recent rounds = %+v", st.Recent)
	}
	// The store holds both versions.
	if got := c.Store().Versions(c.Config().ModelName); len(got) != 2 {
		t.Fatalf("store versions = %v, want 2 entries", got)
	}
}

func TestCoordinatorNonFiniteScreening(t *testing.T) {
	c, err := New(syncTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Wire-level NaN is rejected synchronously at ingress (the binary
	// protocol can carry such bit patterns; JSON can't).
	task := join(t, c, 1)
	bad := tensor.NewVector(task.Dim)
	bad[0] = math.NaN()
	err = c.SubmitUpdate(Submission{
		DeviceID: 1, RoundID: task.RoundID, BaseVersion: task.BaseVersion,
		Weight: 1, Delta: bad,
	})
	if err == nil {
		t.Fatal("NaN delta accepted")
	}
	if got := c.Counters().Counter("update_rejected_nonfinite").Value(); got != 1 {
		t.Fatalf("update_rejected_nonfinite = %d, want 1", got)
	}

	// Individually finite deltas can still overflow during aggregation.
	// Round 1 drives the global params to ~0.9*MaxFloat64 (finite, so it
	// publishes); round 2 pushes them past MaxFloat64.
	submitHuge := func(id int64, task Task) {
		t.Helper()
		delta := tensor.NewVector(task.Dim)
		delta.Fill(0.9 * math.MaxFloat64)
		err := c.SubmitUpdate(Submission{
			DeviceID: id, RoundID: task.RoundID, BaseVersion: task.BaseVersion,
			Weight: 10, Delta: delta,
		})
		if err != nil {
			t.Fatalf("device %d: SubmitUpdate: %v", id, err)
		}
	}
	// The synchronous reject must not have consumed device 1's round
	// assignment: its original task is still good.
	submitHuge(1, task)
	for id := int64(2); id <= 3; id++ {
		submitHuge(id, join(t, c, id))
	}
	eventually(t, 5*time.Second, func() bool { return c.Version() == 2 },
		"huge-but-finite round never committed")
	for id := int64(1); id <= 3; id++ {
		submitHuge(id, join(t, c, id))
	}
	eventually(t, 5*time.Second, func() bool {
		return c.Counters().Counter("round_aggregate_nonfinite").Value() == 1
	}, "overflowing round was not screened")

	// The poisoned aggregate must not publish, and the in-place mutation
	// must roll back: a fresh task still carries the finite v2 params.
	if c.Version() != 2 {
		t.Fatalf("version = %d, want 2 (non-finite aggregate must not publish)", c.Version())
	}
	task = join(t, c, 4)
	for _, x := range task.Params {
		if math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("published params contain non-finite value %v after rollback", x)
		}
	}
}

func TestCoordinatorSyncRejectsLateAndAliens(t *testing.T) {
	c, err := New(syncTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Commit round 1.
	tasks := map[int64]Task{}
	for id := int64(1); id <= 3; id++ {
		tasks[id] = join(t, c, id)
		submitFor(t, c, id, tasks[id])
	}
	eventually(t, 5*time.Second, func() bool { return c.Version() == 2 }, "round 1 never committed")

	// A straggler re-submitting against the finished round is dropped:
	// its assignment was consumed by the first submission.
	submitFor(t, c, 1, tasks[1])
	eventually(t, 5*time.Second, func() bool {
		return c.Counters().Counter("update_rejected_unassigned").Value() == 1
	}, "late update was not rejected")
	if c.Version() != 2 {
		t.Fatalf("version = %d, want 2 (late update must not aggregate)", c.Version())
	}

	// Wrong dimensionality is rejected synchronously.
	err = c.SubmitUpdate(Submission{DeviceID: 9, RoundID: 2, BaseVersion: 2, Delta: tensor.Vector{1, 2}})
	if err == nil {
		t.Fatal("dimension mismatch accepted")
	}

	// Unknown devices can't get tasks.
	if _, err := c.RequestTask(999); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("RequestTask(unknown) = %v, want ErrUnknownDevice", err)
	}
}

func TestCoordinatorRoundAbandonedBelowQuorum(t *testing.T) {
	cfg := syncTestConfig()
	cfg.RoundDeadline = 300 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	task := join(t, c, 1)
	submitFor(t, c, 1, task) // 1 < quorum of 2
	eventually(t, 5*time.Second, func() bool {
		return c.Counters().Counter("rounds_abandoned").Value() >= 1
	}, "starved round was never abandoned")
	if c.Version() != 1 {
		t.Fatalf("version = %d, want 1 (abandoned round must not publish)", c.Version())
	}
	st := c.Status()
	if st.Round.ID < 2 {
		t.Fatalf("round ID = %d, want a fresh round after abandonment", st.Round.ID)
	}
}

func TestCoordinatorQuorumCommitAtDeadline(t *testing.T) {
	cfg := syncTestConfig()
	cfg.RoundDeadline = 400 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two of three target updates arrive: quorum met, so the deadline
	// commits rather than abandons.
	for id := int64(1); id <= 2; id++ {
		submitFor(t, c, id, join(t, c, id))
	}
	eventually(t, 5*time.Second, func() bool { return c.Version() == 2 },
		"quorum round did not commit at its deadline")
}

func TestCoordinatorAsyncStalenessHandling(t *testing.T) {
	cfg := Config{
		Mode:           ModeAsync,
		ModelKind:      model.KindA,
		Seed:           1,
		TargetUpdates:  2,
		Quorum:         1,
		RoundDeadline:  time.Minute,
		MaxInflight:    64,
		MaxStaleness:   1,
		StalenessAlpha: 0.5,
		QueueDepth:     64,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Devices 1 and 2 hold tasks from version 1.
	t1, t2 := join(t, c, 1), join(t, c, 2)
	// Devices 3 and 4 fill the buffer twice → versions 2 and 3.
	for id := int64(3); id <= 4; id++ {
		submitFor(t, c, id, join(t, c, id))
	}
	eventually(t, 5*time.Second, func() bool { return c.Version() == 2 }, "first buffer never committed")
	for id := int64(5); id <= 6; id++ {
		submitFor(t, c, id, join(t, c, id))
	}
	eventually(t, 5*time.Second, func() bool { return c.Version() == 3 }, "second buffer never committed")

	// Device 1's update is now 2 versions stale: over MaxStaleness → dropped.
	submitFor(t, c, 1, t1)
	eventually(t, 5*time.Second, func() bool {
		return c.Counters().Counter("update_rejected_stale").Value() == 1
	}, "over-stale update was not rejected")

	// A fresh-enough straggler is still folded in: device 2 abandons its
	// stale task by re-pulling a current one (the old assignment is
	// overwritten, not a permanent block).
	t2 = join(t, c, 2)
	submitFor(t, c, 2, t2)
	eventually(t, 5*time.Second, func() bool {
		return c.Counters().Counter("update_accepted").Value() >= 5
	}, "fresh async update was not accepted")
}

func TestCoordinatorRejectsDuplicateSubmissions(t *testing.T) {
	c, err := New(syncTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Device 1 submits its task three times (a retry storm); only the
	// first copy may count toward the round's target of 3.
	task := join(t, c, 1)
	for i := 0; i < 3; i++ {
		submitFor(t, c, 1, task)
	}
	eventually(t, 5*time.Second, func() bool {
		return c.Counters().Counter("update_rejected_unassigned").Value() == 2
	}, "duplicate submissions were not rejected")
	if v := c.Version(); v != 1 {
		t.Fatalf("version = %d: one device must not fill a round alone", v)
	}
	// Two more distinct devices complete the round.
	for id := int64(2); id <= 3; id++ {
		submitFor(t, c, id, join(t, c, id))
	}
	eventually(t, 5*time.Second, func() bool { return c.Version() == 2 },
		"round with 3 distinct devices never committed")
}

func TestCoordinatorBackpressure(t *testing.T) {
	c, err := New(syncTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	dim := c.global.NumParams()
	sub := Submission{DeviceID: 1, RoundID: 1, BaseVersion: 1, Weight: 1, Delta: tensor.NewVector(dim)}

	// A closed coordinator sheds everything.
	c.Close()
	if err := c.SubmitUpdate(sub); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}

	// With the worker stopped and the queue full, submissions shed with
	// ErrBusy instead of blocking the caller.
	c.closed.Store(false)
	c.ingest <- sub // queue depth leaves no room after this
	for len(c.ingest) < cap(c.ingest) {
		c.ingest <- sub
	}
	if err := c.SubmitUpdate(sub); !errors.Is(err, ErrBusy) {
		t.Fatalf("submit with full queue = %v, want ErrBusy", err)
	}
	if got := c.Counters().Counter("update_rejected_busy").Value(); got != 1 {
		t.Fatalf("update_rejected_busy = %d, want 1", got)
	}
}

func TestCoordinatorCriteriaGateTasks(t *testing.T) {
	cfg := syncTestConfig()
	cfg.Criteria = availability.Criteria{RequireWiFi: true}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	info := testInfo(1)
	info.WiFi = false
	res := c.CheckIn(info)
	if res.Eligible {
		t.Fatal("check-in without wifi reported eligible")
	}
	if _, err := c.RequestTask(1); !errors.Is(err, ErrNoTask) {
		t.Fatalf("RequestTask(filtered) = %v, want ErrNoTask", err)
	}
	// Same device on WiFi gets a task.
	info.WiFi = true
	if res := c.CheckIn(info); !res.Eligible {
		t.Fatal("check-in with wifi reported ineligible")
	}
	if _, err := c.RequestTask(1); err != nil {
		t.Fatalf("RequestTask(eligible) = %v", err)
	}
}
