package network

import (
	"math/rand"
	"sort"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := Default.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []BandwidthModel{
		{MedianMbps: 0},
		{MedianMbps: 1, Sigma: -1},
		{MedianMbps: 1, SlowFrac: 2},
		{MedianMbps: 1, FloorMbps: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("model %d must fail validation", i)
		}
	}
}

func TestSampleDistributionShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 50000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = Default.SampleBps(rng) * 8 / 1e6 // back to Mbps
		if samples[i] < Default.FloorMbps {
			t.Fatalf("sample %v below floor", samples[i])
		}
	}
	sort.Float64s(samples)
	median := samples[n/2]
	if median < 3 || median > 8 {
		t.Fatalf("median %v Mbps far from configured 5", median)
	}
	// Heavy left tail: p5 must be far below median (slow sessions).
	p5 := samples[n/20]
	if p5 > median/3 {
		t.Fatalf("p5 %v not heavy-tailed vs median %v", p5, median)
	}
}

func TestTransferSeconds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// 1 MB at ~5 Mbps ≈ 1.6 s; across samples the mean should be seconds,
	// not milliseconds or minutes.
	var total float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		total += Default.TransferSeconds(1<<20, rng)
	}
	mean := total / trials
	if mean < 0.3 || mean > 30 {
		t.Fatalf("mean 1MB transfer %v s implausible", mean)
	}
	// Zero bytes transfer instantly.
	if got := Default.TransferSeconds(0, rng); got != 0 {
		t.Fatalf("zero-byte transfer took %v", got)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := Default.SampleBps(rand.New(rand.NewSource(7)))
	b := Default.SampleBps(rand.New(rand.NewSource(7)))
	if a != b {
		t.Fatal("sampling must be deterministic per seed")
	}
}
