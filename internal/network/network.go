// Package network models edge-device uplink/downlink bandwidth. The paper
// samples client bandwidth N from the Puffer dataset (Yan et al., NSDI '20)
// when computing taskDuration(k) = t·E·|Dk| + 2M/N; Puffer is an external
// dataset we cannot ship, so this package substitutes a heavy-left-tailed
// log-normal mixture calibrated to published edge-network characteristics
// (median ≈ 5 Mbps with a slow tail into the hundreds of kbps; see DESIGN.md
// §2 for the substitution note).
package network

import (
	"fmt"
	"math"
	"math/rand"
)

// BandwidthModel samples sustained client throughput in bytes/second.
type BandwidthModel struct {
	// MedianMbps is the distribution median in megabits per second.
	MedianMbps float64
	// Sigma is the log-normal shape; larger means heavier tails both ways.
	Sigma float64
	// SlowFrac is the fraction of sessions pinned to the congested tail
	// (cellular handoffs, weak WiFi), drawn from a second log-normal one
	// decade below the median.
	SlowFrac float64
	// FloorMbps bounds the worst case so task durations stay finite.
	FloorMbps float64
}

// Default is calibrated so the median transfer of a ~1 MB update takes a
// couple of seconds, matching the paper's observation that tiny-model tasks
// are dominated by network time.
var Default = BandwidthModel{MedianMbps: 5, Sigma: 0.9, SlowFrac: 0.08, FloorMbps: 0.1}

// Validate reports configuration errors.
func (b BandwidthModel) Validate() error {
	if b.MedianMbps <= 0 {
		return fmt.Errorf("network: median must be positive, got %v", b.MedianMbps)
	}
	if b.Sigma < 0 {
		return fmt.Errorf("network: sigma must be >= 0, got %v", b.Sigma)
	}
	if b.SlowFrac < 0 || b.SlowFrac > 1 {
		return fmt.Errorf("network: slow fraction %v outside [0,1]", b.SlowFrac)
	}
	if b.FloorMbps < 0 {
		return fmt.Errorf("network: floor must be >= 0, got %v", b.FloorMbps)
	}
	return nil
}

// SampleBps draws one client's throughput in bytes per second.
func (b BandwidthModel) SampleBps(rng *rand.Rand) float64 {
	median := b.MedianMbps
	if b.SlowFrac > 0 && rng.Float64() < b.SlowFrac {
		median = b.MedianMbps / 10
	}
	mbps := median * math.Exp(b.Sigma*rng.NormFloat64())
	if mbps < b.FloorMbps {
		mbps = b.FloorMbps
	}
	return mbps * 1e6 / 8
}

// TransferSeconds returns the time to move `bytes` at a sampled bandwidth.
func (b BandwidthModel) TransferSeconds(bytes int, rng *rand.Rand) float64 {
	bps := b.SampleBps(rng)
	return float64(bytes) / bps
}
