package device

import (
	"fmt"

	"flint/internal/model"
)

// CompatibilityPolicy encodes §3.2's compute-capability criterion: "based
// on the device benchmark results, the modeler can generate a list of
// devices and OS versions that have acceptable worst-case device impact and
// are compatible with the model architecture."
type CompatibilityPolicy struct {
	// MaxTrainSeconds bounds the device's projected time over
	// BenchRecords records (worst-case impact on the user).
	MaxTrainSeconds float64
	// BenchRecords is the record budget the bound applies to (the paper
	// benchmarks 5,000 records).
	BenchRecords int
	// MinRAMMB excludes devices that cannot hold the training memory
	// footprint comfortably.
	MinRAMMB int
	// MaxCPUPercent bounds mean CPU usage during training.
	MaxCPUPercent float64
}

// DefaultCompatibility mirrors the case studies: a model must train 5,000
// records in a few minutes worst-case without monopolizing the device.
var DefaultCompatibility = CompatibilityPolicy{
	MaxTrainSeconds: 300,
	BenchRecords:    5000,
	MinRAMMB:        2048,
	MaxCPUPercent:   15,
}

// Validate reports policy errors.
func (p CompatibilityPolicy) Validate() error {
	if p.MaxTrainSeconds <= 0 {
		return fmt.Errorf("device: policy needs MaxTrainSeconds > 0")
	}
	if p.BenchRecords <= 0 {
		return fmt.Errorf("device: policy needs BenchRecords > 0")
	}
	return nil
}

// CompatibleDevices benchmarks the model on every pool device and returns
// the set passing the policy — the list that feeds the availability
// criteria's CompatibleDevices filter. The returned report maps each
// excluded device to its reason.
func CompatibleDevices(kind model.Kind, pool []Profile, policy CompatibilityPolicy) (map[string]bool, map[string]string, error) {
	if err := policy.Validate(); err != nil {
		return nil, nil, err
	}
	if len(pool) == 0 {
		return nil, nil, fmt.Errorf("device: empty pool")
	}
	ok := make(map[string]bool)
	excluded := make(map[string]string)
	for _, p := range pool {
		r, err := Run(kind, p, policy.BenchRecords, 1)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case r.TrainSeconds > policy.MaxTrainSeconds:
			excluded[p.Name] = fmt.Sprintf("train %.0fs > %.0fs", r.TrainSeconds, policy.MaxTrainSeconds)
		case policy.MinRAMMB > 0 && p.RAMMB < policy.MinRAMMB:
			excluded[p.Name] = fmt.Sprintf("RAM %d MB < %d MB", p.RAMMB, policy.MinRAMMB)
		case policy.MaxCPUPercent > 0 && r.CPUPercent > policy.MaxCPUPercent:
			excluded[p.Name] = fmt.Sprintf("cpu %.1f%% > %.1f%%", r.CPUPercent, policy.MaxCPUPercent)
		default:
			ok[p.Name] = true
		}
	}
	return ok, excluded, nil
}

// CoverageShare returns the installed-base share covered by a compatible
// set — the fairness lens of §3.2: "if a device hardware criterion
// introduces biased model performance on users of older phones, then the
// hardware requirement needs to be relaxed."
func CoverageShare(pool []Profile, compatible map[string]bool) float64 {
	var total, covered float64
	for _, p := range pool {
		total += p.Share
		if compatible[p.Name] {
			covered += p.Share
		}
	}
	if total == 0 {
		return 0
	}
	return covered / total
}
