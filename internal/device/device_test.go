package device

import (
	"math/rand"
	"testing"

	"flint/internal/model"
)

func TestBenchPoolShape(t *testing.T) {
	pool := BenchPool()
	if len(pool) != 27 {
		t.Fatalf("pool size %d, paper uses 27 devices", len(pool))
	}
	var ios, android int
	var share float64
	names := make(map[string]bool)
	for _, p := range pool {
		if names[p.Name] {
			t.Fatalf("duplicate device %s", p.Name)
		}
		names[p.Name] = true
		switch p.Platform {
		case IOS:
			ios++
		case Android:
			android++
		default:
			t.Fatalf("unknown platform %q", p.Platform)
		}
		if p.MatmulGFLOPS <= 0 || p.GatherGFLOPS <= 0 || p.PrepMicros <= 0 || p.Cores <= 0 {
			t.Fatalf("device %s has non-positive capability", p.Name)
		}
		if p.ModernOSProb < 0 || p.ModernOSProb > 1 {
			t.Fatalf("device %s ModernOSProb %v", p.Name, p.ModernOSProb)
		}
		share += p.Share
	}
	if ios < 5 || android < 15 {
		t.Fatalf("platform mix %d iOS / %d Android unlike Fig 1", ios, android)
	}
	if share >= 1 {
		t.Fatalf("pool share %v must leave room for the tail", share)
	}
	if len(ByName(pool)) != 27 {
		t.Fatal("ByName lost devices")
	}
}

func TestHeterogeneitySpread(t *testing.T) {
	// Fastest/slowest spread must be >5x — the heterogeneity Table 5's
	// large stdevs come from.
	pool := BenchPool()
	lo, hi := pool[0].MatmulGFLOPS, pool[0].MatmulGFLOPS
	for _, p := range pool {
		if p.MatmulGFLOPS < lo {
			lo = p.MatmulGFLOPS
		}
		if p.MatmulGFLOPS > hi {
			hi = p.MatmulGFLOPS
		}
	}
	if hi/lo < 5 {
		t.Fatalf("compute spread %.1fx too narrow", hi/lo)
	}
}

func TestRunBenchmark(t *testing.T) {
	pool := BenchPool()
	r, err := Run(model.KindB, pool[0], 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.TrainSeconds <= 0 || r.SecPerRecord <= 0 {
		t.Fatalf("non-positive time: %+v", r)
	}
	if r.ValidatedRecords <= 0 || r.ValidatedRecords > 128 {
		t.Fatalf("validation steps %d", r.ValidatedRecords)
	}
	if r.CPUPercent <= 0 || r.CPUPercent > 100 {
		t.Fatalf("cpu%% %v", r.CPUPercent)
	}
	if r.StorageMB <= 0 || r.NetworkMB <= 0 || r.MemoryMB <= 0 {
		t.Fatalf("non-positive footprint: %+v", r)
	}
	if _, err := Run(model.KindB, pool[0], 0, 1); err == nil {
		t.Fatal("zero records must error")
	}
	if _, err := Run(model.Kind("zz"), pool[0], 10, 1); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestSlowDeviceSlower(t *testing.T) {
	pool := ByName(BenchPool())
	fast, err := Run(model.KindB, pool["iPhone-13"], 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(model.KindB, pool["Galaxy-J7"], 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slow.TrainSeconds <= 2*fast.TrainSeconds {
		t.Fatalf("J7 (%.1fs) should be much slower than iPhone-13 (%.1fs)",
			slow.TrainSeconds, fast.TrainSeconds)
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := Table5(BenchPool(), 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byKind := make(map[model.Kind]Table5Row)
	for _, r := range rows {
		byKind[r.Model] = r
		if r.StdevTimeS <= 0 {
			t.Fatalf("model %s: no heterogeneity spread", r.Model)
		}
		// Heterogeneous pool: stdev should be a large fraction of mean
		// (paper: 44.17/61.81 ≈ 0.71 for model B).
		if r.StdevTimeS < 0.3*r.MeanTimeS {
			t.Fatalf("model %s: stdev %.2f too small vs mean %.2f", r.Model, r.StdevTimeS, r.MeanTimeS)
		}
	}
	// Table 5 orderings that must hold: C < A < B < D < E on time.
	if !(byKind[model.KindC].MeanTimeS < byKind[model.KindA].MeanTimeS) {
		t.Fatalf("C (%.2f) must train faster than A (%.2f)",
			byKind[model.KindC].MeanTimeS, byKind[model.KindA].MeanTimeS)
	}
	if !(byKind[model.KindA].MeanTimeS < byKind[model.KindB].MeanTimeS) {
		t.Fatal("A must train faster than B")
	}
	if !(byKind[model.KindB].MeanTimeS < byKind[model.KindD].MeanTimeS) {
		t.Fatal("B must train faster than D")
	}
	if !(byKind[model.KindD].MeanTimeS < byKind[model.KindE].MeanTimeS) {
		t.Fatal("D must train faster than E")
	}
	// Magnitude difference between tasks A and B (paper: ~12x).
	ratio := byKind[model.KindB].MeanTimeS / byKind[model.KindA].MeanTimeS
	if ratio < 4 || ratio > 40 {
		t.Fatalf("B/A time ratio %.1f outside the magnitudes-difference band", ratio)
	}
	// E must be the most CPU-hungry (the model the paper gates on >80% battery).
	for _, k := range []model.Kind{model.KindA, model.KindB, model.KindC, model.KindD} {
		if byKind[model.KindE].MeanCPU <= byKind[k].MeanCPU {
			t.Fatalf("E CPU %.2f must exceed %s CPU %.2f",
				byKind[model.KindE].MeanCPU, k, byKind[k].MeanCPU)
		}
	}
	if _, err := Table5(nil, 100, 1); err == nil {
		t.Fatal("empty pool must error")
	}
}

func TestFig4TaskInversion(t *testing.T) {
	// Fig 4's point: a device better at task A can be worse at task B.
	// Our pool encodes matmul-vs-gather efficiency differences; verify at
	// least one device pair inverts between models B (matmul-heavy) and C
	// (gather-heavy).
	pool := BenchPool()
	secB := make([]float64, len(pool))
	secC := make([]float64, len(pool))
	for i, p := range pool {
		rb, err := Run(model.KindB, p, 100, 1)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := Run(model.KindC, p, 100, 1)
		if err != nil {
			t.Fatal(err)
		}
		secB[i], secC[i] = rb.SecPerRecord, rc.SecPerRecord
	}
	inverted := false
	for i := 0; i < len(pool) && !inverted; i++ {
		for j := 0; j < len(pool); j++ {
			if secB[i] < secB[j] && secC[i] > secC[j] {
				inverted = true
				break
			}
		}
	}
	if !inverted {
		t.Fatal("no task-ordering inversion across devices; Fig 4's effect is missing")
	}
}

func TestPopulationSampleAndDistribution(t *testing.T) {
	pm := DefaultPopulation()
	devs, err := pm.Sample(40000)
	if err != nil {
		t.Fatal(err)
	}
	ios := Distribution(devs, IOS, 8)
	android := Distribution(devs, Android, 8)
	if ios.Devices == 0 || android.Devices == 0 {
		t.Fatal("both platforms must appear")
	}
	// Fig 1: iOS concentrated, Android diverse.
	iosTop := ios.TopShares[len(ios.TopShares)-1]
	andTop := android.TopShares[len(android.TopShares)-1]
	if iosTop < 0.6 {
		t.Fatalf("iOS top-8 share %.2f should be concentrated", iosTop)
	}
	if andTop >= iosTop {
		t.Fatalf("Android top-8 %.2f must be more diverse than iOS %.2f", andTop, iosTop)
	}
	if android.DistinctModels < 10*ios.DistinctModels {
		t.Fatalf("Android models (%d) must dwarf iOS models (%d)", android.DistinctModels, ios.DistinctModels)
	}
	if android.GrayShare <= ios.GrayShare {
		t.Fatalf("Android gray region %.2f must exceed iOS %.2f", android.GrayShare, ios.GrayShare)
	}
	// Empty platform view.
	empty := Distribution(nil, IOS, 5)
	if empty.Devices != 0 {
		t.Fatal("empty distribution")
	}
}

func TestPopulationValidation(t *testing.T) {
	if _, err := (PopulationModel{TailModels: 10}).Sample(10); err == nil {
		t.Fatal("empty pool must error")
	}
	if _, err := (PopulationModel{Pool: BenchPool()}).Sample(10); err == nil {
		t.Fatal("zero tail models must error")
	}
}

func TestTimeDistribution(t *testing.T) {
	td, err := NewTimeDistribution(model.KindB, BenchPool())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	mean := td.Mean()
	if mean <= 0 {
		t.Fatalf("mean %v", mean)
	}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		s := td.Sample(rng)
		if s <= 0 {
			t.Fatalf("sample %v", s)
		}
		sum += s
	}
	if got := sum / n; got < mean*0.7 || got > mean*1.3 {
		t.Fatalf("sampled mean %v far from weighted mean %v", got, mean)
	}
	if _, err := NewTimeDistribution(model.KindB, nil); err == nil {
		t.Fatal("empty pool must error")
	}
}

func TestSecPerRecordOn(t *testing.T) {
	pool := BenchPool()
	s, err := SecPerRecordOn(model.KindA, pool[0])
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("sec/record %v", s)
	}
	if _, err := SecPerRecordOn(model.Kind("x"), pool[0]); err == nil {
		t.Fatal("unknown kind must error")
	}
}
