// Package device models the heterogeneous client hardware pool of the paper
// (§3.2): per-device compute profiles that substitute for the AWS Device
// Farm pool (27 physical devices), the platform population mix behind Fig 1,
// and the on-device benchmark harness behind Table 5 and Fig 4.
package device

import (
	"fmt"
	"math/rand"
	"sort"
)

// Platform is the mobile OS family.
type Platform string

// The two platforms of Fig 1.
const (
	IOS     Platform = "iOS"
	Android Platform = "Android"
)

// Profile describes one device model's effective training capability.
// Numbers are calibrated so the 27-device pool reproduces Table 5's
// time scale and spread (stdev ≈ 70% of mean); see DESIGN.md §2.
type Profile struct {
	Name     string
	Platform Platform
	// MatmulGFLOPS is sustained single-core training throughput on dense
	// matmul-dominated graphs, in GFLOP/s (framework overhead included).
	MatmulGFLOPS float64
	// GatherGFLOPS is throughput on gather/elementwise-dominated graphs.
	// The two dimensions differ per device — some chips have fast SIMD
	// matmul but slow memory systems — which is what makes "devices that
	// are optimized for one task worse for another" (Fig 4).
	GatherGFLOPS float64
	// PrepMicros is the per-prep-unit cost in microseconds (feature
	// hashing, vocab lookups, tokenization), driven by storage and
	// single-thread speed.
	PrepMicros float64
	// Cores is the CPU core count (training pins one core).
	Cores int
	// RAMMB is device memory, a participation gate for large models.
	RAMMB int
	// ModernOSProb is the probability that a session from this device
	// runs an OS released after Sept 2019 (Table 1 criterion C).
	ModernOSProb float64
	// Share is the device's share of the installed base, used when
	// sampling the user population.
	Share float64
}

// BenchPool returns the 27-device benchmark pool substituting for the
// paper's AWS Device Farm deployment: "older and newer generations of
// popular phones and tablets".
func BenchPool() []Profile {
	return []Profile{
		// iOS: fewer models, tightly clustered capability (Fig 1 left).
		{Name: "iPhone-13", Platform: IOS, MatmulGFLOPS: 1.20, GatherGFLOPS: 0.80, PrepMicros: 14, Cores: 6, RAMMB: 4096, ModernOSProb: 1.00, Share: 0.070},
		{Name: "iPhone-12", Platform: IOS, MatmulGFLOPS: 1.00, GatherGFLOPS: 0.70, PrepMicros: 16, Cores: 6, RAMMB: 4096, ModernOSProb: 1.00, Share: 0.075},
		{Name: "iPhone-11", Platform: IOS, MatmulGFLOPS: 0.80, GatherGFLOPS: 0.60, PrepMicros: 18, Cores: 6, RAMMB: 4096, ModernOSProb: 0.99, Share: 0.080},
		{Name: "iPhone-SE2", Platform: IOS, MatmulGFLOPS: 0.78, GatherGFLOPS: 0.55, PrepMicros: 19, Cores: 6, RAMMB: 3072, ModernOSProb: 0.99, Share: 0.035},
		{Name: "iPhone-X", Platform: IOS, MatmulGFLOPS: 0.55, GatherGFLOPS: 0.42, PrepMicros: 24, Cores: 6, RAMMB: 3072, ModernOSProb: 0.95, Share: 0.030},
		{Name: "iPhone-8", Platform: IOS, MatmulGFLOPS: 0.45, GatherGFLOPS: 0.35, PrepMicros: 28, Cores: 6, RAMMB: 2048, ModernOSProb: 0.90, Share: 0.025},
		{Name: "iPad-Air3", Platform: IOS, MatmulGFLOPS: 0.85, GatherGFLOPS: 0.62, PrepMicros: 17, Cores: 6, RAMMB: 3072, ModernOSProb: 0.99, Share: 0.015},
		{Name: "iPad-9", Platform: IOS, MatmulGFLOPS: 0.90, GatherGFLOPS: 0.65, PrepMicros: 16, Cores: 6, RAMMB: 3072, ModernOSProb: 1.00, Share: 0.015},
		// Android: wide capability spread and a long model tail (Fig 1 right).
		{Name: "Galaxy-S21", Platform: Android, MatmulGFLOPS: 1.05, GatherGFLOPS: 0.60, PrepMicros: 17, Cores: 8, RAMMB: 8192, ModernOSProb: 1.00, Share: 0.032},
		{Name: "Pixel-6", Platform: Android, MatmulGFLOPS: 1.00, GatherGFLOPS: 0.65, PrepMicros: 17, Cores: 8, RAMMB: 8192, ModernOSProb: 1.00, Share: 0.018},
		// OnePlus-9 and Pixel-5 encode the compute-vs-storage trade-off of
		// Fig 4: fast SIMD with slow feature prep versus the reverse, so
		// task orderings invert between matmul- and prep-bound models.
		{Name: "OnePlus-9", Platform: Android, MatmulGFLOPS: 0.95, GatherGFLOPS: 0.50, PrepMicros: 26, Cores: 8, RAMMB: 8192, ModernOSProb: 1.00, Share: 0.014},
		{Name: "Galaxy-S10", Platform: Android, MatmulGFLOPS: 0.60, GatherGFLOPS: 0.40, PrepMicros: 22, Cores: 8, RAMMB: 6144, ModernOSProb: 0.97, Share: 0.026},
		{Name: "Note-10", Platform: Android, MatmulGFLOPS: 0.62, GatherGFLOPS: 0.42, PrepMicros: 22, Cores: 8, RAMMB: 8192, ModernOSProb: 0.97, Share: 0.020},
		{Name: "Pixel-5", Platform: Android, MatmulGFLOPS: 0.40, GatherGFLOPS: 0.45, PrepMicros: 17, Cores: 8, RAMMB: 8192, ModernOSProb: 1.00, Share: 0.012},
		{Name: "Pixel-4", Platform: Android, MatmulGFLOPS: 0.50, GatherGFLOPS: 0.38, PrepMicros: 24, Cores: 8, RAMMB: 6144, ModernOSProb: 0.98, Share: 0.012},
		{Name: "Huawei-P30", Platform: Android, MatmulGFLOPS: 0.52, GatherGFLOPS: 0.36, PrepMicros: 24, Cores: 8, RAMMB: 6144, ModernOSProb: 0.92, Share: 0.020},
		{Name: "Galaxy-S8", Platform: Android, MatmulGFLOPS: 0.35, GatherGFLOPS: 0.26, PrepMicros: 30, Cores: 8, RAMMB: 4096, ModernOSProb: 0.85, Share: 0.018},
		{Name: "OnePlus-7", Platform: Android, MatmulGFLOPS: 0.58, GatherGFLOPS: 0.40, PrepMicros: 22, Cores: 8, RAMMB: 6144, ModernOSProb: 0.97, Share: 0.012},
		{Name: "Galaxy-A51", Platform: Android, MatmulGFLOPS: 0.28, GatherGFLOPS: 0.22, PrepMicros: 34, Cores: 8, RAMMB: 4096, ModernOSProb: 0.98, Share: 0.030},
		{Name: "Galaxy-A12", Platform: Android, MatmulGFLOPS: 0.14, GatherGFLOPS: 0.12, PrepMicros: 48, Cores: 8, RAMMB: 3072, ModernOSProb: 0.99, Share: 0.034},
		{Name: "Redmi-Note9", Platform: Android, MatmulGFLOPS: 0.24, GatherGFLOPS: 0.19, PrepMicros: 36, Cores: 8, RAMMB: 4096, ModernOSProb: 0.99, Share: 0.030},
		{Name: "Redmi-Note8", Platform: Android, MatmulGFLOPS: 0.20, GatherGFLOPS: 0.16, PrepMicros: 40, Cores: 8, RAMMB: 4096, ModernOSProb: 0.95, Share: 0.028},
		{Name: "Moto-G9Power", Platform: Android, MatmulGFLOPS: 0.18, GatherGFLOPS: 0.15, PrepMicros: 42, Cores: 8, RAMMB: 4096, ModernOSProb: 0.99, Share: 0.014},
		{Name: "Moto-G7", Platform: Android, MatmulGFLOPS: 0.12, GatherGFLOPS: 0.10, PrepMicros: 52, Cores: 8, RAMMB: 3072, ModernOSProb: 0.80, Share: 0.012},
		{Name: "Oppo-A5", Platform: Android, MatmulGFLOPS: 0.11, GatherGFLOPS: 0.09, PrepMicros: 55, Cores: 8, RAMMB: 3072, ModernOSProb: 0.85, Share: 0.022},
		{Name: "Galaxy-J7", Platform: Android, MatmulGFLOPS: 0.08, GatherGFLOPS: 0.07, PrepMicros: 64, Cores: 8, RAMMB: 2048, ModernOSProb: 0.45, Share: 0.014},
		{Name: "Galaxy-Tab-A8", Platform: Android, MatmulGFLOPS: 0.22, GatherGFLOPS: 0.18, PrepMicros: 38, Cores: 8, RAMMB: 3072, ModernOSProb: 0.97, Share: 0.010},
	}
}

// ByName indexes a profile list by device name.
func ByName(pool []Profile) map[string]Profile {
	out := make(map[string]Profile, len(pool))
	for _, p := range pool {
		out[p.Name] = p
	}
	return out
}

// PopulationModel samples the full installed base for Fig 1: the bench pool
// devices carry explicit shares, and the remainder of the base spreads over
// a long Zipf tail of minor models — ~8,000 device types in the paper.
type PopulationModel struct {
	Pool []Profile
	// TailModels is the number of distinct long-tail device models beyond
	// the pool (Android-heavy, per Fig 1's "gray region").
	TailModels int
	// TailIOSFrac is the fraction of tail models that are iOS (small:
	// Apple's lineup is narrow).
	TailIOSFrac float64
	Seed        int64
}

// DefaultPopulation reflects Fig 1's shape: iOS concentrated over few
// models (Apple's lineup is narrow), Android spread over thousands.
func DefaultPopulation() PopulationModel {
	return PopulationModel{Pool: BenchPool(), TailModels: 2600, TailIOSFrac: 0.004, Seed: 1}
}

// SampledDevice is one user device draw.
type SampledDevice struct {
	Model    string
	Platform Platform
	// Profile is the matching bench profile; tail devices borrow the
	// nearest low-end profile for capability purposes.
	Profile Profile
}

// Sample draws n user devices: with probability equal to the pool's total
// share a pool device is returned, otherwise a Zipf-tail minor model.
func (pm PopulationModel) Sample(n int) ([]SampledDevice, error) {
	if len(pm.Pool) == 0 {
		return nil, fmt.Errorf("device: population needs a non-empty pool")
	}
	if pm.TailModels <= 0 {
		return nil, fmt.Errorf("device: population needs tail models, got %d", pm.TailModels)
	}
	rng := rand.New(rand.NewSource(pm.Seed))
	var poolShare float64
	cum := make([]float64, len(pm.Pool))
	for i, p := range pm.Pool {
		poolShare += p.Share
		cum[i] = poolShare
	}
	if poolShare > 1 {
		return nil, fmt.Errorf("device: pool shares sum to %v > 1", poolShare)
	}
	zipf := rand.NewZipf(rng, 1.3, 2, uint64(pm.TailModels-1))
	lowEnd := pm.Pool[len(pm.Pool)-1]
	out := make([]SampledDevice, n)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		if u < poolShare {
			idx := sort.SearchFloat64s(cum, u)
			p := pm.Pool[idx]
			out[i] = SampledDevice{Model: p.Name, Platform: p.Platform, Profile: p}
			continue
		}
		t := int(zipf.Uint64())
		platform := Android
		if rng.Float64() < pm.TailIOSFrac {
			platform = IOS
		}
		out[i] = SampledDevice{
			Model:    fmt.Sprintf("%s-tail-%04d", platform, t),
			Platform: platform,
			Profile:  lowEnd,
		}
	}
	return out, nil
}

// DistributionStats summarizes a sampled population for Fig 1.
type DistributionStats struct {
	Platform       Platform
	Devices        int
	DistinctModels int
	TopShares      []float64 // cumulative share of top-1..top-k models
	GrayShare      float64   // share outside the top-k legend
}

// Distribution computes Fig 1's per-platform concentration: top-k model
// shares and the "gray region" beyond the legend.
func Distribution(devs []SampledDevice, platform Platform, k int) DistributionStats {
	counts := make(map[string]int)
	total := 0
	for _, d := range devs {
		if d.Platform != platform {
			continue
		}
		counts[d.Model]++
		total++
	}
	st := DistributionStats{Platform: platform, Devices: total, DistinctModels: len(counts)}
	if total == 0 {
		return st
	}
	shares := make([]float64, 0, len(counts))
	for _, c := range counts {
		shares = append(shares, float64(c)/float64(total))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(shares)))
	cum := 0.0
	for i := 0; i < k && i < len(shares); i++ {
		cum += shares[i]
		st.TopShares = append(st.TopShares, cum)
	}
	st.GrayShare = 1 - cum
	if st.GrayShare < 0 {
		st.GrayShare = 0
	}
	return st
}
