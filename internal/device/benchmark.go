package device

import (
	"fmt"
	"math/rand"

	"flint/internal/data"
	"flint/internal/metrics"
	"flint/internal/model"
)

// runtimeArenaBytes models the interpreter's planning/arena overhead per
// graph, the dominant term of Table 5's "Memory" column for graph-heavy
// models. Calibrated per architecture class (see DESIGN.md §2).
var runtimeArenaBytes = map[model.Kind]int{
	model.KindA: 3 << 20,  // tiny dense graph, interpreter floor
	model.KindB: 9 << 20,  // wide input tensor planning
	model.KindC: 0,        // delegate reuses the app arena
	model.KindD: 5 << 20,  // sequence buffers
	model.KindE: 35 << 20, // multi-head graph
}

// Result is one (model, device) benchmark measurement — one point of Fig 4
// and one contribution to a Table 5 row.
type Result struct {
	Device       string
	Platform     Platform
	Model        model.Kind
	Records      int
	TrainSeconds float64
	SecPerRecord float64
	CPUPercent   float64
	MemoryMB     float64
	StorageMB    float64
	NetworkMB    float64
	// ValidatedRecords counts real TrainSteps executed in-process to
	// confirm "the ops bundled with the ML runtime are sufficient to
	// execute the model training" (§4.1); timing is then projected from
	// the device profile.
	ValidatedRecords int
}

// maxValidationSteps bounds the real training steps run per benchmark; the
// remainder of the record budget is projected analytically.
const maxValidationSteps = 128

// Run benchmarks one model on one device profile over `records` examples:
// it executes real training steps on dummy data to validate the graph, then
// converts the model's cost profile through the device's capability numbers.
func Run(kind model.Kind, p Profile, records int, seed int64) (Result, error) {
	if records <= 0 {
		return Result{}, fmt.Errorf("device: records must be positive, got %d", records)
	}
	m, err := model.New(kind, seed)
	if err != nil {
		return Result{}, err
	}
	spec, err := model.InputSpecFor(kind)
	if err != nil {
		return Result{}, err
	}
	steps := records
	if steps > maxValidationSteps {
		steps = maxValidationSteps
	}
	ds, err := data.Dummy(spec, steps, seed)
	if err != nil {
		return Result{}, err
	}
	for _, ex := range ds.Examples {
		if loss := m.TrainStep(ex); loss < 0 {
			return Result{}, fmt.Errorf("device: model %s produced negative loss", kind)
		}
	}
	m.ZeroGrads()

	cost := m.Cost()
	sec := secPerRecord(cost, p)
	computeSec := computeSecPerRecord(cost, p)
	res := Result{
		Device:           p.Name,
		Platform:         p.Platform,
		Model:            kind,
		Records:          records,
		SecPerRecord:     sec,
		TrainSeconds:     sec * float64(records),
		CPUPercent:       cpuPercent(computeSec, sec, p),
		MemoryMB:         float64(cost.MemoryBytes(runtimeArenaBytes[kind])) / 1e6,
		StorageMB:        float64(cost.StorageBytes()) / 1e6,
		NetworkMB:        float64(cost.NetworkBytesPerRound()) / 1e6,
		ValidatedRecords: steps,
	}
	return res, nil
}

// computeSecPerRecord is the pure compute component of a training step.
func computeSecPerRecord(cost model.CostProfile, p Profile) float64 {
	eff := cost.MatmulFrac*p.MatmulGFLOPS + (1-cost.MatmulFrac)*p.GatherGFLOPS
	return cost.TrainFLOPs / (eff * 1e9)
}

// secPerRecord adds feature-processing overhead to the compute time.
func secPerRecord(cost model.CostProfile, p Profile) float64 {
	return computeSecPerRecord(cost, p) + cost.PrepCostPerExample*p.PrepMicros*1e-6
}

// cpuPercent estimates mean device CPU usage while training: the training
// thread saturates one core during compute and idles through I/O-bound
// preprocessing (which we charge at a low duty cycle).
func cpuPercent(computeSec, totalSec float64, p Profile) float64 {
	if totalSec <= 0 || p.Cores <= 0 {
		return 0
	}
	prepDuty := 0.25
	busy := computeSec + (totalSec-computeSec)*prepDuty
	return 100 * busy / totalSec / float64(p.Cores)
}

// SecPerRecordOn exposes the projection for the simulator's task-duration
// model (t in taskDuration = t·E·|Dk| + 2M/N).
func SecPerRecordOn(kind model.Kind, p Profile) (float64, error) {
	m, err := model.New(kind, 0)
	if err != nil {
		return 0, err
	}
	return secPerRecord(m.Cost(), p), nil
}

// Table5Row aggregates a model's benchmark across the device pool, matching
// the paper's reporting: mean/stdev training time over `records` records and
// mean CPU utilization across 27 devices.
type Table5Row struct {
	Model       model.Kind
	Description string
	Params      int
	StorageMB   float64
	NetworkMB   float64
	MemoryMB    float64
	MeanTimeS   float64
	StdevTimeS  float64
	MeanCPU     float64
}

// Table5 benchmarks every zoo model across the pool over `records` records.
func Table5(pool []Profile, records int, seed int64) ([]Table5Row, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("device: empty pool")
	}
	rows := make([]Table5Row, 0, len(model.Kinds))
	for _, kind := range model.Kinds {
		m, err := model.New(kind, seed)
		if err != nil {
			return nil, err
		}
		times := make([]float64, 0, len(pool))
		cpus := make([]float64, 0, len(pool))
		var row Table5Row
		for _, p := range pool {
			r, err := Run(kind, p, records, seed)
			if err != nil {
				return nil, err
			}
			times = append(times, r.TrainSeconds)
			cpus = append(cpus, r.CPUPercent)
			row.StorageMB = r.StorageMB
			row.NetworkMB = r.NetworkMB
			row.MemoryMB = r.MemoryMB
		}
		ts := metrics.Summarize(times)
		cs := metrics.Summarize(cpus)
		row.Model = kind
		row.Description = m.Name()
		row.Params = m.NumParams()
		row.MeanTimeS = ts.Mean
		row.StdevTimeS = ts.Std
		row.MeanCPU = cs.Mean
		rows = append(rows, row)
	}
	return rows, nil
}

// TimeDistribution builds the empirical per-example training-time
// distribution T the simulator samples from ("we sample t ← T, the
// distribution of time to train a single example from on-device
// benchmarks", §3.4), weighted by device share.
type TimeDistribution struct {
	secs    []float64
	weights []float64
	total   float64
}

// NewTimeDistribution profiles the model across the pool.
func NewTimeDistribution(kind model.Kind, pool []Profile) (*TimeDistribution, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("device: empty pool")
	}
	m, err := model.New(kind, 0)
	if err != nil {
		return nil, err
	}
	cost := m.Cost()
	td := &TimeDistribution{}
	for _, p := range pool {
		w := p.Share
		if w <= 0 {
			w = 1e-3
		}
		td.secs = append(td.secs, secPerRecord(cost, p))
		td.weights = append(td.weights, w)
		td.total += w
	}
	return td, nil
}

// Sample draws a per-example training time t, with ±10% run-to-run jitter.
func (td *TimeDistribution) Sample(rng *rand.Rand) float64 {
	u := rng.Float64() * td.total
	var cum float64
	idx := len(td.secs) - 1
	for i, w := range td.weights {
		cum += w
		if u < cum {
			idx = i
			break
		}
	}
	jitter := 1 + (rng.Float64()*2-1)*0.1
	return td.secs[idx] * jitter
}

// Mean returns the share-weighted mean per-example time.
func (td *TimeDistribution) Mean() float64 {
	var s float64
	for i, t := range td.secs {
		s += t * td.weights[i]
	}
	return s / td.total
}
