package device

import (
	"testing"

	"flint/internal/model"
)

func TestCompatibleDevicesTinyModelCoversAll(t *testing.T) {
	pool := BenchPool()
	ok, excluded, err := CompatibleDevices(model.KindA, pool, DefaultCompatibility)
	if err != nil {
		t.Fatal(err)
	}
	// The tiny model trains 5k records in seconds everywhere.
	if len(ok) != len(pool) {
		t.Fatalf("model A should be compatible everywhere, excluded: %v", excluded)
	}
	if got := CoverageShare(pool, ok); got < 0.999 {
		t.Fatalf("coverage %v", got)
	}
}

func TestCompatibleDevicesHeavyModelExcludesLowEnd(t *testing.T) {
	pool := BenchPool()
	policy := CompatibilityPolicy{MaxTrainSeconds: 300, BenchRecords: 5000, MinRAMMB: 3072}
	ok, excluded, err := CompatibleDevices(model.KindE, pool, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(excluded) == 0 {
		t.Fatal("model E at a 300s bound must exclude slow devices")
	}
	if ok["Galaxy-J7"] {
		t.Fatal("the slowest device must be excluded for model E")
	}
	if !ok["iPhone-13"] {
		t.Fatalf("the fastest device must stay compatible: %v", excluded["iPhone-13"])
	}
	share := CoverageShare(pool, ok)
	if share <= 0 || share >= 1 {
		t.Fatalf("coverage %v should be a strict subset", share)
	}
}

func TestCompatibilityRAMGate(t *testing.T) {
	pool := BenchPool()
	policy := CompatibilityPolicy{MaxTrainSeconds: 1e9, BenchRecords: 100, MinRAMMB: 4096}
	ok, excluded, err := CompatibleDevices(model.KindA, pool, policy)
	if err != nil {
		t.Fatal(err)
	}
	for name := range ok {
		if ByName(pool)[name].RAMMB < 4096 {
			t.Fatalf("device %s passed despite low RAM", name)
		}
	}
	found := false
	for _, reason := range excluded {
		if len(reason) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("exclusion reasons must be reported")
	}
}

func TestCompatibilityValidation(t *testing.T) {
	if _, _, err := CompatibleDevices(model.KindA, BenchPool(), CompatibilityPolicy{}); err == nil {
		t.Fatal("empty policy must fail")
	}
	if _, _, err := CompatibleDevices(model.KindA, nil, DefaultCompatibility); err == nil {
		t.Fatal("empty pool must fail")
	}
	if CoverageShare(nil, nil) != 0 {
		t.Fatal("empty coverage must be 0")
	}
}
