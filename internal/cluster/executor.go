package cluster

import (
	"fmt"
	"math/rand"
	"net/rpc"
	"sync"
	"time"

	"flint/internal/data"
	"flint/internal/model"
	"flint/internal/tensor"
)

// Executor is a worker process that polls the leader for tasks, trains on
// its locally-held partition, and submits deltas. Each executor owns one
// partition of the proxy dataset (§3.4: "each executor loads a partition of
// the proxy dataset and maps its records to clients").
type Executor struct {
	ID       string
	shards   map[int64]data.ClientShard
	client   *rpc.Client
	replica  model.Model
	interval time.Duration

	mu      sync.Mutex
	stopped bool
	done    chan struct{}
	// Paused simulates a hung process: no pings, no polls.
	paused bool
}

// NewExecutor connects to the leader and prepares the local partition.
func NewExecutor(id, leaderAddr string, shards []data.ClientShard, interval time.Duration) (*Executor, error) {
	if id == "" {
		return nil, fmt.Errorf("cluster: executor needs an id")
	}
	client, err := rpc.Dial("tcp", leaderAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial leader: %w", err)
	}
	m := make(map[int64]data.ClientShard, len(shards))
	for _, s := range shards {
		m[s.ClientID] = s
	}
	return &Executor{
		ID:       id,
		shards:   m,
		client:   client,
		interval: interval,
		done:     make(chan struct{}),
	}, nil
}

// Start launches the poll loop.
func (e *Executor) Start() {
	go e.loop()
}

// Pause stops heartbeats and polling without closing the connection,
// simulating a stalled executor the leader must notice.
func (e *Executor) Pause() {
	e.mu.Lock()
	e.paused = true
	e.mu.Unlock()
}

// ResumeWork restores heartbeats and polling.
func (e *Executor) ResumeWork() {
	e.mu.Lock()
	e.paused = false
	e.mu.Unlock()
}

// Stop terminates the loop and closes the connection.
func (e *Executor) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.mu.Unlock()
	<-e.done
	e.client.Close()
}

func (e *Executor) loop() {
	defer close(e.done)
	for {
		e.mu.Lock()
		stopped, paused := e.stopped, e.paused
		e.mu.Unlock()
		if stopped {
			return
		}
		if paused {
			time.Sleep(e.interval)
			continue
		}
		var pong PingReply
		if err := e.client.Call("Leader.Ping", &PingArgs{ExecutorID: e.ID}, &pong); err != nil {
			return // leader gone
		}
		var poll PollReply
		if err := e.client.Call("Leader.PollTask", &PollArgs{ExecutorID: e.ID}, &poll); err != nil {
			return
		}
		if !poll.Available {
			time.Sleep(e.interval)
			continue
		}
		res := e.execute(poll.Task)
		var ack SubmitReply
		if err := e.client.Call("Leader.SubmitResult", &SubmitArgs{Result: res}, &ack); err != nil {
			return
		}
	}
}

// execute trains the task's client locally and produces the delta.
func (e *Executor) execute(t Task) Result {
	res := Result{TaskID: t.TaskID, ClientID: t.ClientID}
	shard, ok := e.shards[t.ClientID]
	if !ok || len(shard.Examples) == 0 {
		res.Err = fmt.Sprintf("executor %s holds no data for client %d", e.ID, t.ClientID)
		return res
	}
	if e.replica == nil || string(e.replica.Kind()) != t.Kind {
		m, err := model.New(model.Kind(t.Kind), 0)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		e.replica = m
	}
	if err := e.replica.SetParams(tensor.Vector(t.Params)); err != nil {
		res.Err = err.Error()
		return res
	}
	rng := rand.New(rand.NewSource(t.Seed ^ int64(t.TaskID)))
	loss, err := model.TrainLocal(e.replica, shard.Examples,
		model.LocalConfig{Epochs: t.Epochs, BatchSize: t.Batch, LR: t.LR}, rng)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	delta := e.replica.Params().Clone()
	delta.Sub(tensor.Vector(t.Params))
	res.Delta = delta
	res.Weight = float64(len(shard.Examples))
	res.Loss = loss
	return res
}
