// Package cluster is a process-level realization of the experimental
// framework's control plane (§3.4): a leader service that executors poll
// for tasks over net/rpc, with the paper's fault-tolerance behavior — "to
// recover from executor failures, the leader node halts dispatching tasks
// until all executors have pinged it with a healthy status-code."
//
// The in-process fedsim package simulates millions of clients in virtual
// time; this package demonstrates the same leader/executor contract across
// real process boundaries at small scale.
package cluster

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"flint/internal/aggregator"
	"flint/internal/model"
	"flint/internal/tensor"
)

// Task is one unit of client training dispatched to an executor. The
// executor resolves the client's data from its own partition (partitions
// are distributed ahead of time, §3.4).
type Task struct {
	TaskID   uint64
	ClientID int64
	Kind     string
	Params   []float64
	Epochs   int
	Batch    int
	LR       float64
	Seed     int64
}

// Result is an executor's completed task.
type Result struct {
	TaskID   uint64
	ClientID int64
	Delta    []float64
	Weight   float64
	Loss     float64
	Err      string
}

// PingArgs carries an executor heartbeat.
type PingArgs struct{ ExecutorID string }

// PingReply acknowledges a heartbeat.
type PingReply struct{ OK bool }

// PollArgs requests work.
type PollArgs struct{ ExecutorID string }

// PollReply carries a task when available; Halted reports that dispatch is
// frozen pending executor recovery.
type PollReply struct {
	Available bool
	Halted    bool
	Task      Task
}

// SubmitArgs returns a result.
type SubmitArgs struct{ Result Result }

// SubmitReply acknowledges a result.
type SubmitReply struct{ OK bool }

// Leader is the RPC-served coordination service.
type Leader struct {
	mu          sync.Mutex
	pending     []Task
	results     map[uint64]Result
	lastPing    map[string]time.Time
	owner       map[int64]string // client -> executor holding its partition
	healthGrace time.Duration
	nextTask    uint64
	resultCh    chan struct{}
}

// NewLeader creates a leader; executors must ping at least every grace
// period or dispatch halts.
func NewLeader(grace time.Duration) *Leader {
	return &Leader{
		results:     make(map[uint64]Result),
		lastPing:    make(map[string]time.Time),
		owner:       make(map[int64]string),
		healthGrace: grace,
		resultCh:    make(chan struct{}, 1024),
	}
}

// Register declares an executor as part of the roster (counted for health)
// together with the clients whose partition it loaded; tasks for those
// clients are only handed to this executor.
func (l *Leader) Register(executorID string, clients []int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastPing[executorID] = time.Now()
	for _, c := range clients {
		l.owner[c] = executorID
	}
}

// Ping is the executor heartbeat RPC.
func (l *Leader) Ping(args *PingArgs, reply *PingReply) error {
	if args.ExecutorID == "" {
		return fmt.Errorf("cluster: ping without executor id")
	}
	l.mu.Lock()
	l.lastPing[args.ExecutorID] = time.Now()
	l.mu.Unlock()
	reply.OK = true
	return nil
}

// healthyLocked reports whether every registered executor pinged recently.
func (l *Leader) healthyLocked() bool {
	now := time.Now()
	for _, last := range l.lastPing {
		if now.Sub(last) > l.healthGrace {
			return false
		}
	}
	return true
}

// Healthy reports cluster health (all executors within the grace window).
func (l *Leader) Healthy() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.healthyLocked()
}

// PollTask hands out the next pending task owned by the calling executor
// (unowned clients go to anyone) unless the cluster is unhealthy, in which
// case dispatch is halted.
func (l *Leader) PollTask(args *PollArgs, reply *PollReply) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.healthyLocked() {
		reply.Halted = true
		return nil
	}
	for i, t := range l.pending {
		owner, owned := l.owner[t.ClientID]
		if owned && owner != args.ExecutorID {
			continue
		}
		reply.Task = t
		l.pending = append(l.pending[:i], l.pending[i+1:]...)
		reply.Available = true
		return nil
	}
	return nil
}

// SubmitResult records a completed task.
func (l *Leader) SubmitResult(args *SubmitArgs, reply *SubmitReply) error {
	l.mu.Lock()
	l.results[args.Result.TaskID] = args.Result
	l.mu.Unlock()
	select {
	case l.resultCh <- struct{}{}:
	default:
	}
	reply.OK = true
	return nil
}

// Enqueue schedules tasks for dispatch and returns their ids.
func (l *Leader) Enqueue(tasks []Task) []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := make([]uint64, len(tasks))
	for i := range tasks {
		l.nextTask++
		tasks[i].TaskID = l.nextTask
		ids[i] = l.nextTask
		l.pending = append(l.pending, tasks[i])
	}
	return ids
}

// WaitResults blocks until all ids are complete or the timeout passes.
func (l *Leader) WaitResults(ids []uint64, timeout time.Duration) (map[uint64]Result, error) {
	deadline := time.After(timeout)
	for {
		l.mu.Lock()
		done := 0
		for _, id := range ids {
			if _, ok := l.results[id]; ok {
				done++
			}
		}
		if done == len(ids) {
			out := make(map[uint64]Result, len(ids))
			for _, id := range ids {
				out[id] = l.results[id]
			}
			l.mu.Unlock()
			return out, nil
		}
		l.mu.Unlock()
		select {
		case <-l.resultCh:
		case <-deadline:
			return nil, fmt.Errorf("cluster: timed out waiting for %d results", len(ids))
		}
	}
}

// RunRound drives one synchronous FedAvg round over the given clients: it
// enqueues one task per client with the current global parameters, waits
// for results, and aggregates the successful deltas.
func (l *Leader) RunRound(global model.Model, clients []int64, epochs, batch int, lr float64, seed int64, timeout time.Duration) (int, error) {
	params := global.Params()
	tasks := make([]Task, len(clients))
	for i, c := range clients {
		tasks[i] = Task{
			ClientID: c,
			Kind:     string(global.Kind()),
			Params:   append([]float64(nil), params...),
			Epochs:   epochs,
			Batch:    batch,
			LR:       lr,
			Seed:     seed,
		}
	}
	ids := l.Enqueue(tasks)
	results, err := l.WaitResults(ids, timeout)
	if err != nil {
		return 0, err
	}
	var updates []aggregator.Update
	for _, id := range ids {
		r := results[id]
		if r.Err != "" {
			continue
		}
		updates = append(updates, aggregator.Update{
			ClientID: r.ClientID,
			Delta:    tensor.Vector(r.Delta),
			Weight:   r.Weight,
		})
	}
	if len(updates) == 0 {
		return 0, fmt.Errorf("cluster: round produced no successful updates")
	}
	if err := (aggregator.FedAvg{}).Aggregate(params, updates); err != nil {
		return 0, err
	}
	return len(updates), nil
}

// Serve registers the leader on a TCP listener and serves connections until
// the listener closes. Returns the bound address.
func Serve(l *Leader) (string, func() error, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Leader", l); err != nil {
		return "", nil, fmt.Errorf("cluster: register: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("cluster: listen: %w", err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln.Addr().String(), ln.Close, nil
}
