package cluster

import (
	"fmt"
	"testing"
	"time"

	"flint/internal/data"
	"flint/internal/model"
	"flint/internal/partition"
)

// testCluster boots a leader and n executors over loopback TCP, splitting
// the client shards round-robin as §3.4 prescribes.
func testCluster(t *testing.T, n int, clients int) (*Leader, []*Executor, string, func()) {
	t.Helper()
	gen, err := data.NewAdsGenerator(data.DefaultAdsConfig(clients, 11))
	if err != nil {
		t.Fatal(err)
	}
	shards := gen.GenerateClients(clients)
	parts, err := partition.RoundRobin(shards, n)
	if err != nil {
		t.Fatal(err)
	}
	leader := NewLeader(500 * time.Millisecond)
	addr, closeFn, err := Serve(leader)
	if err != nil {
		t.Fatal(err)
	}
	var execs []*Executor
	for i := 0; i < n; i++ {
		ex, err := NewExecutor(
			string(rune('A'+i)), addr, parts[i].Shards, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		owned := make([]int64, 0, len(parts[i].Shards))
		for _, s := range parts[i].Shards {
			owned = append(owned, s.ClientID)
		}
		leader.Register(ex.ID, owned)
		ex.Start()
		execs = append(execs, ex)
	}
	cleanup := func() {
		for _, ex := range execs {
			ex.Stop()
		}
		closeFn()
	}
	return leader, execs, addr, cleanup
}

func TestRoundAcrossExecutors(t *testing.T) {
	leader, _, _, cleanup := testCluster(t, 3, 12)
	defer cleanup()

	global, err := model.New(model.KindB, 5)
	if err != nil {
		t.Fatal(err)
	}
	before := global.Params().Clone()
	clients := []int64{0, 1, 2, 3, 4, 5}
	n, err := leader.RunRound(global, clients, 1, 16, 0.1, 7, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(clients) {
		t.Fatalf("aggregated %d of %d", n, len(clients))
	}
	diff := global.Params().Clone()
	diff.Sub(before)
	if diff.Norm2() == 0 {
		t.Fatal("round must move the global model")
	}
}

func TestMissingClientReportsError(t *testing.T) {
	leader, _, _, cleanup := testCluster(t, 2, 4)
	defer cleanup()
	global, _ := model.New(model.KindB, 1)
	// Client 99 exists on no executor: every executor that pulls it
	// reports an error; with only that client the round fails.
	_, err := leader.RunRound(global, []int64{99}, 1, 8, 0.1, 1, 5*time.Second)
	if err == nil {
		t.Fatal("round over a missing client must fail")
	}
}

func TestHaltOnUnhealthyExecutor(t *testing.T) {
	leader, execs, _, cleanup := testCluster(t, 2, 8)
	defer cleanup()

	// Stall one executor; after the grace period the leader must halt.
	execs[0].Pause()
	deadline := time.Now().Add(3 * time.Second)
	for leader.Healthy() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if leader.Healthy() {
		t.Fatal("leader should detect the stalled executor")
	}
	// Polls are denied while halted.
	var poll PollReply
	if err := leader.PollTask(&PollArgs{ExecutorID: "B"}, &poll); err != nil {
		t.Fatal(err)
	}
	if !poll.Halted {
		t.Fatal("dispatch must be halted while an executor is unhealthy")
	}

	// Recovery: the executor resumes pinging and dispatch unblocks.
	execs[0].ResumeWork()
	deadline = time.Now().Add(3 * time.Second)
	for !leader.Healthy() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if !leader.Healthy() {
		t.Fatal("leader should recover after the executor resumes")
	}
	// A full round completes post-recovery.
	global, _ := model.New(model.KindB, 2)
	if _, err := leader.RunRound(global, []int64{0, 1}, 1, 8, 0.1, 3, 20*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestExecutorDeathMidRoundHaltsAndRecovers is the hard-failure variant
// of the halt drill: an executor dies outright (connection closed, not
// merely stalled) while a round is in flight. The leader must freeze
// dispatch for everyone once the grace window lapses, keep the dead
// executor's tasks queued, and finish the parked round when a
// replacement process registers the same partition and starts pinging.
func TestExecutorDeathMidRoundHaltsAndRecovers(t *testing.T) {
	const execsN, clients = 2, 8
	leader, execs, addr, cleanup := testCluster(t, execsN, clients)
	defer cleanup()

	// Executor A dies before it can poll anything: its partition's tasks
	// are permanently stuck until a replacement shows up, which makes
	// the mid-round halt deterministic (no task is lost in flight).
	execs[0].Stop()

	global, err := model.New(model.KindB, 9)
	if err != nil {
		t.Fatal(err)
	}
	roundClients := []int64{0, 1, 2, 3, 4, 5}
	roundDone := make(chan error, 1)
	go func() {
		n, err := leader.RunRound(global, roundClients, 1, 8, 0.1, 7, 20*time.Second)
		if err == nil && n != len(roundClients) {
			err = fmt.Errorf("aggregated %d of %d", n, len(roundClients))
		}
		roundDone <- err
	}()

	deadline := time.Now().Add(3 * time.Second)
	for leader.Healthy() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if leader.Healthy() {
		t.Fatal("leader never noticed the dead executor")
	}
	// Dispatch is frozen for the surviving executor too — the paper's
	// rule halts the round, it does not shrink it.
	var poll PollReply
	if err := leader.PollTask(&PollArgs{ExecutorID: "B"}, &poll); err != nil {
		t.Fatal(err)
	}
	if !poll.Halted {
		t.Fatal("dispatch must halt for every executor while one is dead")
	}
	select {
	case err := <-roundDone:
		t.Fatalf("round finished during the halt: %v", err)
	default:
	}

	// A replacement process loads the same partition, registers under
	// the dead executor's id, and starts pinging: membership heals and
	// the parked round drains.
	gen, err := data.NewAdsGenerator(data.DefaultAdsConfig(clients, 11))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.RoundRobin(gen.GenerateClients(clients), execsN)
	if err != nil {
		t.Fatal(err)
	}
	replacement, err := NewExecutor("A", addr, parts[0].Shards, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	owned := make([]int64, 0, len(parts[0].Shards))
	for _, s := range parts[0].Shards {
		owned = append(owned, s.ClientID)
	}
	leader.Register(replacement.ID, owned)
	replacement.Start()
	defer replacement.Stop()

	if err := <-roundDone; err != nil {
		t.Fatalf("parked round failed after recovery: %v", err)
	}
	if !leader.Healthy() {
		t.Fatal("leader still unhealthy after the replacement registered")
	}
}

// TestHaltedPollLeavesQueueIntact pins the recovery contract at the
// queue level: a halted poll must not consume pending tasks, and the
// very first poll after a reviving re-ping hands out the parked task.
func TestHaltedPollLeavesQueueIntact(t *testing.T) {
	leader := NewLeader(50 * time.Millisecond)
	leader.Register("A", []int64{1})
	ids := leader.Enqueue([]Task{{ClientID: 1, Kind: "A"}})

	time.Sleep(80 * time.Millisecond) // grace lapses: A counts as lost
	var poll PollReply
	if err := leader.PollTask(&PollArgs{ExecutorID: "A"}, &poll); err != nil {
		t.Fatal(err)
	}
	if !poll.Halted || poll.Available {
		t.Fatalf("stale-membership poll got %+v, want halted and empty", poll)
	}

	// One re-ping revives membership; the task parked, it did not drop.
	var pong PingReply
	if err := leader.Ping(&PingArgs{ExecutorID: "A"}, &pong); err != nil {
		t.Fatal(err)
	}
	poll = PollReply{}
	if err := leader.PollTask(&PollArgs{ExecutorID: "A"}, &poll); err != nil {
		t.Fatal(err)
	}
	if poll.Halted || !poll.Available || poll.Task.TaskID != ids[0] {
		t.Fatalf("post-recovery poll got %+v, want task %d", poll, ids[0])
	}
}

func TestWaitResultsTimeout(t *testing.T) {
	leader := NewLeader(time.Second)
	// No executors: waiting for a phantom id must time out quickly.
	ids := leader.Enqueue([]Task{{ClientID: 1, Kind: "A"}})
	if _, err := leader.WaitResults(ids, 50*time.Millisecond); err == nil {
		t.Fatal("expected timeout")
	}
}

func TestPingValidation(t *testing.T) {
	leader := NewLeader(time.Second)
	var reply PingReply
	if err := leader.Ping(&PingArgs{}, &reply); err == nil {
		t.Fatal("empty executor id must fail")
	}
}
