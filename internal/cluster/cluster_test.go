package cluster

import (
	"testing"
	"time"

	"flint/internal/data"
	"flint/internal/model"
	"flint/internal/partition"
)

// testCluster boots a leader and n executors over loopback TCP, splitting
// the client shards round-robin as §3.4 prescribes.
func testCluster(t *testing.T, n int, clients int) (*Leader, []*Executor, func()) {
	t.Helper()
	gen, err := data.NewAdsGenerator(data.DefaultAdsConfig(clients, 11))
	if err != nil {
		t.Fatal(err)
	}
	shards := gen.GenerateClients(clients)
	parts, err := partition.RoundRobin(shards, n)
	if err != nil {
		t.Fatal(err)
	}
	leader := NewLeader(500 * time.Millisecond)
	addr, closeFn, err := Serve(leader)
	if err != nil {
		t.Fatal(err)
	}
	var execs []*Executor
	for i := 0; i < n; i++ {
		ex, err := NewExecutor(
			string(rune('A'+i)), addr, parts[i].Shards, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		owned := make([]int64, 0, len(parts[i].Shards))
		for _, s := range parts[i].Shards {
			owned = append(owned, s.ClientID)
		}
		leader.Register(ex.ID, owned)
		ex.Start()
		execs = append(execs, ex)
	}
	cleanup := func() {
		for _, ex := range execs {
			ex.Stop()
		}
		closeFn()
	}
	return leader, execs, cleanup
}

func TestRoundAcrossExecutors(t *testing.T) {
	leader, _, cleanup := testCluster(t, 3, 12)
	defer cleanup()

	global, err := model.New(model.KindB, 5)
	if err != nil {
		t.Fatal(err)
	}
	before := global.Params().Clone()
	clients := []int64{0, 1, 2, 3, 4, 5}
	n, err := leader.RunRound(global, clients, 1, 16, 0.1, 7, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(clients) {
		t.Fatalf("aggregated %d of %d", n, len(clients))
	}
	diff := global.Params().Clone()
	diff.Sub(before)
	if diff.Norm2() == 0 {
		t.Fatal("round must move the global model")
	}
}

func TestMissingClientReportsError(t *testing.T) {
	leader, _, cleanup := testCluster(t, 2, 4)
	defer cleanup()
	global, _ := model.New(model.KindB, 1)
	// Client 99 exists on no executor: every executor that pulls it
	// reports an error; with only that client the round fails.
	_, err := leader.RunRound(global, []int64{99}, 1, 8, 0.1, 1, 5*time.Second)
	if err == nil {
		t.Fatal("round over a missing client must fail")
	}
}

func TestHaltOnUnhealthyExecutor(t *testing.T) {
	leader, execs, cleanup := testCluster(t, 2, 8)
	defer cleanup()

	// Stall one executor; after the grace period the leader must halt.
	execs[0].Pause()
	deadline := time.Now().Add(3 * time.Second)
	for leader.Healthy() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if leader.Healthy() {
		t.Fatal("leader should detect the stalled executor")
	}
	// Polls are denied while halted.
	var poll PollReply
	if err := leader.PollTask(&PollArgs{ExecutorID: "B"}, &poll); err != nil {
		t.Fatal(err)
	}
	if !poll.Halted {
		t.Fatal("dispatch must be halted while an executor is unhealthy")
	}

	// Recovery: the executor resumes pinging and dispatch unblocks.
	execs[0].ResumeWork()
	deadline = time.Now().Add(3 * time.Second)
	for !leader.Healthy() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if !leader.Healthy() {
		t.Fatal("leader should recover after the executor resumes")
	}
	// A full round completes post-recovery.
	global, _ := model.New(model.KindB, 2)
	if _, err := leader.RunRound(global, []int64{0, 1}, 1, 8, 0.1, 3, 20*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestWaitResultsTimeout(t *testing.T) {
	leader := NewLeader(time.Second)
	// No executors: waiting for a phantom id must time out quickly.
	ids := leader.Enqueue([]Task{{ClientID: 1, Kind: "A"}})
	if _, err := leader.WaitResults(ids, 50*time.Millisecond); err == nil {
		t.Fatal("expected timeout")
	}
}

func TestPingValidation(t *testing.T) {
	leader := NewLeader(time.Second)
	var reply PingReply
	if err := leader.Ping(&PingArgs{}, &reply); err == nil {
		t.Fatal("empty executor id must fail")
	}
}
