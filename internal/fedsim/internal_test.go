package fedsim

import (
	"math/rand"
	"testing"

	"flint/internal/availability"
	"flint/internal/data"
	"flint/internal/model"
	"flint/internal/network"
	"flint/internal/tensor"
)

func TestSnapshotStoreRefcounting(t *testing.T) {
	s := newSnapshotStore()
	global := tensor.Vector{1, 2, 3}
	a := s.acquire(0, global)
	b := s.acquire(0, global)
	if &a[0] != &b[0] {
		t.Fatal("same-round acquisitions must share one snapshot")
	}
	// Mutating global must not affect the snapshot.
	global[0] = 99
	if a[0] != 1 {
		t.Fatal("snapshot must be an independent copy")
	}
	if s.live() != 1 {
		t.Fatalf("live %d", s.live())
	}
	s.release(0)
	if s.live() != 1 {
		t.Fatal("snapshot freed too early")
	}
	s.release(0)
	if s.live() != 0 {
		t.Fatal("snapshot leaked")
	}
	// Separate rounds hold separate snapshots.
	s.acquire(1, global)
	s.acquire(2, global)
	if s.live() != 2 {
		t.Fatalf("live %d, want 2", s.live())
	}
}

func TestWindowCursorWrapsPeriodically(t *testing.T) {
	sessions := []availability.Session{
		{ClientID: 1, Start: 10, End: 20},
		{ClientID: 2, Start: 30, End: 50},
	}
	trace := availability.BuildTrace(sessions)
	c := newWindowCursor(trace)
	// First period.
	w1, ok := c.next()
	if !ok || w1.Start != 10 {
		t.Fatalf("w1: %+v", w1)
	}
	w2, _ := c.next()
	if w2.Start != 30 {
		t.Fatalf("w2: %+v", w2)
	}
	// Wrap: horizon is 50, so the next window repeats at +50.
	w3, ok := c.next()
	if !ok || w3.Start != 60 || w3.ClientID != 1 {
		t.Fatalf("w3 must wrap with offset: %+v", w3)
	}
	w4, _ := c.next()
	if w4.Start != 80 {
		t.Fatalf("w4: %+v", w4)
	}
	// Monotone non-decreasing forever.
	prev := w4.Start
	for i := 0; i < 100; i++ {
		w, ok := c.next()
		if !ok {
			t.Fatal("cursor must not exhaust")
		}
		if w.Start < prev {
			t.Fatal("cursor must be time-ordered")
		}
		prev = w.Start
	}
}

func TestWindowCursorEmptyTrace(t *testing.T) {
	c := newWindowCursor(availability.BuildTrace(nil))
	if _, ok := c.next(); ok {
		t.Fatal("empty trace must yield nothing")
	}
}

func TestTaskDurationFormula(t *testing.T) {
	// With a deterministic bandwidth (sigma 0, slow frac 0), the duration
	// decomposes exactly into compute + 2M/N.
	bw := network.BandwidthModel{MedianMbps: 8, Sigma: 0, SlowFrac: 0, FloorMbps: 0.1}
	rng := rand.New(rand.NewSource(1))
	perEx, epochs, shard, update := 0.01, 2, 100, 1_000_000
	got := taskDuration(perEx, epochs, shard, update, bw, rng)
	compute := 0.01 * 2 * 100
	net := float64(2*update) / (8e6 / 8)
	want := compute + net
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("duration %v, want %v", got, want)
	}
}

func TestTaskRNGDecorrelated(t *testing.T) {
	// Adjacent task sequences must not produce correlated first draws.
	a := taskRNG(1, 1).Float64()
	b := taskRNG(1, 2).Float64()
	c := taskRNG(2, 1).Float64()
	if a == b || a == c {
		t.Fatal("task RNG streams must differ")
	}
	// And be stable.
	if a != taskRNG(1, 1).Float64() {
		t.Fatal("task RNG must be deterministic")
	}
}

func TestExecutorPoolRunsJobs(t *testing.T) {
	pool, err := newExecutorPool(3, model.KindA)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.close()
	base, err := model.New(model.KindA, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := model.InputSpecFor(model.KindA)
	ds, _ := data.Dummy(spec, 16, 1)
	futures := make([]chan trainResult, 8)
	for i := range futures {
		futures[i] = pool.submit(trainJob{
			clientID: int64(i),
			base:     base.Params(),
			examples: ds.Examples,
			local:    model.LocalConfig{Epochs: 1, BatchSize: 4, LR: 0.1},
			seed:     1,
			taskSeq:  uint64(i),
		})
	}
	for i, f := range futures {
		res := <-f
		if res.err != nil {
			t.Fatal(res.err)
		}
		if res.clientID != int64(i) {
			t.Fatalf("result routing broken: %d", res.clientID)
		}
		if res.delta.Norm2() == 0 {
			t.Fatal("training must produce a non-zero delta")
		}
		if res.weight != 16 {
			t.Fatalf("weight %v", res.weight)
		}
	}
}

func TestExecutorPoolValidation(t *testing.T) {
	if _, err := newExecutorPool(0, model.KindA); err == nil {
		t.Fatal("zero workers must fail")
	}
	if _, err := newExecutorPool(1, model.Kind("zz")); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestRunJobEmptyShard(t *testing.T) {
	replica, _ := model.New(model.KindA, 1)
	res := runJob(replica, trainJob{clientID: 5})
	if res.err == nil {
		t.Fatal("empty shard must error")
	}
}

func TestJobDeterministicAcrossWorkers(t *testing.T) {
	// The same job must yield identical deltas regardless of which
	// replica executes it — the property that makes the parallel executor
	// pool deterministic.
	base, _ := model.New(model.KindB, 7)
	spec, _ := model.InputSpecFor(model.KindB)
	ds, _ := data.Dummy(spec, 24, 3)
	job := trainJob{
		clientID: 1,
		base:     base.Params(),
		examples: ds.Examples,
		local:    model.LocalConfig{Epochs: 2, BatchSize: 8, LR: 0.2},
		seed:     11,
		taskSeq:  42,
	}
	r1, _ := model.New(model.KindB, 0)
	r2, _ := model.New(model.KindB, 999) // different init; must not matter
	a := runJob(r1, job)
	b := runJob(r2, job)
	if a.err != nil || b.err != nil {
		t.Fatal(a.err, b.err)
	}
	for i := range a.delta {
		if a.delta[i] != b.delta[i] {
			t.Fatal("job result depends on replica state; determinism broken")
		}
	}
}

func TestOutcomeConservation(t *testing.T) {
	// Invariant: started tasks = classified outcomes + still-in-flight.
	env := testEnv(t, 120, 31)
	cfg := asyncConfig(32)
	cfg.FailureRate = 0.2
	cfg.LocalEpochs = 3
	rep, err := Run(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	classified := rep.TotalSucceeded + rep.TotalInterrupted + rep.TotalStale +
		rep.TotalFailed + rep.TotalStragglers
	if classified > rep.TotalStarted {
		t.Fatalf("classified %d > started %d", classified, rep.TotalStarted)
	}
	inflight := rep.TotalStarted - classified
	if inflight > cfg.Concurrency {
		t.Fatalf("%d unaccounted tasks exceed the concurrency cap %d", inflight, cfg.Concurrency)
	}
}

func TestProxMuRuns(t *testing.T) {
	env := testEnv(t, 100, 33)
	cfg := asyncConfig(34)
	cfg.MaxRounds = 4
	cfg.ProxMu = 0.5
	rep, err := Run(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 4 {
		t.Fatalf("rounds %d", len(rep.Rounds))
	}
}
