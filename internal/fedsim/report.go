package fedsim

import (
	"fmt"
	"math"
)

// RoundStat records one aggregation round's model and system metrics; the
// framework "can report model and system metrics over both virtual clock
// time and communication rounds" (§3.4).
type RoundStat struct {
	Round int
	// VTime is the virtual time of the aggregation (seconds from job start).
	VTime float64
	// Metric is the offline eval metric, NaN when not evaluated this round.
	Metric float64
	// LR is the client learning rate used for tasks based on this round.
	LR float64
	// Per-round task outcomes (since the previous aggregation).
	Started, Succeeded, Interrupted, Stale, Failed, Stragglers int
	// BufferFillSec is the async time to populate the buffer (Fig 7).
	BufferFillSec float64
	// ComputeSec is client device compute consumed since the previous
	// aggregation (includes wasted work).
	ComputeSec float64
	// MeanLoss is the mean reported local training loss of aggregated
	// updates.
	MeanLoss float64
}

// Evaluated reports whether the round carries an eval metric.
func (r RoundStat) Evaluated() bool { return !math.IsNaN(r.Metric) }

// Report is the simulation output consumed by the decision workflow and the
// benchmark harness.
type Report struct {
	Mode      Mode
	ModelKind string
	Rounds    []RoundStat

	// Cumulative task outcomes. TotalStarted "includes failed and stale
	// tasks which are not aggregated" (Table 3).
	TotalStarted, TotalSucceeded, TotalInterrupted, TotalStale, TotalFailed, TotalStragglers int
	// TotalComputeSec is Σ taskDuration(k) over every client that
	// performed work — the device resource budget of §3.5.
	TotalComputeSec float64
	// FinalMetric is the last evaluated metric (NaN when never evaluated).
	FinalMetric float64
	// FinalVTime is the virtual time when the job stopped.
	FinalVTime float64
	// ReachedTarget reports whether TargetMetric stopped the job.
	ReachedTarget bool
	// StopReason is a human-readable stop cause.
	StopReason string
}

// LastEvaluated returns the most recent evaluated round, if any.
func (r *Report) LastEvaluated() (RoundStat, bool) {
	for i := len(r.Rounds) - 1; i >= 0; i-- {
		if r.Rounds[i].Evaluated() {
			return r.Rounds[i], true
		}
	}
	return RoundStat{}, false
}

// MetricSeries returns (round, vtime, metric) triples for evaluated rounds —
// the Fig 10 training curves.
func (r *Report) MetricSeries() (rounds []int, vtimes, values []float64) {
	for _, rs := range r.Rounds {
		if rs.Evaluated() {
			rounds = append(rounds, rs.Round)
			vtimes = append(vtimes, rs.VTime)
			values = append(values, rs.Metric)
		}
	}
	return rounds, vtimes, values
}

// MeanBufferFillSec averages the buffer population time over rounds (Fig 7).
func (r *Report) MeanBufferFillSec() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	var s float64
	n := 0
	for _, rs := range r.Rounds {
		if rs.BufferFillSec > 0 {
			s += rs.BufferFillSec
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// String summarizes the report in one line.
func (r *Report) String() string {
	return fmt.Sprintf("%s/%s: %d rounds, vtime %.0fs, started %d, ok %d, interrupted %d, stale %d, failed %d, stragglers %d, compute %.0fs, metric %.4f",
		r.Mode, r.ModelKind, len(r.Rounds), r.FinalVTime, r.TotalStarted, r.TotalSucceeded,
		r.TotalInterrupted, r.TotalStale, r.TotalFailed, r.TotalStragglers, r.TotalComputeSec, r.FinalMetric)
}
