package fedsim

import (
	"math"
	"path/filepath"
	"testing"

	"flint/internal/aggregator"
	"flint/internal/availability"
	"flint/internal/data"
	"flint/internal/device"
	"flint/internal/model"
	"flint/internal/network"
)

// testEnv builds a small ads-domain environment shared by the tests.
func testEnv(t *testing.T, clients int, seed int64) *Environment {
	return testEnvWith(t, clients, seed, 3.0)
}

// testEnvWith also controls the session arrival rate: concurrency effects
// (staleness, buffer contention) need dense arrivals at test scale.
func testEnvWith(t *testing.T, clients int, seed int64, sessionsPerDay float64) *Environment {
	t.Helper()
	gen, err := data.NewAdsGenerator(data.DefaultAdsConfig(clients, seed))
	if err != nil {
		t.Fatal(err)
	}
	logCfg := availability.DefaultLogConfig(clients, seed)
	logCfg.Days = 7
	logCfg.SessionsPerDay = sessionsPerDay
	log, err := availability.GenerateLog(logCfg)
	if err != nil {
		t.Fatal(err)
	}
	trace := availability.BuildTrace(log)
	times, err := device.NewTimeDistribution(model.KindB, device.BenchPool())
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(model.KindB, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &Environment{
		Shards:      GeneratorProvider{G: gen},
		Trace:       trace,
		Times:       times,
		Bandwidth:   network.Default,
		EvalSet:     gen.TestSet(1200),
		UpdateBytes: m.Cost().TransferBytes(),
	}
}

func asyncConfig(seed int64) Config {
	return Config{
		Mode:           Async,
		ModelKind:      model.KindB,
		Seed:           seed,
		LocalEpochs:    1,
		BatchSize:      16,
		Schedule:       model.ConstantLR(0.1),
		Concurrency:    24,
		BufferSize:     8,
		MaxStaleness:   6,
		StalenessAlpha: 0.5,
		ServerLR:       1,
		MaxRounds:      12,
		EvalEvery:      4,
		Metric:         model.MetricAUPR,
		Executors:      4,
	}
}

func syncConfig(seed int64) Config {
	return Config{
		Mode:             Sync,
		ModelKind:        model.KindB,
		Seed:             seed,
		LocalEpochs:      1,
		BatchSize:        16,
		Schedule:         model.ConstantLR(0.1),
		CohortSize:       8,
		OverCommit:       1.5,
		RoundDeadlineSec: 600,
		MaxRounds:        10,
		EvalEvery:        5,
		Metric:           model.MetricAUPR,
		Executors:        4,
	}
}

func TestAsyncRunCompletes(t *testing.T) {
	env := testEnv(t, 120, 1)
	rep, err := Run(asyncConfig(2), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 12 {
		t.Fatalf("rounds %d, want 12", len(rep.Rounds))
	}
	if rep.StopReason != "max rounds" {
		t.Fatalf("stop reason %q", rep.StopReason)
	}
	if rep.TotalStarted < rep.TotalSucceeded {
		t.Fatalf("started %d < succeeded %d", rep.TotalStarted, rep.TotalSucceeded)
	}
	if rep.TotalSucceeded < 12*8 {
		t.Fatalf("succeeded %d below aggregated minimum %d", rep.TotalSucceeded, 12*8)
	}
	if rep.TotalComputeSec <= 0 {
		t.Fatal("no client compute accounted")
	}
	// Virtual time must move forward monotonically across rounds.
	for i := 1; i < len(rep.Rounds); i++ {
		if rep.Rounds[i].VTime < rep.Rounds[i-1].VTime {
			t.Fatal("round vtimes must be nondecreasing")
		}
	}
	if rep.FinalVTime <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if math.IsNaN(rep.FinalMetric) {
		t.Fatal("expected an evaluated metric")
	}
}

func TestAsyncLearns(t *testing.T) {
	env := testEnv(t, 150, 3)
	cfg := asyncConfig(4)
	cfg.MaxRounds = 30
	cfg.EvalEvery = 2
	rep, err := Run(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	_, _, vals := rep.MetricSeries()
	if len(vals) < 3 {
		t.Fatalf("too few eval points: %d", len(vals))
	}
	first, last := vals[0], vals[len(vals)-1]
	if last <= first+0.02 {
		t.Fatalf("AUPR did not improve: %.4f -> %.4f", first, last)
	}
}

func TestSyncRunCompletesWithStragglers(t *testing.T) {
	env := testEnv(t, 120, 5)
	rep, err := Run(syncConfig(6), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 10 {
		t.Fatalf("rounds %d, want 10", len(rep.Rounds))
	}
	// Over-commitment at 1.5x must shed work: stragglers + interrupted +
	// failed > 0 across ten rounds.
	shed := rep.TotalStragglers + rep.TotalInterrupted + rep.TotalFailed
	if shed == 0 {
		t.Fatal("over-committed sync rounds should discard some work")
	}
	if rep.TotalSucceeded != 10*8 {
		t.Fatalf("aggregated %d updates, want exactly %d", rep.TotalSucceeded, 80)
	}
}

func TestDeterminism(t *testing.T) {
	envA := testEnv(t, 100, 7)
	envB := testEnv(t, 100, 7)
	repA, err := Run(asyncConfig(8), envA)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := Run(asyncConfig(8), envB)
	if err != nil {
		t.Fatal(err)
	}
	if len(repA.Rounds) != len(repB.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(repA.Rounds), len(repB.Rounds))
	}
	for i := range repA.Rounds {
		a, b := repA.Rounds[i], repB.Rounds[i]
		if a.VTime != b.VTime || a.Started != b.Started || a.Succeeded != b.Succeeded {
			t.Fatalf("round %d diverged: %+v vs %+v", i, a, b)
		}
		am, bm := a.Metric, b.Metric
		if (math.IsNaN(am) != math.IsNaN(bm)) || (!math.IsNaN(am) && am != bm) {
			t.Fatalf("round %d metrics diverged: %v vs %v", i, am, bm)
		}
	}
}

func TestBufferSizeDrivesFillTime(t *testing.T) {
	// Fig 7: larger aggregation buffers take longer to populate.
	env := testEnv(t, 150, 9)
	small := asyncConfig(10)
	small.BufferSize = 4
	small.MaxRounds = 10
	repSmall, err := Run(small, env)
	if err != nil {
		t.Fatal(err)
	}
	envB := testEnv(t, 150, 9)
	big := asyncConfig(10)
	big.BufferSize = 20
	big.MaxRounds = 10
	repBig, err := Run(big, envB)
	if err != nil {
		t.Fatal(err)
	}
	if repBig.MeanBufferFillSec() <= repSmall.MeanBufferFillSec() {
		t.Fatalf("buffer 20 fill %.1fs should exceed buffer 4 fill %.1fs",
			repBig.MeanBufferFillSec(), repSmall.MeanBufferFillSec())
	}
}

func TestStalenessLimitProducesStaleTasks(t *testing.T) {
	// Fig 8: dense arrivals, heavy-tailed task durations and a tight
	// staleness limit waste tasks — slow clients finish many rounds late.
	// A congested network stretches durations (in virtual time) so tasks
	// overlap many aggregations.
	env := testEnvWith(t, 800, 11, 24)
	env.Bandwidth = network.BandwidthModel{MedianMbps: 0.3, Sigma: 1.2, SlowFrac: 0.2, FloorMbps: 0.05}
	cfg := asyncConfig(12)
	cfg.Concurrency = 32
	cfg.BufferSize = 4
	cfg.MaxStaleness = 1
	cfg.MaxRounds = 60
	rep, err := Run(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalStale == 0 {
		t.Fatal("tight staleness limit at high concurrency must discard stale updates")
	}
}

func TestInterruptedTasksAppear(t *testing.T) {
	// Long tasks against short sessions must hit window ends.
	env := testEnv(t, 150, 13)
	cfg := asyncConfig(14)
	cfg.LocalEpochs = 5 // stretch durations past typical sessions
	cfg.MaxRounds = 8
	rep, err := Run(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalInterrupted == 0 {
		t.Fatal("expected interrupted tasks with long durations")
	}
}

func TestFailureInjection(t *testing.T) {
	env := testEnv(t, 120, 15)
	cfg := asyncConfig(16)
	cfg.FailureRate = 0.3
	rep, err := Run(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalFailed == 0 {
		t.Fatal("30%% failure rate must produce failed tasks")
	}
	frac := float64(rep.TotalFailed) / float64(rep.TotalStarted)
	if frac < 0.1 || frac > 0.5 {
		t.Fatalf("failed fraction %.2f far from injected 0.3", frac)
	}
}

func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "leader.ck")

	env := testEnv(t, 120, 17)
	cfg := asyncConfig(18)
	cfg.MaxRounds = 6
	cfg.CheckpointEvery = 2
	cfg.CheckpointPath = ckPath
	rep1, err := Run(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Rounds) != 6 {
		t.Fatalf("first leg rounds %d", len(rep1.Rounds))
	}

	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Round != 6 {
		t.Fatalf("checkpoint at round %d, want 6", ck.Round)
	}
	if ck.VTime <= 0 || len(ck.Params) == 0 {
		t.Fatalf("checkpoint incomplete: %+v", ck)
	}

	// Resume and run 6 more rounds.
	env2 := testEnv(t, 120, 17)
	cfg2 := cfg
	cfg2.MaxRounds = 12
	rep2, err := Resume(cfg2, env2, ck)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Rounds) == 0 {
		t.Fatal("resume produced no rounds")
	}
	firstResumed := rep2.Rounds[0]
	if firstResumed.Round != 7 {
		t.Fatalf("resume must continue from round 7, got %d", firstResumed.Round)
	}
	if firstResumed.VTime < ck.VTime {
		t.Fatal("resumed vtime must not rewind")
	}
	last := rep2.Rounds[len(rep2.Rounds)-1]
	if last.Round != 12 {
		t.Fatalf("resume must reach round 12, got %d", last.Round)
	}
}

func TestResumeValidation(t *testing.T) {
	env := testEnv(t, 50, 19)
	cfg := asyncConfig(20)
	if _, err := Resume(cfg, env, nil); err == nil {
		t.Fatal("nil checkpoint must error")
	}
	ck := &Checkpoint{Mode: Sync}
	if _, err := Resume(cfg, env, ck); err == nil {
		t.Fatal("mode mismatch must error")
	}
	ck2 := &Checkpoint{Mode: Async, Params: []float64{1, 2}}
	if _, err := Resume(cfg, env, ck2); err == nil {
		t.Fatal("param size mismatch must error")
	}
}

func TestHaltInjection(t *testing.T) {
	env := testEnv(t, 120, 21)
	base := asyncConfig(22)
	base.MaxRounds = 8
	rep, err := Run(base, env)
	if err != nil {
		t.Fatal(err)
	}

	env2 := testEnv(t, 120, 21)
	halted := base
	halted.HaltAtRound = 3
	halted.HaltDurationSec = 4 * 3600
	rep2, err := Run(halted, env2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FinalVTime <= rep.FinalVTime {
		t.Fatalf("outage run (%.0fs) must take longer than healthy run (%.0fs)",
			rep2.FinalVTime, rep.FinalVTime)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Mode: Async, ModelKind: model.KindB},
		{Mode: Sync, ModelKind: model.KindB, CohortSize: 1, OverCommit: 0.5, RoundDeadlineSec: 1},
		{Mode: Async, ModelKind: model.KindB, Concurrency: 1, BufferSize: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d must fail validation", i)
		}
	}
	good := asyncConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	// CheckpointEvery without path.
	good.CheckpointEvery = 1
	if err := good.Validate(); err == nil {
		t.Fatal("checkpoint without path must fail")
	}
}

func TestEnvironmentValidation(t *testing.T) {
	env := testEnv(t, 50, 23)
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	broken := *env
	broken.Shards = nil
	if err := broken.Validate(); err == nil {
		t.Fatal("missing shards must fail")
	}
	broken2 := *env
	broken2.UpdateBytes = 0
	if err := broken2.Validate(); err == nil {
		t.Fatal("missing update size must fail")
	}
}

func TestPartitionProvider(t *testing.T) {
	gen, err := data.NewAdsGenerator(data.DefaultAdsConfig(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	shards := gen.GenerateClients(10)
	p := NewPartitionProvider(shards)
	if got := p.Shard(3); got.ClientID != 3 || len(got.Examples) == 0 {
		t.Fatalf("provider shard: %+v", got.ClientID)
	}
	if got := p.Shard(99); len(got.Examples) != 0 {
		t.Fatal("unknown client must return empty shard")
	}
}

func TestDPRun(t *testing.T) {
	env := testEnv(t, 100, 25)
	cfg := asyncConfig(26)
	cfg.MaxRounds = 4
	cfg.DP = &aggregator.DPConfig{ClipNorm: 1, NoiseMultiplier: 0.05, Seed: 3}
	rep, err := Run(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 4 {
		t.Fatalf("DP run rounds %d", len(rep.Rounds))
	}
}

func TestPoisonWithRobustDefense(t *testing.T) {
	env := testEnv(t, 100, 27)
	cfg := asyncConfig(28)
	cfg.MaxRounds = 5
	cfg.Adversary = &aggregator.Adversary{Attack: aggregator.SignFlip{Scale: 5}, Fraction: 0.2, Seed: 4}
	cfg.RobustTrimFrac = 0.25
	rep, err := Run(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 5 {
		t.Fatalf("robust run rounds %d", len(rep.Rounds))
	}
	if math.IsNaN(rep.FinalMetric) {
		t.Fatal("robust run must still evaluate")
	}
}

func TestTargetMetricStops(t *testing.T) {
	env := testEnv(t, 120, 29)
	cfg := asyncConfig(30)
	cfg.MaxRounds = 60
	cfg.EvalEvery = 2
	cfg.TargetMetric = 0.35 // modest AUPR target the job should hit early
	rep, err := Run(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StopReason == "target metric" {
		if !rep.ReachedTarget {
			t.Fatal("stop reason and ReachedTarget disagree")
		}
		if len(rep.Rounds) >= 60 {
			t.Fatal("target stop should finish before max rounds")
		}
	}
}
