package fedsim

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"flint/internal/tensor"
)

// Checkpoint is the leader's persisted state: "the leader frequently
// checkpoints the virtual time and recent model weights to the pipeline
// storage, [so] any restarted leader and executor can resume from the
// checkpoints without losing more than one round of work" (§3.4).
// In-flight tasks are not persisted — they are the bounded lost work.
type Checkpoint struct {
	Mode    Mode
	Round   int
	VTime   float64
	Params  []float64
	TaskSeq uint64

	TotalStarted    int
	TotalComputeSec float64
	CursorIdx       int
	CursorOffset    float64
	LastAggTime     float64
}

// saveCheckpoint writes the current leader state atomically (tmp + rename).
func (s *sim) saveCheckpoint() error {
	ck := Checkpoint{
		Mode:            s.cfg.Mode,
		Round:           s.round,
		VTime:           s.clock.Now(),
		Params:          s.global,
		TaskSeq:         s.taskSeq,
		TotalStarted:    s.report.TotalStarted,
		TotalComputeSec: s.report.TotalComputeSec,
		CursorIdx:       s.cursor.idx,
		CursorOffset:    s.cursor.offset,
		LastAggTime:     s.lastAggTime,
	}
	dir := filepath.Dir(s.cfg.CheckpointPath)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fedsim: checkpoint dir: %w", err)
	}
	tmp := s.cfg.CheckpointPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("fedsim: checkpoint create: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(ck); err != nil {
		f.Close()
		return fmt.Errorf("fedsim: checkpoint encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fedsim: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, s.cfg.CheckpointPath); err != nil {
		return fmt.Errorf("fedsim: checkpoint rename: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by a prior run.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fedsim: checkpoint open: %w", err)
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("fedsim: checkpoint decode: %w", err)
	}
	return &ck, nil
}

// Resume continues a job from a checkpoint: the model, virtual clock, round
// counter and trace cursor are restored; the ready pool and in-flight tasks
// are rebuilt from the trace going forward (at most one round of work lost).
func Resume(cfg Config, env *Environment, ck *Checkpoint) (*Report, error) {
	if ck == nil {
		return nil, fmt.Errorf("fedsim: resume with nil checkpoint")
	}
	if ck.Mode != cfg.Mode {
		return nil, fmt.Errorf("fedsim: checkpoint mode %q != config mode %q", ck.Mode, cfg.Mode)
	}
	s, err := newSim(cfg, env)
	if err != nil {
		return nil, err
	}
	defer s.pool.close()
	if len(ck.Params) != len(s.global) {
		return nil, fmt.Errorf("fedsim: checkpoint has %d params, model needs %d", len(ck.Params), len(s.global))
	}
	copy(s.global, tensor.Vector(ck.Params))
	s.round = ck.Round
	s.taskSeq = ck.TaskSeq
	s.clock.Reset(ck.VTime)
	s.lastAggTime = ck.LastAggTime
	s.report.TotalStarted = ck.TotalStarted
	s.report.TotalComputeSec = ck.TotalComputeSec
	s.cursor.idx = ck.CursorIdx
	s.cursor.offset = ck.CursorOffset
	s.pushNextWindow()
	switch cfg.Mode {
	case Async:
		err = s.runAsync()
	case Sync:
		err = s.runSync()
	}
	if err != nil {
		return nil, err
	}
	s.finalize()
	return s.report, nil
}
