// Package fedsim is the paper's experimental framework (§3.4): a
// leader/executor simulator driven by a virtual clock that replays device
// availability traces, samples task durations from on-device benchmarks and
// a network bandwidth model, trains real models on per-client proxy data,
// and reports model and system metrics over both virtual time and
// communication rounds.
//
// Two training modes are supported, as in the paper: synchronous FedAvg
// with GFL-style client over-commitment, and asynchronous FedBuff with a
// priority-queue task scheduler, buffered aggregation and staleness limits.
package fedsim

import (
	"fmt"

	"flint/internal/aggregator"
	"flint/internal/data"
	"flint/internal/model"
)

// Mode selects the training mode.
type Mode string

// The two §3.4 training modes.
const (
	Sync  Mode = "fedavg"  // synchronous, round-based, over-committed
	Async Mode = "fedbuff" // asynchronous, buffered, staleness-limited
)

// Config drives one simulation job; it corresponds to the "job config"
// of §4.1 that "specifies the device traces, on-device performance
// distributions ... and other hyper-parameters".
type Config struct {
	Mode      Mode
	ModelKind model.Kind
	// Seed derives every stochastic choice in the job; two runs with the
	// same config are identical.
	Seed int64

	// LocalEpochs is E in taskDuration = t·E·|Dk| + 2M/N.
	LocalEpochs int
	// BatchSize is the client mini-batch size.
	BatchSize int
	// Schedule yields the client learning rate per round (Fig 10).
	Schedule model.Schedule
	// ProxMu enables FedProx's proximal term in local training (0 = off),
	// an algorithmic extension for heterogeneous clients.
	ProxMu float64
	// MaxShardExamples caps per-client records used in one task (0 = all);
	// mirrors client-level down-sampling.
	MaxShardExamples int

	// CohortSize is the sync-mode aggregation target per round.
	CohortSize int
	// OverCommit is the sync-mode selection factor (GFL-style: select
	// CohortSize×OverCommit, drop stragglers once the target is reached).
	OverCommit float64
	// RoundDeadlineSec bounds a sync round; stragglers past it are dropped.
	RoundDeadlineSec float64

	// Concurrency is the async-mode max in-flight client tasks.
	Concurrency int
	// BufferSize is the async-mode aggregation buffer K (Fig 7).
	BufferSize int
	// MaxStaleness discards async updates staler than this many rounds
	// (Fig 8).
	MaxStaleness int
	// StalenessAlpha is the FedBuff discount exponent.
	StalenessAlpha float64
	// ServerLR is the FedBuff server step size.
	ServerLR float64

	// MaxRounds stops the job after this many aggregations.
	MaxRounds int
	// MaxVirtualSec stops the job when the virtual clock passes this.
	MaxVirtualSec float64
	// TargetMetric stops the job once the eval metric reaches it (0 = off).
	TargetMetric float64
	// EvalEvery evaluates every N rounds (0 disables evaluation).
	EvalEvery int
	// Metric picks the offline metric (AUPR or NDCG).
	Metric model.Metric

	// FailureRate is the per-task probability of a client-side failure
	// (crash, permission loss) independent of availability.
	FailureRate float64
	// Executors sizes the in-process executor pool ("a group of executors
	// poll tasks to run from a leader node").
	Executors int

	// DP optionally wraps aggregation with clip+noise (§3.6).
	DP *aggregator.DPConfig
	// Adversary optionally poisons compromised clients' updates.
	Adversary *aggregator.Adversary
	// Robust switches aggregation to trimmed-mean (defense evaluation).
	RobustTrimFrac float64

	// CheckpointEvery rounds the leader persists state ("the leader
	// frequently checkpoints the virtual time and recent model weights");
	// 0 disables.
	CheckpointEvery int
	// CheckpointPath is the checkpoint file destination.
	CheckpointPath string

	// HaltAtRound/HaltDurationSec inject a leader/executor outage: the
	// leader "halts dispatching tasks until all executors have pinged it
	// with a healthy status-code" — modeled as a dispatch freeze in
	// virtual time.
	HaltAtRound     int
	HaltDurationSec float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Mode {
	case Sync:
		if c.CohortSize <= 0 {
			return fmt.Errorf("fedsim: sync mode needs CohortSize > 0, got %d", c.CohortSize)
		}
		if c.OverCommit < 1 {
			return fmt.Errorf("fedsim: OverCommit must be >= 1, got %v", c.OverCommit)
		}
		if c.RoundDeadlineSec <= 0 {
			return fmt.Errorf("fedsim: sync mode needs RoundDeadlineSec > 0, got %v", c.RoundDeadlineSec)
		}
	case Async:
		if c.Concurrency <= 0 {
			return fmt.Errorf("fedsim: async mode needs Concurrency > 0, got %d", c.Concurrency)
		}
		if c.BufferSize <= 0 {
			return fmt.Errorf("fedsim: async mode needs BufferSize > 0, got %d", c.BufferSize)
		}
		if c.MaxStaleness < 0 {
			return fmt.Errorf("fedsim: MaxStaleness must be >= 0, got %d", c.MaxStaleness)
		}
	default:
		return fmt.Errorf("fedsim: unknown mode %q", c.Mode)
	}
	if c.LocalEpochs <= 0 {
		return fmt.Errorf("fedsim: LocalEpochs must be positive, got %d", c.LocalEpochs)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("fedsim: BatchSize must be positive, got %d", c.BatchSize)
	}
	if c.Schedule == nil {
		return fmt.Errorf("fedsim: Schedule is required")
	}
	if c.MaxRounds <= 0 && c.MaxVirtualSec <= 0 && c.TargetMetric <= 0 {
		return fmt.Errorf("fedsim: need at least one stop condition")
	}
	if c.FailureRate < 0 || c.FailureRate >= 1 {
		return fmt.Errorf("fedsim: FailureRate %v outside [0,1)", c.FailureRate)
	}
	if c.Executors <= 0 {
		return fmt.Errorf("fedsim: Executors must be positive, got %d", c.Executors)
	}
	if c.RobustTrimFrac < 0 || c.RobustTrimFrac >= 0.5 {
		return fmt.Errorf("fedsim: RobustTrimFrac %v outside [0,0.5)", c.RobustTrimFrac)
	}
	if c.DP != nil {
		if err := c.DP.Validate(); err != nil {
			return err
		}
	}
	if c.Adversary != nil {
		if err := c.Adversary.Validate(); err != nil {
			return err
		}
	}
	if c.CheckpointEvery > 0 && c.CheckpointPath == "" {
		return fmt.Errorf("fedsim: CheckpointEvery set without CheckpointPath")
	}
	return nil
}

// strategy builds the aggregation pipeline from the config.
func (c Config) strategy() (aggregator.Strategy, error) {
	var s aggregator.Strategy
	switch c.Mode {
	case Sync:
		s = aggregator.FedAvg{}
	case Async:
		s = aggregator.FedBuff{ServerLR: c.ServerLR, Alpha: c.StalenessAlpha}
	default:
		return nil, fmt.Errorf("fedsim: unknown mode %q", c.Mode)
	}
	if c.RobustTrimFrac > 0 {
		s = aggregator.TrimmedMean{TrimFrac: c.RobustTrimFrac}
	}
	if c.DP != nil {
		dp, err := aggregator.NewDP(*c.DP, s)
		if err != nil {
			return nil, err
		}
		s = dp
	}
	return s, nil
}

// ShardProvider resolves a client id to its local dataset. Generators
// satisfy this lazily, so millions of clients need no resident storage.
type ShardProvider interface {
	Shard(id int64) data.ClientShard
}

// GeneratorProvider adapts a data.Generator into a ShardProvider.
type GeneratorProvider struct{ G data.Generator }

// Shard implements ShardProvider.
func (p GeneratorProvider) Shard(id int64) data.ClientShard { return p.G.GenerateClient(id) }

// PartitionProvider serves shards from materialized executor partitions,
// the §3.4 storage layout.
type PartitionProvider struct {
	shards map[int64]data.ClientShard
}

// NewPartitionProvider indexes the shards of the given partitions.
func NewPartitionProvider(shards []data.ClientShard) *PartitionProvider {
	m := make(map[int64]data.ClientShard, len(shards))
	for _, s := range shards {
		m[s.ClientID] = s
	}
	return &PartitionProvider{shards: m}
}

// Shard implements ShardProvider.
func (p *PartitionProvider) Shard(id int64) data.ClientShard { return p.shards[id] }
