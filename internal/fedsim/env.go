package fedsim

import (
	"fmt"
	"math/rand"

	"flint/internal/availability"
	"flint/internal/data"
	"flint/internal/device"
	"flint/internal/network"
)

// Environment carries the measured real-world inputs of §3.4: the proxy
// dataset (via ShardProvider), the device availability trace, the on-device
// benchmark time distribution, and the network bandwidth model.
type Environment struct {
	Shards    ShardProvider
	Trace     *availability.Trace
	Times     *device.TimeDistribution
	Bandwidth network.BandwidthModel
	// EvalSet is the held-out offline evaluation dataset.
	EvalSet *data.Dataset
	// UpdateBytes is the one-way transfer size M; normally the model's
	// TransferBytes.
	UpdateBytes int
}

// Validate reports missing inputs.
func (e *Environment) Validate() error {
	if e.Shards == nil {
		return fmt.Errorf("fedsim: environment needs a shard provider")
	}
	if e.Trace == nil || e.Trace.NumClients() == 0 {
		return fmt.Errorf("fedsim: environment needs a non-empty availability trace")
	}
	if e.Times == nil {
		return fmt.Errorf("fedsim: environment needs a device time distribution")
	}
	if err := e.Bandwidth.Validate(); err != nil {
		return err
	}
	if e.UpdateBytes <= 0 {
		return fmt.Errorf("fedsim: environment needs UpdateBytes > 0")
	}
	return nil
}

// windowCursor streams availability windows in absolute virtual time,
// repeating the trace with its horizon as the period — §4.1 queries two
// weeks "since usage tends to exhibit weekly periodicity", and long jobs
// replay that periodic trace.
type windowCursor struct {
	trace  *availability.Trace
	idx    int
	offset float64
	period float64
}

func newWindowCursor(t *availability.Trace) *windowCursor {
	return &windowCursor{trace: t, period: t.Horizon()}
}

// next returns the next window in absolute time order.
func (c *windowCursor) next() (availability.Window, bool) {
	ws := c.trace.Windows()
	if len(ws) == 0 || c.period <= 0 {
		return availability.Window{}, false
	}
	if c.idx >= len(ws) {
		c.idx = 0
		c.offset += c.period
	}
	w := ws[c.idx]
	c.idx++
	w.Start += c.offset
	w.End += c.offset
	return w, true
}

// taskDuration computes the paper's duration model:
// taskDuration(k) = t·E·|Dk| + 2M/N.
func taskDuration(perExampleSec float64, epochs, shardSize, updateBytes int, bw network.BandwidthModel, rng *rand.Rand) float64 {
	compute := perExampleSec * float64(epochs) * float64(shardSize)
	net := bw.TransferSeconds(2*updateBytes, rng)
	return compute + net
}

// taskRNG derives the deterministic per-task randomness stream: task
// durations, failures, and local shuffling depend only on (seed, taskSeq),
// which keeps checkpoint-resumed runs aligned with the original schedule.
func taskRNG(seed int64, taskSeq uint64) *rand.Rand {
	z := uint64(seed) ^ (0x9E3779B97F4A7C15 * (taskSeq + 1))
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
