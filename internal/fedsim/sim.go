package fedsim

import (
	"fmt"
	"math"
	"sort"

	"flint/internal/aggregator"
	"flint/internal/availability"
	"flint/internal/model"
	"flint/internal/tensor"
	"flint/internal/vclock"
)

// task is one client-task lifecycle record tracked by the leader.
type task struct {
	clientID    int64
	window      availability.Window
	dispatched  float64
	duration    float64
	baseRound   int
	future      chan trainResult
	failed      bool
	interrupted bool
	shardSize   int
}

// sim is the leader node: it owns the virtual clock, the event queue, the
// global model, the executor pool, and all bookkeeping.
type sim struct {
	cfg    Config
	env    *Environment
	clock  vclock.Clock
	queue  vclock.Queue
	cursor *windowCursor
	pool   *executorPool
	snaps  *snapshotStore
	strat  aggregator.Strategy

	global    tensor.Vector
	evalModel model.Model

	busyUntil map[int64]float64
	ready     []availability.Window
	taskSeq   uint64
	round     int
	inflight  int

	buffer       []aggregator.Update
	bufferLosses []float64
	lastAggTime  float64
	haltUntil    float64

	report *Report
	cur    RoundStat
}

// newSim validates inputs and assembles the leader state.
func newSim(cfg Config, env *Environment) (*sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxRounds <= 0 && cfg.MaxVirtualSec <= 0 {
		return nil, fmt.Errorf("fedsim: need MaxRounds or MaxVirtualSec as a hard stop")
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	strat, err := cfg.strategy()
	if err != nil {
		return nil, err
	}
	evalModel, err := model.New(cfg.ModelKind, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pool, err := newExecutorPool(cfg.Executors, cfg.ModelKind)
	if err != nil {
		return nil, err
	}
	if cfg.MaxVirtualSec <= 0 {
		// Hard safety stop: two virtual years bounds event processing even
		// when a misconfigured job makes no round progress.
		cfg.MaxVirtualSec = 2 * 365 * 86400
	}
	s := &sim{
		cfg:       cfg,
		env:       env,
		cursor:    newWindowCursor(env.Trace),
		pool:      pool,
		snaps:     newSnapshotStore(),
		strat:     strat,
		global:    evalModel.Params().Clone(),
		evalModel: evalModel,
		busyUntil: make(map[int64]float64),
		report:    &Report{Mode: cfg.Mode, ModelKind: string(cfg.ModelKind)},
	}
	s.cur = RoundStat{Metric: math.NaN()}
	return s, nil
}

// Run executes one simulation job and returns its report.
func Run(cfg Config, env *Environment) (*Report, error) {
	s, err := newSim(cfg, env)
	if err != nil {
		return nil, err
	}
	defer s.pool.close()
	s.pushNextWindow()
	switch cfg.Mode {
	case Async:
		err = s.runAsync()
	case Sync:
		err = s.runSync()
	default:
		err = fmt.Errorf("fedsim: unknown mode %q", cfg.Mode)
	}
	if err != nil {
		return nil, err
	}
	s.finalize()
	return s.report, nil
}

func (s *sim) pushNextWindow() {
	if w, ok := s.cursor.next(); ok {
		s.queue.Push(w.Start, w)
	}
}

// busy reports whether the client is mid-task at time t.
func (s *sim) busy(id int64, t float64) bool { return s.busyUntil[id] > t }

// hardStopReached checks the non-metric stop conditions.
func (s *sim) hardStopReached() (string, bool) {
	if s.cfg.MaxRounds > 0 && s.round >= s.cfg.MaxRounds {
		return "max rounds", true
	}
	if s.cfg.MaxVirtualSec > 0 && s.clock.Now() >= s.cfg.MaxVirtualSec {
		return "virtual time budget", true
	}
	return "", false
}

// dispatch starts a client task from an availability window at the current
// virtual time. Returns nil when the client has no usable data.
func (s *sim) dispatch(w availability.Window) *task {
	now := s.clock.Now()
	shard := s.env.Shards.Shard(w.ClientID)
	examples := shard.Examples
	if len(examples) == 0 {
		return nil
	}
	if s.cfg.MaxShardExamples > 0 && len(examples) > s.cfg.MaxShardExamples {
		examples = examples[:s.cfg.MaxShardExamples]
	}
	s.taskSeq++
	rng := taskRNG(s.cfg.Seed, s.taskSeq)
	perEx := s.env.Times.Sample(rng)
	dur := taskDuration(perEx, s.cfg.LocalEpochs, len(examples), s.env.UpdateBytes, s.env.Bandwidth, rng)
	t := &task{
		clientID:   w.ClientID,
		window:     w,
		dispatched: now,
		duration:   dur,
		baseRound:  s.round,
		shardSize:  len(examples),
	}
	t.failed = s.cfg.FailureRate > 0 && rng.Float64() < s.cfg.FailureRate
	t.interrupted = now+dur > w.End
	if !t.failed && !t.interrupted {
		base := s.snaps.acquire(s.round, s.global)
		t.future = s.pool.submit(trainJob{
			clientID: w.ClientID,
			base:     base,
			examples: examples,
			local: model.LocalConfig{
				Epochs:    s.cfg.LocalEpochs,
				BatchSize: s.cfg.BatchSize,
				LR:        s.cfg.Schedule.LR(s.round),
				ProxMu:    s.cfg.ProxMu,
			},
			seed:    s.cfg.Seed,
			taskSeq: s.taskSeq,
		})
	}
	s.busyUntil[w.ClientID] = now + dur
	s.cur.Started++
	s.report.TotalStarted++
	return t
}

// chargeCompute accounts device time for a finished task.
func (s *sim) chargeCompute(t *task, observedEnd float64) {
	var sec float64
	switch {
	case t.failed:
		sec = 0.5 * t.duration // crashed partway through
	case t.interrupted:
		sec = t.window.End - t.dispatched
	default:
		sec = t.duration
	}
	if sec < 0 {
		sec = 0
	}
	_ = observedEnd
	s.cur.ComputeSec += sec
	s.report.TotalComputeSec += sec
}

// aggregate folds the pending buffer into the global model and closes the
// round's bookkeeping. Used by both modes.
func (s *sim) aggregate() error {
	updates := s.buffer
	s.buffer = nil
	losses := s.bufferLosses
	s.bufferLosses = nil
	if len(updates) == 0 {
		return fmt.Errorf("fedsim: aggregate with empty buffer")
	}
	if s.cfg.Adversary != nil {
		poisoned, _, err := s.cfg.Adversary.Apply(updates)
		if err != nil {
			return err
		}
		updates = poisoned
	}
	lrRound := s.round
	if err := s.strat.Aggregate(s.global, updates); err != nil {
		return err
	}
	s.round++
	now := s.clock.Now()
	s.cur.Round = s.round
	s.cur.VTime = now
	s.cur.LR = s.cfg.Schedule.LR(lrRound)
	s.cur.BufferFillSec = now - s.lastAggTime
	s.lastAggTime = now
	if len(losses) > 0 {
		var sum float64
		for _, l := range losses {
			sum += l
		}
		s.cur.MeanLoss = sum / float64(len(losses))
	}
	if s.cfg.EvalEvery > 0 && s.round%s.cfg.EvalEvery == 0 {
		metric, err := s.evaluate()
		if err != nil {
			return err
		}
		s.cur.Metric = metric
	}
	s.report.Rounds = append(s.report.Rounds, s.cur)
	s.cur = RoundStat{Metric: math.NaN()}
	if s.cfg.HaltAtRound > 0 && s.round == s.cfg.HaltAtRound && s.cfg.HaltDurationSec > 0 {
		s.haltUntil = now + s.cfg.HaltDurationSec
	}
	if s.cfg.CheckpointEvery > 0 && s.round%s.cfg.CheckpointEvery == 0 {
		if err := s.saveCheckpoint(); err != nil {
			return err
		}
	}
	return nil
}

// evaluate scores the global model on the held-out set.
func (s *sim) evaluate() (float64, error) {
	if s.env.EvalSet == nil || s.env.EvalSet.Len() == 0 {
		return math.NaN(), fmt.Errorf("fedsim: evaluation requested without an eval set")
	}
	if err := s.evalModel.SetParams(s.global); err != nil {
		return math.NaN(), err
	}
	metric := s.cfg.Metric
	if metric == "" {
		metric = model.MetricAUPR
	}
	return model.Eval(s.evalModel, s.env.EvalSet, metric)
}

// metricStop checks the target-metric stop condition against the latest
// evaluated round.
func (s *sim) metricStop() bool {
	if s.cfg.TargetMetric <= 0 {
		return false
	}
	last, ok := s.report.LastEvaluated()
	return ok && last.Metric >= s.cfg.TargetMetric
}

// finalize stamps the report's terminal fields.
func (s *sim) finalize() {
	s.report.FinalVTime = s.clock.Now()
	if last, ok := s.report.LastEvaluated(); ok {
		s.report.FinalMetric = last.Metric
	} else {
		s.report.FinalMetric = math.NaN()
	}
	for _, r := range s.report.Rounds {
		s.report.TotalSucceeded += r.Succeeded
		s.report.TotalInterrupted += r.Interrupted
		s.report.TotalStale += r.Stale
		s.report.TotalFailed += r.Failed
		s.report.TotalStragglers += r.Stragglers
	}
	// Outcomes recorded after the last aggregation live in s.cur.
	s.report.TotalSucceeded += s.cur.Succeeded
	s.report.TotalInterrupted += s.cur.Interrupted
	s.report.TotalStale += s.cur.Stale
	s.report.TotalFailed += s.cur.Failed
	s.report.TotalStragglers += s.cur.Stragglers
	s.report.ReachedTarget = s.metricStop()
}

// runAsync is the FedBuff event loop: the leader pops window-start and
// task-completion events in virtual-time order, keeps Concurrency tasks in
// flight, buffers completed updates, and aggregates every BufferSize
// arrivals with a staleness limit (§3.4).
func (s *sim) runAsync() error {
	for {
		if reason, stop := s.hardStopReached(); stop {
			s.report.StopReason = reason
			return s.drainInflight()
		}
		if s.metricStop() {
			s.report.StopReason = "target metric"
			return s.drainInflight()
		}
		ev, ok := s.queue.Pop()
		if !ok {
			s.report.StopReason = "trace exhausted"
			return s.drainInflight()
		}
		// Resume can leave already-started windows behind the clock; they
		// are processed at the current instant rather than rewinding.
		if ev.Time > s.clock.Now() {
			if err := s.clock.AdvanceTo(ev.Time); err != nil {
				return err
			}
		}
		switch p := ev.Payload.(type) {
		case availability.Window:
			s.pushNextWindow()
			s.ready = append(s.ready, p)
		case *task:
			if err := s.completeAsync(p); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fedsim: unexpected event payload %T", p)
		}
		s.fillSlots()
	}
}

// fillSlots dispatches from the ready pool up to the concurrency limit,
// respecting outage halts and expired windows.
func (s *sim) fillSlots() {
	now := s.clock.Now()
	if now < s.haltUntil {
		return
	}
	for s.inflight < s.cfg.Concurrency && len(s.ready) > 0 {
		w := s.ready[0]
		s.ready = s.ready[1:]
		if w.End <= now || s.busy(w.ClientID, now) {
			continue
		}
		t := s.dispatch(w)
		if t == nil {
			continue
		}
		s.inflight++
		end := t.dispatched + t.duration
		if t.interrupted {
			end = t.window.End
		}
		s.queue.Push(end, t)
	}
}

// completeAsync processes a finished task: outcome classification, buffer
// insertion, and aggregation when the buffer fills.
func (s *sim) completeAsync(t *task) error {
	s.inflight--
	s.chargeCompute(t, s.clock.Now())
	switch {
	case t.failed:
		s.cur.Failed++
	case t.interrupted:
		s.cur.Interrupted++
	default:
		res := <-t.future
		s.snaps.release(t.baseRound)
		if res.err != nil {
			s.cur.Failed++
			return nil
		}
		staleness := s.round - t.baseRound
		if s.cfg.MaxStaleness > 0 && staleness > s.cfg.MaxStaleness {
			s.cur.Stale++
			return nil
		}
		s.cur.Succeeded++
		s.buffer = append(s.buffer, aggregator.Update{
			ClientID:  t.clientID,
			Delta:     res.delta,
			Weight:    res.weight,
			Staleness: staleness,
		})
		s.bufferLosses = append(s.bufferLosses, res.loss)
		if len(s.buffer) >= s.cfg.BufferSize {
			return s.aggregate()
		}
	}
	return nil
}

// drainInflight consumes outstanding futures so the executor pool can shut
// down cleanly; their results are discarded (lost work at job stop).
func (s *sim) drainInflight() error {
	// Outstanding completion events still hold futures.
	for {
		ev, ok := s.queue.Pop()
		if !ok {
			return nil
		}
		if t, isTask := ev.Payload.(*task); isTask && t.future != nil {
			<-t.future
			s.snaps.release(t.baseRound)
		}
	}
}

// runSync is the FedAvg round loop with over-commitment: each round selects
// CohortSize×OverCommit available clients, waits for the first CohortSize
// completions within the deadline, aggregates them, and throws away
// stragglers (§3.4, §5 "our sync mode ... uses client over-commitment to
// handle dropouts").
func (s *sim) runSync() error {
	for {
		if reason, stop := s.hardStopReached(); stop {
			s.report.StopReason = reason
			return nil
		}
		if s.metricStop() {
			s.report.StopReason = "target metric"
			return nil
		}
		progressed, err := s.runSyncRound()
		if err != nil {
			return err
		}
		if !progressed {
			s.report.StopReason = "trace exhausted"
			return nil
		}
	}
}

// gatherCohort selects the over-committed cohort, advancing virtual time
// through window arrivals as needed.
func (s *sim) gatherCohort(want int) ([]*task, error) {
	var tasks []*task
	// Bail out when the trace cycles without yielding eligible clients
	// (e.g. cohort size beyond the population) instead of spinning.
	guard := 20*len(s.env.Trace.Windows()) + 1000
	for len(tasks) < want && guard > 0 {
		guard--
		now := s.clock.Now()
		// Consume the ready pool first.
		for len(tasks) < want && len(s.ready) > 0 {
			w := s.ready[0]
			s.ready = s.ready[1:]
			if w.End <= now || s.busy(w.ClientID, now) {
				continue
			}
			if now < s.haltUntil {
				continue // outage: windows pass by unused
			}
			if t := s.dispatch(w); t != nil {
				tasks = append(tasks, t)
			}
		}
		if len(tasks) >= want {
			break
		}
		// Wait for the next arrival.
		ev, ok := s.queue.Pop()
		if !ok {
			break // trace exhausted; proceed with what we have
		}
		if ev.Time > s.clock.Now() {
			if err := s.clock.AdvanceTo(ev.Time); err != nil {
				return nil, err
			}
		}
		w, isWindow := ev.Payload.(availability.Window)
		if !isWindow {
			return nil, fmt.Errorf("fedsim: unexpected sync event payload %T", ev.Payload)
		}
		s.pushNextWindow()
		s.ready = append(s.ready, w)
		if s.cfg.MaxVirtualSec > 0 && s.clock.Now() >= s.cfg.MaxVirtualSec {
			break
		}
	}
	return tasks, nil
}

// runSyncRound executes one FedAvg round; it reports false when the trace
// ran dry before any client could be selected.
func (s *sim) runSyncRound() (bool, error) {
	want := int(math.Ceil(float64(s.cfg.CohortSize) * s.cfg.OverCommit))
	tasks, err := s.gatherCohort(want)
	if err != nil {
		return false, err
	}
	if len(tasks) == 0 {
		return false, nil
	}
	deadline := s.clock.Now() + s.cfg.RoundDeadlineSec

	// Classify completions.
	type done struct {
		t   *task
		end float64
	}
	var completions []done
	for _, t := range tasks {
		end := t.dispatched + t.duration
		if t.interrupted {
			end = t.window.End
		}
		completions = append(completions, done{t: t, end: end})
	}
	sort.SliceStable(completions, func(i, j int) bool { return completions[i].end < completions[j].end })

	aggregated := 0
	lastAggEnd := s.clock.Now()
	for _, d := range completions {
		s.chargeCompute(d.t, d.end)
		switch {
		case d.t.failed:
			s.cur.Failed++
		case d.t.interrupted:
			s.cur.Interrupted++
		default:
			res := <-d.t.future
			s.snaps.release(d.t.baseRound)
			if res.err != nil {
				s.cur.Failed++
				continue
			}
			if aggregated < s.cfg.CohortSize && d.end <= deadline {
				s.cur.Succeeded++
				s.buffer = append(s.buffer, aggregator.Update{
					ClientID: d.t.clientID,
					Delta:    res.delta,
					Weight:   res.weight,
				})
				s.bufferLosses = append(s.bufferLosses, res.loss)
				aggregated++
				if d.end > lastAggEnd {
					lastAggEnd = d.end
				}
			} else {
				// Straggler: completed fine but past the target count
				// or deadline; FedAvg throws the work away.
				s.cur.Stragglers++
			}
		}
	}
	// The server closes the round when the target count arrives, or at the
	// deadline when the cohort came up short.
	roundEnd := deadline
	if aggregated >= s.cfg.CohortSize {
		roundEnd = lastAggEnd
	}
	if aggregated == 0 {
		// A whole cohort produced nothing; advance past the deadline so
		// the job keeps moving instead of spinning on one instant.
		if roundEnd > s.clock.Now() {
			if err := s.clock.AdvanceTo(roundEnd); err != nil {
				return false, err
			}
		}
		return true, nil
	}
	if roundEnd < s.clock.Now() {
		roundEnd = s.clock.Now()
	}
	if err := s.clock.AdvanceTo(roundEnd); err != nil {
		return false, err
	}
	if err := s.aggregate(); err != nil {
		return false, err
	}
	return true, nil
}
