package fedsim

import (
	"fmt"
	"sync"

	"flint/internal/data"
	"flint/internal/model"
	"flint/internal/tensor"
)

// trainJob is one client-task training request dispatched by the leader to
// the executor pool.
type trainJob struct {
	clientID int64
	base     tensor.Vector // global snapshot at dispatch (shared, read-only)
	examples []*data.Example
	local    model.LocalConfig
	seed     int64
	taskSeq  uint64
}

// trainResult is the executor's reply: the parameter delta and metadata.
type trainResult struct {
	clientID int64
	delta    tensor.Vector
	weight   float64
	loss     float64
	err      error
}

// executorPool is the in-process realization of §3.4's "group of executors
// [that] poll tasks to run from a leader node". Each worker owns one model
// replica; jobs carry parameter snapshots and shards, results carry deltas.
type executorPool struct {
	jobs    chan jobEnvelope
	wg      sync.WaitGroup
	workers int
}

type jobEnvelope struct {
	job trainJob
	out chan trainResult
}

// newExecutorPool starts n workers training kind-shaped models.
func newExecutorPool(n int, kind model.Kind) (*executorPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fedsim: executor pool needs n > 0, got %d", n)
	}
	p := &executorPool{jobs: make(chan jobEnvelope, 4*n), workers: n}
	for i := 0; i < n; i++ {
		replica, err := model.New(kind, 0)
		if err != nil {
			return nil, err
		}
		p.wg.Add(1)
		go p.worker(replica)
	}
	return p, nil
}

func (p *executorPool) worker(replica model.Model) {
	defer p.wg.Done()
	for env := range p.jobs {
		env.out <- runJob(replica, env.job)
	}
}

// runJob trains the replica from the job's base snapshot and returns the
// delta. It is deterministic given the job contents.
func runJob(replica model.Model, job trainJob) trainResult {
	if len(job.examples) == 0 {
		return trainResult{clientID: job.clientID, err: fmt.Errorf("fedsim: client %d has no examples", job.clientID)}
	}
	if err := replica.SetParams(job.base); err != nil {
		return trainResult{clientID: job.clientID, err: err}
	}
	rng := taskRNG(job.seed, job.taskSeq)
	loss, err := model.TrainLocal(replica, job.examples, job.local, rng)
	if err != nil {
		return trainResult{clientID: job.clientID, err: err}
	}
	delta := replica.Params().Clone()
	delta.Sub(job.base)
	return trainResult{
		clientID: job.clientID,
		delta:    delta,
		weight:   float64(len(job.examples)),
		loss:     loss,
	}
}

// submit enqueues a job and returns the future carrying its result.
func (p *executorPool) submit(job trainJob) chan trainResult {
	out := make(chan trainResult, 1)
	p.jobs <- jobEnvelope{job: job, out: out}
	return out
}

// close drains the pool.
func (p *executorPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// snapshotStore refcounts parameter snapshots per aggregation round so
// concurrent async tasks dispatched between aggregations share one copy.
type snapshotStore struct {
	snaps map[int]tensor.Vector
	refs  map[int]int
}

func newSnapshotStore() *snapshotStore {
	return &snapshotStore{snaps: make(map[int]tensor.Vector), refs: make(map[int]int)}
}

// acquire returns the snapshot for the given round, copying global on first
// use, and bumps the refcount.
func (s *snapshotStore) acquire(round int, global tensor.Vector) tensor.Vector {
	if _, ok := s.snaps[round]; !ok {
		s.snaps[round] = global.Clone()
	}
	s.refs[round]++
	return s.snaps[round]
}

// release drops one reference; the snapshot is freed when unreferenced.
func (s *snapshotStore) release(round int) {
	s.refs[round]--
	if s.refs[round] <= 0 {
		delete(s.refs, round)
		delete(s.snaps, round)
	}
}

// live returns the number of retained snapshots (bounded by staleness).
func (s *snapshotStore) live() int { return len(s.snaps) }
