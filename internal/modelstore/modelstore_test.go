package modelstore

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"flint/internal/model"
)

func TestPutGetLatest(t *testing.T) {
	s, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := model.New(model.KindA, 1)
	m2, _ := model.New(model.KindA, 2)
	v1, err := s.Put("ads", m1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Put("ads", m2)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions %d %d", v1, v2)
	}
	got, err := s.Get("ads", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params()[0] != m1.Params()[0] {
		t.Fatal("v1 params mismatch")
	}
	latest, v, err := s.Latest("ads")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || latest.Params()[0] != m2.Params()[0] {
		t.Fatal("latest mismatch")
	}
}

func TestErrors(t *testing.T) {
	s, _ := New("")
	m, _ := model.New(model.KindA, 1)
	if _, err := s.Put("", m); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := s.Get("nope", 1); err == nil {
		t.Fatal("missing model must fail")
	}
	if _, _, err := s.Latest("nope"); err == nil {
		t.Fatal("missing latest must fail")
	}
	if err := s.Delete("nope", 1); err == nil {
		t.Fatal("missing delete must fail")
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := model.New(model.KindB, 3)
	if _, err := s.Put("msg", m); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "msg-v*.fct"))
	if len(matches) != 1 || filepath.Base(matches[0]) != "msg-v001.fct" {
		t.Fatalf("persisted files: %v", matches)
	}
	// The persisted .fct file is a standalone, loadable checkpoint.
	onDisk, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	restored, err := model.Load(bytes.NewReader(onDisk))
	if err != nil {
		t.Fatalf("persisted checkpoint does not load: %v", err)
	}
	if restored.Kind() != model.KindB || restored.Params()[0] != m.Params()[0] {
		t.Fatal("persisted checkpoint mismatch")
	}
	if err := s.Delete("msg", 1); err != nil {
		t.Fatal(err)
	}
	matches, _ = filepath.Glob(filepath.Join(dir, "msg-v*.fct"))
	if len(matches) != 0 {
		t.Fatalf("file not removed: %v", matches)
	}
}

func TestPutAtAndPersist(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := model.New(model.KindA, 5)
	var buf bytes.Buffer
	if err := model.Save(m, &buf); err != nil {
		t.Fatal(err)
	}

	// PutAt is memory-only: readers see the version, the disk does not.
	if err := s.PutAt("wb", 1, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("wb", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params()[0] != m.Params()[0] {
		t.Fatal("PutAt round-trip mismatch")
	}
	if _, v, err := s.Latest("wb"); err != nil || v != 1 {
		t.Fatalf("Latest after PutAt = v%d, %v", v, err)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "wb-v*.fct")); len(matches) != 0 {
		t.Fatalf("PutAt touched disk: %v", matches)
	}

	// Persist is the write-behind half.
	if err := s.Persist("wb", 1, false); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "wb-v001.fct"))
	if err != nil {
		t.Fatal(err)
	}
	if restored, err := model.Load(bytes.NewReader(onDisk)); err != nil || restored.Params()[0] != m.Params()[0] {
		t.Fatalf("persisted checkpoint mismatch (err %v)", err)
	}

	// Contract edges: duplicate versions, bad versions, unknown persist.
	if err := s.PutAt("wb", 1, buf.Bytes()); err == nil {
		t.Fatal("duplicate PutAt must fail")
	}
	if err := s.PutAt("wb", 0, buf.Bytes()); err == nil {
		t.Fatal("non-positive version must fail")
	}
	if err := s.PutAt("", 2, buf.Bytes()); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := s.Persist("wb", 9, true); err == nil {
		t.Fatal("persisting a missing version must fail")
	}

	// A memory-only store persists as a no-op.
	mem, _ := New("")
	if err := mem.PutAt("wb", 3, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := mem.Persist("wb", 3, true); err != nil {
		t.Fatal(err)
	}

	// Put after PutAt continues the numbering past the explicit version.
	if v, err := s.Put("wb", m); err != nil || v != 2 {
		t.Fatalf("Put after PutAt = v%d, %v", v, err)
	}
}

func TestVersionsAndNames(t *testing.T) {
	s, _ := New("")
	m, _ := model.New(model.KindA, 1)
	s.Put("b", m)
	s.Put("a", m)
	s.Put("a", m)
	if got := s.Versions("a"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("versions: %v", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names: %v", names)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := New("")
	m, _ := model.New(model.KindA, 1)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := s.Put("shared", m); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.Latest("shared"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(s.Versions("shared")); got != 320 {
		t.Fatalf("expected 320 versions, got %d", got)
	}
}

// TestPersistBarrier exercises the fsync path: a barrier persist must
// land identical bytes on disk and survive version overwrite semantics.
func TestPersistBarrier(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := model.New(model.KindA, 11)
	var buf bytes.Buffer
	if err := model.Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	if err := s.PutAt("fs", 1, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := s.Persist("fs", 1, true); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "fs-v001.fct"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, buf.Bytes()) {
		t.Fatal("barrier persist wrote different bytes")
	}
	// A barrier re-persist of the same version truncates cleanly.
	if err := s.Persist("fs", 1, true); err != nil {
		t.Fatal(err)
	}
	if again, _ := os.ReadFile(filepath.Join(dir, "fs-v001.fct")); !bytes.Equal(again, buf.Bytes()) {
		t.Fatal("barrier re-persist corrupted the snapshot")
	}
}
