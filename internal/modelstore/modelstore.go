// Package modelstore implements the versioned model parameter store shared
// by centralized and federated training (paper §3.1: "the model store,
// which is shared by centralized training, can store and retrieve versioned
// parameters during FL training").
package modelstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"flint/internal/model"
)

// Store keeps versioned serialized models by name. It is safe for
// concurrent use; an optional directory persists every put.
type Store struct {
	mu   sync.RWMutex
	blob map[string]map[int][]byte
	next map[string]int
	dir  string
}

// New creates an in-memory store; dir != "" also persists snapshots as
// name-vNNN.fct files (the versioned codec checkpoint format of
// internal/model and internal/codec).
func New(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("modelstore: mkdir %s: %w", dir, err)
		}
	}
	return &Store{
		blob: make(map[string]map[int][]byte),
		next: make(map[string]int),
		dir:  dir,
	}, nil
}

// Put stores a new version of the named model and returns its version
// number (starting at 1).
func (s *Store) Put(name string, m model.Model) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("modelstore: empty model name")
	}
	var buf bytes.Buffer
	if err := model.Save(m, &buf); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.blob[name] == nil {
		s.blob[name] = make(map[int][]byte)
		s.next[name] = 0
	}
	s.next[name]++
	v := s.next[name]
	s.blob[name][v] = buf.Bytes()
	if s.dir != "" {
		path := snapshotPath(s.dir, name, v)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return 0, fmt.Errorf("modelstore: persist %s: %w", path, err)
		}
	}
	return v, nil
}

// PutAt inserts pre-serialized snapshot bytes at an explicit version,
// in memory only: write-behind publishers number versions themselves,
// insert synchronously so readers see the version immediately, and call
// Persist from a background worker so the serving path never waits on
// disk. Re-inserting an existing version is an error (it would mean two
// publishers disagree about version numbering).
func (s *Store) PutAt(name string, version int, raw []byte) error {
	if name == "" {
		return fmt.Errorf("modelstore: empty model name")
	}
	if version <= 0 {
		return fmt.Errorf("modelstore: version %d must be positive", version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.blob[name] == nil {
		s.blob[name] = make(map[int][]byte)
	}
	if _, ok := s.blob[name][version]; ok {
		return fmt.Errorf("modelstore: %s v%d already stored", name, version)
	}
	s.blob[name][version] = raw
	if version > s.next[name] {
		s.next[name] = version
	}
	return nil
}

// Persist writes a stored version's bytes to the backing directory — the
// write-behind half of PutAt. With barrier set the write is fsync-ed
// through to stable storage (and the directory entry synced too) before
// Persist returns: write-behind publishers issue a barrier every N
// commits so a host crash loses at most N snapshots' disk copies, not an
// unbounded page-cache backlog. It is a no-op for a memory-only store
// and an error for a version the store does not hold.
func (s *Store) Persist(name string, version int, barrier bool) error {
	s.mu.RLock()
	raw, ok := s.blob[name][version]
	dir := s.dir
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("modelstore: %s v%d not found", name, version)
	}
	if dir == "" {
		return nil
	}
	path := snapshotPath(dir, name, version)
	if !barrier {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return fmt.Errorf("modelstore: persist %s: %w", path, err)
		}
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("modelstore: persist %s: %w", path, err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("modelstore: persist %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("modelstore: fsync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("modelstore: persist %s: %w", path, err)
	}
	// Sync the directory entry as well: a new file's durability needs
	// its name to survive, not just its bytes. Best-effort — some
	// filesystems refuse directory fsync, and the data barrier above is
	// the load-bearing half.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// snapshotPath names a persisted version: .fct, the flint checkpoint
// tensor extension.
func snapshotPath(dir, name string, v int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-v%03d.fct", name, v))
}

// Get retrieves a specific version.
func (s *Store) Get(name string, version int) (model.Model, error) {
	s.mu.RLock()
	raw, ok := s.blob[name][version]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("modelstore: %s v%d not found", name, version)
	}
	return model.Load(bytes.NewReader(raw))
}

// Latest retrieves the newest version and its number.
func (s *Store) Latest(name string) (model.Model, int, error) {
	s.mu.RLock()
	v := s.next[name]
	s.mu.RUnlock()
	if v == 0 {
		return nil, 0, fmt.Errorf("modelstore: %s has no versions", name)
	}
	m, err := s.Get(name, v)
	return m, v, err
}

// Versions lists a model's stored versions ascending.
func (s *Store) Versions(name string) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, len(s.blob[name]))
	for v := range s.blob[name] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Names lists stored model names sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.blob))
	for n := range s.blob {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Delete removes one version (old snapshots are garbage-collected in
// production stores).
func (s *Store) Delete(name string, version int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blob[name][version]; !ok {
		return fmt.Errorf("modelstore: %s v%d not found", name, version)
	}
	delete(s.blob[name], version)
	if s.dir != "" {
		path := snapshotPath(s.dir, name, version)
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("modelstore: remove %s: %w", path, err)
		}
		// Directories written before the codec refactor used .gob.
		legacy := filepath.Join(s.dir, fmt.Sprintf("%s-v%03d.gob", name, version))
		if err := os.Remove(legacy); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("modelstore: remove %s: %w", legacy, err)
		}
	}
	return nil
}
