package vclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock = %v", c.Now())
	}
	if err := c.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 5 {
		t.Fatalf("now = %v", c.Now())
	}
	if err := c.AdvanceTo(3); err == nil {
		t.Fatal("rewind must error")
	}
	c.Reset(1)
	if c.Now() != 1 {
		t.Fatal("reset failed")
	}
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	want := []string{"a", "b", "c"}
	for _, w := range want {
		e, ok := q.Pop()
		if !ok || e.Payload.(string) != w {
			t.Fatalf("got %v want %s", e.Payload, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("empty queue must report !ok")
	}
}

func TestQueueFIFOAtSameTime(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(7, i)
	}
	for i := 0; i < 10; i++ {
		e, _ := q.Pop()
		if e.Payload.(int) != i {
			t.Fatalf("tie-break violated: got %v want %d", e.Payload, i)
		}
	}
}

func TestQueuePeekLen(t *testing.T) {
	var q Queue
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty")
	}
	q.Push(2, "x")
	q.Push(1, "y")
	e, ok := q.Peek()
	if !ok || e.Payload.(string) != "y" {
		t.Fatalf("peek = %v", e.Payload)
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	q.Pop()
	if q.Len() != 1 {
		t.Fatalf("len after pop = %d", q.Len())
	}
}

func TestQueueSortsArbitraryInput(t *testing.T) {
	// Property: popping everything yields times in nondecreasing order.
	f := func(times []float64) bool {
		var q Queue
		for _, tm := range times {
			q.Push(tm, nil)
		}
		var popped []float64
		for {
			e, ok := q.Pop()
			if !ok {
				break
			}
			popped = append(popped, e.Time)
		}
		return sort.Float64sAreSorted(popped) && len(popped) == len(times)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
