// Package vclock provides the virtual clock and event queue that drive the
// experimental framework's fast-forwarded simulations (paper §3.4): results
// are reported "over a virtual time that's calculated independently of the
// underlying hardware clock", and the asynchronous mode's leader "uses a
// priority queue-based task scheduler to generate tasks in a streaming
// fashion and dispatch them in the correct order".
package vclock

import (
	"container/heap"
	"fmt"
)

// Seconds is virtual time measured in seconds from job start.
type Seconds = float64

// Clock tracks monotonically advancing virtual time.
type Clock struct {
	now Seconds
}

// Now returns the current virtual time.
func (c *Clock) Now() Seconds { return c.now }

// AdvanceTo moves the clock forward; rewinding is an error because event
// ordering in the simulator depends on monotonicity.
func (c *Clock) AdvanceTo(t Seconds) error {
	if t < c.now {
		return fmt.Errorf("vclock: cannot rewind from %.3f to %.3f", c.now, t)
	}
	c.now = t
	return nil
}

// Reset restores the clock to a checkpointed time (used by leader recovery).
func (c *Clock) Reset(t Seconds) { c.now = t }

// Event is a scheduled occurrence in virtual time. Payload is opaque to the
// queue; the sequence number breaks ties deterministically (FIFO within the
// same instant).
type Event struct {
	Time    Seconds
	Seq     uint64
	Payload interface{}
}

// Queue is a deterministic min-heap of events ordered by (Time, Seq).
// The zero value is ready to use. Not safe for concurrent use.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Push schedules payload at time t and returns the assigned sequence.
func (q *Queue) Push(t Seconds, payload interface{}) uint64 {
	q.seq++
	heap.Push(&q.h, Event{Time: t, Seq: q.seq, Payload: payload})
	return q.seq
}

// Pop removes and returns the earliest event; ok is false when empty.
func (q *Queue) Pop() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return heap.Pop(&q.h).(Event), true
}

// Peek returns the earliest event without removing it.
func (q *Queue) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return len(q.h) }

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].Seq < h[j].Seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }

func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
