package data

import (
	"testing"
)

func TestAdsGeneratorDeterministicAndLabeled(t *testing.T) {
	g, err := NewAdsGenerator(DefaultAdsConfig(100, 42))
	if err != nil {
		t.Fatal(err)
	}
	a := g.GenerateClient(7)
	b := g.GenerateClient(7)
	if len(a.Examples) != len(b.Examples) {
		t.Fatal("GenerateClient must be deterministic in shard size")
	}
	for i := range a.Examples {
		if a.Examples[i].Label != b.Examples[i].Label {
			t.Fatal("GenerateClient must be deterministic in labels")
		}
		if a.Examples[i].ClientID != 7 {
			t.Fatal("ClientID must be stamped")
		}
		if len(a.Examples[i].Dense) != 16 {
			t.Fatalf("dense dim %d", len(a.Examples[i].Dense))
		}
		for _, idx := range a.Examples[i].Sparse {
			if idx < 0 || idx >= 4133 {
				t.Fatalf("sparse index %d out of range", idx)
			}
		}
	}
}

func TestAdsBaseRateCalibration(t *testing.T) {
	g, err := NewAdsGenerator(DefaultAdsConfig(2000, 1))
	if err != nil {
		t.Fatal(err)
	}
	ds := Pool(g, 300)
	ratio := ds.LabelRatio()
	if ratio < 0.18 || ratio > 0.40 {
		t.Fatalf("ads label ratio %v too far from target 0.28", ratio)
	}
}

func TestAdsConfigValidation(t *testing.T) {
	bad := []AdsConfig{
		{Clients: 0, DenseDim: 4, SparseDim: 4, ActiveLo: 1, ActiveHi: 2, BaseRate: 0.2, Quantity: AdsQuantity},
		{Clients: 10, DenseDim: 0, SparseDim: 4, ActiveLo: 1, ActiveHi: 2, BaseRate: 0.2, Quantity: AdsQuantity},
		{Clients: 10, DenseDim: 4, SparseDim: 4, ActiveLo: 3, ActiveHi: 2, BaseRate: 0.2, Quantity: AdsQuantity},
		{Clients: 10, DenseDim: 4, SparseDim: 4, ActiveLo: 1, ActiveHi: 2, BaseRate: 1.5, Quantity: AdsQuantity},
	}
	for i, cfg := range bad {
		if _, err := NewAdsGenerator(cfg); err == nil {
			t.Fatalf("config %d should fail validation", i)
		}
	}
}

func TestMessagingGenerator(t *testing.T) {
	cfg := DefaultMessagingConfig(100, 5)
	cfg.Tasks = 3
	g, err := NewMessagingGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shard := g.GenerateClient(3)
	if len(shard.Examples) == 0 {
		t.Fatal("empty shard")
	}
	for _, ex := range shard.Examples {
		if len(ex.Tokens) < cfg.SeqLo || len(ex.Tokens) > cfg.SeqHi {
			t.Fatalf("sequence length %d outside [%d,%d]", len(ex.Tokens), cfg.SeqLo, cfg.SeqHi)
		}
		for _, tok := range ex.Tokens {
			if tok < 0 || tok >= cfg.Vocab {
				t.Fatalf("token %d out of vocab", tok)
			}
		}
		if len(ex.Tasks) != 3 {
			t.Fatalf("tasks len %d", len(ex.Tasks))
		}
		if ex.Tasks[0] != ex.Label {
			t.Fatal("primary task must mirror Label")
		}
	}
	// Label rarity: spam base rate is low.
	ds := Pool(g, 60)
	if r := ds.LabelRatio(); r > 0.25 {
		t.Fatalf("messaging label ratio %v should be rare-ish", r)
	}
}

func TestMessagingValidation(t *testing.T) {
	cfg := DefaultMessagingConfig(10, 1)
	cfg.Vocab = 10
	if _, err := NewMessagingGenerator(cfg); err == nil {
		t.Fatal("tiny vocab should fail")
	}
	cfg = DefaultMessagingConfig(10, 1)
	cfg.SeqLo = 0
	if _, err := NewMessagingGenerator(cfg); err == nil {
		t.Fatal("zero sequence length should fail")
	}
}

func TestSearchGenerator(t *testing.T) {
	g, err := NewSearchGenerator(DefaultSearchConfig(50, 7))
	if err != nil {
		t.Fatal(err)
	}
	shard := g.GenerateClient(11)
	if len(shard.Examples) == 0 {
		t.Fatal("empty shard")
	}
	groups := (&Dataset{Examples: shard.Examples}).ByQuery()
	for qid, docs := range groups {
		if qid == 0 {
			t.Fatal("QueryID must be non-zero")
		}
		if len(docs) < 4 || len(docs) > 12 {
			t.Fatalf("group size %d outside [4,12]", len(docs))
		}
		// Clicked groups carry exactly one clicked document; unclicked
		// groups are all-zero.
		clicks := 0
		for _, d := range docs {
			if d.Relevance < 0 || d.Relevance > 3 {
				t.Fatalf("relevance %v outside 0..3", d.Relevance)
			}
			if (d.Relevance >= 2) != (d.Label == 1) {
				t.Fatalf("click label %v inconsistent with relevance %v", d.Label, d.Relevance)
			}
			if d.Label == 1 {
				clicks++
			}
		}
		if clicks > 1 {
			t.Fatalf("group has %d clicked documents, want at most 1", clicks)
		}
	}
	if g.ClickLabel(&Example{Relevance: 3}) != 1 || g.ClickLabel(&Example{Relevance: 1}) != 0 {
		t.Fatal("ClickLabel thresholds wrong")
	}
	// Record-level click ratio must be rare, near Dataset C's 0.06.
	pool := Pool(g, 50)
	if r := pool.LabelRatio(); r < 0.02 || r > 0.12 {
		t.Fatalf("search label ratio %v far from paper's 0.06", r)
	}
}

func TestTestSetsDisjointFromTraining(t *testing.T) {
	g, err := NewAdsGenerator(DefaultAdsConfig(10, 3))
	if err != nil {
		t.Fatal(err)
	}
	ts := g.TestSet(50)
	if ts.Len() != 50 {
		t.Fatalf("test set size %d", ts.Len())
	}
	for _, ex := range ts.Examples {
		if ex.ClientID < 10 {
			t.Fatal("test set must come from held-out client ids")
		}
	}
}

func TestDummy(t *testing.T) {
	spec := InputSpec{DenseDim: 8, SparseDim: 100, ActiveLo: 3, ActiveHi: 5, Vocab: 50, SeqLo: 2, SeqHi: 4, Tasks: 3}
	ds, err := Dummy(spec, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 20 {
		t.Fatalf("dummy size %d", ds.Len())
	}
	for _, ex := range ds.Examples {
		if len(ex.Dense) != 8 {
			t.Fatal("dense dim")
		}
		if len(ex.Sparse) < 3 || len(ex.Sparse) > 5 {
			t.Fatalf("active %d", len(ex.Sparse))
		}
		if len(ex.Tokens) < 2 || len(ex.Tokens) > 4 {
			t.Fatalf("tokens %d", len(ex.Tokens))
		}
		if len(ex.Tasks) != 3 {
			t.Fatal("tasks")
		}
	}
	if _, err := Dummy(spec, -1, 1); err == nil {
		t.Fatal("negative n must error")
	}
}

func TestPoolMatchesClientUnion(t *testing.T) {
	g, err := NewAdsGenerator(DefaultAdsConfig(20, 9))
	if err != nil {
		t.Fatal(err)
	}
	pooled := Pool(g, 5)
	var total int
	for id := int64(0); id < 5; id++ {
		total += len(g.GenerateClient(id).Examples)
	}
	if pooled.Len() != total {
		t.Fatalf("pool size %d != union %d", pooled.Len(), total)
	}
}
