package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flint/internal/tensor"
)

// SearchConfig parameterizes the search-domain generator (§4.3): ranking
// records where each query carries a group of candidate documents scored on
// the device. Relevance is graded 0–3 and evaluated with NDCG; the binary
// view (relevance ≥ 2) doubles as the click label for pointwise training.
type SearchConfig struct {
	Clients      int
	DenseDim     int // query-document match features (model A uses 44)
	DocsLo       int // min candidates per query
	DocsHi       int // max candidates per query
	Quantity     QuantityModel
	RelevanceCut float64 // graded relevance >= cut counts as a click
	Seed         int64
}

// DefaultSearchConfig matches model A's input spec and Dataset C's shape
// (millions of clients, ~1.5 queries each).
func DefaultSearchConfig(clients int, seed int64) SearchConfig {
	return SearchConfig{
		Clients:      clients,
		DenseDim:     44,
		DocsLo:       4,
		DocsHi:       12,
		Quantity:     SearchQuantity,
		RelevanceCut: 2,
		Seed:         seed,
	}
}

// clickThroughRate is the fraction of queries that receive any engagement;
// with ~8 candidates per query and one click each, the record-level label
// ratio lands near Dataset C's 0.06.
const clickThroughRate = 0.4

// SearchGenerator produces per-client query groups. A client's "quantity"
// counts queries; each query expands into DocsLo..DocsHi candidate records
// sharing a QueryID. The latent relevance function is global, while query
// intent and client behavior shift covariates per client.
type SearchGenerator struct {
	cfg  SearchConfig
	wRel tensor.Vector
}

// NewSearchGenerator builds the generator.
func NewSearchGenerator(cfg SearchConfig) (*SearchGenerator, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("data: search generator needs clients > 0, got %d", cfg.Clients)
	}
	if cfg.DenseDim <= 0 {
		return nil, fmt.Errorf("data: search dense dim must be positive, got %d", cfg.DenseDim)
	}
	if cfg.DocsLo <= 0 || cfg.DocsHi < cfg.DocsLo {
		return nil, fmt.Errorf("data: search docs range [%d,%d] invalid", cfg.DocsLo, cfg.DocsHi)
	}
	if err := cfg.Quantity.Validate(); err != nil {
		return nil, err
	}
	g := &SearchGenerator{cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g.wRel = tensor.NewVector(cfg.DenseDim)
	tensor.NormalInit(g.wRel, 0.6, rng)
	return g, nil
}

// Name returns the domain name.
func (g *SearchGenerator) Name() string { return "search" }

// NumClients returns the configured client population.
func (g *SearchGenerator) NumClients() int { return g.cfg.Clients }

// Config returns the generator configuration.
func (g *SearchGenerator) Config() SearchConfig { return g.cfg }

// GenerateClient deterministically materializes client id's shard. QueryIDs
// are globally unique: id*maxQueriesPerClient + local index.
func (g *SearchGenerator) GenerateClient(id int64) ClientShard {
	rng := clientRNG(g.cfg.Seed+2e9, id)
	nQueries := g.cfg.Quantity.Sample(rng)
	shard := ClientShard{ClientID: id}
	clientShift := tensor.NewVector(g.cfg.DenseDim)
	tensor.NormalInit(clientShift, 0.3, rng)
	const maxQueries = 1 << 12
	for q := 0; q < nQueries; q++ {
		qid := id*maxQueries + int64(q) + 1
		nDocs := g.cfg.DocsLo + rng.Intn(g.cfg.DocsHi-g.cfg.DocsLo+1)
		scores := make([]float64, nDocs)
		docs := make([]*Example, nDocs)
		for d := 0; d < nDocs; d++ {
			ex := &Example{ClientID: id, QueryID: qid, Dense: make([]float64, g.cfg.DenseDim)}
			for i := range ex.Dense {
				ex.Dense[i] = rng.NormFloat64() + clientShift[i]*0.5
			}
			scores[d] = g.wRel.Dot(tensor.Vector(ex.Dense))/math.Sqrt(float64(g.cfg.DenseDim)) + rng.NormFloat64()*0.3
			docs[d] = ex
		}
		// Click feedback is query-level rare (Table 2: Dataset C label
		// ratio 0.06): only some queries produce engagement at all. On a
		// clicked query, the best-matching document earns grade 3 (grade
		// 2 when the margin is thin) and the runner-up grade 1; all other
		// queries contribute zero-relevance records. The binary click
		// label thresholds the grade at RelevanceCut.
		order := make([]int, nDocs)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
		if rng.Float64() < clickThroughRate {
			top, second := order[0], order[1]
			margin := scores[top] - scores[second]
			if margin > 0.3 {
				docs[top].Relevance = 3
			} else {
				docs[top].Relevance = 2
			}
			docs[second].Relevance = 1
			for _, d := range order {
				if docs[d].Relevance >= g.cfg.RelevanceCut {
					docs[d].Label = 1
				}
			}
		}
		shard.Examples = append(shard.Examples, docs...)
	}
	return shard
}

// GenerateClients materializes shards for ids [0, n).
func (g *SearchGenerator) GenerateClients(n int) []ClientShard {
	if n > g.cfg.Clients {
		n = g.cfg.Clients
	}
	out := make([]ClientShard, n)
	for i := 0; i < n; i++ {
		out[i] = g.GenerateClient(int64(i))
	}
	return out
}

// TestSet draws held-out query groups (complete groups, so NDCG is always
// computed over full candidate lists). n counts records, not queries.
func (g *SearchGenerator) TestSet(n int) *Dataset {
	ds := &Dataset{}
	id := int64(g.cfg.Clients)
	for ds.Len() < n {
		shard := g.GenerateClient(id)
		ds.Examples = append(ds.Examples, shard.Examples...)
		id++
	}
	return ds
}

// ClickLabel converts graded relevance into the binary training label.
func (g *SearchGenerator) ClickLabel(ex *Example) float64 {
	if ex.Relevance >= g.cfg.RelevanceCut {
		return 1
	}
	return 0
}
