package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGeneratorsClientDeterminism: every generator must return identical
// shards for identical (seed, id), the property executors rely on for lazy
// partition loading.
func TestGeneratorsClientDeterminism(t *testing.T) {
	gens := make([]Generator, 0, 3)
	ag, err := NewAdsGenerator(DefaultAdsConfig(50, 3))
	if err != nil {
		t.Fatal(err)
	}
	mg, err := NewMessagingGenerator(DefaultMessagingConfig(50, 3))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := NewSearchGenerator(DefaultSearchConfig(50, 3))
	if err != nil {
		t.Fatal(err)
	}
	gens = append(gens, ag, mg, sg)
	for _, g := range gens {
		for id := int64(0); id < 10; id++ {
			a := g.GenerateClient(id)
			b := g.GenerateClient(id)
			if len(a.Examples) != len(b.Examples) {
				t.Fatalf("%s client %d: sizes differ", g.Name(), id)
			}
			for i := range a.Examples {
				ea, eb := a.Examples[i], b.Examples[i]
				if ea.Label != eb.Label || ea.Relevance != eb.Relevance || ea.QueryID != eb.QueryID {
					t.Fatalf("%s client %d example %d differs", g.Name(), id, i)
				}
				for j := range ea.Dense {
					if ea.Dense[j] != eb.Dense[j] {
						t.Fatalf("%s client %d dense differs", g.Name(), id)
					}
				}
				for j := range ea.Tokens {
					if ea.Tokens[j] != eb.Tokens[j] {
						t.Fatalf("%s client %d tokens differ", g.Name(), id)
					}
				}
			}
		}
	}
}

// TestGeneratorsSeedSensitivity: different dataset seeds must produce
// different shards for the same client id.
func TestGeneratorsSeedSensitivity(t *testing.T) {
	g1, err := NewAdsGenerator(DefaultAdsConfig(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewAdsGenerator(DefaultAdsConfig(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	a, b := g1.GenerateClient(0), g2.GenerateClient(0)
	if len(a.Examples) == len(b.Examples) {
		same := true
		for i := range a.Examples {
			if len(a.Examples[i].Sparse) != len(b.Examples[i].Sparse) {
				same = false
				break
			}
		}
		if same && len(a.Examples) > 3 {
			// Sizes matching is possible; full structural equality is not.
			identical := true
			for i := range a.Examples {
				if a.Examples[i].Label != b.Examples[i].Label {
					identical = false
					break
				}
			}
			if identical {
				t.Fatal("different seeds produced identical shards")
			}
		}
	}
}

// TestClientRNGStreamsDiffer: the splitmix-style scramble must decorrelate
// adjacent client ids.
func TestClientRNGStreamsDiffer(t *testing.T) {
	f := func(seed int64, id int64) bool {
		if id < 0 {
			id = -id
		}
		a := clientRNG(seed, id).Float64()
		b := clientRNG(seed, id+1).Float64()
		c := clientRNG(seed+1, id).Float64()
		return a != b && a != c
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuantitySampleBounds: samples always respect Min and Cap.
func TestQuantitySampleBounds(t *testing.T) {
	f := func(mu, sigma float64, seed int64) bool {
		q := QuantityModel{Mu: clampF(mu, -3, 6), Sigma: clampF(abs(sigma), 0, 3), Min: 1, Cap: 1000}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			n := q.Sample(rng)
			if n < 1 || n > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func clampF(x, lo, hi float64) float64 {
	if x != x { // NaN
		return lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestHashFeaturesStableAcrossRuns: hashing must be process-independent
// (FNV, not map iteration), so device and cloud agree on indices.
func TestHashFeaturesStableAcrossRuns(t *testing.T) {
	want := map[string]int{}
	for _, s := range []string{"country=US", "title=engineer", "industry=tech"} {
		idx, err := HashFeature(s, 4133)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = idx
	}
	for s, w := range want {
		for i := 0; i < 5; i++ {
			got, _ := HashFeature(s, 4133)
			if got != w {
				t.Fatalf("hash of %q unstable", s)
			}
		}
	}
}

// TestMessagingTopicConcentration: clients should mostly draw tokens from
// few topic bands — the non-IIDness that drives Fig 10's instability.
func TestMessagingTopicConcentration(t *testing.T) {
	cfg := DefaultMessagingConfig(40, 9)
	g, err := NewMessagingGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	band := cfg.Vocab / cfg.Topics
	concentrated := 0
	for id := int64(0); id < 40; id++ {
		shard := g.GenerateClient(id)
		counts := make(map[int]int)
		total := 0
		for _, ex := range shard.Examples {
			for _, tok := range ex.Tokens {
				counts[tok/band]++
				total++
			}
		}
		// Top-3 topic share.
		best := make([]int, 0, len(counts))
		for _, c := range counts {
			best = append(best, c)
		}
		top := 0
		for k := 0; k < 3; k++ {
			idx, m := -1, -1
			for i, c := range best {
				if c > m {
					m, idx = c, i
				}
			}
			if idx >= 0 {
				top += best[idx]
				best[idx] = -1
			}
		}
		if float64(top)/float64(total) > 0.6 {
			concentrated++
		}
	}
	if concentrated < 20 {
		t.Fatalf("only %d of 40 clients are topic-concentrated; Dirichlet mixing too flat", concentrated)
	}
}

// TestSearchQueryGroupsNeverSplitAcrossClients: a query's candidates always
// share the client, the property the proxy partitioner depends on.
func TestSearchQueryGroupsNeverSplitAcrossClients(t *testing.T) {
	g, err := NewSearchGenerator(DefaultSearchConfig(60, 13))
	if err != nil {
		t.Fatal(err)
	}
	owner := make(map[int64]int64)
	for id := int64(0); id < 60; id++ {
		for _, ex := range g.GenerateClient(id).Examples {
			if prev, ok := owner[ex.QueryID]; ok && prev != ex.ClientID {
				t.Fatalf("query %d spans clients %d and %d", ex.QueryID, prev, ex.ClientID)
			}
			owner[ex.QueryID] = ex.ClientID
		}
	}
}
