package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flint/internal/tensor"
)

// MessagingConfig parameterizes the messaging-domain generator (§4.2):
// token-sequence records for abuse/spam-style classification, generated
// synthetically because the paper's message data is end-to-end encrypted
// ("to create a proxy dataset without data decryption, we partition a
// dataset of synthetic messages").
type MessagingConfig struct {
	Clients  int
	Vocab    int // token vocabulary (model C uses 6400)
	SeqLo    int // min tokens per message
	SeqHi    int // max tokens per message
	Topics   int // latent topic count driving client non-IIDness
	BaseRate float64
	Tasks    int // >1 adds auxiliary task labels for multi-task models
	Quantity QuantityModel
	Seed     int64
}

// DefaultMessagingConfig matches model C's input spec and Dataset B's shape.
func DefaultMessagingConfig(clients int, seed int64) MessagingConfig {
	return MessagingConfig{
		Clients:  clients,
		Vocab:    6400,
		SeqLo:    8,
		SeqHi:    48,
		Topics:   12,
		BaseRate: 0.05,
		Tasks:    1,
		Quantity: MessagingQuantity,
		Seed:     seed,
	}
}

// MessagingGenerator produces token-sequence shards. Each client mixes a few
// latent topics (non-IID covariates); labels are driven by per-task token
// weight vectors, so embedding models have real signal to learn.
type MessagingGenerator struct {
	cfg        MessagingConfig
	topicBase  []int           // topic t occupies a contiguous token band
	taskWeight []tensor.Vector // per-task token weights
	taskBias   []float64
	taskScale  []float64 // logit scale so the sigmoid saturates vs score spread
}

// NewMessagingGenerator builds the generator and calibrates per-task biases.
func NewMessagingGenerator(cfg MessagingConfig) (*MessagingGenerator, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("data: messaging generator needs clients > 0, got %d", cfg.Clients)
	}
	if cfg.Vocab < 64 {
		return nil, fmt.Errorf("data: messaging vocab %d too small", cfg.Vocab)
	}
	if cfg.SeqLo <= 0 || cfg.SeqHi < cfg.SeqLo {
		return nil, fmt.Errorf("data: messaging sequence range [%d,%d] invalid", cfg.SeqLo, cfg.SeqHi)
	}
	if cfg.Topics <= 0 {
		return nil, fmt.Errorf("data: messaging topics must be positive, got %d", cfg.Topics)
	}
	if cfg.BaseRate <= 0 || cfg.BaseRate >= 1 {
		return nil, fmt.Errorf("data: messaging base rate %v outside (0,1)", cfg.BaseRate)
	}
	if cfg.Tasks <= 0 {
		cfg.Tasks = 1
	}
	if err := cfg.Quantity.Validate(); err != nil {
		return nil, err
	}
	g := &MessagingGenerator{cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g.topicBase = make([]int, cfg.Topics)
	band := cfg.Vocab / cfg.Topics
	for t := range g.topicBase {
		g.topicBase[t] = t * band
	}
	g.taskWeight = make([]tensor.Vector, cfg.Tasks)
	g.taskBias = make([]float64, cfg.Tasks)
	for t := 0; t < cfg.Tasks; t++ {
		w := tensor.NewVector(cfg.Vocab)
		// A sparse set of "signal tokens" carries each task's label
		// information (spam tokens, question tokens, ...).
		for i := range w {
			if rng.Float64() < 0.06 {
				w[i] = rng.NormFloat64() * 2.5
			}
		}
		g.taskWeight[t] = w
	}
	g.calibrate(rng)
	return g, nil
}

func (g *MessagingGenerator) calibrate(rng *rand.Rand) {
	const n = 4000
	g.taskScale = make([]float64, len(g.taskBias))
	for t := range g.taskBias {
		rate := g.cfg.BaseRate
		if t > 0 {
			rate = 0.15 // auxiliary tasks are less rare
		}
		scores := make([]float64, n)
		var sum, sq float64
		for i := range scores {
			toks := g.sampleTokens(rng, g.clientMixture(rng))
			scores[i] = g.tokenScore(t, toks)
			sum += scores[i]
			sq += scores[i] * scores[i]
		}
		mean := sum / n
		variance := sq/n - mean*mean
		if variance < 1e-9 {
			variance = 1e-9
		}
		sorted := append([]float64(nil), scores...)
		sort.Float64s(sorted)
		idx := int(float64(n) * (1 - rate))
		if idx >= n {
			idx = n - 1
		}
		g.taskBias[t] = -sorted[idx]
		// Scale the logit so one score-std spans ~6 logits: examples
		// clearly above the quantile saturate to label 1, clearly below
		// to 0, keeping the marginal rate at the calibrated quantile.
		g.taskScale[t] = 6 / math.Sqrt(variance)
	}
}

// Name returns the domain name.
func (g *MessagingGenerator) Name() string { return "messaging" }

// NumClients returns the configured client population.
func (g *MessagingGenerator) NumClients() int { return g.cfg.Clients }

// Config returns the generator configuration.
func (g *MessagingGenerator) Config() MessagingConfig { return g.cfg }

func (g *MessagingGenerator) clientMixture(rng *rand.Rand) []float64 {
	// Dirichlet(0.3) over topics: most clients concentrate on few topics.
	mix := make([]float64, g.cfg.Topics)
	var sum float64
	for i := range mix {
		mix[i] = gammaSample(rng, 0.3)
		sum += mix[i]
	}
	if sum == 0 {
		mix[rng.Intn(len(mix))] = 1
		sum = 1
	}
	for i := range mix {
		mix[i] /= sum
	}
	return mix
}

func (g *MessagingGenerator) sampleTokens(rng *rand.Rand, mix []float64) []int {
	n := g.cfg.SeqLo + rng.Intn(g.cfg.SeqHi-g.cfg.SeqLo+1)
	band := g.cfg.Vocab / g.cfg.Topics
	toks := make([]int, n)
	for i := range toks {
		t := sampleCategorical(rng, mix)
		toks[i] = g.topicBase[t] + rng.Intn(band)
	}
	return toks
}

func (g *MessagingGenerator) tokenScore(task int, toks []int) float64 {
	if len(toks) == 0 {
		return 0
	}
	var s float64
	for _, tok := range toks {
		s += g.taskWeight[task][tok]
	}
	return s / float64(len(toks))
}

// GenerateClient deterministically materializes client id's shard.
func (g *MessagingGenerator) GenerateClient(id int64) ClientShard {
	rng := clientRNG(g.cfg.Seed+1e9, id)
	mix := g.clientMixture(rng)
	n := g.cfg.Quantity.Sample(rng)
	shard := ClientShard{ClientID: id, Examples: make([]*Example, n)}
	for i := 0; i < n; i++ {
		toks := g.sampleTokens(rng, mix)
		ex := &Example{ClientID: id, Tokens: toks}
		if g.cfg.Tasks > 1 {
			ex.Tasks = make([]float64, g.cfg.Tasks)
		}
		for t := 0; t < g.cfg.Tasks; t++ {
			logit := g.taskScale[t]*(g.tokenScore(t, toks)+g.taskBias[t]) + rng.NormFloat64()*0.5
			label := 0.0
			if tensor.Sigmoid(logit) > rng.Float64() {
				label = 1
			}
			if t == 0 {
				ex.Label = label
			}
			if ex.Tasks != nil {
				ex.Tasks[t] = label
			}
		}
		shard.Examples[i] = ex
	}
	return shard
}

// GenerateClients materializes shards for ids [0, n).
func (g *MessagingGenerator) GenerateClients(n int) []ClientShard {
	if n > g.cfg.Clients {
		n = g.cfg.Clients
	}
	out := make([]ClientShard, n)
	for i := 0; i < n; i++ {
		out[i] = g.GenerateClient(int64(i))
	}
	return out
}

// TestSet draws a held-out evaluation set from clients beyond the training
// population.
func (g *MessagingGenerator) TestSet(n int) *Dataset {
	ds := &Dataset{Examples: make([]*Example, 0, n)}
	id := int64(g.cfg.Clients)
	for ds.Len() < n {
		shard := g.GenerateClient(id)
		ds.Examples = append(ds.Examples, shard.Examples...)
		id++
	}
	ds.Examples = ds.Examples[:n]
	return ds
}

// gammaSample draws from Gamma(shape, 1) via Marsaglia-Tsang (with the
// boost for shape < 1), enough for Dirichlet mixtures.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		if u == 0 {
			u = 1e-12
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / (3 * math.Sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

func sampleCategorical(rng *rand.Rand, probs []float64) int {
	u := rng.Float64()
	var cum float64
	for i, p := range probs {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(probs) - 1
}
