// Package data defines the record schema shared by the centralized and
// federated training paths, plus synthetic workload generators for the three
// case-study domains of the paper (advertising §4.1, messaging §4.2,
// search §4.3).
//
// The paper's production datasets are proprietary; the generators here are
// distribution-level substitutes that preserve the properties the platform
// tooling depends on: client-level grouping keys, heavy-tailed per-client
// quantities ("superusers"), low label ratios, sparse categorical features
// with large vocabularies, and non-IID label/covariate shift between clients
// (see DESIGN.md §2 for the substitution rationale).
package data

import (
	"fmt"
	"math/rand"
)

// Example is one training or inference record. Fields are populated per
// domain: ads records use Dense+Sparse, messaging records use Tokens, search
// records use Dense with QueryID grouping and a graded Label used as
// relevance. Unused fields are nil/zero.
type Example struct {
	// ClientID is the obfuscated member/device grouping key. The proxy
	// data generator partitions by this field (paper §3.3).
	ClientID int64
	// QueryID groups ranking candidates that were served together; 0 for
	// non-ranking domains.
	QueryID int64
	// Dense holds dense numeric features.
	Dense []float64
	// Sparse holds hashed categorical feature indices (multi-hot with
	// implicit value 1), each in [0, SparseDim).
	Sparse []int
	// Tokens holds a token-id sequence for text models, each in [0, Vocab).
	Tokens []int
	// Label is the binary training label (0/1). For ranking records this
	// is the click label derived from Relevance.
	Label float64
	// Relevance is the graded relevance (0–3) of ranking records, used by
	// NDCG evaluation; 0 for non-ranking domains.
	Relevance float64
	// Tasks holds per-task labels for multi-task models; Tasks[0] is the
	// primary task. Nil for single-task records.
	Tasks []float64
}

// Positive reports whether the primary label is positive.
func (e *Example) Positive() bool { return e.Label >= 0.5 }

// Dataset is an ordered collection of examples with optional client index.
type Dataset struct {
	Examples []*Example
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// LabelRatio returns the fraction of positive primary labels.
func (d *Dataset) LabelRatio() float64 {
	if len(d.Examples) == 0 {
		return 0
	}
	pos := 0
	for _, e := range d.Examples {
		if e.Positive() {
			pos++
		}
	}
	return float64(pos) / float64(len(d.Examples))
}

// ByClient groups examples by ClientID preserving order within a client.
func (d *Dataset) ByClient() map[int64][]*Example {
	out := make(map[int64][]*Example)
	for _, e := range d.Examples {
		out[e.ClientID] = append(out[e.ClientID], e)
	}
	return out
}

// ByQuery groups examples by QueryID preserving order, for ranking metrics.
func (d *Dataset) ByQuery() map[int64][]*Example {
	out := make(map[int64][]*Example)
	for _, e := range d.Examples {
		out[e.QueryID] = append(out[e.QueryID], e)
	}
	return out
}

// Shuffle permutes the examples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Examples), func(i, j int) {
		d.Examples[i], d.Examples[j] = d.Examples[j], d.Examples[i]
	})
}

// Split returns two datasets holding the first n and the remaining examples.
func (d *Dataset) Split(n int) (*Dataset, *Dataset, error) {
	if n < 0 || n > len(d.Examples) {
		return nil, nil, fmt.Errorf("data: split point %d out of range [0,%d]", n, len(d.Examples))
	}
	return &Dataset{Examples: d.Examples[:n]}, &Dataset{Examples: d.Examples[n:]}, nil
}

// Concat returns a new dataset holding the examples of all inputs in order.
func Concat(ds ...*Dataset) *Dataset {
	total := 0
	for _, d := range ds {
		total += len(d.Examples)
	}
	out := &Dataset{Examples: make([]*Example, 0, total)}
	for _, d := range ds {
		out.Examples = append(out.Examples, d.Examples...)
	}
	return out
}

// ClientShard is one client's local dataset together with its grouping key.
type ClientShard struct {
	ClientID int64
	Examples []*Example
}

// NumExamples returns the shard size |Dk| used in the task-duration model.
func (s *ClientShard) NumExamples() int { return len(s.Examples) }
