package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flint/internal/tensor"
)

// AdsConfig parameterizes the advertising-domain generator (§4.1): sparse
// CTR-style records where "a candidate is typically a potential advertisement
// ... decorated with client-side features". Records carry dense context
// features plus a multi-hot set of hashed categorical features.
type AdsConfig struct {
	Clients   int           // client population
	DenseDim  int           // dense context features per record
	SparseDim int           // hashed categorical space (model B uses 4133)
	ActiveLo  int           // min active sparse features per record
	ActiveHi  int           // max active sparse features per record
	BaseRate  float64       // target positive-label ratio (Table 2: 0.28)
	Quantity  QuantityModel // per-client record counts
	Noise     float64       // label noise: std of the logit perturbation
	Seed      int64
}

// DefaultAdsConfig returns the configuration used by the case studies,
// matched to model B's input spec and Dataset A's heterogeneity shape.
func DefaultAdsConfig(clients int, seed int64) AdsConfig {
	return AdsConfig{
		Clients:   clients,
		DenseDim:  16,
		SparseDim: 4133,
		ActiveLo:  20,
		ActiveHi:  60,
		BaseRate:  0.28,
		Quantity:  AdsQuantity,
		Noise:     1.0,
		Seed:      seed,
	}
}

// AdsGenerator produces per-client advertising shards with a fixed latent
// ground truth, so federated and centralized training see the same learnable
// signal. Client records are non-IID: each client has an interest profile
// (a tilt over the sparse feature space) and a dense covariate shift.
type AdsGenerator struct {
	cfg        AdsConfig
	wDense     tensor.Vector
	wSparse    tensor.Vector
	bias       float64
	logitScale float64
	zipfS      float64
}

// NewAdsGenerator builds the generator and calibrates the label bias so the
// marginal positive ratio lands near cfg.BaseRate.
func NewAdsGenerator(cfg AdsConfig) (*AdsGenerator, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("data: ads generator needs clients > 0, got %d", cfg.Clients)
	}
	if cfg.DenseDim <= 0 || cfg.SparseDim <= 0 {
		return nil, fmt.Errorf("data: ads dims must be positive (dense %d sparse %d)", cfg.DenseDim, cfg.SparseDim)
	}
	if cfg.ActiveLo <= 0 || cfg.ActiveHi < cfg.ActiveLo {
		return nil, fmt.Errorf("data: ads active range [%d,%d] invalid", cfg.ActiveLo, cfg.ActiveHi)
	}
	if cfg.BaseRate <= 0 || cfg.BaseRate >= 1 {
		return nil, fmt.Errorf("data: ads base rate %v outside (0,1)", cfg.BaseRate)
	}
	if err := cfg.Quantity.Validate(); err != nil {
		return nil, err
	}
	g := &AdsGenerator{cfg: cfg, zipfS: 1.2}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g.wDense = tensor.NewVector(cfg.DenseDim)
	tensor.NormalInit(g.wDense, 0.7, rng)
	g.wSparse = tensor.NewVector(cfg.SparseDim)
	// Only a fraction of the sparse space is informative, like real CTR
	// data where most categorical values are noise.
	for i := range g.wSparse {
		if rng.Float64() < 0.2 {
			g.wSparse[i] = rng.NormFloat64() * 0.5
		}
	}
	g.calibrateBias(rng)
	return g, nil
}

// calibrateBias sets the logit offset so the sampled base rate matches the
// target within a few tenths of a percent.
func (g *AdsGenerator) calibrateBias(rng *rand.Rand) {
	const n = 4000
	scores := make([]float64, n)
	var sum, sq float64
	for i := range scores {
		ex := g.sampleRaw(rng, g.clientProfile(rng))
		scores[i] = g.rawScore(ex)
		sum += scores[i]
		sq += scores[i] * scores[i]
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 1e-9 {
		variance = 1e-9
	}
	// Scale the logit so ~one score-std spans three logits, then bisect
	// the bias so the simulated marginal (including client effects and
	// label noise) lands on the target base rate.
	g.logitScale = 3 / math.Sqrt(variance)
	logits := make([]float64, n)
	for i, s := range scores {
		logits[i] = g.logitScale*s + rng.NormFloat64()*0.4 + rng.NormFloat64()*g.cfg.Noise
	}
	sort.Float64s(logits)
	marginal := func(b float64) float64 {
		var m float64
		for _, l := range logits {
			m += tensor.Sigmoid(l + b)
		}
		return m / n
	}
	lo, hi := -50.0, 50.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if marginal(mid) > g.cfg.BaseRate {
			hi = mid
		} else {
			lo = mid
		}
	}
	// Store the bias in raw-score units so the label path can keep the
	// form logitScale*(raw+bias).
	g.bias = (lo + hi) / 2 / g.logitScale
}

// Name returns the domain name.
func (g *AdsGenerator) Name() string { return "ads" }

// NumClients returns the configured client population.
func (g *AdsGenerator) NumClients() int { return g.cfg.Clients }

// Config returns the generator configuration.
func (g *AdsGenerator) Config() AdsConfig { return g.cfg }

// adsProfile is a client's latent interest profile.
type adsProfile struct {
	denseShift tensor.Vector
	interests  []int // preferred sparse features
	engagement float64
}

func (g *AdsGenerator) clientProfile(rng *rand.Rand) adsProfile {
	p := adsProfile{
		denseShift: tensor.NewVector(g.cfg.DenseDim),
		interests:  make([]int, 24),
		engagement: rng.NormFloat64() * 0.4,
	}
	tensor.NormalInit(p.denseShift, 0.5, rng)
	for i := range p.interests {
		p.interests[i] = rng.Intn(g.cfg.SparseDim)
	}
	return p
}

// GenerateClient deterministically materializes client id's shard.
// The same (seed, id) pair always produces the same records, which lets
// executors lazily load partitions without storing them (paper §3.4).
func (g *AdsGenerator) GenerateClient(id int64) ClientShard {
	rng := clientRNG(g.cfg.Seed, id)
	profile := g.clientProfile(rng)
	n := g.cfg.Quantity.Sample(rng)
	shard := ClientShard{ClientID: id, Examples: make([]*Example, n)}
	for i := 0; i < n; i++ {
		ex := g.sampleRaw(rng, profile)
		ex.ClientID = id
		logit := g.logitScale*(g.rawScore(ex)+g.bias) + profile.engagement + rng.NormFloat64()*g.cfg.Noise
		if tensor.Sigmoid(logit) > rng.Float64() {
			ex.Label = 1
		}
		shard.Examples[i] = ex
	}
	return shard
}

// sampleRaw draws an unlabeled record for a client profile.
func (g *AdsGenerator) sampleRaw(rng *rand.Rand, p adsProfile) *Example {
	ex := &Example{Dense: make([]float64, g.cfg.DenseDim)}
	for i := range ex.Dense {
		shift := 0.0
		if p.denseShift != nil {
			shift = p.denseShift[i]
		}
		ex.Dense[i] = rng.NormFloat64() + shift
	}
	active := g.cfg.ActiveLo + rng.Intn(g.cfg.ActiveHi-g.cfg.ActiveLo+1)
	seen := make(map[int]struct{}, active)
	zipf := rand.NewZipf(rng, g.zipfS, 1, uint64(g.cfg.SparseDim-1))
	for len(seen) < active {
		var idx int
		if len(p.interests) > 0 && rng.Float64() < 0.35 {
			idx = p.interests[rng.Intn(len(p.interests))]
		} else {
			idx = int(zipf.Uint64())
		}
		seen[idx] = struct{}{}
	}
	ex.Sparse = make([]int, 0, len(seen))
	for idx := range seen {
		ex.Sparse = append(ex.Sparse, idx)
	}
	return ex
}

// rawScore is the latent ground-truth logit before bias and noise.
func (g *AdsGenerator) rawScore(ex *Example) float64 {
	s := 0.0
	for i, x := range ex.Dense {
		s += g.wDense[i] * x * 0.3
	}
	for _, idx := range ex.Sparse {
		s += g.wSparse[idx]
	}
	return s
}

// GenerateClients materializes shards for ids [0, n).
func (g *AdsGenerator) GenerateClients(n int) []ClientShard {
	if n > g.cfg.Clients {
		n = g.cfg.Clients
	}
	out := make([]ClientShard, n)
	for i := 0; i < n; i++ {
		out[i] = g.GenerateClient(int64(i))
	}
	return out
}

// TestSet draws a held-out evaluation set from clients beyond the training
// population, so FL and centralized baselines share one unbiased testbed.
func (g *AdsGenerator) TestSet(n int) *Dataset {
	ds := &Dataset{Examples: make([]*Example, 0, n)}
	id := int64(g.cfg.Clients) // held-out client space
	for ds.Len() < n {
		shard := g.GenerateClient(id)
		ds.Examples = append(ds.Examples, shard.Examples...)
		id++
	}
	ds.Examples = ds.Examples[:n]
	return ds
}

// clientRNG derives a deterministic per-client RNG from the dataset seed,
// decorrelating nearby ids with a splitmix-style scramble.
func clientRNG(seed, id int64) *rand.Rand {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(id+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
