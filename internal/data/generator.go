package data

import (
	"fmt"
	"math/rand"
)

// Generator is the common contract of the domain workload generators.
// Client shards are deterministic functions of (seed, client id), which is
// what lets simulation executors materialize partitions lazily instead of
// holding millions of shards in memory (paper §3.4, "Scalability").
type Generator interface {
	Name() string
	NumClients() int
	GenerateClient(id int64) ClientShard
	TestSet(n int) *Dataset
}

// Pool materializes the first n clients of g and concatenates their records
// into one centralized dataset — the "centralized counterpart" used for
// baseline training in Table 4.
func Pool(g Generator, n int) *Dataset {
	if n > g.NumClients() {
		n = g.NumClients()
	}
	ds := &Dataset{}
	for id := int64(0); id < int64(n); id++ {
		shard := g.GenerateClient(id)
		ds.Examples = append(ds.Examples, shard.Examples...)
	}
	return ds
}

// InputSpec describes the record shape a model consumes; the dummy generator
// uses it to fabricate benchmark payloads ("deploy them for training on
// dummy data", §4.1).
type InputSpec struct {
	DenseDim  int
	SparseDim int
	ActiveLo  int
	ActiveHi  int
	Vocab     int
	SeqLo     int
	SeqHi     int
	Tasks     int
}

// Dummy generates n unlabeled-but-labeled records matching spec, with
// Bernoulli(0.5) labels. It is the workload for on-device benchmarks, where
// only compute cost matters, not signal.
func Dummy(spec InputSpec, n int, seed int64) (*Dataset, error) {
	if n < 0 {
		return nil, fmt.Errorf("data: dummy size %d negative", n)
	}
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{Examples: make([]*Example, n)}
	for i := 0; i < n; i++ {
		ex := &Example{ClientID: 0}
		if spec.DenseDim > 0 {
			ex.Dense = make([]float64, spec.DenseDim)
			for j := range ex.Dense {
				ex.Dense[j] = rng.NormFloat64()
			}
		}
		if spec.SparseDim > 0 {
			lo, hi := spec.ActiveLo, spec.ActiveHi
			if lo <= 0 {
				lo = 1
			}
			if hi < lo {
				hi = lo
			}
			active := lo + rng.Intn(hi-lo+1)
			if active > spec.SparseDim {
				active = spec.SparseDim
			}
			seen := make(map[int]struct{}, active)
			for len(seen) < active {
				seen[rng.Intn(spec.SparseDim)] = struct{}{}
			}
			for idx := range seen {
				ex.Sparse = append(ex.Sparse, idx)
			}
		}
		if spec.Vocab > 0 {
			lo, hi := spec.SeqLo, spec.SeqHi
			if lo <= 0 {
				lo = 1
			}
			if hi < lo {
				hi = lo
			}
			n := lo + rng.Intn(hi-lo+1)
			ex.Tokens = make([]int, n)
			for j := range ex.Tokens {
				ex.Tokens[j] = rng.Intn(spec.Vocab)
			}
		}
		if rng.Intn(2) == 1 {
			ex.Label = 1
		}
		if spec.Tasks > 1 {
			ex.Tasks = make([]float64, spec.Tasks)
			for t := range ex.Tasks {
				if rng.Intn(2) == 1 {
					ex.Tasks[t] = 1
				}
			}
			ex.Tasks[0] = ex.Label
		}
		ds.Examples[i] = ex
	}
	return ds, nil
}
