package data

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Vocabulary maps feature strings to dense integer ids, mirroring the
// "vocabulary files" the paper's feature transformer ships to devices
// (§4.1). Id 0 is reserved for out-of-vocabulary strings.
type Vocabulary struct {
	ids   map[string]int
	words []string // index 1..n; words[0] is the OOV sentinel
}

// OOV is the id returned for strings not present in the vocabulary.
const OOV = 0

// NewVocabulary builds a vocabulary from words in first-seen order.
// Duplicates are ignored.
func NewVocabulary(words []string) *Vocabulary {
	v := &Vocabulary{ids: make(map[string]int, len(words)), words: []string{"<oov>"}}
	for _, w := range words {
		v.Add(w)
	}
	return v
}

// Add inserts w if absent and returns its id.
func (v *Vocabulary) Add(w string) int {
	if id, ok := v.ids[w]; ok {
		return id
	}
	id := len(v.words)
	v.ids[w] = id
	v.words = append(v.words, w)
	return id
}

// Lookup returns the id of w, or OOV if absent.
func (v *Vocabulary) Lookup(w string) int {
	if id, ok := v.ids[w]; ok {
		return id
	}
	return OOV
}

// Word returns the string for id, or the OOV sentinel when out of range.
func (v *Vocabulary) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		return v.words[OOV]
	}
	return v.words[id]
}

// Size returns the number of ids including the OOV slot.
func (v *Vocabulary) Size() int { return len(v.words) }

// SizeBytes estimates the serialized asset size of the vocabulary file:
// string bytes plus a 4-byte id each, the quantity the paper tracks when
// deciding whether a vocab asset fits on device (§4.1: up to 1.28 MB for
// high-cardinality variables).
func (v *Vocabulary) SizeBytes() int {
	total := 0
	for _, w := range v.words {
		total += len(w) + 4
	}
	return total
}

// Truncate returns a new vocabulary keeping only the first n words (plus the
// OOV slot), the reduction applied to the messaging embedding in §4.2.
func (v *Vocabulary) Truncate(n int) *Vocabulary {
	if n >= v.Size()-1 {
		n = v.Size() - 1
	}
	out := &Vocabulary{ids: make(map[string]int, n), words: []string{"<oov>"}}
	for _, w := range v.words[1 : n+1] {
		out.Add(w)
	}
	return out
}

// Words returns the in-vocabulary words sorted by id.
func (v *Vocabulary) Words() []string {
	out := append([]string(nil), v.words[1:]...)
	return out
}

// HashFeature maps a categorical feature string into [0, dim) with FNV-1a,
// the "feature hashing" substitution for vocabulary files discussed in §4.1
// (Weinberger et al.): less storage for lower predictive power via
// collisions.
func HashFeature(s string, dim int) (int, error) {
	if dim <= 0 {
		return 0, fmt.Errorf("data: hash dimension must be positive, got %d", dim)
	}
	h := fnv.New64a()
	h.Write([]byte(s))
	return int(h.Sum64() % uint64(dim)), nil
}

// HashFeatures maps each string through HashFeature and returns the sorted,
// deduplicated index list — the multi-hot encoding consumed by sparse models.
func HashFeatures(ss []string, dim int) ([]int, error) {
	seen := make(map[int]struct{}, len(ss))
	for _, s := range ss {
		idx, err := HashFeature(s, dim)
		if err != nil {
			return nil, err
		}
		seen[idx] = struct{}{}
	}
	out := make([]int, 0, len(seen))
	for idx := range seen {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out, nil
}

// CollisionRate estimates the fraction of n distinct features that collide
// when hashed into dim buckets (1 - expected distinct buckets / n), the
// quantity that drives the storage-vs-accuracy trade-off of §4.1.
func CollisionRate(n, dim int) float64 {
	if n <= 0 || dim <= 0 {
		return 0
	}
	// Expected occupied buckets: dim * (1 - (1-1/dim)^n).
	base := 1 - 1/float64(dim)
	// Use the closed form to avoid an n-iteration loop for large n.
	occupied := float64(dim) * (1 - pow(base, n))
	rate := 1 - occupied/float64(n)
	if rate < 0 {
		return 0
	}
	return rate
}

func pow(b float64, n int) float64 {
	out := 1.0
	for n > 0 {
		if n&1 == 1 {
			out *= b
		}
		b *= b
		n >>= 1
	}
	return out
}
