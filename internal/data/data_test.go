package data

import (
	"math"
	"math/rand"
	"testing"
)

func TestDatasetBasics(t *testing.T) {
	ds := &Dataset{Examples: []*Example{
		{ClientID: 1, Label: 1},
		{ClientID: 1, Label: 0},
		{ClientID: 2, Label: 1},
	}}
	if ds.Len() != 3 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if got := ds.LabelRatio(); got != 2.0/3 {
		t.Fatalf("LabelRatio = %v", got)
	}
	groups := ds.ByClient()
	if len(groups) != 2 || len(groups[1]) != 2 || len(groups[2]) != 1 {
		t.Fatalf("ByClient = %v", groups)
	}
}

func TestDatasetSplitAndConcat(t *testing.T) {
	ds := &Dataset{Examples: []*Example{{}, {}, {}, {}}}
	a, b, err := ds.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 || b.Len() != 3 {
		t.Fatalf("split sizes %d/%d", a.Len(), b.Len())
	}
	if _, _, err := ds.Split(5); err == nil {
		t.Fatal("expected out-of-range error")
	}
	c := Concat(a, b)
	if c.Len() != 4 {
		t.Fatalf("concat size %d", c.Len())
	}
}

func TestDatasetShuffleDeterministic(t *testing.T) {
	mk := func() *Dataset {
		ds := &Dataset{}
		for i := 0; i < 50; i++ {
			ds.Examples = append(ds.Examples, &Example{ClientID: int64(i)})
		}
		return ds
	}
	d1, d2 := mk(), mk()
	d1.Shuffle(rand.New(rand.NewSource(9)))
	d2.Shuffle(rand.New(rand.NewSource(9)))
	for i := range d1.Examples {
		if d1.Examples[i].ClientID != d2.Examples[i].ClientID {
			t.Fatal("shuffle must be deterministic given the seed")
		}
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary([]string{"a", "b", "a"})
	if v.Size() != 3 { // oov + a + b
		t.Fatalf("Size = %d", v.Size())
	}
	if v.Lookup("a") != 1 || v.Lookup("b") != 2 {
		t.Fatalf("ids: a=%d b=%d", v.Lookup("a"), v.Lookup("b"))
	}
	if v.Lookup("zzz") != OOV {
		t.Fatal("missing word must map to OOV")
	}
	if v.Word(1) != "a" || v.Word(99) != "<oov>" {
		t.Fatalf("Word: %q %q", v.Word(1), v.Word(99))
	}
	if v.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
	tr := v.Truncate(1)
	if tr.Size() != 2 || tr.Lookup("a") != 1 || tr.Lookup("b") != OOV {
		t.Fatalf("Truncate: size=%d a=%d b=%d", tr.Size(), tr.Lookup("a"), tr.Lookup("b"))
	}
	if got := len(v.Words()); got != 2 {
		t.Fatalf("Words len = %d", got)
	}
}

func TestHashFeature(t *testing.T) {
	idx, err := HashFeature("country=US", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx >= 1000 {
		t.Fatalf("hash out of range: %d", idx)
	}
	idx2, _ := HashFeature("country=US", 1000)
	if idx != idx2 {
		t.Fatal("hash must be deterministic")
	}
	if _, err := HashFeature("x", 0); err == nil {
		t.Fatal("expected error for dim 0")
	}
	multi, err := HashFeatures([]string{"a", "b", "a"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(multi); i++ {
		if multi[i] <= multi[i-1] {
			t.Fatal("HashFeatures must be sorted and deduplicated")
		}
	}
}

func TestCollisionRate(t *testing.T) {
	// Many features into few buckets → high collisions; reverse → low.
	high := CollisionRate(10000, 100)
	low := CollisionRate(100, 100000)
	if high < 0.9 {
		t.Fatalf("high collision rate = %v", high)
	}
	if low > 0.01 {
		t.Fatalf("low collision rate = %v", low)
	}
	if CollisionRate(0, 10) != 0 || CollisionRate(10, 0) != 0 {
		t.Fatal("degenerate inputs must be 0")
	}
}

func TestQuantityModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := QuantityModel{Mu: 2, Sigma: 1, Min: 1, Cap: 100}
	for i := 0; i < 1000; i++ {
		n := q.Sample(rng)
		if n < 1 || n > 100 {
			t.Fatalf("quantity %d outside [1,100]", n)
		}
	}
	if err := (QuantityModel{Sigma: -1}).Validate(); err == nil {
		t.Fatal("negative sigma must fail validation")
	}
	if err := (QuantityModel{Min: 5, Cap: 2}).Validate(); err == nil {
		t.Fatal("cap below min must fail validation")
	}
	if (QuantityModel{Mu: 0, Sigma: 0}).Mean() != 1 {
		t.Fatal("Mean of logN(0,0) is 1")
	}
}

func TestQuantityCalibrationShapes(t *testing.T) {
	// The three Table-2 models must reproduce the paper's heavy-tail
	// ordering: ads has std >> mean, search has mean ≈ 1.5.
	rng := rand.New(rand.NewSource(2))
	sampleMeanStd := func(q QuantityModel, n int) (mean, std float64) {
		var sum, sq float64
		for i := 0; i < n; i++ {
			x := float64(q.Sample(rng))
			sum += x
			sq += x * x
		}
		mean = sum / float64(n)
		variance := sq/float64(n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		return mean, math.Sqrt(variance)
	}
	adsMean, adsStd := sampleMeanStd(AdsQuantity, 200000)
	if adsMean < 50 || adsMean > 200 {
		t.Fatalf("ads mean %v far from paper's 99", adsMean)
	}
	if adsStd < 2*adsMean {
		t.Fatalf("ads std %v must be heavy-tailed (mean %v)", adsStd, adsMean)
	}
	searchMean, _ := sampleMeanStd(SearchQuantity, 100000)
	if searchMean < 1.2 || searchMean > 2.2 {
		t.Fatalf("search mean %v far from paper's 1.53", searchMean)
	}
	msgMean, _ := sampleMeanStd(MessagingQuantity, 100000)
	if msgMean < 100 || msgMean > 320 {
		t.Fatalf("messaging mean %v far from paper's 184", msgMean)
	}
}
