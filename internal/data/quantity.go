package data

import (
	"fmt"
	"math"
	"math/rand"
)

// QuantityModel samples per-client record counts. The paper's Table 2 shows
// that client quantity is extremely tail-heavy (ads: mean 99, std 667, max
// 39,731) because "superusers dominate"; a capped log-normal reproduces the
// mean/std/max shape at every domain's scale.
type QuantityModel struct {
	// Mu and Sigma parameterize the underlying log-normal.
	Mu, Sigma float64
	// Min is the per-client floor (every FL client has at least one record).
	Min int
	// Cap is the client-level down-sampling cap the paper applies
	// ("heavily down-sampled on a client level", Table 2). Zero means no cap.
	Cap int
}

// Sample draws one client quantity.
func (q QuantityModel) Sample(rng *rand.Rand) int {
	x := math.Exp(q.Mu + q.Sigma*rng.NormFloat64())
	n := int(math.Round(x))
	if n < q.Min {
		n = q.Min
	}
	if q.Cap > 0 && n > q.Cap {
		n = q.Cap
	}
	return n
}

// Validate reports configuration errors.
func (q QuantityModel) Validate() error {
	if q.Sigma < 0 {
		return fmt.Errorf("data: quantity sigma must be >= 0, got %v", q.Sigma)
	}
	if q.Min < 0 {
		return fmt.Errorf("data: quantity min must be >= 0, got %d", q.Min)
	}
	if q.Cap > 0 && q.Cap < q.Min {
		return fmt.Errorf("data: quantity cap %d below min %d", q.Cap, q.Min)
	}
	return nil
}

// Mean returns the analytic mean of the uncapped log-normal, a quick sanity
// handle for calibration tests.
func (q QuantityModel) Mean() float64 {
	return math.Exp(q.Mu + q.Sigma*q.Sigma/2)
}

// Quantity models calibrated against Table 2 of the paper.
var (
	// AdsQuantity targets mean≈99, std≈667 (capped at the paper's observed
	// max of 39,731) for Dataset A.
	AdsQuantity = QuantityModel{Mu: 2.68, Sigma: 1.957, Min: 1, Cap: 39731}
	// MessagingQuantity targets mean≈184, std≈374 for Dataset B.
	MessagingQuantity = QuantityModel{Mu: 4.397, Sigma: 1.279, Min: 1, Cap: 103471}
	// SearchQuantity targets mean≈1.53, std≈1.47 for Dataset C, whose
	// clients mostly hold one or two records.
	SearchQuantity = QuantityModel{Mu: 0.07, Sigma: 0.85, Min: 1, Cap: 406}
)
