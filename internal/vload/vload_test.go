package vload

import (
	"net/http/httptest"
	"testing"
	"time"

	"flint/internal/availability"
	"flint/internal/coord"
	"flint/internal/model"
	"flint/internal/network"
	"flint/internal/sched"
)

// TestVirtualFleetSchedulerParity is the load plane's end-to-end
// gauntlet, the compressed-time sibling of coord's
// TestFleetSchedulerChurn: a virtual fleet two hours of diurnal time
// deep, 120x compressed, drives sync rounds over the live HTTP API with
// a server whose scheduler runs the matching TimeCompression. The same
// things must hold as for the wall-clock fleet — every committed round
// closes within its (wall) deadline, the scheduler measures devices from
// their virtual-clock telemetry and remaps them off their radio labels,
// and the census histograms fill — plus the batch-check-in path must
// carry the registrations and the footprint accounting must be live.
func TestVirtualFleetSchedulerParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live virtual-fleet run")
	}
	const compression = 120
	cfg := coord.Config{
		Mode:          coord.ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 12,
		Quorum:        4,
		OverCommit:    1.3,
		RoundDeadline: 6 * time.Second,
		QueueDepth:    256,
		KeepVersions:  -1,
		Criteria:      availability.Criteria{RequireWiFi: true},
		Sched: sched.Config{
			RebuildEvery:    150 * time.Millisecond,
			MinSamples:      1,
			TimeCompression: compression,
		},
	}
	c, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(coord.NewServer(c))
	defer srv.Close()

	rep, err := Run(Config{
		BaseURL:         srv.URL,
		Devices:         3000,
		Compression:     compression,
		VirtualDuration: 2 * time.Hour,
		Rounds:          3,
		Seed:            7,
		Batch:           512,
		Think:           60 * time.Second,
		SessionsPerDay:  24,
		Bandwidth:       &network.BandwidthModel{MedianMbps: 4, Sigma: 0.9, SlowFrac: 0.2, FloorMbps: 0.05},
		Timeout:         90 * time.Second,
		Client:          srv.Client(),
	})
	if err != nil {
		t.Fatalf("vload: %v (report: %+v)", err, rep)
	}
	if rep.RoundsCommitted < 3 {
		t.Fatalf("committed %d rounds, want >= 3", rep.RoundsCommitted)
	}
	if rep.BatchRequests == 0 || rep.CheckIns < int64(rep.Devices) {
		t.Fatalf("registration storm missing: %d check-ins over %d batch requests", rep.CheckIns, rep.BatchRequests)
	}
	if rep.RegisterPerSec <= 0 {
		t.Fatalf("no registration throughput measured: %+v", rep)
	}
	if rep.UpdatesOK < int64(3*cfg.TargetUpdates)-int64(cfg.TargetUpdates) {
		// Rounds close at TargetUpdates; allow the last round's partial.
		t.Errorf("only %d updates accepted across %d rounds", rep.UpdatesOK, rep.RoundsCommitted)
	}

	st := rep.FinalStatus
	if st == nil {
		t.Fatal("no final status snapshot")
	}
	committed := 0
	for _, r := range st.Recent {
		if r.Phase != coord.PhaseCommitted {
			continue
		}
		committed++
		if r.Duration > cfg.RoundDeadline {
			t.Errorf("round %d closed in %s, past its %s wall deadline", r.ID, r.Duration, cfg.RoundDeadline)
		}
	}
	if committed < 3 {
		t.Fatalf("only %d committed rounds in history", committed)
	}
	if st.Counters["task_assigned"] < int64(3*cfg.TargetUpdates) {
		t.Errorf("task_assigned = %d, want >= %d", st.Counters["task_assigned"], 3*cfg.TargetUpdates)
	}
	if st.Counters["checkin_batch"] == 0 {
		t.Error("server saw no batched check-ins")
	}

	sr := st.Scheduler
	if !sr.Enabled || sr.Measured == 0 {
		t.Fatalf("scheduler measured nothing from virtual telemetry: %+v", sr)
	}
	if sr.Remapped == 0 {
		t.Errorf("no device was remapped off its radio label (measured %d)", sr.Measured)
	}
	hist := 0
	for _, cs := range sr.Cohorts {
		for _, n := range cs.BandwidthHist {
			hist += n
		}
	}
	if hist == 0 {
		t.Error("per-cohort bandwidth histograms are empty")
	}
	fp := sr.Footprint
	if fp.Devices < rep.Devices || fp.RegistryBytesPerDev <= 0 {
		t.Errorf("footprint accounting not live: %+v", fp)
	}
	if rep.RegistryBytesPerDev <= 0 || rep.SchedDevices == 0 {
		t.Errorf("report did not surface footprint: %+v", rep)
	}
	if rep.AchievedCompression <= 0 {
		t.Errorf("achieved compression not measured: %+v", rep)
	}
	t.Logf("virtual fleet: %d rounds, %.0f devices/sec registration, x%.0f/%.0f compression, %d/%d measured, %d remapped, %d B/device registry",
		rep.RoundsCommitted, rep.RegisterPerSec, rep.AchievedCompression, rep.Compression,
		sr.Measured, sr.Devices, sr.Remapped, int(rep.RegistryBytesPerDev))
}

// TestConfigValidation pins the load plane's config contract.
func TestConfigValidation(t *testing.T) {
	if _, err := (Config{}).withDefaults(); err == nil {
		t.Fatal("empty base URL accepted")
	}
	if _, err := (Config{BaseURL: "http://x", Compression: 0.5}).withDefaults(); err == nil {
		t.Fatal("compression below 1 accepted")
	}
	if _, err := (Config{BaseURL: "http://x", StartHour: 25}).withDefaults(); err == nil {
		t.Fatal("start hour 25 accepted")
	}
	cfg, err := (Config{BaseURL: "http://x/"}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BaseURL != "http://x" || cfg.Compression != 60 || cfg.StartHour != 19 ||
		cfg.VirtualDuration != 24*time.Hour || cfg.Batch != 2048 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.Workers <= 0 || cfg.Client == nil || cfg.Bandwidth == nil {
		t.Fatalf("defaults left zero fields: %+v", cfg)
	}
	// StartHour -1 is the explicit midnight spelling.
	cfg, err = (Config{BaseURL: "http://x", StartHour: -1}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.StartHour != 0 {
		t.Fatalf("StartHour -1 mapped to %d, want 0", cfg.StartHour)
	}
}
