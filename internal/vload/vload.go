// Package vload is the virtual-time load plane: fedsim's population,
// availability, and link models driven against the real HTTP serving
// stack at fleet scales the goroutine-per-device generator cannot reach.
//
// Where internal/coord's RunFleet backs every simulated device with a
// goroutine (topping out around a thousand devices), vload multiplexes
// thousands of virtual devices per worker goroutine: each worker owns a
// partition of the fleet and an event heap (internal/vclock) keyed in
// *virtual* seconds, and replays wake → poll → train → update protocol
// traffic through a bounded keep-alive connection pool. The virtual
// clock runs at Compression virtual seconds per wall second — a full
// diurnal availability cycle over a million devices compresses into
// minutes of wall clock — and is allowed to fall behind when the system
// under test (or the generator host) cannot keep up; the achieved
// compression is reported so a shortfall is a measurement, not a silent
// distortion.
//
// The clock contract: every timing a device reports to the server
// (X-Flint-Down-Ms, X-Flint-Train-Ms, X-Flint-Up-Bytes/Up-Ms) is
// computed from its *simulated* link and compute in virtual seconds, so
// the scheduler's EWMAs converge to the true simulated rates no matter
// how hard time is compressed. The server is run with
// Sched.TimeCompression set to the same factor: its estimate plane
// divides virtual-domain estimates back into wall seconds, making the
// deadline gate and cohort decisions identical to an equivalent
// wall-clock fleet's (see sched.Config.TimeCompression).
package vload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flint/internal/availability"
	"flint/internal/codec"
	"flint/internal/coord"
	"flint/internal/network"
	"flint/internal/tensor"
	"flint/internal/transport"
	"flint/internal/vclock"
)

// Config drives one virtual-time load run.
type Config struct {
	// BaseURL is the server root (a flint-server, or a flint-gateway
	// when Gateway is set).
	BaseURL string
	// Gateway marks BaseURL as a shard-tier gateway: the run waits for
	// tier health and watches the rollup's top-level version for round
	// progress; device traffic is routed per device transparently
	// (batched check-ins are split across shards by the gateway).
	Gateway bool
	// Devices is the virtual fleet size.
	Devices int
	// Compression is the virtual-time rate: virtual seconds per wall
	// second (>= 1). The server must run with the same value in
	// Sched.TimeCompression for telemetry-driven decisions to match a
	// wall-clock fleet.
	Compression float64
	// VirtualDuration is how much virtual time to simulate (default one
	// full diurnal cycle, 24h).
	VirtualDuration time.Duration
	// Rounds, when > 0, stops the run early once the server has
	// committed that many rounds past the starting version.
	Rounds int
	// StartHour is the virtual clock's hour-of-day at t=0 (0-23;
	// default 19, the diurnal peak, so a short run begins with devices
	// awake). Set -1 for 0:00 explicitly.
	StartHour int
	Seed      int64
	// Workers is the event-loop goroutine count; each multiplexes
	// Devices/Workers virtual devices (default 4 x GOMAXPROCS, capped
	// at 64). It also bounds concurrent in-flight HTTP requests — the
	// connection-pool sizing knob.
	Workers int
	// Batch is the registration/check-in batch size for
	// POST /v1/checkin/batch (default 2048).
	Batch int
	// Think is the mean *virtual* re-poll interval while a device sits
	// in a session without work (default 120 virtual seconds).
	Think time.Duration
	// SessionsPerDay is the per-device mean session count per virtual
	// day, modulated by the diurnal curve (default 3, the paper's ads
	// case study). SessionMedianSec is the log-normal session-duration
	// median in virtual seconds (default 150).
	SessionsPerDay   float64
	SessionMedianSec float64
	// TrainMedianSec is the log-normal median of the simulated local
	// training duration in virtual seconds (default 20).
	TrainMedianSec float64
	// Bandwidth samples each device's persistent simulated link
	// (downlink from the model, uplink at 40% of it); nil gets the
	// fleet generator's default mixed-link model.
	Bandwidth *network.BandwidthModel
	// WiFiProb/BatteryHighProb/ModernOSProb are the Table 1 device-state
	// marginals, modulated per session hour by the availability curves.
	WiFiProb        float64
	BatteryHighProb float64
	ModernOSProb    float64
	// Timeout bounds the whole run in wall time.
	Timeout time.Duration
	// Client overrides the HTTP client (tests inject the httptest
	// client); the default sizes its idle pool to Workers.
	Client *http.Client
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseURL == "" {
		return c, fmt.Errorf("vload: need a base URL")
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	if c.Devices <= 0 {
		c.Devices = 100_000
	}
	if c.Compression == 0 {
		c.Compression = 60
	}
	if c.Compression < 1 {
		return c, fmt.Errorf("vload: compression %v below 1", c.Compression)
	}
	if c.VirtualDuration <= 0 {
		c.VirtualDuration = 24 * time.Hour
	}
	switch {
	case c.StartHour == 0:
		c.StartHour = 19
	case c.StartHour == -1:
		c.StartHour = 0
	case c.StartHour < 0 || c.StartHour > 23:
		return c, fmt.Errorf("vload: start hour %d outside 0-23", c.StartHour)
	}
	if c.Workers <= 0 {
		c.Workers = 4 * runtime.GOMAXPROCS(0)
		if c.Workers > 64 {
			c.Workers = 64
		}
	}
	if c.Workers > c.Devices {
		c.Workers = c.Devices
	}
	if c.Batch <= 0 {
		c.Batch = 2048
	}
	if c.Think <= 0 {
		c.Think = 120 * time.Second
	}
	if c.SessionsPerDay <= 0 {
		c.SessionsPerDay = 3
	}
	if c.SessionMedianSec <= 0 {
		c.SessionMedianSec = 150
	}
	if c.TrainMedianSec <= 0 {
		c.TrainMedianSec = 20
	}
	if c.Bandwidth == nil {
		c.Bandwidth = &network.BandwidthModel{MedianMbps: 4, Sigma: 0.9, SlowFrac: 0.2, FloorMbps: 0.05}
	}
	if err := c.Bandwidth.Validate(); err != nil {
		return c, fmt.Errorf("vload: %w", err)
	}
	if c.WiFiProb == 0 {
		c.WiFiProb = 0.70
	}
	if c.BatteryHighProb == 0 {
		c.BatteryHighProb = 0.34
	}
	if c.ModernOSProb == 0 {
		c.ModernOSProb = 0.93
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Minute
	}
	if c.Client == nil {
		tr := &http.Transport{
			MaxIdleConns:        2 * c.Workers,
			MaxIdleConnsPerHost: 2 * c.Workers,
			IdleConnTimeout:     90 * time.Second,
		}
		c.Client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	return c, nil
}

// hourAt maps a virtual timestamp (seconds since run start) to its
// virtual hour of day.
func (c *Config) hourAt(v float64) int {
	return int(math.Mod(float64(c.StartHour)+v/3600, 24))
}

// Report is the load plane's result.
type Report struct {
	Devices int `json:"devices"`
	Workers int `json:"workers"`
	// Compression is the configured virtual rate;
	// AchievedCompression the rate actually sustained (virtual seconds
	// simulated per wall second — lower means the system under test or
	// the generator host was the bottleneck).
	Compression         float64 `json:"compression"`
	AchievedCompression float64 `json:"achieved_compression"`
	// VirtualSimulated is the virtual time the slowest worker reached.
	VirtualSimulated time.Duration `json:"virtual_simulated_ns"`
	Wall             time.Duration `json:"wall_ns"`
	// RegisterWall is the wall time of the initial registration storm;
	// RegisterPerSec its batched check-in throughput in devices/second.
	RegisterWall    time.Duration `json:"register_wall_ns"`
	RegisterPerSec  float64       `json:"register_devices_per_sec"`
	CheckIns        int64         `json:"checkins"`
	BatchRequests   int64         `json:"batch_requests"`
	Polls           int64         `json:"task_polls"`
	Tasks           int64         `json:"tasks_received"`
	UpdatesOK       int64         `json:"updates_accepted"`
	UpdatesErr      int64         `json:"updates_rejected"`
	NetErrors       int64         `json:"net_errors"`
	BytesSent       int64         `json:"bytes_sent"`
	BytesRecv       int64         `json:"bytes_received"`
	RoundsCommitted int           `json:"rounds_committed"`
	StartVersion    int           `json:"start_version"`
	EndVersion      int           `json:"end_version"`
	// RegistryBytesPerDev/SchedulerBytesPerDev echo the server's
	// /v1/status footprint section at shutdown (0 in gateway mode,
	// where the rollup nests per-shard documents instead).
	RegistryBytesPerDev  float64 `json:"registry_bytes_per_device,omitempty"`
	SchedulerBytesPerDev float64 `json:"scheduler_bytes_per_device,omitempty"`
	SchedDevices         int     `json:"sched_census_devices,omitempty"`
	TierShards           int     `json:"tier_shards,omitempty"`
	// FinalStatus is the server's shutdown snapshot (nil in gateway
	// mode).
	FinalStatus *coord.StatusReport `json:"final_status,omitempty"`
}

// String renders the operator-facing summary flint-fleet -virtual prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vload: %d virtual devices, %d workers: simulated %.1f virtual minutes in %.1fs wall (x%.0f asked, x%.0f achieved)\n",
		r.Devices, r.Workers, r.VirtualSimulated.Minutes(), r.Wall.Seconds(), r.Compression, r.AchievedCompression)
	fmt.Fprintf(&b, "  registration: %d devices in %.2fs (%.0f devices/sec over %d batch requests)\n",
		r.Devices, r.RegisterWall.Seconds(), r.RegisterPerSec, r.BatchRequests)
	fmt.Fprintf(&b, "  rounds: v%d -> v%d (%d committed)\n", r.StartVersion, r.EndVersion, r.RoundsCommitted)
	fmt.Fprintf(&b, "  requests: %d check-ins, %d polls, %d tasks, %d updates accepted, %d rejected, %d net errors\n",
		r.CheckIns, r.Polls, r.Tasks, r.UpdatesOK, r.UpdatesErr, r.NetErrors)
	fmt.Fprintf(&b, "  wire: sent %.1f MiB, received %.1f MiB\n",
		float64(r.BytesSent)/(1<<20), float64(r.BytesRecv)/(1<<20))
	if r.RegistryBytesPerDev > 0 {
		fmt.Fprintf(&b, "  footprint: %.0f B/device registry, %.0f B/device scheduler (census %d)\n",
			r.RegistryBytesPerDev, r.SchedulerBytesPerDev, r.SchedDevices)
	}
	if r.TierShards > 0 {
		fmt.Fprintf(&b, "  tier: routed through a %d-shard gateway\n", r.TierShards)
	}
	return b.String()
}

// Event kinds, packed with the device index into one int64 payload so
// heap events cost one small boxed integer, not a struct allocation.
const (
	evWake   = iota // session start: enqueue batched check-in, schedule first poll
	evPoll          // GET /v1/task
	evFinish        // POST /v1/update after simulated download + training
	evKinds
)

// vdev is one virtual device's resident state — a few dozen bytes, so a
// million-device fleet fits in the generator's memory the same way it
// must fit in the server's.
type vdev struct {
	id             int64
	downBps, upBps float32
	weight         float32
	sessionEnd     float64 // virtual seconds; 0 = offline
	wifi           bool
	battery        bool
	modern         bool
	pending        bool // awaiting batched check-in flush
	// In-flight task state (valid between evPoll's 200 and evFinish).
	round     uint64
	base      int32
	dim       int32
	scheme    string
	downBytes int32
	downV     float32 // virtual seconds the download took
	trainV    float32 // virtual seconds training will take
}

// totals aggregates counters across workers.
type totals struct {
	checkins, batches, polls, tasks atomic.Int64
	updatesOK, updatesErr, netErrs  atomic.Int64
	bytesSent, bytesRecv            atomic.Int64
}

// worker multiplexes a partition of the fleet over one goroutine: a
// vclock event heap in virtual seconds, paced against the wall clock at
// the configured compression (sleeping when ahead, running flat out when
// behind), with at most one HTTP request in flight per worker — the
// worker count IS the connection-pool bound.
type worker struct {
	cfg     *Config
	rng     *rand.Rand
	q       vclock.Queue
	devs    []vdev
	pending []int32
	vmax    float64
	vnow    float64
	tot     *totals
	// diurnalMean normalizes session-rate thinning (precomputed).
	diurnalMean float64
	buf         bytes.Buffer // pooled response-body scratch
}

func (w *worker) schedule(v float64, idx int32, kind int) {
	w.q.Push(vclock.Seconds(v), int64(idx)*evKinds+int64(kind))
}

// nextSessionStart samples the device's next wake-up by Poisson thinning
// against the diurnal intensity curve: candidate gaps are drawn at the
// peak rate and accepted with probability curve(hour)/peak, so the
// fleet's session arrivals breathe with the same daily shape the trace
// generator produces — without materializing a million-device session
// log.
func (w *worker) nextSessionStart(v float64) float64 {
	peakRate := w.cfg.SessionsPerDay / 86400 / w.diurnalMean
	for i := 0; i < 1_000_000; i++ {
		v += w.rng.ExpFloat64() / peakRate
		if w.rng.Float64() < availability.DiurnalIntensity(w.cfg.hourAt(v)) {
			return v
		}
	}
	return v
}

// wake opens a session: duration log-normal around the configured
// median, device state re-drawn with the hour-of-day shifts, and the
// check-in queued for the next batch flush. The first poll lands a few
// virtual seconds in (forcing the flush if the batch hasn't filled).
func (w *worker) wake(idx int32) {
	d := &w.devs[idx]
	hour := w.cfg.hourAt(w.vnow)
	dur := w.cfg.SessionMedianSec * math.Exp(w.rng.NormFloat64()*1.1)
	d.sessionEnd = w.vnow + dur
	d.wifi = w.rng.Float64() < clamp01(w.cfg.WiFiProb+availability.WiFiShift(hour))
	d.battery = w.rng.Float64() < clamp01(w.cfg.BatteryHighProb+availability.BatteryShift(hour))
	if !d.pending {
		d.pending = true
		w.pending = append(w.pending, idx)
	}
	if len(w.pending) >= w.cfg.Batch {
		w.flushCheckIns(nil)
	}
	w.schedule(w.vnow+1+4*w.rng.Float64(), idx, evPoll)
}

// endSession schedules the device's next diurnal wake-up (if it lands
// inside the simulated horizon).
func (w *worker) endSession(idx int32) {
	next := w.nextSessionStart(w.vnow)
	if next < w.vmax {
		w.schedule(next, idx, evWake)
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// checkInReq renders the device's current session state as a check-in
// wire record. SessionSec is converted to the wall domain: the server's
// TTLs and deadlines run on the wall clock, so a virtual-domain number
// would overstate availability by the compression factor.
func (w *worker) checkInReq(idx int32) coord.CheckInRequest {
	d := &w.devs[idx]
	left := d.sessionEnd - w.vnow
	if left < 0 {
		left = 0
	}
	return coord.CheckInRequest{
		DeviceID:      d.id,
		Model:         "vload-sim",
		Platform:      "android",
		WiFi:          d.wifi,
		BatteryHigh:   d.battery,
		ModernOS:      d.modern,
		SessionSec:    left / w.cfg.Compression,
		Weight:        float64(d.weight),
		AcceptSchemes: transport.FormatAccept(transport.AllKinds()),
	}
}

// flushCheckIns posts the pending batch (ctx nil means the worker's run
// context, already bound into the config's client timeout). Check-ins
// are idempotent, so a failed batch is just retried by each device's
// next wake; the devices are unmarked either way.
func (w *worker) flushCheckIns(ctx context.Context) {
	if len(w.pending) == 0 {
		return
	}
	req := coord.BatchCheckInRequest{Devices: make([]coord.CheckInRequest, 0, len(w.pending))}
	for _, idx := range w.pending {
		req.Devices = append(req.Devices, w.checkInReq(idx))
		w.devs[idx].pending = false
	}
	n := len(w.pending)
	w.pending = w.pending[:0]
	raw, err := json.Marshal(req)
	if err != nil {
		w.tot.netErrs.Add(1)
		return
	}
	hreq, err := http.NewRequest(http.MethodPost, w.cfg.BaseURL+"/v1/checkin/batch", bytes.NewReader(raw))
	if err != nil {
		w.tot.netErrs.Add(1)
		return
	}
	if ctx != nil {
		hreq = hreq.WithContext(ctx)
	}
	hreq.Header.Set("Content-Type", "application/json")
	w.tot.bytesSent.Add(int64(len(raw)))
	resp, err := w.cfg.Client.Do(hreq)
	if err != nil {
		w.tot.netErrs.Add(1)
		return
	}
	body, err := w.readBody(resp.Body)
	resp.Body.Close()
	w.tot.bytesRecv.Add(int64(len(body)))
	if err != nil || resp.StatusCode != http.StatusOK {
		w.tot.netErrs.Add(1)
		return
	}
	w.tot.batches.Add(1)
	w.tot.checkins.Add(int64(n))
}

// readBody drains r into the worker's reusable scratch buffer.
func (w *worker) readBody(r io.Reader) ([]byte, error) {
	w.buf.Reset()
	_, err := w.buf.ReadFrom(r)
	return w.buf.Bytes(), err
}

// poll is one GET /v1/task. It returns true when a task was accepted and
// evFinish scheduled; false means the device should re-poll (or its
// session lapsed).
func (w *worker) poll(ctx context.Context, idx int32) bool {
	d := &w.devs[idx]
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.cfg.BaseURL+"/v1/task?device="+strconv.FormatInt(d.id, 10), nil)
	if err != nil {
		w.tot.netErrs.Add(1)
		return false
	}
	req.Header.Set("Accept", coord.ContentTypeTensor)
	req.Header.Set("X-Flint-Accept-Schemes", transport.FormatAccept(transport.AllKinds()))
	w.tot.polls.Add(1)
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			w.tot.netErrs.Add(1)
		}
		return false
	}
	body, err := w.readBody(resp.Body)
	resp.Body.Close()
	w.tot.bytesRecv.Add(int64(len(body)))
	if err != nil {
		w.tot.netErrs.Add(1)
		return false
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNoContent:
		return false
	case http.StatusNotFound:
		// Unknown device: swept between sessions (or the batch that
		// carried its check-in failed). Re-enqueue the registration; the
		// next poll finds it live.
		if !d.pending {
			d.pending = true
			w.pending = append(w.pending, idx)
		}
		return false
	default:
		w.tot.netErrs.Add(1)
		return false
	}
	round, err1 := strconv.ParseUint(resp.Header.Get("X-Flint-Round"), 10, 64)
	base, err2 := strconv.Atoi(resp.Header.Get("X-Flint-Base-Version"))
	dim, err3 := strconv.Atoi(resp.Header.Get("X-Flint-Dim"))
	if err1 != nil || err2 != nil || err3 != nil || dim <= 0 {
		w.tot.netErrs.Add(1)
		return false
	}
	w.tot.tasks.Add(1)
	d.round, d.base, d.dim = round, int32(base), int32(dim)
	d.scheme = resp.Header.Get("X-Flint-Update-Scheme")
	// The blob download and local training cost *virtual* time: the
	// device's simulated link rate and compute, not the loopback wire.
	downV := float64(len(body)) / float64(d.downBps)
	trainV := w.cfg.TrainMedianSec * math.Exp(w.rng.NormFloat64()*0.8)
	d.downBytes, d.downV, d.trainV = int32(len(body)), float32(downV), float32(trainV)
	w.schedule(w.vnow+downV+trainV, idx, evFinish)
	return true
}

// blobCache shares the deterministic update payload per (scheme, dim):
// every virtual device's "training result" is the same tiny alternating
// delta, encoded once and replayed verbatim — at a million devices the
// load plane cannot afford an O(dim) encode per update, and the serving
// stack under test never inspects update contents beyond validation.
var blobCache sync.Map // "scheme|dim" -> []byte

func updateBlob(scheme string, dim int) ([]byte, error) {
	key := scheme + "|" + strconv.Itoa(dim)
	if v, ok := blobCache.Load(key); ok {
		return v.([]byte), nil
	}
	sch, err := codec.ParseScheme(scheme)
	if err != nil {
		sch = codec.F32
	}
	delta := make(tensor.Vector, dim)
	for i := range delta {
		delta[i] = 1e-3 * (1 - 2*float64(i%2))
	}
	blob, err := codec.Encode(delta, sch)
	if err != nil {
		return nil, err
	}
	actual, _ := blobCache.LoadOrStore(key, blob)
	return actual.([]byte), nil
}

// finish is one POST /v1/update: the cached blob with the device's
// virtual-clock telemetry headers — download transfer, training
// duration, and (because the wall-clock body transfer is loopback noise
// under compression) the uplink transfer too, all in virtual
// milliseconds. This is the feed that makes the scheduler's EWMAs equal
// the simulated link rates.
func (w *worker) finish(ctx context.Context, idx int32) {
	d := &w.devs[idx]
	blob, err := updateBlob(d.scheme, int(d.dim))
	if err != nil {
		w.tot.netErrs.Add(1)
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.cfg.BaseURL+"/v1/update", bytes.NewReader(blob))
	if err != nil {
		w.tot.netErrs.Add(1)
		return
	}
	upV := float64(len(blob)) / float64(d.upBps)
	h := req.Header
	h.Set("Content-Type", coord.ContentTypeTensor)
	h.Set("X-Flint-Device", strconv.FormatInt(d.id, 10))
	h.Set("X-Flint-Round", strconv.FormatUint(d.round, 10))
	h.Set("X-Flint-Base-Version", strconv.Itoa(int(d.base)))
	h.Set("X-Flint-Weight", strconv.FormatFloat(float64(d.weight), 'g', -1, 64))
	h.Set("X-Flint-Down-Bytes", strconv.Itoa(int(d.downBytes)))
	h.Set("X-Flint-Down-Ms", strconv.FormatFloat(float64(d.downV)*1000, 'g', -1, 64))
	h.Set("X-Flint-Train-Ms", strconv.FormatFloat(float64(d.trainV)*1000, 'g', -1, 64))
	h.Set("X-Flint-Up-Bytes", strconv.Itoa(len(blob)))
	h.Set("X-Flint-Up-Ms", strconv.FormatFloat(upV*1000, 'g', -1, 64))
	w.tot.bytesSent.Add(int64(len(blob)))
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			w.tot.netErrs.Add(1)
		}
		return
	}
	body, err := w.readBody(resp.Body)
	resp.Body.Close()
	w.tot.bytesRecv.Add(int64(len(body)))
	if err != nil {
		w.tot.netErrs.Add(1)
		return
	}
	if resp.StatusCode == http.StatusAccepted {
		w.tot.updatesOK.Add(1)
	} else {
		w.tot.updatesErr.Add(1)
	}
}

// run is the worker's event loop: pop the next virtual event, pace the
// wall clock to the compression rate (sleep when ahead of schedule, run
// flat out when behind), handle it. It returns the virtual time reached.
func (w *worker) run(ctx context.Context, start time.Time) float64 {
	for {
		ev, ok := w.q.Pop()
		if !ok || float64(ev.Time) > w.vmax {
			// Horizon reached (or no device has anything left to do).
			w.flushCheckIns(ctx)
			return w.vmax
		}
		w.vnow = float64(ev.Time)
		targetWall := time.Duration(w.vnow / w.cfg.Compression * float64(time.Second))
		if ahead := targetWall - time.Since(start); ahead > 0 {
			if !sleepCtx(ctx, ahead) {
				return w.vnow
			}
		}
		if ctx.Err() != nil {
			return w.vnow
		}
		p := ev.Payload.(int64)
		idx, kind := int32(p/evKinds), int(p%evKinds)
		d := &w.devs[idx]
		switch kind {
		case evWake:
			w.wake(idx)
		case evPoll:
			if d.pending {
				// The device's check-in is still queued: flush before the
				// poll so the server knows it.
				w.flushCheckIns(ctx)
			}
			if w.vnow >= d.sessionEnd {
				w.endSession(idx)
				continue
			}
			if !w.poll(ctx, idx) {
				think := float64(w.cfg.Think) / float64(time.Second) * (0.5 + w.rng.Float64())
				w.schedule(w.vnow+think, idx, evPoll)
			}
		case evFinish:
			w.finish(ctx, idx)
			if w.vnow >= d.sessionEnd {
				w.endSession(idx)
			} else {
				think := float64(w.cfg.Think) / float64(time.Second) * (0.5 + w.rng.Float64())
				w.schedule(w.vnow+think, idx, evPoll)
			}
		}
	}
}

// Run executes the virtual-time load plane and blocks until the
// simulated horizon is reached, the configured round count commits, or
// the wall timeout fires.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()

	var tot totals
	meanD := 0.0
	for h := 0; h < 24; h++ {
		meanD += availability.DiurnalIntensity(h)
	}
	meanD /= 24

	// Partition the fleet across workers (contiguous ranges; device IDs
	// are 1..Devices) and sample each device's persistent link and
	// identity attributes.
	workers := make([]*worker, cfg.Workers)
	per := (cfg.Devices + cfg.Workers - 1) / cfg.Workers
	for wi := range workers {
		lo, hi := wi*per, (wi+1)*per
		if hi > cfg.Devices {
			hi = cfg.Devices
		}
		if lo >= hi {
			workers[wi] = &worker{cfg: &cfg, rng: rand.New(rand.NewSource(cfg.Seed + int64(wi))), tot: &tot,
				vmax: cfg.VirtualDuration.Seconds(), diurnalMean: meanD}
			continue
		}
		w := &worker{
			cfg:         &cfg,
			rng:         rand.New(rand.NewSource(cfg.Seed + int64(wi)*7919)),
			devs:        make([]vdev, hi-lo),
			vmax:        cfg.VirtualDuration.Seconds(),
			tot:         &tot,
			diurnalMean: meanD,
		}
		for i := range w.devs {
			d := &w.devs[i]
			d.id = int64(lo + i + 1)
			down := cfg.Bandwidth.SampleBps(w.rng)
			d.downBps, d.upBps = float32(down), float32(down*0.4)
			d.weight = float32(20 + w.rng.Intn(180))
			d.modern = w.rng.Float64() < cfg.ModernOSProb
			d.wifi = w.rng.Float64() < cfg.WiFiProb
			d.battery = w.rng.Float64() < cfg.BatteryHighProb
		}
		workers[wi] = w
	}

	tierShards := 0
	if cfg.Gateway {
		tier, err := waitTierHealthy(ctx, cfg)
		if err != nil {
			return nil, err
		}
		tierShards = tier.Tier.Shards
	}
	startVersion, _, err := fetchVersion(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("vload: cannot reach server: %w", err)
	}

	// Phase 1 — the registration storm: every device batch-checked-in
	// flat out. This is the devices/sec figure: pure batched check-in
	// throughput against the live registry.
	regStart := time.Now()
	var regWG sync.WaitGroup
	for _, w := range workers {
		if len(w.devs) == 0 {
			continue
		}
		regWG.Add(1)
		go func(w *worker) {
			defer regWG.Done()
			for i := range w.devs {
				w.devs[i].pending = true
				w.pending = append(w.pending, int32(i))
				if len(w.pending) >= cfg.Batch {
					w.flushCheckIns(ctx)
				}
			}
			w.flushCheckIns(ctx)
		}(w)
	}
	regWG.Wait()
	regWall := time.Since(regStart)
	if ctx.Err() != nil {
		return nil, fmt.Errorf("vload: timed out during registration")
	}

	// Phase 2 — the diurnal day: each device's first wake-up sampled
	// from the intensity curve, then the event loops run the protocol.
	for _, w := range workers {
		for i := range w.devs {
			if v := w.nextSessionStart(0); v < w.vmax {
				w.schedule(v, int32(i), evWake)
			}
		}
	}

	// Round watcher: stop early once the target version lands.
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()
	var endVersion atomic.Int64
	endVersion.Store(int64(startVersion))
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-tick.C:
				if v, _, err := fetchVersion(runCtx, cfg); err == nil {
					endVersion.Store(int64(v))
					if cfg.Rounds > 0 && v >= startVersion+cfg.Rounds {
						stopRun()
						return
					}
				}
			}
		}
	}()

	start := time.Now()
	reached := make([]float64, len(workers))
	var wg sync.WaitGroup
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w *worker) {
			defer wg.Done()
			reached[wi] = w.run(runCtx, start)
		}(wi, w)
	}
	wg.Wait()
	stopRun()
	<-watchDone
	wall := time.Since(start)

	vmin := cfg.VirtualDuration.Seconds()
	for wi, w := range workers {
		if len(w.devs) > 0 && reached[wi] < vmin {
			vmin = reached[wi]
		}
	}
	rep := &Report{
		Devices:          cfg.Devices,
		Workers:          cfg.Workers,
		Compression:      cfg.Compression,
		VirtualSimulated: time.Duration(vmin * float64(time.Second)),
		Wall:             wall,
		RegisterWall:     regWall,
		RegisterPerSec:   float64(cfg.Devices) / regWall.Seconds(),
		CheckIns:         tot.checkins.Load(),
		BatchRequests:    tot.batches.Load(),
		Polls:            tot.polls.Load(),
		Tasks:            tot.tasks.Load(),
		UpdatesOK:        tot.updatesOK.Load(),
		UpdatesErr:       tot.updatesErr.Load(),
		NetErrors:        tot.netErrs.Load(),
		BytesSent:        tot.bytesSent.Load(),
		BytesRecv:        tot.bytesRecv.Load(),
		StartVersion:     startVersion,
		TierShards:       tierShards,
	}
	if wall > 0 {
		rep.AchievedCompression = vmin / wall.Seconds()
	}
	// Final status (fresh context: the run context may have expired).
	finalCtx, cancelFinal := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelFinal()
	if v, st, err := fetchVersion(finalCtx, cfg); err == nil {
		endVersion.Store(int64(v))
		if st != nil {
			rep.FinalStatus = st
			rep.RegistryBytesPerDev = st.Scheduler.Footprint.RegistryBytesPerDev
			rep.SchedulerBytesPerDev = st.Scheduler.Footprint.SchedulerBytesPerDev
			rep.SchedDevices = st.Scheduler.Devices
		}
	}
	rep.EndVersion = int(endVersion.Load())
	rep.RoundsCommitted = rep.EndVersion - rep.StartVersion
	if cfg.Rounds > 0 && rep.RoundsCommitted < cfg.Rounds {
		return rep, fmt.Errorf("vload: stopped at version %d (wanted %d committed rounds past %d)",
			rep.EndVersion, cfg.Rounds, rep.StartVersion)
	}
	return rep, nil
}

// tierProbe is the slice of the gateway rollup vload needs (decoded
// locally: importing internal/shard here would be a needless coupling).
type tierProbe struct {
	Version int `json:"version"`
	Tier    struct {
		Shards  int  `json:"shards"`
		Healthy bool `json:"healthy"`
	} `json:"tier"`
}

// fetchVersion reads the server's current published version — from the
// gateway rollup's top level in tier mode, else from /v1/status (whose
// full document is also returned for the shutdown snapshot).
func fetchVersion(ctx context.Context, cfg Config) (int, *coord.StatusReport, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/v1/status", nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("vload: status probe: HTTP %d (%v)", resp.StatusCode, err)
	}
	if cfg.Gateway {
		var tp tierProbe
		if err := json.Unmarshal(raw, &tp); err != nil {
			return 0, nil, err
		}
		return tp.Version, nil, nil
	}
	var st coord.StatusReport
	if err := json.Unmarshal(raw, &st); err != nil {
		return 0, nil, err
	}
	return st.Version, &st, nil
}

// waitTierHealthy blocks until the gateway reports every shard alive
// (launching a million virtual devices into a halted tier would only
// measure the halt gate).
func waitTierHealthy(ctx context.Context, cfg Config) (*tierProbe, error) {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/v1/status", nil)
		if err != nil {
			return nil, err
		}
		if resp, err := cfg.Client.Do(req); err == nil {
			raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				var tp tierProbe
				if json.Unmarshal(raw, &tp) == nil && tp.Tier.Healthy {
					return &tp, nil
				}
			}
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("vload: gave up waiting for tier health: %w", ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// sleepCtx sleeps for d unless the context ends first; it reports
// whether the run should continue.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
