package aggregator

import (
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"testing"

	"flint/internal/codec"
	"flint/internal/tensor"
)

// medianRef is the sort-based median definition: odd counts take the
// middle element, even counts average the two middles — the same two
// floats, added in the same order, as medianInPlace's partial selection.
func medianRef(col []float64) float64 {
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// TestCoordinateMedianMatchesSortReference: the quickselect-based
// coordinate median equals the sort-based definition exactly, for odd and
// even update counts, including duplicated values.
func TestCoordinateMedianMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 3, 4, 5, 8, 9, 16, 17} {
		const dim = 257
		base := randVec(rng, dim)
		got := base.Clone()
		ups := make([]Update, n)
		for i := range ups {
			d := randVec(rng, dim)
			for j := range d {
				if rng.Intn(4) == 0 {
					d[j] = float64(rng.Intn(3)) // duplicates and ties
				}
			}
			ups[i] = Update{ClientID: int64(i), Delta: d, Weight: float64(1 + rng.Intn(9))}
		}
		if err := (CoordinateMedian{}).Aggregate(got, ups); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		col := make([]float64, n)
		for j := 0; j < dim; j++ {
			for i := range ups {
				col[i] = ups[i].Delta[j]
			}
			if want := base[j] + medianRef(col); got[j] != want {
				t.Fatalf("n=%d coord %d: got %v want %v", n, j, got[j], want)
			}
		}
	}
}

// TestRobustWireMatchesDense: both robust reducers over wire-form
// payloads (per-window CopyRange gather) equal the decode-then-reduce
// dense path exactly, for every scheme and awkward dimensions.
func TestRobustWireMatchesDense(t *testing.T) {
	schemes := map[string]codec.Scheme{
		"raw64": codec.RawF64,
		"f32":   codec.F32,
		"q8":    codec.Q8,
		"topk":  codec.TopK(0),
	}
	strategies := map[string]Strategy{
		"trimmed-mean":      TrimmedMean{TrimFrac: 0.2},
		"coordinate-median": CoordinateMedian{},
	}
	for sname, strat := range strategies {
		for kname, scheme := range schemes {
			for _, dim := range []int{1, 255, 257, 1519} {
				fused, ref := fusedAndReference(t, strat, dim,
					[]codec.Scheme{scheme, scheme, scheme, scheme, scheme},
					int64(dim)*17+int64(len(sname)+len(kname)))
				for i := range fused {
					if fused[i] != ref[i] {
						t.Fatalf("%s/%s dim %d: wire[%d]=%v dense=%v", sname, kname, dim, i, fused[i], ref[i])
					}
				}
			}
		}
	}
}

// TestRobustParallelMatchesSequential: the sharded robust reducers are
// bit-identical to their sequential pass over a mixed dense + wire update
// set, for odd and even populations (even exercises the two-middles
// average) and across schemes.
func TestRobustParallelMatchesSequential(t *testing.T) {
	const dim = 70_000 // dim*n > parallelMinWork
	rng := rand.New(rand.NewSource(33))
	for _, strat := range []Strategy{TrimmedMean{TrimFrac: 0.25}, CoordinateMedian{}} {
		for _, n := range []int{15, 16} {
			base := randVec(rng, dim)
			seq := base.Clone()
			par := base.Clone()
			schemes := []codec.Scheme{codec.RawF64, codec.F32, codec.Q8, codec.TopK(0)}
			ups := make([]Update, n)
			for i := range ups {
				v := randVec(rng, dim)
				if i%3 == 0 {
					ups[i] = Update{ClientID: int64(i), Delta: v}
				} else {
					ups[i] = Update{ClientID: int64(i), Payload: encodePayload(t, v, schemes[i%len(schemes)])}
				}
			}
			if err := strat.Aggregate(seq, ups); err != nil {
				t.Fatalf("%s n=%d sequential: %v", strat.Name(), n, err)
			}
			if err := (Parallel{Inner: strat, Workers: 5, Screen: true}).Aggregate(par, ups); err != nil {
				t.Fatalf("%s n=%d parallel: %v", strat.Name(), n, err)
			}
			for i := range seq {
				if seq[i] != par[i] {
					t.Fatalf("%s n=%d: par[%d]=%v seq=%v", strat.Name(), n, i, par[i], seq[i])
				}
			}
		}
	}
}

// TestCoordinateMedianErrors: the robust reducers report empty batches and
// dimension mismatches before mutating the global vector.
func TestCoordinateMedianErrors(t *testing.T) {
	if err := (CoordinateMedian{}).Aggregate(tensor.NewVector(8), nil); err == nil || !strings.Contains(err.Error(), "no updates") {
		t.Fatalf("empty batch error = %v", err)
	}
	global := tensor.NewVector(8)
	ups := []Update{{ClientID: 1, Delta: tensor.NewVector(7)}}
	if err := (CoordinateMedian{}).Aggregate(global, ups); err == nil {
		t.Fatal("dim mismatch not reported")
	}
	for i, x := range global {
		if x != 0 {
			t.Fatalf("global[%d] = %g mutated by failed aggregation", i, x)
		}
	}
}

// screenUpdate builds a dense update whose L2 norm is exactly 2x (four
// coordinates of magnitude x).
func screenUpdate(id int64, x float64) Update {
	return Update{ClientID: id, Delta: constVec(4, x)}
}

func screenIDs(ups []Update) []int64 {
	ids := make([]int64, len(ups))
	for i, u := range ups {
		ids[i] = u.ClientID
	}
	return ids
}

func TestNormScreenMaxNorm(t *testing.T) {
	ups := []Update{screenUpdate(1, 1), screenUpdate(2, 100), screenUpdate(3, 1.5)}
	kept, rejected := NormScreen{MaxNorm: 10}.Apply(ups)
	if got := screenIDs(kept); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("kept %v", got)
	}
	if got := screenIDs(rejected); len(got) != 1 || got[0] != 2 {
		t.Fatalf("rejected %v", got)
	}
}

func TestNormScreenMedianFactor(t *testing.T) {
	// Norms 2, 4, 6, 200: median (4+6)/2 = 5, limit 4×5 = 20 → only the
	// boosted update is rejected, and input order is preserved.
	ups := []Update{screenUpdate(1, 1), screenUpdate(2, 100), screenUpdate(3, 2), screenUpdate(4, 3)}
	kept, rejected := NormScreen{MedianFactor: 4}.Apply(ups)
	if got := screenIDs(kept); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("kept %v", got)
	}
	if got := screenIDs(rejected); len(got) != 1 || got[0] != 2 {
		t.Fatalf("rejected %v", got)
	}
	// Both knobs: the tighter limit wins (max norm 5 also drops id 4).
	kept, rejected = NormScreen{MaxNorm: 5, MedianFactor: 4}.Apply(ups)
	if len(kept) != 2 || len(rejected) != 2 {
		t.Fatalf("combined limits kept %v rejected %v", screenIDs(kept), screenIDs(rejected))
	}
}

func TestNormScreenNaN(t *testing.T) {
	bad := screenUpdate(2, 1)
	bad.Delta[1] = math.NaN()
	ups := []Update{screenUpdate(1, 1), bad, screenUpdate(3, 1)}
	kept, rejected := NormScreen{MaxNorm: 10}.Apply(ups)
	if len(kept) != 2 || len(rejected) != 1 || rejected[0].ClientID != 2 {
		t.Fatalf("NaN update not screened: kept %v rejected %v", screenIDs(kept), screenIDs(rejected))
	}
}

func TestNormScreenNoDropAliasesInput(t *testing.T) {
	ups := []Update{screenUpdate(1, 1), screenUpdate(2, 1)}
	kept, rejected := NormScreen{MaxNorm: 10}.Apply(ups)
	if rejected != nil {
		t.Fatalf("clean set rejected %v", screenIDs(rejected))
	}
	if len(kept) != len(ups) || &kept[0] != &ups[0] {
		t.Fatal("no-drop screen did not return the input slice")
	}
	// Disabled screen is the identity even on an outlier-laden set.
	ups = append(ups, screenUpdate(3, 1e300))
	if kept, rejected := (NormScreen{}).Apply(ups); len(kept) != 3 || rejected != nil {
		t.Fatal("disabled screen dropped updates")
	}
}

func TestNormScreenAllRejected(t *testing.T) {
	ups := []Update{screenUpdate(1, 50), screenUpdate(2, 60)}
	kept, rejected := NormScreen{MaxNorm: 1}.Apply(ups)
	if len(kept) != 0 || len(rejected) != 2 {
		t.Fatalf("kept %v rejected %v", screenIDs(kept), screenIDs(rejected))
	}
}

// TestNormScreenWireForm: payload-backed updates are screened via
// Payload.Norm2 (wire-byte scan) with the same verdicts as their dense
// decodes — a boosted q8 update is caught without materialization.
func TestNormScreenWireForm(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const dim = 600
	honest := randVec(rng, dim)
	boosted := honest.Clone()
	boosted.Scale(-50) // sign-flip at scale 50 inflates the norm 50×
	ups := []Update{
		{ClientID: 1, Payload: encodePayload(t, honest, codec.Q8)},
		{ClientID: 2, Payload: encodePayload(t, boosted, codec.Q8)},
		{ClientID: 3, Payload: encodePayload(t, honest, codec.RawF64)},
	}
	kept, rejected := NormScreen{MedianFactor: 4}.Apply(ups)
	if len(kept) != 2 || len(rejected) != 1 || rejected[0].ClientID != 2 {
		t.Fatalf("boosted wire update not screened: kept %v rejected %v", screenIDs(kept), screenIDs(rejected))
	}
}

func TestNormScreenValidate(t *testing.T) {
	if err := (NormScreen{MaxNorm: -1}).Validate(); err == nil {
		t.Fatal("negative max norm accepted")
	}
	if err := (NormScreen{MedianFactor: 0.5}).Validate(); err == nil {
		t.Fatal("median factor below 1 accepted")
	}
	for _, s := range []NormScreen{{}, {MaxNorm: 3}, {MedianFactor: 1}, {MaxNorm: 1, MedianFactor: 8}} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
	}
	if (NormScreen{}).Enabled() {
		t.Fatal("zero screen reports enabled")
	}
}

// TestTrimmedMeanParallelSteadyStateAllocs pins the satellite fix: the
// sharded trimmed-mean over wire payloads gathers per-worker windows into
// pooled scratch instead of materializing every payload, so a steady-state
// commit allocates far less than even one decoded update (the old path
// allocated n of them). GC is disabled so the pool can't be emptied
// mid-measurement.
func TestTrimmedMeanParallelSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation accounting")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const dim = 70_000
	const n = 16
	rng := rand.New(rand.NewSource(51))
	ups := make([]Update, n)
	for i := range ups {
		ups[i] = Update{ClientID: int64(i), Payload: encodePayload(t, randVec(rng, dim), codec.Q8)}
	}
	global := tensor.NewVector(dim)
	p := Parallel{Inner: TrimmedMean{TrimFrac: 0.2}, Workers: 4, Screen: true}
	for i := 0; i < 3; i++ { // warm the scratch pool
		if err := p.Aggregate(global, ups); err != nil {
			t.Fatal(err)
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const runs = 20
	for i := 0; i < runs; i++ {
		if err := p.Aggregate(global, ups); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	perOp := float64(after.TotalAlloc-before.TotalAlloc) / runs
	if limit := float64(dim * 8); perOp > limit {
		t.Fatalf("steady-state trimmed-mean commit allocates %.0f B/op (limit %.0f); payloads being materialized again?", perOp, limit)
	}
}
