package aggregator

import (
	"fmt"
	"math"
	"math/rand"

	"flint/internal/tensor"
)

// DPConfig parameterizes FL with differential privacy (§3.6): each client
// update is clipped to ClipNorm and Gaussian noise with standard deviation
// NoiseMultiplier·ClipNorm/n is added to the average of n updates — the
// central-DP Gaussian mechanism on the aggregate.
type DPConfig struct {
	ClipNorm        float64
	NoiseMultiplier float64
	Seed            int64
}

// Validate reports configuration errors.
func (c DPConfig) Validate() error {
	if c.ClipNorm <= 0 {
		return fmt.Errorf("aggregator: DP clip norm must be positive, got %v", c.ClipNorm)
	}
	if c.NoiseMultiplier < 0 {
		return fmt.Errorf("aggregator: DP noise multiplier must be >= 0, got %v", c.NoiseMultiplier)
	}
	return nil
}

// DP wraps a strategy with the clip-and-noise mechanism.
type DP struct {
	Config DPConfig
	Inner  Strategy
	rng    *rand.Rand
}

// NewDP builds the wrapper with its own seeded noise source.
func NewDP(cfg DPConfig, inner Strategy) (*DP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		return nil, fmt.Errorf("aggregator: DP needs an inner strategy")
	}
	return &DP{Config: cfg, Inner: inner, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Name implements Strategy.
func (d *DP) Name() string { return fmt.Sprintf("dp(%s)", d.Inner.Name()) }

// Aggregate implements Strategy: clips every update, delegates, then
// perturbs the aggregate with calibrated Gaussian noise.
func (d *DP) Aggregate(global tensor.Vector, updates []Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("aggregator: DP with no updates")
	}
	clipped := make([]Update, len(updates))
	for i, u := range updates {
		c := u
		c.Delta = u.Delta.Clone()
		c.Delta.Clip(d.Config.ClipNorm)
		clipped[i] = c
	}
	if err := d.Inner.Aggregate(global, clipped); err != nil {
		return err
	}
	std := d.Config.NoiseMultiplier * d.Config.ClipNorm / float64(len(updates))
	if std > 0 {
		for i := range global {
			global[i] += d.rng.NormFloat64() * std
		}
	}
	return nil
}

// EpsilonApprox returns a coarse (ε, δ)-DP accounting for `rounds`
// compositions of the Gaussian mechanism via the strong-composition-style
// bound ε ≈ sqrt(2·rounds·ln(1/δ))/σ, usable for the decision workflow's
// privacy-budget gate. It is an engineering estimate, not a tight RDP
// account.
func (c DPConfig) EpsilonApprox(rounds int, delta float64) (float64, error) {
	if rounds <= 0 {
		return 0, fmt.Errorf("aggregator: rounds must be positive, got %d", rounds)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("aggregator: delta %v outside (0,1)", delta)
	}
	if c.NoiseMultiplier == 0 {
		return math.Inf(1), nil
	}
	return math.Sqrt(2*float64(rounds)*math.Log(1/delta)) / c.NoiseMultiplier, nil
}

// SecAgg simulates TEE-backed secure aggregation (§3.6): clients mask their
// updates with pairwise-cancelling additive noise and the enclave sees only
// the masked sum. Our simulation verifies the correctness invariant — the
// unmasked aggregate equals the plain sum — and accounts for the enclave's
// ingest bandwidth, the quantity §3.5 projects (2.68 MB/s for Task C).
type SecAgg struct {
	// MaskScale is the magnitude of the pairwise masks (statistically
	// irrelevant after cancellation; non-zero to make leaks detectable).
	MaskScale float64
	Seed      int64
}

// MaskedSum computes the sum of deltas via pairwise masking: each ordered
// client pair (i<j) shares a mask vector m_ij derived from their ids; i adds
// it, j subtracts it. The enclave's view is each client's masked vector; the
// sum telescopes to the true total.
func (s SecAgg) MaskedSum(updates []Update, dim int) (tensor.Vector, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("aggregator: secagg with no updates")
	}
	scale := s.MaskScale
	if scale <= 0 {
		scale = 1
	}
	masked := make([]tensor.Vector, len(updates))
	for i, u := range updates {
		if len(u.Delta) != dim {
			return nil, fmt.Errorf("aggregator: secagg update %d has %d params, want %d", i, len(u.Delta), dim)
		}
		masked[i] = u.Delta.Clone()
	}
	for i := 0; i < len(updates); i++ {
		for j := i + 1; j < len(updates); j++ {
			pairRng := rand.New(rand.NewSource(s.Seed ^ (updates[i].ClientID*1_000_003 + updates[j].ClientID)))
			for k := 0; k < dim; k++ {
				m := pairRng.NormFloat64() * scale
				masked[i][k] += m
				masked[j][k] -= m
			}
		}
	}
	total := tensor.NewVector(dim)
	for _, v := range masked {
		total.Add(v)
	}
	return total, nil
}

// TEEThroughput describes the enclave-side aggregation load: updates per
// second and ingest bandwidth, the §3.5 infrastructure projection.
type TEEThroughput struct {
	UpdatesPerSec float64
	BytesPerSec   float64
}

// Throughput computes the enclave load for a task aggregating `tasks`
// updates of `updateBytes` over `seconds` of wall time.
func Throughput(tasks int, updateBytes int, seconds float64) (TEEThroughput, error) {
	if seconds <= 0 {
		return TEEThroughput{}, fmt.Errorf("aggregator: throughput over non-positive duration %v", seconds)
	}
	ups := float64(tasks) / seconds
	return TEEThroughput{UpdatesPerSec: ups, BytesPerSec: ups * float64(updateBytes)}, nil
}
