package aggregator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flint/internal/tensor"
)

// TestFedAvgConvexCombination: the FedAvg step is a convex combination of
// the deltas, so every coordinate of the applied update must lie within the
// per-coordinate [min, max] of the client deltas.
func TestFedAvgConvexCombination(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		dim := 1 + rng.Intn(8)
		n := 1 + rng.Intn(6)
		updates := make([]Update, n)
		for i := range updates {
			d := tensor.NewVector(dim)
			for j := range d {
				d[j] = rng.NormFloat64() * 3
			}
			updates[i] = Update{ClientID: int64(i), Delta: d, Weight: rng.Float64() + 0.1}
		}
		global := tensor.NewVector(dim)
		if err := (FedAvg{}).Aggregate(global, updates); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < dim; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, u := range updates {
				if u.Delta[j] < lo {
					lo = u.Delta[j]
				}
				if u.Delta[j] > hi {
					hi = u.Delta[j]
				}
			}
			if global[j] < lo-1e-9 || global[j] > hi+1e-9 {
				t.Fatalf("coordinate %d: %v outside [%v, %v]", j, global[j], lo, hi)
			}
		}
	}
}

// TestFedBuffZeroAlphaEqualsUniformMean: with no discount and ServerLR 1,
// FedBuff reduces to the plain mean regardless of staleness values.
func TestFedBuffZeroAlphaEqualsUniformMean(t *testing.T) {
	f := func(vals []float64, staleSeed int64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 16 {
			vals = vals[:16]
		}
		rng := rand.New(rand.NewSource(staleSeed))
		updates := make([]Update, len(vals))
		var mean float64
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			v = math.Mod(v, 1e6)
			updates[i] = Update{ClientID: int64(i), Delta: tensor.Vector{v}, Staleness: rng.Intn(20)}
			mean += v
		}
		mean /= float64(len(vals))
		global := tensor.Vector{0}
		if err := (FedBuff{ServerLR: 1, Alpha: 0}).Aggregate(global, updates); err != nil {
			return false
		}
		return math.Abs(global[0]-mean) <= 1e-9*math.Max(1, math.Abs(mean))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTrimmedMeanBoundedByHonestRange: with at most k poisoned updates and
// trim fraction covering them, the trimmed mean stays within the honest
// updates' range.
func TestTrimmedMeanBoundedByHonestRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		honest := 8
		updates := make([]Update, 0, honest+2)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < honest; i++ {
			v := rng.NormFloat64()
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			updates = append(updates, Update{ClientID: int64(i), Delta: tensor.Vector{v}})
		}
		// Two extreme poisoned values on each side.
		updates = append(updates,
			Update{ClientID: 100, Delta: tensor.Vector{1e6}},
			Update{ClientID: 101, Delta: tensor.Vector{-1e6}})
		global := tensor.Vector{0}
		if err := (TrimmedMean{TrimFrac: 0.2}).Aggregate(global, updates); err != nil {
			t.Fatal(err)
		}
		if global[0] < lo-1e-9 || global[0] > hi+1e-9 {
			t.Fatalf("trimmed mean %v escaped honest range [%v, %v]", global[0], lo, hi)
		}
	}
}

// TestSecAggLinearity: masked sums compose additively across disjoint
// batches when the same client set is used (the mask telescoping holds per
// batch independently).
func TestSecAggLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 10
	mk := func(ids []int64) ([]Update, tensor.Vector) {
		ups := make([]Update, len(ids))
		sum := tensor.NewVector(dim)
		for i, id := range ids {
			d := tensor.NewVector(dim)
			for j := range d {
				d[j] = rng.NormFloat64()
			}
			sum.Add(d)
			ups[i] = Update{ClientID: id, Delta: d}
		}
		return ups, sum
	}
	sec := SecAgg{MaskScale: 5, Seed: 7}
	upsA, sumA := mk([]int64{1, 2, 3})
	upsB, sumB := mk([]int64{4, 5})
	mA, err := sec.MaskedSum(upsA, dim)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := sec.MaskedSum(upsB, dim)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < dim; j++ {
		if math.Abs(mA[j]+mB[j]-(sumA[j]+sumB[j])) > 1e-6 {
			t.Fatal("masked sums must compose additively")
		}
	}
}

// TestDPNoiseScalesInverselyWithBatch: averaging over more updates shrinks
// the injected noise per the central Gaussian mechanism.
func TestDPNoiseScalesInverselyWithBatch(t *testing.T) {
	noiseMag := func(n int) float64 {
		dp, err := NewDP(DPConfig{ClipNorm: 1e-9, NoiseMultiplier: 1, Seed: 5}, FedAvg{})
		if err != nil {
			t.Fatal(err)
		}
		// Zero deltas isolate the noise (clip norm is negligible).
		updates := make([]Update, n)
		for i := range updates {
			updates[i] = Update{ClientID: int64(i), Delta: tensor.NewVector(1000)}
		}
		global := tensor.NewVector(1000)
		var total float64
		for rep := 0; rep < 5; rep++ {
			global.Zero()
			if err := dp.Aggregate(global, updates); err != nil {
				t.Fatal(err)
			}
			total += global.Norm2()
		}
		return total / 5
	}
	small := noiseMag(2)
	big := noiseMag(64)
	if big >= small {
		t.Fatalf("noise must shrink with batch size: n=2 %v, n=64 %v", small, big)
	}
}
