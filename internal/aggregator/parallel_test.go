package aggregator

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"flint/internal/tensor"
)

// parallelUpdates builds a batch big enough (dim × n ≥ parallelMinWork)
// that Parallel actually shards instead of delegating.
func parallelUpdates(n, dim int, seed int64) []Update {
	rng := rand.New(rand.NewSource(seed))
	ups := make([]Update, n)
	for i := range ups {
		d := tensor.NewVector(dim)
		for j := range d {
			d[j] = rng.NormFloat64()
		}
		ups[i] = Update{
			ClientID:  int64(i),
			Delta:     d,
			Weight:    float64(1 + rng.Intn(200)),
			Staleness: rng.Intn(6),
		}
	}
	return ups
}

// maxAbsDiff returns the largest element-wise |a-b|.
func maxAbsDiff(a, b tensor.Vector) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestParallelMatchesSequentialFedAvg(t *testing.T) {
	const dim, n = 10_000, 128
	ups := parallelUpdates(n, dim, 3)
	seq := tensor.NewVector(dim)
	par := seq.Clone()
	if err := (FedAvg{}).Aggregate(seq, ups); err != nil {
		t.Fatal(err)
	}
	if err := (Parallel{Inner: FedAvg{}, Workers: 7}).Aggregate(par, ups); err != nil {
		t.Fatal(err)
	}
	// Coordinate sharding replays the identical FP operation sequence per
	// coordinate, so the match is exact — far inside the 1e-12 contract.
	if d := maxAbsDiff(seq, par); d > 1e-12 {
		t.Fatalf("parallel FedAvg diverges from sequential by %g", d)
	}
}

func TestParallelMatchesSequentialFedBuff(t *testing.T) {
	const dim, n = 10_000, 128
	ups := parallelUpdates(n, dim, 5)
	f := FedBuff{ServerLR: 0.8, Alpha: 0.5}
	seq := tensor.NewVector(dim)
	par := seq.Clone()
	if err := f.Aggregate(seq, ups); err != nil {
		t.Fatal(err)
	}
	if err := (Parallel{Inner: f}).Aggregate(par, ups); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(seq, par); d > 1e-12 {
		t.Fatalf("parallel FedBuff diverges from sequential by %g", d)
	}
}

func TestParallelWorkerClampAndOddShards(t *testing.T) {
	// More workers than a small dim, with work still over the parallel
	// floor: worker count clamps and the trailing shard is short.
	const dim, n = 1_000, 1_100
	ups := parallelUpdates(n, dim, 9)
	seq := tensor.NewVector(dim)
	par := seq.Clone()
	if err := (FedAvg{}).Aggregate(seq, ups); err != nil {
		t.Fatal(err)
	}
	if err := (Parallel{Inner: FedAvg{}, Workers: 64}).Aggregate(par, ups); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(seq, par); d != 0 {
		t.Fatalf("clamped-worker FedAvg diverges by %g", d)
	}
}

func TestParallelSmallBatchDelegates(t *testing.T) {
	// Under the work floor the wrapper must behave exactly like the inner
	// strategy (it delegates wholesale).
	ups := parallelUpdates(4, 64, 11)
	seq := tensor.NewVector(64)
	par := seq.Clone()
	if err := (FedAvg{}).Aggregate(seq, ups); err != nil {
		t.Fatal(err)
	}
	if err := (Parallel{Inner: FedAvg{}}).Aggregate(par, ups); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(seq, par); d != 0 {
		t.Fatalf("small-batch delegate diverges by %g", d)
	}
}

func TestParallelErrorParity(t *testing.T) {
	const dim, n = 10_000, 128
	p := Parallel{Inner: FedAvg{}}

	// No updates: the inner strategy's error comes through verbatim.
	if err := p.Aggregate(tensor.NewVector(dim), nil); err == nil || !strings.Contains(err.Error(), "no updates") {
		t.Fatalf("empty batch error = %v", err)
	}

	// A dimension mismatch is caught by the shared up-front validation
	// with the same message the sequential pass reports, and the global
	// vector is untouched.
	ups := parallelUpdates(n, dim, 13)
	ups[50].Delta = tensor.NewVector(dim - 1)
	global := tensor.NewVector(dim)
	err := p.Aggregate(global, ups)
	seqErr := (FedAvg{}).Aggregate(tensor.NewVector(dim), ups)
	if err == nil || seqErr == nil || err.Error() != seqErr.Error() {
		t.Fatalf("dim mismatch: parallel %v vs sequential %v", err, seqErr)
	}
	for i, x := range global {
		if x != 0 {
			t.Fatalf("global[%d] = %g mutated by failed aggregation", i, x)
		}
	}

	// FedBuff's zero-total-weight failure (staleness discount underflow)
	// is detected by every worker before mutation.
	f := FedBuff{ServerLR: 1, Alpha: 4000}
	buff := parallelUpdates(n, dim, 17)
	for i := range buff {
		buff[i].Staleness = 3 // (1+3)^4000 overflows → discount 0
	}
	err = (Parallel{Inner: f}).Aggregate(tensor.NewVector(dim), buff)
	seqErr = f.Aggregate(tensor.NewVector(dim), buff)
	if err == nil || seqErr == nil || err.Error() != seqErr.Error() {
		t.Fatalf("zero weight: parallel %v vs sequential %v", err, seqErr)
	}
}

func TestParallelTrimmedMeanSmallBatchDelegates(t *testing.T) {
	// Under the work floor the wrapper hands the whole batch to the
	// trimmed-mean kernel unchanged, and the delegate is exact.
	ups := parallelUpdates(20, 64, 19)
	seq := tensor.NewVector(64)
	par := seq.Clone()
	tm := TrimmedMean{TrimFrac: 0.1}
	if err := tm.Aggregate(seq, ups); err != nil {
		t.Fatal(err)
	}
	if err := (Parallel{Inner: tm}).Aggregate(par, ups); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(seq, par); d != 0 {
		t.Fatalf("non-separable delegate diverges by %g", d)
	}
	if got := (Parallel{Inner: tm}).Name(); got != "parallel(trimmed-mean)" {
		t.Fatalf("Name() = %q", got)
	}
}
