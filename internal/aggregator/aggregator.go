// Package aggregator implements the server-side update aggregation of the
// FL platform: synchronous FedAvg (McMahan et al., 2017), asynchronous
// FedBuff with staleness weighting (Nguyen et al., 2022), the privacy
// enhancing technologies of §3.6 (update clipping + Gaussian noise for
// FL-DP, additive-masking secure aggregation inside a simulated TEE), and
// the robust-aggregation defenses evaluated against poisoning.
package aggregator

import (
	"fmt"
	"math"

	"flint/internal/codec"
	"flint/internal/tensor"
)

// Update is one client's contribution: the delta between its locally
// trained parameters and the global snapshot it started from.
type Update struct {
	ClientID int64
	// Delta is local_params - base_params.
	Delta tensor.Vector
	// Payload optionally carries the contribution still in wire form (a
	// validated codec.Payload view) instead of a decoded Delta: FedAvg
	// and FedBuff's range kernels decode straight out of it, so the
	// ingest→commit path never materializes a full-dim vector per
	// update. When Delta is non-nil it wins and Payload is ignored.
	// The robust column reducers (TrimmedMean, CoordinateMedian) decode
	// per-worker windows via pooled scratch instead; strategies without
	// any fused path (NormBound) call Materialize first, and the
	// simulation-side wrappers (DP, SecAgg, poisoning) require a dense
	// Delta.
	Payload *codec.Payload
	// Weight is the aggregation weight, conventionally the client's
	// example count |Dk|.
	Weight float64
	// Staleness counts server aggregations that happened between the
	// client's dispatch and its arrival (0 in synchronous mode).
	Staleness int
}

// dim is the update's declared element count, whichever form it carries.
func (u Update) dim() int {
	if u.Delta != nil {
		return len(u.Delta)
	}
	if u.Payload != nil {
		return u.Payload.Dim()
	}
	return 0
}

// Materialize returns an update set in which every payload-backed entry
// has been decoded into a dense Delta — the fallback for strategies
// without fused payload kernels. The input slice is never mutated; when
// no entry is payload-backed it is returned as-is, allocation-free. The
// materialized copies do not release the payloads (the ingest pipeline
// owns that lifecycle).
func Materialize(updates []Update) ([]Update, error) {
	out := updates
	for i, u := range updates {
		if u.Delta != nil || u.Payload == nil {
			continue
		}
		if &out[0] == &updates[0] {
			out = make([]Update, len(updates))
			copy(out, updates)
		}
		v, err := u.Payload.Materialize()
		if err != nil {
			return nil, fmt.Errorf("aggregator: materialize update from client %d: %w", u.ClientID, err)
		}
		out[i].Delta = v
	}
	return out, nil
}

// Strategy folds a batch of updates into the global parameter vector.
type Strategy interface {
	Name() string
	Aggregate(global tensor.Vector, updates []Update) error
}

// weightOf returns an update's effective aggregation weight (a missing or
// non-positive weight counts as 1).
func weightOf(u Update) float64 {
	if u.Weight <= 0 {
		return 1
	}
	return u.Weight
}

// validateDims rejects updates whose delta (dense or wire-form) does not
// match the global dimension, with the error every strategy reports for
// that case.
func validateDims(global tensor.Vector, updates []Update) error {
	for _, u := range updates {
		if u.dim() != len(global) {
			return fmt.Errorf("aggregator: update from client %d has %d params, want %d", u.ClientID, u.dim(), len(global))
		}
	}
	return nil
}

// FedAvg is weighted federated averaging: global += Σ wᵢΔᵢ / Σ wᵢ.
type FedAvg struct{}

// Name implements Strategy.
func (FedAvg) Name() string { return "fedavg" }

// Aggregate implements Strategy.
func (f FedAvg) Aggregate(global tensor.Vector, updates []Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("aggregator: fedavg with no updates")
	}
	if err := validateDims(global, updates); err != nil {
		return err
	}
	return f.aggregateRange(global, updates, 0, len(global))
}

// aggregateRange implements rangeStrategy: it folds the updates into
// global[lo:hi] only, in the same per-coordinate order as the sequential
// pass, so sharding the coordinate space across workers reproduces the
// sequential result bit for bit. Payload-backed updates take the fused
// kernel — decode, weight, and reduce in one pass over the wire bytes —
// which computes each decoded value and each accumulation with the exact
// expressions the materialize-then-AddScaled path uses, preserving that
// bit-identity across mixed dense/wire update sets. Callers have
// validated dimensions.
func (FedAvg) aggregateRange(global tensor.Vector, updates []Update, lo, hi int) error {
	var totalW float64
	for _, u := range updates {
		totalW += weightOf(u)
	}
	g := global[lo:hi]
	for _, u := range updates {
		addScaledRange(g, weightOf(u)/totalW, u, lo, hi)
	}
	return nil
}

// fusedPayloads marks FedAvg's range kernel as reading wire payloads
// directly (see payloadKernel).
func (FedAvg) fusedPayloads() {}

// addScaledRange applies one update's [lo:hi) window to g (= global[lo:hi])
// with weight alpha, dense or fused.
func addScaledRange(g tensor.Vector, alpha float64, u Update, lo, hi int) {
	if u.Delta != nil {
		g.AddScaled(alpha, u.Delta[lo:hi])
		return
	}
	u.Payload.AddScaledRange(g, alpha, lo, hi)
}

// FedBuff applies a buffered asynchronous aggregation with polynomial
// staleness discounting: global += ServerLR · Σ s(τᵢ)·Δᵢ / K, where
// s(τ) = 1/(1+τ)^Alpha.
type FedBuff struct {
	// ServerLR is the server-side step size applied to the averaged
	// buffer (1.0 recovers plain averaging).
	ServerLR float64
	// Alpha is the staleness-discount exponent; 0 disables discounting.
	Alpha float64
}

// Name implements Strategy.
func (f FedBuff) Name() string { return "fedbuff" }

// StalenessWeight returns the discount applied to an update of staleness τ.
func (f FedBuff) StalenessWeight(tau int) float64 {
	if tau < 0 {
		tau = 0
	}
	return 1 / math.Pow(1+float64(tau), f.Alpha)
}

// Aggregate implements Strategy: a data-weighted, staleness-discounted mean
// of the buffer, global += ServerLR · Σ wᵢsᵢΔᵢ / Σ wᵢsᵢ, so fresh buffers
// recover FedAvg's weighted-averaging semantics.
func (f FedBuff) Aggregate(global tensor.Vector, updates []Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("aggregator: fedbuff with no updates")
	}
	if err := validateDims(global, updates); err != nil {
		return err
	}
	return f.aggregateRange(global, updates, 0, len(global))
}

// aggregateRange implements rangeStrategy; see FedAvg.aggregateRange for
// the sharding contract. Each worker recomputes the O(K) scalar weights —
// negligible next to its O(K·dim/P) vector work.
func (f FedBuff) aggregateRange(global tensor.Vector, updates []Update, lo, hi int) error {
	lr := f.ServerLR
	if lr <= 0 {
		lr = 1
	}
	var totalW float64
	for _, u := range updates {
		totalW += weightOf(u) * f.StalenessWeight(u.Staleness)
	}
	if totalW == 0 {
		return fmt.Errorf("aggregator: fedbuff with zero total weight")
	}
	g := global[lo:hi]
	for _, u := range updates {
		addScaledRange(g, lr*weightOf(u)*f.StalenessWeight(u.Staleness)/totalW, u, lo, hi)
	}
	return nil
}

// fusedPayloads marks FedBuff's range kernel as reading wire payloads
// directly (see payloadKernel).
func (FedBuff) fusedPayloads() {}

// TrimmedMean is a robust strategy: coordinate-wise mean after discarding
// the TrimFrac highest and lowest values per coordinate, a standard defense
// against update poisoning (§3.6, §4.2).
type TrimmedMean struct {
	// TrimFrac in [0, 0.5): fraction trimmed from each side.
	TrimFrac float64
}

// Name implements Strategy.
func (t TrimmedMean) Name() string { return "trimmed-mean" }

// Aggregate implements Strategy.
func (t TrimmedMean) Aggregate(global tensor.Vector, updates []Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("aggregator: trimmed mean with no updates")
	}
	if err := validateDims(global, updates); err != nil {
		return err
	}
	return t.aggregateRange(global, updates, 0, len(global))
}

// aggregateRange implements rangeStrategy for the robust reducer, making
// trimmed-mean a first-class live-path range kernel alongside FedAvg and
// FedBuff. Payload-backed updates are NOT materialized up front: each
// call decodes only its own [lo:hi) window, once per update, into the
// worker's pooled cache-line-aligned column scratch (gatherRows) — so a
// Parallel run touches each wire byte exactly once and a steady-state
// commit allocates nothing. Per coordinate the column gather reads the
// dense rows, partitions out the k smallest and k largest with partial
// selection (O(n) expected), and folds the mean of the middle in. The
// selection's pivot rule is deterministic, so every worker — and every
// re-run — sums the middle values in the same order: parallel stays
// bit-identical to sequential. Scalar validation runs identically in
// every worker before any of them mutates global.
func (t TrimmedMean) aggregateRange(global tensor.Vector, updates []Update, lo, hi int) error {
	if t.TrimFrac < 0 || t.TrimFrac >= 0.5 {
		return fmt.Errorf("aggregator: trim fraction %v outside [0, 0.5)", t.TrimFrac)
	}
	k := int(t.TrimFrac * float64(len(updates)))
	s := robustPool.Get().(*robustScratch)
	defer s.release()
	s.gatherRows(updates, lo, hi)
	vals, rows := s.vals, s.rows
	for j := lo; j < hi; j++ {
		for i, row := range rows {
			vals[i] = row[j-lo]
		}
		selectMiddle(vals, k)
		var sum float64
		for _, v := range vals[k : len(vals)-k] {
			sum += v
		}
		if n := len(vals) - 2*k; n > 0 {
			global[j] += sum / float64(n)
		}
	}
	return nil
}

// fusedPayloads marks the range kernel as reading wire-form updates
// directly (via the per-worker window gather in gatherRows), so Parallel
// no longer materializes every payload for it.
func (TrimmedMean) fusedPayloads() {}

// selectMiddle partitions vals so its k smallest elements occupy
// vals[:k] and its k largest vals[len-k:], leaving the middle in
// between — everything a trimmed sum needs, without fully sorting.
func selectMiddle(vals []float64, k int) {
	if k <= 0 || 2*k >= len(vals) {
		return
	}
	nthElement(vals, k-1)
	nthElement(vals[k:], len(vals)-2*k-1)
}

// nthElement partially sorts a so that a[n] holds its n-th smallest
// element with everything before it no larger and everything after no
// smaller — an iterative quickselect with a deterministic median-of-three
// pivot (reproducible sums) and an insertion-sort base case. The interval
// shrinks strictly every iteration, so it terminates even on pathological
// (e.g. NaN-laced) comparisons.
func nthElement(a []float64, n int) {
	lo, hi := 0, len(a)-1
	for hi > lo {
		if hi-lo < 12 {
			insertSort(a[lo : hi+1])
			return
		}
		// Median-of-three of (lo, mid, hi), parked at hi-1 as the pivot.
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		a[mid], a[hi-1] = a[hi-1], a[mid]
		pivot := a[hi-1]
		i := lo
		for j := lo; j < hi-1; j++ {
			if a[j] < pivot {
				a[i], a[j] = a[j], a[i]
				i++
			}
		}
		a[i], a[hi-1] = a[hi-1], a[i]
		switch {
		case n == i:
			return
		case n < i:
			hi = i - 1
		default:
			lo = i + 1
		}
	}
}

// insertSort sorts small slices in place without package sort's interface
// overhead — the quickselect base case in the per-coordinate loop.
func insertSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// NormBound wraps a strategy, clipping each update's L2 norm to Bound
// before delegating — the norm-bounding defense of Sun et al. (2019).
type NormBound struct {
	Bound float64
	Inner Strategy
}

// Name implements Strategy.
func (n NormBound) Name() string { return fmt.Sprintf("norm-bound(%s)", n.Inner.Name()) }

// Aggregate implements Strategy. Payload-backed updates are materialized
// first — clipping needs a mutable dense copy anyway.
func (n NormBound) Aggregate(global tensor.Vector, updates []Update) error {
	if n.Bound <= 0 {
		return fmt.Errorf("aggregator: norm bound must be positive, got %v", n.Bound)
	}
	if n.Inner == nil {
		return fmt.Errorf("aggregator: norm bound needs an inner strategy")
	}
	ups, err := Materialize(updates)
	if err != nil {
		return err
	}
	clipped := make([]Update, len(ups))
	for i, u := range ups {
		c := u
		c.Delta = u.Delta.Clone()
		c.Payload = nil
		c.Delta.Clip(n.Bound)
		clipped[i] = c
	}
	return n.Inner.Aggregate(global, clipped)
}
