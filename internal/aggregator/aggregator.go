// Package aggregator implements the server-side update aggregation of the
// FL platform: synchronous FedAvg (McMahan et al., 2017), asynchronous
// FedBuff with staleness weighting (Nguyen et al., 2022), the privacy
// enhancing technologies of §3.6 (update clipping + Gaussian noise for
// FL-DP, additive-masking secure aggregation inside a simulated TEE), and
// the robust-aggregation defenses evaluated against poisoning.
package aggregator

import (
	"fmt"
	"math"

	"flint/internal/tensor"
)

// Update is one client's contribution: the delta between its locally
// trained parameters and the global snapshot it started from.
type Update struct {
	ClientID int64
	// Delta is local_params - base_params.
	Delta tensor.Vector
	// Weight is the aggregation weight, conventionally the client's
	// example count |Dk|.
	Weight float64
	// Staleness counts server aggregations that happened between the
	// client's dispatch and its arrival (0 in synchronous mode).
	Staleness int
}

// Strategy folds a batch of updates into the global parameter vector.
type Strategy interface {
	Name() string
	Aggregate(global tensor.Vector, updates []Update) error
}

// weightOf returns an update's effective aggregation weight (a missing or
// non-positive weight counts as 1).
func weightOf(u Update) float64 {
	if u.Weight <= 0 {
		return 1
	}
	return u.Weight
}

// validateDims rejects updates whose delta does not match the global
// dimension, with the error every strategy reports for that case.
func validateDims(global tensor.Vector, updates []Update) error {
	for _, u := range updates {
		if len(u.Delta) != len(global) {
			return fmt.Errorf("aggregator: update from client %d has %d params, want %d", u.ClientID, len(u.Delta), len(global))
		}
	}
	return nil
}

// FedAvg is weighted federated averaging: global += Σ wᵢΔᵢ / Σ wᵢ.
type FedAvg struct{}

// Name implements Strategy.
func (FedAvg) Name() string { return "fedavg" }

// Aggregate implements Strategy.
func (f FedAvg) Aggregate(global tensor.Vector, updates []Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("aggregator: fedavg with no updates")
	}
	if err := validateDims(global, updates); err != nil {
		return err
	}
	return f.aggregateRange(global, updates, 0, len(global))
}

// aggregateRange implements rangeStrategy: it folds the updates into
// global[lo:hi] only, in the same per-coordinate order as the sequential
// pass, so sharding the coordinate space across workers reproduces the
// sequential result bit for bit. Callers have validated dimensions.
func (FedAvg) aggregateRange(global tensor.Vector, updates []Update, lo, hi int) error {
	var totalW float64
	for _, u := range updates {
		totalW += weightOf(u)
	}
	g := global[lo:hi]
	for _, u := range updates {
		g.AddScaled(weightOf(u)/totalW, u.Delta[lo:hi])
	}
	return nil
}

// FedBuff applies a buffered asynchronous aggregation with polynomial
// staleness discounting: global += ServerLR · Σ s(τᵢ)·Δᵢ / K, where
// s(τ) = 1/(1+τ)^Alpha.
type FedBuff struct {
	// ServerLR is the server-side step size applied to the averaged
	// buffer (1.0 recovers plain averaging).
	ServerLR float64
	// Alpha is the staleness-discount exponent; 0 disables discounting.
	Alpha float64
}

// Name implements Strategy.
func (f FedBuff) Name() string { return "fedbuff" }

// StalenessWeight returns the discount applied to an update of staleness τ.
func (f FedBuff) StalenessWeight(tau int) float64 {
	if tau < 0 {
		tau = 0
	}
	return 1 / math.Pow(1+float64(tau), f.Alpha)
}

// Aggregate implements Strategy: a data-weighted, staleness-discounted mean
// of the buffer, global += ServerLR · Σ wᵢsᵢΔᵢ / Σ wᵢsᵢ, so fresh buffers
// recover FedAvg's weighted-averaging semantics.
func (f FedBuff) Aggregate(global tensor.Vector, updates []Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("aggregator: fedbuff with no updates")
	}
	if err := validateDims(global, updates); err != nil {
		return err
	}
	return f.aggregateRange(global, updates, 0, len(global))
}

// aggregateRange implements rangeStrategy; see FedAvg.aggregateRange for
// the sharding contract. Each worker recomputes the O(K) scalar weights —
// negligible next to its O(K·dim/P) vector work.
func (f FedBuff) aggregateRange(global tensor.Vector, updates []Update, lo, hi int) error {
	lr := f.ServerLR
	if lr <= 0 {
		lr = 1
	}
	var totalW float64
	for _, u := range updates {
		totalW += weightOf(u) * f.StalenessWeight(u.Staleness)
	}
	if totalW == 0 {
		return fmt.Errorf("aggregator: fedbuff with zero total weight")
	}
	g := global[lo:hi]
	for _, u := range updates {
		g.AddScaled(lr*weightOf(u)*f.StalenessWeight(u.Staleness)/totalW, u.Delta[lo:hi])
	}
	return nil
}

// TrimmedMean is a robust strategy: coordinate-wise mean after discarding
// the TrimFrac highest and lowest values per coordinate, a standard defense
// against update poisoning (§3.6, §4.2).
type TrimmedMean struct {
	// TrimFrac in [0, 0.5): fraction trimmed from each side.
	TrimFrac float64
}

// Name implements Strategy.
func (t TrimmedMean) Name() string { return "trimmed-mean" }

// Aggregate implements Strategy.
func (t TrimmedMean) Aggregate(global tensor.Vector, updates []Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("aggregator: trimmed mean with no updates")
	}
	if t.TrimFrac < 0 || t.TrimFrac >= 0.5 {
		return fmt.Errorf("aggregator: trim fraction %v outside [0, 0.5)", t.TrimFrac)
	}
	for _, u := range updates {
		if len(u.Delta) != len(global) {
			return fmt.Errorf("aggregator: update from client %d has %d params, want %d", u.ClientID, len(u.Delta), len(global))
		}
	}
	k := int(t.TrimFrac * float64(len(updates)))
	vals := make([]float64, len(updates))
	for j := range global {
		for i, u := range updates {
			vals[i] = u.Delta[j]
		}
		insertSort(vals)
		var s float64
		n := 0
		for i := k; i < len(vals)-k; i++ {
			s += vals[i]
			n++
		}
		if n > 0 {
			global[j] += s / float64(n)
		}
	}
	return nil
}

// insertSort sorts small slices in place without package sort's interface
// overhead — this is the inner loop over every model coordinate.
func insertSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// NormBound wraps a strategy, clipping each update's L2 norm to Bound
// before delegating — the norm-bounding defense of Sun et al. (2019).
type NormBound struct {
	Bound float64
	Inner Strategy
}

// Name implements Strategy.
func (n NormBound) Name() string { return fmt.Sprintf("norm-bound(%s)", n.Inner.Name()) }

// Aggregate implements Strategy.
func (n NormBound) Aggregate(global tensor.Vector, updates []Update) error {
	if n.Bound <= 0 {
		return fmt.Errorf("aggregator: norm bound must be positive, got %v", n.Bound)
	}
	if n.Inner == nil {
		return fmt.Errorf("aggregator: norm bound needs an inner strategy")
	}
	clipped := make([]Update, len(updates))
	for i, u := range updates {
		c := u
		c.Delta = u.Delta.Clone()
		c.Delta.Clip(n.Bound)
		clipped[i] = c
	}
	return n.Inner.Aggregate(global, clipped)
}
