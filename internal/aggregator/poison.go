package aggregator

import (
	"fmt"
	"math/rand"

	"flint/internal/tensor"
)

// Attack mutates a subset of updates before aggregation, modeling the §4.1
// hub-and-spoke scenario where an SDK host application "controls a
// significant portion of the FL participants", and the §4.2 coordinated
// fake-message concern.
type Attack interface {
	Name() string
	// Poison returns the adversarial version of a compromised client's
	// update. The input delta must not be mutated.
	Poison(u Update, rng *rand.Rand) Update
}

// SignFlip inverts and scales compromised updates — a model-poisoning
// attack that pushes the global model away from the honest direction.
type SignFlip struct {
	// Scale amplifies the flipped update (boosting, typically > 1).
	Scale float64
}

// Name implements Attack.
func (SignFlip) Name() string { return "sign-flip" }

// Poison implements Attack.
func (a SignFlip) Poison(u Update, _ *rand.Rand) Update {
	s := a.Scale
	if s <= 0 {
		s = 1
	}
	out := u
	out.Delta = u.Delta.Clone()
	out.Delta.Scale(-s)
	return out
}

// RandomNoise replaces the update with large Gaussian noise, a crude
// availability attack on convergence.
type RandomNoise struct {
	Std float64
}

// Name implements Attack.
func (RandomNoise) Name() string { return "random-noise" }

// Poison implements Attack.
func (a RandomNoise) Poison(u Update, rng *rand.Rand) Update {
	std := a.Std
	if std <= 0 {
		std = 1
	}
	out := u
	out.Delta = tensor.NewVector(len(u.Delta))
	for i := range out.Delta {
		out.Delta[i] = rng.NormFloat64() * std
	}
	return out
}

// Adversary compromises a fixed fraction of clients and poisons their
// updates deterministically by client id.
type Adversary struct {
	Attack Attack
	// Fraction of the client population under adversary control.
	Fraction float64
	Seed     int64
}

// Validate reports configuration errors.
func (a Adversary) Validate() error {
	if a.Attack == nil {
		return fmt.Errorf("aggregator: adversary needs an attack")
	}
	if a.Fraction < 0 || a.Fraction > 1 {
		return fmt.Errorf("aggregator: adversary fraction %v outside [0,1]", a.Fraction)
	}
	return nil
}

// Compromised reports whether the adversary controls the client, stable
// per (seed, client).
func (a Adversary) Compromised(clientID int64) bool {
	if a.Fraction <= 0 {
		return false
	}
	rng := rand.New(rand.NewSource(a.Seed ^ (clientID * 7_919)))
	return rng.Float64() < a.Fraction
}

// Apply poisons the compromised subset of updates, returning the mutated
// batch and the number poisoned.
func (a Adversary) Apply(updates []Update) ([]Update, int, error) {
	if err := a.Validate(); err != nil {
		return nil, 0, err
	}
	out := make([]Update, len(updates))
	poisoned := 0
	for i, u := range updates {
		if a.Compromised(u.ClientID) {
			rng := rand.New(rand.NewSource(a.Seed ^ (u.ClientID * 104_729)))
			out[i] = a.Attack.Poison(u, rng)
			poisoned++
		} else {
			out[i] = u
		}
	}
	return out, poisoned, nil
}
