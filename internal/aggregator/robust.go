package aggregator

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"flint/internal/tensor"
)

// ErrAllScreened is the sentinel the commit pipeline maps to its
// round_aggregate_robust_error counter: the pre-reduce norm screen
// rejected every update in the round, leaving nothing to aggregate.
// Like ErrNonFinite it aborts the round with rollback semantics — the
// screen runs before any mutation, so the rollback is a no-op, but the
// round is dropped and its successor opens on the unchanged plane.
var ErrAllScreened = errors.New("aggregator: norm screen rejected every update")

// robustRowAlign is the row stride quantum of the column scratch, in
// float64s: 8 doubles = one 64-byte cache line, so each materialized
// window row starts on a line boundary and Parallel's workers — each
// holding their own scratch block — stream disjoint lines.
const robustRowAlign = 8

// robustScratch is one worker's column-gather workspace for the robust
// reducers: vals holds one coordinate's column across the update set;
// dense holds the materialized [lo:hi) windows of payload-backed updates
// (row-major, cache-line-aligned stride); rows indexes every update's
// dense window, aliasing Delta directly when the update already carries
// one. Pooled so a steady-state commit allocates nothing.
type robustScratch struct {
	vals  []float64
	dense []float64
	rows  [][]float64
}

var robustPool = sync.Pool{New: func() any { return new(robustScratch) }}

// gatherRows prepares rows[i] as a dense read-only view of
// updates[i][lo:hi). Delta-backed updates alias their vector (no copy);
// payload-backed ones decode their window exactly once per call — the
// per-worker materialization that replaced Parallel's whole-set
// Materialize for the robust reducers. CopyRange decodes with the exact
// expressions Materialize uses, so the column gather over wire-form
// updates stays bit-identical to a materialize-first pass.
func (s *robustScratch) gatherRows(updates []Update, lo, hi int) {
	n := len(updates)
	if cap(s.vals) < n {
		s.vals = make([]float64, n)
	}
	s.vals = s.vals[:n]
	if cap(s.rows) < n {
		s.rows = make([][]float64, n)
	}
	s.rows = s.rows[:n]
	stride := (hi - lo + robustRowAlign - 1) &^ (robustRowAlign - 1)
	wire := 0
	for _, u := range updates {
		if u.Delta == nil {
			wire++
		}
	}
	if cap(s.dense) < wire*stride {
		s.dense = make([]float64, wire*stride)
	}
	s.dense = s.dense[:wire*stride]
	next := 0
	for i, u := range updates {
		if u.Delta != nil {
			s.rows[i] = u.Delta[lo:hi]
			continue
		}
		row := s.dense[next*stride : next*stride+(hi-lo)]
		next++
		u.Payload.CopyRange(row, lo, hi)
		s.rows[i] = row
	}
}

func (s *robustScratch) release() {
	for i := range s.rows {
		s.rows[i] = nil // don't pin caller Deltas in the pool
	}
	robustPool.Put(s)
}

// CoordinateMedian is the Byzantine-robust coordinate-wise median
// (Yin et al., 2018): per coordinate, the median of the update column —
// immune to any minority of arbitrarily poisoned updates, at the cost of
// ignoring aggregation weights. Like TrimmedMean it is a range strategy
// with a wire-form column gather, so it runs as a first-class live-path
// reducer behind Parallel.
type CoordinateMedian struct{}

// Name implements Strategy.
func (CoordinateMedian) Name() string { return "coordinate-median" }

// Aggregate implements Strategy.
func (m CoordinateMedian) Aggregate(global tensor.Vector, updates []Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("aggregator: coordinate median with no updates")
	}
	if err := validateDims(global, updates); err != nil {
		return err
	}
	return m.aggregateRange(global, updates, 0, len(global))
}

// aggregateRange implements rangeStrategy; see TrimmedMean.aggregateRange
// for the gather-and-select contract. The median selection reuses the
// deterministic quickselect, so parallel stays bit-identical to
// sequential.
func (m CoordinateMedian) aggregateRange(global tensor.Vector, updates []Update, lo, hi int) error {
	s := robustPool.Get().(*robustScratch)
	defer s.release()
	s.gatherRows(updates, lo, hi)
	vals, rows := s.vals, s.rows
	for j := lo; j < hi; j++ {
		for i, row := range rows {
			vals[i] = row[j-lo]
		}
		global[j] += medianInPlace(vals)
	}
	return nil
}

// fusedPayloads marks the range kernel as reading wire-form updates
// directly (via the per-worker window gather), so Parallel never
// materializes the whole update set for it.
func (CoordinateMedian) fusedPayloads() {}

// medianInPlace returns the median of vals, reordering it. Odd lengths
// take the middle element; even lengths average the two middles. Both
// selections are deterministic (quickselect with a fixed pivot rule plus
// a max-scan of the lower partition), so every worker and every re-run
// produces the identical float.
func medianInPlace(vals []float64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	mid := n / 2
	nthElement(vals, mid)
	if n%2 == 1 {
		return vals[mid]
	}
	// After nthElement everything before mid is <= vals[mid]; the lower
	// middle is the max of that partition.
	lower := vals[0]
	for _, v := range vals[1:mid] {
		if v > lower {
			lower = v
		}
	}
	return (lower + vals[mid]) / 2
}

// NormScreen is the commit pipeline's pre-reduce rejection layer: updates
// whose L2 norm is an outlier — above an absolute cap, above a multiple
// of the round's median norm, or non-finite — never enter the reduce.
// Boosted poisoning attacks (§4.2: sign-flip at scale s inflates the
// update norm by s) are rejected here before they can claim trimmed-mean
// slots or drag a weighted average. Norms of wire-form updates come from
// Payload.Norm2, a single pass over the wire bytes with no
// materialization.
type NormScreen struct {
	// MaxNorm rejects updates with L2 norm above this absolute cap
	// (0 disables).
	MaxNorm float64
	// MedianFactor rejects updates with norm greater than MedianFactor ×
	// the update set's median norm (0 disables; must be >= 1 otherwise —
	// the median itself must always pass its own screen).
	MedianFactor float64
}

// Enabled reports whether the screen does anything.
func (s NormScreen) Enabled() bool { return s.MaxNorm > 0 || s.MedianFactor > 0 }

// Validate rejects nonsensical thresholds.
func (s NormScreen) Validate() error {
	if s.MaxNorm < 0 {
		return fmt.Errorf("aggregator: negative screen max norm %v", s.MaxNorm)
	}
	if s.MedianFactor != 0 && s.MedianFactor < 1 {
		return fmt.Errorf("aggregator: screen median factor %v below 1", s.MedianFactor)
	}
	return nil
}

// Apply partitions updates into the kept subset and the rejected
// outliers, both preserving input order. The input slice is never
// mutated (the round owns it: its payloads are released at round
// termination, rejected or not); when nothing is rejected the kept
// result is the input slice itself, allocation aside from the norm
// scratch. The median threshold uses the deterministic selection, so the
// same round always screens the same set.
func (s NormScreen) Apply(updates []Update) (kept, rejected []Update) {
	if !s.Enabled() || len(updates) == 0 {
		return updates, nil
	}
	norms := make([]float64, len(updates))
	for i, u := range updates {
		norms[i] = updateNorm(u)
	}
	limit := math.Inf(1)
	if s.MaxNorm > 0 {
		limit = s.MaxNorm
	}
	if s.MedianFactor > 0 {
		med := medianInPlace(append([]float64(nil), norms...))
		if t := s.MedianFactor * med; t < limit {
			limit = t
		}
	}
	drop := 0
	for _, n := range norms {
		if !(n <= limit) { // NaN norms fail the comparison and are screened
			drop++
		}
	}
	if drop == 0 {
		return updates, nil
	}
	kept = make([]Update, 0, len(updates)-drop)
	rejected = make([]Update, 0, drop)
	for i, u := range updates {
		if norms[i] <= limit {
			kept = append(kept, u)
		} else {
			rejected = append(rejected, u)
		}
	}
	return kept, rejected
}

// updateNorm is the update's L2 norm, whichever form it carries.
func updateNorm(u Update) float64 {
	if u.Delta != nil {
		return u.Delta.Norm2()
	}
	if u.Payload != nil {
		return u.Payload.Norm2()
	}
	return 0
}
