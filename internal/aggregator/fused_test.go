package aggregator

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"flint/internal/codec"
	"flint/internal/tensor"
)

// encodePayload round-trips v through the codec into a Payload view.
func encodePayload(t testing.TB, v tensor.Vector, s codec.Scheme) *codec.Payload {
	t.Helper()
	blob, err := codec.Encode(v, s)
	if err != nil {
		t.Fatalf("encode %v: %v", s, err)
	}
	p, err := codec.ParsePayload(blob)
	if err != nil {
		t.Fatalf("parse payload %v: %v", s, err)
	}
	return p
}

func randVec(rng *rand.Rand, dim int) tensor.Vector {
	v := tensor.NewVector(dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// fusedAndReference builds two identical global vectors and runs strat
// once over payload-backed updates (fused) and once over the same
// updates materialized through the codec (decode-then-reduce), returning
// both results.
func fusedAndReference(t *testing.T, strat Strategy, dim int, schemes []codec.Scheme, seed int64) (fused, ref tensor.Vector) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := randVec(rng, dim)
	fused = base.Clone()
	ref = base.Clone()
	var wire, dense []Update
	for i, s := range schemes {
		v := randVec(rng, dim)
		p := encodePayload(t, v, s)
		w := rng.Float64()*10 + 0.5
		stale := rng.Intn(4)
		wire = append(wire, Update{ClientID: int64(i), Payload: p, Weight: w, Staleness: stale})
		decoded, _, err := codec.Decode(mustEncode(t, v, s))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		dense = append(dense, Update{ClientID: int64(i), Delta: decoded, Weight: w, Staleness: stale})
	}
	if err := strat.Aggregate(fused, wire); err != nil {
		t.Fatalf("fused aggregate: %v", err)
	}
	if err := strat.Aggregate(ref, dense); err != nil {
		t.Fatalf("reference aggregate: %v", err)
	}
	return fused, ref
}

func mustEncode(t testing.TB, v tensor.Vector, s codec.Scheme) []byte {
	t.Helper()
	blob, err := codec.Encode(v, s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return blob
}

// TestFusedKernelMatchesDecodeThenReduce: for every scheme and both live
// strategies, aggregating straight out of wire payloads equals
// materializing each update and reducing — exactly (the fused kernels
// compute each decoded value and each accumulation with the identical
// expressions; top-k's skipped zeros can at most flip a -0, which ==
// treats as equal).
func TestFusedKernelMatchesDecodeThenReduce(t *testing.T) {
	dims := []int{1, 255, 256, 257, 1519, 4096}
	schemes := map[string]codec.Scheme{
		"raw64": codec.RawF64,
		"f32":   codec.F32,
		"q8":    codec.Q8,
		"topk":  codec.TopK(0),
	}
	strategies := map[string]Strategy{
		"fedavg":  FedAvg{},
		"fedbuff": FedBuff{ServerLR: 0.9, Alpha: 0.5},
	}
	for sname, strat := range strategies {
		for kname, scheme := range schemes {
			for _, dim := range dims {
				fused, ref := fusedAndReference(t, strat, dim,
					[]codec.Scheme{scheme, scheme, scheme}, int64(dim)*31+int64(len(kname)))
				for i := range fused {
					if fused[i] != ref[i] {
						t.Fatalf("%s/%s dim %d: fused[%d]=%v ref=%v", sname, kname, dim, i, fused[i], ref[i])
					}
				}
			}
		}
	}
}

// TestFusedMixedSchemesAndDense: one update set mixing dense vectors with
// payloads of every scheme still matches the all-dense reference.
func TestFusedMixedSchemesAndDense(t *testing.T) {
	const dim = 2000
	fused, ref := fusedAndReference(t, FedAvg{}, dim,
		[]codec.Scheme{codec.RawF64, codec.Q8, codec.TopK(50), codec.F32}, 7)
	for i := range fused {
		if fused[i] != ref[i] {
			t.Fatalf("mixed: fused[%d]=%v ref=%v", i, fused[i], ref[i])
		}
	}
}

// TestFusedParallelMatchesSequential: the sharded fused path (cache-
// aligned ranges, payload kernels) is bit-identical to the sequential
// fused pass — the discipline the dense kernels already guarantee,
// extended to wire-form updates. Workers is forced past the small-batch
// cutoff by sizing dim×K above parallelMinWork.
func TestFusedParallelMatchesSequential(t *testing.T) {
	const dim = 70_000
	const n = 16 // dim*n > parallelMinWork
	rng := rand.New(rand.NewSource(42))
	for _, scheme := range []codec.Scheme{codec.RawF64, codec.Q8, codec.TopK(0)} {
		base := randVec(rng, dim)
		seq := base.Clone()
		par := base.Clone()
		var updates []Update
		for i := 0; i < n; i++ {
			p := encodePayload(t, randVec(rng, dim), scheme)
			updates = append(updates, Update{ClientID: int64(i), Payload: p, Weight: float64(i%3) + 1})
		}
		if err := (FedAvg{}).Aggregate(seq, updates); err != nil {
			t.Fatalf("sequential: %v", err)
		}
		if err := (Parallel{Inner: FedAvg{}, Workers: 5, Screen: true}).Aggregate(par, updates); err != nil {
			t.Fatalf("parallel: %v", err)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("%v: par[%d]=%v seq=%v", scheme, i, par[i], seq[i])
			}
		}
	}
}

// TestParallelTrimmedMeanWireMatchesDense: a payload-backed update set
// through the sharded trimmed-mean (per-worker window gather, no whole-
// set materialization) matches the dense path exactly.
func TestParallelTrimmedMeanWireMatchesDense(t *testing.T) {
	const dim = 70_000
	const n = 15
	rng := rand.New(rand.NewSource(9))
	base := randVec(rng, dim)
	wireG := base.Clone()
	denseG := base.Clone()
	var wire, dense []Update
	for i := 0; i < n; i++ {
		v := randVec(rng, dim)
		wire = append(wire, Update{ClientID: int64(i), Payload: encodePayload(t, v, codec.RawF64)})
		dense = append(dense, Update{ClientID: int64(i), Delta: v.Clone()})
	}
	tm := Parallel{Inner: TrimmedMean{TrimFrac: 0.2}, Workers: 4}
	if err := tm.Aggregate(wireG, wire); err != nil {
		t.Fatalf("wire: %v", err)
	}
	if err := tm.Aggregate(denseG, dense); err != nil {
		t.Fatalf("dense: %v", err)
	}
	for i := range wireG {
		if wireG[i] != denseG[i] {
			t.Fatalf("trimmed: wire[%d]=%v dense=%v", i, wireG[i], denseG[i])
		}
	}
}

// TestScreenCatchesOverflow: two finite updates can sum to +Inf; the
// fused screen reports ErrNonFinite on both the sharded and the
// sequential fallback path, and without Screen the old silent behavior
// is preserved.
func TestScreenCatchesOverflow(t *testing.T) {
	huge := math.MaxFloat64
	for _, workers := range []int{1, 4} {
		global := tensor.NewVector(70_000)
		updates := []Update{
			{ClientID: 1, Delta: constVec(70_000, huge)},
			{ClientID: 2, Delta: constVec(70_000, huge)},
			{ClientID: 3, Delta: constVec(70_000, huge)},
		}
		p := Parallel{Inner: FedBuff{ServerLR: 4}, Workers: workers, Screen: true}
		err := p.Aggregate(global, updates)
		if !errors.Is(err, ErrNonFinite) {
			t.Fatalf("workers=%d: want ErrNonFinite, got %v", workers, err)
		}
		p.Screen = false
		global2 := tensor.NewVector(70_000)
		if err := p.Aggregate(global2, updates); err != nil {
			t.Fatalf("workers=%d unscreened: %v", workers, err)
		}
	}
}

func constVec(dim int, x float64) tensor.Vector {
	v := tensor.NewVector(dim)
	for i := range v {
		v[i] = x
	}
	return v
}

// TestTrimmedMeanSelectionMatchesSort: the partial-selection trimmed sum
// equals the sort-based definition across random columns, including ties
// and duplicated values.
func TestTrimmedMeanSelectionMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(40) + 1
		col := make([]float64, n)
		for i := range col {
			switch rng.Intn(3) {
			case 0:
				col[i] = float64(rng.Intn(5)) // duplicates
			default:
				col[i] = rng.NormFloat64()
			}
		}
		frac := rng.Float64() * 0.49
		k := int(frac * float64(n))

		want := trimmedRefSum(col, k)
		got := make([]float64, n)
		copy(got, col)
		selectMiddle(got, k)
		var s float64
		for _, v := range got[k : n-k] {
			s += v
		}
		// Compare as sums of the same multiset: selection order may
		// differ from sorted order, so allow reassociation error only.
		if math.Abs(s-want) > 1e-9*(math.Abs(want)+1) {
			t.Fatalf("trial %d n=%d k=%d: selection sum %v, sorted sum %v", trial, n, k, s, want)
		}
	}
}

func trimmedRefSum(col []float64, k int) float64 {
	sorted := make([]float64, len(col))
	copy(sorted, col)
	insertSort(sorted)
	var s float64
	for _, v := range sorted[k : len(sorted)-k] {
		s += v
	}
	return s
}

// FuzzFusedAggregateParity drives random dimensions, update counts, and
// values through the fused q8/topk kernels (the lossy schemes, where a
// kernel bug could hide behind quantization error) and requires exact
// equality with decode-then-reduce, sequential and sharded.
func FuzzFusedAggregateParity(f *testing.F) {
	f.Add(int64(1), uint16(300), uint8(3), true)
	f.Add(int64(99), uint16(257), uint8(1), false)
	f.Add(int64(7), uint16(1), uint8(5), true)
	f.Fuzz(func(t *testing.T, seed int64, dimRaw uint16, nRaw uint8, q8 bool) {
		dim := int(dimRaw)%1500 + 1
		n := int(nRaw)%6 + 1
		scheme := codec.TopK(0)
		if q8 {
			scheme = codec.Q8
		}
		rng := rand.New(rand.NewSource(seed))
		base := randVec(rng, dim)
		fused := base.Clone()
		par := base.Clone()
		ref := base.Clone()
		var wire, dense []Update
		for i := 0; i < n; i++ {
			v := randVec(rng, dim)
			blob, err := codec.Encode(v, scheme)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			p, err := codec.ParsePayload(blob)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			decoded, _, err := codec.Decode(blob)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			w := rng.Float64() * 5
			wire = append(wire, Update{ClientID: int64(i), Payload: p, Weight: w})
			dense = append(dense, Update{ClientID: int64(i), Delta: decoded, Weight: w})
		}
		if err := (FedAvg{}).Aggregate(fused, wire); err != nil {
			t.Fatalf("fused: %v", err)
		}
		if err := (Parallel{Inner: FedAvg{}, Workers: 3}).Aggregate(par, wire); err != nil {
			t.Fatalf("parallel fused: %v", err)
		}
		if err := (FedAvg{}).Aggregate(ref, dense); err != nil {
			t.Fatalf("reference: %v", err)
		}
		for i := range fused {
			if fused[i] != ref[i] {
				t.Fatalf("fused[%d]=%v ref=%v (dim %d n %d %v)", i, fused[i], ref[i], dim, n, scheme)
			}
			if par[i] != fused[i] {
				t.Fatalf("par[%d]=%v fused=%v (dim %d n %d %v)", i, par[i], fused[i], dim, n, scheme)
			}
		}
	})
}
