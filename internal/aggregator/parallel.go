package aggregator

import (
	"runtime"
	"sync"

	"flint/internal/tensor"
)

// rangeStrategy is implemented by strategies whose aggregation is
// coordinate-separable: aggregateRange folds the updates into
// global[lo:hi] only, visiting the updates in the same order as the
// sequential pass. Disjoint ranges touch disjoint memory, so a sharded
// run needs no synchronization beyond joining the workers — and because
// each coordinate sees the identical sequence of floating-point
// operations, the sharded result is bit-for-bit equal to the sequential
// one (no merge step, no reassociation error).
type rangeStrategy interface {
	aggregateRange(global tensor.Vector, updates []Update, lo, hi int) error
}

// parallelMinWork is the aggregation size (dim × update count) below
// which forking workers costs more than the arithmetic it parallelizes;
// smaller batches run the inner strategy sequentially.
const parallelMinWork = 1 << 20

// Parallel is a sharded tree-reduction wrapper around a coordinate-
// separable strategy: it splits the parameter vector into contiguous
// ranges, one per worker, and runs the inner strategy's range kernel on
// each concurrently. The commit pipeline's O(K·dim) aggregation becomes
// O(K·dim/P) wall-clock at P cores with zero extra allocation.
//
// Strategies that are not coordinate-separable (and batches too small to
// amortize goroutine startup) delegate to the inner strategy unchanged,
// so Parallel is safe to install unconditionally.
type Parallel struct {
	// Inner is the wrapped strategy (FedAvg and FedBuff shard; others
	// run sequentially).
	Inner Strategy
	// Workers caps the shard count (0 = GOMAXPROCS).
	Workers int
}

// Name implements Strategy.
func (p Parallel) Name() string { return "parallel(" + p.Inner.Name() + ")" }

// Aggregate implements Strategy. Errors match the inner strategy's
// exactly: validation runs once up front, and scalar-weight failures
// (e.g. FedBuff's zero total weight) are detected identically by every
// worker before any of them mutates the global vector.
func (p Parallel) Aggregate(global tensor.Vector, updates []Update) error {
	rs, ok := p.Inner.(rangeStrategy)
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(global) {
		workers = len(global)
	}
	if !ok || workers <= 1 || len(updates) == 0 || len(global)*len(updates) < parallelMinWork {
		return p.Inner.Aggregate(global, updates)
	}
	if err := validateDims(global, updates); err != nil {
		return err
	}
	chunk := (len(global) + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(global))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = rs.aggregateRange(global, updates, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
