package aggregator

import (
	"errors"
	"math"
	"runtime"
	"sync"

	"flint/internal/tensor"
)

// rangeStrategy is implemented by strategies whose aggregation is
// coordinate-separable: aggregateRange folds the updates into
// global[lo:hi] only, visiting the updates in the same order as the
// sequential pass. Disjoint ranges touch disjoint memory, so a sharded
// run needs no synchronization beyond joining the workers — and because
// each coordinate sees the identical sequence of floating-point
// operations, the sharded result is bit-for-bit equal to the sequential
// one (no merge step, no reassociation error).
type rangeStrategy interface {
	aggregateRange(global tensor.Vector, updates []Update, lo, hi int) error
}

// payloadKernel marks range strategies whose kernels read wire-form
// (Payload-backed) updates directly; Parallel materializes the update set
// up front for range strategies without it.
type payloadKernel interface {
	fusedPayloads()
}

// ErrNonFinite is the sentinel a screened aggregation returns when the
// aggregate contains NaN or ±Inf — finite updates can still sum past
// MaxFloat64. The aggregate HAS been applied when this is returned;
// callers that must not publish non-finite state roll back (the commit
// pipeline copies the published snapshot over the params).
var ErrNonFinite = errors.New("aggregator: non-finite aggregate")

// parallelMinWork is the aggregation size (dim × update count) below
// which forking workers costs more than the arithmetic it parallelizes;
// smaller batches run the inner strategy sequentially.
const parallelMinWork = 1 << 20

// shardAlign quantizes worker range boundaries, in coordinates. 256 is
// the codec's q8 quantization chunk, so a shard never splits a chunk (no
// two workers read the same scale word, and the fused q8 kernel's
// chunk-walk never straddles a boundary); it is also 2 KiB of float64
// accumulator — 32 cache lines — so adjacent workers never store to the
// same line (no false sharing at the seams). Alignment only moves
// boundaries; every coordinate still sees the identical operation
// sequence, so bit-identity with sequential is unaffected.
const shardAlign = 256

// Parallel is a sharded tree-reduction wrapper around a coordinate-
// separable strategy: it splits the parameter vector into contiguous
// ranges, one per worker, and runs the inner strategy's range kernel on
// each concurrently. The commit pipeline's O(K·dim) aggregation becomes
// O(K·dim/P) wall-clock at P cores with zero extra allocation.
//
// Strategies that are not coordinate-separable (and batches too small to
// amortize goroutine startup) delegate to the inner strategy unchanged,
// so Parallel is safe to install unconditionally.
type Parallel struct {
	// Inner is the wrapped strategy (FedAvg, FedBuff, TrimmedMean, and
	// CoordinateMedian shard; others run sequentially).
	Inner Strategy
	// Workers caps the shard count (0 = GOMAXPROCS).
	Workers int
	// Screen folds a non-finite sweep of each worker's range into the
	// same pass, while the freshly written accumulator is still
	// cache-hot: any NaN/Inf reachable from the inputs necessarily
	// leaves the affected coordinate non-finite, so screening the
	// output range catches overflow and poisoned inputs alike. A hit
	// surfaces as ErrNonFinite after all workers join.
	Screen bool
}

// Name implements Strategy.
func (p Parallel) Name() string { return "parallel(" + p.Inner.Name() + ")" }

// Aggregate implements Strategy. Errors match the inner strategy's
// exactly: validation runs once up front, and scalar-weight failures
// (e.g. FedBuff's zero total weight) are detected identically by every
// worker before any of them mutates the global vector.
func (p Parallel) Aggregate(global tensor.Vector, updates []Update) error {
	rs, ok := p.Inner.(rangeStrategy)
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(global) {
		workers = len(global)
	}
	if !ok || workers <= 1 || len(updates) == 0 || len(global)*len(updates) < parallelMinWork {
		if err := p.Inner.Aggregate(global, updates); err != nil {
			return err
		}
		if p.Screen {
			return screenRange(global, 0, len(global))
		}
		return nil
	}
	if err := validateDims(global, updates); err != nil {
		return err
	}
	if _, fused := p.Inner.(payloadKernel); !fused {
		// The inner kernel needs dense columns; decode wire-form updates
		// once here rather than per worker.
		var err error
		updates, err = Materialize(updates)
		if err != nil {
			return err
		}
	}
	chunk := (len(global) + workers - 1) / workers
	chunk = (chunk + shardAlign - 1) / shardAlign * shardAlign
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(global))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			err := rs.aggregateRange(global, updates, lo, hi)
			if err == nil && p.Screen {
				err = screenRange(global, lo, hi)
			}
			errs[w] = err
		}(w, lo, hi)
	}
	wg.Wait()
	// Kernel errors (which precede any mutation) outrank screen hits, so
	// the wrapped error contract is unchanged by Screen.
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrNonFinite) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// screenRange scans global[lo:hi] for NaN/±Inf.
func screenRange(global tensor.Vector, lo, hi int) error {
	for _, x := range global[lo:hi] {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return ErrNonFinite
		}
	}
	return nil
}
