package aggregator

import (
	"math"
	"math/rand"
	"testing"

	"flint/internal/tensor"
)

func upd(id int64, w float64, vals ...float64) Update {
	return Update{ClientID: id, Weight: w, Delta: tensor.Vector(vals)}
}

func TestFedAvgWeighted(t *testing.T) {
	global := tensor.Vector{0, 0}
	err := FedAvg{}.Aggregate(global, []Update{
		upd(1, 1, 2, 0),
		upd(2, 3, 0, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	// (1*[2,0] + 3*[0,4]) / 4 = [0.5, 3].
	if math.Abs(global[0]-0.5) > 1e-12 || math.Abs(global[1]-3) > 1e-12 {
		t.Fatalf("fedavg: %v", global)
	}
}

func TestFedAvgDefaultsWeight(t *testing.T) {
	global := tensor.Vector{0}
	err := FedAvg{}.Aggregate(global, []Update{upd(1, 0, 4), upd(2, 0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(global[0]-3) > 1e-12 {
		t.Fatalf("unweighted mean: %v", global[0])
	}
}

func TestFedAvgErrors(t *testing.T) {
	if err := (FedAvg{}).Aggregate(tensor.Vector{0}, nil); err == nil {
		t.Fatal("empty batch must error")
	}
	if err := (FedAvg{}).Aggregate(tensor.Vector{0}, []Update{upd(1, 1, 1, 2)}); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestFedBuffStalenessDiscount(t *testing.T) {
	f := FedBuff{ServerLR: 1, Alpha: 0.5}
	if w := f.StalenessWeight(0); w != 1 {
		t.Fatalf("fresh weight %v", w)
	}
	if w := f.StalenessWeight(3); math.Abs(w-0.5) > 1e-12 {
		t.Fatalf("staleness-3 weight %v, want 0.5", w)
	}
	if f.StalenessWeight(-1) != 1 {
		t.Fatal("negative staleness clamps to 0")
	}
	// Monotone decreasing.
	prev := math.Inf(1)
	for tau := 0; tau < 10; tau++ {
		w := f.StalenessWeight(tau)
		if w > prev {
			t.Fatal("staleness weight must decrease")
		}
		prev = w
	}
}

func TestFedBuffAggregate(t *testing.T) {
	global := tensor.Vector{0}
	f := FedBuff{ServerLR: 1, Alpha: 0} // no discount
	err := f.Aggregate(global, []Update{upd(1, 1, 2), upd(2, 1, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(global[0]-3) > 1e-12 {
		t.Fatalf("fedbuff mean: %v", global[0])
	}
	// With discounting, a stale update contributes less.
	g2 := tensor.Vector{0}
	f2 := FedBuff{ServerLR: 1, Alpha: 1}
	stale := Update{ClientID: 3, Delta: tensor.Vector{4}, Staleness: 3}
	if err := f2.Aggregate(g2, []Update{upd(1, 1, 2), stale}); err != nil {
		t.Fatal(err)
	}
	if g2[0] >= 3 {
		t.Fatalf("stale update not discounted: %v", g2[0])
	}
	if err := f.Aggregate(global, nil); err == nil {
		t.Fatal("empty buffer must error")
	}
}

func TestTrimmedMeanDropsOutlier(t *testing.T) {
	global := tensor.Vector{0}
	honest := []Update{upd(1, 1, 1), upd(2, 1, 1.2), upd(3, 1, 0.8), upd(4, 1, 1.1)}
	poisoned := append(append([]Update{}, honest...), upd(5, 1, -100))
	if err := (TrimmedMean{TrimFrac: 0.2}).Aggregate(global, poisoned); err != nil {
		t.Fatal(err)
	}
	if global[0] < 0.5 || global[0] > 1.5 {
		t.Fatalf("trimmed mean %v should resist the -100 outlier", global[0])
	}
	if err := (TrimmedMean{TrimFrac: 0.6}).Aggregate(global, honest); err == nil {
		t.Fatal("trim fraction >= 0.5 must error")
	}
	if err := (TrimmedMean{}).Aggregate(global, nil); err == nil {
		t.Fatal("empty batch must error")
	}
}

func TestNormBound(t *testing.T) {
	global := tensor.Vector{0, 0}
	big := upd(1, 1, 30, 40) // norm 50
	if err := (NormBound{Bound: 5, Inner: FedAvg{}}).Aggregate(global, []Update{big}); err != nil {
		t.Fatal(err)
	}
	if n := global.Norm2(); math.Abs(n-5) > 1e-9 {
		t.Fatalf("clipped aggregate norm %v, want 5", n)
	}
	// Original update untouched.
	if big.Delta[0] != 30 {
		t.Fatal("NormBound must not mutate inputs")
	}
	if err := (NormBound{Bound: 0, Inner: FedAvg{}}).Aggregate(global, []Update{big}); err == nil {
		t.Fatal("zero bound must error")
	}
	if err := (NormBound{Bound: 1}).Aggregate(global, []Update{big}); err == nil {
		t.Fatal("missing inner must error")
	}
}

func TestDPClipsAndNoises(t *testing.T) {
	cfg := DPConfig{ClipNorm: 1, NoiseMultiplier: 0.1, Seed: 4}
	dp, err := NewDP(cfg, FedAvg{})
	if err != nil {
		t.Fatal(err)
	}
	global := tensor.NewVector(2)
	big := upd(1, 1, 300, 400)
	if err := dp.Aggregate(global, []Update{big}); err != nil {
		t.Fatal(err)
	}
	// Aggregate must be near the clipped direction (norm ≈ 1), noise std 0.1.
	if n := global.Norm2(); n > 1.6 || n < 0.4 {
		t.Fatalf("DP aggregate norm %v far from clip norm 1", n)
	}
	if big.Delta[0] != 300 {
		t.Fatal("DP must not mutate inputs")
	}
	// Zero noise multiplier: deterministic clip-only behaviour.
	dp0, err := NewDP(DPConfig{ClipNorm: 1, NoiseMultiplier: 0, Seed: 1}, FedAvg{})
	if err != nil {
		t.Fatal(err)
	}
	g0 := tensor.NewVector(2)
	if err := dp0.Aggregate(g0, []Update{big}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g0.Norm2()-1) > 1e-9 {
		t.Fatalf("clip-only norm %v", g0.Norm2())
	}
}

func TestDPValidation(t *testing.T) {
	if _, err := NewDP(DPConfig{ClipNorm: 0}, FedAvg{}); err == nil {
		t.Fatal("zero clip must fail")
	}
	if _, err := NewDP(DPConfig{ClipNorm: 1, NoiseMultiplier: -1}, FedAvg{}); err == nil {
		t.Fatal("negative noise must fail")
	}
	if _, err := NewDP(DPConfig{ClipNorm: 1}, nil); err == nil {
		t.Fatal("nil inner must fail")
	}
}

func TestEpsilonApprox(t *testing.T) {
	cfg := DPConfig{ClipNorm: 1, NoiseMultiplier: 1}
	e1, err := cfg.EpsilonApprox(100, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := cfg.EpsilonApprox(400, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= e1 {
		t.Fatal("epsilon must grow with rounds")
	}
	if math.Abs(e2/e1-2) > 1e-9 {
		t.Fatalf("sqrt composition: e2/e1 = %v, want 2", e2/e1)
	}
	noNoise := DPConfig{ClipNorm: 1, NoiseMultiplier: 0}
	if e, _ := noNoise.EpsilonApprox(10, 1e-6); !math.IsInf(e, 1) {
		t.Fatal("zero noise must yield infinite epsilon")
	}
	if _, err := cfg.EpsilonApprox(0, 1e-6); err == nil {
		t.Fatal("zero rounds must error")
	}
	if _, err := cfg.EpsilonApprox(10, 2); err == nil {
		t.Fatal("bad delta must error")
	}
}

func TestSecAggMaskedSumMatchesPlainSum(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dim := 20
	var updates []Update
	plain := tensor.NewVector(dim)
	for c := 0; c < 7; c++ {
		d := tensor.NewVector(dim)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		plain.Add(d)
		updates = append(updates, Update{ClientID: int64(c + 1), Delta: d})
	}
	sec := SecAgg{MaskScale: 10, Seed: 3}
	masked, err := sec.MaskedSum(updates, dim)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if math.Abs(masked[i]-plain[i]) > 1e-6 {
			t.Fatalf("coordinate %d: masked %v plain %v", i, masked[i], plain[i])
		}
	}
	if _, err := sec.MaskedSum(nil, dim); err == nil {
		t.Fatal("empty batch must error")
	}
	if _, err := sec.MaskedSum(updates, dim+1); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestThroughput(t *testing.T) {
	// §3.5: 610k tasks over 48h with 0.76 MB updates → 3.53 upd/s, 2.68 MB/s.
	th, err := Throughput(610_000, 760_000, 48*3600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(th.UpdatesPerSec-3.53) > 0.05 {
		t.Fatalf("updates/s %v, paper projects 3.53", th.UpdatesPerSec)
	}
	if math.Abs(th.BytesPerSec/1e6-2.68) > 0.05 {
		t.Fatalf("MB/s %v, paper projects 2.68", th.BytesPerSec/1e6)
	}
	if _, err := Throughput(1, 1, 0); err == nil {
		t.Fatal("zero duration must error")
	}
}

func TestAdversarySignFlip(t *testing.T) {
	adv := Adversary{Attack: SignFlip{Scale: 2}, Fraction: 1, Seed: 5}
	updates := []Update{upd(1, 1, 3)}
	out, n, err := adv.Apply(updates)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("poisoned %d", n)
	}
	if out[0].Delta[0] != -6 {
		t.Fatalf("sign flip: %v", out[0].Delta[0])
	}
	if updates[0].Delta[0] != 3 {
		t.Fatal("input mutated")
	}
}

func TestAdversaryFractionStable(t *testing.T) {
	adv := Adversary{Attack: RandomNoise{Std: 1}, Fraction: 0.3, Seed: 9}
	comp := 0
	const n = 5000
	for id := int64(0); id < n; id++ {
		a := adv.Compromised(id)
		b := adv.Compromised(id)
		if a != b {
			t.Fatal("compromise decision must be stable per client")
		}
		if a {
			comp++
		}
	}
	frac := float64(comp) / n
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("compromised fraction %v far from 0.3", frac)
	}
}

func TestAdversaryValidation(t *testing.T) {
	if _, _, err := (Adversary{Fraction: 0.5}).Apply(nil); err == nil {
		t.Fatal("missing attack must fail")
	}
	if _, _, err := (Adversary{Attack: SignFlip{}, Fraction: 2}).Apply(nil); err == nil {
		t.Fatal("bad fraction must fail")
	}
}

func TestRandomNoisePoison(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := upd(1, 1, 0, 0, 0)
	out := RandomNoise{Std: 5}.Poison(u, rng)
	if out.Delta.Norm2() == 0 {
		t.Fatal("noise attack produced zero delta")
	}
	if u.Delta.Norm2() != 0 {
		t.Fatal("input mutated")
	}
}
