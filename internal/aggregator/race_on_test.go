//go:build race

package aggregator

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-accounting assertions skip themselves under it (the
// race runtime adds its own allocations and randomizes pool reuse).
const raceEnabled = true
