// Package tenant is the multi-tenant job plane: a registry and
// admission layer hosting M independent FL jobs inside one server
// process. Each job owns a full coordinator — its own round FSM,
// broadcast plane, version ring, transport policy, scheduler, and
// counter set — behind /v1/jobs/<job>/... routing, with the bare /v1/*
// paths aliased to a default job so single-tenant clients keep working
// unchanged. Admission enforces per-job device quotas and bearer-token
// auth, so one hungry job can't starve the fleet or read another
// tenant's model.
package tenant

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"

	"flint/internal/codec"
	"flint/internal/coord"
	"flint/internal/model"
	"flint/internal/transport"
)

// Duration is a time.Duration that unmarshals from a JSON duration
// string ("15s", "2m30s") or a bare number of seconds, so job spec
// files read naturally either way.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("tenant: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("tenant: duration must be a string or seconds number, got %s", b)
	}
	*d = Duration(secs * float64(time.Second))
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// CohortSpec is one transport cohort's wire-scheme assignment in a job
// spec. Empty scheme strings inherit the server's base policy for that
// cohort.
type CohortSpec struct {
	// Task/Update/Delta are codec scheme strings ("raw64", "f32", "q8",
	// "topk[:k]") for the cohort's broadcast, uplink, and
	// delta-broadcast encodings.
	Task   string `json:"task,omitempty"`
	Update string `json:"update,omitempty"`
	Delta  string `json:"delta,omitempty"`
	// DeltaDepth is this cohort's delta-history window: 0 inherits the
	// job's delta_history, negative disables delta broadcast for the
	// cohort alone.
	DeltaDepth int `json:"delta_depth,omitempty"`
}

// apply overlays the cohort spec on a base policy.
func (cs *CohortSpec) apply(p transport.Policy) (transport.Policy, error) {
	if cs == nil {
		return p, nil
	}
	if err := parseSchemeInto(&p.Task, cs.Task); err != nil {
		return p, err
	}
	if err := parseSchemeInto(&p.Update, cs.Update); err != nil {
		return p, err
	}
	if err := parseSchemeInto(&p.Delta, cs.Delta); err != nil {
		return p, err
	}
	if cs.DeltaDepth != 0 {
		p.DeltaDepth = cs.DeltaDepth
	}
	return p, nil
}

// parseSchemeInto parses a scheme string into dst; empty strings keep
// the inherited scheme.
func parseSchemeInto(dst *codec.Scheme, raw string) error {
	if raw == "" {
		return nil
	}
	s, err := codec.ParseScheme(raw)
	if err != nil {
		return err
	}
	*dst = s
	return nil
}

// JobSpec declares one FL job of a multi-tenant server: what model it
// trains, how its rounds run, how its bytes move, and who may join it.
// Zero fields inherit the server's base (single-job) configuration, so
// a spec states only what makes the job different.
type JobSpec struct {
	// Name identifies the job in /v1/jobs/<name>/... routes, the
	// modelstore, and the status rollup. Required; letters, digits,
	// '-', '_', '.' only.
	Name string `json:"name"`
	// Mode is the training protocol ("sync" or "async").
	Mode string `json:"mode,omitempty"`
	// Model is the Table 5 architecture kind (A–E) — the job's model
	// dimension follows from it.
	Model string `json:"model,omitempty"`
	// Seed seeds the job's model initialization.
	Seed int64 `json:"seed,omitempty"`
	// TargetUpdates is the job's aggregation trigger K; Quorum the
	// deadline minimum (default K/2).
	TargetUpdates int `json:"target_updates,omitempty"`
	Quorum        int `json:"quorum,omitempty"`
	// RoundDeadline bounds a round's wall-clock collecting time.
	RoundDeadline Duration `json:"round_deadline,omitempty"`
	// MaxStaleness bounds async update staleness (0 inherits).
	MaxStaleness int `json:"max_staleness,omitempty"`
	// ServerLR and StalenessAlpha parameterize async FedBuff.
	ServerLR       float64 `json:"server_lr,omitempty"`
	StalenessAlpha float64 `json:"staleness_alpha,omitempty"`
	// LocalSteps is the per-task local training step hint.
	LocalSteps int `json:"local_steps,omitempty"`
	// DeltaHistory is the job's delta-broadcast window (negative
	// disables delta broadcast; 0 inherits the server default).
	// Cohorts override it per-cohort via DeltaDepth.
	DeltaHistory int `json:"delta_history,omitempty"`
	// Default and LowBW overlay the job's per-cohort wire policies.
	Default *CohortSpec `json:"default_cohort,omitempty"`
	LowBW   *CohortSpec `json:"lowbw_cohort,omitempty"`
	// Aggregation picks the job's commit reducer ("fedavg", "fedbuff",
	// "trimmed-mean", "coordinate-median"; empty inherits the base
	// config, whose empty default is the mode's standard reducer).
	Aggregation string `json:"aggregation,omitempty"`
	// TrimFrac is trimmed-mean's per-side trim fraction.
	TrimFrac float64 `json:"trim_frac,omitempty"`
	// ScreenMaxNorm / ScreenMedianFactor parameterize the job's
	// pre-reduce norm screen (see coord.AggregationConfig).
	ScreenMaxNorm      float64 `json:"screen_max_norm,omitempty"`
	ScreenMedianFactor float64 `json:"screen_median_factor,omitempty"`
	// DPEpsilon/DPDelta/DPClipNorm/DPSeed enable the job's central-DP
	// commit stage (see coord.DPConfig); zero fields inherit the base.
	DPEpsilon  float64 `json:"dp_epsilon,omitempty"`
	DPDelta    float64 `json:"dp_delta,omitempty"`
	DPClipNorm float64 `json:"dp_clip_norm,omitempty"`
	DPSeed     int64   `json:"dp_seed,omitempty"`
	// MaxDevices is the job's device quota: how many distinct devices
	// may be checked in at once (0 = unlimited). Over-quota check-ins
	// get 429 and checkin_rejected_quota.
	MaxDevices int `json:"max_devices,omitempty"`
	// Token, when set, locks the job's routes behind bearer-token auth:
	// requests must carry it as "Authorization: Bearer <token>" (or
	// X-Flint-Job-Token). Wrong or missing tokens get 401 and
	// auth_rejected_token.
	Token string `json:"token,omitempty"`
}

// Validate checks the spec's standalone invariants (the rest are
// validated by coord.New when the job starts).
func (s JobSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("tenant: job needs a name")
	}
	for _, r := range s.Name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("tenant: job name %q contains %q (want letters, digits, '-', '_', '.')", s.Name, r)
		}
	}
	if s.MaxDevices < 0 {
		return fmt.Errorf("tenant: job %s: negative device quota %d", s.Name, s.MaxDevices)
	}
	return nil
}

// coordConfig overlays the spec on the server's base configuration and
// returns the job's coordinator config: the job name becomes the
// modelstore name, persistence lands in a per-job subdirectory, and
// every zero spec field keeps the base value.
func (s JobSpec) coordConfig(base coord.Config) (coord.Config, error) {
	cfg := base
	cfg.ModelName = s.Name
	if base.StoreDir != "" {
		cfg.StoreDir = filepath.Join(base.StoreDir, s.Name)
	}
	if s.Mode != "" {
		m, err := coord.ParseMode(s.Mode)
		if err != nil {
			return cfg, fmt.Errorf("tenant: job %s: %w", s.Name, err)
		}
		cfg.Mode = m
	}
	if s.Model != "" {
		cfg.ModelKind = model.Kind(s.Model)
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.TargetUpdates != 0 {
		cfg.TargetUpdates = s.TargetUpdates
		// A job that shrinks the target must not inherit a base quorum
		// sized for a larger one (coord.New rejects quorum > target);
		// an explicit spec quorum below still overrides.
		cfg.Quorum = 0
	}
	if s.Quorum != 0 {
		cfg.Quorum = s.Quorum
	}
	if s.RoundDeadline != 0 {
		cfg.RoundDeadline = time.Duration(s.RoundDeadline)
	}
	if s.MaxStaleness != 0 {
		cfg.MaxStaleness = s.MaxStaleness
	}
	if s.ServerLR != 0 {
		cfg.ServerLR = s.ServerLR
	}
	if s.StalenessAlpha != 0 {
		cfg.StalenessAlpha = s.StalenessAlpha
	}
	if s.LocalSteps != 0 {
		cfg.LocalSteps = s.LocalSteps
	}
	if s.DeltaHistory != 0 {
		cfg.Transport.DeltaHistory = s.DeltaHistory
	}
	var err error
	if cfg.Transport.Default, err = s.Default.apply(cfg.Transport.Default); err != nil {
		return cfg, fmt.Errorf("tenant: job %s default cohort: %w", s.Name, err)
	}
	if cfg.Transport.LowBW, err = s.LowBW.apply(cfg.Transport.LowBW); err != nil {
		return cfg, fmt.Errorf("tenant: job %s lowbw cohort: %w", s.Name, err)
	}
	if s.Aggregation != "" {
		cfg.Aggregation.Strategy = s.Aggregation
	}
	if s.TrimFrac != 0 {
		cfg.Aggregation.TrimFrac = s.TrimFrac
	}
	if s.ScreenMaxNorm != 0 {
		cfg.Aggregation.ScreenMaxNorm = s.ScreenMaxNorm
	}
	if s.ScreenMedianFactor != 0 {
		cfg.Aggregation.ScreenMedianFactor = s.ScreenMedianFactor
	}
	if s.DPEpsilon != 0 {
		cfg.DP.Epsilon = s.DPEpsilon
	}
	if s.DPDelta != 0 {
		cfg.DP.Delta = s.DPDelta
	}
	if s.DPClipNorm != 0 {
		cfg.DP.ClipNorm = s.DPClipNorm
	}
	if s.DPSeed != 0 {
		cfg.DP.Seed = s.DPSeed
	}
	cfg.MaxDevices = s.MaxDevices
	if cfg.Exchange != nil {
		// A sharded multi-tenant server keys every partial by job name,
		// so one tier leader can reduce several tenants independently.
		cfg.ExchangeJob = s.Name
	}
	return cfg, nil
}

// CoordConfig overlays the spec on a base serving configuration — the
// same derivation Register performs — so tier peers that must agree
// with a job's coordinators on model identity (the shard gateway's
// leader builds each job's initial global params) derive it from the
// same spec file instead of duplicating the overlay rules.
func (s JobSpec) CoordConfig(base coord.Config) (coord.Config, error) {
	return s.coordConfig(base)
}

// LoadSpecs parses a jobs file: a JSON array of job specs (or an object
// with a "jobs" array, so a file can carry future top-level settings).
func LoadSpecs(data []byte) ([]JobSpec, error) {
	var specs []JobSpec
	if err := json.Unmarshal(data, &specs); err == nil {
		return specs, nil
	}
	var wrapped struct {
		Jobs []JobSpec `json:"jobs"`
	}
	if err := json.Unmarshal(data, &wrapped); err != nil {
		return nil, fmt.Errorf("tenant: jobs file must be a JSON array of specs or {\"jobs\": [...]}: %w", err)
	}
	return wrapped.Jobs, nil
}
