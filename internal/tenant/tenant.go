package tenant

import (
	"fmt"
	"sort"
	"sync"

	"flint/internal/coord"
	"flint/internal/metrics"
)

// Job is one registered tenant: its spec, its running coordinator, and
// the coordinator's /v1 HTTP handler the router delegates to.
type Job struct {
	Spec  JobSpec
	Coord *coord.Coordinator
	// handler is the job's coord.Server: the same /v1 API a
	// single-tenant server exposes, reached through the job's route
	// prefix (or the default-job alias).
	handler *coord.Server
}

// Registry hosts the jobs of a multi-tenant server. Registration is
// rare (startup, admin API) and lookups are per-request, so jobs live
// behind one RWMutex; each job's serving hot paths are inside its own
// coordinator and never touch the registry lock after routing.
type Registry struct {
	base coord.Config

	mu   sync.RWMutex
	jobs map[string]*Job
	// defaultJob names the tenant the bare /v1/* alias routes to: the
	// first job registered.
	defaultJob string

	// counters is the tenant plane's own set — routing and registry
	// events that belong to no single job (unknown-job 404s, job
	// registrations). Per-job serving counters live in each job's
	// coordinator.
	counters *metrics.CounterSet
}

// NewRegistry creates an empty job registry. base is the server-wide
// default configuration (flag-derived); each job spec overlays it.
func NewRegistry(base coord.Config) *Registry {
	r := &Registry{
		base:     base,
		jobs:     make(map[string]*Job),
		counters: metrics.NewCounterSet(),
	}
	// Pre-register the routing counters (the same zeroed-keys contract
	// each job's coordinator honors for its own set).
	for _, name := range []string{"jobs_registered", "route_unknown_job", "auth_rejected_token"} {
		r.counters.Counter(name)
	}
	return r
}

// Register validates the spec, starts the job's coordinator, and adds
// it to the routing table. The first job registered becomes the default
// tenant behind the bare /v1/* alias. Per the zeroed-keys contract,
// every per-job serving counter exists (at zero) the moment Register
// returns, so /v1/jobs/<job>/status is fully shaped before first
// traffic.
func (r *Registry) Register(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg, err := spec.coordConfig(r.base)
	if err != nil {
		return nil, err
	}
	// Reserve the name before paying coordinator startup, then insert
	// for real after; two concurrent registrations of one name must not
	// both boot a coordinator (the loser's model store dir could clash).
	r.mu.Lock()
	if _, dup := r.jobs[spec.Name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("tenant: job %q already registered", spec.Name)
	}
	r.jobs[spec.Name] = nil // reservation
	r.mu.Unlock()
	c, err := coord.New(cfg)
	if err != nil {
		r.mu.Lock()
		delete(r.jobs, spec.Name)
		r.mu.Unlock()
		return nil, fmt.Errorf("tenant: job %s: %w", spec.Name, err)
	}
	job := &Job{Spec: spec, Coord: c, handler: coord.NewServer(c)}
	r.mu.Lock()
	r.jobs[spec.Name] = job
	if r.defaultJob == "" {
		r.defaultJob = spec.Name
	}
	r.mu.Unlock()
	r.counters.Counter("jobs_registered").Inc()
	return job, nil
}

// Get returns a registered job by name (nil for unknown names and
// not-yet-finished registrations).
func (r *Registry) Get(name string) *Job {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.jobs[name]
}

// Default returns the default tenant (the first job registered), or nil
// when the registry is empty.
func (r *Registry) Default() *Job {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.jobs[r.defaultJob]
}

// Jobs returns the registered jobs sorted by name.
func (r *Registry) Jobs() []*Job {
	r.mu.RLock()
	out := make([]*Job, 0, len(r.jobs))
	for _, j := range r.jobs {
		if j != nil {
			out = append(out, j)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, k int) bool { return out[i].Spec.Name < out[k].Spec.Name })
	return out
}

// Counters exposes the tenant plane's routing counters.
func (r *Registry) Counters() *metrics.CounterSet { return r.counters }

// Close stops every job's coordinator.
func (r *Registry) Close() {
	for _, j := range r.Jobs() {
		j.Coord.Close()
	}
}
