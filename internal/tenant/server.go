package tenant

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"flint/internal/coord"
	"flint/internal/metrics"
)

// hdrJobToken is the non-standard token header for clients that can't
// set Authorization (some embedded HTTP stacks reserve it).
const hdrJobToken = "X-Flint-Job-Token"

// JobStatus is one job's row in the fleet status rollup: enough to see
// every tenant's training progress at a glance without the per-job
// status page's full scheduler and counter detail.
type JobStatus struct {
	Name    string      `json:"name"`
	Mode    coord.Mode  `json:"mode"`
	Model   string      `json:"model_kind"`
	Version int         `json:"version"`
	Round   uint64      `json:"round"`
	Phase   coord.Phase `json:"phase"`
	// RoundsCommitted / UpdatesAggregated are the job's lifetime
	// training throughput.
	RoundsCommitted   int64 `json:"rounds_committed"`
	UpdatesAggregated int64 `json:"updates_aggregated"`
	// DevicesKnown/Live are the job's registry census; MaxDevices its
	// quota (0 = unlimited) and QuotaRejected how many check-ins the
	// quota turned away.
	DevicesKnown  int   `json:"devices_known"`
	DevicesLive   int   `json:"devices_live"`
	MaxDevices    int   `json:"max_devices,omitempty"`
	QuotaRejected int64 `json:"quota_rejected,omitempty"`
	// Protected reports whether the job requires a bearer token (the
	// token itself is never serialized); AuthRejected counts requests
	// that failed it.
	Protected    bool  `json:"protected,omitempty"`
	AuthRejected int64 `json:"auth_rejected,omitempty"`
}

// FleetRollup is the cross-job section of /v1/status: per-plane sums
// over every tenant.
type FleetRollup struct {
	Jobs              int   `json:"jobs"`
	DevicesKnown      int   `json:"devices_known"`
	DevicesLive       int   `json:"devices_live"`
	RoundsCommitted   int64 `json:"rounds_committed"`
	UpdatesAggregated int64 `json:"updates_aggregated"`
	// Counters is the key-wise sum of every job's counter set plus the
	// tenant plane's routing counters.
	Counters map[string]int64 `json:"counters"`
}

// StatusReport is the multi-tenant /v1/status payload. It embeds the
// default job's full report — JSON-inlined, so single-tenant dashboards
// and the fleet generator keep reading the fields they always have —
// and adds the per-job rollup sections.
type StatusReport struct {
	coord.StatusReport
	// DefaultJob names the tenant the embedded report (and every bare
	// /v1/* request) describes.
	DefaultJob string `json:"default_job"`
	// Jobs summarizes every tenant by name.
	Jobs map[string]JobStatus `json:"jobs"`
	// Fleet sums training progress and counters across tenants.
	Fleet FleetRollup `json:"fleet"`
}

// Server routes the multi-tenant /v1 API:
//
//	POST /v1/jobs                admin: register a job from a spec body
//	GET  /v1/jobs                list job summaries
//	ANY  /v1/jobs/<job>/<rest>   auth, then the job's /v1/<rest> handler
//	GET  /v1/jobs/<job>          the job's summary row
//	GET  /v1/status              fleet rollup (embeds the default job)
//	ANY  /v1/<rest>              default-job alias (backward compat)
//
// Auth is per-job: a job with a token rejects wrong/missing tokens with
// 401 before any coordinator state is touched; unknown job names are
// 404 at the tenant plane.
type Server struct {
	reg *Registry
	// admin enables POST /v1/jobs; off by default so an exposed server
	// doesn't accept spec registration from the fleet network.
	admin bool
}

// NewServer wraps a job registry in the multi-tenant router. admin
// enables the job-registration endpoint.
func NewServer(reg *Registry, admin bool) *Server {
	return &Server{reg: reg, admin: admin}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/v1/jobs":
		s.handleJobs(w, r)
	case strings.HasPrefix(path, "/v1/jobs/"):
		s.routeJob(w, r, strings.TrimPrefix(path, "/v1/jobs/"))
	case path == "/v1/status" && r.Method == http.MethodGet:
		s.handleStatus(w, r)
	default:
		// Default-job alias: the bare /v1 API a single-tenant client
		// speaks, including its auth when the default job carries one.
		job := s.reg.Default()
		if job == nil {
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no jobs registered"))
			return
		}
		if !s.authed(w, r, job) {
			return
		}
		job.handler.ServeHTTP(w, r)
	}
}

// routeJob authenticates and delegates one /v1/jobs/<job>/<rest>
// request to the job's coordinator handler, rewriting the path to the
// bare /v1/<rest> form the handler's mux understands.
func (s *Server) routeJob(w http.ResponseWriter, r *http.Request, sub string) {
	name, rest, _ := strings.Cut(sub, "/")
	job := s.reg.Get(name)
	if job == nil {
		s.reg.counters.Counter("route_unknown_job").Inc()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", name))
		return
	}
	if !s.authed(w, r, job) {
		return
	}
	if rest == "" {
		// GET /v1/jobs/<job> — the summary row, handy for scripts.
		writeJSON(w, http.StatusOK, s.jobStatus(job))
		return
	}
	// Shallow-clone with a rewritten path (the http.StripPrefix idiom):
	// the delegate must not observe the tenant prefix, and the original
	// request must stay untouched for middleware up-stack.
	r2 := new(http.Request)
	*r2 = *r
	r2.URL = new(url.URL)
	*r2.URL = *r.URL
	r2.URL.Path = "/v1/" + rest
	r2.URL.RawPath = ""
	job.handler.ServeHTTP(w, r2)
}

// authed enforces the job's bearer token (when it has one). Wrong or
// missing tokens are rejected with 401 and counted against the job —
// cross-tenant probing shows up on the tenant being probed — plus the
// tenant plane's own rollup counter.
func (s *Server) authed(w http.ResponseWriter, r *http.Request, job *Job) bool {
	want := job.Spec.Token
	if want == "" {
		return true
	}
	got := r.Header.Get(hdrJobToken)
	if h := r.Header.Get("Authorization"); h != "" {
		if tok, ok := strings.CutPrefix(h, "Bearer "); ok {
			got = tok
		}
	}
	if subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1 {
		return true
	}
	job.Coord.Counters().Counter("auth_rejected_token").Inc()
	s.reg.counters.Counter("auth_rejected_token").Inc()
	w.Header().Set("WWW-Authenticate", `Bearer realm="flint-job"`)
	writeError(w, http.StatusUnauthorized, fmt.Errorf("job %q requires a valid bearer token", job.Spec.Name))
	return false
}

// handleJobs serves the /v1/jobs collection: GET lists summaries, POST
// (admin only) registers a new job from a JobSpec body.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		jobs := s.reg.Jobs()
		out := make([]JobStatus, 0, len(jobs))
		for _, j := range jobs {
			out = append(out, s.jobStatus(j))
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		if !s.admin {
			writeError(w, http.StatusForbidden, fmt.Errorf("job registration is disabled (start the server with -admin)"))
			return
		}
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
			return
		}
		job, err := s.reg.Register(spec)
		if err != nil {
			code := http.StatusBadRequest
			if strings.Contains(err.Error(), "already registered") {
				code = http.StatusConflict
			}
			writeError(w, code, err)
			return
		}
		writeJSON(w, http.StatusCreated, s.jobStatus(job))
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// jobStatus condenses one job's full status into its rollup row.
func (s *Server) jobStatus(j *Job) JobStatus {
	st := j.Coord.Status()
	return JobStatus{
		Name:              j.Spec.Name,
		Mode:              st.Mode,
		Model:             string(st.ModelKind),
		Version:           st.Version,
		Round:             st.Round.ID,
		Phase:             st.Round.Phase,
		RoundsCommitted:   st.Counters["rounds_committed"],
		UpdatesAggregated: st.Counters["updates_aggregated"],
		DevicesKnown:      st.Devices.Known,
		DevicesLive:       st.Devices.Live,
		MaxDevices:        j.Spec.MaxDevices,
		QuotaRejected:     st.Counters["checkin_rejected_quota"],
		Protected:         j.Spec.Token != "",
		AuthRejected:      st.Counters["auth_rejected_token"],
	}
}

// handleStatus renders the fleet rollup: the default job's full report
// inlined for backward compatibility, plus every job's summary row and
// the cross-tenant sums. O(sum of fleets) — a dashboard endpoint, like
// every coordinator's own status page.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	jobs := s.reg.Jobs()
	if len(jobs) == 0 {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no jobs registered"))
		return
	}
	def := s.reg.Default()
	rep := StatusReport{
		StatusReport: def.Coord.Status(),
		DefaultJob:   def.Spec.Name,
		Jobs:         make(map[string]JobStatus, len(jobs)),
	}
	snaps := make([]map[string]int64, 0, len(jobs)+1)
	for _, j := range jobs {
		js := s.jobStatus(j)
		rep.Jobs[j.Spec.Name] = js
		rep.Fleet.DevicesKnown += js.DevicesKnown
		rep.Fleet.DevicesLive += js.DevicesLive
		rep.Fleet.RoundsCommitted += js.RoundsCommitted
		rep.Fleet.UpdatesAggregated += js.UpdatesAggregated
		snaps = append(snaps, j.Coord.Counters().Snapshot())
	}
	snaps = append(snaps, s.reg.counters.Snapshot())
	rep.Fleet.Jobs = len(jobs)
	rep.Fleet.Counters = metrics.Rollup(snaps...)
	writeJSON(w, http.StatusOK, rep)
}

// ListenAndServe runs the multi-tenant API on addr until the server
// errors, mirroring coord.Server.ListenAndServe's timeouts.
func ListenAndServe(addr string, h http.Handler) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}
