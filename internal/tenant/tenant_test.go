package tenant

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flint/internal/codec"
	"flint/internal/coord"
	"flint/internal/model"
	"flint/internal/tensor"
	"flint/internal/transport"
)

// testBase is a small sync base config every spec overlays in tests.
func testBase() coord.Config {
	return coord.Config{
		Mode:          coord.ModeSync,
		ModelKind:     model.KindA,
		Seed:          1,
		TargetUpdates: 3,
		Quorum:        2,
		OverCommit:    2,
		RoundDeadline: time.Minute,
		QueueDepth:    64,
	}
}

func testInfo(id int64) coord.DeviceInfo {
	return coord.DeviceInfo{ID: id, Model: "Pixel-6", Platform: "Android",
		WiFi: true, BatteryHigh: true, ModernOS: true, SessionSec: 3600, Weight: 10}
}

// newTestPlane builds a registry with the given specs and an httptest
// server over its router.
func newTestPlane(t *testing.T, admin bool, specs ...JobSpec) (*Registry, *httptest.Server) {
	t.Helper()
	reg := NewRegistry(testBase())
	t.Cleanup(reg.Close)
	for _, sp := range specs {
		if _, err := reg.Register(sp); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(NewServer(reg, admin))
	t.Cleanup(ts.Close)
	return reg, ts
}

// doReq issues one request and decodes the JSON reply into out (when
// non-nil), returning the status code.
func doReq(t *testing.T, method, url, token string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestJobRoutingAndAuth pins the tenant router's isolation contract:
// unknown jobs 404 at the tenant plane, a protected job rejects wrong
// and missing tokens with 401 (counted against the probed job), both
// token carriers work, and the bare /v1/* alias reaches the default job
// with its own auth applied.
func TestJobRoutingAndAuth(t *testing.T) {
	reg, ts := newTestPlane(t, false,
		JobSpec{Name: "alpha"},
		JobSpec{Name: "beta", Token: "s3cret"},
	)

	// The open job's status is reachable with no credentials.
	if code := doReq(t, "GET", ts.URL+"/v1/jobs/alpha/status", "", nil, nil); code != 200 {
		t.Fatalf("alpha status = %d, want 200", code)
	}
	// Unknown job: 404 at the tenant plane, before any coordinator.
	if code := doReq(t, "GET", ts.URL+"/v1/jobs/nosuch/status", "", nil, nil); code != 404 {
		t.Fatalf("unknown job = %d, want 404", code)
	}
	if got := reg.Counters().Counter("route_unknown_job").Value(); got != 1 {
		t.Fatalf("route_unknown_job = %d, want 1", got)
	}

	// Missing and wrong tokens are both 401; the probed job counts them.
	beta := reg.Get("beta")
	for _, token := range []string{"", "wrong", "s3cret-almost"} {
		if code := doReq(t, "GET", ts.URL+"/v1/jobs/beta/status", token, nil, nil); code != 401 {
			t.Fatalf("beta with token %q = %d, want 401", token, code)
		}
	}
	if got := beta.Coord.Counters().Counter("auth_rejected_token").Value(); got != 3 {
		t.Fatalf("beta auth_rejected_token = %d, want 3", got)
	}
	if got := reg.Counters().Counter("auth_rejected_token").Value(); got != 3 {
		t.Fatalf("tenant auth_rejected_token rollup = %d, want 3", got)
	}
	// alpha's counters stay clean: rejections land on the tenant probed.
	if got := reg.Get("alpha").Coord.Counters().Counter("auth_rejected_token").Value(); got != 0 {
		t.Fatalf("alpha auth_rejected_token = %d, want 0", got)
	}

	// The right token works through both carriers.
	if code := doReq(t, "GET", ts.URL+"/v1/jobs/beta/status", "s3cret", nil, nil); code != 200 {
		t.Fatalf("beta with bearer token = %d, want 200", code)
	}
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/beta/status", nil)
	req.Header.Set(hdrJobToken, "s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("beta with %s = %d, want 200", hdrJobToken, resp.StatusCode)
	}

	// Bare /v1/* aliases the default job (alpha, first registered): a
	// check-in lands in alpha's registry, not beta's.
	var ci coord.CheckInResponse
	if code := doReq(t, "POST", ts.URL+"/v1/checkin", "",
		coord.CheckInRequest{DeviceID: 7, Model: "Pixel-6", Platform: "Android",
			WiFi: true, BatteryHigh: true, SessionSec: 3600, Weight: 10}, &ci); code != 200 {
		t.Fatalf("bare checkin = %d, want 200", code)
	}
	if got := reg.Get("alpha").Coord.Status().Devices.Known; got != 1 {
		t.Fatalf("alpha known devices = %d, want 1 (default alias missed)", got)
	}
	if got := beta.Coord.Status().Devices.Known; got != 0 {
		t.Fatalf("beta known devices = %d, want 0", got)
	}
}

// TestDefaultAliasCarriesAuth pins that a tokened default job protects
// the bare /v1/* paths too — the alias is a route, not a bypass.
func TestDefaultAliasCarriesAuth(t *testing.T) {
	_, ts := newTestPlane(t, false, JobSpec{Name: "solo", Token: "k"})
	if code := doReq(t, "GET", ts.URL+"/v1/status", "", nil, nil); code != 200 {
		// /v1/status is the fleet rollup, outside per-job auth.
		t.Fatalf("rollup status = %d, want 200", code)
	}
	if code := doReq(t, "GET", ts.URL+"/v1/task", "", nil, nil); code != 401 {
		t.Fatalf("bare task without token = %d, want 401", code)
	}
	if code := doReq(t, "GET", ts.URL+"/v1/jobs/solo/status", "k", nil, nil); code != 200 {
		t.Fatalf("tokened status = %d, want 200", code)
	}
}

// TestQuotaIsolation pins admission isolation: one job's full quota
// rejects new devices with 429 (counted), while the same device IDs
// still join another tenant — registries are per-job namespaces.
func TestQuotaIsolation(t *testing.T) {
	reg, ts := newTestPlane(t, false,
		JobSpec{Name: "small", MaxDevices: 2},
		JobSpec{Name: "open"},
	)
	checkin := func(job string, id int64) int {
		return doReq(t, "POST", ts.URL+"/v1/jobs/"+job+"/checkin", "",
			coord.CheckInRequest{DeviceID: id, Model: "Pixel-6", Platform: "Android",
				WiFi: true, BatteryHigh: true, SessionSec: 3600, Weight: 10}, nil)
	}
	for id := int64(1); id <= 2; id++ {
		if code := checkin("small", id); code != 200 {
			t.Fatalf("small checkin %d = %d, want 200", id, code)
		}
	}
	// Third distinct device: over quota, 429 + Retry-After.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs/small/checkin",
		bytes.NewReader(mustJSON(t, coord.CheckInRequest{DeviceID: 3, Model: "Pixel-6",
			Platform: "Android", WiFi: true, BatteryHigh: true, SessionSec: 3600, Weight: 10})))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota checkin = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	small := reg.Get("small")
	if got := small.Coord.Counters().Counter("checkin_rejected_quota").Value(); got != 1 {
		t.Fatalf("checkin_rejected_quota = %d, want 1", got)
	}
	if got := small.Coord.Status().Devices.Known; got != 2 {
		t.Fatalf("small known = %d after rejection, want 2", got)
	}
	// A re-check-in of an already-admitted device is not a quota event.
	if code := checkin("small", 2); code != 200 {
		t.Fatalf("re-checkin = %d, want 200", code)
	}
	// The rejected ID (and the admitted ones) all join the open tenant.
	for id := int64(1); id <= 3; id++ {
		if code := checkin("open", id); code != 200 {
			t.Fatalf("open checkin %d = %d, want 200", id, code)
		}
	}
	if got := reg.Get("open").Coord.Status().Devices.Known; got != 3 {
		t.Fatalf("open known = %d, want 3", got)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCountersPreRegistered pins the zeroed-keys contract: the moment a
// job is registered, its status exposes the full serving counter set at
// zero — dashboards see stable keys before first traffic.
func TestCountersPreRegistered(t *testing.T) {
	reg, _ := newTestPlane(t, false, JobSpec{Name: "fresh", MaxDevices: 5, Token: "k"})
	st := reg.Get("fresh").Coord.Status()
	for _, key := range []string{
		"checkin_total", "checkin_rejected_quota", "auth_rejected_token",
		"task_assigned", "task_sent_binary", "task_sent_delta",
		"update_accepted", "rounds_committed", "rounds_abandoned",
		"delta_cache_hits", "delta_base_aged", "devices_swept",
	} {
		v, ok := st.Counters[key]
		if !ok {
			t.Errorf("counter %q missing from a fresh job's status", key)
		} else if v != 0 {
			t.Errorf("counter %q = %d before any traffic, want 0", key, v)
		}
	}
}

// TestAdminRegistration pins the job-registration endpoint: disabled by
// default (403), creates with 201 when enabled, 409 on duplicates, 400
// on invalid specs, and new jobs serve immediately.
func TestAdminRegistration(t *testing.T) {
	_, closed := newTestPlane(t, false, JobSpec{Name: "first"})
	if code := doReq(t, "POST", closed.URL+"/v1/jobs", "", JobSpec{Name: "late"}, nil); code != 403 {
		t.Fatalf("registration on a non-admin server = %d, want 403", code)
	}

	_, ts := newTestPlane(t, true, JobSpec{Name: "first"})
	var row JobStatus
	if code := doReq(t, "POST", ts.URL+"/v1/jobs", "", JobSpec{Name: "late", Mode: "async"}, &row); code != 201 {
		t.Fatalf("admin registration = %d, want 201", code)
	}
	if row.Name != "late" || row.Mode != coord.ModeAsync {
		t.Fatalf("created row = %+v", row)
	}
	if code := doReq(t, "POST", ts.URL+"/v1/jobs", "", JobSpec{Name: "late"}, nil); code != 409 {
		t.Fatalf("duplicate registration = %d, want 409", code)
	}
	if code := doReq(t, "POST", ts.URL+"/v1/jobs", "", JobSpec{Name: "bad name"}, nil); code != 400 {
		t.Fatalf("invalid spec = %d, want 400", code)
	}
	if code := doReq(t, "GET", ts.URL+"/v1/jobs/late/status", "", nil, nil); code != 200 {
		t.Fatalf("new job's status = %d, want 200", code)
	}
	var list []JobStatus
	if code := doReq(t, "GET", ts.URL+"/v1/jobs", "", nil, &list); code != 200 || len(list) != 2 {
		t.Fatalf("job list = %d entries (code %d), want 2 (200)", len(list), code)
	}
}

// TestStatusRollup pins the fleet status shape: the default job's
// report inlined (backward compatibility), one row per job, and summed
// fleet counters.
func TestStatusRollup(t *testing.T) {
	reg, ts := newTestPlane(t, false,
		JobSpec{Name: "a"},
		JobSpec{Name: "b", Token: "hunter2-zz", MaxDevices: 9},
	)
	reg.Get("a").Coord.CheckIn(testInfo(1))
	reg.Get("b").Coord.CheckIn(testInfo(1))
	reg.Get("b").Coord.CheckIn(testInfo(2))

	var st StatusReport
	if code := doReq(t, "GET", ts.URL+"/v1/status", "", nil, &st); code != 200 {
		t.Fatalf("status = %d, want 200", code)
	}
	if st.DefaultJob != "a" {
		t.Fatalf("default job %q, want a", st.DefaultJob)
	}
	// The embedded report is the default job's: one known device.
	if st.Devices.Known != 1 {
		t.Fatalf("inlined devices.known = %d, want 1 (job a)", st.Devices.Known)
	}
	if len(st.Jobs) != 2 {
		t.Fatalf("jobs rollup has %d rows, want 2", len(st.Jobs))
	}
	b := st.Jobs["b"]
	if !b.Protected || b.MaxDevices != 9 || b.DevicesKnown != 2 {
		t.Fatalf("job b row = %+v", b)
	}
	if st.Fleet.Jobs != 2 || st.Fleet.DevicesKnown != 3 {
		t.Fatalf("fleet rollup = %+v", st.Fleet)
	}
	if st.Fleet.Counters["checkin_total"] != 3 {
		t.Fatalf("fleet checkin_total = %d, want 3", st.Fleet.Counters["checkin_total"])
	}
	// The raw JSON must inline the default report's fields at top level
	// (single-tenant dashboards read "round", "devices", "counters").
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var flat map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"round", "devices", "counters", "jobs", "fleet", "default_job"} {
		if _, ok := flat[key]; !ok {
			t.Errorf("/v1/status JSON missing top-level %q", key)
		}
	}
	// Tokens must never serialize.
	if bytes.Contains(mustJSON(t, st), []byte("hunter2-zz")) {
		t.Fatal("status JSON leaks a job token")
	}
}

// TestSpecOverlay pins the inheritance contract: zero fields keep the
// base config, set fields override, and a shrunk target recomputes the
// quorum default instead of inheriting one larger than the target.
func TestSpecOverlay(t *testing.T) {
	base := testBase()
	base.TargetUpdates = 32
	base.Quorum = 20
	base.Transport.DeltaHistory = 6
	reg := NewRegistry(base)
	defer reg.Close()

	job, err := reg.Register(JobSpec{
		Name: "j", Mode: "async", Model: "B", TargetUpdates: 4,
		DeltaHistory: 12, LowBW: &CohortSpec{DeltaDepth: 24, Delta: "topk:64"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := job.Coord.Config()
	if cfg.Mode != coord.ModeAsync || cfg.ModelKind != model.KindB {
		t.Fatalf("mode/model = %s/%s", cfg.Mode, cfg.ModelKind)
	}
	if cfg.ModelName != "j" {
		t.Fatalf("model name %q, want job name", cfg.ModelName)
	}
	if cfg.TargetUpdates != 4 || cfg.Quorum > 4 {
		t.Fatalf("target/quorum = %d/%d: shrunk target kept an oversized quorum", cfg.TargetUpdates, cfg.Quorum)
	}
	if got := cfg.Transport.DepthFor(transport.CohortDefault); got != 12 {
		t.Fatalf("default cohort depth = %d, want 12", got)
	}
	if got := cfg.Transport.DepthFor(transport.CohortLowBW); got != 24 {
		t.Fatalf("lowbw cohort depth = %d, want 24", got)
	}
	if cfg.Transport.LowBW.Delta.Kind != codec.KindTopK || cfg.Transport.LowBW.Delta.TopK != 64 {
		t.Fatalf("lowbw delta scheme = %v", cfg.Transport.LowBW.Delta)
	}
	if cfg.RoundDeadline != base.RoundDeadline {
		t.Fatal("unset spec field did not inherit the base")
	}

	// The spec JSON round-trips durations both ways.
	specs, err := LoadSpecs([]byte(`{"jobs":[{"name":"x","round_deadline":"90s"},{"name":"y","round_deadline":4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || time.Duration(specs[0].RoundDeadline) != 90*time.Second ||
		time.Duration(specs[1].RoundDeadline) != 4*time.Second {
		t.Fatalf("LoadSpecs = %+v", specs)
	}
}

// TestMultiJobSnapshotConsistencyUnderCommits extends the broadcast
// plane's concurrency gauntlet across tenants (run with -race): two
// jobs with different model dimensions commit continuously while task
// hammers verify, per job, that every payload rebuilds exactly the
// version its task names — from that job's own store. Any cross-tenant
// bleed (shared ring, mixed cache, torn snapshot) surfaces as a dim
// mismatch or a value off by the per-commit step.
func TestMultiJobSnapshotConsistencyUnderCommits(t *testing.T) {
	base := testBase()
	base.Mode = coord.ModeAsync
	base.TargetUpdates = 2
	base.Quorum = 1
	base.MaxInflight = 1 << 30
	base.StalenessAlpha = 0.5
	base.QueueDepth = 256
	base.KeepVersions = -1
	reg := NewRegistry(base)
	defer reg.Close()

	// Lossless both ways so reconstruction must be exact; distinct
	// models so the two planes cannot alias byte-compatibly.
	lossless := &CohortSpec{Task: "raw64", Update: "raw64", Delta: "raw64"}
	jobs := make([]*Job, 0, 2)
	for _, spec := range []JobSpec{
		{Name: "tenant-a", Model: "A", DeltaHistory: 4, Default: lossless},
		{Name: "tenant-b", Model: "B", DeltaHistory: 4, Default: lossless},
	} {
		job, err := reg.Register(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}

	const (
		hammersPerJob = 2
		targetCommit  = 6
	)
	stop := make(chan struct{})
	errs := make(chan error, 2*hammersPerJob)
	var wg sync.WaitGroup
	var nextID atomic.Int64
	nextID.Store(1000)

	for _, job := range jobs {
		c := job.Coord
		// Two committers per job keep its pipeline busy.
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(c *coord.Coordinator, id int64) {
				defer wg.Done()
				c.CheckIn(testInfo(id))
				for {
					select {
					case <-stop:
						return
					default:
					}
					task, err := c.RequestTask(id)
					if err != nil {
						continue
					}
					delta := tensor.NewVector(task.Dim)
					for j := range delta {
						delta[j] = 1e-4 * float64(j%13+1)
					}
					_ = c.SubmitUpdate(coord.Submission{DeviceID: id, RoundID: task.RoundID,
						BaseVersion: task.BaseVersion, Weight: 10, Delta: delta})
				}
			}(c, int64(w+1))
		}
		// Hammers verify snapshot integrity against the job's own store.
		for h := 0; h < hammersPerJob; h++ {
			wg.Add(1)
			go func(c *coord.Coordinator, name string, seed int64) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					id := nextID.Add(1)
					c.CheckIn(testInfo(id))
					q := coord.TaskQuery{Binary: true}
					if v := c.Version(); v > 1 && (int64(i)+seed)%2 == 0 {
						q.BaseVersion = 1 + int(seed+int64(i))%v
					}
					task, err := c.RequestTaskWith(id, q)
					if err != nil {
						continue
					}
					m, err := c.Store().Get(name, task.BaseVersion)
					if err != nil {
						errs <- fmt.Errorf("job %s: store missing v%d: %v", name, task.BaseVersion, err)
						return
					}
					want := m.Params()
					var got tensor.Vector
					if task.DeltaBase > 0 {
						bm, err := c.Store().Get(name, task.DeltaBase)
						if err != nil {
							errs <- fmt.Errorf("job %s: delta base v%d missing: %v", name, task.DeltaBase, err)
							return
						}
						got, _, err = codec.ApplyDelta(bm.Params(), task.EncodedParams)
						if err != nil {
							errs <- fmt.Errorf("job %s: apply delta: %v", name, err)
							return
						}
					} else {
						got, _, err = codec.Decode(task.EncodedParams)
						if err != nil {
							errs <- fmt.Errorf("job %s: decode: %v", name, err)
							return
						}
					}
					if len(got) != len(want) {
						errs <- fmt.Errorf("job %s: payload dim %d, want %d (cross-tenant bleed?)", name, len(got), len(want))
						return
					}
					for j := range want {
						if d := got[j] - want[j]; d > 1e-12 || d < -1e-12 {
							errs <- fmt.Errorf("job %s v%d (delta base %d): payload[%d] = %g, want %g",
								name, task.BaseVersion, task.DeltaBase, j, got[j], want[j])
							return
						}
					}
				}
			}(c, job.Spec.Name, int64(h))
		}
	}

	deadline := time.Now().Add(90 * time.Second)
	committed := func() bool {
		for _, job := range jobs {
			if job.Coord.Version() < 1+targetCommit {
				return false
			}
		}
		return true
	}
	for !committed() && time.Now().Before(deadline) {
		select {
		case err := <-errs:
			close(stop)
			wg.Wait()
			t.Fatal(err)
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	for _, job := range jobs {
		if v := job.Coord.Version(); v < 1+targetCommit {
			t.Fatalf("job %s: only %d commits under load, want >= %d", job.Spec.Name, v-1, targetCommit)
		}
	}
}
