// Package availability implements the paper's device-availability tooling
// (§3.2, §4.1): generating per-client availability traces from session logs,
// applying participation criteria (device state, compute capability, user
// attributes), and reporting the Table 1 eligibility fractions and the Fig 2
// weekly fluctuation series.
//
// LinkedIn's session logs are proprietary; the generator here produces a
// synthetic log with the published structure — strong diurnal and weekly
// periodicity, tail-heavy session durations, and device-state marginals
// matching Table 1 (WiFi 70%, battery≥80% 34%, modern OS 93%).
package availability

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flint/internal/device"
)

// Session is one processed foreground session: a window during which the
// device could participate in FL, stamped with the device-state attributes
// the criteria filter on. Times are seconds from log start.
type Session struct {
	ClientID    int64
	Device      string
	Start, End  float64
	WiFi        bool
	BatteryHigh bool // battery level >= 80%
	ModernOS    bool // OS released after Sept 2019 (criterion C)
}

// Duration returns the session length in seconds.
func (s Session) Duration() float64 { return s.End - s.Start }

// LogConfig drives the synthetic session-log generator.
type LogConfig struct {
	Clients int
	Days    int
	// SessionsPerDay is the weekday mean per client; actual counts follow
	// a Poisson-like draw modulated by the diurnal and weekly curves.
	SessionsPerDay float64
	// MedianSessionSec is the median foreground session duration;
	// durations are log-normal ("app usage duration is tail-heavy").
	MedianSessionSec float64
	// DurationSigma is the log-normal shape of session durations.
	DurationSigma float64
	// WiFiProb, BatteryHighProb are the device-state marginals; the
	// per-hour curves modulate around them (±), matching the paper's
	// "empirical probabilities ... over time" used in weighted coin-flips.
	WiFiProb        float64
	BatteryHighProb float64
	// Population supplies device models (and their modern-OS rates).
	Population device.PopulationModel
	Seed       int64
}

// DefaultLogConfig mirrors the ads case study: two weeks of sessions with
// Table 1's marginals.
func DefaultLogConfig(clients int, seed int64) LogConfig {
	return LogConfig{
		Clients:          clients,
		Days:             14,
		SessionsPerDay:   3.0,
		MedianSessionSec: 150,
		DurationSigma:    1.1,
		WiFiProb:         0.70,
		BatteryHighProb:  0.34,
		Population:       device.DefaultPopulation(),
		Seed:             seed,
	}
}

// Validate reports configuration errors.
func (c LogConfig) Validate() error {
	if c.Clients <= 0 {
		return fmt.Errorf("availability: clients must be positive, got %d", c.Clients)
	}
	if c.Days <= 0 {
		return fmt.Errorf("availability: days must be positive, got %d", c.Days)
	}
	if c.SessionsPerDay <= 0 {
		return fmt.Errorf("availability: sessions/day must be positive, got %v", c.SessionsPerDay)
	}
	if c.MedianSessionSec <= 0 {
		return fmt.Errorf("availability: median session must be positive, got %v", c.MedianSessionSec)
	}
	if c.WiFiProb < 0 || c.WiFiProb > 1 || c.BatteryHighProb < 0 || c.BatteryHighProb > 1 {
		return fmt.Errorf("availability: probabilities outside [0,1]")
	}
	return nil
}

// diurnalCurve is the hour-of-day intensity profile (0-23), normalized to
// peak 1.0. Nights are troughs at roughly 1/8 of the evening peak —
// Fig 2's "drops to 15% of the weekly peak" daily shape (time zones and
// night-shift users keep the floor above zero).
var diurnalCurve = [24]float64{
	0.12, 0.10, 0.09, 0.09, 0.10, 0.13,
	0.20, 0.32, 0.50, 0.65, 0.72, 0.78,
	0.82, 0.78, 0.72, 0.70, 0.75, 0.85,
	0.95, 1.00, 0.90, 0.65, 0.38, 0.18,
}

// weekdayFactor scales intensity per day of week (0 = Monday).
var weekdayFactor = [7]float64{1.0, 1.02, 1.0, 0.98, 0.92, 0.72, 0.66}

// wifiHourShift moves WiFi probability up at night (home) and down at
// commute hours.
func wifiHourShift(hour int) float64 {
	switch {
	case hour >= 22 || hour <= 6:
		return +0.18
	case hour >= 7 && hour <= 9, hour >= 16 && hour <= 18:
		return -0.12
	default:
		return 0
	}
}

// batteryHourShift: batteries are high in the morning, low in the evening.
func batteryHourShift(hour int) float64 {
	switch {
	case hour >= 6 && hour <= 10:
		return +0.15
	case hour >= 18 && hour <= 23:
		return -0.12
	default:
		return 0
	}
}

// DiurnalIntensity exposes the hour-of-day intensity profile (0.0–1.0,
// peak 1.0 in the evening) so virtual-time load planes can thin
// procedurally sampled wake-ups against the same curve the trace
// generator uses — a million-device plane cannot materialize a session
// log, but its traffic must still breathe with the same diurnal shape.
// Hours outside 0–23 wrap.
func DiurnalIntensity(hour int) float64 {
	return diurnalCurve[((hour%24)+24)%24]
}

// WeekdayIntensity exposes the day-of-week scaling (0 = Monday), the
// weekly half of the Fig 2 fluctuation shape. Days outside 0–6 wrap.
func WeekdayIntensity(day int) float64 {
	return weekdayFactor[((day%7)+7)%7]
}

// WiFiShift and BatteryShift expose the hour-of-day device-state drifts
// (WiFi up overnight at home, batteries draining into the evening) for
// load planes sampling device state procedurally. Hours wrap as in
// DiurnalIntensity.
func WiFiShift(hour int) float64    { return wifiHourShift(((hour % 24) + 24) % 24) }
func BatteryShift(hour int) float64 { return batteryHourShift(((hour % 24) + 24) % 24) }

// GenerateLog produces the processed session log for the configured
// population. Sessions are sorted by start time.
func GenerateLog(cfg LogConfig) ([]Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	devs, err := cfg.Population.Sample(cfg.Clients)
	if err != nil {
		return nil, err
	}
	var sessions []Session
	for id := 0; id < cfg.Clients; id++ {
		d := devs[id]
		// Per-client engagement multiplier (superusers).
		engage := math.Exp(rng.NormFloat64() * 0.6)
		// Per-client modern-OS draw is sticky across the whole log.
		modern := rng.Float64() < d.Profile.ModernOSProb
		for day := 0; day < cfg.Days; day++ {
			mean := cfg.SessionsPerDay * engage * weekdayFactor[day%7]
			n := poisson(rng, mean)
			for s := 0; s < n; s++ {
				hour := sampleHour(rng)
				start := float64(day)*86400 + float64(hour)*3600 + rng.Float64()*3600
				dur := cfg.MedianSessionSec * math.Exp(rng.NormFloat64()*cfg.DurationSigma)
				sess := Session{
					ClientID:    int64(id),
					Device:      d.Model,
					Start:       start,
					End:         start + dur,
					WiFi:        rng.Float64() < clamp01(cfg.WiFiProb+wifiHourShift(hour)),
					BatteryHigh: rng.Float64() < clamp01(cfg.BatteryHighProb+batteryHourShift(hour)),
					ModernOS:    modern,
				}
				sessions = append(sessions, sess)
			}
		}
	}
	sort.Slice(sessions, func(i, j int) bool {
		if sessions[i].Start != sessions[j].Start {
			return sessions[i].Start < sessions[j].Start
		}
		return sessions[i].ClientID < sessions[j].ClientID
	})
	return sessions, nil
}

// sampleHour draws an hour of day proportional to the diurnal curve.
func sampleHour(rng *rand.Rand) int {
	var total float64
	for _, v := range diurnalCurve {
		total += v
	}
	u := rng.Float64() * total
	var cum float64
	for h, v := range diurnalCurve {
		cum += v
		if u < cum {
			return h
		}
	}
	return 23
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's method is fine at the small means used here.
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// MergeGaps post-processes raw foreground intervals per the paper's rule:
// "short gaps where the app is in the background are subtracted from the
// availability session duration, whereas longer gaps split a session into
// two." Intervals must belong to one client and be sorted by start.
func MergeGaps(intervals []Session, shortGap float64) []Session {
	if len(intervals) == 0 {
		return nil
	}
	out := []Session{intervals[0]}
	for _, iv := range intervals[1:] {
		last := &out[len(out)-1]
		gap := iv.Start - last.End
		if gap <= shortGap && iv.ClientID == last.ClientID {
			// Subtract the short gap: extend the current session.
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}
