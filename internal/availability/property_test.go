package availability

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMergeGapsIdempotent: merging an already-merged log changes nothing.
func TestMergeGapsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var raw []Session
		cursor := 0.0
		for i := 0; i < 20; i++ {
			cursor += rng.Float64() * 100
			dur := rng.Float64()*200 + 1
			raw = append(raw, Session{ClientID: 1, Start: cursor, End: cursor + dur})
			cursor += dur
		}
		once := MergeGaps(raw, 30)
		twice := MergeGaps(once, 30)
		if len(once) != len(twice) {
			t.Fatalf("idempotence violated: %d vs %d sessions", len(once), len(twice))
		}
		for i := range once {
			if once[i] != twice[i] {
				t.Fatal("idempotence violated: sessions differ")
			}
		}
	}
}

// TestMergeGapsPreservesCoverage: every instant covered by an input session
// stays covered after merging (merging only extends or joins).
func TestMergeGapsPreservesCoverage(t *testing.T) {
	raw := []Session{
		{ClientID: 1, Start: 0, End: 10},
		{ClientID: 1, Start: 15, End: 30},
		{ClientID: 1, Start: 100, End: 110},
	}
	merged := MergeGaps(raw, 20)
	covered := func(x float64) bool {
		for _, s := range merged {
			if s.Start <= x && x < s.End {
				return true
			}
		}
		return false
	}
	for _, x := range []float64{0, 5, 9.9, 15, 29, 100, 109} {
		if !covered(x) {
			t.Fatalf("instant %v lost coverage", x)
		}
	}
}

// TestMergeGapsNeverIncreasesCount holds for arbitrary sorted inputs.
func TestMergeGapsNeverIncreasesCount(t *testing.T) {
	f := func(starts []float64) bool {
		var raw []Session
		cursor := 0.0
		for _, s := range starts {
			if s < 0 {
				s = -s
			}
			if s > 1e6 {
				continue
			}
			cursor += s
			raw = append(raw, Session{ClientID: 1, Start: cursor, End: cursor + 10})
			cursor += 10
		}
		return len(MergeGaps(raw, 25)) <= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCriteriaMonotonicity: adding criteria can only shrink the admitted
// set.
func TestCriteriaMonotonicity(t *testing.T) {
	log, err := GenerateLog(DefaultLogConfig(400, 17))
	if err != nil {
		t.Fatal(err)
	}
	prev := len(log)
	chain := []Criteria{
		{RequireWiFi: true},
		{RequireWiFi: true, RequireBatteryHigh: true},
		{RequireWiFi: true, RequireBatteryHigh: true, RequireModernOS: true},
		{RequireWiFi: true, RequireBatteryHigh: true, RequireModernOS: true, MinSessionSec: 120},
	}
	for i, c := range chain {
		got := len(Apply(log, c))
		if got > prev {
			t.Fatalf("criterion %d grew the admitted set: %d > %d", i, got, prev)
		}
		prev = got
	}
}

// TestIntersectionBoundedByMarginals: P(A∩B∩C) <= min of the marginals.
func TestIntersectionBoundedByMarginals(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		log, err := GenerateLog(DefaultLogConfig(500, seed))
		if err != nil {
			t.Fatal(err)
		}
		t1, err := ComputeTable1(log)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []float64{t1.WiFi, t1.Battery, t1.ModernOS} {
			if t1.Intersect > m+1e-12 {
				t.Fatalf("intersection %v exceeds marginal %v", t1.Intersect, m)
			}
		}
	}
}

// TestSeriesNormalization: every bucket lies in [0,1] with at least one 1.
func TestSeriesNormalization(t *testing.T) {
	log, err := GenerateLog(DefaultLogConfig(600, 23))
	if err != nil {
		t.Fatal(err)
	}
	series, err := ComputeSeries(BuildTrace(log), 1800)
	if err != nil {
		t.Fatal(err)
	}
	sawPeak := false
	for _, v := range series.Normalized {
		if v < 0 || v > 1 {
			t.Fatalf("bucket %v outside [0,1]", v)
		}
		if v == 1 {
			sawPeak = true
		}
	}
	if !sawPeak {
		t.Fatal("normalized series must contain its peak")
	}
}

// TestTraceWindowsMatchSessions: BuildTrace must not invent or drop windows.
func TestTraceWindowsMatchSessions(t *testing.T) {
	log, err := GenerateLog(DefaultLogConfig(100, 29))
	if err != nil {
		t.Fatal(err)
	}
	tr := BuildTrace(log)
	if len(tr.Windows()) != len(log) {
		t.Fatalf("trace has %d windows for %d sessions", len(tr.Windows()), len(log))
	}
	var perClient int
	for id := int64(0); id < 100; id++ {
		perClient += len(tr.ClientWindows(id))
	}
	if perClient != len(log) {
		t.Fatalf("per-client windows (%d) disagree with log (%d)", perClient, len(log))
	}
}
