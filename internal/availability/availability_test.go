package availability

import (
	"math"
	"testing"
)

func testLog(t *testing.T, clients int, seed int64) []Session {
	t.Helper()
	log, err := GenerateLog(DefaultLogConfig(clients, seed))
	if err != nil {
		t.Fatal(err)
	}
	if len(log) == 0 {
		t.Fatal("empty log")
	}
	return log
}

func TestGenerateLogBasics(t *testing.T) {
	log := testLog(t, 300, 1)
	horizon := 14.0 * 86400
	for i, s := range log {
		if s.Start < 0 || s.Start > horizon+3600 {
			t.Fatalf("session %d start %v outside log window", i, s.Start)
		}
		if s.End <= s.Start {
			t.Fatalf("session %d non-positive duration", i)
		}
		if s.Device == "" {
			t.Fatal("session missing device")
		}
		if i > 0 && log[i].Start < log[i-1].Start {
			t.Fatal("log must be sorted by start")
		}
	}
}

func TestGenerateLogValidation(t *testing.T) {
	bad := DefaultLogConfig(0, 1)
	if _, err := GenerateLog(bad); err == nil {
		t.Fatal("zero clients must fail")
	}
	b2 := DefaultLogConfig(10, 1)
	b2.Days = 0
	if _, err := GenerateLog(b2); err == nil {
		t.Fatal("zero days must fail")
	}
	b3 := DefaultLogConfig(10, 1)
	b3.WiFiProb = 1.5
	if _, err := GenerateLog(b3); err == nil {
		t.Fatal("bad probability must fail")
	}
}

func TestTable1Marginals(t *testing.T) {
	log := testLog(t, 2000, 7)
	tab, err := ComputeTable1(log)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 1: WiFi 70%, battery 34%, modern OS 93%, A∩B∩C 22%.
	if math.Abs(tab.WiFi-0.70) > 0.05 {
		t.Fatalf("WiFi %v far from 0.70", tab.WiFi)
	}
	if math.Abs(tab.Battery-0.34) > 0.05 {
		t.Fatalf("battery %v far from 0.34", tab.Battery)
	}
	if math.Abs(tab.ModernOS-0.93) > 0.05 {
		t.Fatalf("modern OS %v far from 0.93", tab.ModernOS)
	}
	if math.Abs(tab.Intersect-0.22) > 0.06 {
		t.Fatalf("intersection %v far from 0.22", tab.Intersect)
	}
	if _, err := ComputeTable1(nil); err == nil {
		t.Fatal("empty log must error")
	}
}

func TestCriteriaAdmit(t *testing.T) {
	s := Session{Device: "Pixel-6", WiFi: true, BatteryHigh: true, ModernOS: true, Start: 0, End: 300}
	all := Criteria{RequireWiFi: true, RequireBatteryHigh: true, RequireModernOS: true}
	if !all.Admit(s) {
		t.Fatal("should admit fully-qualified session")
	}
	s2 := s
	s2.WiFi = false
	if all.Admit(s2) {
		t.Fatal("must reject non-WiFi")
	}
	s3 := s
	s3.BatteryHigh = false
	if all.Admit(s3) {
		t.Fatal("must reject low battery")
	}
	s4 := s
	s4.ModernOS = false
	if all.Admit(s4) {
		t.Fatal("must reject old OS")
	}
	compat := Criteria{CompatibleDevices: map[string]bool{"iPhone-13": true}}
	if compat.Admit(s) {
		t.Fatal("must reject incompatible device")
	}
	short := Criteria{MinSessionSec: 600}
	if short.Admit(s) {
		t.Fatal("must reject short session")
	}
}

func TestApplyShrinksLog(t *testing.T) {
	log := testLog(t, 500, 3)
	strict := Apply(log, Criteria{RequireWiFi: true, RequireBatteryHigh: true, RequireModernOS: true})
	if len(strict) == 0 || len(strict) >= len(log) {
		t.Fatalf("criteria should strictly shrink: %d -> %d", len(log), len(strict))
	}
	frac := float64(len(strict)) / float64(len(log))
	if frac < 0.10 || frac > 0.40 {
		t.Fatalf("restrictive scenario keeps %v, paper keeps 22%%", frac)
	}
}

func TestMergeGaps(t *testing.T) {
	base := []Session{
		{ClientID: 1, Start: 0, End: 100},
		{ClientID: 1, Start: 110, End: 200}, // 10s gap: merge
		{ClientID: 1, Start: 500, End: 600}, // 300s gap: split
		{ClientID: 2, Start: 605, End: 700}, // different client: never merge
	}
	out := MergeGaps(base, 30)
	if len(out) != 3 {
		t.Fatalf("got %d sessions, want 3", len(out))
	}
	if out[0].End != 200 {
		t.Fatalf("merged session must extend to 200, got %v", out[0].End)
	}
	if out[1].Start != 500 || out[2].ClientID != 2 {
		t.Fatalf("split/client separation broken: %+v", out)
	}
	if MergeGaps(nil, 10) != nil {
		t.Fatal("empty input must return nil")
	}
}

func TestTraceAndSeries(t *testing.T) {
	log := testLog(t, 1500, 5)
	eligible := Apply(log, Criteria{RequireWiFi: true, RequireBatteryHigh: true, RequireModernOS: true})
	tr := BuildTrace(eligible)
	if tr.NumClients() == 0 || tr.Horizon() <= 0 {
		t.Fatal("empty trace")
	}
	// Windows sorted by start.
	ws := tr.Windows()
	for i := 1; i < len(ws); i++ {
		if ws[i].Start < ws[i-1].Start {
			t.Fatal("trace windows must be sorted")
		}
	}
	// AvailableAt agrees with a window's interior.
	w := ws[0]
	mid := (w.Start + w.End) / 2
	if !tr.AvailableAt(w.ClientID, mid) {
		t.Fatal("client must be available mid-window")
	}
	if tr.AvailableAt(w.ClientID, tr.Horizon()+10) {
		t.Fatal("client must be unavailable past horizon")
	}

	series, err := ComputeSeries(tr, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if series.Peak == 0 {
		t.Fatal("zero peak")
	}
	// Fig 2: strong fluctuation. The paper reports troughs at ~15% of the
	// weekly peak pre-criteria and 14x post-criteria; require at least 4x.
	if r := series.PeakTroughRatio(); r < 4 {
		t.Fatalf("peak/trough ratio %v too flat for Fig 2", r)
	}
	if _, err := ComputeSeries(tr, 0); err == nil {
		t.Fatal("zero bucket must error")
	}
	if _, err := ComputeSeries(BuildTrace(nil), 60); err == nil {
		t.Fatal("empty trace must error")
	}
}

func TestDiurnalShapeInSeries(t *testing.T) {
	// Availability at 3am must be well below availability at 7pm.
	log := testLog(t, 2000, 9)
	tr := BuildTrace(log)
	series, err := ComputeSeries(tr, 3600)
	if err != nil {
		t.Fatal(err)
	}
	// Average the same hour across days.
	hourMean := make([]float64, 24)
	hourN := make([]int, 24)
	for i, v := range series.Normalized {
		h := i % 24
		hourMean[h] += v
		hourN[h]++
	}
	for h := range hourMean {
		if hourN[h] > 0 {
			hourMean[h] /= float64(hourN[h])
		}
	}
	if hourMean[3] >= hourMean[19]*0.5 {
		t.Fatalf("3am availability %v should be far below 7pm %v", hourMean[3], hourMean[19])
	}
}

func TestWeeklyPeriodicityWeekendDip(t *testing.T) {
	log := testLog(t, 3000, 11)
	tr := BuildTrace(log)
	series, err := ComputeSeries(tr, 86400)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Normalized) < 14 {
		t.Fatalf("series too short: %d days", len(series.Normalized))
	}
	weekday := (series.Normalized[0] + series.Normalized[1] + series.Normalized[2]) / 3
	weekend := (series.Normalized[5] + series.Normalized[6]) / 2
	if weekend >= weekday {
		t.Fatalf("weekend %v should dip below weekday %v", weekend, weekday)
	}
}

func TestClientWindowsSorted(t *testing.T) {
	log := testLog(t, 200, 13)
	tr := BuildTrace(log)
	for id := int64(0); id < 200; id++ {
		ws := tr.ClientWindows(id)
		for i := 1; i < len(ws); i++ {
			if ws[i].Start < ws[i-1].Start {
				t.Fatal("client windows must be sorted")
			}
		}
	}
}
