package availability

import (
	"fmt"
	"math"
	"sort"
)

// Criteria is a participation filter over sessions (§3.2): device state
// (WiFi, battery, foreground is implicit in the session log), compute
// capability (a compatible-device list derived from on-device benchmarks),
// and user attributes are composed with AND semantics, as in Table 1's
// A∩B∩C row.
type Criteria struct {
	RequireWiFi        bool
	RequireBatteryHigh bool
	RequireModernOS    bool
	// CompatibleDevices restricts to benchmark-approved device models;
	// nil admits every device (criterion unused).
	CompatibleDevices map[string]bool
	// MinSessionSec drops sessions too short to complete a task's
	// download/train/upload pipeline.
	MinSessionSec float64
}

// Admit reports whether a session passes the criteria.
func (c Criteria) Admit(s Session) bool {
	if c.RequireWiFi && !s.WiFi {
		return false
	}
	if c.RequireBatteryHigh && !s.BatteryHigh {
		return false
	}
	if c.RequireModernOS && !s.ModernOS {
		return false
	}
	if c.CompatibleDevices != nil && !c.CompatibleDevices[s.Device] {
		return false
	}
	if s.Duration() < c.MinSessionSec {
		return false
	}
	return true
}

// Apply filters the log, preserving order.
func Apply(sessions []Session, c Criteria) []Session {
	out := make([]Session, 0, len(sessions))
	for _, s := range sessions {
		if c.Admit(s) {
			out = append(out, s)
		}
	}
	return out
}

// Table1 holds the per-criterion availability fractions of the paper's
// Table 1, measured as the fraction of sessions admitted.
type Table1 struct {
	WiFi      float64 // criterion A
	Battery   float64 // criterion B
	ModernOS  float64 // criterion C
	Intersect float64 // A ∩ B ∩ C
}

// ComputeTable1 measures each criterion and their conjunction on the log.
func ComputeTable1(sessions []Session) (Table1, error) {
	if len(sessions) == 0 {
		return Table1{}, fmt.Errorf("availability: empty session log")
	}
	var t Table1
	n := float64(len(sessions))
	for _, s := range sessions {
		if s.WiFi {
			t.WiFi++
		}
		if s.BatteryHigh {
			t.Battery++
		}
		if s.ModernOS {
			t.ModernOS++
		}
		if s.WiFi && s.BatteryHigh && s.ModernOS {
			t.Intersect++
		}
	}
	t.WiFi /= n
	t.Battery /= n
	t.ModernOS /= n
	t.Intersect /= n
	return t, nil
}

// Window is one availability interval of a client.
type Window struct {
	ClientID   int64
	Device     string
	Start, End float64
}

// Trace is the per-client availability trace the simulator consumes: the
// paper's "pairs of start and end times during which a device can
// participate in FL training".
type Trace struct {
	windows  []Window // sorted by Start
	byClient map[int64][]Window
	horizon  float64
}

// BuildTrace converts an admitted session log into a trace.
func BuildTrace(sessions []Session) *Trace {
	t := &Trace{byClient: make(map[int64][]Window)}
	for _, s := range sessions {
		w := Window{ClientID: s.ClientID, Device: s.Device, Start: s.Start, End: s.End}
		t.windows = append(t.windows, w)
		t.byClient[s.ClientID] = append(t.byClient[s.ClientID], w)
		if s.End > t.horizon {
			t.horizon = s.End
		}
	}
	sort.Slice(t.windows, func(i, j int) bool {
		if t.windows[i].Start != t.windows[j].Start {
			return t.windows[i].Start < t.windows[j].Start
		}
		return t.windows[i].ClientID < t.windows[j].ClientID
	})
	for id := range t.byClient {
		ws := t.byClient[id]
		sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	}
	return t
}

// Windows returns every window sorted by start time.
func (t *Trace) Windows() []Window { return t.windows }

// ClientWindows returns a client's windows sorted by start.
func (t *Trace) ClientWindows(id int64) []Window { return t.byClient[id] }

// NumClients returns the distinct client count.
func (t *Trace) NumClients() int { return len(t.byClient) }

// Horizon returns the end of the last window.
func (t *Trace) Horizon() float64 { return t.horizon }

// AvailableAt reports whether the client has a window covering time x.
func (t *Trace) AvailableAt(id int64, x float64) bool {
	for _, w := range t.byClient[id] {
		if w.Start <= x && x < w.End {
			return true
		}
		if w.Start > x {
			break
		}
	}
	return false
}

// Series is Fig 2's availability-over-time line: per-bucket counts of
// concurrently available devices, normalized to the weekly peak.
type Series struct {
	BucketSec  float64
	Normalized []float64
	Peak       int
}

// ComputeSeries buckets window coverage over [0, horizon).
func ComputeSeries(t *Trace, bucketSec float64) (Series, error) {
	if bucketSec <= 0 {
		return Series{}, fmt.Errorf("availability: bucket must be positive, got %v", bucketSec)
	}
	if t.horizon <= 0 {
		return Series{}, fmt.Errorf("availability: empty trace")
	}
	n := int(math.Ceil(t.horizon / bucketSec))
	counts := make([]int, n)
	for _, w := range t.windows {
		lo := int(w.Start / bucketSec)
		hi := int(w.End / bucketSec)
		if hi >= n {
			hi = n - 1
		}
		for b := lo; b <= hi; b++ {
			counts[b]++
		}
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	s := Series{BucketSec: bucketSec, Peak: peak, Normalized: make([]float64, n)}
	if peak == 0 {
		return s, nil
	}
	for i, c := range counts {
		s.Normalized[i] = float64(c) / float64(peak)
	}
	return s, nil
}

// PeakTroughRatio returns peak/trough over the series, ignoring leading and
// trailing empty buckets; a zero trough counts as the smallest non-zero
// bucket to keep the ratio finite.
func (s Series) PeakTroughRatio() float64 {
	trough := math.Inf(1)
	for _, v := range s.Normalized {
		if v > 0 && v < trough {
			trough = v
		}
	}
	if math.IsInf(trough, 1) || trough == 0 {
		return 0
	}
	return 1 / trough
}
