package codec

import (
	"bytes"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"

	"flint/internal/tensor"
)

func payloadTestVec(rng *rand.Rand, dim int) tensor.Vector {
	v := tensor.NewVector(dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestPayloadAccessorsMatchDecode: At, Materialize, Norm2, and the range
// accessors (AddScaledRange, CopyRange) over arbitrary sub-ranges agree
// exactly with the materializing decoder for every scheme, through both
// ParsePayload and DecodePayloadFrom.
func TestPayloadAccessorsMatchDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dim := range []int{1, 255, 256, 300, 1519} {
		for _, s := range []Scheme{RawF64, F32, Q8, TopK(0), TopK(dim)} {
			v := payloadTestVec(rng, dim)
			blob, err := Encode(v, s)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			want, wantScheme, err := Decode(blob)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			parsed, err := ParsePayload(blob)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			streamed, err := DecodePayloadFrom(bytes.NewReader(blob), dim)
			if err != nil {
				t.Fatalf("stream: %v", err)
			}
			for name, p := range map[string]*Payload{"parsed": parsed, "streamed": streamed} {
				if p.Dim() != dim || p.Scheme() != wantScheme {
					t.Fatalf("%s %v: dim %d scheme %v (want %d %v)", name, s, p.Dim(), p.Scheme(), dim, wantScheme)
				}
				got, err := p.Materialize()
				if err != nil {
					t.Fatalf("%s materialize: %v", name, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s %v: materialize[%d]=%v want %v", name, s, i, got[i], want[i])
					}
					if a := p.At(i); a != want[i] {
						t.Fatalf("%s %v: At(%d)=%v want %v", name, s, i, a, want[i])
					}
				}
				// Norm2 accumulates the identical squares in the identical
				// order, so it is bit-equal to the dense norm.
				if n := p.Norm2(); n != want.Norm2() {
					t.Fatalf("%s %v: Norm2()=%v want %v", name, s, n, want.Norm2())
				}
				// Range kernel over random windows, including chunk-
				// straddling and empty ones.
				for trial := 0; trial < 20; trial++ {
					lo := rng.Intn(dim + 1)
					hi := lo + rng.Intn(dim-lo+1)
					alpha := rng.NormFloat64()
					dst := payloadTestVec(rng, hi-lo)
					ref := dst.Clone()
					ref.AddScaled(alpha, want[lo:hi])
					p.AddScaledRange(dst, alpha, lo, hi)
					for i := range dst {
						if dst[i] != ref[i] {
							t.Fatalf("%s %v [%d:%d): dst[%d]=%v want %v", name, s, lo, hi, i, dst[i], ref[i])
						}
					}
					cr := payloadTestVec(rng, hi-lo) // overwritten, garbage in
					p.CopyRange(cr, lo, hi)
					for i := range cr {
						if cr[i] != want[lo+i] {
							t.Fatalf("%s %v CopyRange[%d:%d): [%d]=%v want %v", name, s, lo, hi, i, cr[i], want[lo+i])
						}
					}
				}
			}
			streamed.Release()
		}
	}
}

// TestPayloadAllFinite: the wire-byte screen agrees with a decode-and-
// scan for clean payloads and flags smuggled NaN/Inf bit patterns in
// every scheme's value region.
func TestPayloadAllFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dim := 600
	v := payloadTestVec(rng, dim)
	for _, s := range []Scheme{RawF64, F32, Q8, TopK(40)} {
		blob, err := Encode(v, s)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		p, err := ParsePayload(blob)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if !p.AllFinite() {
			t.Fatalf("%v: clean payload reported non-finite", s)
		}
	}
	// Corrupt one value per scheme to a NaN/Inf bit pattern, refresh the
	// CRC, and require the screen to catch it.
	poison := func(blob []byte, off int, bits32 uint32, bits64 uint64, wide bool) []byte {
		out := bytes.Clone(blob)
		if wide {
			putU64(out[headerSize+off:], bits64)
		} else {
			putU32(out[headerSize+off:], bits32)
		}
		refreshCRC(out)
		return out
	}
	cases := []struct {
		s    Scheme
		off  func(k int) int // offset into payload of a value word
		wide bool
	}{
		{RawF64, func(int) int { return 8 * 7 }, true},
		{F32, func(int) int { return 4 * 7 }, false},
		{Q8, func(int) int { return 4 }, false},               // first chunk scale
		{TopK(40), func(k int) int { return 4 + 4*k }, false}, // first kept value
	}
	for _, tc := range cases {
		blob, err := Encode(v, tc.s)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		k := tc.s.TopK
		for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			evil := poison(blob, tc.off(k), math.Float32bits(float32(bad)), math.Float64bits(bad), tc.wide)
			p, err := ParsePayload(evil)
			if err != nil {
				t.Fatalf("%v: parse poisoned: %v", tc.s, err)
			}
			if p.AllFinite() {
				t.Fatalf("%v: smuggled %v not caught", tc.s, bad)
			}
		}
	}
}

func putU32(b []byte, x uint32) {
	b[0] = byte(x)
	b[1] = byte(x >> 8)
	b[2] = byte(x >> 16)
	b[3] = byte(x >> 24)
}

func putU64(b []byte, x uint64) {
	putU32(b, uint32(x))
	putU32(b[4:], uint32(x>>32))
}

func refreshCRC(blob []byte) {
	putU32(blob[12:], crc32.ChecksumIEEE(blob[headerSize:]))
}

// TestPayloadReleasePoisons: a released pooled payload must fail loudly
// on later access (the aliasing contract), and Release must be
// idempotent.
func TestPayloadReleasePoisons(t *testing.T) {
	v := payloadTestVec(rand.New(rand.NewSource(1)), 300)
	blob, err := Encode(v, Q8)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	p, err := DecodePayloadFrom(bytes.NewReader(blob), 300)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	p.Release()
	p.Release() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatalf("At on released payload did not panic")
		}
	}()
	_ = p.At(0)
}

// TestDecodePayloadFromReuse: sequential decode/release cycles reuse the
// pooled buffer rather than growing fresh ones — the satellite fix for
// DecodeFrom's previously unreturnable pool handle, observable as near-
// zero per-cycle allocation.
func TestDecodePayloadFromReuse(t *testing.T) {
	v := payloadTestVec(rand.New(rand.NewSource(2)), 4096)
	blob, err := Encode(v, RawF64)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	r := bytes.NewReader(blob)
	avg := testing.AllocsPerRun(200, func() {
		r.Reset(blob)
		p, err := DecodePayloadFrom(r, 4096)
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		p.Release()
	})
	// One Payload struct (+ pool bookkeeping) per cycle is fine; a fresh
	// 32 KiB payload buffer per cycle is the regression this guards.
	if avg > 4 {
		t.Fatalf("DecodePayloadFrom+Release allocates %.1f objects/op; pooled buffer not reused?", avg)
	}
}
