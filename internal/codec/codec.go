// Package codec implements FLINT's versioned binary tensor wire format:
// the one payload encoding shared by model checkpoints (internal/model),
// the versioned store (internal/modelstore), and the live serving protocol
// (the /v1/task broadcast and /v1/update bodies in internal/coord).
//
// A blob is a fixed 16-byte self-describing header followed by a
// scheme-specific payload, all little-endian:
//
//	offset  size  field
//	0       3     magic "FCT" (Flint Codec Tensor)
//	3       1     format version (currently 1)
//	4       1     scheme kind
//	5       1     flags (bit 0: delta frame)
//	6       2     reserved (zero)
//	8       4     element count (uint32)
//	12      4     IEEE CRC-32 of the payload
//	16      —     payload
//
// Four encodings cover the platform's payload spectrum (the paper's §2
// network-cost constraint — cross-device FL must fit app networking
// budgets): lossless raw float64 for checkpoints, float32 for model
// broadcast, int8 per-chunk-scale quantization for uplink deltas, and
// sparse top-k for very large or very sparse updates.
//
// Any scheme can additionally be framed as a *delta*: the payload encodes
// the difference against a base vector the receiver already holds (the
// downlink mirror of the uplink's update deltas). Delta frames are marked
// by a header flag bit; EncodeDelta produces them and ApplyDelta folds one
// into the receiver's base. Decode accepts delta frames too and returns
// the raw difference vector.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"

	"flint/internal/tensor"
)

// Format constants.
const (
	// Magic opens every blob; Version is the current format revision.
	Magic   = "FCT"
	Version = 1

	headerSize = 16

	// MaxDim bounds the element count a blob may declare, so a corrupt
	// or hostile header can't drive an enormous allocation.
	MaxDim = 1 << 24

	// q8Chunk is the quantization block: each chunk of this many
	// elements shares one float32 scale, so outliers only hurt their
	// own block, not the whole vector.
	q8Chunk = 256

	// flagDelta marks a blob whose payload encodes a difference against
	// a base vector rather than the vector itself. It lives in the
	// header's flags byte (offset 5, formerly reserved); pre-delta
	// decoders ignore that byte, which is safe because delta frames are
	// only ever sent to receivers that asked for one.
	flagDelta = 0x01
)

// Kind identifies one payload encoding.
type Kind uint8

// The wire scheme kinds. Values are the protocol; keep them stable.
const (
	KindInvalid Kind = 0
	KindRawF64  Kind = 1 // 8 bytes/elem, lossless
	KindF32     Kind = 2 // 4 bytes/elem, ~2^-24 relative error
	KindQ8      Kind = 3 // ~1 byte/elem, per-chunk scale, |err| ≤ scale/2
	KindTopK    Kind = 4 // 8 bytes/kept elem, exact-as-f32 top-k, rest zero
)

// Scheme selects an encoding plus its parameters.
type Scheme struct {
	Kind Kind
	// TopK is the kept-entry count for KindTopK: on encode 0 means
	// dim/32 (minimum 1); on decode it reports the count found in the
	// blob. Other kinds ignore it.
	TopK int
}

// The parameterless schemes, ready to pass to Encode.
var (
	RawF64 = Scheme{Kind: KindRawF64}
	F32    = Scheme{Kind: KindF32}
	Q8     = Scheme{Kind: KindQ8}
)

// TopK returns a sparse top-k scheme keeping k entries (0 = dim/32).
func TopK(k int) Scheme { return Scheme{Kind: KindTopK, TopK: k} }

// Lossless reports whether decoding recovers the exact input values.
func (s Scheme) Lossless() bool { return s.Kind == KindRawF64 }

// Validate rejects unknown kinds and negative parameters.
func (s Scheme) Validate() error {
	switch s.Kind {
	case KindRawF64, KindF32, KindQ8, KindTopK:
	default:
		return fmt.Errorf("codec: unknown scheme kind %d", s.Kind)
	}
	if s.TopK < 0 {
		return fmt.Errorf("codec: negative top-k %d", s.TopK)
	}
	return nil
}

// String renders the scheme in the form ParseScheme accepts.
func (s Scheme) String() string {
	switch s.Kind {
	case KindRawF64:
		return "raw64"
	case KindF32:
		return "f32"
	case KindQ8:
		return "q8"
	case KindTopK:
		if s.TopK > 0 {
			return "topk:" + strconv.Itoa(s.TopK)
		}
		return "topk"
	}
	return fmt.Sprintf("invalid(%d)", uint8(s.Kind))
}

// ParseScheme converts a CLI/wire string ("raw64", "f32", "q8",
// "topk[:k]") into a Scheme.
func ParseScheme(str string) (Scheme, error) {
	base, arg, hasArg := strings.Cut(str, ":")
	var s Scheme
	switch strings.ToLower(strings.TrimSpace(base)) {
	case "raw64", "raw", "f64", "float64":
		s = RawF64
	case "f32", "float32":
		s = F32
	case "q8", "int8":
		s = Q8
	case "topk", "sparse":
		s = Scheme{Kind: KindTopK}
	default:
		return Scheme{}, fmt.Errorf("codec: unknown scheme %q (want raw64, f32, q8, or topk[:k])", str)
	}
	if hasArg {
		if s.Kind != KindTopK {
			return Scheme{}, fmt.Errorf("codec: scheme %q takes no argument", base)
		}
		k, err := strconv.Atoi(arg)
		if err != nil || k <= 0 {
			return Scheme{}, fmt.Errorf("codec: bad top-k count %q", arg)
		}
		s.TopK = k
	}
	return s, nil
}

// Decode error taxonomy: transports branch on these (a checksum failure
// is retryable corruption; a version mismatch is a deployment skew).
var (
	ErrTooShort = errors.New("codec: blob shorter than header")
	ErrMagic    = errors.New("codec: bad magic (not a tensor blob)")
	ErrVersion  = errors.New("codec: unsupported format version")
	ErrScheme   = errors.New("codec: unknown scheme in header")
	ErrDim      = errors.New("codec: element count out of range")
	ErrPayload  = errors.New("codec: payload length mismatch")
	ErrChecksum = errors.New("codec: payload checksum mismatch")
	ErrNotDelta = errors.New("codec: blob is not a delta frame")
)

// Encode serializes v under the scheme and returns the framed blob.
func Encode(v tensor.Vector, s Scheme) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	dim := len(v)
	if dim > MaxDim {
		return nil, fmt.Errorf("%w: %d elements (max %d)", ErrDim, dim, MaxDim)
	}
	var payload []byte
	switch s.Kind {
	case KindRawF64:
		payload = make([]byte, 8*dim)
		for i, x := range v {
			binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(x))
		}
	case KindF32:
		payload = make([]byte, 4*dim)
		for i, x := range v {
			binary.LittleEndian.PutUint32(payload[4*i:], math.Float32bits(float32(x)))
		}
	case KindQ8:
		payload = encodeQ8(v)
	case KindTopK:
		payload = encodeTopK(v, s.TopK)
	}
	blob := make([]byte, headerSize+len(payload))
	copy(blob, Magic)
	blob[3] = Version
	blob[4] = byte(s.Kind)
	binary.LittleEndian.PutUint32(blob[8:], uint32(dim))
	binary.LittleEndian.PutUint32(blob[12:], crc32.ChecksumIEEE(payload))
	copy(blob[headerSize:], payload)
	return blob, nil
}

// encodeQ8 emits [chunkSize u32][numChunks f32 scales][dim int8 values].
// Each chunk's scale is maxAbs/127; values are round(x/scale) clamped to
// ±127 (the -128 code is reserved), so |x - x̂| ≤ scale/2 plus float32
// rounding of the scale itself.
func encodeQ8(v tensor.Vector) []byte {
	dim := len(v)
	chunks := (dim + q8Chunk - 1) / q8Chunk
	payload := make([]byte, 4+4*chunks+dim)
	binary.LittleEndian.PutUint32(payload, q8Chunk)
	scales := payload[4 : 4+4*chunks]
	vals := payload[4+4*chunks:]
	for c := 0; c < chunks; c++ {
		lo, hi := c*q8Chunk, (c+1)*q8Chunk
		if hi > dim {
			hi = dim
		}
		maxAbs := 0.0
		for _, x := range v[lo:hi] {
			// NaN compares false everywhere, so it never drives the
			// scale; it quantizes to 0 below.
			if a := math.Abs(x); a > maxAbs {
				maxAbs = a
			}
		}
		// Clamp instead of letting float32() overflow to +Inf: an Inf
		// scale would decode every chunk element as 0*Inf = NaN.
		scale := float32(maxAbs / 127)
		if maxAbs/127 > math.MaxFloat32 {
			scale = math.MaxFloat32
		}
		binary.LittleEndian.PutUint32(scales[4*c:], math.Float32bits(scale))
		if scale == 0 {
			continue // chunk is all zeros (vals already zeroed)
		}
		inv := 1 / float64(scale)
		for i, x := range v[lo:hi] {
			q := math.Round(x * inv)
			// The comparisons also catch NaN (both false → q stays NaN
			// only if unclamped), so saturate explicitly before the
			// int8 conversion, whose behavior on non-integers in range
			// is defined but on NaN is not.
			switch {
			case q > 127:
				q = 127
			case q < -127:
				q = -127
			case math.IsNaN(q):
				q = 0
			}
			vals[lo+i] = byte(int8(q))
		}
	}
	return payload
}

// encodeTopK emits [k u32][k u32 ascending indices][k f32 values],
// keeping the k largest-magnitude entries.
func encodeTopK(v tensor.Vector, k int) []byte {
	dim := len(v)
	if k <= 0 {
		k = dim / 32
		if k < 1 {
			k = 1
		}
	}
	if k > dim {
		k = dim
	}
	// Selection runs O(dim log k) with O(k) extra space — a min-heap of
	// the k strongest entries whose root is the weakest kept — instead
	// of sorting a dim-length index slice: at the default k = dim/32 the
	// full sort dominated the encode hot path. "Stronger" is larger
	// magnitude with ties to the smaller index, matching the sort order
	// this replaced, so encodings stay deterministic and byte-identical.
	weaker := func(a, b int) bool {
		ma, mb := math.Abs(v[a]), math.Abs(v[b])
		if ma != mb {
			return ma < mb
		}
		return a > b
	}
	kept := make([]int, 0, k)
	siftDown := func(i int) {
		for {
			child := 2*i + 1
			if child >= len(kept) {
				return
			}
			if r := child + 1; r < len(kept) && weaker(kept[r], kept[child]) {
				child = r
			}
			if !weaker(kept[child], kept[i]) {
				return
			}
			kept[i], kept[child] = kept[child], kept[i]
			i = child
		}
	}
	for i := 0; i < dim; i++ {
		if len(kept) < k {
			kept = append(kept, i)
			for j := len(kept) - 1; j > 0; {
				p := (j - 1) / 2
				if !weaker(kept[j], kept[p]) {
					break
				}
				kept[j], kept[p] = kept[p], kept[j]
				j = p
			}
		} else if weaker(kept[0], i) {
			kept[0] = i
			siftDown(0)
		}
	}
	sort.Ints(kept)
	payload := make([]byte, 4+8*k)
	binary.LittleEndian.PutUint32(payload, uint32(k))
	for i, j := range kept {
		binary.LittleEndian.PutUint32(payload[4+4*i:], uint32(j))
		binary.LittleEndian.PutUint32(payload[4+4*k+4*i:], math.Float32bits(float32(v[j])))
	}
	return payload
}

// EncodeDelta serializes diff — a difference against some base vector the
// receiver already holds — under the scheme and returns the blob with the
// delta flag set. The base's identity (which published version it was)
// travels out of band; the frame only records that its payload is a
// difference, so a delta blob can never be mistaken for a full vector by
// a receiver that checks IsDelta.
func EncodeDelta(diff tensor.Vector, s Scheme) ([]byte, error) {
	blob, err := Encode(diff, s)
	if err != nil {
		return nil, err
	}
	blob[5] |= flagDelta
	return blob, nil
}

// IsDelta reports whether the blob carries the delta-frame flag. It is a
// cheap peek: the blob must at least open with a valid magic for the
// answer to be meaningful, but full validation is left to Decode.
func IsDelta(blob []byte) bool {
	return len(blob) >= headerSize && string(blob[:3]) == Magic && blob[5]&flagDelta != 0
}

// ApplyDelta decodes a delta frame and folds it into base, returning
// base + diff as a fresh vector (base is not mutated) plus the scheme the
// difference was encoded with. The frame's dimension must match the base:
// a delta against a different model shape is a protocol error, not a
// resize.
func ApplyDelta(base tensor.Vector, blob []byte) (tensor.Vector, Scheme, error) {
	diff, s, err := Decode(blob)
	if err != nil {
		return nil, Scheme{}, err
	}
	if !IsDelta(blob) {
		return nil, Scheme{}, ErrNotDelta
	}
	if len(diff) != len(base) {
		return nil, Scheme{}, fmt.Errorf("%w: delta dim %d against base dim %d", ErrPayload, len(diff), len(base))
	}
	out := base.Clone()
	out.Add(diff)
	return out, s, nil
}

// Header peeks a blob's declared element count and scheme without
// checksumming or decoding the payload. Transports use it to reject
// wrong-sized tensors before paying the decode allocation.
func Header(blob []byte) (dim int, s Scheme, err error) {
	if len(blob) < headerSize {
		return 0, Scheme{}, fmt.Errorf("%w: %d bytes", ErrTooShort, len(blob))
	}
	if string(blob[:3]) != Magic {
		return 0, Scheme{}, ErrMagic
	}
	if blob[3] != Version {
		return 0, Scheme{}, fmt.Errorf("%w: %d (want %d)", ErrVersion, blob[3], Version)
	}
	s = Scheme{Kind: Kind(blob[4])}
	if err := s.Validate(); err != nil {
		return 0, Scheme{}, fmt.Errorf("%w: kind %d", ErrScheme, blob[4])
	}
	// Bound the count while still unsigned: on 32-bit platforms a direct
	// int() of a hostile uint32 would go negative, slip past the max
	// check, and panic the decode allocation.
	n := binary.LittleEndian.Uint32(blob[8:])
	if n > MaxDim {
		return 0, Scheme{}, fmt.Errorf("%w: %d elements (max %d)", ErrDim, n, MaxDim)
	}
	return int(n), s, nil
}

// Decode parses a framed blob back into a dense vector and reports the
// scheme it was encoded with. Sparse schemes reconstruct zeros for the
// dropped entries.
func Decode(blob []byte) (tensor.Vector, Scheme, error) {
	dim, s, err := Header(blob)
	if err != nil {
		return nil, Scheme{}, err
	}
	payload := blob[headerSize:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(blob[12:]) {
		return nil, Scheme{}, ErrChecksum
	}
	return decodePayload(payload, dim, s)
}

// decodePayload parses a checksum-verified payload into a dense vector.
// Shared by Decode (whole blob in memory) and DecodeFrom (streamed into a
// pooled buffer).
func decodePayload(payload []byte, dim int, s Scheme) (tensor.Vector, Scheme, error) {
	// Check the payload length against the declared dim BEFORE the
	// dim-sized allocation, so a header-only hostile blob can't buy a
	// MaxDim-element make with 16 bytes on the wire. Top-k is exempt by
	// design — a small sparse payload legitimately describes a huge
	// vector — so transports decoding untrusted top-k must bound the dim
	// via Header first (the coord server compares it to the model dim).
	switch s.Kind {
	case KindRawF64:
		if len(payload) != 8*dim {
			return nil, Scheme{}, fmt.Errorf("%w: raw64 payload %d bytes for dim %d", ErrPayload, len(payload), dim)
		}
	case KindF32:
		if len(payload) != 4*dim {
			return nil, Scheme{}, fmt.Errorf("%w: f32 payload %d bytes for dim %d", ErrPayload, len(payload), dim)
		}
	case KindQ8:
		// Lower bound only (chunk-size u32 + one int8 per element); the
		// exact chunks*4 accounting happens in decodeQ8.
		if len(payload) < 4+dim {
			return nil, Scheme{}, fmt.Errorf("%w: q8 payload %d bytes for dim %d", ErrPayload, len(payload), dim)
		}
	}
	v := tensor.NewVector(dim)
	switch s.Kind {
	case KindRawF64:
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
	case KindF32:
		for i := range v {
			v[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:])))
		}
	case KindQ8:
		if err := decodeQ8(payload, v); err != nil {
			return nil, Scheme{}, err
		}
	case KindTopK:
		k, err := decodeTopK(payload, v)
		if err != nil {
			return nil, Scheme{}, err
		}
		s.TopK = k
	}
	return v, s, nil
}

func decodeQ8(payload []byte, v tensor.Vector) error {
	dim := len(v)
	if len(payload) < 4 {
		return fmt.Errorf("%w: q8 payload missing chunk size", ErrPayload)
	}
	chunk := int(binary.LittleEndian.Uint32(payload))
	if chunk <= 0 || chunk > MaxDim {
		return fmt.Errorf("%w: q8 chunk size %d", ErrPayload, chunk)
	}
	chunks := 0
	if dim > 0 {
		chunks = (dim + chunk - 1) / chunk
	}
	if len(payload) != 4+4*chunks+dim {
		return fmt.Errorf("%w: q8 payload %d bytes for dim %d chunk %d", ErrPayload, len(payload), dim, chunk)
	}
	scales := payload[4 : 4+4*chunks]
	vals := payload[4+4*chunks:]
	for c := 0; c < chunks; c++ {
		scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(scales[4*c:])))
		lo, hi := c*chunk, (c+1)*chunk
		if hi > dim {
			hi = dim
		}
		for i := lo; i < hi; i++ {
			v[i] = float64(int8(vals[i])) * scale
		}
	}
	return nil
}

// payloadPool recycles DecodeFrom's payload scratch buffers: a server
// decoding one update per device per round reuses a handful of buffers
// grown to the wire payload size instead of allocating (and growing) a
// fresh one per request the way io.ReadAll does.
var payloadPool = sync.Pool{New: func() any { return new([]byte) }}

// DecodeFrom reads exactly one framed blob from r and decodes it,
// streaming: the 16-byte header is read and validated first, the
// scheme-specific payload length is derived from it, and only then is the
// payload read — into a pooled scratch buffer of exactly that size, which
// is returned to the pool before DecodeFrom returns. A wantDim > 0
// requires the header's element count to equal it, rejecting wrong-sized
// tensors before any payload byte is read or allocated (0 accepts any
// in-range count). Bytes after the frame are left unread in r.
//
// Callers that want the wire bytes themselves — and control over when the
// pooled buffer goes back — use DecodePayloadFrom and Release instead;
// DecodeFrom is the materializing wrapper over it.
//
// Read errors from r (e.g. an http.MaxBytesError from a bounded body) are
// wrapped with %w so transports can branch on them.
func DecodeFrom(r io.Reader, wantDim int) (tensor.Vector, Scheme, error) {
	p, err := DecodePayloadFrom(r, wantDim)
	if err != nil {
		return nil, Scheme{}, err
	}
	defer p.Release()
	v, err := p.Materialize()
	if err != nil {
		return nil, Scheme{}, err
	}
	return v, p.scheme, nil
}

// payloadChunk bounds how much readPayload allocates ahead of bytes that
// have actually arrived when the declared length is untrusted.
const payloadChunk = 1 << 20

// readPayload fills the pooled buffer at *bufp with plen payload bytes
// from r (after the already-consumed prefix) and returns the filled
// slice, leaving the grown buffer in *bufp for reuse. When the caller
// pre-validated the length against a known dimension (trusted), the
// buffer is sized up front in one step. Otherwise the length is only a
// header claim, so the buffer grows at most payloadChunk ahead of bytes
// that have actually arrived — a 16-byte hostile header can't buy a
// MaxDim-sized allocation without really sending the payload (the
// streaming mirror of Decode's length-before-alloc check).
func readPayload(r io.Reader, bufp *[]byte, plen int, prefix []byte, trusted bool) ([]byte, error) {
	payload := (*bufp)[:0]
	if trusted {
		payload = slices.Grow(payload, plen)
	}
	payload = append(payload, prefix...)
	for len(payload) < plen {
		n := min(plen-len(payload), payloadChunk)
		start := len(payload)
		payload = slices.Grow(payload, n)[:start+n]
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			*bufp = payload[:0]
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("%w: stream ended inside payload (want %d bytes)", ErrPayload, plen)
			}
			return nil, fmt.Errorf("codec: read payload: %w", err)
		}
	}
	*bufp = payload[:0]
	return payload, nil
}

// readPrefix fills p with a payload's leading length field, mapping a
// short stream to ErrPayload.
func readPrefix(r io.Reader, p []byte) error {
	if _, err := io.ReadFull(r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: stream ended inside payload length", ErrPayload)
		}
		return fmt.Errorf("codec: read payload: %w", err)
	}
	return nil
}

func decodeTopK(payload []byte, v tensor.Vector) (int, error) {
	dim := len(v)
	if len(payload) < 4 {
		return 0, fmt.Errorf("%w: topk payload missing count", ErrPayload)
	}
	k := int(binary.LittleEndian.Uint32(payload))
	if k > dim {
		return 0, fmt.Errorf("%w: topk count %d exceeds dim %d", ErrPayload, k, dim)
	}
	if len(payload) != 4+8*k {
		return 0, fmt.Errorf("%w: topk payload %d bytes for k %d", ErrPayload, len(payload), k)
	}
	prev := -1
	for i := 0; i < k; i++ {
		j := int(binary.LittleEndian.Uint32(payload[4+4*i:]))
		if j >= dim || j <= prev {
			return 0, fmt.Errorf("%w: topk index %d (dim %d, prev %d)", ErrPayload, j, dim, prev)
		}
		prev = j
		v[j] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[4+4*k+4*i:])))
	}
	return k, nil
}
