package codec

import (
	"testing"

	"flint/internal/tensor"
)

// FuzzDecode hammers the header/payload validation: arbitrary bytes must
// never panic, and any blob that decodes successfully must describe a
// self-consistent (scheme, dim) pair that re-encodes cleanly.
func FuzzDecode(f *testing.F) {
	seed := tensor.Vector{0.5, -1.25, 0, 3e-9, 1e6, -0.007, 42}
	for _, s := range []Scheme{RawF64, F32, Q8, TopK(3)} {
		blob, err := Encode(seed, s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)-3]) // truncated payload
		f.Add(blob[:12])          // truncated header
		corrupt := append([]byte(nil), blob...)
		corrupt[17] ^= 0x55
		f.Add(corrupt)
	}
	f.Add([]byte("FCT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		v, s, err := Decode(b)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("decoded invalid scheme %v: %v", s, err)
		}
		if s.Kind == KindTopK && s.TopK > len(v) {
			t.Fatalf("topk count %d exceeds dim %d", s.TopK, len(v))
		}
		if _, err := Encode(v, s); err != nil {
			t.Fatalf("re-encode of decoded vector failed: %v", err)
		}
	})
}
