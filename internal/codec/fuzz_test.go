package codec

import (
	"testing"

	"flint/internal/tensor"
)

// FuzzDecode hammers the header/payload validation: arbitrary bytes must
// never panic, and any blob that decodes successfully must describe a
// self-consistent (scheme, dim) pair that re-encodes cleanly.
func FuzzDecode(f *testing.F) {
	seed := tensor.Vector{0.5, -1.25, 0, 3e-9, 1e6, -0.007, 42}
	for _, s := range []Scheme{RawF64, F32, Q8, TopK(3)} {
		blob, err := Encode(seed, s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)-3]) // truncated payload
		f.Add(blob[:12])          // truncated header
		corrupt := append([]byte(nil), blob...)
		corrupt[17] ^= 0x55
		f.Add(corrupt)
	}
	f.Add([]byte("FCT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		v, s, err := Decode(b)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("decoded invalid scheme %v: %v", s, err)
		}
		if s.Kind == KindTopK && s.TopK > len(v) {
			t.Fatalf("topk count %d exceeds dim %d", s.TopK, len(v))
		}
		if _, err := Encode(v, s); err != nil {
			t.Fatalf("re-encode of decoded vector failed: %v", err)
		}
	})
}

// FuzzApplyDelta hammers the delta frame: arbitrary bytes applied to a
// fixed base must never panic, a successful apply must have matched the
// base's dimension and carried the delta flag, and the result must be
// exactly base + decoded diff.
func FuzzApplyDelta(f *testing.F) {
	base := tensor.Vector{1, -2, 0.5, 3e4, -7e-3, 0, 11, 0.25}
	diff := tensor.Vector{0.1, 0.2, -0.3, 1, -1, 0.004, -12, 0}
	for _, s := range []Scheme{RawF64, F32, Q8, TopK(2)} {
		blob, err := EncodeDelta(diff, s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)-2]) // truncated payload
		unflagged, err := Encode(diff, s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(unflagged) // full frame: must be refused, not applied
		short, err := EncodeDelta(diff[:3], s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(short) // wrong dimension for the base
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		got, s, err := ApplyDelta(base, b)
		if err != nil {
			return
		}
		if !IsDelta(b) {
			t.Fatal("ApplyDelta accepted a blob without the delta flag")
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("applied invalid scheme %v: %v", s, err)
		}
		if len(got) != len(base) {
			t.Fatalf("applied dim %d, base dim %d", len(got), len(base))
		}
		d, _, err := Decode(b)
		if err != nil {
			t.Fatalf("blob applied but does not decode: %v", err)
		}
		for i := range got {
			if want := base[i] + d[i]; got[i] != want && !(got[i] != got[i] && want != want) {
				t.Fatalf("apply[%d] = %g, want base+diff = %g", i, got[i], want)
			}
		}
	})
}
