package codec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"flint/internal/tensor"
)

// Payload is a decoded-header, checksum-verified, structurally validated
// view of one blob's wire payload that has NOT been materialized into a
// dense vector. It is the zero-copy half of the codec: aggregation kernels
// read coordinate ranges straight out of the wire bytes (AddScaledRange),
// so the ingest→commit path never pays the per-update full-dim
// make([]float64, dim) that Decode does.
//
// A Payload produced by DecodePayloadFrom owns a pooled buffer; the holder
// must call Release exactly when done with it (Release is idempotent).
// After Release every accessor that touches payload bytes panics — a
// use-after-release is an aliasing bug the pool would otherwise convert
// into silent cross-update corruption, so it fails loudly instead.
//
// All accessors are read-only, so a Payload may be shared across the
// concurrent range kernels of one aggregation pass without locking.
type Payload struct {
	scheme Scheme // TopK carries the kept-entry count for KindTopK
	dim    int
	delta  bool
	data   []byte // payload bytes, header stripped
	// pool is the pooled-buffer handle data was read into (nil for
	// ParsePayload views, which alias the caller's blob).
	pool *[]byte
	// q8chunk is the validated chunk size for KindQ8 (0 otherwise).
	q8chunk int
}

// Scheme reports the encoding (TopK filled in for sparse payloads).
func (p *Payload) Scheme() Scheme { return p.scheme }

// Dim reports the element count of the encoded vector.
func (p *Payload) Dim() int { return p.dim }

// IsDelta reports whether the frame carried the delta flag.
func (p *Payload) IsDelta() bool { return p.delta }

// WireLen reports the payload size in bytes (header excluded).
func (p *Payload) WireLen() int { return len(p.data) }

// Release returns the pooled buffer to the codec pool and poisons the
// view. Idempotent; safe on a nil or non-pooled Payload. The holder must
// guarantee no accessor runs concurrently with or after Release.
func (p *Payload) Release() {
	if p == nil {
		return
	}
	if h := p.pool; h != nil {
		p.pool = nil
		*h = p.data[:0]
		payloadPool.Put(h)
	}
	p.data = nil
}

// Materialize decodes the payload into a fresh dense vector — the
// fallback for consumers that need random dense access (robust reducers,
// norm clipping). Fused consumers use AddScaledRange instead.
func (p *Payload) Materialize() (tensor.Vector, error) {
	v, _, err := decodePayload(p.data, p.dim, p.scheme)
	return v, err
}

// AllFinite reports whether every decoded element is finite, scanning the
// wire bytes without materializing. For q8 only the per-chunk float32
// scales can carry non-finite bit patterns (values are int8, and
// finite-scale × int8 cannot overflow float64), so the scan is O(dim/256);
// for topk it is O(k).
func (p *Payload) AllFinite() bool {
	d := p.data
	switch p.scheme.Kind {
	case KindRawF64:
		for i := 0; i < p.dim; i++ {
			if isNonFinite64(binary.LittleEndian.Uint64(d[8*i:])) {
				return false
			}
		}
	case KindF32:
		for i := 0; i < p.dim; i++ {
			if isNonFinite32(binary.LittleEndian.Uint32(d[4*i:])) {
				return false
			}
		}
	case KindQ8:
		for c := 0; c < p.q8chunks(); c++ {
			if isNonFinite32(binary.LittleEndian.Uint32(d[4+4*c:])) {
				return false
			}
		}
	case KindTopK:
		k := p.scheme.TopK
		for i := 0; i < k; i++ {
			if isNonFinite32(binary.LittleEndian.Uint32(d[4+4*k+4*i:])) {
				return false
			}
		}
	}
	return true
}

// Norm2 returns the L2 norm of the decoded vector, scanning the wire
// bytes without materializing — the pre-reduce norm screen's accessor.
// Every scheme accumulates s += v*v over ascending coordinates with v
// computed by the exact decodePayload expression, so the result is
// bit-identical to Materialize().Norm2(); top-k skips absent entries,
// whose dense contribution (s += 0*0) is the identity.
func (p *Payload) Norm2() float64 {
	d := p.data
	var s float64
	switch p.scheme.Kind {
	case KindRawF64:
		for i := 0; i < p.dim; i++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(d[8*i:]))
			s += v * v
		}
	case KindF32:
		for i := 0; i < p.dim; i++ {
			v := float64(math.Float32frombits(binary.LittleEndian.Uint32(d[4*i:])))
			s += v * v
		}
	case KindQ8:
		chunk := p.q8chunk
		scales := d[4 : 4+4*p.q8chunks()]
		vals := d[4+4*p.q8chunks():]
		for j := 0; j < p.dim; {
			c := j / chunk
			end := (c + 1) * chunk
			if end > p.dim {
				end = p.dim
			}
			scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(scales[4*c:])))
			for ; j < end; j++ {
				v := float64(int8(vals[j])) * scale
				s += v * v
			}
		}
	case KindTopK:
		k := p.scheme.TopK
		for i := 0; i < k; i++ {
			v := float64(math.Float32frombits(binary.LittleEndian.Uint32(d[4+4*k+4*i:])))
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// CopyRange decodes elements [lo, hi) into dst (len hi-lo), overwriting
// it — the robust reducers' per-worker window materialization. Each
// element is produced by the exact expression decodePayload uses, so a
// copied window is bit-identical to the same slice of Materialize().
func (p *Payload) CopyRange(dst tensor.Vector, lo, hi int) {
	if lo < 0 || hi > p.dim || lo > hi {
		panic(fmt.Sprintf("codec: payload range [%d,%d) outside dim %d", lo, hi, p.dim))
	}
	if len(dst) != hi-lo {
		panic(fmt.Sprintf("codec: payload range [%d,%d) into %d-elem dst", lo, hi, len(dst)))
	}
	d := p.data
	switch p.scheme.Kind {
	case KindRawF64:
		b := d[8*lo : 8*hi]
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
	case KindF32:
		b := d[4*lo : 4*hi]
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:])))
		}
	case KindQ8:
		chunk := p.q8chunk
		scales := d[4 : 4+4*p.q8chunks()]
		vals := d[4+4*p.q8chunks():]
		for j := lo; j < hi; {
			c := j / chunk
			end := (c + 1) * chunk
			if end > hi {
				end = hi
			}
			scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(scales[4*c:])))
			for ; j < end; j++ {
				dst[j-lo] = float64(int8(vals[j])) * scale
			}
		}
	case KindTopK:
		dst.Zero()
		k := p.scheme.TopK
		idx := d[4 : 4+4*k]
		valOff := 4 + 4*k
		i := sort.Search(k, func(n int) bool {
			return int(binary.LittleEndian.Uint32(idx[4*n:])) >= lo
		})
		for ; i < k; i++ {
			j := int(binary.LittleEndian.Uint32(idx[4*i:]))
			if j >= hi {
				break
			}
			dst[j-lo] = float64(math.Float32frombits(binary.LittleEndian.Uint32(d[valOff+4*i:])))
		}
	}
}

// isNonFinite64 reports an all-ones exponent (Inf or NaN) without leaving
// integer registers.
func isNonFinite64(bits uint64) bool { return bits&0x7FF0000000000000 == 0x7FF0000000000000 }

func isNonFinite32(bits uint32) bool { return bits&0x7F800000 == 0x7F800000 }

func (p *Payload) q8chunks() int {
	if p.dim == 0 {
		return 0
	}
	return (p.dim + p.q8chunk - 1) / p.q8chunk
}

// At returns element i decoded on the fly (tests, spot checks; kernels
// stream ranges instead).
func (p *Payload) At(i int) float64 {
	if i < 0 || i >= p.dim {
		panic(fmt.Sprintf("codec: payload index %d out of range [0,%d)", i, p.dim))
	}
	d := p.data
	switch p.scheme.Kind {
	case KindRawF64:
		return math.Float64frombits(binary.LittleEndian.Uint64(d[8*i:]))
	case KindF32:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(d[4*i:])))
	case KindQ8:
		c := i / p.q8chunk
		scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(d[4+4*c:])))
		return float64(int8(d[4+4*p.q8chunks()+i])) * scale
	case KindTopK:
		k := p.scheme.TopK
		j := sort.Search(k, func(n int) bool {
			return int(binary.LittleEndian.Uint32(d[4+4*n:])) >= i
		})
		if j < k && int(binary.LittleEndian.Uint32(d[4+4*j:])) == i {
			return float64(math.Float32frombits(binary.LittleEndian.Uint32(d[4+4*k+4*j:])))
		}
		return 0
	}
	return 0
}

// AddScaledRange folds dst[j-lo] += alpha * decoded[j] for j in [lo, hi)
// — the fused decode→weight→reduce kernel. dst must be the caller's
// global[lo:hi] window (len hi-lo). Every scheme computes the decoded
// value with the exact expression decodePayload uses and applies it with
// the exact expression tensor.AddScaled uses (v := decode(j); dst += alpha*v),
// so a fused pass is bit-identical to materialize-then-AddScaled for
// dense schemes and for q8. Top-k skips absent entries instead of adding
// alpha*0, which is value-identical (it can only flip a -0 to +0).
func (p *Payload) AddScaledRange(dst tensor.Vector, alpha float64, lo, hi int) {
	if lo < 0 || hi > p.dim || lo > hi {
		panic(fmt.Sprintf("codec: payload range [%d,%d) outside dim %d", lo, hi, p.dim))
	}
	if len(dst) != hi-lo {
		panic(fmt.Sprintf("codec: payload range [%d,%d) into %d-elem dst", lo, hi, len(dst)))
	}
	d := p.data
	switch p.scheme.Kind {
	case KindRawF64:
		b := d[8*lo : 8*hi]
		for i := range dst {
			v := math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
			dst[i] += alpha * v
		}
	case KindF32:
		b := d[4*lo : 4*hi]
		for i := range dst {
			v := float64(math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:])))
			dst[i] += alpha * v
		}
	case KindQ8:
		chunk := p.q8chunk
		scales := d[4 : 4+4*p.q8chunks()]
		vals := d[4+4*p.q8chunks():]
		for j := lo; j < hi; {
			c := j / chunk
			end := (c + 1) * chunk
			if end > hi {
				end = hi
			}
			scale := float64(math.Float32frombits(binary.LittleEndian.Uint32(scales[4*c:])))
			for ; j < end; j++ {
				v := float64(int8(vals[j])) * scale
				dst[j-lo] += alpha * v
			}
		}
	case KindTopK:
		k := p.scheme.TopK
		idx := d[4 : 4+4*k]
		valOff := 4 + 4*k
		// Indices are validated strictly ascending, so the shard's slice
		// of the sparse entries is one binary search plus a linear walk.
		i := sort.Search(k, func(n int) bool {
			return int(binary.LittleEndian.Uint32(idx[4*n:])) >= lo
		})
		for ; i < k; i++ {
			j := int(binary.LittleEndian.Uint32(idx[4*i:]))
			if j >= hi {
				break
			}
			v := float64(math.Float32frombits(binary.LittleEndian.Uint32(d[valOff+4*i:])))
			dst[j-lo] += alpha * v
		}
	}
}

// validatePayload runs the full structural validation Decode would apply,
// without writing a single element: exact length accounting for every
// scheme, chunk-size sanity for q8, and the strict ascending in-range
// index walk for top-k (which AddScaledRange's binary search relies on).
// It returns the scheme with TopK filled in and the q8 chunk size.
func validatePayload(payload []byte, dim int, s Scheme) (Scheme, int, error) {
	q8chunk := 0
	switch s.Kind {
	case KindRawF64:
		if len(payload) != 8*dim {
			return s, 0, fmt.Errorf("%w: raw64 payload %d bytes for dim %d", ErrPayload, len(payload), dim)
		}
	case KindF32:
		if len(payload) != 4*dim {
			return s, 0, fmt.Errorf("%w: f32 payload %d bytes for dim %d", ErrPayload, len(payload), dim)
		}
	case KindQ8:
		if len(payload) < 4 {
			return s, 0, fmt.Errorf("%w: q8 payload missing chunk size", ErrPayload)
		}
		chunk := int(binary.LittleEndian.Uint32(payload))
		if chunk <= 0 || chunk > MaxDim {
			return s, 0, fmt.Errorf("%w: q8 chunk size %d", ErrPayload, chunk)
		}
		chunks := 0
		if dim > 0 {
			chunks = (dim + chunk - 1) / chunk
		}
		if len(payload) != 4+4*chunks+dim {
			return s, 0, fmt.Errorf("%w: q8 payload %d bytes for dim %d chunk %d", ErrPayload, len(payload), dim, chunk)
		}
		q8chunk = chunk
	case KindTopK:
		if len(payload) < 4 {
			return s, 0, fmt.Errorf("%w: topk payload missing count", ErrPayload)
		}
		k := int(binary.LittleEndian.Uint32(payload))
		if k > dim {
			return s, 0, fmt.Errorf("%w: topk count %d exceeds dim %d", ErrPayload, k, dim)
		}
		if len(payload) != 4+8*k {
			return s, 0, fmt.Errorf("%w: topk payload %d bytes for k %d", ErrPayload, len(payload), k)
		}
		prev := -1
		for i := 0; i < k; i++ {
			j := int(binary.LittleEndian.Uint32(payload[4+4*i:]))
			if j >= dim || j <= prev {
				return s, 0, fmt.Errorf("%w: topk index %d (dim %d, prev %d)", ErrPayload, j, dim, prev)
			}
			prev = j
		}
		s.TopK = k
	}
	return s, q8chunk, nil
}

// ParsePayload builds a zero-copy Payload view over an in-memory blob
// (header + payload): header and checksum verified, structure validated.
// The view aliases blob — the caller must keep it immutable for the
// Payload's lifetime. Release is a no-op pool-wise (nothing pooled) but
// still poisons the view.
func ParsePayload(blob []byte) (*Payload, error) {
	dim, s, err := Header(blob)
	if err != nil {
		return nil, err
	}
	payload := blob[headerSize:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(blob[12:]) {
		return nil, ErrChecksum
	}
	s, q8chunk, err := validatePayload(payload, dim, s)
	if err != nil {
		return nil, err
	}
	return &Payload{
		scheme:  s,
		dim:     dim,
		delta:   blob[5]&flagDelta != 0,
		data:    payload,
		q8chunk: q8chunk,
	}, nil
}

// DecodePayloadFrom reads exactly one framed blob from r — the same
// streaming discipline as DecodeFrom (header validated first, exact
// payload length derived before any payload byte is read, CRC checked) —
// but stops short of materializing: it returns a structurally validated
// Payload that retains the pooled read buffer. The caller owns the
// Payload and must Release it; until then the wire bytes are readable
// zero-copy via AddScaledRange/At/AllFinite. A wantDim > 0 requires the
// header's element count to equal it. Bytes after the frame are left
// unread in r.
func DecodePayloadFrom(r io.Reader, wantDim int) (*Payload, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: stream ended inside header", ErrTooShort)
		}
		return nil, fmt.Errorf("codec: read header: %w", err)
	}
	dim, s, err := Header(hdr[:])
	if err != nil {
		return nil, err
	}
	if wantDim > 0 && dim != wantDim {
		return nil, fmt.Errorf("%w: blob declares %d elements, want %d", ErrDim, dim, wantDim)
	}
	// Derive the exact payload length; q8/top-k carry it in their own
	// leading u32, read ahead and re-joined below (see DecodeFrom).
	var prefix [4]byte
	prefixLen := 0
	plen := 0
	switch s.Kind {
	case KindRawF64:
		plen = 8 * dim
	case KindF32:
		plen = 4 * dim
	case KindQ8:
		if err := readPrefix(r, prefix[:]); err != nil {
			return nil, err
		}
		prefixLen = 4
		chunk := binary.LittleEndian.Uint32(prefix[:])
		if chunk == 0 || chunk > MaxDim {
			return nil, fmt.Errorf("%w: q8 chunk size %d", ErrPayload, chunk)
		}
		chunks := 0
		if dim > 0 {
			chunks = (dim + int(chunk) - 1) / int(chunk)
		}
		plen = 4 + 4*chunks + dim
	case KindTopK:
		if err := readPrefix(r, prefix[:]); err != nil {
			return nil, err
		}
		prefixLen = 4
		k := binary.LittleEndian.Uint32(prefix[:])
		if int64(k) > int64(dim) {
			return nil, fmt.Errorf("%w: topk count %d exceeds dim %d", ErrPayload, k, dim)
		}
		plen = 4 + 8*int(k)
	}
	bufp := payloadPool.Get().(*[]byte)
	payload, err := readPayload(r, bufp, plen, prefix[:prefixLen], wantDim > 0)
	if err != nil {
		payloadPool.Put(bufp)
		return nil, err
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(hdr[12:]) {
		payloadPool.Put(bufp)
		return nil, ErrChecksum
	}
	s, q8chunk, err := validatePayload(payload, dim, s)
	if err != nil {
		payloadPool.Put(bufp)
		return nil, err
	}
	return &Payload{
		scheme:  s,
		dim:     dim,
		delta:   hdr[5]&flagDelta != 0,
		data:    payload,
		pool:    bufp,
		q8chunk: q8chunk,
	}, nil
}
