package codec

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/iotest"

	"flint/internal/tensor"
)

func randVec(n int, seed int64, scale float64) tensor.Vector {
	rng := rand.New(rand.NewSource(seed))
	v := tensor.NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64() * scale
	}
	return v
}

func TestRawF64RoundTripExact(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 1519, 4096} {
		v := randVec(n, int64(n)+1, 3.7)
		blob, err := Encode(v, RawF64)
		if err != nil {
			t.Fatal(err)
		}
		got, s, err := Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		if s.Kind != KindRawF64 {
			t.Fatalf("scheme = %v", s)
		}
		if len(got) != n {
			t.Fatalf("dim %d, want %d", len(got), n)
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("n=%d elem %d: %v != %v", n, i, got[i], v[i])
			}
		}
	}
}

func TestF32RoundTripRelativeError(t *testing.T) {
	v := randVec(4096, 2, 0.05)
	blob, err := Encode(v, F32)
	if err != nil {
		t.Fatal(err)
	}
	got, s, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if s != F32 {
		t.Fatalf("scheme = %v", s)
	}
	for i := range v {
		if diff := math.Abs(got[i] - v[i]); diff > math.Abs(v[i])*1e-6 {
			t.Fatalf("elem %d: |%v - %v| = %v", i, got[i], v[i], diff)
		}
	}
}

// TestQ8ErrorBound is the quantization property test: every element's
// reconstruction error is bounded by half its chunk's scale (plus the
// float32 rounding of the scale itself).
func TestQ8ErrorBound(t *testing.T) {
	// Mixed magnitudes across chunks, dims straddling chunk boundaries.
	for _, n := range []int{1, 255, 256, 257, 1519, 8192} {
		v := randVec(n, int64(n)+7, 0.01)
		// Give alternating chunks wildly different magnitudes so a
		// global scale would fail where per-chunk scales pass.
		for i := range v {
			if (i/q8Chunk)%2 == 1 {
				v[i] *= 1e4
			}
		}
		blob, err := Encode(v, Q8)
		if err != nil {
			t.Fatal(err)
		}
		got, s, err := Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		if s != Q8 {
			t.Fatalf("scheme = %v", s)
		}
		for c := 0; c*q8Chunk < n; c++ {
			lo, hi := c*q8Chunk, (c+1)*q8Chunk
			if hi > n {
				hi = n
			}
			maxAbs := 0.0
			for _, x := range v[lo:hi] {
				if a := math.Abs(x); a > maxAbs {
					maxAbs = a
				}
			}
			scale := float64(float32(maxAbs / 127))
			bound := 0.5*scale + 1e-6*maxAbs + 1e-15
			for i := lo; i < hi; i++ {
				if diff := math.Abs(got[i] - v[i]); diff > bound {
					t.Fatalf("n=%d elem %d: error %v exceeds bound %v (scale %v)", n, i, diff, bound, scale)
				}
			}
		}
	}
}

// TestTopKReconstruction verifies the sparse property: exactly the k
// largest-magnitude entries survive (at float32 precision), all other
// coordinates decode to zero.
func TestTopKReconstruction(t *testing.T) {
	n, k := 1000, 25
	v := randVec(n, 11, 1)
	blob, err := Encode(v, TopK(k))
	if err != nil {
		t.Fatal(err)
	}
	got, s, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != KindTopK || s.TopK != k {
		t.Fatalf("scheme = %v", s)
	}
	// The kept set must be the k largest magnitudes.
	threshold := math.Inf(1)
	kept := 0
	for i := range got {
		if got[i] != 0 {
			kept++
			if a := math.Abs(v[i]); a < threshold {
				threshold = a
			}
			if got[i] != float64(float32(v[i])) {
				t.Fatalf("elem %d: kept value %v, want %v", i, got[i], float64(float32(v[i])))
			}
		}
	}
	if kept != k {
		t.Fatalf("kept %d entries, want %d", kept, k)
	}
	for i := range got {
		if got[i] == 0 && math.Abs(v[i]) > threshold {
			t.Fatalf("elem %d: |%v| > kept threshold %v but was dropped", i, v[i], threshold)
		}
	}
}

func TestTopKDefaultCount(t *testing.T) {
	v := randVec(640, 3, 1)
	blob, err := Encode(v, Scheme{Kind: KindTopK})
	if err != nil {
		t.Fatal(err)
	}
	_, s, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if s.TopK != 640/32 {
		t.Fatalf("default top-k = %d, want %d", s.TopK, 640/32)
	}
}

func TestDecodeErrors(t *testing.T) {
	v := randVec(64, 5, 1)
	blob, err := Encode(v, F32)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func(b []byte)) []byte {
		b := append([]byte(nil), blob...)
		fn(b)
		return b
	}
	cases := []struct {
		name string
		blob []byte
		want error
	}{
		{"short", blob[:10], ErrTooShort},
		{"magic", mutate(func(b []byte) { b[0] = 'X' }), ErrMagic},
		{"version", mutate(func(b []byte) { b[3] = 99 }), ErrVersion},
		{"scheme", mutate(func(b []byte) { b[4] = 200 }), ErrScheme},
		{"checksum", mutate(func(b []byte) { b[20] ^= 0xFF }), ErrChecksum},
		{"truncated payload", func() []byte {
			b := append([]byte(nil), blob[:len(blob)-8]...)
			binary.LittleEndian.PutUint32(b[12:], crc32.ChecksumIEEE(b[16:]))
			return b
		}(), ErrPayload},
		{"dim too large", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:], MaxDim+1)
		}), ErrDim},
	}
	for _, tc := range cases {
		if _, _, err := Decode(tc.blob); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// A header-only blob declaring a huge dim must be rejected on payload
// length before Decode pays the dim-sized vector allocation — 16 hostile
// bytes on the wire must not buy a MaxDim-element make.
func TestDecodeHeaderOnlyHugeDim(t *testing.T) {
	for _, kind := range []Kind{KindRawF64, KindF32, KindQ8} {
		blob := make([]byte, 16)
		copy(blob, Magic)
		blob[3] = Version
		blob[4] = byte(kind)
		binary.LittleEndian.PutUint32(blob[8:], MaxDim) // passes the dim cap
		// CRC of the empty payload is 0, which the zeroed header already
		// holds, so the checksum check passes too.
		allocs := testing.AllocsPerRun(10, func() {
			if _, _, err := Decode(blob); !errors.Is(err, ErrPayload) {
				t.Fatalf("kind %d: err = %v, want %v", kind, err, ErrPayload)
			}
		})
		// The error path may allocate for the message, but never the
		// 128 MiB vector (which would be one huge alloc; give headroom
		// for fmt's small ones).
		if allocs > 8 {
			t.Errorf("kind %d: %v allocs on reject path", kind, allocs)
		}
	}
}

func TestSchemeStringParseRoundTrip(t *testing.T) {
	for _, s := range []Scheme{RawF64, F32, Q8, TopK(128), {Kind: KindTopK}} {
		got, err := ParseScheme(s.String())
		if err != nil {
			t.Fatalf("parse %q: %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %v -> %v", s, got)
		}
	}
	for _, bad := range []string{"", "gob", "q8:4", "topk:-1", "topk:x"} {
		if _, err := ParseScheme(bad); err == nil {
			t.Errorf("ParseScheme(%q) accepted", bad)
		}
	}
}

// TestPayloadSizeVsJSON guards the refactor's headline claim: the binary
// schemes shrink a dense update at least 4x vs the legacy JSON []float64
// encoding.
func TestPayloadSizeVsJSON(t *testing.T) {
	v := randVec(8192, 9, 0.01)
	jsonBytes, err := json.Marshal([]float64(v))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheme{F32, Q8} {
		blob, err := Encode(v, s)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := float64(len(jsonBytes)) / float64(len(blob)); ratio < 4 {
			t.Errorf("%s: JSON %d bytes / binary %d bytes = %.2fx, want >= 4x",
				s, len(jsonBytes), len(blob), ratio)
		}
	}
}

// TestDeltaRoundTrip checks the delta frame across every scheme: a raw64
// delta reproduces new = base + diff exactly; lossy schemes stay within
// their usual error bounds; and the frame is distinguishable from a full
// blob at every layer (IsDelta, ApplyDelta's ErrNotDelta).
func TestDeltaRoundTrip(t *testing.T) {
	base := randVec(1519, 3, 1.0)
	cur := base.Clone()
	step := randVec(1519, 4, 0.01)
	cur.Add(step)
	diff := cur.Clone()
	diff.Sub(base)
	for _, s := range []Scheme{RawF64, F32, Q8, TopK(0)} {
		blob, err := EncodeDelta(diff, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !IsDelta(blob) {
			t.Fatalf("%v: delta blob not flagged", s)
		}
		// The frame still decodes as a plain blob (to the raw diff).
		decoded, ds, err := Decode(blob)
		if err != nil {
			t.Fatalf("%v: decode delta frame: %v", s, err)
		}
		if ds.Kind != s.Kind || len(decoded) != len(diff) {
			t.Fatalf("%v: decoded scheme %v dim %d", s, ds, len(decoded))
		}
		got, _, err := ApplyDelta(base, blob)
		if err != nil {
			t.Fatalf("%v: apply: %v", s, err)
		}
		if s == RawF64 {
			for i := range got {
				if got[i] != cur[i] {
					t.Fatalf("raw64 delta not exact at %d: %g != %g", i, got[i], cur[i])
				}
			}
			continue
		}
		// Lossy schemes: the reconstruction error is bounded by the
		// scheme's own error on the diff, never the base (which is
		// carried exactly).
		maxErr := 0.0
		for i := range got {
			if e := math.Abs(got[i] - cur[i]); e > maxErr {
				maxErr = e
			}
		}
		bound := 0.05 // generous: topk drops most of a dense small diff
		if maxErr > bound {
			t.Fatalf("%v: delta reconstruction error %g > %g", s, maxErr, bound)
		}
	}
}

// TestDeltaErrors pins the delta frame's failure contract.
func TestDeltaErrors(t *testing.T) {
	base := randVec(64, 5, 1)
	diff := randVec(64, 6, 0.01)

	// A full blob is not a delta: flagless ApplyDelta must refuse.
	full, err := Encode(diff, F32)
	if err != nil {
		t.Fatal(err)
	}
	if IsDelta(full) {
		t.Fatal("full blob reports IsDelta")
	}
	if _, _, err := ApplyDelta(base, full); !errors.Is(err, ErrNotDelta) {
		t.Fatalf("ApplyDelta(full blob) = %v, want ErrNotDelta", err)
	}

	// Dimension mismatch against the base is a protocol error.
	blob, err := EncodeDelta(diff, F32)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ApplyDelta(base[:32], blob); !errors.Is(err, ErrPayload) {
		t.Fatalf("ApplyDelta(wrong base dim) = %v, want ErrPayload", err)
	}

	// Corruption is still caught underneath the delta flag.
	corrupt := append([]byte(nil), blob...)
	corrupt[20] ^= 0xFF
	if _, _, err := ApplyDelta(base, corrupt); !errors.Is(err, ErrChecksum) {
		t.Fatalf("ApplyDelta(corrupt) = %v, want ErrChecksum", err)
	}

	// Garbage is rejected before any base math happens.
	if _, _, err := ApplyDelta(base, []byte("nonsense")); err == nil {
		t.Fatal("ApplyDelta(garbage) accepted")
	}
}

// TestDeltaDoesNotMutateBase guards ApplyDelta's value semantics: callers
// cache base vectors (the coordinator's version ring, fleet devices'
// last-applied params), so folding a delta in place would corrupt them.
func TestDeltaDoesNotMutateBase(t *testing.T) {
	base := randVec(256, 7, 1)
	snapshot := base.Clone()
	diff := randVec(256, 8, 1)
	blob, err := EncodeDelta(diff, RawF64)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ApplyDelta(base, blob); err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != snapshot[i] {
			t.Fatalf("base mutated at %d", i)
		}
	}
}

// TestDeltaDownlinkReduction pins the delta-broadcast headline claim on
// the 189k-param model (zoo model B's dimension): a q8 delta frame is at
// least 3x smaller than the full f32 broadcast it replaces.
func TestDeltaDownlinkReduction(t *testing.T) {
	const dim = 189_039
	cur := randVec(dim, 21, 0.05)
	diff := randVec(dim, 22, 0.001) // one committed round's movement
	full, err := Encode(cur, F32)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := EncodeDelta(diff, Q8)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(full)) / float64(len(delta)); ratio < 3 {
		t.Fatalf("delta downlink reduction %.2fx (full %d bytes, delta %d bytes), want >= 3x",
			ratio, len(full), len(delta))
	}
}

// countingReader tracks how many bytes DecodeFrom consumed from the
// stream, so tests can pin the "validate before buffering" contract.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

func TestDecodeFromMatchesDecode(t *testing.T) {
	v := randVec(4096, 31, 0.02)
	for _, s := range []Scheme{RawF64, F32, Q8, TopK(0), TopK(7)} {
		blob, err := Encode(v, s)
		if err != nil {
			t.Fatal(err)
		}
		want, wantScheme, err := Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		got, gotScheme, err := DecodeFrom(bytes.NewReader(blob), len(v))
		if err != nil {
			t.Fatalf("%v: DecodeFrom: %v", s, err)
		}
		if gotScheme != wantScheme {
			t.Fatalf("%v: scheme %v, want %v", s, gotScheme, wantScheme)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: dim %d, want %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: element %d = %g, want %g", s, i, got[i], want[i])
			}
		}
	}
	// Delta frames stream-decode too, returning the raw difference like
	// Decode does.
	blob, err := EncodeDelta(v, Q8)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeFrom(bytes.NewReader(blob), len(v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("delta element %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestDecodeFromDimMismatchStopsAtHeader(t *testing.T) {
	blob, err := Encode(randVec(1024, 33, 1), F32)
	if err != nil {
		t.Fatal(err)
	}
	cr := &countingReader{r: bytes.NewReader(blob)}
	_, _, err = DecodeFrom(cr, 999)
	if !errors.Is(err, ErrDim) {
		t.Fatalf("dim mismatch error = %v, want ErrDim", err)
	}
	// The wrong-sized payload must never have been buffered: only the
	// 16-byte header was consumed.
	if cr.n > 16 {
		t.Fatalf("DecodeFrom read %d bytes past a rejected header", cr.n)
	}
}

func TestDecodeFromLeavesTrailingBytes(t *testing.T) {
	blob, err := Encode(randVec(256, 35, 1), Q8)
	if err != nil {
		t.Fatal(err)
	}
	stream := append(append([]byte{}, blob...), "trailing"...)
	r := bytes.NewReader(stream)
	if _, _, err := DecodeFrom(r, 256); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(r)
	if string(rest) != "trailing" {
		t.Fatalf("stream remainder = %q, want the trailing bytes untouched", rest)
	}
}

func TestDecodeFromErrors(t *testing.T) {
	v := randVec(256, 37, 1)
	blob, err := Encode(v, F32)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated header.
	if _, _, err := DecodeFrom(bytes.NewReader(blob[:7]), 0); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short header error = %v, want ErrTooShort", err)
	}
	// Truncated payload.
	if _, _, err := DecodeFrom(bytes.NewReader(blob[:len(blob)-9]), 256); !errors.Is(err, ErrPayload) {
		t.Fatalf("short payload error = %v, want ErrPayload", err)
	}
	// Corrupt payload byte → checksum failure.
	bad := append([]byte{}, blob...)
	bad[20] ^= 0xFF
	if _, _, err := DecodeFrom(bytes.NewReader(bad), 256); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt payload error = %v, want ErrChecksum", err)
	}
	// A non-codec read error surfaces wrapped, not swallowed.
	failing := io.MultiReader(bytes.NewReader(blob[:30]), iotest.ErrReader(errBoom))
	if _, _, err := DecodeFrom(failing, 256); !errors.Is(err, errBoom) {
		t.Fatalf("reader error = %v, want errBoom in chain", err)
	}
}

var errBoom = errors.New("boom")

func TestDecodeFromUntrustedDimClaims(t *testing.T) {
	// With wantDim=0 the declared length is untrusted: a 16-byte header
	// claiming a MaxDim raw64 vector, followed by nothing, must fail
	// without the stream ever delivering (or the decoder allocating
	// ahead of) the claimed 128 MiB.
	hdr := make([]byte, 16)
	copy(hdr, Magic)
	hdr[3] = Version
	hdr[4] = byte(KindRawF64)
	binary.LittleEndian.PutUint32(hdr[8:], MaxDim)
	cr := &countingReader{r: bytes.NewReader(hdr)}
	if _, _, err := DecodeFrom(cr, 0); !errors.Is(err, ErrPayload) {
		t.Fatalf("hostile huge-dim stream error = %v, want ErrPayload", err)
	}
	if cr.n > 16 {
		t.Fatalf("decoder consumed %d bytes of a header-only stream", cr.n)
	}
	// A legitimate blob still round-trips with wantDim=0.
	v := randVec(512, 41, 1)
	blob, err := Encode(v, RawF64)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeFrom(bytes.NewReader(blob), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("wantDim=0 round-trip: element %d = %g, want %g", i, got[i], v[i])
		}
	}
}
