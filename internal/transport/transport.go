// Package transport is the wire-scheme policy layer of the serving
// protocol: it decides, per device, which codec encodings move model
// state in each direction.
//
// The paper's central constraint (§2) is that cross-device FL must fit
// inside heterogeneous app networking budgets — bandwidth differs by
// orders of magnitude across the fleet. A single global scheme knob
// cannot express that, so the coordinator classifies each device into a
// *cohort* from what it advertises at check-in (platform, connectivity)
// and assigns the cohort's Policy: the full-broadcast encoding for
// /v1/task, the delta-broadcast encoding served against the device's
// last-seen version, and the update encoding the device is asked to use
// on /v1/update.
//
// Negotiation is capability-safe: devices advertise the scheme kinds they
// can decode (an Accept-style comma-separated list sent at check-in and
// echoed as a header on task requests), and the Negotiator never assigns
// a scheme outside that list. A device whose advertised list contains
// nothing this server can serve falls back to f32 — the universal
// baseline every client decodes — and the decision is marked so the
// coordinator can count it.
package transport

import (
	"fmt"
	"strings"

	"flint/internal/codec"
)

// Cohort names. They appear in counters, status output, and the
// X-Flint-Cohort response header; keep them stable.
const (
	// CohortDefault covers well-connected devices (WiFi).
	CohortDefault = "default"
	// CohortLowBW covers bandwidth-constrained devices (cellular): they
	// get sparser, cheaper encodings at some fidelity cost.
	CohortLowBW = "lowbw"
)

// Policy is one cohort's scheme assignment: how every byte of model
// state moves for devices in that cohort.
type Policy struct {
	// Task encodes the full parameter broadcast on /v1/task.
	Task codec.Scheme
	// Update is the delta encoding devices use on /v1/update uplink.
	Update codec.Scheme
	// Delta encodes the downlink difference served when the device's
	// last-seen version is still in the coordinator's version ring.
	Delta codec.Scheme
	// DeltaDepth is this cohort's delta-history window: how many
	// versions behind the published model a device's base may lag and
	// still be served a delta frame. Slow cohorts fetch less often, so
	// their bases age more between tasks — a deeper window keeps them on
	// cheap deltas where the global default would force full broadcasts.
	// 0 inherits Config.DeltaHistory; negative disables delta broadcast
	// for the cohort alone.
	DeltaDepth int
}

// Validate rejects policies holding invalid schemes.
func (p Policy) Validate() error {
	if err := p.Task.Validate(); err != nil {
		return fmt.Errorf("task scheme: %w", err)
	}
	if err := p.Update.Validate(); err != nil {
		return fmt.Errorf("update scheme: %w", err)
	}
	if err := p.Delta.Validate(); err != nil {
		return fmt.Errorf("delta scheme: %w", err)
	}
	return nil
}

// Config defines the server's cohort policies and the delta-broadcast
// window. The zero value defaults to: default cohort f32 broadcast / q8
// uplink / q8 delta; low-bandwidth cohort topk broadcast / q8 uplink /
// topk delta; 8 versions of delta history.
type Config struct {
	// Default is the well-connected cohort's policy.
	Default Policy
	// LowBW is the bandwidth-constrained cohort's policy.
	LowBW Policy
	// DeltaHistory is K, how many recent published versions the
	// coordinator retains as delta bases (0 = default 8; negative
	// disables delta broadcast entirely). Cohorts can override their own
	// window via Policy.DeltaDepth; the coordinator's version ring is
	// sized to the deepest cohort (RingDepth).
	DeltaHistory int
}

// DefaultDeltaHistory is the version-ring depth used when Config leaves
// DeltaHistory zero.
const DefaultDeltaHistory = 8

// WithDefaults fills zero fields and validates the result.
func (c Config) WithDefaults() (Config, error) {
	if c.Default.Task.Kind == codec.KindInvalid {
		c.Default.Task = codec.F32
	}
	if c.Default.Update.Kind == codec.KindInvalid {
		c.Default.Update = codec.Q8
	}
	if c.Default.Delta.Kind == codec.KindInvalid {
		c.Default.Delta = codec.Q8
	}
	if c.LowBW.Task.Kind == codec.KindInvalid {
		c.LowBW.Task = codec.Scheme{Kind: codec.KindTopK}
	}
	if c.LowBW.Update.Kind == codec.KindInvalid {
		c.LowBW.Update = codec.Q8
	}
	if c.LowBW.Delta.Kind == codec.KindInvalid {
		c.LowBW.Delta = codec.Scheme{Kind: codec.KindTopK}
	}
	if c.DeltaHistory == 0 {
		c.DeltaHistory = DefaultDeltaHistory
	}
	if err := c.Default.Validate(); err != nil {
		return c, fmt.Errorf("transport: default cohort: %w", err)
	}
	if err := c.LowBW.Validate(); err != nil {
		return c, fmt.Errorf("transport: lowbw cohort: %w", err)
	}
	return c, nil
}

// DepthFor returns the named cohort's effective delta-history window:
// the cohort's DeltaDepth override when set, else the global
// DeltaHistory, else DefaultDeltaHistory (mirroring WithDefaults, so an
// un-defaulted zero config still reads as delta-enabled). Never
// negative — a disabled window reports 0.
func (c Config) DepthFor(cohort string) int {
	d := c.PolicyFor(cohort).DeltaDepth
	if d == 0 {
		d = c.DeltaHistory
	}
	if d == 0 {
		d = DefaultDeltaHistory
	}
	if d < 0 {
		return 0
	}
	return d
}

// RingDepth is the version-ring size the coordinator must retain: the
// deepest cohort window, so every cohort's admissible delta base is
// actually answerable. 0 means no cohort uses delta broadcast.
func (c Config) RingDepth() int {
	depth := c.DepthFor(CohortDefault)
	if d := c.DepthFor(CohortLowBW); d > depth {
		depth = d
	}
	return depth
}

// DeltaSchemes lists the distinct delta-broadcast encodings the cohort
// policies can assign — what a coordinator pre-encoding hot delta frames
// at commit time must cover so every cohort's first request hits a warm
// cache. Cohorts whose delta window is disabled contribute nothing: no
// request of theirs can ever be answered with a delta frame.
func (c Config) DeltaSchemes() []codec.Scheme {
	var out []codec.Scheme
	if c.DepthFor(CohortDefault) > 0 {
		out = append(out, c.Default.Delta)
	}
	if c.DepthFor(CohortLowBW) > 0 && (len(out) == 0 || c.LowBW.Delta != c.Default.Delta) {
		out = append(out, c.LowBW.Delta)
	}
	return out
}

// Device is the client state negotiation sees: what the device reported
// at check-in (or echoed on the request being served).
type Device struct {
	// Platform is the device OS family ("Android", "iOS", ...).
	Platform string
	// WiFi is the session's connectivity class; cellular sessions are
	// classified low-bandwidth when no Cohort pin is present.
	WiFi bool
	// Cohort, when set to a known cohort name, pins the classification:
	// the caller has a better signal than the radio label (the
	// scheduler's measured-bandwidth cohort map). Unknown or empty
	// values fall back to the WiFi rule, so an unmeasured device — or a
	// pin from a newer scheduler this build doesn't know — degrades to
	// the label-based classification instead of erroring.
	Cohort string
	// Accept lists the scheme kinds the client can decode, in no
	// particular order. nil means the client predates negotiation
	// (legacy binary or JSON) and is assumed to decode every kind this
	// server ships; empty-but-non-nil means it advertised a list with
	// nothing usable in it.
	Accept []codec.Kind
}

// Decision is a negotiated transport assignment.
type Decision struct {
	// Cohort names the policy class the device landed in.
	Cohort string
	// Policy is the cohort policy after capability filtering: every
	// scheme in it is one the device can decode.
	Policy Policy
	// Fallback is set when the device's advertised list contained no
	// scheme this server could honor for some slot, forcing the f32
	// universal baseline outside the list. Counted server-side.
	Fallback bool
}

// Negotiator maps advertised device state to a transport Decision. It is
// immutable after construction and safe for concurrent use.
type Negotiator struct {
	cfg Config
}

// NewNegotiator validates and captures the cohort configuration.
func NewNegotiator(cfg Config) (*Negotiator, error) {
	cfg, err := cfg.WithDefaults()
	if err != nil {
		return nil, err
	}
	return &Negotiator{cfg: cfg}, nil
}

// Config returns the effective (defaulted) policy configuration.
func (n *Negotiator) Config() Config { return n.cfg }

// Classify maps device state to its cohort name without negotiating
// schemes (diagnostics and tests; serving uses Negotiate). A valid
// Cohort pin — the measured-bandwidth assignment a scheduler computed —
// wins over the radio label.
func (n *Negotiator) Classify(d Device) string {
	switch d.Cohort {
	case CohortDefault, CohortLowBW:
		return d.Cohort
	}
	return LabelCohort(d.WiFi)
}

// LabelCohort is the radio-label fallback classification — the single
// source of the WiFi→default / cellular→lowbw rule, shared by the
// negotiator and by schedulers placing unmeasured devices in their
// census.
func LabelCohort(wifi bool) string {
	if !wifi {
		return CohortLowBW
	}
	return CohortDefault
}

// PolicyFor returns the named cohort's policy (unknown names get the
// default cohort's).
func (c Config) PolicyFor(cohort string) Policy {
	if cohort == CohortLowBW {
		return c.LowBW
	}
	return c.Default
}

// Negotiate assigns the device its cohort policy, constrained to the
// scheme kinds it advertised. Slots the device can't decode degrade to
// f32 when f32 is in its list; when even that is missing, f32 is served
// anyway (every shipped client decodes it) and the decision is flagged
// as a fallback so the caller can count it.
func (n *Negotiator) Negotiate(d Device) Decision {
	dec := Decision{Cohort: n.Classify(d)}
	dec.Policy = n.cfg.PolicyFor(dec.Cohort)
	if d.Accept == nil {
		return dec
	}
	accepts := make(map[codec.Kind]bool, len(d.Accept))
	for _, k := range d.Accept {
		accepts[k] = true
	}
	pick := func(want codec.Scheme) codec.Scheme {
		switch {
		case accepts[want.Kind]:
			return want
		case accepts[codec.KindF32]:
			return codec.F32
		default:
			dec.Fallback = true
			return codec.F32
		}
	}
	dec.Policy.Task = pick(dec.Policy.Task)
	dec.Policy.Update = pick(dec.Policy.Update)
	dec.Policy.Delta = pick(dec.Policy.Delta)
	return dec
}

// AllKinds lists every scheme kind this build can decode, in preference
// order — what a current client advertises.
func AllKinds() []codec.Kind {
	return []codec.Kind{codec.KindF32, codec.KindQ8, codec.KindTopK, codec.KindRawF64}
}

// kindNames maps wire names to kinds for ParseAccept. Scheme parameters
// (topk:k) are a server-side choice; capability lists carry bare kinds.
var kindNames = map[string]codec.Kind{
	"raw64": codec.KindRawF64,
	"f32":   codec.KindF32,
	"q8":    codec.KindQ8,
	"topk":  codec.KindTopK,
}

// ParseAccept parses a comma-separated advertised scheme list ("f32,q8")
// into the kinds this server recognizes, reporting how many entries it
// did not — future clients may advertise schemes an older server has
// never heard of, and those must degrade, not error. The result is
// always non-nil: an all-unknown list yields an empty (not nil) slice,
// preserving the "advertised but unusable" signal Negotiate keys on.
func ParseAccept(list string) (kinds []codec.Kind, unknown int) {
	kinds = []codec.Kind{}
	seen := map[codec.Kind]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.ToLower(strings.TrimSpace(name))
		if name == "" {
			continue
		}
		// Tolerate parameterized advertisements ("topk:64"): the kind
		// is the capability; the parameter is the sender's business.
		if base, _, ok := strings.Cut(name, ":"); ok {
			name = base
		}
		k, ok := kindNames[name]
		if !ok {
			unknown++
			continue
		}
		if !seen[k] {
			seen[k] = true
			kinds = append(kinds, k)
		}
	}
	return kinds, unknown
}

// FormatAccept renders a capability list for the wire, the inverse of
// ParseAccept.
func FormatAccept(kinds []codec.Kind) string {
	names := make([]string, 0, len(kinds))
	for _, k := range kinds {
		switch k {
		case codec.KindRawF64:
			names = append(names, "raw64")
		case codec.KindF32:
			names = append(names, "f32")
		case codec.KindQ8:
			names = append(names, "q8")
		case codec.KindTopK:
			names = append(names, "topk")
		}
	}
	return strings.Join(names, ",")
}
