package transport

import (
	"strings"
	"testing"

	"flint/internal/codec"
)

func mustNegotiator(t *testing.T, cfg Config) *Negotiator {
	t.Helper()
	n, err := NewNegotiator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Default.Task != codec.F32 || cfg.Default.Update != codec.Q8 || cfg.Default.Delta != codec.Q8 {
		t.Fatalf("default cohort = %+v", cfg.Default)
	}
	if cfg.LowBW.Task.Kind != codec.KindTopK || cfg.LowBW.Update != codec.Q8 || cfg.LowBW.Delta.Kind != codec.KindTopK {
		t.Fatalf("lowbw cohort = %+v", cfg.LowBW)
	}
	if cfg.DeltaHistory != DefaultDeltaHistory {
		t.Fatalf("delta history = %d", cfg.DeltaHistory)
	}
}

func TestConfigRejectsInvalidScheme(t *testing.T) {
	_, err := Config{Default: Policy{Task: codec.Scheme{Kind: 99}}}.WithDefaults()
	if err == nil || !strings.Contains(err.Error(), "default cohort") {
		t.Fatalf("invalid scheme accepted: %v", err)
	}
	if _, err := NewNegotiator(Config{LowBW: Policy{Update: codec.Scheme{Kind: 200}}}); err == nil {
		t.Fatal("NewNegotiator accepted invalid lowbw scheme")
	}
}

func TestClassifyCohorts(t *testing.T) {
	n := mustNegotiator(t, Config{})
	if c := n.Classify(Device{Platform: "Android", WiFi: true}); c != CohortDefault {
		t.Fatalf("wifi device cohort = %q", c)
	}
	if c := n.Classify(Device{Platform: "iOS", WiFi: false}); c != CohortLowBW {
		t.Fatalf("cellular device cohort = %q", c)
	}
}

// TestClassifyCohortPin: a scheduler-computed cohort pin overrides the
// radio label in both directions; an unknown pin (a newer scheduler's
// cohort this build doesn't know) degrades to the label rule.
func TestClassifyCohortPin(t *testing.T) {
	n := mustNegotiator(t, Config{})
	if c := n.Classify(Device{WiFi: true, Cohort: CohortLowBW}); c != CohortLowBW {
		t.Fatalf("slow WiFi pin: cohort = %q", c)
	}
	if c := n.Classify(Device{WiFi: false, Cohort: CohortDefault}); c != CohortDefault {
		t.Fatalf("fast cellular pin: cohort = %q", c)
	}
	if c := n.Classify(Device{WiFi: false, Cohort: "hyperband"}); c != CohortLowBW {
		t.Fatalf("unknown pin: cohort = %q, want label fallback", c)
	}
	// The pin carries through negotiation to the policy.
	dec := n.Negotiate(Device{WiFi: true, Cohort: CohortLowBW, Accept: AllKinds()})
	if dec.Cohort != CohortLowBW || dec.Policy != n.Config().LowBW {
		t.Fatalf("pinned negotiation = %+v", dec)
	}
}

// TestNegotiateEmptyAccept (negotiation edge case): an empty-but-non-nil
// capability list means "advertised, nothing usable" — every slot falls
// back to f32 and the decision is flagged, unlike the nil legacy case.
func TestNegotiateEmptyAccept(t *testing.T) {
	n := mustNegotiator(t, Config{})
	dec := n.Negotiate(Device{WiFi: true, Accept: []codec.Kind{}})
	if !dec.Fallback {
		t.Fatalf("empty accept list not flagged: %+v", dec)
	}
	if dec.Policy.Task != codec.F32 || dec.Policy.Update != codec.F32 || dec.Policy.Delta != codec.F32 {
		t.Fatalf("empty-list policy = %+v", dec.Policy)
	}
}

// TestParseAcceptGarbage: hostile or nonsense lists degrade to the
// empty-but-non-nil list (which Negotiate then serves as f32 fallback),
// never an error or a nil that would read as "legacy client".
func TestParseAcceptGarbage(t *testing.T) {
	for _, in := range []string{",,,", " , ", "🚀,💾", "q8:::9", "f3 2", ":::"} {
		kinds, _ := ParseAccept(in)
		if kinds == nil {
			t.Fatalf("ParseAccept(%q) returned nil", in)
		}
		for _, k := range kinds {
			switch k {
			case codec.KindRawF64, codec.KindF32, codec.KindQ8, codec.KindTopK:
			default:
				t.Fatalf("ParseAccept(%q) produced unknown kind %v", in, k)
			}
		}
	}
	// "q8:::9" cuts at the first colon: the q8 capability survives.
	if kinds, _ := ParseAccept("q8:::9"); len(kinds) != 1 || kinds[0] != codec.KindQ8 {
		t.Fatalf("parameterized garbage: %v", kinds)
	}
}

func TestPolicyFor(t *testing.T) {
	cfg, err := Config{}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PolicyFor(CohortLowBW) != cfg.LowBW {
		t.Fatal("PolicyFor(lowbw) != LowBW policy")
	}
	if cfg.PolicyFor(CohortDefault) != cfg.Default || cfg.PolicyFor("unknown") != cfg.Default {
		t.Fatal("PolicyFor default/unknown != Default policy")
	}
}

// TestNegotiateLegacyClient pins backward compatibility: a device that
// never advertised capabilities (nil Accept) gets the unfiltered cohort
// policy, exactly what pre-negotiation servers served.
func TestNegotiateLegacyClient(t *testing.T) {
	n := mustNegotiator(t, Config{})
	dec := n.Negotiate(Device{WiFi: true})
	if dec.Cohort != CohortDefault || dec.Fallback {
		t.Fatalf("decision = %+v", dec)
	}
	if dec.Policy != n.Config().Default {
		t.Fatalf("legacy policy filtered: %+v", dec.Policy)
	}
}

// TestNegotiateHonorsAccept: the cohort's preferred schemes survive when
// advertised, and slots outside the list degrade to f32 within it.
func TestNegotiateHonorsAccept(t *testing.T) {
	n := mustNegotiator(t, Config{})
	full := n.Negotiate(Device{WiFi: true, Accept: AllKinds()})
	if full.Fallback || full.Policy != n.Config().Default {
		t.Fatalf("full-capability decision = %+v", full)
	}

	// A device that can only decode f32: every slot degrades to f32,
	// and that is a clean downgrade, not a fallback.
	f32only := n.Negotiate(Device{WiFi: false, Accept: []codec.Kind{codec.KindF32}})
	if f32only.Cohort != CohortLowBW || f32only.Fallback {
		t.Fatalf("f32-only decision = %+v", f32only)
	}
	if f32only.Policy.Task != codec.F32 || f32only.Policy.Update != codec.F32 || f32only.Policy.Delta != codec.F32 {
		t.Fatalf("f32-only policy = %+v", f32only.Policy)
	}

	// q8+f32: the lowbw cohort's topk slots degrade to f32, but q8
	// slots are honored.
	partial := n.Negotiate(Device{WiFi: false, Accept: []codec.Kind{codec.KindQ8, codec.KindF32}})
	if partial.Fallback {
		t.Fatalf("partial decision flagged fallback: %+v", partial)
	}
	if partial.Policy.Task != codec.F32 || partial.Policy.Update != codec.Q8 || partial.Policy.Delta != codec.F32 {
		t.Fatalf("partial policy = %+v", partial.Policy)
	}
}

// TestNegotiateUnknownSchemeFallsBack is the satellite contract: a device
// advertising only schemes this server has never heard of still gets a
// servable answer — f32 — and the decision is flagged for the counter.
func TestNegotiateUnknownSchemeFallsBack(t *testing.T) {
	n := mustNegotiator(t, Config{})
	kinds, unknown := ParseAccept("zstd-tensor, brotli9")
	if unknown != 2 || len(kinds) != 0 || kinds == nil {
		t.Fatalf("ParseAccept = %v (unknown %d)", kinds, unknown)
	}
	dec := n.Negotiate(Device{WiFi: true, Accept: kinds})
	if !dec.Fallback {
		t.Fatalf("unusable accept list not flagged: %+v", dec)
	}
	if dec.Policy.Task != codec.F32 || dec.Policy.Update != codec.F32 || dec.Policy.Delta != codec.F32 {
		t.Fatalf("fallback policy = %+v", dec.Policy)
	}
}

func TestParseAccept(t *testing.T) {
	kinds, unknown := ParseAccept("f32, q8,topk:128,raw64,f32,mystery")
	if unknown != 1 {
		t.Fatalf("unknown = %d", unknown)
	}
	want := []codec.Kind{codec.KindF32, codec.KindQ8, codec.KindTopK, codec.KindRawF64}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("kinds[%d] = %v, want %v", i, kinds[i], k)
		}
	}
	if kinds, unknown := ParseAccept(""); len(kinds) != 0 || unknown != 0 {
		t.Fatalf("empty list: %v, %d", kinds, unknown)
	}
}

func TestAcceptRoundTrip(t *testing.T) {
	rendered := FormatAccept(AllKinds())
	kinds, unknown := ParseAccept(rendered)
	if unknown != 0 || len(kinds) != len(AllKinds()) {
		t.Fatalf("round trip of %q = %v (unknown %d)", rendered, kinds, unknown)
	}
	for i, k := range AllKinds() {
		if kinds[i] != k {
			t.Fatalf("round trip order: %v vs %v", kinds, AllKinds())
		}
	}
}

func TestDeltaSchemes(t *testing.T) {
	cfg, err := Config{}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: q8 (default cohort) and topk (lowbw) are distinct.
	got := cfg.DeltaSchemes()
	if len(got) != 2 || got[0] != cfg.Default.Delta || got[1] != cfg.LowBW.Delta {
		t.Fatalf("DeltaSchemes() = %v", got)
	}
	// Identical cohort deltas dedupe to one pre-encode target.
	same := Config{
		Default: Policy{Task: codec.F32, Update: codec.Q8, Delta: codec.Q8},
		LowBW:   Policy{Task: codec.F32, Update: codec.Q8, Delta: codec.Q8},
	}
	if got := same.DeltaSchemes(); len(got) != 1 || got[0] != codec.Q8 {
		t.Fatalf("deduped DeltaSchemes() = %v", got)
	}
}

func TestPerCohortDeltaDepth(t *testing.T) {
	// Un-defaulted zero config: both cohorts inherit the package default
	// window, mirroring WithDefaults.
	var zero Config
	if d := zero.DepthFor(CohortDefault); d != DefaultDeltaHistory {
		t.Fatalf("zero config default depth = %d, want %d", d, DefaultDeltaHistory)
	}
	// A cohort override wins over the global; the other cohort inherits.
	cfg := Config{DeltaHistory: 4, LowBW: Policy{DeltaDepth: 16}}
	if d := cfg.DepthFor(CohortDefault); d != 4 {
		t.Fatalf("default cohort depth = %d, want 4", d)
	}
	if d := cfg.DepthFor(CohortLowBW); d != 16 {
		t.Fatalf("lowbw cohort depth = %d, want 16", d)
	}
	// The ring is sized to the deepest cohort so every admissible base
	// is answerable.
	if r := cfg.RingDepth(); r != 16 {
		t.Fatalf("RingDepth = %d, want 16", r)
	}
	// Negative disables: per cohort via DeltaDepth, globally via
	// DeltaHistory (0 reports the window off, never negative).
	off := Config{DeltaHistory: 8, Default: Policy{DeltaDepth: -1}}
	if d := off.DepthFor(CohortDefault); d != 0 {
		t.Fatalf("disabled cohort depth = %d, want 0", d)
	}
	if d := off.DepthFor(CohortLowBW); d != 8 {
		t.Fatalf("lowbw depth beside a disabled default = %d, want 8", d)
	}
	allOff := Config{DeltaHistory: -1}
	if allOff.RingDepth() != 0 {
		t.Fatalf("globally disabled RingDepth = %d, want 0", allOff.RingDepth())
	}
	if got := allOff.DeltaSchemes(); len(got) != 0 {
		t.Fatalf("disabled config still pre-encodes %v", got)
	}
	// A single disabled cohort drops out of the pre-encode set.
	half := Config{
		DeltaHistory: 8,
		Default:      Policy{Delta: codec.Q8},
		LowBW:        Policy{Delta: codec.Scheme{Kind: codec.KindTopK}, DeltaDepth: -1},
	}
	if got := half.DeltaSchemes(); len(got) != 1 || got[0] != codec.Q8 {
		t.Fatalf("half-disabled DeltaSchemes = %v", got)
	}
}
