package featurestore

import (
	"container/list"
	"fmt"
)

// CacheStats counts device cache effectiveness; reuse across tasks is the
// §3.3 win ("when a feature value is created for one task, the runtime can
// cache it for reuse to reduce latency").
type CacheStats struct {
	Hits, Misses, Evictions, Expirations int
}

// HitRate returns hits/(hits+misses), 0 when untouched.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cached feature value.
type entry struct {
	key      string
	size     int
	expireAt float64 // virtual time; +Inf when no TTL
	value    []byte
}

// DeviceCache is a byte-budgeted LRU with per-entry TTLs, keyed by virtual
// time (the simulator's clock), modeling the on-device feature/vocab cache.
type DeviceCache struct {
	budget int
	used   int
	ll     *list.List // front = most recent
	items  map[string]*list.Element
	stats  CacheStats
}

// NewDeviceCache creates a cache holding at most budget bytes.
func NewDeviceCache(budget int) (*DeviceCache, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("featurestore: cache budget must be positive, got %d", budget)
	}
	return &DeviceCache{budget: budget, ll: list.New(), items: make(map[string]*list.Element)}, nil
}

// Put inserts a value with a TTL (ttlSec <= 0 means no expiry), evicting
// LRU entries to fit. Values larger than the whole budget are rejected.
func (c *DeviceCache) Put(key string, value []byte, now, ttlSec float64) error {
	if len(value) > c.budget {
		return fmt.Errorf("featurestore: value %s (%d B) exceeds cache budget %d", key, len(value), c.budget)
	}
	if el, ok := c.items[key]; ok {
		c.removeElement(el, false)
	}
	expire := inf
	if ttlSec > 0 {
		expire = now + ttlSec
	}
	for c.used+len(value) > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeElement(back, true)
	}
	e := &entry{key: key, size: len(value), expireAt: expire, value: value}
	c.items[key] = c.ll.PushFront(e)
	c.used += e.size
	return nil
}

// Get returns the cached value when present and unexpired at `now`.
func (c *DeviceCache) Get(key string, now float64) ([]byte, bool) {
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	e := el.Value.(*entry)
	if e.expireAt <= now {
		c.removeElement(el, false)
		c.stats.Expirations++
		c.stats.Misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return e.value, true
}

// UsedBytes returns current occupancy.
func (c *DeviceCache) UsedBytes() int { return c.used }

// Len returns the entry count.
func (c *DeviceCache) Len() int { return c.ll.Len() }

// Stats returns a copy of the counters.
func (c *DeviceCache) Stats() CacheStats { return c.stats }

func (c *DeviceCache) removeElement(el *list.Element, evicted bool) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.used -= e.size
	if evicted {
		c.stats.Evictions++
	}
}

var inf = 1e308

// FetchPlan decides where a training/inference record's features come from
// and what the access costs: the §3.3 trade-off between pulling cloud
// features on demand and caching them on the device.
type FetchPlan struct {
	DeviceFeatures []string
	CloudHits      []string // served from the device cache
	CloudPulls     []string // fetched over the network
	PullBytes      int
}

// PlanFetch consults the catalog and cache for the named features at the
// given virtual time, inserting pulled cacheable values with the feature's
// retention as TTL.
func PlanFetch(cat *Catalog, cache *DeviceCache, features []string, now float64) (FetchPlan, error) {
	var plan FetchPlan
	for _, name := range features {
		spec, err := cat.Get(name)
		if err != nil {
			return FetchPlan{}, err
		}
		if spec.Locality == DeviceLocal {
			plan.DeviceFeatures = append(plan.DeviceFeatures, name)
			continue
		}
		if cache != nil && spec.Cacheable {
			if _, ok := cache.Get(name, now); ok {
				plan.CloudHits = append(plan.CloudHits, name)
				continue
			}
		}
		plan.CloudPulls = append(plan.CloudPulls, name)
		plan.PullBytes += spec.SizeBytes
		if cache != nil && spec.Cacheable {
			// Best effort: oversized values simply aren't cached.
			_ = cache.Put(name, make([]byte, spec.SizeBytes), now, spec.RetentionSec)
		}
	}
	return plan, nil
}
