// Package featurestore implements the device-cloud feature catalog of the
// paper (§3.3 "Data Locality", Fig 6): cloud-managed metadata for
// device-side features (retention policies, size limits), caching of
// cloud-side features and vocabulary files on the device, transform
// placement, and cross-application reuse of computed feature values.
package featurestore

import (
	"fmt"
	"sort"
	"sync"
)

// Locality says where a feature's source of truth lives.
type Locality string

// Feature localities.
const (
	DeviceLocal Locality = "device" // generated and kept on device
	CloudPulled Locality = "cloud"  // pulled on demand, cacheable on device
)

// Placement says where the feature transformation runs.
type Placement string

// Transform placements.
const (
	TransformOnDevice Placement = "device"
	TransformInCloud  Placement = "cloud"
)

// FeatureSpec is catalog metadata for one feature.
type FeatureSpec struct {
	Name      string
	Locality  Locality
	Transform Placement
	// SizeBytes is the serialized value size (embeddings are large, ids
	// are small) — drives cache budgeting.
	SizeBytes int
	// RetentionSec is the device-side retention policy; 0 = session-only.
	RetentionSec float64
	// Cacheable marks cloud features that may be cached on device
	// ("inference records containing smaller cloud-based features can be
	// cached on the device").
	Cacheable bool
}

// Validate reports spec errors.
func (f FeatureSpec) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("featurestore: feature needs a name")
	}
	switch f.Locality {
	case DeviceLocal, CloudPulled:
	default:
		return fmt.Errorf("featurestore: feature %s has unknown locality %q", f.Name, f.Locality)
	}
	switch f.Transform {
	case TransformOnDevice, TransformInCloud:
	default:
		return fmt.Errorf("featurestore: feature %s has unknown placement %q", f.Name, f.Transform)
	}
	if f.SizeBytes < 0 || f.RetentionSec < 0 {
		return fmt.Errorf("featurestore: feature %s has negative size/retention", f.Name)
	}
	return nil
}

// Catalog is the cloud-side registry of feature specs.
type Catalog struct {
	mu    sync.RWMutex
	specs map[string]FeatureSpec
	// DeviceBudgetBytes caps the total device-side feature footprint the
	// catalog admits ("device-based features' retention policies and data
	// size limits through cloud-based metadata").
	DeviceBudgetBytes int
}

// NewCatalog creates a catalog with a device storage budget.
func NewCatalog(deviceBudgetBytes int) *Catalog {
	return &Catalog{specs: make(map[string]FeatureSpec), DeviceBudgetBytes: deviceBudgetBytes}
}

// Register adds or replaces a feature spec, enforcing the device budget
// over device-local features.
func (c *Catalog) Register(spec FeatureSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for name, s := range c.specs {
		if name == spec.Name {
			continue
		}
		if s.Locality == DeviceLocal {
			total += s.SizeBytes
		}
	}
	if spec.Locality == DeviceLocal && c.DeviceBudgetBytes > 0 && total+spec.SizeBytes > c.DeviceBudgetBytes {
		return fmt.Errorf("featurestore: feature %s (%d B) exceeds device budget (%d of %d B used)",
			spec.Name, spec.SizeBytes, total, c.DeviceBudgetBytes)
	}
	c.specs[spec.Name] = spec
	return nil
}

// Get returns a spec by name.
func (c *Catalog) Get(name string) (FeatureSpec, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.specs[name]
	if !ok {
		return FeatureSpec{}, fmt.Errorf("featurestore: feature %s not registered", name)
	}
	return s, nil
}

// Names lists registered features sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.specs))
	for n := range c.specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DeviceFootprintBytes sums registered device-local feature sizes.
func (c *Catalog) DeviceFootprintBytes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, s := range c.specs {
		if s.Locality == DeviceLocal {
			total += s.SizeBytes
		}
	}
	return total
}
