package featurestore

import (
	"fmt"
	"testing"

	"flint/internal/data"
)

func spec(name string, loc Locality, size int) FeatureSpec {
	return FeatureSpec{Name: name, Locality: loc, Transform: TransformOnDevice, SizeBytes: size, Cacheable: loc == CloudPulled}
}

func TestCatalogRegisterAndBudget(t *testing.T) {
	c := NewCatalog(1000)
	if err := c.Register(spec("clicks", DeviceLocal, 400)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(spec("embeds", CloudPulled, 100000)); err != nil {
		t.Fatal(err) // cloud features don't count against the device budget
	}
	if err := c.Register(spec("history", DeviceLocal, 500)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(spec("huge", DeviceLocal, 200)); err == nil {
		t.Fatal("budget exceeded must fail")
	}
	if got := c.DeviceFootprintBytes(); got != 900 {
		t.Fatalf("footprint %d", got)
	}
	if len(c.Names()) != 3 {
		t.Fatalf("names: %v", c.Names())
	}
	// Replacing an existing feature re-counts, not double-counts.
	if err := c.Register(spec("history", DeviceLocal, 600)); err != nil {
		t.Fatal(err)
	}
	if got := c.DeviceFootprintBytes(); got != 1000 {
		t.Fatalf("footprint after replace %d", got)
	}
}

func TestCatalogValidation(t *testing.T) {
	c := NewCatalog(0)
	bad := []FeatureSpec{
		{},
		{Name: "x", Locality: "mars", Transform: TransformOnDevice},
		{Name: "x", Locality: DeviceLocal, Transform: "nowhere"},
		{Name: "x", Locality: DeviceLocal, Transform: TransformOnDevice, SizeBytes: -1},
	}
	for i, s := range bad {
		if err := c.Register(s); err == nil {
			t.Fatalf("spec %d must fail", i)
		}
	}
	if _, err := c.Get("missing"); err == nil {
		t.Fatal("missing feature must fail")
	}
}

func TestDeviceCacheLRU(t *testing.T) {
	c, err := NewDeviceCache(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", make([]byte, 40), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("b", make([]byte, 40), 1, 0); err != nil {
		t.Fatal(err)
	}
	// Touch a so b becomes LRU.
	if _, ok := c.Get("a", 2); !ok {
		t.Fatal("a must hit")
	}
	// c displaces b (LRU), not a.
	if err := c.Put("c", make([]byte, 40), 3, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("b", 4); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a", 4); !ok {
		t.Fatal("a should survive")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions %d", st.Evictions)
	}
	if c.UsedBytes() > 100 {
		t.Fatalf("over budget: %d", c.UsedBytes())
	}
}

func TestDeviceCacheTTL(t *testing.T) {
	c, _ := NewDeviceCache(100)
	c.Put("v", make([]byte, 10), 0, 50)
	if _, ok := c.Get("v", 49); !ok {
		t.Fatal("should hit before expiry")
	}
	if _, ok := c.Get("v", 51); ok {
		t.Fatal("should expire after TTL")
	}
	if c.Stats().Expirations != 1 {
		t.Fatalf("expirations %d", c.Stats().Expirations)
	}
}

func TestDeviceCacheErrors(t *testing.T) {
	if _, err := NewDeviceCache(0); err == nil {
		t.Fatal("zero budget must fail")
	}
	c, _ := NewDeviceCache(10)
	if err := c.Put("big", make([]byte, 20), 0, 0); err == nil {
		t.Fatal("oversized value must fail")
	}
}

func TestHitRate(t *testing.T) {
	c, _ := NewDeviceCache(100)
	c.Put("x", make([]byte, 1), 0, 0)
	c.Get("x", 1)
	c.Get("y", 1)
	if got := c.Stats().HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v", got)
	}
	var empty CacheStats
	if empty.HitRate() != 0 {
		t.Fatal("empty hit rate")
	}
}

func TestPlanFetchCachesCloudFeatures(t *testing.T) {
	cat := NewCatalog(0)
	if err := cat.Register(spec("device_ctx", DeviceLocal, 100)); err != nil {
		t.Fatal(err)
	}
	cloud := spec("member_embed", CloudPulled, 2000)
	cloud.RetentionSec = 3600
	if err := cat.Register(cloud); err != nil {
		t.Fatal(err)
	}
	cache, _ := NewDeviceCache(10000)

	plan1, err := PlanFetch(cat, cache, []string{"device_ctx", "member_embed"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan1.CloudPulls) != 1 || plan1.PullBytes != 2000 {
		t.Fatalf("first fetch should pull: %+v", plan1)
	}
	// Second task reuses the cached value — the §3.3 reuse win.
	plan2, err := PlanFetch(cat, cache, []string{"member_embed"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.CloudHits) != 1 || plan2.PullBytes != 0 {
		t.Fatalf("second fetch should hit cache: %+v", plan2)
	}
	// After retention expires, it pulls again.
	plan3, _ := PlanFetch(cat, cache, []string{"member_embed"}, 4000)
	if len(plan3.CloudPulls) != 1 {
		t.Fatalf("expired fetch should pull: %+v", plan3)
	}
	if _, err := PlanFetch(cat, cache, []string{"ghost"}, 0); err == nil {
		t.Fatal("unknown feature must fail")
	}
}

func TestPlanVocabTradeoff(t *testing.T) {
	words := make([]string, 5000)
	for i := range words {
		words[i] = fmt.Sprintf("feature_value_%d", i)
	}
	v := data.NewVocabulary(words)
	asset := BuildAsset("title", v)
	if asset.Cardinality != 5000 || asset.SizeBytes <= 0 {
		t.Fatalf("asset: %+v", asset)
	}
	plan, err := PlanVocab([]VocabAsset{asset}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if plan.VocabBytes != asset.SizeBytes {
		t.Fatal("vocab bytes mismatch")
	}
	if plan.SavedBytes != plan.VocabBytes {
		t.Fatal("hashing should save the full asset size")
	}
	if plan.CollisionRate <= 0.5 {
		t.Fatalf("5000 values into 1024 buckets must collide heavily, got %v", plan.CollisionRate)
	}
	// A huge hash dim nearly eliminates collisions.
	plan2, _ := PlanVocab([]VocabAsset{asset}, 1<<22)
	if plan2.CollisionRate > 0.01 {
		t.Fatalf("big dim collision rate %v", plan2.CollisionRate)
	}
	if _, err := PlanVocab(nil, 0); err == nil {
		t.Fatal("bad hash dim must fail")
	}
	if _, err := PlanVocab([]VocabAsset{{Feature: "x", SizeBytes: -1}}, 10); err == nil {
		t.Fatal("negative asset must fail")
	}
}
