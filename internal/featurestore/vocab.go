package featurestore

import (
	"fmt"

	"flint/internal/data"
)

// VocabAsset describes one vocabulary file the device must hold to encode
// a categorical feature (§4.1: vocab files "could be as big as 1.28 MB for
// high-cardinality variables").
type VocabAsset struct {
	Feature     string
	Cardinality int
	SizeBytes   int
}

// VocabPlanning compares the two §4.1 encoding strategies for a feature
// set: shipping vocabulary files versus feature hashing, which trades
// storage for hash collisions ("trading less storage space with lower
// predictive power").
type VocabPlanning struct {
	VocabBytes    int
	HashDim       int
	HashBytes     int     // hashing needs no asset, only the fixed dim
	CollisionRate float64 // expected collision fraction at HashDim
	SavedBytes    int
}

// PlanVocab sizes both strategies for the given assets and hash dimension.
func PlanVocab(assets []VocabAsset, hashDim int) (VocabPlanning, error) {
	if hashDim <= 0 {
		return VocabPlanning{}, fmt.Errorf("featurestore: hash dim must be positive, got %d", hashDim)
	}
	var p VocabPlanning
	p.HashDim = hashDim
	total := 0
	for _, a := range assets {
		if a.SizeBytes < 0 || a.Cardinality < 0 {
			return VocabPlanning{}, fmt.Errorf("featurestore: asset %s has negative size/cardinality", a.Feature)
		}
		p.VocabBytes += a.SizeBytes
		total += a.Cardinality
	}
	p.CollisionRate = data.CollisionRate(total, hashDim)
	p.HashBytes = 0 // the hash function is code, not an asset
	p.SavedBytes = p.VocabBytes - p.HashBytes
	return p, nil
}

// BuildAsset derives a VocabAsset from an actual vocabulary.
func BuildAsset(feature string, v *data.Vocabulary) VocabAsset {
	return VocabAsset{Feature: feature, Cardinality: v.Size() - 1, SizeBytes: v.SizeBytes()}
}
