package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"flint/internal/coord"
	"flint/internal/metrics"
)

// maxPartialBody bounds a /shard/v1/partial read: a raw64 partial of
// the largest zoo model is ~7.4 MB, far under this.
const maxPartialBody = 64 << 20

// maxRoutedJSONBody bounds how much of a JSON /v1 body the gateway will
// buffer to find the device id. Matches the coordinator's own update
// budget, so the gateway never rejects a body a shard would accept.
const maxRoutedJSONBody = 64 << 20

// GatewayConfig parameterizes the tier gateway.
type GatewayConfig struct {
	// Shards lists the replica base URLs; a URL's index is its shard id
	// on the ring and the tier exchange.
	Shards []string
	// Replicas is the ring vnode count per shard (0 = default 64).
	Replicas int
	// Leader is the tier's round leader, hosted in the gateway process
	// so the exchange and the halt gate share one membership view.
	Leader *Leader
	// DefaultJob names the job whose tier version the rollup reports as
	// its top-level "version" — the field single-job clients (and the
	// fleet generator's round watcher) poll for progress.
	DefaultJob string
}

// gatewayCounters pre-register the routing plane's counter shape.
var gatewayCounters = []string{
	"route_by_device", "route_default", "route_rejected",
	"halt_rejected_tasks", "proxy_errors", "rollup_requests",
	"partials_proxied", "checkin_batch_split",
}

// haltRetryAfter renders a 503 halt response's Retry-After with ±25%
// jitter around base seconds, as a fractional-seconds decimal ("0.87").
// A fixed "1" would march every halted client back in one synchronized
// thundering herd the instant the tier recovers; jittering at the source
// spreads the retry wave without trusting every client to implement its
// own backoff. Integer rounding at a 1-second base would erase the
// jitter entirely, hence the decimal — strictly, delay-seconds is an
// integer field, but clients that parse it at all accept floats, and
// rounding ones still collapse to at most two retry cohorts.
func haltRetryAfter(base float64) string {
	return strconv.FormatFloat(base*(0.75+0.5*rand.Float64()), 'f', 2, 64)
}

// Gateway is the tier's front door: one HTTP handler that routes the
// public /v1 device API to shard replicas by consistent-hashed device
// id over pooled keep-alive connections, hosts the leader's private
// /shard/v1 exchange, enforces the §3.4 halt on task assignment, and
// rolls every shard's /v1/status up into one tier view.
type Gateway struct {
	ring     *Ring
	shards   []string
	leader   *Leader
	job      string
	client   *http.Client
	counters *metrics.CounterSet
}

// NewGateway builds the tier gateway.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("shard: gateway needs at least one shard URL")
	}
	if cfg.Leader == nil {
		return nil, fmt.Errorf("shard: gateway needs a leader")
	}
	ring, err := NewRing(len(cfg.Shards), cfg.Replicas)
	if err != nil {
		return nil, err
	}
	shards := make([]string, len(cfg.Shards))
	for i, s := range cfg.Shards {
		for len(s) > 0 && s[len(s)-1] == '/' {
			s = s[:len(s)-1]
		}
		if s == "" {
			return nil, fmt.Errorf("shard: empty URL for shard %d", i)
		}
		shards[i] = s
	}
	g := &Gateway{
		ring:   ring,
		shards: shards,
		leader: cfg.Leader,
		job:    cfg.DefaultJob,
		client: &http.Client{
			// No client timeout: /v1/task long-polls ride through; the
			// transport's pooled keep-alive connections are the point.
			Transport: &http.Transport{
				MaxIdleConns:        4 * len(shards),
				MaxIdleConnsPerHost: 4,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		counters: metrics.NewCounterSet(),
	}
	for _, name := range gatewayCounters {
		g.counters.Counter(name)
	}
	return g, nil
}

// Ring exposes the gateway's routing ring (tests and tooling).
func (g *Gateway) Ring() *Ring { return g.ring }

// Counters exposes the routing plane's counter set.
func (g *Gateway) Counters() *metrics.CounterSet { return g.counters }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case pathPartial:
		g.handlePartial(w, r)
	case pathPing:
		g.handlePing(w, r)
	case pathTier:
		writeJSON(w, http.StatusOK, g.leader.Status())
	case "/v1/status":
		g.handleRollup(w, r)
	default:
		g.route(w, r)
	}
}

// op extracts the coordinator verb a /v1 path addresses, looking
// through the tenant prefix: /v1/task and /v1/jobs/<job>/task are both
// "task". Non-/v1 paths return "".
func op(path string) string {
	rest, ok := strings.CutPrefix(path, "/v1/")
	if !ok {
		return ""
	}
	if sub, ok := strings.CutPrefix(rest, "jobs/"); ok {
		if _, after, ok := strings.Cut(sub, "/"); ok {
			rest = after
		} else {
			// /v1/jobs or /v1/jobs/<job> — job-plane metadata, no verb.
			return "jobs"
		}
	}
	verb, _, _ := strings.Cut(rest, "/")
	return verb
}

// route forwards one device-API request to its owning shard. The verb
// decides where the device id lives: task/heartbeat carry it in the
// query string, a binary update in the X-Flint-Device header (that body
// streams through unbuffered — the hot ingest path stays zero-copy
// through the gateway), and JSON check-ins/updates in the body, which
// is buffered once to read the id and replayed to the shard.
// Requests with no device id (job-plane metadata) go to shard 0 — any
// replica can answer them.
func (g *Gateway) route(w http.ResponseWriter, r *http.Request) {
	verb := op(r.URL.Path)
	if verb == "" {
		g.counters.Counter("route_rejected").Inc()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown path %q", r.URL.Path))
		return
	}
	if verb == "checkin" && strings.HasSuffix(r.URL.Path, "/checkin/batch") {
		// A batch check-in carries devices for many ring positions in one
		// body; it must be split per owning shard, not routed whole.
		g.routeCheckInBatch(w, r)
		return
	}
	var (
		body   io.Reader = r.Body
		length           = r.ContentLength
		device int64
		routed = true
		err    error
	)
	switch verb {
	case "task", "heartbeat":
		if verb == "task" && !g.leader.Healthy() {
			// §3.4 horizontally: a lost shard halts assignment tier-wide.
			// Devices keep their check-in/heartbeat liveness and updates
			// already in flight still land; only new work stops until
			// membership recovers.
			g.counters.Counter("halt_rejected_tasks").Inc()
			w.Header().Set("Retry-After", haltRetryAfter(1))
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("shard tier halted (membership unhealthy)"))
			return
		}
		device, err = strconv.ParseInt(r.URL.Query().Get("device"), 10, 64)
		if err != nil {
			err = fmt.Errorf("bad device parameter: %w", err)
		}
	case "update":
		if strings.HasPrefix(r.Header.Get("Content-Type"), coord.ContentTypeTensor) {
			device, err = strconv.ParseInt(r.Header.Get("X-Flint-Device"), 10, 64)
			if err != nil {
				err = fmt.Errorf("bad X-Flint-Device header: %w", err)
			}
			break
		}
		device, body, length, err = bufferDeviceJSON(w, r)
	case "checkin":
		device, body, length, err = bufferDeviceJSON(w, r)
	default:
		routed = false
	}
	if err != nil {
		g.counters.Counter("route_rejected").Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	shard := 0
	if routed {
		shard = g.ring.Shard(device)
		g.counters.Counter("route_by_device").Inc()
	} else {
		g.counters.Counter("route_default").Inc()
	}
	g.proxy(w, r, shard, body, length)
}

// routeCheckInBatch splits one batched check-in across the ring: the
// body is decoded once, its devices partitioned by consistent-hashed
// owner, and per-shard sub-batches forwarded concurrently, so a
// registration storm keeps the batch path's per-shard lock amortization
// end to end instead of collapsing to one mis-routed shard. The merged
// reply sums the per-shard counts; any shard failure fails the whole
// batch with 502 (check-ins are idempotent, so the load plane just
// retries the batch).
func (g *Gateway) routeCheckInBatch(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRoutedJSONBody))
	if err != nil {
		g.counters.Counter("route_rejected").Inc()
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	var req coord.BatchCheckInRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		g.counters.Counter("route_rejected").Inc()
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch body: %w", err))
		return
	}
	parts := make([][]coord.CheckInRequest, len(g.shards))
	for _, d := range req.Devices {
		si := g.ring.Shard(d.DeviceID)
		parts[si] = append(parts[si], d)
	}
	g.counters.Counter("checkin_batch_split").Inc()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		merged coord.BatchCheckInResponse
		fails  []error
	)
	for si, devs := range parts {
		if len(devs) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, devs []coord.CheckInRequest) {
			defer wg.Done()
			body, err := json.Marshal(coord.BatchCheckInRequest{Devices: devs})
			if err == nil {
				var sub *http.Request
				sub, err = http.NewRequestWithContext(r.Context(), http.MethodPost,
					g.shards[si]+r.URL.RequestURI(), bytes.NewReader(body))
				if err == nil {
					sub.Header.Set("Content-Type", "application/json")
					var resp *http.Response
					if resp, err = g.client.Do(sub); err == nil {
						defer resp.Body.Close()
						var sr coord.BatchCheckInResponse
						if resp.StatusCode != http.StatusOK {
							err = fmt.Errorf("shard %d: status %s", si, resp.Status)
						} else if err = json.NewDecoder(resp.Body).Decode(&sr); err == nil {
							mu.Lock()
							merged.Accepted += sr.Accepted
							merged.New += sr.New
							merged.Eligible += sr.Eligible
							merged.RejectedIDs = append(merged.RejectedIDs, sr.RejectedIDs...)
							// Shards publish independent version sequences;
							// report the tier's furthest-along pair, which is
							// all the advisory field promises here.
							if sr.Version > merged.Version {
								merged.Version = sr.Version
							}
							if sr.RoundID > merged.RoundID {
								merged.RoundID = sr.RoundID
							}
							mu.Unlock()
						}
					}
				}
			}
			if err != nil {
				mu.Lock()
				fails = append(fails, err)
				mu.Unlock()
			}
		}(si, devs)
	}
	wg.Wait()
	if len(fails) > 0 {
		g.counters.Counter("proxy_errors").Inc()
		writeError(w, http.StatusBadGateway, fmt.Errorf("batch check-in: %d shard(s) failed: %v", len(fails), fails[0]))
		return
	}
	g.counters.Counter("route_by_device").Inc()
	writeJSON(w, http.StatusOK, merged)
}

// bufferDeviceJSON reads a JSON body once, extracts its device_id, and
// hands the buffered bytes back for the proxied request.
func bufferDeviceJSON(w http.ResponseWriter, r *http.Request) (int64, io.Reader, int64, error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRoutedJSONBody))
	if err != nil {
		return 0, nil, 0, fmt.Errorf("read body: %w", err)
	}
	var req struct {
		DeviceID int64 `json:"device_id"`
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		return 0, nil, 0, fmt.Errorf("bad JSON body: %w", err)
	}
	return req.DeviceID, bytes.NewReader(raw), int64(len(raw)), nil
}

// proxy forwards the request to a shard over the pooled client and
// streams the response back verbatim.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, shard int, body io.Reader, length int64) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method, g.shards[shard]+r.URL.RequestURI(), body)
	if err != nil {
		g.counters.Counter("proxy_errors").Inc()
		writeError(w, http.StatusBadGateway, err)
		return
	}
	out.Header = r.Header.Clone()
	out.Header.Del("Connection")
	out.ContentLength = length
	resp, err := g.client.Do(out)
	if err != nil {
		g.counters.Counter("proxy_errors").Inc()
		writeError(w, http.StatusBadGateway, fmt.Errorf("shard %d: %w", shard, err))
		return
	}
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handlePartial is the server side of the exchange's partial verb: it
// unpacks the X-Flint metadata, hands the blob to the leader, and maps
// the verdict back onto the wire (503 = halted, body = install blob).
func (g *Gateway) handlePartial(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("want POST"))
		return
	}
	pc := coord.PartialCommit{Job: r.Header.Get(hdrJob)}
	var err error
	if pc.ShardID, err = strconv.Atoi(r.Header.Get(hdrShard)); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %w", hdrShard, err))
		return
	}
	if pc.Round, err = strconv.ParseUint(r.Header.Get(hdrRound), 10, 64); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %w", hdrRound, err))
		return
	}
	if pc.BaseVersion, err = strconv.Atoi(r.Header.Get(hdrBase)); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %w", hdrBase, err))
		return
	}
	if pc.Updates, err = strconv.Atoi(r.Header.Get(hdrUpdates)); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %w", hdrUpdates, err))
		return
	}
	if pc.Weight, err = strconv.ParseFloat(r.Header.Get(hdrWeight), 64); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %w", hdrWeight, err))
		return
	}
	if pc.Blob, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxPartialBody)); err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	inst, err := g.leader.SubmitPartial(pc)
	if err == coord.ErrTierHalted {
		w.Header().Set("Retry-After", haltRetryAfter(1))
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	g.counters.Counter("partials_proxied").Inc()
	w.Header().Set(hdrVersion, strconv.Itoa(inst.Version))
	w.Header().Set("Content-Type", coord.ContentTypeTensor)
	w.Header().Set("Content-Length", strconv.Itoa(len(inst.Blob)))
	w.WriteHeader(http.StatusOK)
	w.Write(inst.Blob)
}

// handlePing is the server side of the heartbeat verb.
func (g *Gateway) handlePing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("want POST"))
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad shard parameter: %w", err))
		return
	}
	if err := g.leader.Ping(id); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// ShardStatus is one replica's row in the gateway rollup: its URL,
// whether its status probe succeeded, and the raw status document when
// it did.
type ShardStatus struct {
	Index  int             `json:"index"`
	URL    string          `json:"url"`
	OK     bool            `json:"ok"`
	Error  string          `json:"error,omitempty"`
	Status json.RawMessage `json:"status,omitempty"`
}

// Rollup is the gateway's /v1/status payload: the tier's authoritative
// global version at the top level (so single-job pollers and the fleet
// generator's round watcher keep reading "version" unchanged), the
// leader's membership/exchange view, the routing counters, and every
// shard's own status document.
type Rollup struct {
	Version int              `json:"version"`
	Tier    TierStatus       `json:"tier"`
	Gateway map[string]int64 `json:"gateway_counters"`
	Shards  []ShardStatus    `json:"shards"`
}

// handleRollup fans a status probe out to every shard concurrently and
// folds the responses into one tier document. The rollup itself always
// answers 200 — a dead shard shows up as ok=false in its row and as
// healthy=false in the tier section, which is the signal operators and
// the smoke drill actually look for.
func (g *Gateway) handleRollup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("want GET"))
		return
	}
	g.counters.Counter("rollup_requests").Inc()
	rows := make([]ShardStatus, len(g.shards))
	var wg sync.WaitGroup
	for i, base := range g.shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			rows[i] = ShardStatus{Index: i, URL: base}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, base+"/v1/status", nil)
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
			if err != nil || resp.StatusCode != http.StatusOK {
				rows[i].Error = fmt.Sprintf("status %s", resp.Status)
				return
			}
			rows[i].OK = true
			rows[i].Status = raw
		}(i, base)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, Rollup{
		Version: g.leader.Version(g.job),
		Tier:    g.leader.Status(),
		Gateway: g.counters.Snapshot(),
		Shards:  rows,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
