package shard

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"flint/internal/coord"
)

// batchBackend is a fake shard that understands /v1/checkin/batch: it
// records which devices its sub-batch carried and answers with
// shard-distinct version/round numbers so the merge rule is observable.
type batchBackend struct {
	index int
	mu    sync.Mutex
	seen  []int64
	fail  bool
}

func (b *batchBackend) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/checkin/batch" {
			writeJSON(w, http.StatusOK, map[string]any{"ok": true})
			return
		}
		if b.fail {
			http.Error(w, "shard down", http.StatusInternalServerError)
			return
		}
		var req coord.BatchCheckInRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b.mu.Lock()
		for _, d := range req.Devices {
			b.seen = append(b.seen, d.DeviceID)
		}
		b.mu.Unlock()
		writeJSON(w, http.StatusOK, coord.BatchCheckInResponse{
			Accepted: len(req.Devices),
			New:      len(req.Devices),
			Eligible: len(req.Devices) - 1,
			Version:  10 + b.index,
			RoundID:  uint64(100 + b.index),
		})
	})
}

// TestGatewayCheckInBatchSplit pins the batched check-in fan-out: one
// client batch is partitioned by the ring, each shard sees exactly its
// own devices, and the reply merges counts (sums) and version/round
// (max — shards publish independent sequences).
func TestGatewayCheckInBatchSplit(t *testing.T) {
	leader, err := NewLeader(LeaderConfig{Shards: 3, Grace: time.Hour, Params: testParams})
	if err != nil {
		t.Fatal(err)
	}
	backs := make([]*batchBackend, 3)
	urls := make([]string, 3)
	for i := range backs {
		backs[i] = &batchBackend{index: i}
		srv := httptest.NewServer(backs[i].handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	gw, err := NewGateway(GatewayConfig{Shards: urls, Leader: leader})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(gw)
	defer front.Close()

	var req coord.BatchCheckInRequest
	for id := int64(1); id <= 60; id++ {
		req.Devices = append(req.Devices, coord.CheckInRequest{DeviceID: id, Model: "Pixel-6"})
	}
	raw, _ := json.Marshal(req)
	resp, err := http.Post(front.URL+"/v1/checkin/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch through gateway: %s", resp.Status)
	}
	var out coord.BatchCheckInResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Accepted != 60 || out.New != 60 {
		t.Fatalf("merged counts %+v, want 60 accepted/new", out)
	}
	ring := gw.Ring()
	shardsHit := 0
	for s, b := range backs {
		b.mu.Lock()
		for _, id := range b.seen {
			if ring.Shard(id) != s {
				t.Fatalf("shard %d got device %d owned by shard %d", s, id, ring.Shard(id))
			}
		}
		n := len(b.seen)
		b.mu.Unlock()
		if n > 0 {
			shardsHit++
		}
	}
	if shardsHit < 2 {
		t.Fatalf("only %d shards saw sub-batches for 60 devices", shardsHit)
	}
	// Eligible: each hit shard under-reports by one in the fake.
	if out.Eligible != 60-shardsHit {
		t.Fatalf("merged eligible %d, want %d", out.Eligible, 60-shardsHit)
	}
	// Version/round merge as max across the shards that answered.
	wantVer := 0
	for s, b := range backs {
		b.mu.Lock()
		if len(b.seen) > 0 && 10+s > wantVer {
			wantVer = 10 + s
		}
		b.mu.Unlock()
	}
	if out.Version != wantVer || out.RoundID != uint64(wantVer+90) {
		t.Fatalf("merged version/round %d/%d, want %d/%d", out.Version, out.RoundID, wantVer, wantVer+90)
	}

	// One shard failing poisons the whole batch: check-ins are
	// idempotent, so the client retries everything against 502.
	backs[1].fail = true
	resp2, err := http.Post(front.URL+"/v1/checkin/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("partial shard failure returned %s, want 502", resp2.Status)
	}
}
