package shard

import (
	"sync"
	"time"
)

// Pinger is the heartbeat half of the tier exchange: the in-process
// Leader and the HTTP exchange client both implement it.
type Pinger interface {
	Ping(shardID int) error
}

// Heartbeat is a shard replica's membership pump: a background loop
// pinging the tier leader so the shard counts as live. A replica that
// dies (or partitions) simply stops pinging and ages out of the
// leader's grace window — no explicit deregistration protocol, which
// is exactly what makes the halt rule robust to crashes.
type Heartbeat struct {
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// StartHeartbeat begins pinging the exchange as shardID every
// interval. The first ping fires immediately, so a freshly booted
// tier converges to healthy in one interval, not two. Ping errors are
// dropped: a dead leader makes the ping fail AND the tier halt, and
// the loop's job is only to keep trying until the leader hears us.
func StartHeartbeat(p Pinger, shardID int, interval time.Duration) *Heartbeat {
	if interval <= 0 {
		interval = time.Second
	}
	h := &Heartbeat{stop: make(chan struct{})}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		p.Ping(shardID)
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				p.Ping(shardID)
			}
		}
	}()
	return h
}

// Stop ends the heartbeat loop and waits for it to exit. Idempotent.
func (h *Heartbeat) Stop() {
	h.once.Do(func() { close(h.stop) })
	h.wg.Wait()
}
