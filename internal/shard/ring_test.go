package shard

import "testing"

func TestRingRejectsEmptyTier(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("want error for zero shards")
	}
}

func TestRingIsDeterministicAndStable(t *testing.T) {
	a, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 5000; id++ {
		sa := a.Shard(id)
		if sa < 0 || sa >= 4 {
			t.Fatalf("device %d mapped outside tier: %d", id, sa)
		}
		if sb := b.Shard(id); sa != sb {
			t.Fatalf("rings disagree on device %d: %d vs %d", id, sa, sb)
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	const shards, devices = 4, 20000
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	var counts [shards]int
	for id := int64(1); id <= devices; id++ {
		counts[r.Shard(id)]++
	}
	// 64 vnodes/shard keeps shares within a loose band of uniform; the
	// bound here is deliberately slack (±60%) — the test is about gross
	// clumping (a shard owning ~nothing), not statistical perfection.
	for s, n := range counts {
		if n < devices/shards*40/100 || n > devices/shards*160/100 {
			t.Fatalf("shard %d owns %d of %d devices (want near %d)", s, n, devices, devices/shards)
		}
	}
}

func TestRingMinimalMovementOnGrowth(t *testing.T) {
	const devices = 10000
	r3, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for id := int64(1); id <= devices; id++ {
		if r3.Shard(id) != r4.Shard(id) {
			moved++
		}
	}
	// Consistent hashing's point: growing 3→4 shards should move about
	// 1/4 of the space, not reshuffle nearly everything like mod-N.
	if moved > devices/2 {
		t.Fatalf("%d of %d devices moved on 3→4 growth (want ~%d)", moved, devices, devices/4)
	}
}
