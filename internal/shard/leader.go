package shard

import (
	"fmt"
	"sync"
	"time"

	"flint/internal/aggregator"
	"flint/internal/codec"
	"flint/internal/coord"
	"flint/internal/metrics"
	"flint/internal/tensor"
)

// LeaderConfig parameterizes the tier's round leader.
type LeaderConfig struct {
	// Shards is the tier width N: how many replicas the leader expects
	// to hear from. Membership is healthy only when every one of them
	// has pinged within Grace.
	Shards int
	// Grace is the heartbeat freshness window; a shard whose last ping
	// is older counts as lost and halts the tier (default 3s).
	Grace time.Duration
	// Buffer is the cross-shard fold trigger K: how many partials the
	// leader buffers before folding them into the global model
	// (default Shards, so one fold per tier-wide round generation).
	Buffer int
	// ServerLR and StalenessAlpha parameterize the cross-shard FedBuff
	// fold: partials from shards that trained against an older global
	// version are staleness-discounted, exactly like late async device
	// updates inside one coordinator. Defaults 1 and 0.
	ServerLR       float64
	StalenessAlpha float64
	// Params builds a job's initial global parameter vector the first
	// time the leader sees the job (version 1). It must derive the
	// vector from the same spec the shards booted from — model kind and
	// seed — or the tier's installs would not be bit-compatible with
	// the shards' check-in broadcasts. Required.
	Params func(job string) (tensor.Vector, error)
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (c LeaderConfig) withDefaults() (LeaderConfig, error) {
	if c.Shards <= 0 {
		return c, fmt.Errorf("shard: leader needs a positive shard count, got %d", c.Shards)
	}
	if c.Grace <= 0 {
		c.Grace = 3 * time.Second
	}
	if c.Buffer <= 0 {
		c.Buffer = c.Shards
	}
	if c.ServerLR <= 0 {
		c.ServerLR = 1
	}
	if c.StalenessAlpha < 0 {
		return c, fmt.Errorf("shard: negative staleness alpha %v", c.StalenessAlpha)
	}
	if c.Params == nil {
		return c, fmt.Errorf("shard: leader needs a Params factory")
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c, nil
}

// leaderCounters are pre-registered so the tier status page is fully
// shaped before the first partial arrives.
var leaderCounters = []string{
	"tier_partials_received", "tier_partial_wire_bytes",
	"tier_updates_represented", "tier_folds", "tier_fold_errors",
	"tier_halted_submissions", "tier_bad_partials", "tier_pings",
	"tier_halts",
}

// jobGlobal is one job's tier-level model state: the authoritative
// global version, its parameters, the pre-encoded raw64 install blob
// every behind shard receives, and the partial buffer feeding the next
// cross-shard fold.
type jobGlobal struct {
	version int
	params  tensor.Vector
	blob    []byte // raw64 encoding of params at version
	buffer  []aggregator.Update
}

// Leader is the tier's round leader: it tracks shard membership through
// heartbeats, enforces halt-until-healthy on the exchange, and folds
// shard partials into each job's global model through the same
// parallel range kernels a single coordinator commits with. It
// implements coord.PartialExchange, so an in-process tier (tests, the
// sharded benchmark) wires coordinators straight to it; the gateway
// exposes the same two verbs over HTTP for the multi-process tier.
type Leader struct {
	cfg      LeaderConfig
	strategy aggregator.Strategy
	counters *metrics.CounterSet

	mu       sync.Mutex
	lastPing []time.Time // per shard; zero = never heard from
	healthy  bool        // memo of last healthyLocked verdict, for halt edge counting
	jobs     map[string]*jobGlobal
}

// NewLeader builds a tier leader. The tier starts unhealthy — no shard
// has pinged yet — so partials park until the full membership has
// reported in, which is exactly the paper's cold-start rule: training
// does not move until the control plane sees a complete tier.
func NewLeader(cfg LeaderConfig) (*Leader, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	l := &Leader{
		cfg: cfg,
		strategy: aggregator.Parallel{
			Inner:  aggregator.FedBuff{ServerLR: cfg.ServerLR, Alpha: cfg.StalenessAlpha},
			Screen: true,
		},
		counters: metrics.NewCounterSet(),
		lastPing: make([]time.Time, cfg.Shards),
		jobs:     make(map[string]*jobGlobal),
	}
	for _, name := range leaderCounters {
		l.counters.Counter(name)
	}
	return l, nil
}

// Ping records a shard heartbeat. Implements the Pinger side of the
// exchange; shard ids outside the tier are a configuration error.
func (l *Leader) Ping(shardID int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pingLocked(shardID, l.cfg.Clock())
}

func (l *Leader) pingLocked(shardID int, now time.Time) error {
	if shardID < 0 || shardID >= l.cfg.Shards {
		return fmt.Errorf("shard: ping from shard %d outside tier of %d", shardID, l.cfg.Shards)
	}
	l.lastPing[shardID] = now
	l.counters.Counter("tier_pings").Inc()
	return nil
}

// Healthy reports whether every shard has pinged within the grace
// window.
func (l *Leader) Healthy() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.healthyLocked(l.cfg.Clock())
}

func (l *Leader) healthyLocked(now time.Time) bool {
	ok := true
	for _, t := range l.lastPing {
		if t.IsZero() || now.Sub(t) > l.cfg.Grace {
			ok = false
			break
		}
	}
	if l.healthy && !ok {
		// Healthy→halted edge: one counted halt per membership loss,
		// not one per rejected submission.
		l.counters.Counter("tier_halts").Inc()
	}
	l.healthy = ok
	return ok
}

// EnsureJob initializes a job's tier global eagerly (version 1 from the
// Params factory). The gateway calls it at boot for its configured
// jobs so the status rollup reports a live version before the first
// partial; SubmitPartial initializes lazily either way.
func (l *Leader) EnsureJob(job string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.jobLocked(job)
	return err
}

func (l *Leader) jobLocked(job string) (*jobGlobal, error) {
	if jg, ok := l.jobs[job]; ok {
		return jg, nil
	}
	params, err := l.cfg.Params(job)
	if err != nil {
		return nil, fmt.Errorf("shard: init job %q: %w", job, err)
	}
	blob, err := codec.Encode(params, codec.RawF64)
	if err != nil {
		return nil, fmt.Errorf("shard: encode job %q globals: %w", job, err)
	}
	jg := &jobGlobal{version: 1, params: params, blob: blob}
	l.jobs[job] = jg
	return jg, nil
}

// Version reports a job's current tier global version (0 if the job
// has not been initialized yet).
func (l *Leader) Version(job string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if jg, ok := l.jobs[job]; ok {
		return jg.version
	}
	return 0
}

// Global returns a job's current tier version and a copy of its global
// parameter vector (nil params and version 0 for an uninitialized job).
func (l *Leader) Global(job string) (int, tensor.Vector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if jg, ok := l.jobs[job]; ok {
		return jg.version, jg.params.Clone()
	}
	return 0, nil
}

// Counters exposes the leader's counter set (the gateway folds it into
// the status rollup).
func (l *Leader) Counters() *metrics.CounterSet { return l.counters }

// SubmitPartial implements coord.PartialExchange: the leader side of
// the hierarchical commit. A partial is proof of life (it refreshes the
// submitter's heartbeat), then the halt gate runs: while any shard is
// lost the partial is rejected with coord.ErrTierHalted and the shard's
// parked round retries — no global progress happens on a partial view
// of the fleet. Healthy submissions append to the job's fold buffer as
// zero-copy payload views over the wire blob; the Buffer'th partial
// triggers the cross-shard fold and advances the global version. The
// response always carries the job's current version, with the full
// raw64 global blob exactly when the submitting shard's base is behind.
func (l *Leader) SubmitPartial(pc coord.PartialCommit) (coord.GlobalInstall, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.cfg.Clock()
	if err := l.pingLocked(pc.ShardID, now); err != nil {
		l.counters.Counter("tier_bad_partials").Inc()
		return coord.GlobalInstall{}, err
	}
	if !l.healthyLocked(now) {
		l.counters.Counter("tier_halted_submissions").Inc()
		return coord.GlobalInstall{}, coord.ErrTierHalted
	}
	jg, err := l.jobLocked(pc.Job)
	if err != nil {
		l.counters.Counter("tier_bad_partials").Inc()
		return coord.GlobalInstall{}, err
	}
	// The partial stays in wire form: ParsePayload is a validated view
	// over the blob bytes, and the fold's range kernels read straight
	// out of it — the zero-copy lifetime of PR 7 extended across the
	// shard boundary.
	payload, err := codec.ParsePayload(pc.Blob)
	if err == nil && payload.Dim() != len(jg.params) {
		err = fmt.Errorf("shard: partial for job %q carries %d params, want %d", pc.Job, payload.Dim(), len(jg.params))
	}
	if err == nil && pc.BaseVersion > jg.version {
		err = fmt.Errorf("shard: partial base v%d is ahead of tier v%d (split-brain leader?)", pc.BaseVersion, jg.version)
	}
	if err != nil {
		l.counters.Counter("tier_bad_partials").Inc()
		return coord.GlobalInstall{}, err
	}
	jg.buffer = append(jg.buffer, aggregator.Update{
		ClientID:  int64(pc.ShardID),
		Payload:   payload,
		Weight:    pc.Weight,
		Staleness: jg.version - pc.BaseVersion,
	})
	l.counters.Counter("tier_partials_received").Inc()
	l.counters.Counter("tier_partial_wire_bytes").Add(int64(len(pc.Blob)))
	l.counters.Counter("tier_updates_represented").Add(int64(pc.Updates))
	if len(jg.buffer) >= l.cfg.Buffer {
		l.foldLocked(pc.Job, jg)
	}
	inst := coord.GlobalInstall{Version: jg.version}
	if pc.BaseVersion < jg.version {
		inst.Blob = jg.blob
	}
	return inst, nil
}

// foldLocked advances one job's global model by folding the buffered
// shard partials through the parallel FedBuff kernels: a data-weighted,
// staleness-discounted mean of the partials, stepped by ServerLR —
// FedAvg across shards when everything is fresh. A failed fold (a
// non-finite partial slipped through a shard's screen, or a poisoned
// weight) rolls the params back and drops the buffer: the tier keeps
// its last good version and the shards' next rounds refill the buffer.
func (l *Leader) foldLocked(job string, jg *jobGlobal) {
	prev := jg.params.Clone()
	err := l.strategy.Aggregate(jg.params, jg.buffer)
	if err == nil {
		var blob []byte
		if blob, err = codec.Encode(jg.params, codec.RawF64); err == nil {
			jg.version++
			jg.blob = blob
			l.counters.Counter("tier_folds").Inc()
		}
	}
	if err != nil {
		copy(jg.params, prev)
		l.counters.Counter("tier_fold_errors").Inc()
	}
	for i := range jg.buffer {
		jg.buffer[i].Payload.Release()
	}
	jg.buffer = jg.buffer[:0]
}

// TierJob is one job's row in the tier status report.
type TierJob struct {
	Version  int `json:"version"`
	Buffered int `json:"buffered_partials"`
}

// TierStatus is the leader's half of the gateway status rollup: shard
// membership, the halt verdict, per-job global versions, and the
// exchange counters.
type TierStatus struct {
	Shards  int  `json:"shards"`
	Healthy bool `json:"healthy"`
	// LastPingMS is each shard's heartbeat age in milliseconds
	// (negative = never heard from).
	LastPingMS []int64            `json:"last_ping_ms"`
	Jobs       map[string]TierJob `json:"jobs"`
	Counters   map[string]int64   `json:"counters"`
}

// Status snapshots the tier for the gateway's /v1/status rollup.
func (l *Leader) Status() TierStatus {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.cfg.Clock()
	st := TierStatus{
		Shards:     l.cfg.Shards,
		Healthy:    l.healthyLocked(now),
		LastPingMS: make([]int64, l.cfg.Shards),
		Jobs:       make(map[string]TierJob, len(l.jobs)),
		Counters:   l.counters.Snapshot(),
	}
	for i, t := range l.lastPing {
		if t.IsZero() {
			st.LastPingMS[i] = -1
		} else {
			st.LastPingMS[i] = now.Sub(t).Milliseconds()
		}
	}
	for name, jg := range l.jobs {
		st.Jobs[name] = TierJob{Version: jg.version, Buffered: len(jg.buffer)}
	}
	return st
}
