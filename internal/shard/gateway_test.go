package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"flint/internal/codec"
	"flint/internal/coord"
	"flint/internal/tensor"
)

// recordingBackend is a fake shard replica: it records which paths and
// devices reached it and answers enough of the /v1 API for the gateway
// tests.
type recordingBackend struct {
	mu   sync.Mutex
	hits []string // "METHOD path device"
}

func (b *recordingBackend) handler(index int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		device := r.URL.Query().Get("device")
		if device == "" {
			device = r.Header.Get("X-Flint-Device")
		}
		if device == "" {
			var req struct {
				DeviceID int64 `json:"device_id"`
			}
			body, _ := io.ReadAll(r.Body)
			if json.Unmarshal(body, &req) == nil && req.DeviceID != 0 {
				device = strconv.FormatInt(req.DeviceID, 10)
			}
		}
		b.mu.Lock()
		b.hits = append(b.hits, fmt.Sprintf("%s %s %s", r.Method, r.URL.Path, device))
		b.mu.Unlock()
		if r.URL.Path == "/v1/status" {
			writeJSON(w, http.StatusOK, map[string]any{"shard_index": index, "version": 1})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
}

func (b *recordingBackend) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.hits)
}

func newTestGateway(t *testing.T, backends int) (*Gateway, *Leader, []*recordingBackend) {
	t.Helper()
	leader, err := NewLeader(LeaderConfig{Shards: backends, Grace: time.Hour, Params: testParams})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*recordingBackend, backends)
	urls := make([]string, backends)
	for i := range recs {
		recs[i] = &recordingBackend{}
		srv := httptest.NewServer(recs[i].handler(i))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	gw, err := NewGateway(GatewayConfig{Shards: urls, Leader: leader})
	if err != nil {
		t.Fatal(err)
	}
	return gw, leader, recs
}

func TestGatewayHaltsTasksWhileUnhealthy(t *testing.T) {
	gw, leader, recs := newTestGateway(t, 2)
	srv := httptest.NewServer(gw)
	defer srv.Close()

	// No shard has pinged: the tier is unhealthy and task assignment is
	// halted at the front door.
	resp, err := http.Get(srv.URL + "/v1/task?device=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("halted tier served a task: %s", resp.Status)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("halt response missing Retry-After")
	}
	// The header carries jitter (±25% around 1s) so a halted fleet does
	// not retry in lockstep when the tier heals.
	secs, err := strconv.ParseFloat(ra, 64)
	if err != nil {
		t.Fatalf("Retry-After %q is not a number: %v", ra, err)
	}
	if secs < 0.75 || secs > 1.25 {
		t.Fatalf("Retry-After %v outside the ±25%% jitter band around 1s", secs)
	}
	if recs[0].count()+recs[1].count() != 0 {
		t.Fatal("halted task leaked through to a shard")
	}
	// Heartbeats and check-ins still pass during a halt — only new work
	// stops.
	resp, err = http.Post(srv.URL+"/v1/heartbeat?device=5", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat blocked during halt: %s", resp.Status)
	}

	leader.Ping(0)
	leader.Ping(1)
	resp, err = http.Get(srv.URL + "/v1/task?device=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy tier refused a task: %s", resp.Status)
	}
}

func TestGatewayRoutesByDeviceID(t *testing.T) {
	gw, leader, recs := newTestGateway(t, 2)
	leader.Ping(0)
	leader.Ping(1)
	srv := httptest.NewServer(gw)
	defer srv.Close()

	ring := gw.Ring()
	perShard := [2]int{}
	for id := int64(1); id <= 20; id++ {
		want := ring.Shard(id)
		perShard[want]++

		// Query-string verbs.
		resp, err := http.Get(fmt.Sprintf("%s/v1/task?device=%d", srv.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()

		// JSON body verb (buffered, id extracted, body replayed).
		body, _ := json.Marshal(map[string]any{"device_id": id, "model": "Pixel-6"})
		resp, err = http.Post(srv.URL+"/v1/checkin", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()

		// Binary update (header id, streamed body).
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/update", bytes.NewReader([]byte{1, 2, 3}))
		req.Header.Set("Content-Type", coord.ContentTypeTensor)
		req.Header.Set("X-Flint-Device", strconv.FormatInt(id, 10))
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()

		// Tenant-prefixed path routes by the same rule.
		resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/other/task?device=%d", srv.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	for s, rec := range recs {
		if got, want := rec.count(), perShard[s]*4; got != want {
			t.Fatalf("shard %d saw %d requests, ring owed it %d\nhits: %v", s, got, want, rec.hits)
		}
		// Every hit must carry the id of a device the ring maps here.
		rec.mu.Lock()
		for _, h := range rec.hits {
			var method, path, device string
			fmt.Sscanf(h, "%s %s %s", &method, &path, &device)
			id, err := strconv.ParseInt(device, 10, 64)
			if err != nil || ring.Shard(id) != s {
				t.Fatalf("shard %d served misrouted request %q", s, h)
			}
		}
		rec.mu.Unlock()
	}
}

func TestGatewayRollup(t *testing.T) {
	gw, leader, _ := newTestGateway(t, 2)
	leader.Ping(0)
	if err := leader.EnsureJob(""); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollup status %s", resp.Status)
	}
	var roll Rollup
	if err := json.NewDecoder(resp.Body).Decode(&roll); err != nil {
		t.Fatal(err)
	}
	if roll.Version != 1 {
		t.Fatalf("rollup version = %d, want 1 (eager default job)", roll.Version)
	}
	if roll.Tier.Healthy {
		t.Fatal("rollup reports healthy with shard 1 silent")
	}
	if len(roll.Shards) != 2 || !roll.Shards[0].OK || !roll.Shards[1].OK {
		t.Fatalf("rollup shard rows wrong: %+v", roll.Shards)
	}
	var st struct {
		ShardIndex int `json:"shard_index"`
	}
	if err := json.Unmarshal(roll.Shards[1].Status, &st); err != nil || st.ShardIndex != 1 {
		t.Fatalf("shard row 1 carries wrong status doc: %s", roll.Shards[1].Status)
	}
}

// TestHTTPExchangeRoundTrip drives the wire form of the exchange: a
// partial posted through HTTPExchange must reach the leader as the
// exact codec blob, and a behind shard must get the raw64 install blob
// back — both directions in codec wire form, no JSON re-framing.
func TestHTTPExchangeRoundTrip(t *testing.T) {
	gw, leader, _ := newTestGateway(t, 2)
	srv := httptest.NewServer(gw)
	defer srv.Close()
	x := NewHTTPExchange(srv.URL)

	if err := x.Ping(0); err != nil {
		t.Fatal(err)
	}
	if err := x.Ping(1); err != nil {
		t.Fatal(err)
	}

	_, init := leader.Global("")
	if init == nil {
		if err := leader.EnsureJob(""); err != nil {
			t.Fatal(err)
		}
		_, init = leader.Global("")
	}
	partial := tensor.NewVector(len(init))
	for j := range partial {
		partial[j] = float64(j%7) / 50
	}
	blob, err := codec.Encode(partial, codec.RawF64)
	if err != nil {
		t.Fatal(err)
	}

	// First partial buffers: version stays 1, no install blob.
	inst, err := x.SubmitPartial(coord.PartialCommit{
		ShardID: 0, Round: 1, BaseVersion: 1, Updates: 4, Weight: 40, Blob: blob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Version != 1 || len(inst.Blob) != 0 {
		t.Fatalf("buffered partial got install v%d (%d bytes), want noop v1", inst.Version, len(inst.Blob))
	}

	// Second partial completes the fold: version 2 plus the full raw64
	// global, which must decode to init + partial (lr=1, equal weights,
	// both partials identical).
	inst, err = x.SubmitPartial(coord.PartialCommit{
		ShardID: 1, Round: 1, BaseVersion: 1, Updates: 4, Weight: 40, Blob: blob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Version != 2 || len(inst.Blob) == 0 {
		t.Fatalf("fold-completing partial got v%d (%d bytes), want v2 with blob", inst.Version, len(inst.Blob))
	}
	got, scheme, err := codec.Decode(inst.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if scheme != codec.RawF64 {
		t.Fatalf("install blob scheme %v, want raw64", scheme)
	}
	_, tier := leader.Global("")
	for j := range got {
		if got[j] != tier[j] {
			t.Fatalf("install blob diverges from leader at %d", j)
		}
	}

	// Halted exchange surfaces as ErrTierHalted across the wire.
	leader2, err := NewLeader(LeaderConfig{Shards: 2, Grace: time.Hour, Params: testParams})
	if err != nil {
		t.Fatal(err)
	}
	gw2, err := NewGateway(GatewayConfig{Shards: []string{"http://unused0", "http://unused1"}, Leader: leader2})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(gw2)
	defer srv2.Close()
	x2 := NewHTTPExchange(srv2.URL)
	if _, err := x2.SubmitPartial(coord.PartialCommit{ShardID: 0, BaseVersion: 1, Blob: blob}); err != coord.ErrTierHalted {
		t.Fatalf("halted exchange returned %v, want ErrTierHalted", err)
	}
}
