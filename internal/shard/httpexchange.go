package shard

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"flint/internal/coord"
)

// The tier exchange's private wire surface, hosted by the gateway next
// to the public /v1 device API:
//
//	POST /shard/v1/partial  body = codec blob, metadata in X-Flint-*
//	POST /shard/v1/ping?shard=N
//	GET  /shard/v1/status   leader TierStatus JSON
//
// A partial's body is the exact blob coord's partialLocked encoded —
// the exchange never re-frames it — and a behind shard's response body
// is the leader's raw64 global blob with the version in a header, so
// both directions of the exchange move parameters in codec wire form
// only.
const (
	pathPartial = "/shard/v1/partial"
	pathPing    = "/shard/v1/ping"
	pathTier    = "/shard/v1/status"

	hdrShard   = "X-Flint-Shard"
	hdrJob     = "X-Flint-Job"
	hdrRound   = "X-Flint-Round"
	hdrBase    = "X-Flint-Base-Version"
	hdrUpdates = "X-Flint-Updates"
	hdrWeight  = "X-Flint-Weight"
	hdrVersion = "X-Flint-Version"
)

// HTTPExchange is the shard replica's client on the tier exchange: it
// implements coord.PartialExchange and Pinger against a gateway URL
// over a pooled keep-alive transport, so a replica's partial cadence
// reuses one warm connection instead of paying a dial per round.
type HTTPExchange struct {
	base   string
	client *http.Client
}

// NewHTTPExchange builds an exchange client for a gateway base URL
// ("http://host:port", no trailing slash needed).
func NewHTTPExchange(base string) *HTTPExchange {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &HTTPExchange{
		base: base,
		client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        8,
				MaxIdleConnsPerHost: 8,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
}

// SubmitPartial implements coord.PartialExchange over HTTP. A gateway
// 503 maps back to coord.ErrTierHalted so the shard's exchange loop
// keeps the round parked and retries — the halt crosses the wire as a
// status code, not a payload.
func (x *HTTPExchange) SubmitPartial(pc coord.PartialCommit) (coord.GlobalInstall, error) {
	req, err := http.NewRequest(http.MethodPost, x.base+pathPartial, bytes.NewReader(pc.Blob))
	if err != nil {
		return coord.GlobalInstall{}, err
	}
	req.Header.Set("Content-Type", coord.ContentTypeTensor)
	req.Header.Set(hdrShard, strconv.Itoa(pc.ShardID))
	if pc.Job != "" {
		req.Header.Set(hdrJob, pc.Job)
	}
	req.Header.Set(hdrRound, strconv.FormatUint(pc.Round, 10))
	req.Header.Set(hdrBase, strconv.Itoa(pc.BaseVersion))
	req.Header.Set(hdrUpdates, strconv.Itoa(pc.Updates))
	req.Header.Set(hdrWeight, strconv.FormatFloat(pc.Weight, 'g', -1, 64))
	resp, err := x.client.Do(req)
	if err != nil {
		return coord.GlobalInstall{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return coord.GlobalInstall{}, coord.ErrTierHalted
	}
	if resp.StatusCode != http.StatusOK {
		return coord.GlobalInstall{}, fmt.Errorf("shard: exchange rejected partial: %s", resp.Status)
	}
	version, err := strconv.Atoi(resp.Header.Get(hdrVersion))
	if err != nil {
		return coord.GlobalInstall{}, fmt.Errorf("shard: exchange response missing %s: %w", hdrVersion, err)
	}
	inst := coord.GlobalInstall{Version: version}
	if resp.ContentLength != 0 {
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			return coord.GlobalInstall{}, fmt.Errorf("shard: read install blob: %w", err)
		}
		inst.Blob = blob
	}
	return inst, nil
}

// Ping implements Pinger over HTTP.
func (x *HTTPExchange) Ping(shardID int) error {
	resp, err := x.client.Post(
		x.base+pathPing+"?shard="+strconv.Itoa(shardID), "text/plain", nil)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: ping rejected: %s", resp.Status)
	}
	return nil
}
