package shard

import (
	"errors"
	"math"
	"testing"
	"time"

	"flint/internal/coord"
	"flint/internal/model"
	"flint/internal/tensor"
)

// testParams is a Params factory over the small KindA model: every job
// name maps to the same architecture/seed, matching the coordinators
// the tests boot.
func testParams(job string) (tensor.Vector, error) {
	m, err := model.New(model.KindA, 7)
	if err != nil {
		return nil, err
	}
	return m.Params(), nil
}

// newShardCoord boots one tier replica: a sync coordinator whose
// commits reduce to partials on the exchange.
func newShardCoord(t *testing.T, ex coord.PartialExchange, id, target int) *coord.Coordinator {
	t.Helper()
	c, err := coord.New(coord.Config{
		Mode:          coord.ModeSync,
		ModelKind:     model.KindA,
		Seed:          7,
		TargetUpdates: target,
		Quorum:        target,
		OverCommit:    1,
		RoundDeadline: time.Hour,
		Exchange:      ex,
		ShardID:       id,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// checkInFleet registers `n` eligible devices with ids base+1..base+n.
func checkInFleet(t *testing.T, c *coord.Coordinator, base int64, n int) {
	t.Helper()
	for i := int64(1); i <= int64(n); i++ {
		c.CheckIn(coord.DeviceInfo{
			ID: base + i, Model: "Pixel-6", Platform: "Android",
			WiFi: true, BatteryHigh: true, ModernOS: true,
			SessionSec: 3600, Weight: 10,
		})
	}
}

// driveRound pushes one full round through a shard: every device takes
// a task and submits a deterministic delta. It returns once the
// submissions are queued — tier-level progress is the caller's to wait
// on (a shard whose partial lands mid-buffer concludes its round with
// no version advance, so shard Version() is not a round barrier here).
func driveRound(t *testing.T, c *coord.Coordinator, base int64, n int, scale float64) {
	t.Helper()
	for i := int64(1); i <= int64(n); i++ {
		id := base + i
		var task coord.Task
		deadline := time.Now().Add(10 * time.Second)
		for {
			tk, err := c.RequestTask(id)
			if err == nil {
				task = tk
				break
			}
			if !errors.Is(err, coord.ErrNoTask) {
				t.Fatal(err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("device %d starved waiting for a task", id)
			}
			time.Sleep(time.Millisecond)
		}
		delta := tensor.NewVector(task.Dim)
		for j := range delta {
			delta[j] = scale * float64((int64(j)+id)%13-6) / 100
		}
		for {
			err := c.SubmitUpdate(coord.Submission{
				DeviceID: id, RoundID: task.RoundID,
				BaseVersion: task.BaseVersion, Weight: 10, Delta: delta,
			})
			if err == nil {
				break
			}
			if !errors.Is(err, coord.ErrBusy) {
				t.Fatal(err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("device %d starved submitting", id)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSingleShardTierMatchesFlatCommit pins the hierarchical math: a
// one-shard tier with lr=1 and no staleness is FedAvg with an extra
// (lossless) wire hop, so its global must match a flat coordinator fed
// the identical updates to within float round-off of the one extra
// weighted-mean fold.
func TestSingleShardTierMatchesFlatCommit(t *testing.T) {
	const devices = 4
	leader, err := NewLeader(LeaderConfig{Shards: 1, Grace: time.Hour, Params: testParams})
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Ping(0); err != nil {
		t.Fatal(err)
	}
	sharded := newShardCoord(t, leader, 0, devices)
	flat, err := coord.New(coord.Config{
		Mode: coord.ModeSync, ModelKind: model.KindA, Seed: 7,
		TargetUpdates: devices, Quorum: devices, OverCommit: 1,
		RoundDeadline: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()

	checkInFleet(t, sharded, 0, devices)
	checkInFleet(t, flat, 0, devices)
	driveRound(t, sharded, 0, devices, 1)
	driveRound(t, flat, 0, devices, 1)

	waitFor(t, "tier fold", func() bool { return leader.Version("") >= 2 })
	waitFor(t, "shard install", func() bool { return sharded.Version() >= 2 })
	waitFor(t, "flat commit", func() bool { return flat.Version() >= 2 })

	_, tier := leader.Global("")
	flatTask, err := flat.RequestTask(1)
	if err != nil {
		t.Fatal(err)
	}
	shardTask, err := sharded.RequestTask(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tier) != len(flatTask.Params) {
		t.Fatalf("dim mismatch: tier %d, flat %d", len(tier), len(flatTask.Params))
	}
	for j := range tier {
		if d := math.Abs(tier[j] - flatTask.Params[j]); d > 1e-9 {
			t.Fatalf("tier/flat diverge at %d: %g vs %g", j, tier[j], flatTask.Params[j])
		}
		// The shard's installed params are the leader's raw64 blob
		// decoded — bit-identical, not merely close.
		if shardTask.Params[j] != tier[j] {
			t.Fatalf("shard/leader params differ at %d: %g vs %g", j, shardTask.Params[j], tier[j])
		}
	}
}

// TestTwoShardTierFoldsAcrossShards runs a 2-shard tier through two
// generations and checks the cross-shard fold: the leader advances one
// version per full buffer, behind shards catch up through install
// blobs, and a mid-buffer partial concludes its round without a version
// advance (the noop path).
func TestTwoShardTierFoldsAcrossShards(t *testing.T) {
	const perShard = 3
	leader, err := NewLeader(LeaderConfig{Shards: 2, Grace: time.Hour, Params: testParams})
	if err != nil {
		t.Fatal(err)
	}
	leader.Ping(0)
	leader.Ping(1)
	c0 := newShardCoord(t, leader, 0, perShard)
	c1 := newShardCoord(t, leader, 1, perShard)
	checkInFleet(t, c0, 0, perShard)
	checkInFleet(t, c1, 100, perShard)

	// Generation 1: shard 0's partial buffers (noop), shard 1's
	// completes the buffer and folds.
	driveRound(t, c0, 0, perShard, 1)
	waitFor(t, "shard 0 noop conclude", func() bool {
		return c0.Counters().Counter("global_install_noop").Value() == 1
	})
	if v := leader.Version(""); v != 1 {
		t.Fatalf("leader advanced to v%d on a half-full buffer", v)
	}
	driveRound(t, c1, 100, perShard, 2)
	waitFor(t, "generation 1 fold", func() bool { return leader.Version("") == 2 })
	waitFor(t, "shard 1 install", func() bool { return c1.Version() == 2 })

	// Generation 2: shard 0 (still on v1) submits a stale-by-one
	// partial, gets the v2 install immediately, and shard 1 completes
	// the next fold.
	driveRound(t, c0, 0, perShard, 1)
	waitFor(t, "shard 0 catch-up install", func() bool { return c0.Version() == 2 })
	driveRound(t, c1, 100, perShard, 2)
	waitFor(t, "generation 2 fold", func() bool { return leader.Version("") == 3 })

	if got := leader.Counters().Counter("tier_folds").Value(); got != 2 {
		t.Fatalf("tier_folds = %d, want 2", got)
	}
	if got := leader.Counters().Counter("tier_partials_received").Value(); got != 4 {
		t.Fatalf("tier_partials_received = %d, want 4", got)
	}
	st := leader.Status()
	if !st.Healthy || st.Shards != 2 {
		t.Fatalf("tier status unhealthy or wrong width: %+v", st)
	}
	if st.Jobs[""].Version != 3 {
		t.Fatalf("status job version = %d, want 3", st.Jobs[""].Version)
	}
}

// TestShardLossHaltsTierUntilRecovery is the §3.4 drill: a shard whose
// heartbeat stops halts the whole tier — partials are rejected, parked
// rounds retry, no global progress — and the tier resumes exactly where
// it parked once the lost shard pings again.
func TestShardLossHaltsTierUntilRecovery(t *testing.T) {
	const perShard = 2
	leader, err := NewLeader(LeaderConfig{Shards: 2, Grace: 250 * time.Millisecond, Params: testParams})
	if err != nil {
		t.Fatal(err)
	}
	hb0 := StartHeartbeat(leader, 0, 50*time.Millisecond)
	defer hb0.Stop()
	hb1 := StartHeartbeat(leader, 1, 50*time.Millisecond)
	waitFor(t, "tier healthy", leader.Healthy)

	c0 := newShardCoord(t, leader, 0, perShard)
	c1 := newShardCoord(t, leader, 1, perShard)
	checkInFleet(t, c0, 0, perShard)
	checkInFleet(t, c1, 100, perShard)

	// A full healthy generation first.
	driveRound(t, c0, 0, perShard, 1)
	driveRound(t, c1, 100, perShard, 1)
	waitFor(t, "healthy generation", func() bool { return leader.Version("") == 2 })

	// Shard 1 dies: its heartbeat stops, the grace window lapses, and
	// the tier halts.
	hb1.Stop()
	waitFor(t, "tier halt", func() bool { return !leader.Healthy() })

	// Shard 0's next round parks: its partial bounces off the halt gate
	// and retries. The round must NOT abort and the tier must not move.
	driveRound(t, c0, 0, perShard, 1)
	waitFor(t, "halted retries", func() bool {
		return c0.Counters().Counter("partial_exchange_halted").Value() > 0
	})
	if v := leader.Version(""); v != 2 {
		t.Fatalf("tier advanced to v%d while halted", v)
	}
	if got := leader.Counters().Counter("tier_halts").Value(); got != 1 {
		t.Fatalf("tier_halts = %d, want 1 (one membership-loss edge)", got)
	}

	// Shard 1 recovers: membership heals, the parked partial lands on a
	// retry, and shard 1's round completes the fold.
	hb1 = StartHeartbeat(leader, 1, 50*time.Millisecond)
	defer hb1.Stop()
	waitFor(t, "tier recovery", leader.Healthy)
	waitFor(t, "parked partial lands", func() bool {
		return leader.Counters().Counter("tier_partials_received").Value() == 3
	})
	waitFor(t, "shard 0 catch-up install", func() bool { return c0.Version() == 2 })
	driveRound(t, c1, 100, perShard, 1)
	waitFor(t, "post-recovery fold", func() bool { return leader.Version("") == 3 })
	waitFor(t, "shard 1 post-recovery install", func() bool { return c1.Version() == 3 })
}

// TestLeaderRejectsBadPartials covers the exchange's validation edges:
// out-of-tier shard ids, undecodable blobs, and dimension mismatches
// must be rejected without poisoning the tier.
func TestLeaderRejectsBadPartials(t *testing.T) {
	leader, err := NewLeader(LeaderConfig{Shards: 1, Grace: time.Hour, Params: testParams})
	if err != nil {
		t.Fatal(err)
	}
	leader.Ping(0)
	if _, err := leader.SubmitPartial(coord.PartialCommit{ShardID: 5}); err == nil {
		t.Fatal("want error for out-of-tier shard id")
	}
	if _, err := leader.SubmitPartial(coord.PartialCommit{ShardID: 0, Blob: []byte("junk")}); err == nil {
		t.Fatal("want error for undecodable blob")
	}
	if leader.Counters().Counter("tier_bad_partials").Value() != 2 {
		t.Fatal("bad partials not counted")
	}
	if v := leader.Version(""); v != 1 {
		t.Fatalf("bad partials moved the tier to v%d", v)
	}
}
